#include "net/node.h"

#include <numbers>

namespace anc::net {

Net_node::Net_node(chan::Node_id id, phy::Modem_config modem_config,
                   std::size_t buffer_capacity)
    : id_{id}, modem_{modem_config}, buffer_{buffer_capacity}
{
}

Stored_frame Net_node::stored_frame_for(const Packet& packet) const
{
    Stored_frame stored;
    stored.header = header_for(packet);
    stored.frame_bits = modem_.frame_bits(stored.header, packet.payload);
    stored.payload = packet.payload;
    return stored;
}

dsp::Signal Net_node::transmit(const Packet& packet, Pcg32& rng)
{
    dsp::Signal out;
    transmit_into(packet, rng, out);
    return out;
}

void Net_node::transmit_into(const Packet& packet, Pcg32& rng, dsp::Signal& out)
{
    Stored_frame stored = stored_frame_for(packet);
    const double phase = rng.next_double() * 2.0 * std::numbers::pi;
    modem_.modulate_into(stored.frame_bits, phase, out);
    buffer_.store(std::move(stored));
}

void Net_node::remember(const Packet& packet)
{
    buffer_.store(stored_frame_for(packet));
}

} // namespace anc::net
