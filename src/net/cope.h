// COPE-style digital network coding baseline (Katti et al., SIGCOMM 2006;
// §11.1(b) of the ANC paper).
//
// The router XORs two packets and broadcasts one coded packet; each
// destination XORs again with the packet it already has (its own, or one
// it overheard) to extract the packet it wants.  The coded packet is an
// ordinary PHY frame whose payload is:
//
//     [ header A (64) | header B (64) | XOR of zero-padded payloads ]
//
// so receivers learn *which* two packets were mixed from the payload
// itself, as COPE's packet format does.

#pragma once

#include <optional>
#include <span>

#include "net/packet.h"
#include "phy/header.h"
#include "util/bits.h"

namespace anc::net {

struct Cope_coded {
    phy::Frame_header first;
    phy::Frame_header second;
    Bits xored; // max(len_a, len_b) bits
};

/// Payload of the coded broadcast frame.
Bits cope_encode(const Packet& a, const Packet& b);

/// Parse a coded payload; nothing if either embedded header fails its CRC
/// or the lengths are inconsistent.
std::optional<Cope_coded> cope_parse(std::span<const std::uint8_t> payload);

/// Extract the counterpart packet given one of the two originals.
/// Returns nothing if `known_header` matches neither embedded header.
std::optional<Packet> cope_decode(const Cope_coded& coded,
                                  const phy::Frame_header& known_header,
                                  std::span<const std::uint8_t> known_payload);

} // namespace anc::net
