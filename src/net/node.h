// A network node: modem + sent/overheard packet buffer.
//
// Transmitting (or overhearing) a packet records its on-air frame bits so
// that a later collision containing that frame can be cancelled (§7.3).
// Regeneration needs only the deterministic framing (scrambler and frame
// layout are protocol constants) — never the transmitter's oscillator
// phase, because the decoder works purely on phase *differences*.

#pragma once

#include "channel/medium.h"
#include "core/sent_packet_buffer.h"
#include "dsp/sample.h"
#include "net/packet.h"
#include "phy/modem.h"
#include "util/rng.h"

namespace anc::net {

class Net_node {
public:
    Net_node(chan::Node_id id, phy::Modem_config modem_config = {},
             std::size_t buffer_capacity = 256);

    /// Frame, record, and modulate a packet; `rng` supplies the random
    /// oscillator phase of this transmission.
    dsp::Signal transmit(const Packet& packet, Pcg32& rng);

    /// As above, modulating into a caller-owned buffer (cleared first;
    /// typically a dsp::Workspace lease backing a chan::Transmission
    /// view).
    void transmit_into(const Packet& packet, Pcg32& rng, dsp::Signal& out);

    /// Record a packet (own or overheard) without transmitting — the "X"
    /// topology's snooping path (§11.5).
    void remember(const Packet& packet);

    chan::Node_id id() const { return id_; }
    const phy::Modem& modem() const { return modem_; }
    const Sent_packet_buffer& buffer() const { return buffer_; }

private:
    Stored_frame stored_frame_for(const Packet& packet) const;

    chan::Node_id id_;
    phy::Modem modem_;
    Sent_packet_buffer buffer_;
};

} // namespace anc::net
