#include "net/packet.h"

#include <stdexcept>

namespace anc::net {

phy::Frame_header header_for(const Packet& packet)
{
    if (packet.payload.size() > 0xffff)
        throw std::invalid_argument{"header_for: payload too large for a frame"};
    phy::Frame_header header;
    header.src = packet.src;
    header.dst = packet.dst;
    header.seq = packet.seq;
    header.payload_bits = static_cast<std::uint16_t>(packet.payload.size());
    return header;
}

Flow::Flow(std::uint8_t src, std::uint8_t dst, std::size_t payload_bits, Pcg32 rng)
    : src_{src}, dst_{dst}, payload_bits_{payload_bits}, rng_{rng}
{
}

Packet Flow::next()
{
    Packet packet;
    packet.src = src_;
    packet.dst = dst_;
    packet.seq = next_seq_++;
    packet.payload = random_bits(payload_bits_, rng_);
    return packet;
}

} // namespace anc::net
