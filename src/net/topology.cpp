#include "net/topology.h"

#include <numbers>

namespace anc::net {

namespace {

chan::Link_params link_with(double gain, const Link_fading& fading, Pcg32& rng)
{
    chan::Link_params params;
    params.gain = gain;
    params.phase = rng.next_double() * 2.0 * std::numbers::pi;
    // Real radio pairs never share an oscillator: a few-ppm carrier
    // frequency offset makes the relative phase of any two signals drift.
    // The drift per symbol is tiny against MSK's +-pi/2 decision margins,
    // but it sweeps cos(theta - phi) across the circle — the assumption
    // behind the paper's amplitude estimator (§6.2).
    params.phase_drift = (rng.next_double() - 0.5) * 0.006;
    if (fading.model != chan::Gain_model::fixed) {
        // Fixed links consume exactly two draws, as before this field
        // existed — fading seeds are drawn only when a link fades, so
        // fixed-gain installs stay byte-identical across versions.
        params.gain_model = fading.model;
        params.coherence_block = fading.coherence_block;
        params.fading_seed = rng.next_u64();
    }
    return params;
}

} // namespace

void install_alice_bob(chan::Medium& medium, const Alice_bob_nodes& nodes,
                       const Alice_bob_gains& gains, Pcg32& rng)
{
    install_alice_bob(medium, nodes, gains, Link_fading{}, rng);
}

void install_alice_bob(chan::Medium& medium, const Alice_bob_nodes& nodes,
                       const Alice_bob_gains& gains, const Link_fading& fading,
                       Pcg32& rng)
{
    medium.set_link(nodes.alice, nodes.router, link_with(gains.alice_router, fading, rng));
    medium.set_link(nodes.router, nodes.alice, link_with(gains.router_alice, fading, rng));
    medium.set_link(nodes.bob, nodes.router, link_with(gains.bob_router, fading, rng));
    medium.set_link(nodes.router, nodes.bob, link_with(gains.router_bob, fading, rng));
}

void install_chain(chan::Medium& medium, const Chain_nodes& nodes,
                   const Chain_gains& gains, Pcg32& rng)
{
    install_chain(medium, nodes, gains, Link_fading{}, rng);
}

void install_chain(chan::Medium& medium, const Chain_nodes& nodes,
                   const Chain_gains& gains, const Link_fading& fading, Pcg32& rng)
{
    const chan::Node_id ids[] = {nodes.n1, nodes.n2, nodes.n3, nodes.n4};
    for (int i = 0; i < 3; ++i) {
        medium.set_link(ids[i], ids[i + 1], link_with(gains.adjacent, fading, rng));
        medium.set_link(ids[i + 1], ids[i], link_with(gains.adjacent, fading, rng));
    }
}

void install_x(chan::Medium& medium, const X_nodes& nodes, const X_gains& gains,
               Pcg32& rng)
{
    install_x(medium, nodes, gains, Link_fading{}, rng);
}

void install_x(chan::Medium& medium, const X_nodes& nodes, const X_gains& gains,
               const Link_fading& fading, Pcg32& rng)
{
    for (const chan::Node_id spoke : {nodes.n1, nodes.n2, nodes.n3, nodes.n4}) {
        medium.set_link(spoke, nodes.n5, link_with(gains.spoke, fading, rng));
        medium.set_link(nodes.n5, spoke, link_with(gains.spoke, fading, rng));
    }
    // Overhearing links carry the per-link AGC detection threshold: a
    // node snooping a clean upload listens below the standard
    // carrier-sense threshold by the link's budget deficit (the
    // promoted Medium-layer form of the old X_config snoop knob).
    chan::Link_params overhear_12 = link_with(gains.overhear, fading, rng);
    overhear_12.detection_threshold_db = gains.overhear_detection_threshold_db;
    medium.set_link(nodes.n1, nodes.n2, overhear_12);
    chan::Link_params overhear_34 = link_with(gains.overhear, fading, rng);
    overhear_34.detection_threshold_db = gains.overhear_detection_threshold_db;
    medium.set_link(nodes.n3, nodes.n4, overhear_34);
    // Weak cross links: the other sender is audible while overhearing.
    medium.set_link(nodes.n3, nodes.n2, link_with(gains.cross, fading, rng));
    medium.set_link(nodes.n1, nodes.n4, link_with(gains.cross, fading, rng));
}

} // namespace anc::net
