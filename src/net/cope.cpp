#include "net/cope.h"

#include <algorithm>

namespace anc::net {

Bits cope_encode(const Packet& a, const Packet& b)
{
    const Bits header_a = phy::encode_header(header_for(a));
    const Bits header_b = phy::encode_header(header_for(b));
    const std::size_t body = std::max(a.payload.size(), b.payload.size());

    Bits out;
    out.reserve(2 * phy::header_length + body);
    out.insert(out.end(), header_a.begin(), header_a.end());
    out.insert(out.end(), header_b.begin(), header_b.end());
    for (std::size_t i = 0; i < body; ++i) {
        const std::uint8_t bit_a = i < a.payload.size() ? a.payload[i] : 0;
        const std::uint8_t bit_b = i < b.payload.size() ? b.payload[i] : 0;
        out.push_back(bit_a ^ bit_b);
    }
    return out;
}

std::optional<Cope_coded> cope_parse(std::span<const std::uint8_t> payload)
{
    if (payload.size() < 2 * phy::header_length)
        return std::nullopt;
    const auto first = phy::decode_header(payload.first(phy::header_length));
    const auto second =
        phy::decode_header(payload.subspan(phy::header_length, phy::header_length));
    if (!first || !second)
        return std::nullopt;

    const std::size_t body = payload.size() - 2 * phy::header_length;
    if (body != std::max<std::size_t>(first->payload_bits, second->payload_bits))
        return std::nullopt;

    Cope_coded coded;
    coded.first = *first;
    coded.second = *second;
    const auto xored = payload.subspan(2 * phy::header_length);
    coded.xored.assign(xored.begin(), xored.end());
    return coded;
}

namespace {

bool same_identity(const phy::Frame_header& x, const phy::Frame_header& y)
{
    return x.src == y.src && x.dst == y.dst && x.seq == y.seq;
}

} // namespace

std::optional<Packet> cope_decode(const Cope_coded& coded,
                                  const phy::Frame_header& known_header,
                                  std::span<const std::uint8_t> known_payload)
{
    const phy::Frame_header* wanted = nullptr;
    if (same_identity(known_header, coded.first))
        wanted = &coded.second;
    else if (same_identity(known_header, coded.second))
        wanted = &coded.first;
    else
        return std::nullopt;

    Packet packet;
    packet.src = wanted->src;
    packet.dst = wanted->dst;
    packet.seq = wanted->seq;
    packet.payload.resize(wanted->payload_bits);
    for (std::size_t i = 0; i < packet.payload.size(); ++i) {
        const std::uint8_t known_bit = i < known_payload.size() ? known_payload[i] : 0;
        const std::uint8_t mixed = i < coded.xored.size() ? coded.xored[i] : 0;
        packet.payload[i] = known_bit ^ mixed;
    }
    return packet;
}

} // namespace anc::net
