// Network-layer packets and traffic generation.
//
// Packets carry *end-to-end* (flow) addresses: in the chain topology a
// router forwards a packet with its original header, which is exactly
// what lets the previous hop recognize — and regenerate — the forwarded
// signal when it interferes (§2(b), §7.5).  Hop-by-hop addressing is the
// scheduler's business, not the frame's.

#pragma once

#include <cstdint>

#include "phy/header.h"
#include "util/bits.h"
#include "util/rng.h"

namespace anc::net {

struct Packet {
    std::uint8_t src = 0;
    std::uint8_t dst = 0;
    std::uint16_t seq = 0;
    Bits payload;

    friend bool operator==(const Packet&, const Packet&) = default;
};

/// PHY header for a packet.
phy::Frame_header header_for(const Packet& packet);

/// A unidirectional flow emitting packets with sequential sequence numbers
/// and pseudo-random payloads.
class Flow {
public:
    Flow(std::uint8_t src, std::uint8_t dst, std::size_t payload_bits, Pcg32 rng);

    Packet next();

    std::uint8_t src() const { return src_; }
    std::uint8_t dst() const { return dst_; }
    std::size_t payload_bits() const { return payload_bits_; }

private:
    std::uint8_t src_;
    std::uint8_t dst_;
    std::size_t payload_bits_;
    std::uint16_t next_seq_ = 1;
    Pcg32 rng_;
};

} // namespace anc::net
