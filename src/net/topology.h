// The paper's three canonical topologies (Figs. 1, 2, 11) as link plans
// for the channel substrate.
//
// Every link gets an independent random phase shift (real channels do not
// share oscillator geometry); gains default to a mildly asymmetric,
// near-unity plan so the reproduced experiments run at the paper's
// operating SNR when transmit power is 1.

#pragma once

#include <optional>

#include "channel/medium.h"
#include "util/rng.h"

namespace anc::net {

/// Per-link gain dynamics shared by a whole topology install.  The
/// default (`fixed`) is the paper's constant-gain channel; `rayleigh_block`
/// overlays Rayleigh block fading on every link (each link gets an
/// independent fading seed drawn from the install rng, so realizations
/// stay deterministic per scenario seed).
struct Link_fading {
    chan::Gain_model model = chan::Gain_model::fixed;
    /// Samples per coherence block under rayleigh_block (0 = quasi-static:
    /// one fade for the whole transmission).
    std::size_t coherence_block = 4096;
};

// ---- Alice-Bob (Fig. 1): Alice <-> Router <-> Bob --------------------

struct Alice_bob_nodes {
    chan::Node_id alice = 1;
    chan::Node_id router = 2;
    chan::Node_id bob = 3;
};

struct Alice_bob_gains {
    double alice_router = 0.95;
    double router_alice = 0.95;
    double bob_router = 0.90;
    double router_bob = 0.90;
};

/// Install the four directed links; Alice and Bob are out of range of
/// each other (no direct link).
void install_alice_bob(chan::Medium& medium, const Alice_bob_nodes& nodes,
                       const Alice_bob_gains& gains, Pcg32& rng);
void install_alice_bob(chan::Medium& medium, const Alice_bob_nodes& nodes,
                       const Alice_bob_gains& gains, const Link_fading& fading,
                       Pcg32& rng);

// ---- Chain (Fig. 2): N1 -> N2 -> N3 -> N4 ----------------------------

struct Chain_nodes {
    chan::Node_id n1 = 1;
    chan::Node_id n2 = 2;
    chan::Node_id n3 = 3;
    chan::Node_id n4 = 4;
};

struct Chain_gains {
    double adjacent = 0.92; // every adjacent hop, both directions
};

/// Adjacent nodes are linked both ways; nodes two or more hops apart are
/// out of radio range (N4 never hears N1 — the premise of §2(b)).
void install_chain(chan::Medium& medium, const Chain_nodes& nodes,
                   const Chain_gains& gains, Pcg32& rng);
void install_chain(chan::Medium& medium, const Chain_nodes& nodes,
                   const Chain_gains& gains, const Link_fading& fading, Pcg32& rng);

// ---- "X" (Fig. 11): N1, N3 send through N5 to N4, N2 ------------------

struct X_nodes {
    chan::Node_id n1 = 1; // sender of flow 1 (to n4)
    chan::Node_id n2 = 2; // destination of flow 2; overhears n1
    chan::Node_id n3 = 3; // sender of flow 2 (to n2)
    chan::Node_id n4 = 4; // destination of flow 1; overhears n3
    chan::Node_id n5 = 5; // the router in the middle
};

struct X_gains {
    double spoke = 0.92;    // every node <-> router link
    double overhear = 0.50; // n1 -> n2 and n3 -> n4 (the snooping links)
    double cross = 0.25;    // n3 -> n2 and n1 -> n4 (interference while
                            // overhearing; the cause of §11.5's losses)
    /// Per-link AGC detection threshold installed on the two overhear
    /// links (chan::Link_params::detection_threshold_db), consulted by
    /// nodes snooping a *clean* transmission.  The standard 15 dB
    /// carrier-sense threshold sits above the overhear link's entire
    /// budget at the bottom of the operating band: gain 0.5 puts the
    /// snooped power ~6 dB below a unit-gain link, so at 20 dB SNR the
    /// packet lands ~14 dB above the floor — under 15 dB, which silently
    /// zeroed every COPE delivery there (every seed; the demodulator
    /// itself is fine at 14 dB).  A deliberate snooper listens lower by
    /// the link's budget deficit: 15 − 6 = 9 dB, the
    /// chan::agc_detection_threshold_db rule rounded to the historical
    /// value.  Empty disables the override (pre-fix behavior).
    std::optional<double> overhear_detection_threshold_db = 9.0;
};

void install_x(chan::Medium& medium, const X_nodes& nodes, const X_gains& gains,
               Pcg32& rng);
void install_x(chan::Medium& medium, const X_nodes& nodes, const X_gains& gains,
               const Link_fading& fading, Pcg32& rng);

} // namespace anc::net
