#include "channel/link.h"

#include <cmath>
#include <stdexcept>

namespace anc::chan {

Link_channel::Link_channel(Link_params params)
    : params_{params}
{
    if (params.gain < 0.0)
        throw std::invalid_argument{"Link_channel: gain must be non-negative"};
}

dsp::Signal Link_channel::apply(dsp::Signal_view signal) const
{
    dsp::Signal out;
    out.reserve(params_.delay + signal.size());
    out.assign(params_.delay, dsp::Sample{0.0, 0.0});
    for (std::size_t n = 0; n < signal.size(); ++n) {
        const double rotation = params_.phase + params_.phase_drift * static_cast<double>(n);
        out.push_back(signal[n] * std::polar(params_.gain, rotation));
    }
    return out;
}

void Link_channel::apply_onto(dsp::Signal_view signal, std::size_t at,
                              dsp::Signal& acc) const
{
    const std::size_t begin = at + params_.delay;
    if (acc.size() < begin + signal.size())
        acc.resize(begin + signal.size(), dsp::Sample{0.0, 0.0});
    dsp::Sample* out = acc.data() + begin;
    for (std::size_t n = 0; n < signal.size(); ++n) {
        const double rotation = params_.phase + params_.phase_drift * static_cast<double>(n);
        out[n] += signal[n] * std::polar(params_.gain, rotation);
    }
}

} // namespace anc::chan
