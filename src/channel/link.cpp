#include "channel/link.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace anc::chan {

namespace {

// 1/sqrt(2): each quadrature of h_k ~ CN(0,1) has variance 1/2.
constexpr double inv_sqrt2 = 0.70710678118654752440;

} // namespace

/// Shared rayleigh_block kernel: accumulate the faded, rotated signal
/// onto `out` (which must already span signal.size() samples).
void Link_channel::accumulate_faded(dsp::Signal_view signal, std::uint64_t fading_epoch,
                                    dsp::Sample* out) const
{
    const std::size_t block_len =
        params_.coherence_block == 0 ? signal.size() : params_.coherence_block;
    for (std::size_t begin_n = 0; begin_n < signal.size(); begin_n += block_len) {
        const dsp::Sample fade = block_gain(fading_epoch, begin_n / block_len);
        const std::size_t end_n = std::min(begin_n + block_len, signal.size());
        for (std::size_t n = begin_n; n < end_n; ++n) {
            const double rotation =
                params_.phase + params_.phase_drift * static_cast<double>(n);
            out[n] += signal[n] * std::polar(params_.gain, rotation) * fade;
        }
    }
}

Link_channel::Link_channel(Link_params params)
    : params_{params}
{
    if (params.gain < 0.0)
        throw std::invalid_argument{"Link_channel: gain must be non-negative"};
}

dsp::Sample Link_channel::block_gain(std::uint64_t fading_epoch, std::size_t block) const
{
    // Counter-based: a fresh Pcg32 per (epoch, block), seeded through
    // two mix_seed layers, so the draw depends only on
    // (fading_seed, epoch, block) — never on how many samples or
    // signals this channel has already processed.
    Pcg32 draws{mix_seed(mix_seed(params_.fading_seed, fading_epoch), block),
                0xfadeb10cULL};
    const double re = draws.next_gaussian() * inv_sqrt2;
    const double im = draws.next_gaussian() * inv_sqrt2;
    return {re, im};
}

dsp::Signal Link_channel::apply(dsp::Signal_view signal, std::uint64_t fading_epoch) const
{
    dsp::Signal out;
    if (params_.gain_model == Gain_model::fixed) {
        out.reserve(params_.delay + signal.size());
        out.assign(params_.delay, dsp::Sample{0.0, 0.0});
        for (std::size_t n = 0; n < signal.size(); ++n) {
            const double rotation = params_.phase + params_.phase_drift * static_cast<double>(n);
            out.push_back(signal[n] * std::polar(params_.gain, rotation));
        }
        return out;
    }
    out.assign(params_.delay + signal.size(), dsp::Sample{0.0, 0.0});
    accumulate_faded(signal, fading_epoch, out.data() + params_.delay);
    return out;
}

void Link_channel::apply_onto(dsp::Signal_view signal, std::size_t at,
                              dsp::Signal& acc, std::uint64_t fading_epoch) const
{
    const std::size_t begin = at + params_.delay;
    if (acc.size() < begin + signal.size())
        acc.resize(begin + signal.size(), dsp::Sample{0.0, 0.0});
    dsp::Sample* out = acc.data() + begin;
    if (params_.gain_model == Gain_model::fixed) {
        for (std::size_t n = 0; n < signal.size(); ++n) {
            const double rotation = params_.phase + params_.phase_drift * static_cast<double>(n);
            out[n] += signal[n] * std::polar(params_.gain, rotation);
        }
        return;
    }
    accumulate_faded(signal, fading_epoch, out);
}

} // namespace anc::chan
