#include "channel/link.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"
#include "util/simd.h"

namespace anc::chan {

namespace {

// 1/sqrt(2): each quadrature of h_k ~ CN(0,1) has variance 1/2.
constexpr double inv_sqrt2 = 0.70710678118654752440;

/// out[n] += signal[n] * rotor_n for n in [begin, end), where rotor_n
/// advances by `step` per sample (the fast profile's incremental
/// rotation).  A zero drift makes `step` unity; that case is hoisted
/// into a constant-rotor multiply-add loop with no serial dependence —
/// under the simd profile it dispatches to the lane kernels
/// (simd::rotor_accumulate, bit-identical to the scalar loop), the same
/// profile gate the AWGN generator uses.
void accumulate_rotor(dsp::Signal_view signal, std::size_t begin, std::size_t end,
                      dsp::Sample rotor, dsp::Sample step, bool constant_rotor,
                      bool use_lanes, dsp::Sample* out)
{
    const double* in = reinterpret_cast<const double*>(signal.data());
    double* acc = reinterpret_cast<double*>(out);
    if (constant_rotor) {
        const double rr = rotor.real();
        const double ri = rotor.imag();
        if (use_lanes) {
            simd::rotor_accumulate(in + 2 * begin, acc + 2 * begin, end - begin,
                                   rr, ri);
            return;
        }
        for (std::size_t n = begin; n < end; ++n) {
            const double re = in[2 * n];
            const double im = in[2 * n + 1];
            acc[2 * n] += re * rr - im * ri;
            acc[2 * n + 1] += re * ri + im * rr;
        }
        return;
    }
    double rr = rotor.real();
    double ri = rotor.imag();
    const double sr = step.real();
    const double si = step.imag();
    for (std::size_t n = begin; n < end; ++n) {
        const double re = in[2 * n];
        const double im = in[2 * n + 1];
        acc[2 * n] += re * rr - im * ri;
        acc[2 * n + 1] += re * ri + im * rr;
        const double next_rr = rr * sr - ri * si;
        ri = rr * si + ri * sr;
        rr = next_rr;
    }
}

} // namespace

double agc_detection_threshold_db(double base_threshold_db, double link_gain)
{
    if (link_gain <= 0.0)
        throw std::invalid_argument{
            "agc_detection_threshold_db: link gain must be positive"};
    return base_threshold_db + 20.0 * std::log10(link_gain);
}

/// Shared rayleigh_block kernel: accumulate the faded, rotated signal
/// onto `out` (which must already span signal.size() samples).
void Link_channel::accumulate_faded(dsp::Signal_view signal, std::uint64_t fading_epoch,
                                    dsp::Sample* out, dsp::Math_profile profile) const
{
    const std::size_t block_len =
        params_.coherence_block == 0 ? signal.size() : params_.coherence_block;
    for (std::size_t begin_n = 0; begin_n < signal.size(); begin_n += block_len) {
        const dsp::Sample fade = block_gain(fading_epoch, begin_n / block_len);
        const std::size_t end_n = std::min(begin_n + block_len, signal.size());
        if (profile != dsp::Math_profile::exact) {
            // One sincos at the block boundary, then the rotor recurrence
            // (fade folded into the rotor, so the inner loop is identical
            // to the fixed-gain fast kernel).
            const dsp::Sample rotor =
                dsp::profile_polar(profile, params_.gain,
                              params_.phase
                                  + params_.phase_drift * static_cast<double>(begin_n))
                * fade;
            const dsp::Sample step =
                dsp::profile_polar(profile, 1.0, params_.phase_drift);
            accumulate_rotor(signal, begin_n, end_n, rotor, step,
                             params_.phase_drift == 0.0,
                             profile == dsp::Math_profile::simd, out);
            continue;
        }
        for (std::size_t n = begin_n; n < end_n; ++n) {
            const double rotation =
                params_.phase + params_.phase_drift * static_cast<double>(n);
            out[n] += signal[n] * std::polar(params_.gain, rotation) * fade;
        }
    }
}

const dsp::Sample* Link_channel::rotor_stream(std::size_t samples) const
{
    if (rotor_cache_.size() < samples) {
        if (rotor_cache_.empty())
            rotor_cache_.push_back(dsp::profile_polar(dsp::Math_profile::fast,
                                                      params_.gain, params_.phase));
        const dsp::Sample step =
            dsp::profile_polar(dsp::Math_profile::fast, 1.0, params_.phase_drift);
        const double sr = step.real();
        const double si = step.imag();
        rotor_cache_.reserve(samples);
        double rr = rotor_cache_.back().real();
        double ri = rotor_cache_.back().imag();
        while (rotor_cache_.size() < samples) {
            // The recurrence of accumulate_rotor, verbatim, so cached
            // streams stay bit-identical to the historical serial loop.
            const double next_rr = rr * sr - ri * si;
            ri = rr * si + ri * sr;
            rr = next_rr;
            rotor_cache_.push_back(dsp::Sample{rr, ri});
        }
    }
    return rotor_cache_.data();
}

void Link_channel::accumulate_fixed_fast(dsp::Signal_view signal, dsp::Sample* out,
                                         dsp::Math_profile profile) const
{
    if (profile == dsp::Math_profile::simd && params_.phase_drift != 0.0) {
        // Drifting fixed-gain link under the simd profile: the rotor
        // stream is a pure function of the link params, so the serial
        // recurrence is memoised per link and the accumulation becomes an
        // element-wise complex multiply-add the lane kernels can chew.
        // (Rayleigh links keep the recurrence: the fade is folded into
        // rotor_0 there, and ((base·fade)·step^n) rounds differently from
        // fade·(base·step^n), so a shared cache would change bits.)
        simd::cmul_accumulate(reinterpret_cast<const double*>(signal.data()),
                              reinterpret_cast<const double*>(
                                  rotor_stream(signal.size())),
                              reinterpret_cast<double*>(out), signal.size());
        return;
    }
    const dsp::Sample rotor =
        dsp::profile_polar(dsp::Math_profile::fast, params_.gain, params_.phase);
    const dsp::Sample step =
        dsp::profile_polar(dsp::Math_profile::fast, 1.0, params_.phase_drift);
    accumulate_rotor(signal, 0, signal.size(), rotor, step,
                     params_.phase_drift == 0.0,
                     profile == dsp::Math_profile::simd, out);
}

Link_channel::Link_channel(Link_params params)
    : params_{params}
{
    if (params.gain < 0.0)
        throw std::invalid_argument{"Link_channel: gain must be non-negative"};
}

dsp::Sample Link_channel::block_gain(std::uint64_t fading_epoch, std::size_t block) const
{
    // Counter-based: a fresh Pcg32 per (epoch, block), seeded through
    // two mix_seed layers, so the draw depends only on
    // (fading_seed, epoch, block) — never on how many samples or
    // signals this channel has already processed.
    Pcg32 draws{mix_seed(mix_seed(params_.fading_seed, fading_epoch), block),
                0xfadeb10cULL};
    const double re = draws.next_gaussian() * inv_sqrt2;
    const double im = draws.next_gaussian() * inv_sqrt2;
    return {re, im};
}

dsp::Signal Link_channel::apply(dsp::Signal_view signal, std::uint64_t fading_epoch,
                                dsp::Math_profile profile) const
{
    dsp::Signal out;
    if (params_.gain_model == Gain_model::fixed) {
        if (profile != dsp::Math_profile::exact) {
            out.assign(params_.delay + signal.size(), dsp::Sample{0.0, 0.0});
            accumulate_fixed_fast(signal, out.data() + params_.delay, profile);
            return out;
        }
        out.reserve(params_.delay + signal.size());
        out.assign(params_.delay, dsp::Sample{0.0, 0.0});
        for (std::size_t n = 0; n < signal.size(); ++n) {
            const double rotation = params_.phase + params_.phase_drift * static_cast<double>(n);
            out.push_back(signal[n] * std::polar(params_.gain, rotation));
        }
        return out;
    }
    out.assign(params_.delay + signal.size(), dsp::Sample{0.0, 0.0});
    accumulate_faded(signal, fading_epoch, out.data() + params_.delay, profile);
    return out;
}

void Link_channel::apply_onto(dsp::Signal_view signal, std::size_t at,
                              dsp::Signal& acc, std::uint64_t fading_epoch,
                              dsp::Math_profile profile) const
{
    const std::size_t begin = at + params_.delay;
    // Grow by value-initializing resize: for std::complex<double> that
    // zero-initializes (bit-identical to filling Sample{0.0, 0.0}), but
    // libstdc++ lowers it to a tight loop while the fill-constructing
    // resize(n, value) overload runs an order of magnitude slower on the
    // ~2 KiB-per-symbol buffers this accumulates into — it dominated the
    // channel stage before the change.
    if (acc.size() < begin + signal.size())
        acc.resize(begin + signal.size());
    dsp::Sample* out = acc.data() + begin;
    if (params_.gain_model == Gain_model::fixed) {
        if (profile != dsp::Math_profile::exact) {
            // Fast and simd share the rotor arithmetic; under simd the
            // drift-free case additionally runs on the lane kernels
            // (bit-identical — see accumulate_rotor).
            accumulate_fixed_fast(signal, out, profile);
            return;
        }
        for (std::size_t n = 0; n < signal.size(); ++n) {
            const double rotation = params_.phase + params_.phase_drift * static_cast<double>(n);
            out[n] += signal[n] * std::polar(params_.gain, rotation);
        }
        return;
    }
    accumulate_faded(signal, fading_epoch, out, profile);
}

} // namespace anc::chan
