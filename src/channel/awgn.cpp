#include "channel/awgn.h"

#include <cmath>
#include <stdexcept>

#include "util/db.h"

namespace anc::chan {

Awgn::Awgn(double noise_power, Pcg32 rng)
    : noise_power_{noise_power},
      sigma_per_dim_{std::sqrt(noise_power / 2.0)},
      rng_{rng}
{
    if (noise_power < 0.0)
        throw std::invalid_argument{"Awgn: noise power must be non-negative"};
}

dsp::Sample Awgn::sample()
{
    return {sigma_per_dim_ * rng_.next_gaussian(),
            sigma_per_dim_ * rng_.next_gaussian()};
}

dsp::Signal Awgn::apply(dsp::Signal_view signal)
{
    dsp::Signal out{signal.begin(), signal.end()};
    add_in_place(out);
    return out;
}

void Awgn::add_in_place(dsp::Signal& signal)
{
    if (noise_power_ == 0.0)
        return;
    for (auto& s : signal)
        s += sample();
}

double noise_power_for_snr_db(double snr_db, double signal_power)
{
    return signal_power / from_db(snr_db);
}

} // namespace anc::chan
