#include "channel/awgn.h"

#include <cmath>
#include <stdexcept>

#include "util/db.h"

namespace anc::chan {

Awgn::Awgn(double noise_power, Pcg32 rng, dsp::Math_profile profile)
    : noise_power_{noise_power},
      sigma_per_dim_{std::sqrt(noise_power / 2.0)},
      rng_{rng},
      profile_{profile}
{
    if (noise_power < 0.0)
        throw std::invalid_argument{"Awgn: noise power must be non-negative"};
}

dsp::Sample Awgn::sample()
{
    return {sigma_per_dim_ * rng_.next_gaussian(),
            sigma_per_dim_ * rng_.next_gaussian()};
}

dsp::Signal Awgn::apply(dsp::Signal_view signal)
{
    dsp::Signal out{signal.begin(), signal.end()};
    add_in_place(out);
    return out;
}

void Awgn::add_in_place(dsp::Signal& signal)
{
    if (noise_power_ == 0.0)
        return;
    if (profile_ == dsp::Math_profile::exact) {
        for (auto& s : signal)
            s += sample();
        return;
    }
    // Fast/simd profiles: one counter-based key per call (each
    // add_in_place is a fresh, independent noise span, mirroring how the
    // exact stream advances), then a fused counter fill-and-add over the
    // interleaved re/im array — order-independent and streaming at
    // throughput (see Counter_normal::add_scaled).  The simd profile
    // routes the same keys and counters through the AVX2 backend, which
    // emits a bit-identical z stream 4 counter pairs per step.
    // Braced-init sequences the two draws left to right; named locals
    // make the (seed, stream) order unmistakable to readers regardless.
    const std::uint64_t key_seed = rng_.next_u64();
    const std::uint64_t key_stream = rng_.next_u64();
    const Counter_normal normals{key_seed, key_stream};
    if (profile_ == dsp::Math_profile::simd) {
        normals.add_scaled_simd(0, sigma_per_dim_,
                                reinterpret_cast<double*>(signal.data()),
                                2 * signal.size());
        return;
    }
    normals.add_scaled(0, sigma_per_dim_,
                       reinterpret_cast<double*>(signal.data()),
                       2 * signal.size());
}

double noise_power_for_snr_db(double snr_db, double signal_power)
{
    return signal_power / from_db(snr_db);
}

} // namespace anc::chan
