// Additive white Gaussian noise.
//
// The capacity analysis of §8 and the whole evaluation assume an AWGN
// channel; the receiver noise floor also anchors the detector thresholds
// (§7.1) and the SNR sweeps.  Complex circular Gaussian noise of power
// sigma^2 has variance sigma^2/2 per real dimension.
//
// Noise generation dispatches on a dsp::Math_profile: `exact` draws the
// historical sequential Pcg32 Box–Muller stream (bit-identical to every
// golden), while `fast` derives a counter-based Counter_normal key from
// the same rng and fills the buffer order-independently with the
// fastmath Box–Muller transform — a different (equally valid) noise
// realization, validated by the statistical corridor tests.

#pragma once

#include "dsp/math_profile.h"
#include "dsp/sample.h"
#include "util/rng.h"

namespace anc::chan {

class Awgn {
public:
    /// `noise_power` is E[|z|^2].  A dedicated RNG keeps noise independent
    /// from every other random stream in an experiment.
    Awgn(double noise_power, Pcg32 rng,
         dsp::Math_profile profile = dsp::Math_profile::exact);

    /// One complex noise sample (always the exact sequential stream —
    /// the single-sample API has no batch to amortize over).
    dsp::Sample sample();

    /// signal + noise, a fresh vector.
    dsp::Signal apply(dsp::Signal_view signal);

    /// Add noise in place over [0, len).  Profile-dispatched: see the
    /// header note.
    void add_in_place(dsp::Signal& signal);

    double noise_power() const { return noise_power_; }
    dsp::Math_profile math_profile() const { return profile_; }

private:
    double noise_power_;
    double sigma_per_dim_;
    Pcg32 rng_;
    dsp::Math_profile profile_;
};

/// Noise power that realizes a given SNR (in dB) for unit signal power P=1.
double noise_power_for_snr_db(double snr_db, double signal_power = 1.0);

} // namespace anc::chan
