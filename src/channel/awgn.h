// Additive white Gaussian noise.
//
// The capacity analysis of §8 and the whole evaluation assume an AWGN
// channel; the receiver noise floor also anchors the detector thresholds
// (§7.1) and the SNR sweeps.  Complex circular Gaussian noise of power
// sigma^2 has variance sigma^2/2 per real dimension.

#pragma once

#include "dsp/sample.h"
#include "util/rng.h"

namespace anc::chan {

class Awgn {
public:
    /// `noise_power` is E[|z|^2].  A dedicated RNG keeps noise independent
    /// from every other random stream in an experiment.
    Awgn(double noise_power, Pcg32 rng);

    /// One complex noise sample.
    dsp::Sample sample();

    /// signal + noise, a fresh vector.
    dsp::Signal apply(dsp::Signal_view signal);

    /// Add noise in place over [0, len).
    void add_in_place(dsp::Signal& signal);

    double noise_power() const { return noise_power_; }

private:
    double noise_power_;
    double sigma_per_dim_;
    Pcg32 rng_;
};

/// Noise power that realizes a given SNR (in dB) for unit signal power P=1.
double noise_power_for_snr_db(double snr_db, double signal_power = 1.0);

} // namespace anc::chan
