// Point-to-point link channel.
//
// The paper approximates the wireless channel between two nodes as an
// attenuation h plus a phase shift gamma (§5.3, citing Tse & Viswanath);
// on top of that the substrate models a whole-symbol propagation/queueing
// delay and an optional slow phase drift (a small carrier-frequency
// offset), which stresses the decoder's channel-invariance exactly the way
// real radios do.

#pragma once

#include <cstddef>

#include "dsp/sample.h"

namespace anc::chan {

struct Link_params {
    double gain = 1.0;            // amplitude attenuation h
    double phase = 0.0;           // phase shift gamma (radians)
    std::size_t delay = 0;        // whole-symbol delay
    double phase_drift = 0.0;     // radians of extra rotation per sample (CFO)
};

/// y[n] = h * e^{i(gamma + drift*n)} * x[n - delay]
class Link_channel {
public:
    explicit Link_channel(Link_params params = {});

    dsp::Signal apply(dsp::Signal_view signal) const;

    /// Accumulate the channel's output into `acc` starting at sample
    /// `at`: acc[at + delay + n] += y[n], growing acc (zero-filled) as
    /// needed.  This is the medium's mixing step fused with the channel
    /// application — no intermediate per-link signal is materialized.
    /// `acc` must not alias `signal` (the accumulation reads `signal`
    /// while writing, and may reallocate `acc`).
    void apply_onto(dsp::Signal_view signal, std::size_t at, dsp::Signal& acc) const;

    const Link_params& params() const { return params_; }

    /// Power gain h^2 of the link.
    double power_gain() const { return params_.gain * params_.gain; }

private:
    Link_params params_;
};

} // namespace anc::chan
