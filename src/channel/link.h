// Point-to-point link channel.
//
// The paper approximates the wireless channel between two nodes as an
// attenuation h plus a phase shift gamma (§5.3, citing Tse & Viswanath);
// on top of that the substrate models a whole-symbol propagation/queueing
// delay and an optional slow phase drift (a small carrier-frequency
// offset), which stresses the decoder's channel-invariance exactly the way
// real radios do.
//
// Beyond the paper's fixed-gain links, the channel supports Rayleigh
// block fading (Rahimian et al., "A General Analog Network Coding for
// Wireless Systems with Fading and Noisy Channels"): the link gain is a
// circularly-symmetric complex Gaussian h_k ~ CN(0, 1), constant over a
// coherence block of samples and independent across blocks.  Draws are
// counter-based — block k's gain is a pure function of (fading_seed, k)
// via the engine's mix_seed discipline — so a link's realization depends
// only on its parameters, never on call order, and paired schemes that
// share a seed see identical fades.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "dsp/math_profile.h"
#include "dsp/sample.h"

namespace anc::chan {

/// How the link's gain behaves over time.
enum class Gain_model {
    fixed,          ///< constant amplitude `gain` (the paper's model)
    rayleigh_block, ///< gain * h_k with h_k ~ CN(0,1) per coherence block
};

struct Link_params {
    double gain = 1.0;            // amplitude attenuation h (mean amplitude
                                  // scale under rayleigh_block: E[|h_k|^2]=1,
                                  // so the mean *power* gain stays gain^2)
    double phase = 0.0;           // phase shift gamma (radians)
    std::size_t delay = 0;        // whole-symbol delay
    double phase_drift = 0.0;     // radians of extra rotation per sample (CFO)
    Gain_model gain_model = Gain_model::fixed;
    /// rayleigh_block: samples per coherence block; 0 means one block
    /// spanning the whole transmission (quasi-static fading).
    std::size_t coherence_block = 0;
    /// Root of the per-block gain draws: block k at fading epoch e uses
    /// mix_seed(mix_seed(fading_seed, e), k).
    std::uint64_t fading_seed = 0;
    /// Per-link AGC-style packet-detection threshold (dB above the noise
    /// floor) for receivers *snooping* this link — a weak link (gain < 1)
    /// delivers packets below the standard carrier-sense threshold, so a
    /// deliberate snooper listens lower by the link's budget deficit
    /// (§11.5; the X topology's overhear links install this).  Empty
    /// means "use the receiver's standard threshold".  The Medium exposes
    /// it via detection_threshold_db(from, to).
    std::optional<double> detection_threshold_db{};
};

/// The AGC rule behind the per-link threshold: lower a base carrier-sense
/// threshold by the link's power budget deficit, −20·log10(gain) dB (a
/// unit-gain link keeps the base; gain 0.5 listens ≈6 dB lower).  Requires
/// gain > 0.
double agc_detection_threshold_db(double base_threshold_db, double link_gain);

/// Fixed:          y[n] = h * e^{i(gamma + drift*n)} * x[n - delay]
/// Rayleigh block: y[n] = h_{e,k(n)} * h * e^{i(gamma + drift*n)} * x[n - delay]
/// where k(n) = n / coherence_block indexes the fading block and `e` is
/// the *fading epoch* — a caller-supplied counter (the sims advance it
/// once per exchange through Medium::set_fading_epoch) that makes
/// successive packets over the same link see independent fades, while
/// paired schemes replaying the same epoch sequence see identical ones.
class Link_channel {
public:
    explicit Link_channel(Link_params params = {});

    dsp::Signal apply(dsp::Signal_view signal, std::uint64_t fading_epoch = 0,
                      dsp::Math_profile profile = dsp::Math_profile::exact) const;

    /// Accumulate the channel's output into `acc` starting at sample
    /// `at`: acc[at + delay + n] += y[n], growing acc (zero-filled) as
    /// needed.  This is the medium's mixing step fused with the channel
    /// application — no intermediate per-link signal is materialized.
    /// `acc` must not alias `signal` (the accumulation reads `signal`
    /// while writing, and may reallocate `acc`).
    ///
    /// Under Math_profile::fast the per-sample std::polar rotation is
    /// replaced by an incremental complex rotor (one sincos per span or
    /// per fading block, then a multiply recurrence); the drift-free case
    /// degenerates to a constant-rotor multiply-add loop that
    /// auto-vectorizes.  Rotor drift over a frame is ≲1e-13 relative —
    /// inside the corridor bounds.
    void apply_onto(dsp::Signal_view signal, std::size_t at, dsp::Signal& acc,
                    std::uint64_t fading_epoch = 0,
                    dsp::Math_profile profile = dsp::Math_profile::exact) const;

    /// The complex fading coefficient h_{epoch,block} (rayleigh_block
    /// only) — a pure function of (params' fading_seed, epoch, block).
    dsp::Sample block_gain(std::uint64_t fading_epoch, std::size_t block) const;

    const Link_params& params() const { return params_; }

    /// Power gain h^2 of the link (under rayleigh_block, the *mean*
    /// power gain: E[|h_k|^2] = 1).
    double power_gain() const { return params_.gain * params_.gain; }

private:
    /// Shared rayleigh_block kernel behind apply/apply_onto: accumulate
    /// the faded, rotated signal onto `out` (spanning signal.size()).
    void accumulate_faded(dsp::Signal_view signal, std::uint64_t fading_epoch,
                          dsp::Sample* out, dsp::Math_profile profile) const;

    /// Fixed-gain fast/simd kernel: rotor-recurrence accumulation
    /// (lane-dispatched under the simd profile — constant-rotor lanes
    /// when drift-free, cached rotor stream + complex multiply-accumulate
    /// lanes when drifting).
    void accumulate_fixed_fast(dsp::Signal_view signal, dsp::Sample* out,
                               dsp::Math_profile profile) const;

    /// First `samples` values of the fixed-gain rotor stream
    /// rotor_n = polar(gain, phase)·step^n, produced by the exact
    /// recurrence of the historical per-transmission loop and memoised —
    /// a fixed link's stream never changes, so the serial chain runs once
    /// per link instead of once per transmission.  The cache makes
    /// concurrent apply calls on one link racy; media (and their links)
    /// are owned per sweep task, never shared across threads.
    const dsp::Sample* rotor_stream(std::size_t samples) const;

    Link_params params_;
    mutable std::vector<dsp::Sample> rotor_cache_;
};

} // namespace anc::chan
