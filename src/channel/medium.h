// Broadcast wireless medium.
//
// This is the core hardware substitution of the reproduction (DESIGN.md
// §2): in place of USRP front-ends and the air, a Medium holds a link
// channel for every ordered node pair and computes, for each receiver,
// the *sum* of the channel-distorted signals of every node transmitting
// in the same round, plus receiver AWGN.  "Collision of two packets means
// that the channel adds their physical signals after applying
// attenuations and time shifts" (§1) — this class is that sentence.

#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <optional>
#include <vector>

#include "channel/awgn.h"
#include "channel/link.h"
#include "dsp/sample.h"
#include "util/rng.h"

namespace anc::chan {

using Node_id = std::uint32_t;

/// One node's transmission within a round: a *view* of the signal on the
/// air plus the symbol offset (MAC jitter, §7.2) at which it starts
/// relative to the round origin.  The view keeps rounds zero-copy — the
/// transmitter's buffer (typically a dsp::Workspace lease) must stay
/// alive until every receive() of the round has run, which every caller
/// naturally satisfies because rounds are synchronous.
struct Transmission {
    Node_id from = 0;
    dsp::Signal_view signal;
    std::size_t start = 0;
};

class Medium {
public:
    /// `noise_power` is the receiver noise floor (same at every node, as
    /// assumed in §8); `rng` seeds the per-receive noise streams.
    /// `profile` selects the math profile every receive() runs under:
    /// `exact` is the historical bit-identical path, `fast` the
    /// corridor-validated SIMD/counter-noise path (dsp/math_profile.h).
    Medium(double noise_power, Pcg32 rng,
           dsp::Math_profile profile = dsp::Math_profile::exact);

    /// Define the channel of the ordered pair (from -> to).  Pairs without
    /// a link are out of radio range: the receiver hears nothing from that
    /// sender.
    void set_link(Node_id from, Node_id to, Link_params params);

    bool has_link(Node_id from, Node_id to) const;

    /// The link's channel; throws if absent.
    const Link_channel& link(Node_id from, Node_id to) const;

    /// Per-link AGC detection threshold for receivers snooping
    /// (from -> to): the link's Link_params::detection_threshold_db, or
    /// empty when the link has none (or does not exist) — "use the
    /// standard carrier-sense threshold".
    std::optional<double> detection_threshold_db(Node_id from, Node_id to) const;

    /// Install or clear the per-link threshold on an existing link
    /// (throws std::out_of_range when absent).  Keeps the link's other
    /// parameters — including its random phase — untouched.
    void set_detection_threshold_db(Node_id from, Node_id to,
                                    std::optional<double> threshold_db);

    /// What `receiver` hears during a round in which `transmissions` are
    /// on the air: sum over in-range senders of link(sender, receiver)
    /// applied to the sender's signal at its start offset, plus AWGN over
    /// the whole span.  A half-duplex node cannot hear a round it
    /// transmits in; passing its own id among the senders is allowed (its
    /// own signal is simply skipped, since a radio does not receive its
    /// own transmission at baseband here).
    dsp::Signal receive(Node_id receiver,
                        std::span<const Transmission> transmissions,
                        std::size_t trailing_noise = 0);

    /// As above, into a caller-owned buffer (cleared first; typically a
    /// dsp::Workspace lease).  The allocation-free steady-state path.
    /// `out` must not alias any transmission's backing buffer — it is
    /// cleared before the signals are read.
    void receive_into(Node_id receiver,
                      std::span<const Transmission> transmissions,
                      std::size_t trailing_noise,
                      dsp::Signal& out);

    double noise_power() const { return noise_power_; }
    dsp::Math_profile math_profile() const { return profile_; }

    /// The fading epoch applied to every rayleigh_block link during
    /// receive(): a logical packet/exchange counter the simulation
    /// advances (once per exchange in the sim/ runners), so successive
    /// packets see independent fades while schemes replaying the same
    /// epoch sequence see identical ones.  No effect on fixed links.
    void set_fading_epoch(std::uint64_t epoch) { fading_epoch_ = epoch; }
    std::uint64_t fading_epoch() const { return fading_epoch_; }

    /// Channel-state introspection: append |h_{epoch,block}| for every
    /// coherence block a transmission of `samples` samples over
    /// (from -> to) spans at the medium's *current* fading epoch.  Pure
    /// (block gains are counter-based), so recording consumes no RNG
    /// state and cannot perturb results.  No-op for fixed-gain or absent
    /// links.
    void append_fade_magnitudes(Node_id from, Node_id to, std::size_t samples,
                                std::vector<double>& out) const;

private:
    std::map<std::pair<Node_id, Node_id>, Link_channel> links_;
    double noise_power_;
    Pcg32 rng_;
    dsp::Math_profile profile_;
    std::uint64_t fading_epoch_ = 0;
};

} // namespace anc::chan
