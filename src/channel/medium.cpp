#include "channel/medium.h"

#include <cmath>
#include <stdexcept>

#include "dsp/ops.h"
#include "util/obs.h"

namespace anc::chan {

Medium::Medium(double noise_power, Pcg32 rng, dsp::Math_profile profile)
    : noise_power_{noise_power}, rng_{rng}, profile_{profile}
{
}

void Medium::set_link(Node_id from, Node_id to, Link_params params)
{
    links_.insert_or_assign({from, to}, Link_channel{params});
}

bool Medium::has_link(Node_id from, Node_id to) const
{
    return links_.count({from, to}) > 0;
}

const Link_channel& Medium::link(Node_id from, Node_id to) const
{
    const auto it = links_.find({from, to});
    if (it == links_.end())
        throw std::out_of_range{"Medium::link: no such link"};
    return it->second;
}

std::optional<double> Medium::detection_threshold_db(Node_id from, Node_id to) const
{
    obs::count(obs::Counter::agc_lookups);
    const auto it = links_.find({from, to});
    if (it == links_.end())
        return std::nullopt;
    if (it->second.params().detection_threshold_db)
        obs::count(obs::Counter::agc_overrides);
    return it->second.params().detection_threshold_db;
}

void Medium::set_detection_threshold_db(Node_id from, Node_id to,
                                        std::optional<double> threshold_db)
{
    const auto it = links_.find({from, to});
    if (it == links_.end())
        throw std::out_of_range{"Medium::set_detection_threshold_db: no such link"};
    Link_params params = it->second.params();
    params.detection_threshold_db = threshold_db;
    it->second = Link_channel{params};
}

void Medium::append_fade_magnitudes(Node_id from, Node_id to, std::size_t samples,
                                    std::vector<double>& out) const
{
    const auto it = links_.find({from, to});
    if (it == links_.end() || samples == 0)
        return;
    const Link_channel& channel = it->second;
    if (channel.params().gain_model != Gain_model::rayleigh_block)
        return;
    const std::size_t block_len = channel.params().coherence_block == 0
                                      ? samples
                                      : channel.params().coherence_block;
    const std::size_t blocks = (samples + block_len - 1) / block_len;
    for (std::size_t block = 0; block < blocks; ++block)
        out.push_back(std::abs(channel.block_gain(fading_epoch_, block)));
}

dsp::Signal Medium::receive(Node_id receiver,
                            std::span<const Transmission> transmissions,
                            std::size_t trailing_noise)
{
    dsp::Signal mix;
    receive_into(receiver, transmissions, trailing_noise, mix);
    return mix;
}

void Medium::receive_into(Node_id receiver,
                          std::span<const Transmission> transmissions,
                          std::size_t trailing_noise,
                          dsp::Signal& out)
{
    const obs::Stage_timer timer{obs::Stage::channel};
    out.clear();
    for (const Transmission& tx : transmissions) {
        if (tx.from == receiver)
            continue; // half-duplex: you do not hear yourself
        const auto it = links_.find({tx.from, receiver});
        if (it == links_.end())
            continue; // out of radio range
        it->second.apply_onto(tx.signal, tx.start, out, fading_epoch_, profile_);
    }
    // Value-initializing resize: zero bits, same as Sample{0.0, 0.0},
    // minus the slow fill-construct path (see Link_channel::apply_onto).
    out.resize(out.size() + trailing_noise);
    Awgn noise{noise_power_, rng_.fork(static_cast<std::uint64_t>(receiver) + 1),
               profile_};
    noise.add_in_place(out);
}

} // namespace anc::chan
