#include "channel/medium.h"

#include <stdexcept>

#include "dsp/ops.h"

namespace anc::chan {

Medium::Medium(double noise_power, Pcg32 rng)
    : noise_power_{noise_power}, rng_{rng}
{
}

void Medium::set_link(Node_id from, Node_id to, Link_params params)
{
    links_.insert_or_assign({from, to}, Link_channel{params});
}

bool Medium::has_link(Node_id from, Node_id to) const
{
    return links_.count({from, to}) > 0;
}

const Link_channel& Medium::link(Node_id from, Node_id to) const
{
    const auto it = links_.find({from, to});
    if (it == links_.end())
        throw std::out_of_range{"Medium::link: no such link"};
    return it->second;
}

dsp::Signal Medium::receive(Node_id receiver,
                            std::span<const Transmission> transmissions,
                            std::size_t trailing_noise)
{
    dsp::Signal mix;
    receive_into(receiver, transmissions, trailing_noise, mix);
    return mix;
}

void Medium::receive_into(Node_id receiver,
                          std::span<const Transmission> transmissions,
                          std::size_t trailing_noise,
                          dsp::Signal& out)
{
    out.clear();
    for (const Transmission& tx : transmissions) {
        if (tx.from == receiver)
            continue; // half-duplex: you do not hear yourself
        const auto it = links_.find({tx.from, receiver});
        if (it == links_.end())
            continue; // out of radio range
        it->second.apply_onto(tx.signal, tx.start, out, fading_epoch_);
    }
    out.resize(out.size() + trailing_noise, dsp::Sample{0.0, 0.0});
    Awgn noise{noise_power_, rng_.fork(static_cast<std::uint64_t>(receiver) + 1)};
    noise.add_in_place(out);
}

} // namespace anc::chan
