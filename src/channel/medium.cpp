#include "channel/medium.h"

#include <stdexcept>

#include "dsp/ops.h"

namespace anc::chan {

Medium::Medium(double noise_power, Pcg32 rng)
    : noise_power_{noise_power}, rng_{rng}
{
}

void Medium::set_link(Node_id from, Node_id to, Link_params params)
{
    links_.insert_or_assign({from, to}, Link_channel{params});
}

bool Medium::has_link(Node_id from, Node_id to) const
{
    return links_.count({from, to}) > 0;
}

const Link_channel& Medium::link(Node_id from, Node_id to) const
{
    const auto it = links_.find({from, to});
    if (it == links_.end())
        throw std::out_of_range{"Medium::link: no such link"};
    return it->second;
}

dsp::Signal Medium::receive(Node_id receiver,
                            const std::vector<Transmission>& transmissions,
                            std::size_t trailing_noise)
{
    dsp::Signal mix;
    for (const Transmission& tx : transmissions) {
        if (tx.from == receiver)
            continue; // half-duplex: you do not hear yourself
        if (!has_link(tx.from, receiver))
            continue; // out of radio range
        const dsp::Signal through = link(tx.from, receiver).apply(tx.signal);
        dsp::accumulate(mix, through, tx.start);
    }
    mix.resize(mix.size() + trailing_noise, dsp::Sample{0.0, 0.0});
    Awgn noise{noise_power_, rng_.fork(static_cast<std::uint64_t>(receiver) + 1)};
    noise.add_in_place(mix);
    return mix;
}

} // namespace anc::chan
