#include "dsp/msk.h"

#include <cmath>
#include <numbers>

#include "util/phase.h"

namespace anc::dsp {

double msk_phase_step(std::uint8_t bit)
{
    constexpr double half_pi = std::numbers::pi / 2.0;
    return bit ? half_pi : -half_pi;
}

std::vector<double> phase_differences_for_bits(std::span<const std::uint8_t> bits)
{
    std::vector<double> steps;
    phase_differences_for_bits_into(bits, steps);
    return steps;
}

void phase_differences_for_bits_into(std::span<const std::uint8_t> bits,
                                     std::vector<double>& out)
{
    // Presized indexed writes let the ±π/2 select compile to a vector
    // blend; push_back's size bump kept the historical loop scalar.
    out.resize(bits.size());
    double* steps = out.data();
    for (std::size_t i = 0; i < bits.size(); ++i)
        steps[i] = msk_phase_step(bits[i]);
}

Msk_modulator::Msk_modulator(double amplitude, double initial_phase,
                             Math_profile profile)
    : amplitude_{amplitude}, initial_phase_{initial_phase}, profile_{profile}
{
}

Signal Msk_modulator::modulate(std::span<const std::uint8_t> bits) const
{
    Signal signal;
    modulate_into(bits, signal);
    return signal;
}

void Msk_modulator::modulate_into(std::span<const std::uint8_t> bits, Signal& out) const
{
    out.clear();
    out.reserve(bits.size() + 1);
    if (profile_ != Math_profile::exact) {
        // Fast and simd share this path: a ±π/2 phase step is
        // multiplication by ±i, which is a *lossless* component
        // swap/negate — the envelope stays exactly amplitude_ and no
        // per-sample sincos or phase accumulator is needed (nothing for
        // lanes to speed up).  Only the initial sample differs from the
        // exact path (fast_sincos vs libm, low-order bits).
        //
        // Every sample is the initial one rotated by a multiple of π/2,
        // so only four values ever occur; tracking the quadrant as a
        // 1-cycle integer recurrence and storing from a 4-entry table
        // breaks the FP swap/negate dependency chain the historical loop
        // carried.  The table entries are component swaps and exact sign
        // flips of the initial sample — bit-identical to iterating
        // multiplication by ±i (a 1-bit ^= 1 per step on a zero
        // component included).
        double s = 0.0;
        double c = 0.0;
        fast_sincos(initial_phase_, s, c);
        const double re = amplitude_ * c;
        const double im = amplitude_ * s;
        const double quad_re[4] = {re, -im, -re, im};
        const double quad_im[4] = {im, re, -im, -re};
        out.resize(bits.size() + 1);
        Sample* o = out.data();
        o[0] = Sample{re, im};
        unsigned quadrant = 0;
        for (std::size_t n = 0; n < bits.size(); ++n) {
            quadrant = (quadrant + (bits[n] ? 1u : 3u)) & 3u;
            o[n + 1] = Sample{quad_re[quadrant], quad_im[quadrant]};
        }
        return;
    }
    double phase = initial_phase_;
    out.push_back(std::polar(amplitude_, phase));
    bool unbounded = true; // the caller's initial phase may exceed 2*pi
    for (const std::uint8_t bit : bits) {
        const double stepped = phase + msk_phase_step(bit);
        // After the first wrap the accumulator lives in (-pi, pi], so a
        // step keeps it within the branch-only fold's exact domain.
        phase = unbounded ? wrap_phase(stepped) : wrap_phase_bounded(stepped);
        unbounded = false;
        out.push_back(std::polar(amplitude_, phase));
    }
}

Bits Msk_demodulator::demodulate(Signal_view signal) const
{
    Bits bits;
    demodulate_into(signal, bits);
    return bits;
}

void Msk_demodulator::demodulate_into(Signal_view signal, Bits& out) const
{
    out.clear();
    if (signal.size() < 2)
        return;
    out.reserve(signal.size() - 1);
    const double* data = reinterpret_cast<const double*>(signal.data());
    for (std::size_t n = 0; n + 1 < signal.size(); ++n) {
        // The historical rule is arg(y[n+1] * conj(y[n])) >= 0 — h and
        // gamma cancel (Eq. 1), so no channel estimate is needed.  atan2
        // is monotone in the quadrant structure, so the decision only
        // depends on the signs of the ratio's parts:
        //   im > 0            -> arg in (0, pi)      -> 1
        //   im < 0            -> arg in (-pi, 0)     -> 0
        //   im == +0.0        -> arg is +0 or +pi    -> 1
        //   im == -0.0        -> arg is -0 (re >= +0) or -pi (re < 0)
        //                        and -0.0 >= 0.0 holds -> signbit(re)
        // The products below are exactly the ones std::complex
        // multiplication performs, so the computed im/re match the old
        // path bit for bit (samples are finite throughout the substrate).
        const double ar = data[2 * n];
        const double ai = data[2 * n + 1];
        const double br = data[2 * n + 2];
        const double bi = data[2 * n + 3];
        const double im = br * -ai + bi * ar;
        bool one = im > 0.0;
        if (im == 0.0) {
            if (!std::signbit(im)) {
                one = true;
            } else {
                const double re = br * ar - bi * -ai;
                one = !std::signbit(re);
            }
        }
        out.push_back(one ? 1 : 0);
    }
}

std::vector<double> Msk_demodulator::phase_differences(Signal_view signal) const
{
    std::vector<double> diffs;
    if (signal.size() < 2)
        return diffs;
    diffs.reserve(signal.size() - 1);
    for (std::size_t n = 0; n + 1 < signal.size(); ++n)
        diffs.push_back(std::arg(signal[n + 1] * std::conj(signal[n])));
    return diffs;
}

} // namespace anc::dsp
