#include "dsp/msk.h"

#include <cmath>
#include <numbers>

#include "util/phase.h"

namespace anc::dsp {

double msk_phase_step(std::uint8_t bit)
{
    constexpr double half_pi = std::numbers::pi / 2.0;
    return bit ? half_pi : -half_pi;
}

std::vector<double> phase_differences_for_bits(std::span<const std::uint8_t> bits)
{
    std::vector<double> steps;
    steps.reserve(bits.size());
    for (const std::uint8_t bit : bits)
        steps.push_back(msk_phase_step(bit));
    return steps;
}

Msk_modulator::Msk_modulator(double amplitude, double initial_phase)
    : amplitude_{amplitude}, initial_phase_{initial_phase}
{
}

Signal Msk_modulator::modulate(std::span<const std::uint8_t> bits) const
{
    Signal signal;
    signal.reserve(bits.size() + 1);
    double phase = initial_phase_;
    signal.push_back(std::polar(amplitude_, phase));
    for (const std::uint8_t bit : bits) {
        phase = wrap_phase(phase + msk_phase_step(bit));
        signal.push_back(std::polar(amplitude_, phase));
    }
    return signal;
}

Bits Msk_demodulator::demodulate(Signal_view signal) const
{
    Bits bits;
    if (signal.size() < 2)
        return bits;
    bits.reserve(signal.size() - 1);
    for (std::size_t n = 0; n + 1 < signal.size(); ++n) {
        // arg(y[n+1] * conj(y[n])) = theta[n+1] - theta[n]; h and gamma
        // cancel (Eq. 1), so no channel estimate is needed.
        const Sample ratio = signal[n + 1] * std::conj(signal[n]);
        bits.push_back(std::arg(ratio) >= 0.0 ? 1 : 0);
    }
    return bits;
}

std::vector<double> Msk_demodulator::phase_differences(Signal_view signal) const
{
    std::vector<double> diffs;
    if (signal.size() < 2)
        return diffs;
    diffs.reserve(signal.size() - 1);
    for (std::size_t n = 0; n + 1 < signal.size(); ++n)
        diffs.push_back(std::arg(signal[n + 1] * std::conj(signal[n])));
    return diffs;
}

} // namespace anc::dsp
