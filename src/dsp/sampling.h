// Oversampling and symbol-clock recovery.
//
// Real SDR front-ends (the paper's USRP) sample several times per symbol
// and must recover the symbol clock before the symbol-spaced algorithms
// of §5-§6 can run ("we have to dive into the physical layer and adapt
// channel acquisition, modulation, clock recovery...", §2).  This module
// provides the rectangular-pulse version of that chain:
//
//   TX: upsample (sample-and-hold)  ->  channel at L samples/symbol
//   RX: boxcar matched filter  ->  pick the decimation phase where the
//       differential phase steps sit closest to the MSK lattice  ->
//       decimate to 1 sample/symbol.

#pragma once

#include <cstddef>

#include "dsp/sample.h"

namespace anc::dsp {

/// Each input sample repeated `factor` times (rectangular pulse shaping).
Signal upsampled(Signal_view signal, std::size_t factor);

/// Moving-average filter of `taps` samples (the matched filter for a
/// rectangular pulse); output[i] = mean(input[i - taps + 1 .. i]), with
/// the warm-up region averaged over what exists.
Signal boxcar_filtered(Signal_view signal, std::size_t taps);

/// Every `factor`-th sample starting at `phase`.
Signal decimated(Signal_view signal, std::size_t factor, std::size_t phase);

/// How well a symbol-spaced stream fits MSK: mean circular distance of
/// consecutive-sample phase differences from the nearest of +-pi/2.
/// 0 for ideal MSK; ~pi/4 for an unsynchronized or non-MSK stream.
double msk_lattice_fit(Signal_view symbol_spaced);

/// Symbol-clock recovery: the decimation phase in [0, factor) whose
/// decimated stream best fits the MSK lattice.  Run on the matched-
/// filtered stream.
std::size_t recover_symbol_phase(Signal_view oversampled, std::size_t factor);

} // namespace anc::dsp
