#include "dsp/energy_scan.h"

#include <stdexcept>

namespace anc::dsp {

std::vector<double> sample_energies(Signal_view signal)
{
    std::vector<double> energies;
    energies.reserve(signal.size());
    for (const Sample& s : signal)
        energies.push_back(std::norm(s));
    return energies;
}

double mean_energy(Signal_view signal)
{
    if (signal.empty())
        return 0.0;
    double total = 0.0;
    for (const Sample& s : signal)
        total += std::norm(s);
    return total / static_cast<double>(signal.size());
}

Energy_scan scan_energy(Signal_view signal, std::size_t window)
{
    if (window == 0)
        throw std::invalid_argument{"scan_energy: window must be positive"};
    Energy_scan scan;
    scan.window = window;
    if (signal.size() < window)
        return scan;

    const std::vector<double> e = sample_energies(signal);
    const std::size_t windows = e.size() - window + 1;
    scan.window_mean.reserve(windows);
    scan.window_variance.reserve(windows);

    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < window; ++i) {
        sum += e[i];
        sum_sq += e[i] * e[i];
    }
    const auto w = static_cast<double>(window);
    for (std::size_t start = 0;; ++start) {
        const double mean = sum / w;
        // Population variance; clamp tiny negatives from cancellation.
        double variance = sum_sq / w - mean * mean;
        if (variance < 0.0)
            variance = 0.0;
        scan.window_mean.push_back(mean);
        scan.window_variance.push_back(variance);
        if (start + window >= e.size())
            break;
        sum += e[start + window] - e[start];
        sum_sq += e[start + window] * e[start + window] - e[start] * e[start];
    }
    return scan;
}

} // namespace anc::dsp
