#include "dsp/energy_scan.h"

#include <stdexcept>

namespace anc::dsp {

std::vector<double> sample_energies(Signal_view signal)
{
    std::vector<double> energies;
    sample_energies_into(signal, energies);
    return energies;
}

void sample_energies_into(Signal_view signal, std::vector<double>& out)
{
    const std::size_t n = signal.size();
    out.resize(n);
    const double* data = reinterpret_cast<const double*>(signal.data());
    double* e = out.data();
    for (std::size_t i = 0; i < n; ++i) {
        // Exactly std::norm: re*re + im*im.
        e[i] = data[2 * i] * data[2 * i] + data[2 * i + 1] * data[2 * i + 1];
    }
}

double mean_energy(Signal_view signal)
{
    if (signal.empty())
        return 0.0;
    const double* data = reinterpret_cast<const double*>(signal.data());
    const std::size_t n = signal.size();
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        total += data[2 * i] * data[2 * i] + data[2 * i + 1] * data[2 * i + 1];
    return total / static_cast<double>(n);
}

Energy_scan scan_energy(Signal_view signal, std::size_t window)
{
    Energy_scan scan;
    scan.window = window;
    std::vector<double> energies;
    scan_energy_into(signal, window, energies, scan.window_mean, scan.window_variance);
    return scan;
}

void scan_energy_into(Signal_view signal, std::size_t window,
                      std::vector<double>& scratch_energies,
                      std::vector<double>& window_mean,
                      std::vector<double>& window_variance)
{
    if (window == 0)
        throw std::invalid_argument{"scan_energy: window must be positive"};
    window_mean.clear();
    window_variance.clear();
    if (signal.size() < window)
        return;

    sample_energies_into(signal, scratch_energies);
    const double* e = scratch_energies.data();
    const std::size_t count = scratch_energies.size();
    const std::size_t windows = count - window + 1;
    window_mean.reserve(windows);
    window_variance.reserve(windows);

    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < window; ++i) {
        sum += e[i];
        sum_sq += e[i] * e[i];
    }
    const auto w = static_cast<double>(window);
    for (std::size_t start = 0;; ++start) {
        const double mean = sum / w;
        // Population variance; clamp tiny negatives from cancellation.
        double variance = sum_sq / w - mean * mean;
        if (variance < 0.0)
            variance = 0.0;
        window_mean.push_back(mean);
        window_variance.push_back(variance);
        if (start + window >= count)
            break;
        sum += e[start + window] - e[start];
        sum_sq += e[start + window] * e[start + window] - e[start] * e[start];
    }
}

} // namespace anc::dsp
