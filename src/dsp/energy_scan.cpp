#include "dsp/energy_scan.h"

#include <stdexcept>

namespace anc::dsp {

std::vector<double> sample_energies(Signal_view signal)
{
    std::vector<double> energies;
    sample_energies_into(signal, energies);
    return energies;
}

void sample_energies_into(Signal_view signal, std::vector<double>& out)
{
    const std::size_t n = signal.size();
    out.resize(n);
    const double* data = reinterpret_cast<const double*>(signal.data());
    double* e = out.data();
    for (std::size_t i = 0; i < n; ++i) {
        // Exactly std::norm: re*re + im*im.
        e[i] = data[2 * i] * data[2 * i] + data[2 * i + 1] * data[2 * i + 1];
    }
}

double mean_energy(Signal_view signal)
{
    if (signal.empty())
        return 0.0;
    const double* data = reinterpret_cast<const double*>(signal.data());
    const std::size_t n = signal.size();
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        total += data[2 * i] * data[2 * i] + data[2 * i + 1] * data[2 * i + 1];
    return total / static_cast<double>(n);
}

Energy_scan scan_energy(Signal_view signal, std::size_t window)
{
    Energy_scan scan;
    scan.window = window;
    std::vector<double> energies;
    scan_energy_into(signal, window, energies, scan.window_mean, scan.window_variance);
    return scan;
}

namespace {

/// x / 2^k and x * 2^-k round identically for every double (scaling by
/// an exact power of two), so when the window is a power of two the
/// per-window divides — vdivpd is the one poorly-pipelined instruction
/// in the finalize loops — become multiplies without changing a bit.
/// Both detector windows (16 and 64) take this path.
inline bool exact_reciprocal(std::size_t window)
{
    return (window & (window - 1)) == 0;
}

} // namespace

void scan_energy_into(Signal_view signal, std::size_t window,
                      std::vector<double>& scratch_energies,
                      std::vector<double>& window_mean,
                      std::vector<double>& window_variance)
{
    if (window == 0)
        throw std::invalid_argument{"scan_energy: window must be positive"};
    window_mean.clear();
    window_variance.clear();
    if (signal.size() < window)
        return;

    sample_energies_into(signal, scratch_energies);
    const double* e = scratch_energies.data();
    const std::size_t count = scratch_energies.size();
    const std::size_t windows = count - window + 1;

    // Split the historical single loop into (a) the serial sliding-sum
    // recurrence — an IEEE addition chain whose order defines the
    // byte-identical contract, so it cannot be reassociated — and (b)
    // the per-window mean/variance arithmetic, which is element-wise
    // independent and auto-vectorizes (two divides, a multiply and a
    // clamped subtract per window run 4 lanes wide instead of hiding
    // inside the recurrence's dependency chain).  Same operations per
    // element, same order within each element: byte-identical to the
    // fused loop (tests/dsp/energy_scan_test.cpp pins this against a
    // reference transcription of the historical kernel).
    window_mean.resize(windows);
    window_variance.resize(windows);
    double* sums = window_mean.data();
    double* sum_sqs = window_variance.data();

    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < window; ++i) {
        sum += e[i];
        sum_sq += e[i] * e[i];
    }
    sums[0] = sum;
    sum_sqs[0] = sum_sq;
    for (std::size_t start = 1; start < windows; ++start) {
        sum += e[start - 1 + window] - e[start - 1];
        sum_sq += e[start - 1 + window] * e[start - 1 + window]
                  - e[start - 1] * e[start - 1];
        sums[start] = sum;
        sum_sqs[start] = sum_sq;
    }

    const auto w = static_cast<double>(window);
    const double inv_w = 1.0 / w;
    if (exact_reciprocal(window)) {
        for (std::size_t start = 0; start < windows; ++start) {
            const double mean = sums[start] * inv_w;
            double variance = sum_sqs[start] * inv_w - mean * mean;
            variance = variance < 0.0 ? 0.0 : variance;
            sums[start] = mean;
            sum_sqs[start] = variance;
        }
        return;
    }
    for (std::size_t start = 0; start < windows; ++start) {
        const double mean = sums[start] / w;
        // Population variance; clamp tiny negatives from cancellation
        // (the comparison form preserves a -0.0 exactly as the
        // historical `if (variance < 0.0) variance = 0.0;` did).
        double variance = sum_sqs[start] / w - mean * mean;
        variance = variance < 0.0 ? 0.0 : variance;
        sums[start] = mean;
        sum_sqs[start] = variance;
    }
}

void scan_energy_mean_into(Signal_view signal, std::size_t window,
                           std::vector<double>& scratch_energies,
                           std::vector<double>& window_mean)
{
    if (window == 0)
        throw std::invalid_argument{"scan_energy: window must be positive"};
    window_mean.clear();
    if (signal.size() < window)
        return;

    sample_energies_into(signal, scratch_energies);
    const double* e = scratch_energies.data();
    const std::size_t count = scratch_energies.size();
    const std::size_t windows = count - window + 1;

    // The sum recurrence never reads sum_sq, so dropping the variance
    // half leaves every emitted mean byte-identical to scan_energy_into
    // while halving both the serial chain and the finalize pass — the
    // packet detector (which never looks at the variance series) runs
    // this on every receive.
    window_mean.resize(windows);
    double* sums = window_mean.data();

    double sum = 0.0;
    for (std::size_t i = 0; i < window; ++i)
        sum += e[i];
    sums[0] = sum;
    for (std::size_t start = 1; start < windows; ++start) {
        sum += e[start - 1 + window] - e[start - 1];
        sums[start] = sum;
    }

    const auto w = static_cast<double>(window);
    const double inv_w = 1.0 / w;
    if (exact_reciprocal(window)) {
        for (std::size_t start = 0; start < windows; ++start)
            sums[start] *= inv_w;
        return;
    }
    for (std::size_t start = 0; start < windows; ++start)
        sums[start] /= w;
}

} // namespace anc::dsp
