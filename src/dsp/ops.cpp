#include "dsp/ops.h"

#include <algorithm>
#include <cmath>

#include "dsp/energy_scan.h"

namespace anc::dsp {

Signal scaled(Signal_view signal, double scale)
{
    Signal out;
    out.reserve(signal.size());
    for (const Sample& s : signal)
        out.push_back(s * scale);
    return out;
}

Signal rotated(Signal_view signal, double phase)
{
    const Sample rotor = std::polar(1.0, phase);
    Signal out;
    out.reserve(signal.size());
    for (const Sample& s : signal)
        out.push_back(s * rotor);
    return out;
}

Signal delayed(Signal_view signal, std::size_t count)
{
    Signal out(count, Sample{0.0, 0.0});
    out.insert(out.end(), signal.begin(), signal.end());
    return out;
}

Signal added(Signal_view a, Signal_view b)
{
    Signal out(std::max(a.size(), b.size()), Sample{0.0, 0.0});
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] += a[i];
    for (std::size_t i = 0; i < b.size(); ++i)
        out[i] += b[i];
    return out;
}

void accumulate(Signal& acc, Signal_view signal, std::size_t offset)
{
    if (acc.size() < offset + signal.size())
        acc.resize(offset + signal.size(), Sample{0.0, 0.0});
    for (std::size_t i = 0; i < signal.size(); ++i)
        acc[offset + i] += signal[i];
}

Signal reversed(Signal_view signal)
{
    return Signal{signal.rbegin(), signal.rend()};
}

Signal conjugated(Signal_view signal)
{
    Signal out;
    out.reserve(signal.size());
    for (const Sample& s : signal)
        out.push_back(std::conj(s));
    return out;
}

Signal time_reversed(Signal_view signal)
{
    Signal out;
    out.reserve(signal.size());
    for (auto it = signal.rbegin(); it != signal.rend(); ++it)
        out.push_back(std::conj(*it));
    return out;
}

Signal slice(Signal_view signal, std::size_t begin, std::size_t end)
{
    begin = std::min(begin, signal.size());
    end = std::clamp(end, begin, signal.size());
    return Signal{signal.begin() + static_cast<std::ptrdiff_t>(begin),
                  signal.begin() + static_cast<std::ptrdiff_t>(end)};
}

double power(Signal_view signal)
{
    return mean_energy(signal);
}

Signal normalized_to_power(Signal_view signal, double target_power)
{
    const double current = power(signal);
    if (current <= 0.0)
        return Signal{signal.begin(), signal.end()};
    return scaled(signal, std::sqrt(target_power / current));
}

} // namespace anc::dsp
