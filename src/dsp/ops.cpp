#include "dsp/ops.h"

#include <algorithm>
#include <cmath>

#include "dsp/energy_scan.h"
#include "util/simd.h"

namespace anc::dsp {

// std::complex<double> is guaranteed layout-compatible with double[2]
// ([complex.numbers.general]), so the kernels below iterate over the raw
// interleaved re/im array — the form GCC and Clang auto-vectorize without
// needing to see through std::complex operator overloads.  Each kernel
// performs exactly the arithmetic (same operations, same order) of the
// value-returning function it backs, so results are bit-identical.

void scale_in_place(Signal& signal, double scale)
{
    double* data = reinterpret_cast<double*>(signal.data());
    const std::size_t n = 2 * signal.size();
    for (std::size_t i = 0; i < n; ++i)
        data[i] *= scale;
}

void rotate_in_place(Signal& signal, double phase)
{
    const Sample rotor = std::polar(1.0, phase);
    const double rr = rotor.real();
    const double ri = rotor.imag();
    double* data = reinterpret_cast<double*>(signal.data());
    const std::size_t n = signal.size();
    for (std::size_t i = 0; i < n; ++i) {
        // Exactly std::complex operator*: (a+bi)(rr+ri i).
        const double re = data[2 * i];
        const double im = data[2 * i + 1];
        data[2 * i] = re * rr - im * ri;
        data[2 * i + 1] = re * ri + im * rr;
    }
}

void conjugate_in_place(Signal& signal)
{
    double* data = reinterpret_cast<double*>(signal.data());
    const std::size_t n = signal.size();
    for (std::size_t i = 0; i < n; ++i)
        data[2 * i + 1] = -data[2 * i + 1];
}

void time_reverse_into(Signal_view signal, Signal& out)
{
    const std::size_t n = signal.size();
    out.resize(n);
    const double* in = reinterpret_cast<const double*>(signal.data());
    double* rev = reinterpret_cast<double*>(out.data());
    for (std::size_t i = 0; i < n; ++i) {
        rev[2 * i] = in[2 * (n - 1 - i)];
        rev[2 * i + 1] = -in[2 * (n - 1 - i) + 1];
    }
}

void slice_into(Signal_view signal, std::size_t begin, std::size_t end, Signal& out)
{
    begin = std::min(begin, signal.size());
    end = std::clamp(end, begin, signal.size());
    out.assign(signal.begin() + static_cast<std::ptrdiff_t>(begin),
               signal.begin() + static_cast<std::ptrdiff_t>(end));
}

void copy_into(Signal_view signal, Signal& out)
{
    out.assign(signal.begin(), signal.end());
}

void add_into(Signal& acc, Signal_view signal)
{
    if (acc.size() < signal.size())
        acc.resize(signal.size(), Sample{0.0, 0.0});
    double* a = reinterpret_cast<double*>(acc.data());
    const double* s = reinterpret_cast<const double*>(signal.data());
    const std::size_t n = 2 * signal.size();
    for (std::size_t i = 0; i < n; ++i)
        a[i] += s[i];
}

void accumulate(Signal& acc, Signal_view signal, std::size_t offset)
{
    if (acc.size() < offset + signal.size())
        acc.resize(offset + signal.size(), Sample{0.0, 0.0});
    double* a = reinterpret_cast<double*>(acc.data() + offset);
    const double* s = reinterpret_cast<const double*>(signal.data());
    const std::size_t n = 2 * signal.size();
    for (std::size_t i = 0; i < n; ++i)
        a[i] += s[i];
}

void polar_into(std::span<const double> phases, double amplitude,
                Math_profile profile, Signal& out)
{
    const std::size_t n = phases.size();
    out.resize(n);
    if (profile == Math_profile::exact) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = std::polar(amplitude, phases[i]);
        return;
    }
    double* data = reinterpret_cast<double*>(out.data());
    if (profile == Math_profile::simd) {
        // Batched lanes (4 sincos per step), bit-identical to the fast
        // loop below — see util/simd.h.
        simd::polar_batch(phases.data(), amplitude, data, n);
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        double s = 0.0;
        double c = 0.0;
        fast_sincos(phases[i], s, c);
        data[2 * i] = amplitude * c;
        data[2 * i + 1] = amplitude * s;
    }
}

double normalize_power_in_place(Signal& signal, double target_power)
{
    const double current = power(signal);
    if (current > 0.0)
        scale_in_place(signal, std::sqrt(target_power / current));
    return current;
}

// ------------------------------------------------- value-returning API

Signal scaled(Signal_view signal, double scale)
{
    Signal out{signal.begin(), signal.end()};
    scale_in_place(out, scale);
    return out;
}

Signal rotated(Signal_view signal, double phase)
{
    Signal out{signal.begin(), signal.end()};
    rotate_in_place(out, phase);
    return out;
}

Signal delayed(Signal_view signal, std::size_t count)
{
    Signal out;
    out.reserve(count + signal.size());
    out.assign(count, Sample{0.0, 0.0});
    out.insert(out.end(), signal.begin(), signal.end());
    return out;
}

Signal added(Signal_view a, Signal_view b)
{
    Signal out;
    out.reserve(std::max(a.size(), b.size()));
    add_into(out, a);
    add_into(out, b);
    return out;
}

Signal reversed(Signal_view signal)
{
    return Signal{signal.rbegin(), signal.rend()};
}

Signal conjugated(Signal_view signal)
{
    Signal out{signal.begin(), signal.end()};
    conjugate_in_place(out);
    return out;
}

Signal time_reversed(Signal_view signal)
{
    Signal out;
    time_reverse_into(signal, out);
    return out;
}

Signal slice(Signal_view signal, std::size_t begin, std::size_t end)
{
    Signal out;
    slice_into(signal, begin, end, out);
    return out;
}

Signal_view slice_view(Signal_view signal, std::size_t begin, std::size_t end)
{
    begin = std::min(begin, signal.size());
    end = std::clamp(end, begin, signal.size());
    return signal.subspan(begin, end - begin);
}

double power(Signal_view signal)
{
    return mean_energy(signal);
}

Signal normalized_to_power(Signal_view signal, double target_power)
{
    Signal out{signal.begin(), signal.end()};
    normalize_power_in_place(out, target_power);
    return out;
}

} // namespace anc::dsp
