// Minimum Shift Keying modulation and demodulation (§5 of the paper).
//
// MSK encodes a "1" as a phase advance of +pi/2 between consecutive
// samples and a "0" as -pi/2; the amplitude is constant.  Demodulation is
// differential — the ratio of consecutive samples cancels both the channel
// attenuation h and the channel phase gamma (Eq. 1), which is exactly the
// robustness the paper's interference decoder builds on.
//
// The `*_into` variants write into a caller-owned buffer (typically a
// dsp::Workspace lease) and are the allocation-free hot path; the
// value-returning forms wrap them.

#pragma once

#include <cstdint>
#include <span>

#include "dsp/math_profile.h"
#include "dsp/sample.h"
#include "util/bits.h"

namespace anc::dsp {

/// Phase step that encodes a single bit: +pi/2 for 1, -pi/2 for 0.
double msk_phase_step(std::uint8_t bit);

/// Expected per-symbol phase differences for a bit sequence.  This is the
/// "known phase difference" sequence (delta theta_s) that an ANC receiver
/// derives from a packet it already knows (§6.3): the receiver never needs
/// the absolute phases, only these differences.
std::vector<double> phase_differences_for_bits(std::span<const std::uint8_t> bits);

/// As above, into a caller-owned buffer (cleared first).
void phase_differences_for_bits_into(std::span<const std::uint8_t> bits,
                                     std::vector<double>& out);

/// MSK modulator.
///
/// Produces len(bits) + 1 samples: the initial reference sample plus one
/// sample per bit (a bit lives in the transition *between* samples).
class Msk_modulator {
public:
    /// `amplitude` is the constant envelope A_s; `initial_phase` seeds the
    /// phase accumulator (a real transmitter starts at an arbitrary phase,
    /// so experiments randomize it).  Under Math_profile::fast, samples
    /// are produced by rotating the previous sample by exactly ±i (a
    /// lossless component swap/negate) instead of re-evaluating
    /// std::polar on the accumulated phase — no per-sample sincos at all;
    /// only the initial sample's sincos is approximate.
    explicit Msk_modulator(double amplitude = 1.0, double initial_phase = 0.0,
                           Math_profile profile = Math_profile::exact);

    Signal modulate(std::span<const std::uint8_t> bits) const;

    /// Modulate into a caller-owned buffer (cleared first).
    void modulate_into(std::span<const std::uint8_t> bits, Signal& out) const;

    double amplitude() const { return amplitude_; }
    Math_profile math_profile() const { return profile_; }

private:
    double amplitude_;
    double initial_phase_;
    Math_profile profile_;
};

/// MSK differential demodulator.
class Msk_demodulator {
public:
    /// Hard decisions: bit n is 1 iff arg(y[n+1] * conj(y[n])) >= 0.
    /// Produces len(signal) - 1 bits (empty for signals shorter than 2).
    Bits demodulate(Signal_view signal) const;

    /// As above, into a caller-owned buffer (cleared first).  The
    /// decision is evaluated from the sign structure of the ratio's
    /// imaginary part — no atan2 — which is exactly equivalent to the
    /// arg-based rule for finite samples (see the implementation note).
    void demodulate_into(Signal_view signal, Bits& out) const;

    /// Soft output: the raw per-symbol phase differences, wrapped to
    /// (-pi, pi].  Useful for diagnostics and for the interference tests.
    std::vector<double> phase_differences(Signal_view signal) const;
};

} // namespace anc::dsp
