// Reusable scratch buffers for the sample-stream hot path.
//
// Every sweep point runs the Fig. 8 pipeline (modulate -> medium mix ->
// relay amplify -> demodulate) thousands of times; building a fresh
// std::vector for every intermediate stream made the steady state
// allocation-bound.  A Workspace is a small pool of typed buffers
// (Signal, Bits, std::vector<double>) that hot callers *lease*: a lease
// hands out a cleared buffer whose capacity survives from previous uses,
// and returns it to the pool when it goes out of scope.  After a warm-up
// pass, leasing is allocation-free (PERF.md documents the invariant;
// bench/pipeline_throughput measures it).
//
// Ownership model: the engine executor owns one Workspace per worker
// thread and *binds* it for the thread's lifetime, so buffers are
// recycled across tasks.  Code outside the engine (examples, tests,
// single runs) transparently falls back to a per-thread default.  A
// Workspace is intentionally not thread-safe: it is only ever touched by
// the thread it is bound on, which is exactly the executor's
// no-shared-mutable-state discipline.
//
// Determinism: a lease always starts logically empty (clear(), capacity
// retained) and every kernel fully overwrites what it reads, so pooled
// buffers can never leak state between tasks — the engine's
// thread-invariance and workspace-regression tests enforce this.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "dsp/sample.h"
#include "util/bits.h"

namespace anc::dsp {

class Workspace {
    template <class T>
    struct Pool {
        std::vector<std::unique_ptr<std::vector<T>>> storage;
        std::vector<std::vector<T>*> free;
        std::size_t created = 0;
        std::size_t served = 0;

        std::vector<T>* acquire()
        {
            ++served;
            if (free.empty()) {
                storage.push_back(std::make_unique<std::vector<T>>());
                free.push_back(storage.back().get());
                ++created;
            }
            std::vector<T>* buffer = free.back();
            free.pop_back();
            buffer->clear();
            return buffer;
        }
    };

public:
    /// RAII handle over a pooled buffer.  Movable, not copyable; returns
    /// the buffer to its pool on destruction.
    template <class T>
    class Lease {
    public:
        Lease(Pool<T>* pool, std::vector<T>* buffer)
            : pool_{pool}, buffer_{buffer}
        {
        }
        Lease(Lease&& other) noexcept
            : pool_{other.pool_}, buffer_{other.buffer_}
        {
            other.pool_ = nullptr;
            other.buffer_ = nullptr;
        }
        Lease& operator=(Lease&& other) noexcept
        {
            if (this != &other) {
                release();
                pool_ = other.pool_;
                buffer_ = other.buffer_;
                other.pool_ = nullptr;
                other.buffer_ = nullptr;
            }
            return *this;
        }
        Lease(const Lease&) = delete;
        Lease& operator=(const Lease&) = delete;
        ~Lease() { release(); }

        std::vector<T>& operator*() const { return *buffer_; }
        std::vector<T>* operator->() const { return buffer_; }

    private:
        void release()
        {
            if (pool_ && buffer_)
                pool_->free.push_back(buffer_);
            pool_ = nullptr;
            buffer_ = nullptr;
        }

        Pool<T>* pool_;
        std::vector<T>* buffer_;
    };

    Workspace() = default;
    Workspace(const Workspace&) = delete;
    Workspace& operator=(const Workspace&) = delete;

    /// Lease a cleared sample buffer (capacity retained across leases).
    Lease<Sample> signal() { return {&signals_, signals_.acquire()}; }

    /// Lease a cleared bit buffer.
    Lease<std::uint8_t> bits() { return {&bits_, bits_.acquire()}; }

    /// Lease a cleared real-valued buffer.
    Lease<double> reals() { return {&reals_, reals_.acquire()}; }

    /// Lease a cleared 64-bit word buffer (the bit-domain pilot search's
    /// packed-haystack scratch, phy/pilot.h).
    Lease<std::uint64_t> words() { return {&words_, words_.acquire()}; }

    /// Buffers created since construction — stops growing once the pool
    /// is warm (the zero-allocation invariant tests watch this).
    std::size_t buffers_created() const
    {
        return signals_.created + bits_.created + reals_.created + words_.created;
    }

    /// Total leases served (diagnostics).
    std::size_t leases_served() const
    {
        return signals_.served + bits_.served + reals_.served + words_.served;
    }

    /// The workspace bound to this thread, or a per-thread default when
    /// none is bound.  Hot-path components reach their scratch buffers
    /// through this accessor, so binding is purely an ownership decision.
    static Workspace& current();

    /// Scoped binding: makes `workspace` the thread's current workspace
    /// for the lifetime of the Bind (the engine executor binds one per
    /// worker thread).  Nested binds restore the previous binding.
    class Bind {
    public:
        explicit Bind(Workspace& workspace);
        Bind(const Bind&) = delete;
        Bind& operator=(const Bind&) = delete;
        ~Bind();

    private:
        Workspace* previous_;
    };

private:
    Pool<Sample> signals_;
    Pool<std::uint8_t> bits_;
    Pool<double> reals_;
    Pool<std::uint64_t> words_;
};

/// Shorthand for the common lease types.
using Signal_lease = Workspace::Lease<Sample>;
using Bits_lease = Workspace::Lease<std::uint8_t>;
using Reals_lease = Workspace::Lease<double>;
using Words_lease = Workspace::Lease<std::uint64_t>;

} // namespace anc::dsp
