// Additive scrambler (payload whitening).
//
// The amplitude estimator of §6.2 relies on E[cos(theta - phi)] ~ 0, which
// holds only if the transmitted bits look random.  The paper's fix: "we
// XOR them with a pseudo-random sequence at the sender, and XOR them again
// with the same sequence at the receiver" — a classic additive scrambler.
// We generate the keystream with a 16-bit Fibonacci LFSR (x^16 + x^14 +
// x^13 + x^11 + 1, the CCITT V.41 polynomial), seeded identically at both
// ends.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bits.h"

namespace anc::dsp {

/// Self-inverse whitening transform: scramble(scramble(x)) == x.
///
/// The keystream restarts from the seed on every apply(), so it is a
/// fixed sequence per instance; the serial LFSR recurrence therefore
/// runs once per prefix length and is memoised, leaving apply() a flat
/// (auto-vectorized) XOR.  The cache makes concurrent apply() calls on
/// one instance racy — modems own their scrambler per node and sweep
/// tasks own their nodes per worker, so no instance is ever shared
/// across threads.
class Scrambler {
public:
    explicit Scrambler(std::uint16_t seed = 0xACE1u);

    /// XOR the bits with the keystream (restarted from the seed on every
    /// call, so each packet is whitened independently).
    Bits apply(std::span<const std::uint8_t> bits) const;

private:
    void extend_keystream(std::size_t length) const;

    std::uint16_t seed_;
    mutable std::uint16_t lfsr_ = 0; // state after keystream_.size() steps
    mutable std::vector<std::uint8_t> keystream_;
};

} // namespace anc::dsp
