// pi/4-DQPSK: differential quadrature phase-shift keying.
//
// §4 of the paper: "the ideas we develop in this paper, especially §6.1,
// are applicable to any phase shift keying modulation."  This module
// provides a second PSK scheme to make that concrete: two bits per
// transition, phase steps of +-pi/4 and +-3pi/4 (Gray-mapped), constant
// envelope, and — like MSK — channel-invariant differential
// demodulation.  The interference decoder's generic-alphabet entry point
// (Interference_decoder::decode_symbols) decodes a DQPSK signal out of a
// collision exactly as it does MSK.

#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "dsp/math_profile.h"
#include "dsp/sample.h"
#include "util/bits.h"

namespace anc::dsp {

/// Phase step per symbol index; index = dibit (b0 b1) Gray-decoded.
///   00 -> +pi/4, 01 -> +3pi/4, 11 -> -3pi/4, 10 -> -pi/4
inline constexpr std::array<double, 4> dqpsk_steps = {
    0.25 * 3.14159265358979323846,  // 00
    0.75 * 3.14159265358979323846,  // 01
    -0.75 * 3.14159265358979323846, // 11
    -0.25 * 3.14159265358979323846, // 10
};

/// Symbol index (0..3) for a dibit.
std::size_t dqpsk_symbol_for_bits(std::uint8_t b0, std::uint8_t b1);

/// The dibit for a symbol index.
std::pair<std::uint8_t, std::uint8_t> dqpsk_bits_for_symbol(std::size_t symbol);

/// Nearest alphabet entry for a measured phase difference.
std::size_t dqpsk_nearest_symbol(double phase_difference);

/// Expected per-transition phase differences for a bit sequence (the
/// "known delta theta" sequence when the known packet is DQPSK).  The
/// bit count must be even.
std::vector<double> dqpsk_phase_steps_for_bits(std::span<const std::uint8_t> bits);

class Dqpsk_modulator {
public:
    explicit Dqpsk_modulator(double amplitude = 1.0, double initial_phase = 0.0,
                             Math_profile profile = Math_profile::exact);

    /// bits.size() must be even; produces bits.size()/2 + 1 samples.
    /// Phases are accumulated first and converted through the batched
    /// ops::polar_into fill (exact: std::polar per element, byte-identical
    /// to the historical loop; fast: fast_sincos).
    Signal modulate(std::span<const std::uint8_t> bits) const;

    double amplitude() const { return amplitude_; }
    Math_profile math_profile() const { return profile_; }

private:
    double amplitude_;
    double initial_phase_;
    Math_profile profile_;
};

class Dqpsk_demodulator {
public:
    explicit Dqpsk_demodulator(Math_profile profile = Math_profile::exact);

    /// Hard decisions: two bits per sample transition.
    Bits demodulate(Signal_view signal) const;

private:
    Math_profile profile_;
};

} // namespace anc::dsp
