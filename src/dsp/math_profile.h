// The math-profile seam: one enum that selects, at every transcendental
// call site of the sample pipeline, between the bit-exact libm kernels
// and the fast approximate ones (util/fastmath.h).
//
//   exact — byte-identical to the historical implementation.  Every
//           golden test, sweep JSON, and figure reproduction runs here
//           by default; nothing about this profile may drift.
//   fast  — SIMD-friendly polynomial transcendentals and counter-based
//           noise.  Outputs differ from `exact` in low-order bits (and
//           the noise stream is a different, equally-valid realization),
//           so results are validated *statistically*: the corridor tests
//           (tests/engine/math_profile_corridor_test.cpp) bound the
//           BER/delivery-rate deviation from `exact`, per the
//           relaxed-determinism design in PERF.md "Math profiles".
//
//   simd  — the explicit AVX2+FMA kernel backend (util/simd.h).  Batch
//           call sites (interference decode, AWGN fill, DQPSK polar)
//           route through anc::simd's runtime-dispatched lane kernels;
//           single-sample call sites use the scalar fast kernels.  The
//           lane kernels are *bit-compatible* with the scalar fast
//           kernels (same arithmetic, four lanes at a time), so `simd`
//           output is byte-identical to `fast` everywhere — on AVX2
//           hardware, under the ANC_FORCE_SCALAR_SIMD override, and on
//           machines with no AVX2 at all, where the guaranteed scalar
//           fallback (the fast kernels themselves) serves.  `simd` is
//           therefore valid config on every machine and inherits the
//           fast profile's whole statistical validation.
//
// Call sites branch on the profile (`profile == Math_profile::exact`)
// with the exact expression kept verbatim in the exact arm; non-exact
// profiles share the fast scalar kernels unless a batch call site
// dispatches `simd` to the lane kernels.

#pragma once

#include <complex>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/fastmath.h"

namespace anc::dsp {

enum class Math_profile {
    exact, ///< libm + sequential Box–Muller; the determinism contract
    fast,  ///< fastmath kernels + counter-based noise; corridor-validated
    simd,  ///< AVX2+FMA lane kernels, runtime-dispatched; ≡ fast bitwise
};

inline const char* to_string(Math_profile profile)
{
    switch (profile) {
    case Math_profile::exact: return "exact";
    case Math_profile::fast: return "fast";
    case Math_profile::simd: return "simd";
    }
    return "exact";
}

/// Parse "exact" / "fast" / "simd"; throws std::invalid_argument otherwise.
inline Math_profile math_profile_from_string(std::string_view name)
{
    if (name == "exact")
        return Math_profile::exact;
    if (name == "fast")
        return Math_profile::fast;
    if (name == "simd")
        return Math_profile::simd;
    throw std::invalid_argument{"math_profile_from_string: unknown profile '"
                                + std::string{name} + "'"};
}

/// Profile-dispatched atan2.
inline double profile_atan2(Math_profile profile, double y, double x)
{
    return profile == Math_profile::exact ? std::atan2(y, x) : fast_atan2(y, x);
}

/// Profile-dispatched std::arg.
inline double profile_arg(Math_profile profile, std::complex<double> value)
{
    return profile == Math_profile::exact ? std::arg(value)
                                          : fast_atan2(value.imag(), value.real());
}

/// Profile-dispatched std::polar (magnitude · e^{i·angle}).
inline std::complex<double> profile_polar(Math_profile profile, double magnitude,
                                          double angle)
{
    if (profile == Math_profile::exact)
        return std::polar(magnitude, angle);
    double s = 0.0;
    double c = 0.0;
    fast_sincos(angle, s, c);
    return {magnitude * c, magnitude * s};
}

} // namespace anc::dsp
