// The math-profile seam: one enum that selects, at every transcendental
// call site of the sample pipeline, between the bit-exact libm kernels
// and the fast approximate ones (util/fastmath.h).
//
//   exact — byte-identical to the historical implementation.  Every
//           golden test, sweep JSON, and figure reproduction runs here
//           by default; nothing about this profile may drift.
//   fast  — SIMD-friendly polynomial transcendentals and counter-based
//           noise.  Outputs differ from `exact` in low-order bits (and
//           the noise stream is a different, equally-valid realization),
//           so results are validated *statistically*: the corridor tests
//           (tests/engine/math_profile_corridor_test.cpp) bound the
//           BER/delivery-rate deviation from `exact`, per the
//           relaxed-determinism design in PERF.md "Math profiles".
//
// Call sites branch on the profile (`profile == Math_profile::exact`)
// with the exact expression kept verbatim in the exact arm — the seam is
// also the landing zone for future backends (explicit AVX2 kernels would
// become a third enum value dispatched the same way).

#pragma once

#include <complex>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/fastmath.h"

namespace anc::dsp {

enum class Math_profile {
    exact, ///< libm + sequential Box–Muller; the determinism contract
    fast,  ///< fastmath kernels + counter-based noise; corridor-validated
};

inline const char* to_string(Math_profile profile)
{
    return profile == Math_profile::exact ? "exact" : "fast";
}

/// Parse "exact" / "fast"; throws std::invalid_argument otherwise.
inline Math_profile math_profile_from_string(std::string_view name)
{
    if (name == "exact")
        return Math_profile::exact;
    if (name == "fast")
        return Math_profile::fast;
    throw std::invalid_argument{"math_profile_from_string: unknown profile '"
                                + std::string{name} + "'"};
}

/// Profile-dispatched atan2.
inline double profile_atan2(Math_profile profile, double y, double x)
{
    return profile == Math_profile::exact ? std::atan2(y, x) : fast_atan2(y, x);
}

/// Profile-dispatched std::arg.
inline double profile_arg(Math_profile profile, std::complex<double> value)
{
    return profile == Math_profile::exact ? std::arg(value)
                                          : fast_atan2(value.imag(), value.real());
}

/// Profile-dispatched std::polar (magnitude · e^{i·angle}).
inline std::complex<double> profile_polar(Math_profile profile, double magnitude,
                                          double angle)
{
    if (profile == Math_profile::exact)
        return std::polar(magnitude, angle);
    double s = 0.0;
    double c = 0.0;
    fast_sincos(angle, s, c);
    return {magnitude * c, magnitude * s};
}

} // namespace anc::dsp
