// Elementary signal operations shared by the channel and the decoders.
//
// Two API layers.  The *kernels* (`*_in_place`, `*_into`, `accumulate`)
// mutate caller-owned buffers and never allocate once the destination has
// capacity — they are written as tight index loops over the contiguous
// Sample data so the compiler auto-vectorizes them.  The value-returning
// functions are thin wrappers that allocate a fresh Signal and delegate
// to the kernels, so both layers share one arithmetic implementation and
// stay bit-identical (tests/dsp/ops_inplace_test.cpp locks this in).

#pragma once

#include <cstddef>
#include <span>

#include "dsp/math_profile.h"
#include "dsp/sample.h"

namespace anc::dsp {

// ------------------------------------------------------------- kernels

/// signal *= scale, element-wise.
void scale_in_place(Signal& signal, double scale);

/// signal[i] *= e^{i phase} (a channel phase shift).
void rotate_in_place(Signal& signal, double phase);

/// signal[i] = conj(signal[i]).
void conjugate_in_place(Signal& signal);

/// out = the samples of `signal` in reverse order, each conjugated (the
/// backward-decoding transform; see time_reversed).  `out` must not alias
/// `signal`.
void time_reverse_into(Signal_view signal, Signal& out);

/// out = signal[begin, end) (clamped to bounds).  No alias allowed.
void slice_into(Signal_view signal, std::size_t begin, std::size_t end, Signal& out);

/// out = copy of signal.  No alias allowed.
void copy_into(Signal_view signal, Signal& out);

/// acc[i] += signal[i], zero-extending acc to signal's length first.
void add_into(Signal& acc, Signal_view signal);

/// In-place accumulate: acc[offset + i] += signal[i], growing acc if
/// needed.  Used by the medium to mix any number of transmitters.
void accumulate(Signal& acc, Signal_view signal, std::size_t offset);

/// out[i] = amplitude · e^{i·phases[i]} — the batched polar fill behind
/// the phase-accumulating modulators.  `exact` evaluates std::polar per
/// element (byte-identical to the historical per-sample loop); `fast`
/// runs fast_sincos in a branch-light loop the compiler can pipeline.
void polar_into(std::span<const double> phases, double amplitude,
                Math_profile profile, Signal& out);

/// Scale `signal` so its mean power becomes `target_power`, in one
/// measure-then-scale pass over the buffer (no intermediate copy).  A
/// zero/empty signal is left unchanged.  Returns the mean power measured
/// *before* scaling.
double normalize_power_in_place(Signal& signal, double target_power);

// ------------------------------------------------- value-returning API

/// signal * scale (amplitude scaling).
Signal scaled(Signal_view signal, double scale);

/// signal rotated by e^{i phase} (a channel phase shift).
Signal rotated(Signal_view signal, double phase);

/// `count` zero samples prepended (an integer whole-symbol delay).
Signal delayed(Signal_view signal, std::size_t count);

/// Sample-wise sum; the shorter signal is zero-extended.  This is what the
/// wireless medium does to concurrent transmissions: it *adds* them.
Signal added(Signal_view a, Signal_view b);

/// Copy of the sample order reversed.  Reversing negates every MSK phase
/// difference, which is the basis of backward decoding (§7.4).
Signal reversed(Signal_view signal);

/// Sample-wise complex conjugate.
Signal conjugated(Signal_view signal);

/// Reverse the sample order *and* conjugate.  The resulting stream has
/// exactly the phase differences of the original read backwards — i.e. a
/// frame seen through this transform demodulates to its forward bits in
/// reverse order, with its mirrored trailing pilot/header appearing as a
/// normal leading pilot/header.  This is what makes Bob's backward
/// decoding (§7.4) run through the *same* machinery as Alice's forward
/// decoding.
Signal time_reversed(Signal_view signal);

/// Sub-range [begin, end) as a fresh signal (clamped to bounds).
Signal slice(Signal_view signal, std::size_t begin, std::size_t end);

/// The same sub-range as a zero-copy view (clamped to bounds).
Signal_view slice_view(Signal_view signal, std::size_t begin, std::size_t end);

/// Mean power of the signal (alias of mean |y|^2).
double power(Signal_view signal);

/// Scale so the mean power becomes `target_power`.  A zero signal is
/// returned unchanged.  This is the relay's re-amplification (§7.5): the
/// amplification factor is chosen so the transmit power equals P.
Signal normalized_to_power(Signal_view signal, double target_power);

} // namespace anc::dsp
