#include "dsp/workspace.h"

namespace anc::dsp {

namespace {

thread_local Workspace* t_bound = nullptr;

} // namespace

Workspace& Workspace::current()
{
    if (t_bound)
        return *t_bound;
    static thread_local Workspace fallback;
    return fallback;
}

Workspace::Bind::Bind(Workspace& workspace)
    : previous_{t_bound}
{
    t_bound = &workspace;
}

Workspace::Bind::~Bind()
{
    t_bound = previous_;
}

} // namespace anc::dsp
