// Windowed energy statistics over a sample stream.
//
// The receiver front-end of §7.1 makes two decisions from energy alone:
//   1. packet present?   — mean energy well above the noise floor;
//   2. interference?     — the energy of a single MSK signal is nearly
//      constant (constant envelope), so a large *variance* of the energy
//      betrays a collision: |y|^2 swings between (A+B)^2 and (A-B)^2.
// This module provides the moving-window scans those detectors consume.

#pragma once

#include <cstddef>
#include <vector>

#include "dsp/sample.h"

namespace anc::dsp {

/// Instantaneous energy |y[n]|^2 for every sample.
std::vector<double> sample_energies(Signal_view signal);

/// As above, into a caller-owned buffer (cleared first) — the detectors
/// feed this from a dsp::Workspace lease so the per-receive scans do not
/// allocate in steady state.
void sample_energies_into(Signal_view signal, std::vector<double>& out);

/// Mean of |y|^2 over the whole signal (0 for an empty signal).
double mean_energy(Signal_view signal);

/// Moving-window statistics of the sample energy.  Window w starting at
/// index n covers samples [n, n+w); there are len-w+1 windows.
struct Energy_scan {
    std::vector<double> window_mean;     // mean of |y|^2 per window
    std::vector<double> window_variance; // population variance of |y|^2 per window
    std::size_t window = 0;
};

/// Compute the scan in O(len) using running sums of |y|^2 and |y|^4.
Energy_scan scan_energy(Signal_view signal, std::size_t window);

/// As above, writing the window series into caller-owned buffers
/// (cleared first) and using `scratch_energies` for the per-sample
/// energies.  Bit-identical to scan_energy.
void scan_energy_into(Signal_view signal, std::size_t window,
                      std::vector<double>& scratch_energies,
                      std::vector<double>& window_mean,
                      std::vector<double>& window_variance);

/// Mean series only — byte-identical to scan_energy_into's window_mean
/// (the two sliding sums are independent chains) at roughly half the
/// cost.  For consumers like the packet detector that never read the
/// variance series.
void scan_energy_mean_into(Signal_view signal, std::size_t window,
                           std::vector<double>& scratch_energies,
                           std::vector<double>& window_mean);

} // namespace anc::dsp
