// Windowed energy statistics over a sample stream.
//
// The receiver front-end of §7.1 makes two decisions from energy alone:
//   1. packet present?   — mean energy well above the noise floor;
//   2. interference?     — the energy of a single MSK signal is nearly
//      constant (constant envelope), so a large *variance* of the energy
//      betrays a collision: |y|^2 swings between (A+B)^2 and (A-B)^2.
// This module provides the moving-window scans those detectors consume.

#pragma once

#include <cstddef>
#include <vector>

#include "dsp/sample.h"

namespace anc::dsp {

/// Instantaneous energy |y[n]|^2 for every sample.
std::vector<double> sample_energies(Signal_view signal);

/// Mean of |y|^2 over the whole signal (0 for an empty signal).
double mean_energy(Signal_view signal);

/// Moving-window statistics of the sample energy.  Window w starting at
/// index n covers samples [n, n+w); there are len-w+1 windows.
struct Energy_scan {
    std::vector<double> window_mean;     // mean of |y|^2 per window
    std::vector<double> window_variance; // population variance of |y|^2 per window
    std::size_t window = 0;
};

/// Compute the scan in O(len) using running sums of |y|^2 and |y|^4.
Energy_scan scan_energy(Signal_view signal, std::size_t window);

} // namespace anc::dsp
