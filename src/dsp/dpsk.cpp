#include "dsp/dpsk.h"

#include <cmath>
#include <stdexcept>

#include "dsp/ops.h"
#include "util/phase.h"

namespace anc::dsp {

std::size_t dqpsk_symbol_for_bits(std::uint8_t b0, std::uint8_t b1)
{
    // Gray order 00, 01, 11, 10 mapped to indices 0..3.
    if (!b0)
        return b1 ? 1 : 0;
    return b1 ? 2 : 3;
}

std::pair<std::uint8_t, std::uint8_t> dqpsk_bits_for_symbol(std::size_t symbol)
{
    switch (symbol & 3u) {
    case 0: return {0, 0};
    case 1: return {0, 1};
    case 2: return {1, 1};
    default: return {1, 0};
    }
}

std::size_t dqpsk_nearest_symbol(double phase_difference)
{
    std::size_t best = 0;
    double best_distance = phase_distance(phase_difference, dqpsk_steps[0]);
    for (std::size_t s = 1; s < dqpsk_steps.size(); ++s) {
        const double distance = phase_distance(phase_difference, dqpsk_steps[s]);
        if (distance < best_distance) {
            best_distance = distance;
            best = s;
        }
    }
    return best;
}

std::vector<double> dqpsk_phase_steps_for_bits(std::span<const std::uint8_t> bits)
{
    if (bits.size() % 2 != 0)
        throw std::invalid_argument{"dqpsk: bit count must be even"};
    std::vector<double> steps;
    steps.reserve(bits.size() / 2);
    for (std::size_t i = 0; i < bits.size(); i += 2)
        steps.push_back(dqpsk_steps[dqpsk_symbol_for_bits(bits[i], bits[i + 1])]);
    return steps;
}

Dqpsk_modulator::Dqpsk_modulator(double amplitude, double initial_phase,
                                 Math_profile profile)
    : amplitude_{amplitude}, initial_phase_{initial_phase}, profile_{profile}
{
}

Signal Dqpsk_modulator::modulate(std::span<const std::uint8_t> bits) const
{
    const std::vector<double> steps = dqpsk_phase_steps_for_bits(bits);
    std::vector<double> phases;
    phases.reserve(steps.size() + 1);
    double phase = initial_phase_;
    phases.push_back(phase);
    for (const double step : steps) {
        phase = wrap_phase(phase + step);
        phases.push_back(phase);
    }
    Signal signal;
    polar_into(phases, amplitude_, profile_, signal);
    return signal;
}

Dqpsk_demodulator::Dqpsk_demodulator(Math_profile profile)
    : profile_{profile}
{
}

Bits Dqpsk_demodulator::demodulate(Signal_view signal) const
{
    Bits bits;
    if (signal.size() < 2)
        return bits;
    bits.reserve(2 * (signal.size() - 1));
    for (std::size_t n = 0; n + 1 < signal.size(); ++n) {
        const double diff = profile_arg(profile_, signal[n + 1] * std::conj(signal[n]));
        const auto [b0, b1] = dqpsk_bits_for_symbol(dqpsk_nearest_symbol(diff));
        bits.push_back(b0);
        bits.push_back(b1);
    }
    return bits;
}

} // namespace anc::dsp
