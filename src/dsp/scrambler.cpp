#include "dsp/scrambler.h"

#include <stdexcept>

namespace anc::dsp {

Scrambler::Scrambler(std::uint16_t seed)
    : seed_{seed}, lfsr_{seed}
{
    if (seed == 0)
        throw std::invalid_argument{"Scrambler: LFSR seed must be non-zero"};
}

void Scrambler::extend_keystream(std::size_t length) const
{
    if (keystream_.size() >= length)
        return;
    keystream_.reserve(length);
    std::uint16_t lfsr = lfsr_;
    while (keystream_.size() < length) {
        // Fibonacci LFSR, taps 16,14,13,11 (V.41).
        const std::uint16_t feedback = static_cast<std::uint16_t>(
            ((lfsr >> 0u) ^ (lfsr >> 2u) ^ (lfsr >> 3u) ^ (lfsr >> 5u)) & 1u);
        lfsr = static_cast<std::uint16_t>((lfsr >> 1u) | (feedback << 15u));
        keystream_.push_back(static_cast<std::uint8_t>(feedback & 1u));
    }
    lfsr_ = lfsr;
}

Bits Scrambler::apply(std::span<const std::uint8_t> bits) const
{
    extend_keystream(bits.size());
    Bits out(bits.size());
    const std::uint8_t* key = keystream_.data();
    for (std::size_t i = 0; i < bits.size(); ++i)
        out[i] = static_cast<std::uint8_t>(bits[i] ^ key[i]);
    return out;
}

} // namespace anc::dsp
