#include "dsp/scrambler.h"

#include <stdexcept>

namespace anc::dsp {

Scrambler::Scrambler(std::uint16_t seed)
    : seed_{seed}
{
    if (seed == 0)
        throw std::invalid_argument{"Scrambler: LFSR seed must be non-zero"};
}

Bits Scrambler::apply(std::span<const std::uint8_t> bits) const
{
    Bits out(bits.size());
    std::uint16_t lfsr = seed_;
    for (std::size_t i = 0; i < bits.size(); ++i) {
        // Fibonacci LFSR, taps 16,14,13,11 (V.41).
        const std::uint16_t feedback = static_cast<std::uint16_t>(
            ((lfsr >> 0u) ^ (lfsr >> 2u) ^ (lfsr >> 3u) ^ (lfsr >> 5u)) & 1u);
        lfsr = static_cast<std::uint16_t>((lfsr >> 1u) | (feedback << 15u));
        out[i] = static_cast<std::uint8_t>(bits[i] ^ (feedback & 1u));
    }
    return out;
}

} // namespace anc::dsp
