// Complex-baseband sample types.
//
// A wireless signal is a stream of complex samples A[n] * e^{i theta[n]}
// spaced by the symbol time T (§5.1 of the paper).  The whole substrate
// operates at one sample per symbol: that is exactly the granularity the
// paper's decoding algorithm is defined at, and timing offsets between
// unsynchronized senders are modelled at whole-symbol resolution (the
// paper aligns packets at bit granularity via the 64-bit pilot, §7.2).

#pragma once

#include <complex>
#include <span>
#include <vector>

namespace anc::dsp {

using Sample = std::complex<double>;
using Signal = std::vector<Sample>;
using Signal_view = std::span<const Sample>;

} // namespace anc::dsp
