#include "dsp/sampling.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/phase.h"

namespace anc::dsp {

Signal upsampled(Signal_view signal, std::size_t factor)
{
    if (factor == 0)
        throw std::invalid_argument{"upsampled: factor must be positive"};
    Signal out;
    out.reserve(signal.size() * factor);
    for (const Sample& s : signal) {
        for (std::size_t i = 0; i < factor; ++i)
            out.push_back(s);
    }
    return out;
}

Signal boxcar_filtered(Signal_view signal, std::size_t taps)
{
    if (taps == 0)
        throw std::invalid_argument{"boxcar_filtered: taps must be positive"};
    Signal out;
    out.reserve(signal.size());
    Sample acc{0.0, 0.0};
    for (std::size_t i = 0; i < signal.size(); ++i) {
        acc += signal[i];
        if (i >= taps)
            acc -= signal[i - taps];
        const auto window = static_cast<double>(i < taps ? i + 1 : taps);
        out.push_back(acc / window);
    }
    return out;
}

Signal decimated(Signal_view signal, std::size_t factor, std::size_t phase)
{
    if (factor == 0)
        throw std::invalid_argument{"decimated: factor must be positive"};
    Signal out;
    out.reserve(signal.size() / factor + 1);
    for (std::size_t i = phase; i < signal.size(); i += factor)
        out.push_back(signal[i]);
    return out;
}

double msk_lattice_fit(Signal_view symbol_spaced)
{
    if (symbol_spaced.size() < 2)
        return std::numbers::pi / 4.0;
    constexpr double half_pi = std::numbers::pi / 2.0;
    double total = 0.0;
    for (std::size_t n = 0; n + 1 < symbol_spaced.size(); ++n) {
        const double diff = std::arg(symbol_spaced[n + 1] * std::conj(symbol_spaced[n]));
        total += std::min(phase_distance(diff, half_pi), phase_distance(diff, -half_pi));
    }
    return total / static_cast<double>(symbol_spaced.size() - 1);
}

std::size_t recover_symbol_phase(Signal_view oversampled, std::size_t factor)
{
    if (factor == 0)
        throw std::invalid_argument{"recover_symbol_phase: factor must be positive"};
    std::size_t best_phase = 0;
    double best_fit = 0.0;
    for (std::size_t phase = 0; phase < factor; ++phase) {
        const double fit = msk_lattice_fit(decimated(oversampled, factor, phase));
        if (phase == 0 || fit < best_fit) {
            best_fit = fit;
            best_phase = phase;
        }
    }
    return best_phase;
}

} // namespace anc::dsp
