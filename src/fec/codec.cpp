#include "fec/codec.h"

#include <algorithm>

#include "fec/hamming.h"
#include "util/obs.h"

namespace anc::fec {

Fec_codec::Fec_codec(std::size_t interleave_rows)
    : interleave_rows_{interleave_rows}
{
}

Bits Fec_codec::encode(std::span<const std::uint8_t> data) const
{
    Bits coded = hamming74_encode(data);
    if (interleave_rows_ > 1) {
        const Block_interleaver interleaver{interleave_rows_, 7};
        coded = interleaver.interleave(coded);
    }
    return coded;
}

Bits Fec_codec::decode(std::span<const std::uint8_t> coded, std::size_t data_bits) const
{
    const obs::Stage_timer timer{obs::Stage::fec_decode};
    Bits received{coded.begin(), coded.end()};
    if (interleave_rows_ > 1) {
        const Block_interleaver interleaver{interleave_rows_, 7};
        received = interleaver.deinterleave(received);
    }
    // Tolerate truncated input by dropping an incomplete trailing codeword.
    received.resize(received.size() - received.size() % 7);
    Bits data = hamming74_decode(received);
    data.resize(std::min(data.size(), data_bits));
    return data;
}

std::size_t Fec_codec::coded_size(std::size_t data_bits) const
{
    const std::size_t blocks = (data_bits + 3) / 4;
    return blocks * 7;
}

double Fec_codec::rate() const
{
    return hamming74_rate;
}

double redundancy_overhead(double ber)
{
    return std::clamp(2.0 * ber, 0.0, 1.0);
}

double throughput_factor(double ber)
{
    return 1.0 / (1.0 + redundancy_overhead(ber));
}

} // namespace anc::fec
