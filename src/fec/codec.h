// End-to-end FEC pipeline and the throughput-accounting redundancy model.

#pragma once

#include <cstddef>
#include <span>

#include "fec/interleaver.h"
#include "util/bits.h"

namespace anc::fec {

/// Hamming(7,4) + block interleaving, the protection applied to ANC
/// payloads in the examples and the FEC ablation bench.
class Fec_codec {
public:
    /// `interleave_rows` codewords are interleaved together; 0 disables
    /// interleaving.
    explicit Fec_codec(std::size_t interleave_rows = 8);

    Bits encode(std::span<const std::uint8_t> data) const;

    /// Decode; `data_bits` is the original (pre-padding) data length so the
    /// pad added by encode() can be stripped.
    Bits decode(std::span<const std::uint8_t> coded, std::size_t data_bits) const;

    /// Coded length for a given data length.
    std::size_t coded_size(std::size_t data_bits) const;

    double rate() const;

private:
    std::size_t interleave_rows_;
};

/// Redundancy overhead the throughput accounting charges a scheme that
/// delivers packets at residual bit-error rate `ber` (§11.2).  The paper
/// reports 4% BER requiring "8% of extra redundancy", i.e. overhead of
/// about twice the BER; we use exactly that linear rule, capped at 1.
/// Returned as a fraction of the payload (0.08 means 8% extra bits).
double redundancy_overhead(double ber);

/// Multiplicative throughput factor implied by the overhead:
/// useful_fraction = 1 / (1 + overhead).
double throughput_factor(double ber);

} // namespace anc::fec
