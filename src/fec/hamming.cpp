#include "fec/hamming.h"

#include <stdexcept>

#include "util/obs.h"

namespace anc::fec {

namespace {

// Codeword bit layout, MSB-first when serialized:
//   index:  0  1  2  3  4  5  6
//   role :  p1 p2 d1 p3 d2 d3 d4
// Parity equations (even parity):
//   p1 covers positions 1,3,5,7  -> d1 d2 d4
//   p2 covers positions 2,3,6,7  -> d1 d3 d4
//   p3 covers positions 4,5,6,7  -> d2 d3 d4

std::uint8_t bit_of(std::uint8_t value, int msb_index, int width)
{
    return static_cast<std::uint8_t>((value >> (width - 1 - msb_index)) & 1u);
}

} // namespace

std::uint8_t hamming74_encode_nibble(std::uint8_t nibble)
{
    const std::uint8_t d1 = bit_of(nibble, 0, 4);
    const std::uint8_t d2 = bit_of(nibble, 1, 4);
    const std::uint8_t d3 = bit_of(nibble, 2, 4);
    const std::uint8_t d4 = bit_of(nibble, 3, 4);
    const std::uint8_t p1 = d1 ^ d2 ^ d4;
    const std::uint8_t p2 = d1 ^ d3 ^ d4;
    const std::uint8_t p3 = d2 ^ d3 ^ d4;
    return static_cast<std::uint8_t>(
        (p1 << 6u) | (p2 << 5u) | (d1 << 4u) | (p3 << 3u) | (d2 << 2u) | (d3 << 1u) | d4);
}

std::uint8_t hamming74_decode_codeword(std::uint8_t codeword)
{
    bool corrected = false;
    return hamming74_decode_codeword(codeword, corrected);
}

std::uint8_t hamming74_decode_codeword(std::uint8_t codeword, bool& corrected)
{
    std::uint8_t bits[8] = {0}; // 1-indexed positions 1..7
    for (int position = 1; position <= 7; ++position)
        bits[position] = static_cast<std::uint8_t>((codeword >> (7 - position)) & 1u);

    const std::uint8_t s1 = bits[1] ^ bits[3] ^ bits[5] ^ bits[7];
    const std::uint8_t s2 = bits[2] ^ bits[3] ^ bits[6] ^ bits[7];
    const std::uint8_t s3 = bits[4] ^ bits[5] ^ bits[6] ^ bits[7];
    const int syndrome = s1 * 1 + s2 * 2 + s3 * 4;
    corrected = syndrome != 0;
    if (syndrome != 0)
        bits[syndrome] ^= 1u;

    return static_cast<std::uint8_t>(
        (bits[3] << 3u) | (bits[5] << 2u) | (bits[6] << 1u) | bits[7]);
}

Bits hamming74_encode(std::span<const std::uint8_t> bits)
{
    Bits padded{bits.begin(), bits.end()};
    while (padded.size() % 4 != 0)
        padded.push_back(0);

    Bits out;
    out.reserve(padded.size() / 4 * 7);
    for (std::size_t block = 0; block < padded.size(); block += 4) {
        std::uint8_t nibble = 0;
        for (std::size_t i = 0; i < 4; ++i)
            nibble = static_cast<std::uint8_t>((nibble << 1u) | padded[block + i]);
        const std::uint8_t codeword = hamming74_encode_nibble(nibble);
        for (int i = 6; i >= 0; --i)
            out.push_back(static_cast<std::uint8_t>((codeword >> i) & 1u));
    }
    return out;
}

Bits hamming74_decode(std::span<const std::uint8_t> bits)
{
    if (bits.size() % 7 != 0)
        throw std::invalid_argument{"hamming74_decode: length must be a multiple of 7"};
    Bits out;
    out.reserve(bits.size() / 7 * 4);
    // Tally corrections locally and post two obs counts at the end, so
    // telemetry stays O(1) per decode rather than O(codewords).
    std::uint64_t corrections = 0;
    for (std::size_t block = 0; block < bits.size(); block += 7) {
        std::uint8_t codeword = 0;
        for (std::size_t i = 0; i < 7; ++i)
            codeword = static_cast<std::uint8_t>((codeword << 1u) | bits[block + i]);
        bool corrected = false;
        const std::uint8_t nibble = hamming74_decode_codeword(codeword, corrected);
        corrections += corrected;
        for (int i = 3; i >= 0; --i)
            out.push_back(static_cast<std::uint8_t>((nibble >> i) & 1u));
    }
    obs::count(obs::Counter::fec_codewords, bits.size() / 7);
    obs::count(obs::Counter::fec_corrected_bits, corrections);
    return out;
}

} // namespace anc::fec
