#include "fec/interleaver.h"

#include <stdexcept>

namespace anc::fec {

Block_interleaver::Block_interleaver(std::size_t rows, std::size_t cols)
    : rows_{rows}, cols_{cols}
{
    if (rows == 0 || cols == 0)
        throw std::invalid_argument{"Block_interleaver: dimensions must be positive"};
}

Bits Block_interleaver::interleave(std::span<const std::uint8_t> bits) const
{
    Bits out;
    out.reserve(bits.size());
    const std::size_t block = block_size();
    std::size_t start = 0;
    while (start + block <= bits.size()) {
        for (std::size_t c = 0; c < cols_; ++c) {
            for (std::size_t r = 0; r < rows_; ++r)
                out.push_back(bits[start + r * cols_ + c]);
        }
        start += block;
    }
    // Short tail: passes through unchanged.
    for (std::size_t i = start; i < bits.size(); ++i)
        out.push_back(bits[i]);
    return out;
}

Bits Block_interleaver::deinterleave(std::span<const std::uint8_t> bits) const
{
    Bits out;
    out.reserve(bits.size());
    const std::size_t block = block_size();
    std::size_t start = 0;
    while (start + block <= bits.size()) {
        Bits chunk(block);
        std::size_t index = 0;
        for (std::size_t c = 0; c < cols_; ++c) {
            for (std::size_t r = 0; r < rows_; ++r)
                chunk[r * cols_ + c] = bits[start + index++];
        }
        out.insert(out.end(), chunk.begin(), chunk.end());
        start += block;
    }
    for (std::size_t i = start; i < bits.size(); ++i)
        out.push_back(bits[i]);
    return out;
}

} // namespace anc::fec
