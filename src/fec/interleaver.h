// Block interleaver.
//
// Interference-decoding errors are bursty: a stretch of samples where the
// two constellations nearly coincide (D ~ +-1 in Lemma 6.1) produces a run
// of ambiguous decisions.  A Hamming(7,4) code corrects one error per
// codeword, so bursts must be spread across codewords first — the job of a
// block interleaver (write row-wise, read column-wise).

#pragma once

#include <cstddef>
#include <span>

#include "util/bits.h"

namespace anc::fec {

class Block_interleaver {
public:
    /// rows x cols block; a sequence is processed in chunks of rows*cols
    /// bits (a short final chunk passes through untouched).
    Block_interleaver(std::size_t rows, std::size_t cols);

    Bits interleave(std::span<const std::uint8_t> bits) const;
    Bits deinterleave(std::span<const std::uint8_t> bits) const;

    std::size_t block_size() const { return rows_ * cols_; }

private:
    std::size_t rows_;
    std::size_t cols_;
};

} // namespace anc::fec
