// Hamming(7,4) single-error-correcting block code.
//
// The paper charges ANC's throughput for "extra redundancy (i.e., error
// correction codes)" needed to absorb the 2-4% residual BER of
// interference decoding (§11.2, §11.4).  This module provides a real code
// so that the examples and the FEC ablation can demonstrate the recovery,
// not just account for it.

#pragma once

#include <cstdint>
#include <span>

#include "util/bits.h"

namespace anc::fec {

/// Encode 4 data bits into a 7-bit codeword (positions: p1 p2 d1 p3 d2 d3 d4).
std::uint8_t hamming74_encode_nibble(std::uint8_t nibble);

/// Decode a 7-bit codeword, correcting up to one flipped bit.
/// Returns the 4 data bits.
std::uint8_t hamming74_decode_codeword(std::uint8_t codeword);

/// As above, additionally reporting whether a bit was corrected (the
/// syndrome was nonzero) — the telemetry layer's FEC-correction tally.
std::uint8_t hamming74_decode_codeword(std::uint8_t codeword, bool& corrected);

/// Encode a bit sequence; the input is zero-padded to a multiple of 4.
/// Output length is ceil(len/4) * 7 bits.
Bits hamming74_encode(std::span<const std::uint8_t> bits);

/// Decode a sequence of 7-bit codewords back to data bits (4 per block).
/// The input length must be a multiple of 7.
Bits hamming74_decode(std::span<const std::uint8_t> bits);

/// Code rate of Hamming(7,4).
inline constexpr double hamming74_rate = 4.0 / 7.0;

} // namespace anc::fec
