// Exponential backoff with full jitter, for retry loops that must not
// stampede: the jstream sender's reconnect attempts, the coordinator's
// per-shard relaunch escalation.
//
// The delay sequence is the classic capped exponential
// (initial * multiplier^n, clamped to max); with full_jitter each wait
// is drawn uniformly from [0, that bound] ("full jitter" in the AWS
// architecture-blog taxonomy), which decorrelates a fleet of workers
// all reconnecting after the same coordinator restart.  The jitter
// stream is a private SplitMix64 seeded by the caller, so a given
// (policy, seed) pair replays the exact same delays — tests and the
// deterministic chaos harness need no sleeps and no mocking.
//
// Time is the caller's: next() returns a duration; nothing here sleeps
// or reads a clock.  Not thread-safe (each retrying party owns one).

#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace anc::util {

struct Backoff_policy {
    std::chrono::milliseconds initial{100};
    std::chrono::milliseconds max{5000};
    double multiplier = 2.0;
    bool full_jitter = true;
};

class Backoff {
public:
    explicit Backoff(Backoff_policy policy = {}, std::uint64_t jitter_seed = 0)
        : policy_{policy}, state_{jitter_seed}
    {
    }

    /// The delay to wait before attempt attempts()+1.  Advances the
    /// attempt counter (and the jitter stream when full_jitter is on).
    std::chrono::milliseconds next()
    {
        double bound = static_cast<double>(policy_.initial.count());
        for (std::size_t i = 0; i < attempts_; ++i) {
            bound *= policy_.multiplier;
            if (bound >= static_cast<double>(policy_.max.count()))
                break;
        }
        bound = std::min(bound, static_cast<double>(policy_.max.count()));
        ++attempts_;
        if (!policy_.full_jitter)
            return std::chrono::milliseconds{static_cast<std::int64_t>(bound)};
        // 53-bit mantissa draw in [0, 1); the delay grid is coarse
        // (milliseconds), so the truncation bias is irrelevant.
        const double unit =
            static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
        return std::chrono::milliseconds{
            static_cast<std::int64_t>(unit * bound)};
    }

    /// Forget the failure streak: the next delay is drawn from the
    /// initial bound again.  Called after a success (e.g. a completed
    /// reconnect handshake).
    void reset() { attempts_ = 0; }

    /// Failures so far in the current streak (= next() calls since the
    /// last reset).
    std::size_t attempts() const { return attempts_; }

private:
    // SplitMix64 (Steele-Lea-Flood); self-contained so the header pulls
    // in no engine RNG machinery.
    std::uint64_t next_u64()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    Backoff_policy policy_;
    std::uint64_t state_ = 0;
    std::size_t attempts_ = 0;
};

} // namespace anc::util
