// Crash-safe whole-file writes: write to a sibling temp file, fsync,
// rename over the destination.
//
// Every artifact the engine leaves behind (sweep JSON/CSV, the
// anc.metrics.v1 manifest) used to be written in place, so a crash —
// exactly the event the fault-tolerant sweep layer exists to survive —
// could leave a truncated, unparseable file at the published path.
// rename(2) on the same filesystem is atomic: readers see either the
// old complete file or the new complete file, never a prefix.
//
// The journal (engine/journal.h) is the deliberate exception: it is
// append-only by design and protects itself with per-line CRCs instead.

#pragma once

#include <functional>
#include <ostream>
#include <string>

namespace anc {

/// Write `path` atomically: `writer` streams the content into
/// `path.tmp.<pid>`, which is flushed, fsync'd, and renamed onto `path`.
/// Throws std::runtime_error (leaving no temp file behind) when the
/// temp file cannot be created, written, or renamed — the destination is
/// untouched in every failure mode.
void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

} // namespace anc
