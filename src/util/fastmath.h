// Fast scalar transcendental kernels for the relaxed-determinism math
// profile (dsp::Math_profile::fast).
//
// These are *approximations with proven, tested error bounds* — never
// bit-identical to libm, which is exactly why every call site dispatches
// on a Math_profile and the `exact` profile keeps calling libm (PERF.md
// "Math profiles").  All three kernels are branch-light, inline, and
// FMA-friendly, so hot loops that call them stay pipelined instead of
// stalling on a libm call:
//
//   fast_sincos  — Cody–Waite π/2 reduction + the fdlibm minimax sin/cos
//                  kernels on |r| ≤ π/4.  Max abs error ≈ 2e-15 on the
//                  |x| ≲ 20 angles this codebase produces (wrapped
//                  phases, Box–Muller angles), ≲ 1e-13 out to |x| ≈ 1e3.
//   fast_atan2   — octant reduction + a degree-12 Chebyshev fit of
//                  atan(z)/z on z ∈ [0,1] (max abs error 5.9e-12 rad on
//                  the kernel; ≲ 1e-11 rad end to end).  Quadrant and
//                  signed-zero behavior match std::atan2.
//   fast_log     — exponent/mantissa split + the atanh(f) series on
//                  f = (m−1)/(m+1), |f| ≤ 0.1716.  Max relative error
//                  ≲ 1e-13 for normal positive doubles.
//
// tests/util/fastmath_test.cpp measures all three bounds against libm on
// dense + random sweeps; the statistical-corridor tests validate their
// end-to-end effect on decoding metrics.

#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

namespace anc {

namespace detail {

// fdlibm __kernel_sin minimax coefficients, |r| <= pi/4.
inline double sin_kernel(double r)
{
    constexpr double s1 = -1.66666666666666324348e-01;
    constexpr double s2 = 8.33333333332248946124e-03;
    constexpr double s3 = -1.98412698298579493134e-04;
    constexpr double s4 = 2.75573137070700676789e-06;
    constexpr double s5 = -2.50507602534068634195e-08;
    constexpr double s6 = 1.58969099521155010221e-10;
    const double z = r * r;
    return r + r * z * (s1 + z * (s2 + z * (s3 + z * (s4 + z * (s5 + z * s6)))));
}

// fdlibm __kernel_cos minimax coefficients, |r| <= pi/4.
inline double cos_kernel(double r)
{
    constexpr double c1 = 4.16666666666666019037e-02;
    constexpr double c2 = -1.38888888888741095749e-03;
    constexpr double c3 = 2.48015872894767294178e-05;
    constexpr double c4 = -2.75573143513906633035e-07;
    constexpr double c5 = 2.08757232129817482790e-09;
    constexpr double c6 = -1.13596475577881948265e-11;
    const double z = r * r;
    return 1.0 - 0.5 * z
           + z * z * (c1 + z * (c2 + z * (c3 + z * (c4 + z * (c5 + z * c6)))));
}

} // namespace detail

/// Round to the nearest integer (ties to even) without a libm call:
/// adding and subtracting 1.5·2^52 forces the round in hardware.  Valid
/// for |x| < 2^51 — far beyond any angle reduction here — and, unlike
/// std::nearbyint at the SSE2 baseline, it inlines (no call), so loops
/// using it stay pipelined and vectorizable.
inline double fast_round(double x)
{
    constexpr double magic = 6755399441055744.0; // 1.5 * 2^52
    return (x + magic) - magic;
}

/// sin and cos of `x` in one call.  Intended domain: |x| ≲ 1e6 (the
/// two-term Cody–Waite reduction loses accuracy beyond that; every angle
/// in this codebase is a phase, a phase accumulation over one frame, or
/// a Box–Muller angle in [0, 2π)).
inline void fast_sincos(double x, double& sin_out, double& cos_out)
{
    constexpr double two_over_pi = 0.63661977236758134308;
    constexpr double pio2_hi = 1.57079632679489661923; // pi/2, leading bits
    constexpr double pio2_lo = 6.12323399573676603587e-17; // pi/2 remainder
    const double kd = fast_round(x * two_over_pi);
    const double r = (x - kd * pio2_hi) - kd * pio2_lo;
    const auto q = static_cast<std::int64_t>(kd) & 3;

    const double ss = detail::sin_kernel(r);
    const double cc = detail::cos_kernel(r);
    const double s = (q & 1) ? cc : ss;
    const double c = (q & 1) ? ss : cc;
    sin_out = (q & 2) ? -s : s;
    cos_out = ((q + 1) & 2) ? -c : c;
}

/// atan2(y, x) with std::atan2's quadrant and signed-zero conventions.
/// Max abs error ≲ 1e-11 rad over the finite doubles — six orders of
/// magnitude below the receiver's smallest phase decision margin (±π/4),
/// and three orders below the phase jitter of a 25 dB-SNR sample.
inline double fast_atan2(double y, double x)
{
    // Degree-12 Chebyshev interpolation of atan(z)/z on z^2 in [0,1]
    // (kernel max error 5.9e-12; the octant assembly adds ~1 ulp).
    constexpr double c[] = {
        9.99999999988738120e-01,  -3.33333329516572185e-01,
        1.99999783362170863e-01,  -1.42852256081602597e-01,
        1.11053067324246468e-01,  -9.04917909372005280e-02,
        7.49526237809320373e-02,  -6.02219638791359271e-02,
        4.36465894423390538e-02,  -2.60059959770320183e-02,
        1.14276332769563185e-02,  -3.19542524056683729e-03,
        4.19227860083381837e-04,
    };
    constexpr double half_pi = 1.57079632679489661923;
    constexpr double pi = 3.14159265358979323846;

    const double ax = std::fabs(x);
    const double ay = std::fabs(y);
    // min/max octant fold — compiles to minsd/maxsd, no data-dependent
    // branch (the operand ordering is ~random in the decoder's loops).
    const double num = ax < ay ? ax : ay;
    const double den = ax < ay ? ay : ax;
    const double z = den == 0.0 ? 0.0 : num / den; // both zero -> angle 0 or pi
    const double t = z * z;
    // Estrin evaluation: ~4 dependent multiply-add levels instead of
    // Horner's 12, so the out-of-order core overlaps neighboring atan2
    // calls (the phase solver issues three per sample).
    const double t2 = t * t;
    const double t4 = t2 * t2;
    const double t8 = t4 * t4;
    const double b0 = c[0] + c[1] * t;
    const double b1 = c[2] + c[3] * t;
    const double b2 = c[4] + c[5] * t;
    const double b3 = c[6] + c[7] * t;
    const double b4 = c[8] + c[9] * t;
    const double b5 = c[10] + c[11] * t;
    const double d0 = b0 + b1 * t2;
    const double d1 = b2 + b3 * t2;
    const double d2 = b4 + b5 * t2;
    const double acc = (d0 + d1 * t4) + (d2 + c[12] * t4) * t8;
    double angle = z * acc;          // atan on the first octant, [0, pi/4]
    angle = ax < ay ? half_pi - angle : angle; // first quadrant
    angle = std::signbit(x) ? pi - angle : angle; // left half-plane (x == -0.0 too)
    return std::copysign(angle, y);  // lower half-plane / signed zero
}

/// arg(re + i·im) — fast std::arg.
inline double fast_arg(double re, double im)
{
    return fast_atan2(im, re);
}

/// Natural log of a positive *normal* double (subnormals and zero are
/// outside the supported domain — callers feed uniforms in (0, 1] whose
/// smallest value is 2^-53).  Max relative error ≈ 1e-14.
inline double fast_log(double x)
{
    constexpr double ln2_hi = 6.93147180369123816490e-01;
    constexpr double ln2_lo = 1.90821492927058770002e-10;
    constexpr double sqrt2 = 1.41421356237309504880;

    const auto bits = std::bit_cast<std::uint64_t>(x);
    const int raw_e = static_cast<int>((bits >> 52) & 0x7ffu) - 1023;
    const double raw_m = std::bit_cast<double>((bits & 0xfffffffffffffULL)
                                               | 0x3ff0000000000000ULL); // [1, 2)
    // Branch-light fold into [sqrt2/2, sqrt2] (if-converted by the
    // compiler, so noise-fill loops stay pipelined).
    const bool fold = raw_m > sqrt2;
    const double m = fold ? raw_m * 0.5 : raw_m;
    const int e = raw_e + (fold ? 1 : 0);
    // log(m) = 2 atanh(f), f = (m-1)/(m+1), |f| <= sqrt2 - 1 over sqrt2 + 1.
    const double f = (m - 1.0) / (m + 1.0);
    const double w = f * f;
    const double w2 = w * w;
    const double w4 = w2 * w2;
    const double p0 = 1.0 + w * (1.0 / 3.0);
    const double p1 = 1.0 / 5.0 + w * (1.0 / 7.0);
    const double p2 = 1.0 / 9.0 + w * (1.0 / 11.0);
    const double p3 = 1.0 / 13.0 + w * (1.0 / 15.0);
    const double poly = 2.0 * f * ((p0 + p1 * w2) + (p2 + p3 * w2) * w4);
    const double ed = static_cast<double>(e);
    return ed * ln2_hi + (ed * ln2_lo + poly);
}

} // namespace anc
