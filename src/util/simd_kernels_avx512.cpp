// Explicit AVX-512F lane kernels behind anc::simd (see util/simd.h).
//
// This is the only translation unit compiled with -mavx512f; nothing
// here is reachable except through the dispatchers in simd.cpp, which
// consult anc::cpu_features() first.  The same one-TU discipline as
// simd_kernels.cpp applies: no shared inline headers (a weak symbol
// instantiated here would smuggle AVX-512 codegen into baseline paths).
//
// These kernels are operation-for-operation transcriptions of the AVX2
// lanes in simd_kernels.cpp at twice the width, which are themselves
// transcriptions of the scalar fast kernels — so all three tiers emit
// bit-identical values (the contract util/simd.h documents).  The same
// two rules hold: no FMA in the value chains (-ffp-contract=off backs
// that up), and min/max/select lanes mirror the scalar ternaries'
// operand order exactly.
//
// AVX-512F-only vocabulary (the dispatch rule gates on the F flag
// alone, so nothing here may need DQ/BW/VL):
//
//   * bitwise FP logic goes through the epi64 domain (_mm512_and_pd and
//     friends are DQ);
//   * compares produce __mmask8 (_mm512_cmp_pd_mask) and selects are
//     _mm512_mask_blend_pd / _mm512_maskz_mov_pd instead of blendv;
//   * 64-bit low multiplies keep the 32x32 cross decomposition
//     (_mm512_mullo_epi64 is DQ).

#include "util/simd.h"

#include <cstddef>
#include <cstdint>

// x86-64 only, matching the CMake guard that adds -mavx512f for this
// file (cpu_features reports no AVX-512 elsewhere, so the stubs below
// are the correct behavior).
#if defined(__x86_64__)

#include <immintrin.h>

namespace anc::simd::detail {

namespace {

// ------------------------------------------------------------- helpers

inline __m512d and_bits_pd(__m512d a, __m512d b)
{
    return _mm512_castsi512_pd(
        _mm512_and_epi64(_mm512_castpd_si512(a), _mm512_castpd_si512(b)));
}

inline __m512d andnot_bits_pd(__m512d a, __m512d b)
{
    return _mm512_castsi512_pd(
        _mm512_andnot_epi64(_mm512_castpd_si512(a), _mm512_castpd_si512(b)));
}

inline __m512d or_bits_pd(__m512d a, __m512d b)
{
    return _mm512_castsi512_pd(
        _mm512_or_epi64(_mm512_castpd_si512(a), _mm512_castpd_si512(b)));
}

inline __m512d abs_pd(__m512d v)
{
    return andnot_bits_pd(_mm512_set1_pd(-0.0), v);
}

inline __m512d neg_pd(__m512d v)
{
    return _mm512_castsi512_pd(_mm512_xor_epi64(
        _mm512_castpd_si512(v), _mm512_castpd_si512(_mm512_set1_pd(-0.0))));
}

/// copysign(magnitude, sign_source), both lanes finite.
inline __m512d copysign_pd(__m512d magnitude, __m512d sign_source)
{
    const __m512d mask = _mm512_set1_pd(-0.0);
    return or_bits_pd(andnot_bits_pd(mask, magnitude),
                      and_bits_pd(mask, sign_source));
}

/// Exact uint64 -> double for values < 2^53 (hi/lo 32-bit split; both
/// halves convert exactly and their sum is representable, so the final
/// add rounds nothing).
inline __m512d u64_to_pd_53(__m512i v)
{
    const __m512i exp52 = _mm512_set1_epi64(0x4330000000000000LL); // 2^52
    const __m512d two52 = _mm512_set1_pd(4503599627370496.0);
    const __m512i lo = _mm512_and_epi64(v, _mm512_set1_epi64(0xffffffffLL));
    const __m512i hi = _mm512_srli_epi64(v, 32);
    const __m512d lo_d =
        _mm512_sub_pd(_mm512_castsi512_pd(_mm512_or_epi64(lo, exp52)), two52);
    const __m512d hi_d =
        _mm512_sub_pd(_mm512_castsi512_pd(_mm512_or_epi64(hi, exp52)), two52);
    return _mm512_add_pd(_mm512_mul_pd(hi_d, _mm512_set1_pd(4294967296.0)), lo_d);
}

/// Exact int64 -> double for |v| < 2^51 (the 1.5·2^52 magic trick).
inline __m512d i64_to_pd_51(__m512i v)
{
    const __m512i magic_bits = _mm512_set1_epi64(0x4338000000000000LL);
    const __m512d magic = _mm512_set1_pd(6755399441055744.0); // 1.5 * 2^52
    return _mm512_sub_pd(_mm512_castsi512_pd(_mm512_add_epi64(v, magic_bits)),
                         magic);
}

/// Full 64-bit low multiply (_mm512_mullo_epi64 is DQ): the classic
/// 32x32 cross-product decomposition, exact mod 2^64.
inline __m512i mullo_epi64(__m512i a, __m512i b)
{
    const __m512i a_hi = _mm512_srli_epi64(a, 32);
    const __m512i b_hi = _mm512_srli_epi64(b, 32);
    const __m512i lo_lo = _mm512_mul_epu32(a, b);
    const __m512i hi_lo = _mm512_mul_epu32(a_hi, b);
    const __m512i lo_hi = _mm512_mul_epu32(a, b_hi);
    const __m512i cross = _mm512_add_epi64(hi_lo, lo_hi);
    return _mm512_add_epi64(lo_lo, _mm512_slli_epi64(cross, 32));
}

/// SplitMix64 finalizer lanes (util/rng.h splitmix64, minus the
/// increment step the callers fold into their counter words).
inline __m512i splitmix64_lanes(__m512i x)
{
    x = _mm512_add_epi64(x, _mm512_set1_epi64(0x9e3779b97f4a7c15ULL));
    x = mullo_epi64(_mm512_xor_epi64(x, _mm512_srli_epi64(x, 30)),
                    _mm512_set1_epi64(0xbf58476d1ce4e5b9ULL));
    x = mullo_epi64(_mm512_xor_epi64(x, _mm512_srli_epi64(x, 27)),
                    _mm512_set1_epi64(0x94d049bb133111ebULL));
    return _mm512_xor_epi64(x, _mm512_srli_epi64(x, 31));
}

/// Interleave two SoA lanes (a = firsts, b = seconds) into AoS pairs:
/// out0 = [a0,b0,...,a3,b3], out1 = [a4,b4,...,a7,b7].
inline void interleave_pd(__m512d a, __m512d b, __m512d& out0, __m512d& out1)
{
    const __m512i idx0 = _mm512_set_epi64(11, 3, 10, 2, 9, 1, 8, 0);
    const __m512i idx1 = _mm512_set_epi64(15, 7, 14, 6, 13, 5, 12, 4);
    out0 = _mm512_permutex2var_pd(a, idx0, b);
    out1 = _mm512_permutex2var_pd(a, idx1, b);
}

/// Split 8 interleaved complex samples at `p` into re/im lanes.
inline void deinterleave_pd(const double* p, __m512d& re, __m512d& im)
{
    const __m512d v0 = _mm512_loadu_pd(p);     // [re0,im0,...,re3,im3]
    const __m512d v1 = _mm512_loadu_pd(p + 8); // [re4,im4,...,re7,im7]
    const __m512i idx_re = _mm512_set_epi64(14, 12, 10, 8, 6, 4, 2, 0);
    const __m512i idx_im = _mm512_set_epi64(15, 13, 11, 9, 7, 5, 3, 1);
    re = _mm512_permutex2var_pd(v0, idx_re, v1);
    im = _mm512_permutex2var_pd(v0, idx_im, v1);
}

// --------------------------------------------------------- lane kernels
// Lane-for-lane transcriptions of the scalar kernels; every comment of
// the form "scalar: ..." pins the expression being replicated.

/// fast_atan2 lanes (util/fastmath.h): octant fold, degree-12 Chebyshev
/// in Estrin form, quadrant assembly.
inline __m512d atan2_lanes(__m512d y, __m512d x)
{
    const __m512d half_pi = _mm512_set1_pd(1.57079632679489661923);
    const __m512d pi = _mm512_set1_pd(3.14159265358979323846);

    const __m512d ax = abs_pd(x);
    const __m512d ay = abs_pd(y);
    // scalar: num = ax < ay ? ax : ay (equal -> ay); den = ax < ay ? ay : ax.
    const __m512d num = _mm512_min_pd(ax, ay);
    const __m512d den = _mm512_max_pd(ay, ax);
    // scalar: z = den == 0.0 ? 0.0 : num / den.
    const __mmask8 den_nonzero = static_cast<__mmask8>(
        ~_mm512_cmp_pd_mask(den, _mm512_setzero_pd(), _CMP_EQ_OQ));
    const __m512d z = _mm512_maskz_mov_pd(den_nonzero, _mm512_div_pd(num, den));

    const __m512d t = _mm512_mul_pd(z, z);
    const __m512d t2 = _mm512_mul_pd(t, t);
    const __m512d t4 = _mm512_mul_pd(t2, t2);
    const __m512d t8 = _mm512_mul_pd(t4, t4);
    const auto pair_term = [](double c_lo, double c_hi, __m512d v) {
        return _mm512_add_pd(_mm512_set1_pd(c_lo),
                             _mm512_mul_pd(_mm512_set1_pd(c_hi), v));
    };
    const __m512d b0 = pair_term(9.99999999988738120e-01, -3.33333329516572185e-01, t);
    const __m512d b1 = pair_term(1.99999783362170863e-01, -1.42852256081602597e-01, t);
    const __m512d b2 = pair_term(1.11053067324246468e-01, -9.04917909372005280e-02, t);
    const __m512d b3 = pair_term(7.49526237809320373e-02, -6.02219638791359271e-02, t);
    const __m512d b4 = pair_term(4.36465894423390538e-02, -2.60059959770320183e-02, t);
    const __m512d b5 = pair_term(1.14276332769563185e-02, -3.19542524056683729e-03, t);
    const __m512d d0 = _mm512_add_pd(b0, _mm512_mul_pd(b1, t2));
    const __m512d d1 = _mm512_add_pd(b2, _mm512_mul_pd(b3, t2));
    const __m512d d2 = _mm512_add_pd(b4, _mm512_mul_pd(b5, t2));
    // scalar: acc = (d0 + d1 * t4) + (d2 + c[12] * t4) * t8.
    const __m512d acc = _mm512_add_pd(
        _mm512_add_pd(d0, _mm512_mul_pd(d1, t4)),
        _mm512_mul_pd(
            _mm512_add_pd(d2, _mm512_mul_pd(
                                  _mm512_set1_pd(4.19227860083381837e-04), t4)),
            t8));
    __m512d angle = _mm512_mul_pd(z, acc);
    // scalar: angle = ax < ay ? half_pi - angle : angle.
    const __mmask8 swap = _mm512_cmp_pd_mask(ax, ay, _CMP_LT_OQ);
    angle = _mm512_mask_blend_pd(swap, angle, _mm512_sub_pd(half_pi, angle));
    // scalar: angle = std::signbit(x) ? pi - angle : angle (x == -0.0 too).
    const __mmask8 x_neg =
        _mm512_cmpgt_epi64_mask(_mm512_setzero_si512(), _mm512_castpd_si512(x));
    angle = _mm512_mask_blend_pd(x_neg, angle, _mm512_sub_pd(pi, angle));
    // scalar: return std::copysign(angle, y).
    return copysign_pd(angle, y);
}

/// fast_sincos lanes: Cody–Waite reduction + the fdlibm kernels.
inline void sincos_lanes(__m512d x, __m512d& sin_out, __m512d& cos_out)
{
    const __m512d two_over_pi = _mm512_set1_pd(0.63661977236758134308);
    const __m512d pio2_hi = _mm512_set1_pd(1.57079632679489661923);
    const __m512d pio2_lo = _mm512_set1_pd(6.12323399573676603587e-17);
    const __m512d magic = _mm512_set1_pd(6755399441055744.0); // 1.5 * 2^52

    // scalar: kd = fast_round(x * two_over_pi) — the magic add/sub.
    const __m512d kd = _mm512_sub_pd(
        _mm512_add_pd(_mm512_mul_pd(x, two_over_pi), magic), magic);
    // scalar: r = (x - kd * pio2_hi) - kd * pio2_lo.
    const __m512d r = _mm512_sub_pd(_mm512_sub_pd(x, _mm512_mul_pd(kd, pio2_hi)),
                                    _mm512_mul_pd(kd, pio2_lo));
    // scalar: q = (int64)kd & 3.  kd is integral and |kd| < 2^31 on the
    // documented |x| ≲ 1e6 domain, so the nearest-int convert is exact.
    const __m512i q =
        _mm512_and_epi64(_mm512_cvtepi32_epi64(_mm512_cvtpd_epi32(kd)),
                         _mm512_set1_epi64(3));

    const __m512d z = _mm512_mul_pd(r, r);
    // sin_kernel: r + r*z*(s1 + z*(s2 + z*(s3 + z*(s4 + z*(s5 + z*s6))))).
    __m512d sp = _mm512_add_pd(
        _mm512_set1_pd(-2.50507602534068634195e-08),
        _mm512_mul_pd(z, _mm512_set1_pd(1.58969099521155010221e-10)));
    sp = _mm512_add_pd(_mm512_set1_pd(2.75573137070700676789e-06),
                       _mm512_mul_pd(z, sp));
    sp = _mm512_add_pd(_mm512_set1_pd(-1.98412698298579493134e-04),
                       _mm512_mul_pd(z, sp));
    sp = _mm512_add_pd(_mm512_set1_pd(8.33333333332248946124e-03),
                       _mm512_mul_pd(z, sp));
    sp = _mm512_add_pd(_mm512_set1_pd(-1.66666666666666324348e-01),
                       _mm512_mul_pd(z, sp));
    const __m512d ss =
        _mm512_add_pd(r, _mm512_mul_pd(_mm512_mul_pd(r, z), sp));
    // cos_kernel: 1 - 0.5*z + z*z*(c1 + z*(c2 + z*(c3 + z*(c4 + z*(c5 + z*c6))))).
    __m512d cp = _mm512_add_pd(
        _mm512_set1_pd(2.08757232129817482790e-09),
        _mm512_mul_pd(z, _mm512_set1_pd(-1.13596475577881948265e-11)));
    cp = _mm512_add_pd(_mm512_set1_pd(-2.75573143513906633035e-07),
                       _mm512_mul_pd(z, cp));
    cp = _mm512_add_pd(_mm512_set1_pd(2.48015872894767294178e-05),
                       _mm512_mul_pd(z, cp));
    cp = _mm512_add_pd(_mm512_set1_pd(-1.38888888888741095749e-03),
                       _mm512_mul_pd(z, cp));
    cp = _mm512_add_pd(_mm512_set1_pd(4.16666666666666019037e-02),
                       _mm512_mul_pd(z, cp));
    const __m512d cc = _mm512_add_pd(
        _mm512_sub_pd(_mm512_set1_pd(1.0),
                      _mm512_mul_pd(_mm512_set1_pd(0.5), z)),
        _mm512_mul_pd(_mm512_mul_pd(z, z), cp));

    // scalar: s = (q & 1) ? cc : ss; c = (q & 1) ? ss : cc;
    //         sin = (q & 2) ? -s : s; cos = ((q + 1) & 2) ? -c : c.
    const __m512i one = _mm512_set1_epi64(1);
    const __m512i two = _mm512_set1_epi64(2);
    const __mmask8 odd =
        _mm512_cmpeq_epi64_mask(_mm512_and_epi64(q, one), one);
    const __m512d s_sel = _mm512_mask_blend_pd(odd, ss, cc);
    const __m512d c_sel = _mm512_mask_blend_pd(odd, cc, ss);
    const __mmask8 s_neg_mask =
        _mm512_cmpeq_epi64_mask(_mm512_and_epi64(q, two), two);
    const __mmask8 c_neg_mask = _mm512_cmpeq_epi64_mask(
        _mm512_and_epi64(_mm512_add_epi64(q, one), two), two);
    sin_out = _mm512_mask_blend_pd(s_neg_mask, s_sel, neg_pd(s_sel));
    cos_out = _mm512_mask_blend_pd(c_neg_mask, c_sel, neg_pd(c_sel));
}

/// fast_log lanes: exponent/mantissa split + atanh(f) series.
inline __m512d log_lanes(__m512d x)
{
    const __m512d one = _mm512_set1_pd(1.0);
    const __m512d sqrt2 = _mm512_set1_pd(1.41421356237309504880);
    const __m512i bits = _mm512_castpd_si512(x);
    const __m512d raw_m = _mm512_castsi512_pd(_mm512_or_epi64(
        _mm512_and_epi64(bits, _mm512_set1_epi64(0xfffffffffffffLL)),
        _mm512_set1_epi64(0x3ff0000000000000LL)));
    // scalar: fold = raw_m > sqrt2; m = fold ? raw_m * 0.5 : raw_m;
    //         e = raw_e + (fold ? 1 : 0).
    const __mmask8 fold = _mm512_cmp_pd_mask(raw_m, sqrt2, _CMP_GT_OQ);
    const __m512d m = _mm512_mask_blend_pd(
        fold, raw_m, _mm512_mul_pd(raw_m, _mm512_set1_pd(0.5)));
    // ed = double(raw_e + fold), built exactly: the biased exponent is an
    // integer in [1, 2046], converted via the 2^52 magic, then the bias
    // and the fold increment (both exact integer adds in double).
    const __m512i biased =
        _mm512_and_epi64(_mm512_srli_epi64(bits, 52), _mm512_set1_epi64(0x7ff));
    const __m512d biased_d = _mm512_sub_pd(
        _mm512_castsi512_pd(
            _mm512_or_epi64(biased, _mm512_set1_epi64(0x4330000000000000LL))),
        _mm512_set1_pd(4503599627370496.0));
    const __m512d ed =
        _mm512_add_pd(_mm512_sub_pd(biased_d, _mm512_set1_pd(1023.0)),
                      _mm512_maskz_mov_pd(fold, one));
    // scalar: f = (m - 1) / (m + 1); then the 8-term atanh series.
    const __m512d f =
        _mm512_div_pd(_mm512_sub_pd(m, one), _mm512_add_pd(m, one));
    const __m512d w = _mm512_mul_pd(f, f);
    const __m512d w2 = _mm512_mul_pd(w, w);
    const __m512d w4 = _mm512_mul_pd(w2, w2);
    const __m512d p0 =
        _mm512_add_pd(one, _mm512_mul_pd(w, _mm512_set1_pd(1.0 / 3.0)));
    const __m512d p1 = _mm512_add_pd(
        _mm512_set1_pd(1.0 / 5.0), _mm512_mul_pd(w, _mm512_set1_pd(1.0 / 7.0)));
    const __m512d p2 = _mm512_add_pd(
        _mm512_set1_pd(1.0 / 9.0), _mm512_mul_pd(w, _mm512_set1_pd(1.0 / 11.0)));
    const __m512d p3 = _mm512_add_pd(
        _mm512_set1_pd(1.0 / 13.0), _mm512_mul_pd(w, _mm512_set1_pd(1.0 / 15.0)));
    // scalar: poly = 2*f*((p0 + p1*w2) + (p2 + p3*w2)*w4).
    const __m512d poly = _mm512_mul_pd(
        _mm512_mul_pd(_mm512_set1_pd(2.0), f),
        _mm512_add_pd(_mm512_add_pd(p0, _mm512_mul_pd(p1, w2)),
                      _mm512_mul_pd(_mm512_add_pd(p2, _mm512_mul_pd(p3, w2)),
                                    w4)));
    // scalar: ed*ln2_hi + (ed*ln2_lo + poly).
    const __m512d ln2_hi = _mm512_set1_pd(6.93147180369123816490e-01);
    const __m512d ln2_lo = _mm512_set1_pd(1.90821492927058770002e-10);
    return _mm512_add_pd(_mm512_mul_pd(ed, ln2_hi),
                         _mm512_add_pd(_mm512_mul_pd(ed, ln2_lo), poly));
}

/// wrap_branchless lanes: angle + (angle <= -pi ? 2pi : 0) - (angle > pi
/// ? 2pi : 0), same add/sub order as the scalar.
inline __m512d wrap_lanes(__m512d angle)
{
    const __m512d pi = _mm512_set1_pd(3.141592653589793238462643383279502884);
    const __m512d two_pi = _mm512_set1_pd(2.0 * 3.141592653589793238462643383279502884);
    const __m512d up = _mm512_maskz_mov_pd(
        _mm512_cmp_pd_mask(angle, neg_pd(pi), _CMP_LE_OQ), two_pi);
    const __m512d down = _mm512_maskz_mov_pd(
        _mm512_cmp_pd_mask(angle, pi, _CMP_GT_OQ), two_pi);
    return _mm512_sub_pd(_mm512_add_pd(angle, up), down);
}

// ----------------------------------------------- Counter_normal lanes
// Transcriptions of the noise-grade kernels in util/rng.h.

/// detail::noise_log lanes (5-term atanh series, integer-domain fold).
inline __m512d noise_log_lanes(__m512d x)
{
    const __m512d one = _mm512_set1_pd(1.0);
    const __m512d sqrt2 = _mm512_set1_pd(1.41421356237309504880);
    const __m512i bits = _mm512_castpd_si512(x);
    const __m512d raw_m = _mm512_castsi512_pd(_mm512_or_epi64(
        _mm512_and_epi64(bits, _mm512_set1_epi64(0xfffffffffffffLL)),
        _mm512_set1_epi64(0x3ff0000000000000LL)));
    // scalar: fold = uint(raw_m > sqrt2); m = bits(raw_m) - (fold << 52).
    const __mmask8 fold = _mm512_cmp_pd_mask(raw_m, sqrt2, _CMP_GT_OQ);
    const __m512i fold_bit =
        _mm512_maskz_mov_epi64(fold, _mm512_set1_epi64(1LL << 52));
    const __m512d m = _mm512_castsi512_pd(
        _mm512_sub_epi64(_mm512_castpd_si512(raw_m), fold_bit));
    const __m512i biased =
        _mm512_and_epi64(_mm512_srli_epi64(bits, 52), _mm512_set1_epi64(0x7ff));
    const __m512d biased_d = _mm512_sub_pd(
        _mm512_castsi512_pd(
            _mm512_or_epi64(biased, _mm512_set1_epi64(0x4330000000000000LL))),
        _mm512_set1_pd(4503599627370496.0));
    const __m512d ed =
        _mm512_add_pd(_mm512_sub_pd(biased_d, _mm512_set1_pd(1023.0)),
                      _mm512_maskz_mov_pd(fold, one));
    const __m512d f =
        _mm512_div_pd(_mm512_sub_pd(m, one), _mm512_add_pd(m, one));
    const __m512d w = _mm512_mul_pd(f, f);
    const __m512d w2 = _mm512_mul_pd(w, w);
    // scalar: poly = 2*f*((1 + w/3) + (1/5 + w/7 + w2/9) * w2).
    const __m512d inner = _mm512_add_pd(
        _mm512_add_pd(_mm512_set1_pd(1.0 / 5.0),
                      _mm512_mul_pd(w, _mm512_set1_pd(1.0 / 7.0))),
        _mm512_mul_pd(w2, _mm512_set1_pd(1.0 / 9.0)));
    const __m512d poly = _mm512_mul_pd(
        _mm512_mul_pd(_mm512_set1_pd(2.0), f),
        _mm512_add_pd(
            _mm512_add_pd(one, _mm512_mul_pd(w, _mm512_set1_pd(1.0 / 3.0))),
            _mm512_mul_pd(inner, w2)));
    const __m512d ln2_hi = _mm512_set1_pd(6.93147180369123816490e-01);
    const __m512d ln2_lo = _mm512_set1_pd(1.90821492927058770002e-10);
    return _mm512_add_pd(_mm512_mul_pd(ed, ln2_hi),
                         _mm512_add_pd(_mm512_mul_pd(ed, ln2_lo), poly));
}

/// detail::box_muller_radius lanes: sqrt(-2 ln u1), u1 from the hash word.
inline __m512d box_muller_radius_lanes(__m512i w1)
{
    // scalar: u1 = double((w1 >> 11) + 1) * 2^-53; value ≤ 2^53 so the
    // split convert is exact, matching the scalar int64 convert.
    const __m512i w =
        _mm512_add_epi64(_mm512_srli_epi64(w1, 11), _mm512_set1_epi64(1));
    const __m512d u1 = _mm512_mul_pd(u64_to_pd_53(w), _mm512_set1_pd(0x1.0p-53));
    return _mm512_sqrt_pd(
        _mm512_mul_pd(_mm512_set1_pd(-2.0), noise_log_lanes(u1)));
}

/// detail::box_muller_angle lanes: exact integer quadrant reduction +
/// the noise-grade 4-term kernels + bit-domain quadrant assembly.
inline void box_muller_angle_lanes(__m512i w2, __m512d& s, __m512d& c)
{
    const __m512i w = _mm512_srli_epi64(w2, 11);
    // scalar: k = int64((w + 2^50) >> 51); rem = int64(w) - (k << 51).
    const __m512i k = _mm512_srli_epi64(
        _mm512_add_epi64(w, _mm512_set1_epi64(1LL << 50)), 51);
    const __m512i rem = _mm512_sub_epi64(w, _mm512_slli_epi64(k, 51));
    // |rem| ≤ 2^50, so the magic convert is exact like the scalar cast.
    const __m512d r = _mm512_mul_pd(
        i64_to_pd_51(rem),
        _mm512_set1_pd(0x1.0p-51 * 1.57079632679489661923));

    const __m512d z = _mm512_mul_pd(r, r);
    // Noise-grade 4-term kernels, same Horner order as util/rng.h.
    __m512d sp = _mm512_add_pd(
        _mm512_set1_pd(-1.98412698298579493134e-04),
        _mm512_mul_pd(z, _mm512_set1_pd(2.75573137070700676789e-06)));
    sp = _mm512_add_pd(_mm512_set1_pd(8.33333333332248946124e-03),
                       _mm512_mul_pd(z, sp));
    sp = _mm512_add_pd(_mm512_set1_pd(-1.66666666666666324348e-01),
                       _mm512_mul_pd(z, sp));
    const __m512d ss =
        _mm512_add_pd(r, _mm512_mul_pd(_mm512_mul_pd(r, z), sp));
    __m512d cp = _mm512_add_pd(
        _mm512_set1_pd(2.48015872894767294178e-05),
        _mm512_mul_pd(z, _mm512_set1_pd(-2.75573143513906633035e-07)));
    cp = _mm512_add_pd(_mm512_set1_pd(-1.38888888888741095749e-03),
                       _mm512_mul_pd(z, cp));
    cp = _mm512_add_pd(_mm512_set1_pd(4.16666666666666019037e-02),
                       _mm512_mul_pd(z, cp));
    const __m512d cc = _mm512_add_pd(
        _mm512_sub_pd(_mm512_set1_pd(1.0),
                      _mm512_mul_pd(_mm512_set1_pd(0.5), z)),
        _mm512_mul_pd(_mm512_mul_pd(z, z), cp));

    // scalar bit-domain assembly: swap via mask select, sign flips via
    // XOR of (q & 2) << 62 and ((q + 1) & 2) << 62.
    const __m512i q = _mm512_and_epi64(k, _mm512_set1_epi64(3));
    const __m512i one = _mm512_set1_epi64(1);
    const __mmask8 swap_mask =
        _mm512_cmpeq_epi64_mask(_mm512_and_epi64(q, one), one);
    const __m512i sbits = _mm512_castpd_si512(ss);
    const __m512i cbits = _mm512_castpd_si512(cc);
    __m512i s_sel = _mm512_mask_blend_epi64(swap_mask, sbits, cbits);
    __m512i c_sel = _mm512_mask_blend_epi64(swap_mask, cbits, sbits);
    const __m512i two = _mm512_set1_epi64(2);
    s_sel = _mm512_xor_epi64(
        s_sel, _mm512_slli_epi64(_mm512_and_epi64(q, two), 62));
    c_sel = _mm512_xor_epi64(
        c_sel,
        _mm512_slli_epi64(_mm512_and_epi64(_mm512_add_epi64(q, one), two), 62));
    s = _mm512_castsi512_pd(s_sel);
    c = _mm512_castsi512_pd(c_sel);
}

/// The shared 8-pair Counter_normal step: hash the eight counters on both
/// key lanes, Box–Muller, and interleave into (z0, z1) pair order.
/// `a_words`/`b_words` are key + counter·increment for the eight lanes.
inline void counter_normal_step(__m512i a_words, __m512i b_words, __m512d& pairs0,
                                __m512d& pairs1)
{
    const __m512i w1 = splitmix64_lanes(a_words);
    const __m512i w2 = splitmix64_lanes(b_words);
    const __m512d radius = box_muller_radius_lanes(w1);
    __m512d s;
    __m512d c;
    box_muller_angle_lanes(w2, s, c);
    // scalar: z0 = radius * c, z1 = radius * s.
    interleave_pd(_mm512_mul_pd(radius, c), _mm512_mul_pd(radius, s), pairs0,
                  pairs1);
}

// Counter word increments (util/rng.h Counter_normal::pair).
constexpr std::uint64_t counter_inc_a = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t counter_inc_b = 0xc2b2ae3d27d4eb4fULL;

inline __m512i lane_counters(std::uint64_t base_word, std::uint64_t inc)
{
    return _mm512_add_epi64(
        _mm512_set1_epi64(static_cast<long long>(base_word)),
        _mm512_set_epi64(static_cast<long long>(7 * inc),
                         static_cast<long long>(6 * inc),
                         static_cast<long long>(5 * inc),
                         static_cast<long long>(4 * inc),
                         static_cast<long long>(3 * inc),
                         static_cast<long long>(2 * inc),
                         static_cast<long long>(inc), 0));
}

} // namespace

// ------------------------------------------------------- batch kernels

void atan2_batch_avx512(const double* y, const double* x, double* out,
                        std::size_t n)
{
    for (std::size_t i = 0; i < n; i += 8)
        _mm512_storeu_pd(out + i,
                         atan2_lanes(_mm512_loadu_pd(y + i), _mm512_loadu_pd(x + i)));
}

void sincos_batch_avx512(const double* angles, double* sin_out, double* cos_out,
                         std::size_t n)
{
    for (std::size_t i = 0; i < n; i += 8) {
        __m512d s;
        __m512d c;
        sincos_lanes(_mm512_loadu_pd(angles + i), s, c);
        _mm512_storeu_pd(sin_out + i, s);
        _mm512_storeu_pd(cos_out + i, c);
    }
}

void log_batch_avx512(const double* x, double* out, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += 8)
        _mm512_storeu_pd(out + i, log_lanes(_mm512_loadu_pd(x + i)));
}

void polar_batch_avx512(const double* angles, double magnitude,
                        double* interleaved_out, std::size_t n)
{
    const __m512d mag = _mm512_set1_pd(magnitude);
    for (std::size_t i = 0; i < n; i += 8) {
        __m512d s;
        __m512d c;
        sincos_lanes(_mm512_loadu_pd(angles + i), s, c);
        // scalar: out[2i] = magnitude * c; out[2i+1] = magnitude * s.
        __m512d pair0;
        __m512d pair1;
        interleave_pd(_mm512_mul_pd(mag, c), _mm512_mul_pd(mag, s), pair0, pair1);
        _mm512_storeu_pd(interleaved_out + 2 * i, pair0);
        _mm512_storeu_pd(interleaved_out + 2 * i + 8, pair1);
    }
}

void anc_candidates_batch_avx512(const double* interleaved_samples,
                                 std::size_t count, double a, double b,
                                 double* theta_plus, double* theta_minus,
                                 double* phi_minus, double* phi_plus)
{
    const __m512d av = _mm512_set1_pd(a);
    const __m512d bv = _mm512_set1_pd(b);
    const __m512d a2b2 = _mm512_set1_pd(a * a + b * b);
    const __m512d inv_2ab = _mm512_set1_pd(1.0 / (2.0 * a * b));
    const __m512d one = _mm512_set1_pd(1.0);
    const __m512d neg_one = _mm512_set1_pd(-1.0);
    const __m512d zero = _mm512_setzero_pd();
    for (std::size_t i = 0; i < count; i += 8) {
        __m512d re;
        __m512d im;
        deinterleave_pd(interleaved_samples + 2 * i, re, im);
        // scalar: norm = re*re + im*im; d = clamp((norm - a2b2) * inv_2ab).
        const __m512d norm =
            _mm512_add_pd(_mm512_mul_pd(re, re), _mm512_mul_pd(im, im));
        __m512d d = _mm512_mul_pd(_mm512_sub_pd(norm, a2b2), inv_2ab);
        d = _mm512_min_pd(_mm512_max_pd(d, neg_one), one);
        // scalar: root = sqrt(max(1 - d*d, 0)); 1 - d*d ≥ +0 for |d| ≤ 1,
        // so max_pd matches std::max exactly here.
        const __m512d root = _mm512_sqrt_pd(
            _mm512_max_pd(_mm512_sub_pd(one, _mm512_mul_pd(d, d)), zero));
        const __m512d wy = atan2_lanes(im, re);
        const __m512d wt = atan2_lanes(_mm512_mul_pd(bv, root),
                                       _mm512_add_pd(av, _mm512_mul_pd(bv, d)));
        const __m512d wp = atan2_lanes(_mm512_mul_pd(av, root),
                                       _mm512_add_pd(bv, _mm512_mul_pd(av, d)));
        _mm512_storeu_pd(theta_plus + i, wrap_lanes(_mm512_add_pd(wy, wt)));
        _mm512_storeu_pd(theta_minus + i, wrap_lanes(_mm512_sub_pd(wy, wt)));
        _mm512_storeu_pd(phi_minus + i, wrap_lanes(_mm512_sub_pd(wy, wp)));
        _mm512_storeu_pd(phi_plus + i, wrap_lanes(_mm512_add_pd(wy, wp)));
    }
}

void anc_select_batch_avx512(const double* theta_plus, const double* theta_minus,
                             const double* phi_minus, const double* phi_plus,
                             const double* known_diffs, std::size_t transitions,
                             double* phi_out, double* error_out)
{
    for (std::size_t n = 0; n < transitions; n += 8) {
        const __m512d tp0 = _mm512_loadu_pd(theta_plus + n);
        const __m512d tp1 = _mm512_loadu_pd(theta_plus + n + 1);
        const __m512d tm0 = _mm512_loadu_pd(theta_minus + n);
        const __m512d tm1 = _mm512_loadu_pd(theta_minus + n + 1);
        const __m512d pm0 = _mm512_loadu_pd(phi_minus + n);
        const __m512d pm1 = _mm512_loadu_pd(phi_minus + n + 1);
        const __m512d pp0 = _mm512_loadu_pd(phi_plus + n);
        const __m512d pp1 = _mm512_loadu_pd(phi_plus + n + 1);
        const __m512d known = _mm512_loadu_pd(known_diffs + n);
        // scalar: error_of = |wrap(wrap(next - cur) - known)|.
        const auto error_of = [&](__m512d next, __m512d cur) {
            return abs_pd(
                wrap_lanes(_mm512_sub_pd(wrap_lanes(_mm512_sub_pd(next, cur)),
                                         known)));
        };
        const __m512d e00 = error_of(tp1, tp0);
        const __m512d e01 = error_of(tp1, tm0);
        const __m512d e10 = error_of(tm1, tp0);
        const __m512d e11 = error_of(tm1, tm0);
        const __m512d p00 = wrap_lanes(_mm512_sub_pd(pm1, pm0));
        const __m512d p01 = wrap_lanes(_mm512_sub_pd(pm1, pp0));
        const __m512d p10 = wrap_lanes(_mm512_sub_pd(pp1, pm0));
        const __m512d p11 = wrap_lanes(_mm512_sub_pd(pp1, pp0));
        // scalar: strict-< selects, earliest minimum wins ties.
        const __mmask8 b01 = _mm512_cmp_pd_mask(e01, e00, _CMP_LT_OQ);
        const __m512d ea = _mm512_mask_blend_pd(b01, e00, e01);
        const __m512d pa = _mm512_mask_blend_pd(b01, p00, p01);
        const __mmask8 b11 = _mm512_cmp_pd_mask(e11, e10, _CMP_LT_OQ);
        const __m512d eb = _mm512_mask_blend_pd(b11, e10, e11);
        const __m512d pb = _mm512_mask_blend_pd(b11, p10, p11);
        const __mmask8 bb = _mm512_cmp_pd_mask(eb, ea, _CMP_LT_OQ);
        _mm512_storeu_pd(phi_out + n, _mm512_mask_blend_pd(bb, pa, pb));
        _mm512_storeu_pd(error_out + n, _mm512_mask_blend_pd(bb, ea, eb));
    }
}

void diff_arg_batch_avx512(const double* interleaved_samples,
                           std::size_t transitions, double* out)
{
    for (std::size_t n = 0; n < transitions; n += 8) {
        __m512d ar;
        __m512d ai;
        __m512d br;
        __m512d bi;
        deinterleave_pd(interleaved_samples + 2 * n, ar, ai);
        deinterleave_pd(interleaved_samples + 2 * n + 2, br, bi);
        // scalar: im = br * -ai + bi * ar; re = br * ar - bi * -ai.
        const __m512d nai = neg_pd(ai);
        const __m512d im_p =
            _mm512_add_pd(_mm512_mul_pd(br, nai), _mm512_mul_pd(bi, ar));
        const __m512d re_p =
            _mm512_sub_pd(_mm512_mul_pd(br, ar), _mm512_mul_pd(bi, nai));
        _mm512_storeu_pd(out + n, atan2_lanes(im_p, re_p));
    }
}

void counter_normal_fill_avx512(std::uint64_t key_a, std::uint64_t key_b,
                                std::uint64_t first_counter, double* out,
                                std::size_t count)
{
    // Eight counters -> eight (z0, z1) pairs -> sixteen output doubles
    // per step.  Counter words advance additively (key + c·inc is linear
    // in c mod 2^64), so each lane's word matches the scalar fill exactly.
    __m512i a_words = lane_counters(key_a + first_counter * counter_inc_a,
                                    counter_inc_a);
    __m512i b_words = lane_counters(key_b + first_counter * counter_inc_b,
                                    counter_inc_b);
    const __m512i step_a = _mm512_set1_epi64(static_cast<long long>(8 * counter_inc_a));
    const __m512i step_b = _mm512_set1_epi64(static_cast<long long>(8 * counter_inc_b));
    for (std::size_t i = 0; i < count; i += 16) {
        __m512d pairs0;
        __m512d pairs1;
        counter_normal_step(a_words, b_words, pairs0, pairs1);
        _mm512_storeu_pd(out + i, pairs0);
        _mm512_storeu_pd(out + i + 8, pairs1);
        a_words = _mm512_add_epi64(a_words, step_a);
        b_words = _mm512_add_epi64(b_words, step_b);
    }
}

void counter_normal_add_scaled_avx512(std::uint64_t key_a, std::uint64_t key_b,
                                      std::uint64_t first_counter, double scale,
                                      double* inout, std::size_t count)
{
    __m512i a_words = lane_counters(key_a + first_counter * counter_inc_a,
                                    counter_inc_a);
    __m512i b_words = lane_counters(key_b + first_counter * counter_inc_b,
                                    counter_inc_b);
    const __m512i step_a = _mm512_set1_epi64(static_cast<long long>(8 * counter_inc_a));
    const __m512i step_b = _mm512_set1_epi64(static_cast<long long>(8 * counter_inc_b));
    const __m512d scale_v = _mm512_set1_pd(scale);
    for (std::size_t i = 0; i < count; i += 16) {
        __m512d pairs0;
        __m512d pairs1;
        counter_normal_step(a_words, b_words, pairs0, pairs1);
        // scalar: inout[i] += scale * z — multiply then add, no FMA.
        _mm512_storeu_pd(inout + i,
                         _mm512_add_pd(_mm512_loadu_pd(inout + i),
                                       _mm512_mul_pd(scale_v, pairs0)));
        _mm512_storeu_pd(inout + i + 8,
                         _mm512_add_pd(_mm512_loadu_pd(inout + i + 8),
                                       _mm512_mul_pd(scale_v, pairs1)));
        a_words = _mm512_add_epi64(a_words, step_a);
        b_words = _mm512_add_epi64(b_words, step_b);
    }
}

void rotor_accumulate_avx512(const double* interleaved_in,
                             double* interleaved_acc, std::size_t samples,
                             double rotor_re, double rotor_im)
{
    // The AVX2 lanes at 512-bit width (see simd_kernels.cpp for the
    // bit-identity argument): v·rr plus the pair-swapped vector times
    // (−ri, +ri), mul and add kept separate (no FMA).
    const __m512d rr = _mm512_set1_pd(rotor_re);
    const __m512d ri_alt = _mm512_setr_pd(-rotor_im, rotor_im, -rotor_im, rotor_im,
                                          -rotor_im, rotor_im, -rotor_im, rotor_im);
    const std::size_t n = 2 * samples; // doubles; samples % 4 == 0
    for (std::size_t i = 0; i < n; i += 8) {
        const __m512d v = _mm512_loadu_pd(interleaved_in + i);
        const __m512d swapped = _mm512_permute_pd(v, 0b01010101);
        const __m512d contribution =
            _mm512_add_pd(_mm512_mul_pd(v, rr), _mm512_mul_pd(swapped, ri_alt));
        _mm512_storeu_pd(interleaved_acc + i,
                         _mm512_add_pd(_mm512_loadu_pd(interleaved_acc + i),
                                       contribution));
    }
}

void cmul_accumulate_avx512(const double* interleaved_in,
                            const double* interleaved_rotors,
                            double* interleaved_acc, std::size_t samples)
{
    // The AVX2 lanes at 512-bit width.  AVX-512F has no vaddsubpd, so
    // the even lanes of t2 are sign-flipped through an integer XOR
    // (exact negation — a − b ≡ a + (−b) bitwise) and a single vaddpd
    // finishes both halves.
    const __m512i negate_even = _mm512_setr_epi64(
        static_cast<long long>(0x8000000000000000ull), 0,
        static_cast<long long>(0x8000000000000000ull), 0,
        static_cast<long long>(0x8000000000000000ull), 0,
        static_cast<long long>(0x8000000000000000ull), 0);
    const std::size_t n = 2 * samples; // doubles; samples % 4 == 0
    for (std::size_t i = 0; i < n; i += 8) {
        const __m512d v = _mm512_loadu_pd(interleaved_in + i);
        const __m512d w = _mm512_loadu_pd(interleaved_rotors + i);
        const __m512d w_re = _mm512_movedup_pd(w);
        const __m512d w_im = _mm512_permute_pd(w, 0b11111111);
        const __m512d swapped = _mm512_permute_pd(v, 0b01010101);
        const __m512d t2 = _mm512_castsi512_pd(_mm512_xor_epi64(
            _mm512_castpd_si512(_mm512_mul_pd(swapped, w_im)), negate_even));
        const __m512d contribution = _mm512_add_pd(_mm512_mul_pd(v, w_re), t2);
        _mm512_storeu_pd(interleaved_acc + i,
                         _mm512_add_pd(_mm512_loadu_pd(interleaved_acc + i),
                                       contribution));
    }
}

} // namespace anc::simd::detail

#else // non-x86: the dispatchers never take the avx512 branch (CPUID
      // reports no AVX-512), but the symbols must exist to link.

#include <cstdlib>

namespace anc::simd::detail {

namespace {
[[noreturn]] void unreachable_backend()
{
    std::abort(); // resolve_backend() forbids avx512 without CPUID support
}
} // namespace

void atan2_batch_avx512(const double*, const double*, double*, std::size_t)
{
    unreachable_backend();
}
void sincos_batch_avx512(const double*, double*, double*, std::size_t)
{
    unreachable_backend();
}
void log_batch_avx512(const double*, double*, std::size_t)
{
    unreachable_backend();
}
void polar_batch_avx512(const double*, double, double*, std::size_t)
{
    unreachable_backend();
}
void anc_candidates_batch_avx512(const double*, std::size_t, double, double,
                                 double*, double*, double*, double*)
{
    unreachable_backend();
}
void anc_select_batch_avx512(const double*, const double*, const double*,
                             const double*, const double*, std::size_t, double*,
                             double*)
{
    unreachable_backend();
}
void diff_arg_batch_avx512(const double*, std::size_t, double*)
{
    unreachable_backend();
}
void counter_normal_fill_avx512(std::uint64_t, std::uint64_t, std::uint64_t,
                                double*, std::size_t)
{
    unreachable_backend();
}
void counter_normal_add_scaled_avx512(std::uint64_t, std::uint64_t, std::uint64_t,
                                      double, double*, std::size_t)
{
    unreachable_backend();
}
void rotor_accumulate_avx512(const double*, double*, std::size_t, double, double)
{
    unreachable_backend();
}
void cmul_accumulate_avx512(const double*, const double*, double*, std::size_t)
{
    unreachable_backend();
}

} // namespace anc::simd::detail

#endif
