// Explicit AVX2+FMA lane kernels behind anc::simd (see util/simd.h).
//
// This is the only translation unit compiled with -mavx2 -mfma; nothing
// here is reachable except through the dispatchers in simd.cpp, which
// consult anc::cpu_features() first.  It deliberately includes no
// library header that defines shared inline functions: an inline
// function instantiated here would be compiled with AVX2 codegen, and
// the linker is free to pick *any* TU's copy of a weak symbol — which
// would smuggle AVX2 instructions into code paths that must run on
// baseline machines.  Everything shared lives behind the out-of-line
// seam in simd.cpp.
//
// Bit-compatibility discipline (the contract util/simd.h documents):
// every lane computes exactly the arithmetic of its scalar counterpart
// in util/fastmath.h / util/rng.h — same operations, same order.  Two
// consequences for the code below:
//
//   * no FMA in the value chains: the scalar kernels compile to
//     separate mul/add at the baseline ISA, so the lanes use
//     _mm256_mul_pd/_mm256_add_pd, never _mm256_fmadd_pd, and the whole
//     TU is compiled with -ffp-contract=off so the compiler cannot fuse
//     them behind our back.  (FMA is still required in the target set:
//     libm's scalar tail calls resolve to the hardware fma via IFUNC,
//     and the forced-scalar fallback must match it.)
//   * min/max/select lanes mirror the exact operand order of the scalar
//     ternaries, because _mm256_min_pd(a, b) = a < b ? a : b is not
//     symmetric in its handling of equal operands.
//
// Integer <-> double conversions that AVX2 lacks (u64/i64 to double) use
// the standard exact magic-constant tricks, valid far beyond the
// domains used here; each site states its bound.

#include "util/simd.h"

#include <cstddef>
#include <cstdint>

// x86-64 only, matching the CMake guard that adds -mavx2 -mfma for this
// file: a 32-bit x86 build would take this branch without those flags
// and fail on every intrinsic (cpu_features reports no AVX2 there
// anyway, so the stubs below are the correct behavior).
#if defined(__x86_64__)

#include <immintrin.h>

namespace anc::simd::detail {

namespace {

// ------------------------------------------------------------- helpers

inline __m256d abs_pd(__m256d v)
{
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

inline __m256d neg_pd(__m256d v)
{
    return _mm256_xor_pd(v, _mm256_set1_pd(-0.0));
}

/// copysign(magnitude, sign_source), both lanes finite.
inline __m256d copysign_pd(__m256d magnitude, __m256d sign_source)
{
    const __m256d mask = _mm256_set1_pd(-0.0);
    return _mm256_or_pd(_mm256_andnot_pd(mask, magnitude),
                        _mm256_and_pd(mask, sign_source));
}

/// Exact uint64 -> double for values < 2^53 (hi/lo 32-bit split; both
/// halves convert exactly and their sum is representable, so the final
/// add rounds nothing).
inline __m256d u64_to_pd_53(__m256i v)
{
    const __m256i exp52 = _mm256_set1_epi64x(0x4330000000000000LL); // 2^52
    const __m256d two52 = _mm256_set1_pd(4503599627370496.0);
    const __m256i lo = _mm256_and_si256(v, _mm256_set1_epi64x(0xffffffffLL));
    const __m256i hi = _mm256_srli_epi64(v, 32);
    const __m256d lo_d =
        _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(lo, exp52)), two52);
    const __m256d hi_d =
        _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(hi, exp52)), two52);
    return _mm256_add_pd(_mm256_mul_pd(hi_d, _mm256_set1_pd(4294967296.0)), lo_d);
}

/// Exact int64 -> double for |v| < 2^51 (the 1.5·2^52 magic trick).
inline __m256d i64_to_pd_51(__m256i v)
{
    const __m256i magic_bits = _mm256_set1_epi64x(0x4338000000000000LL);
    const __m256d magic = _mm256_set1_pd(6755399441055744.0); // 1.5 * 2^52
    return _mm256_sub_pd(_mm256_castsi256_pd(_mm256_add_epi64(v, magic_bits)),
                         magic);
}

/// Full 64-bit low multiply (AVX2 has no _mm256_mullo_epi64): the
/// classic 32x32 cross-product decomposition, exact mod 2^64.
inline __m256i mullo_epi64(__m256i a, __m256i b)
{
    const __m256i a_hi = _mm256_srli_epi64(a, 32);
    const __m256i b_hi = _mm256_srli_epi64(b, 32);
    const __m256i lo_lo = _mm256_mul_epu32(a, b);
    const __m256i hi_lo = _mm256_mul_epu32(a_hi, b);
    const __m256i lo_hi = _mm256_mul_epu32(a, b_hi);
    const __m256i cross = _mm256_add_epi64(hi_lo, lo_hi);
    return _mm256_add_epi64(lo_lo, _mm256_slli_epi64(cross, 32));
}

/// SplitMix64 finalizer lanes (util/rng.h splitmix64, minus the
/// increment step the callers fold into their counter words).
inline __m256i splitmix64_lanes(__m256i x)
{
    x = _mm256_add_epi64(x, _mm256_set1_epi64x(0x9e3779b97f4a7c15ULL));
    x = mullo_epi64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
                    _mm256_set1_epi64x(0xbf58476d1ce4e5b9ULL));
    x = mullo_epi64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
                    _mm256_set1_epi64x(0x94d049bb133111ebULL));
    return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

/// Interleave two SoA lanes (a = firsts, b = seconds) into AoS pairs:
/// out0 = [a0,b0,a1,b1], out1 = [a2,b2,a3,b3].
inline void interleave_pd(__m256d a, __m256d b, __m256d& out0, __m256d& out1)
{
    const __m256d lo = _mm256_unpacklo_pd(a, b); // [a0,b0 | a2,b2]
    const __m256d hi = _mm256_unpackhi_pd(a, b); // [a1,b1 | a3,b3]
    out0 = _mm256_permute2f128_pd(lo, hi, 0x20);
    out1 = _mm256_permute2f128_pd(lo, hi, 0x31);
}

/// Split 4 interleaved complex samples at `p` into re/im lanes.
inline void deinterleave_pd(const double* p, __m256d& re, __m256d& im)
{
    const __m256d v0 = _mm256_loadu_pd(p);     // [re0,im0,re1,im1]
    const __m256d v1 = _mm256_loadu_pd(p + 4); // [re2,im2,re3,im3]
    const __m256d t0 = _mm256_permute2f128_pd(v0, v1, 0x20); // [re0,im0,re2,im2]
    const __m256d t1 = _mm256_permute2f128_pd(v0, v1, 0x31); // [re1,im1,re3,im3]
    re = _mm256_unpacklo_pd(t0, t1);
    im = _mm256_unpackhi_pd(t0, t1);
}

// --------------------------------------------------------- lane kernels
// Lane-for-lane transcriptions of the scalar kernels; every comment of
// the form "scalar: ..." pins the expression being replicated.

/// fast_atan2 lanes (util/fastmath.h): octant fold, degree-12 Chebyshev
/// in Estrin form, quadrant assembly.
inline __m256d atan2_lanes(__m256d y, __m256d x)
{
    const __m256d half_pi = _mm256_set1_pd(1.57079632679489661923);
    const __m256d pi = _mm256_set1_pd(3.14159265358979323846);

    const __m256d ax = abs_pd(x);
    const __m256d ay = abs_pd(y);
    // scalar: num = ax < ay ? ax : ay (equal -> ay); den = ax < ay ? ay : ax.
    const __m256d num = _mm256_min_pd(ax, ay);
    const __m256d den = _mm256_max_pd(ay, ax);
    // scalar: z = den == 0.0 ? 0.0 : num / den.
    const __m256d den_zero = _mm256_cmp_pd(den, _mm256_setzero_pd(), _CMP_EQ_OQ);
    const __m256d z = _mm256_andnot_pd(den_zero, _mm256_div_pd(num, den));

    const __m256d t = _mm256_mul_pd(z, z);
    const __m256d t2 = _mm256_mul_pd(t, t);
    const __m256d t4 = _mm256_mul_pd(t2, t2);
    const __m256d t8 = _mm256_mul_pd(t4, t4);
    const auto pair_term = [](double c_lo, double c_hi, __m256d v) {
        return _mm256_add_pd(_mm256_set1_pd(c_lo),
                             _mm256_mul_pd(_mm256_set1_pd(c_hi), v));
    };
    const __m256d b0 = pair_term(9.99999999988738120e-01, -3.33333329516572185e-01, t);
    const __m256d b1 = pair_term(1.99999783362170863e-01, -1.42852256081602597e-01, t);
    const __m256d b2 = pair_term(1.11053067324246468e-01, -9.04917909372005280e-02, t);
    const __m256d b3 = pair_term(7.49526237809320373e-02, -6.02219638791359271e-02, t);
    const __m256d b4 = pair_term(4.36465894423390538e-02, -2.60059959770320183e-02, t);
    const __m256d b5 = pair_term(1.14276332769563185e-02, -3.19542524056683729e-03, t);
    const __m256d d0 = _mm256_add_pd(b0, _mm256_mul_pd(b1, t2));
    const __m256d d1 = _mm256_add_pd(b2, _mm256_mul_pd(b3, t2));
    const __m256d d2 = _mm256_add_pd(b4, _mm256_mul_pd(b5, t2));
    // scalar: acc = (d0 + d1 * t4) + (d2 + c[12] * t4) * t8.
    const __m256d acc = _mm256_add_pd(
        _mm256_add_pd(d0, _mm256_mul_pd(d1, t4)),
        _mm256_mul_pd(
            _mm256_add_pd(d2, _mm256_mul_pd(
                                  _mm256_set1_pd(4.19227860083381837e-04), t4)),
            t8));
    __m256d angle = _mm256_mul_pd(z, acc);
    // scalar: angle = ax < ay ? half_pi - angle : angle.
    const __m256d swap = _mm256_cmp_pd(ax, ay, _CMP_LT_OQ);
    angle = _mm256_blendv_pd(angle, _mm256_sub_pd(half_pi, angle), swap);
    // scalar: angle = std::signbit(x) ? pi - angle : angle (x == -0.0 too).
    const __m256i x_neg =
        _mm256_cmpgt_epi64(_mm256_setzero_si256(), _mm256_castpd_si256(x));
    angle = _mm256_blendv_pd(angle, _mm256_sub_pd(pi, angle),
                             _mm256_castsi256_pd(x_neg));
    // scalar: return std::copysign(angle, y).
    return copysign_pd(angle, y);
}

/// fast_sincos lanes: Cody–Waite reduction + the fdlibm kernels.
inline void sincos_lanes(__m256d x, __m256d& sin_out, __m256d& cos_out)
{
    const __m256d two_over_pi = _mm256_set1_pd(0.63661977236758134308);
    const __m256d pio2_hi = _mm256_set1_pd(1.57079632679489661923);
    const __m256d pio2_lo = _mm256_set1_pd(6.12323399573676603587e-17);
    const __m256d magic = _mm256_set1_pd(6755399441055744.0); // 1.5 * 2^52

    // scalar: kd = fast_round(x * two_over_pi) — the magic add/sub.
    const __m256d kd = _mm256_sub_pd(
        _mm256_add_pd(_mm256_mul_pd(x, two_over_pi), magic), magic);
    // scalar: r = (x - kd * pio2_hi) - kd * pio2_lo.
    const __m256d r = _mm256_sub_pd(_mm256_sub_pd(x, _mm256_mul_pd(kd, pio2_hi)),
                                    _mm256_mul_pd(kd, pio2_lo));
    // scalar: q = (int64)kd & 3.  kd is integral and |kd| < 2^31 on the
    // documented |x| ≲ 1e6 domain, so the nearest-int convert is exact.
    const __m256i q =
        _mm256_and_si256(_mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(kd)),
                         _mm256_set1_epi64x(3));

    const __m256d z = _mm256_mul_pd(r, r);
    // sin_kernel: r + r*z*(s1 + z*(s2 + z*(s3 + z*(s4 + z*(s5 + z*s6))))).
    __m256d sp = _mm256_add_pd(
        _mm256_set1_pd(-2.50507602534068634195e-08),
        _mm256_mul_pd(z, _mm256_set1_pd(1.58969099521155010221e-10)));
    sp = _mm256_add_pd(_mm256_set1_pd(2.75573137070700676789e-06),
                       _mm256_mul_pd(z, sp));
    sp = _mm256_add_pd(_mm256_set1_pd(-1.98412698298579493134e-04),
                       _mm256_mul_pd(z, sp));
    sp = _mm256_add_pd(_mm256_set1_pd(8.33333333332248946124e-03),
                       _mm256_mul_pd(z, sp));
    sp = _mm256_add_pd(_mm256_set1_pd(-1.66666666666666324348e-01),
                       _mm256_mul_pd(z, sp));
    const __m256d ss =
        _mm256_add_pd(r, _mm256_mul_pd(_mm256_mul_pd(r, z), sp));
    // cos_kernel: 1 - 0.5*z + z*z*(c1 + z*(c2 + z*(c3 + z*(c4 + z*(c5 + z*c6))))).
    __m256d cp = _mm256_add_pd(
        _mm256_set1_pd(2.08757232129817482790e-09),
        _mm256_mul_pd(z, _mm256_set1_pd(-1.13596475577881948265e-11)));
    cp = _mm256_add_pd(_mm256_set1_pd(-2.75573143513906633035e-07),
                       _mm256_mul_pd(z, cp));
    cp = _mm256_add_pd(_mm256_set1_pd(2.48015872894767294178e-05),
                       _mm256_mul_pd(z, cp));
    cp = _mm256_add_pd(_mm256_set1_pd(-1.38888888888741095749e-03),
                       _mm256_mul_pd(z, cp));
    cp = _mm256_add_pd(_mm256_set1_pd(4.16666666666666019037e-02),
                       _mm256_mul_pd(z, cp));
    const __m256d cc = _mm256_add_pd(
        _mm256_sub_pd(_mm256_set1_pd(1.0),
                      _mm256_mul_pd(_mm256_set1_pd(0.5), z)),
        _mm256_mul_pd(_mm256_mul_pd(z, z), cp));

    // scalar: s = (q & 1) ? cc : ss; c = (q & 1) ? ss : cc;
    //         sin = (q & 2) ? -s : s; cos = ((q + 1) & 2) ? -c : c.
    const __m256i one = _mm256_set1_epi64x(1);
    const __m256i two = _mm256_set1_epi64x(2);
    const __m256d odd = _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(q, one), one));
    const __m256d s_sel = _mm256_blendv_pd(ss, cc, odd);
    const __m256d c_sel = _mm256_blendv_pd(cc, ss, odd);
    const __m256d s_neg_mask = _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(q, two), two));
    const __m256d c_neg_mask = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
        _mm256_and_si256(_mm256_add_epi64(q, one), two), two));
    sin_out = _mm256_blendv_pd(s_sel, neg_pd(s_sel), s_neg_mask);
    cos_out = _mm256_blendv_pd(c_sel, neg_pd(c_sel), c_neg_mask);
}

/// fast_log lanes: exponent/mantissa split + atanh(f) series.
inline __m256d log_lanes(__m256d x)
{
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d sqrt2 = _mm256_set1_pd(1.41421356237309504880);
    const __m256i bits = _mm256_castpd_si256(x);
    const __m256d raw_m = _mm256_castsi256_pd(_mm256_or_si256(
        _mm256_and_si256(bits, _mm256_set1_epi64x(0xfffffffffffffLL)),
        _mm256_set1_epi64x(0x3ff0000000000000LL)));
    // scalar: fold = raw_m > sqrt2; m = fold ? raw_m * 0.5 : raw_m;
    //         e = raw_e + (fold ? 1 : 0).
    const __m256d fold = _mm256_cmp_pd(raw_m, sqrt2, _CMP_GT_OQ);
    const __m256d m =
        _mm256_blendv_pd(raw_m, _mm256_mul_pd(raw_m, _mm256_set1_pd(0.5)), fold);
    // ed = double(raw_e + fold), built exactly: the biased exponent is an
    // integer in [1, 2046], converted via the 2^52 magic, then the bias
    // and the fold increment (both exact integer adds in double).
    const __m256i biased =
        _mm256_and_si256(_mm256_srli_epi64(bits, 52), _mm256_set1_epi64x(0x7ff));
    const __m256d biased_d = _mm256_sub_pd(
        _mm256_castsi256_pd(
            _mm256_or_si256(biased, _mm256_set1_epi64x(0x4330000000000000LL))),
        _mm256_set1_pd(4503599627370496.0));
    const __m256d ed =
        _mm256_add_pd(_mm256_sub_pd(biased_d, _mm256_set1_pd(1023.0)),
                      _mm256_and_pd(fold, one));
    // scalar: f = (m - 1) / (m + 1); then the 8-term atanh series.
    const __m256d f =
        _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
    const __m256d w = _mm256_mul_pd(f, f);
    const __m256d w2 = _mm256_mul_pd(w, w);
    const __m256d w4 = _mm256_mul_pd(w2, w2);
    const __m256d p0 =
        _mm256_add_pd(one, _mm256_mul_pd(w, _mm256_set1_pd(1.0 / 3.0)));
    const __m256d p1 = _mm256_add_pd(
        _mm256_set1_pd(1.0 / 5.0), _mm256_mul_pd(w, _mm256_set1_pd(1.0 / 7.0)));
    const __m256d p2 = _mm256_add_pd(
        _mm256_set1_pd(1.0 / 9.0), _mm256_mul_pd(w, _mm256_set1_pd(1.0 / 11.0)));
    const __m256d p3 = _mm256_add_pd(
        _mm256_set1_pd(1.0 / 13.0), _mm256_mul_pd(w, _mm256_set1_pd(1.0 / 15.0)));
    // scalar: poly = 2*f*((p0 + p1*w2) + (p2 + p3*w2)*w4).
    const __m256d poly = _mm256_mul_pd(
        _mm256_mul_pd(_mm256_set1_pd(2.0), f),
        _mm256_add_pd(_mm256_add_pd(p0, _mm256_mul_pd(p1, w2)),
                      _mm256_mul_pd(_mm256_add_pd(p2, _mm256_mul_pd(p3, w2)),
                                    w4)));
    // scalar: ed*ln2_hi + (ed*ln2_lo + poly).
    const __m256d ln2_hi = _mm256_set1_pd(6.93147180369123816490e-01);
    const __m256d ln2_lo = _mm256_set1_pd(1.90821492927058770002e-10);
    return _mm256_add_pd(_mm256_mul_pd(ed, ln2_hi),
                         _mm256_add_pd(_mm256_mul_pd(ed, ln2_lo), poly));
}

/// wrap_branchless lanes: angle + (angle <= -pi ? 2pi : 0) - (angle > pi
/// ? 2pi : 0), same add/sub order as the scalar.
inline __m256d wrap_lanes(__m256d angle)
{
    const __m256d pi = _mm256_set1_pd(3.141592653589793238462643383279502884);
    const __m256d two_pi = _mm256_set1_pd(2.0 * 3.141592653589793238462643383279502884);
    const __m256d up =
        _mm256_and_pd(_mm256_cmp_pd(angle, neg_pd(pi), _CMP_LE_OQ), two_pi);
    const __m256d down =
        _mm256_and_pd(_mm256_cmp_pd(angle, pi, _CMP_GT_OQ), two_pi);
    return _mm256_sub_pd(_mm256_add_pd(angle, up), down);
}

// ----------------------------------------------- Counter_normal lanes
// Transcriptions of the noise-grade kernels in util/rng.h.

/// detail::noise_log lanes (5-term atanh series, integer-domain fold).
inline __m256d noise_log_lanes(__m256d x)
{
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d sqrt2 = _mm256_set1_pd(1.41421356237309504880);
    const __m256i bits = _mm256_castpd_si256(x);
    const __m256d raw_m = _mm256_castsi256_pd(_mm256_or_si256(
        _mm256_and_si256(bits, _mm256_set1_epi64x(0xfffffffffffffLL)),
        _mm256_set1_epi64x(0x3ff0000000000000LL)));
    // scalar: fold = uint(raw_m > sqrt2); m = bits(raw_m) - (fold << 52).
    const __m256d fold = _mm256_cmp_pd(raw_m, sqrt2, _CMP_GT_OQ);
    const __m256i fold_bit = _mm256_and_si256(_mm256_castpd_si256(fold),
                                              _mm256_set1_epi64x(1LL << 52));
    const __m256d m = _mm256_castsi256_pd(
        _mm256_sub_epi64(_mm256_castpd_si256(raw_m), fold_bit));
    const __m256i biased =
        _mm256_and_si256(_mm256_srli_epi64(bits, 52), _mm256_set1_epi64x(0x7ff));
    const __m256d biased_d = _mm256_sub_pd(
        _mm256_castsi256_pd(
            _mm256_or_si256(biased, _mm256_set1_epi64x(0x4330000000000000LL))),
        _mm256_set1_pd(4503599627370496.0));
    const __m256d ed =
        _mm256_add_pd(_mm256_sub_pd(biased_d, _mm256_set1_pd(1023.0)),
                      _mm256_and_pd(fold, one));
    const __m256d f =
        _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
    const __m256d w = _mm256_mul_pd(f, f);
    const __m256d w2 = _mm256_mul_pd(w, w);
    // scalar: poly = 2*f*((1 + w/3) + (1/5 + w/7 + w2/9) * w2).
    const __m256d inner = _mm256_add_pd(
        _mm256_add_pd(_mm256_set1_pd(1.0 / 5.0),
                      _mm256_mul_pd(w, _mm256_set1_pd(1.0 / 7.0))),
        _mm256_mul_pd(w2, _mm256_set1_pd(1.0 / 9.0)));
    const __m256d poly = _mm256_mul_pd(
        _mm256_mul_pd(_mm256_set1_pd(2.0), f),
        _mm256_add_pd(
            _mm256_add_pd(one, _mm256_mul_pd(w, _mm256_set1_pd(1.0 / 3.0))),
            _mm256_mul_pd(inner, w2)));
    const __m256d ln2_hi = _mm256_set1_pd(6.93147180369123816490e-01);
    const __m256d ln2_lo = _mm256_set1_pd(1.90821492927058770002e-10);
    return _mm256_add_pd(_mm256_mul_pd(ed, ln2_hi),
                         _mm256_add_pd(_mm256_mul_pd(ed, ln2_lo), poly));
}

/// detail::box_muller_radius lanes: sqrt(-2 ln u1), u1 from the hash word.
inline __m256d box_muller_radius_lanes(__m256i w1)
{
    // scalar: u1 = double((w1 >> 11) + 1) * 2^-53; value ≤ 2^53 so the
    // split convert is exact, matching the scalar int64 convert.
    const __m256i w =
        _mm256_add_epi64(_mm256_srli_epi64(w1, 11), _mm256_set1_epi64x(1));
    const __m256d u1 = _mm256_mul_pd(u64_to_pd_53(w), _mm256_set1_pd(0x1.0p-53));
    return _mm256_sqrt_pd(
        _mm256_mul_pd(_mm256_set1_pd(-2.0), noise_log_lanes(u1)));
}

/// detail::box_muller_angle lanes: exact integer quadrant reduction +
/// the noise-grade 4-term kernels + bit-domain quadrant assembly.
inline void box_muller_angle_lanes(__m256i w2, __m256d& s, __m256d& c)
{
    const __m256i w = _mm256_srli_epi64(w2, 11);
    // scalar: k = int64((w + 2^50) >> 51); rem = int64(w) - (k << 51).
    const __m256i k = _mm256_srli_epi64(
        _mm256_add_epi64(w, _mm256_set1_epi64x(1LL << 50)), 51);
    const __m256i rem = _mm256_sub_epi64(w, _mm256_slli_epi64(k, 51));
    // |rem| ≤ 2^50, so the magic convert is exact like the scalar cast.
    const __m256d r = _mm256_mul_pd(
        i64_to_pd_51(rem),
        _mm256_set1_pd(0x1.0p-51 * 1.57079632679489661923));

    const __m256d z = _mm256_mul_pd(r, r);
    // Noise-grade 4-term kernels, same Horner order as util/rng.h.
    __m256d sp = _mm256_add_pd(
        _mm256_set1_pd(-1.98412698298579493134e-04),
        _mm256_mul_pd(z, _mm256_set1_pd(2.75573137070700676789e-06)));
    sp = _mm256_add_pd(_mm256_set1_pd(8.33333333332248946124e-03),
                       _mm256_mul_pd(z, sp));
    sp = _mm256_add_pd(_mm256_set1_pd(-1.66666666666666324348e-01),
                       _mm256_mul_pd(z, sp));
    const __m256d ss =
        _mm256_add_pd(r, _mm256_mul_pd(_mm256_mul_pd(r, z), sp));
    __m256d cp = _mm256_add_pd(
        _mm256_set1_pd(2.48015872894767294178e-05),
        _mm256_mul_pd(z, _mm256_set1_pd(-2.75573143513906633035e-07)));
    cp = _mm256_add_pd(_mm256_set1_pd(-1.38888888888741095749e-03),
                       _mm256_mul_pd(z, cp));
    cp = _mm256_add_pd(_mm256_set1_pd(4.16666666666666019037e-02),
                       _mm256_mul_pd(z, cp));
    const __m256d cc = _mm256_add_pd(
        _mm256_sub_pd(_mm256_set1_pd(1.0),
                      _mm256_mul_pd(_mm256_set1_pd(0.5), z)),
        _mm256_mul_pd(_mm256_mul_pd(z, z), cp));

    // scalar bit-domain assembly: swap via mask select, sign flips via
    // XOR of (q & 2) << 62 and ((q + 1) & 2) << 62.
    const __m256i q = _mm256_and_si256(k, _mm256_set1_epi64x(3));
    const __m256i one = _mm256_set1_epi64x(1);
    const __m256i swap_mask =
        _mm256_cmpeq_epi64(_mm256_and_si256(q, one), one);
    const __m256i sbits = _mm256_castpd_si256(ss);
    const __m256i cbits = _mm256_castpd_si256(cc);
    __m256i s_sel = _mm256_or_si256(_mm256_andnot_si256(swap_mask, sbits),
                                    _mm256_and_si256(swap_mask, cbits));
    __m256i c_sel = _mm256_or_si256(_mm256_andnot_si256(swap_mask, cbits),
                                    _mm256_and_si256(swap_mask, sbits));
    const __m256i two = _mm256_set1_epi64x(2);
    s_sel = _mm256_xor_si256(
        s_sel, _mm256_slli_epi64(_mm256_and_si256(q, two), 62));
    c_sel = _mm256_xor_si256(
        c_sel,
        _mm256_slli_epi64(_mm256_and_si256(_mm256_add_epi64(q, one), two), 62));
    s = _mm256_castsi256_pd(s_sel);
    c = _mm256_castsi256_pd(c_sel);
}

/// The shared 4-pair Counter_normal step: hash the four counters on both
/// key lanes, Box–Muller, and interleave into (z0, z1) pair order.
/// `a_words`/`b_words` are key + counter·increment for the four lanes.
inline void counter_normal_step(__m256i a_words, __m256i b_words, __m256d& pairs0,
                                __m256d& pairs1)
{
    const __m256i w1 = splitmix64_lanes(a_words);
    const __m256i w2 = splitmix64_lanes(b_words);
    const __m256d radius = box_muller_radius_lanes(w1);
    __m256d s;
    __m256d c;
    box_muller_angle_lanes(w2, s, c);
    // scalar: z0 = radius * c, z1 = radius * s.
    interleave_pd(_mm256_mul_pd(radius, c), _mm256_mul_pd(radius, s), pairs0,
                  pairs1);
}

// Counter word increments (util/rng.h Counter_normal::pair).
constexpr std::uint64_t counter_inc_a = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t counter_inc_b = 0xc2b2ae3d27d4eb4fULL;

inline __m256i lane_counters(std::uint64_t base_word, std::uint64_t inc)
{
    return _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<long long>(base_word)),
        _mm256_set_epi64x(static_cast<long long>(3 * inc),
                          static_cast<long long>(2 * inc),
                          static_cast<long long>(inc), 0));
}

} // namespace

// ------------------------------------------------------- batch kernels

void atan2_batch_avx2(const double* y, const double* x, double* out, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += 4)
        _mm256_storeu_pd(out + i,
                         atan2_lanes(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
}

void sincos_batch_avx2(const double* angles, double* sin_out, double* cos_out,
                       std::size_t n)
{
    for (std::size_t i = 0; i < n; i += 4) {
        __m256d s;
        __m256d c;
        sincos_lanes(_mm256_loadu_pd(angles + i), s, c);
        _mm256_storeu_pd(sin_out + i, s);
        _mm256_storeu_pd(cos_out + i, c);
    }
}

void log_batch_avx2(const double* x, double* out, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += 4)
        _mm256_storeu_pd(out + i, log_lanes(_mm256_loadu_pd(x + i)));
}

void polar_batch_avx2(const double* angles, double magnitude,
                      double* interleaved_out, std::size_t n)
{
    const __m256d mag = _mm256_set1_pd(magnitude);
    for (std::size_t i = 0; i < n; i += 4) {
        __m256d s;
        __m256d c;
        sincos_lanes(_mm256_loadu_pd(angles + i), s, c);
        // scalar: out[2i] = magnitude * c; out[2i+1] = magnitude * s.
        __m256d pair0;
        __m256d pair1;
        interleave_pd(_mm256_mul_pd(mag, c), _mm256_mul_pd(mag, s), pair0, pair1);
        _mm256_storeu_pd(interleaved_out + 2 * i, pair0);
        _mm256_storeu_pd(interleaved_out + 2 * i + 4, pair1);
    }
}

void anc_candidates_batch_avx2(const double* interleaved_samples, std::size_t count,
                               double a, double b, double* theta_plus,
                               double* theta_minus, double* phi_minus,
                               double* phi_plus)
{
    const __m256d av = _mm256_set1_pd(a);
    const __m256d bv = _mm256_set1_pd(b);
    const __m256d a2b2 = _mm256_set1_pd(a * a + b * b);
    const __m256d inv_2ab = _mm256_set1_pd(1.0 / (2.0 * a * b));
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d neg_one = _mm256_set1_pd(-1.0);
    const __m256d zero = _mm256_setzero_pd();
    for (std::size_t i = 0; i < count; i += 4) {
        __m256d re;
        __m256d im;
        deinterleave_pd(interleaved_samples + 2 * i, re, im);
        // scalar: norm = re*re + im*im; d = clamp((norm - a2b2) * inv_2ab).
        const __m256d norm =
            _mm256_add_pd(_mm256_mul_pd(re, re), _mm256_mul_pd(im, im));
        __m256d d = _mm256_mul_pd(_mm256_sub_pd(norm, a2b2), inv_2ab);
        d = _mm256_min_pd(_mm256_max_pd(d, neg_one), one);
        // scalar: root = sqrt(max(1 - d*d, 0)); 1 - d*d ≥ +0 for |d| ≤ 1,
        // so max_pd matches std::max exactly here.
        const __m256d root = _mm256_sqrt_pd(
            _mm256_max_pd(_mm256_sub_pd(one, _mm256_mul_pd(d, d)), zero));
        const __m256d wy = atan2_lanes(im, re);
        const __m256d wt = atan2_lanes(_mm256_mul_pd(bv, root),
                                       _mm256_add_pd(av, _mm256_mul_pd(bv, d)));
        const __m256d wp = atan2_lanes(_mm256_mul_pd(av, root),
                                       _mm256_add_pd(bv, _mm256_mul_pd(av, d)));
        _mm256_storeu_pd(theta_plus + i, wrap_lanes(_mm256_add_pd(wy, wt)));
        _mm256_storeu_pd(theta_minus + i, wrap_lanes(_mm256_sub_pd(wy, wt)));
        _mm256_storeu_pd(phi_minus + i, wrap_lanes(_mm256_sub_pd(wy, wp)));
        _mm256_storeu_pd(phi_plus + i, wrap_lanes(_mm256_add_pd(wy, wp)));
    }
}

void anc_select_batch_avx2(const double* theta_plus, const double* theta_minus,
                           const double* phi_minus, const double* phi_plus,
                           const double* known_diffs, std::size_t transitions,
                           double* phi_out, double* error_out)
{
    for (std::size_t n = 0; n < transitions; n += 4) {
        const __m256d tp0 = _mm256_loadu_pd(theta_plus + n);
        const __m256d tp1 = _mm256_loadu_pd(theta_plus + n + 1);
        const __m256d tm0 = _mm256_loadu_pd(theta_minus + n);
        const __m256d tm1 = _mm256_loadu_pd(theta_minus + n + 1);
        const __m256d pm0 = _mm256_loadu_pd(phi_minus + n);
        const __m256d pm1 = _mm256_loadu_pd(phi_minus + n + 1);
        const __m256d pp0 = _mm256_loadu_pd(phi_plus + n);
        const __m256d pp1 = _mm256_loadu_pd(phi_plus + n + 1);
        const __m256d known = _mm256_loadu_pd(known_diffs + n);
        // scalar: error_of = |wrap(wrap(next - cur) - known)|.
        const auto error_of = [&](__m256d next, __m256d cur) {
            return abs_pd(
                wrap_lanes(_mm256_sub_pd(wrap_lanes(_mm256_sub_pd(next, cur)),
                                         known)));
        };
        const __m256d e00 = error_of(tp1, tp0);
        const __m256d e01 = error_of(tp1, tm0);
        const __m256d e10 = error_of(tm1, tp0);
        const __m256d e11 = error_of(tm1, tm0);
        const __m256d p00 = wrap_lanes(_mm256_sub_pd(pm1, pm0));
        const __m256d p01 = wrap_lanes(_mm256_sub_pd(pm1, pp0));
        const __m256d p10 = wrap_lanes(_mm256_sub_pd(pp1, pm0));
        const __m256d p11 = wrap_lanes(_mm256_sub_pd(pp1, pp0));
        // scalar: strict-< selects, earliest minimum wins ties.
        const __m256d b01 = _mm256_cmp_pd(e01, e00, _CMP_LT_OQ);
        const __m256d ea = _mm256_blendv_pd(e00, e01, b01);
        const __m256d pa = _mm256_blendv_pd(p00, p01, b01);
        const __m256d b11 = _mm256_cmp_pd(e11, e10, _CMP_LT_OQ);
        const __m256d eb = _mm256_blendv_pd(e10, e11, b11);
        const __m256d pb = _mm256_blendv_pd(p10, p11, b11);
        const __m256d bb = _mm256_cmp_pd(eb, ea, _CMP_LT_OQ);
        _mm256_storeu_pd(phi_out + n, _mm256_blendv_pd(pa, pb, bb));
        _mm256_storeu_pd(error_out + n, _mm256_blendv_pd(ea, eb, bb));
    }
}

void diff_arg_batch_avx2(const double* interleaved_samples, std::size_t transitions,
                         double* out)
{
    for (std::size_t n = 0; n < transitions; n += 4) {
        __m256d ar;
        __m256d ai;
        __m256d br;
        __m256d bi;
        deinterleave_pd(interleaved_samples + 2 * n, ar, ai);
        deinterleave_pd(interleaved_samples + 2 * n + 2, br, bi);
        // scalar: im = br * -ai + bi * ar; re = br * ar - bi * -ai.
        const __m256d nai = neg_pd(ai);
        const __m256d im_p =
            _mm256_add_pd(_mm256_mul_pd(br, nai), _mm256_mul_pd(bi, ar));
        const __m256d re_p =
            _mm256_sub_pd(_mm256_mul_pd(br, ar), _mm256_mul_pd(bi, nai));
        _mm256_storeu_pd(out + n, atan2_lanes(im_p, re_p));
    }
}

void counter_normal_fill_avx2(std::uint64_t key_a, std::uint64_t key_b,
                              std::uint64_t first_counter, double* out,
                              std::size_t count)
{
    // Four counters -> four (z0, z1) pairs -> eight output doubles per
    // step.  Counter words advance additively (key + c·inc is linear in
    // c mod 2^64), so each lane's word matches the scalar fill exactly.
    __m256i a_words = lane_counters(key_a + first_counter * counter_inc_a,
                                    counter_inc_a);
    __m256i b_words = lane_counters(key_b + first_counter * counter_inc_b,
                                    counter_inc_b);
    const __m256i step_a = _mm256_set1_epi64x(static_cast<long long>(4 * counter_inc_a));
    const __m256i step_b = _mm256_set1_epi64x(static_cast<long long>(4 * counter_inc_b));
    for (std::size_t i = 0; i < count; i += 8) {
        __m256d pairs0;
        __m256d pairs1;
        counter_normal_step(a_words, b_words, pairs0, pairs1);
        _mm256_storeu_pd(out + i, pairs0);
        _mm256_storeu_pd(out + i + 4, pairs1);
        a_words = _mm256_add_epi64(a_words, step_a);
        b_words = _mm256_add_epi64(b_words, step_b);
    }
}

void counter_normal_add_scaled_avx2(std::uint64_t key_a, std::uint64_t key_b,
                                    std::uint64_t first_counter, double scale,
                                    double* inout, std::size_t count)
{
    __m256i a_words = lane_counters(key_a + first_counter * counter_inc_a,
                                    counter_inc_a);
    __m256i b_words = lane_counters(key_b + first_counter * counter_inc_b,
                                    counter_inc_b);
    const __m256i step_a = _mm256_set1_epi64x(static_cast<long long>(4 * counter_inc_a));
    const __m256i step_b = _mm256_set1_epi64x(static_cast<long long>(4 * counter_inc_b));
    const __m256d scale_v = _mm256_set1_pd(scale);
    for (std::size_t i = 0; i < count; i += 8) {
        __m256d pairs0;
        __m256d pairs1;
        counter_normal_step(a_words, b_words, pairs0, pairs1);
        // scalar: inout[i] += scale * z — multiply then add, no FMA.
        _mm256_storeu_pd(inout + i,
                         _mm256_add_pd(_mm256_loadu_pd(inout + i),
                                       _mm256_mul_pd(scale_v, pairs0)));
        _mm256_storeu_pd(inout + i + 4,
                         _mm256_add_pd(_mm256_loadu_pd(inout + i + 4),
                                       _mm256_mul_pd(scale_v, pairs1)));
        a_words = _mm256_add_epi64(a_words, step_a);
        b_words = _mm256_add_epi64(b_words, step_b);
    }
}

void rotor_accumulate_avx2(const double* interleaved_in, double* interleaved_acc,
                           std::size_t samples, double rotor_re, double rotor_im)
{
    // Scalar form per complex sample (channel/link.cpp):
    //   acc_re += re·rr − im·ri;  acc_im += re·ri + im·rr
    // Vector form over (re, im, re, im) lanes: v·rr plus the pair-swapped
    // vector times (−ri, +ri).  a − b ≡ a + (−b) and im·(−ri) ≡ −(im·ri)
    // exactly, and IEEE addition is commutative, so every lane is
    // bit-identical to the scalar loop (no FMA: mul and add stay
    // separate instructions).
    const __m256d rr = _mm256_set1_pd(rotor_re);
    const __m256d ri_alt = _mm256_setr_pd(-rotor_im, rotor_im, -rotor_im, rotor_im);
    const std::size_t n = 2 * samples; // doubles; samples % 2 == 0
    for (std::size_t i = 0; i < n; i += 4) {
        const __m256d v = _mm256_loadu_pd(interleaved_in + i);
        const __m256d swapped = _mm256_permute_pd(v, 0b0101);
        const __m256d contribution =
            _mm256_add_pd(_mm256_mul_pd(v, rr), _mm256_mul_pd(swapped, ri_alt));
        _mm256_storeu_pd(interleaved_acc + i,
                         _mm256_add_pd(_mm256_loadu_pd(interleaved_acc + i),
                                       contribution));
    }
}

void cmul_accumulate_avx2(const double* interleaved_in,
                          const double* interleaved_rotors,
                          double* interleaved_acc, std::size_t samples)
{
    // Per complex sample: acc_re += re·rr − im·ri; acc_im += re·ri + im·rr
    // with a per-sample rotor.  vaddsubpd computes t1 − t2 on even lanes
    // and t1 + t2 on odd lanes — exactly the scalar sub/add per lane
    // (addition commuted on the odd lanes, which is bitwise-neutral).
    const std::size_t n = 2 * samples; // doubles; samples % 2 == 0
    for (std::size_t i = 0; i < n; i += 4) {
        const __m256d v = _mm256_loadu_pd(interleaved_in + i);
        const __m256d w = _mm256_loadu_pd(interleaved_rotors + i);
        const __m256d w_re = _mm256_movedup_pd(w);         // (rr, rr, ...)
        const __m256d w_im = _mm256_permute_pd(w, 0b1111); // (ri, ri, ...)
        const __m256d swapped = _mm256_permute_pd(v, 0b0101);
        const __m256d contribution = _mm256_addsub_pd(
            _mm256_mul_pd(v, w_re), _mm256_mul_pd(swapped, w_im));
        _mm256_storeu_pd(interleaved_acc + i,
                         _mm256_add_pd(_mm256_loadu_pd(interleaved_acc + i),
                                       contribution));
    }
}

// --------------------------------------- bit-domain pilot-scan kernels
//
// Integer-exact u64 XOR + popcount loops for phy/pilot.cpp.  They live
// in this TU only for the hardware popcnt instruction: baseline x86-64
// predates POPCNT, so std::popcount in a baseline TU compiles to a
// libgcc call per word — an order of magnitude slower than popcntq.
// -mavx2 implies -mpopcnt, and every AVX2/AVX-512 CPU has POPCNT, so
// dispatching on kernels_active() is sufficient.  __builtin_popcountll
// rather than std::popcount keeps <bit> (an inline-template header)
// out of this TU, per the weak-symbol rule above.  Unlike the FP lanes
// there is no rounding to pin down: the scalar fallbacks in pilot.cpp
// produce bit-identical results on any backend.

void pilot_scan_starts_popcnt(const std::uint64_t* words,
                              const std::uint64_t* shifted,
                              const std::uint64_t* masks,
                              std::size_t stride,
                              std::size_t from,
                              std::size_t to,
                              std::size_t max_errors,
                              std::uint64_t* best_key)
{
    for (std::size_t start = from; start <= to; ++start) {
        const std::uint64_t* hay = words + (start >> 6);
        const std::uint64_t* copy = shifted + (start & 63) * stride;
        const std::uint64_t* mask = masks + (start & 63) * stride;
        std::size_t errors = 0;
        for (std::size_t k = 0; k < stride && errors <= max_errors; ++k)
            errors += static_cast<std::size_t>(
                __builtin_popcountll((hay[k] ^ copy[k]) & mask[k]));
        if (errors <= max_errors) {
            const std::uint64_t key =
                (static_cast<std::uint64_t>(errors) << 48) | start;
            if (key < *best_key)
                *best_key = key;
            if (errors == 0)
                break;
        }
    }
}

void pilot_scan_striped_popcnt(const std::uint64_t* words,
                               const std::uint64_t* shifted,
                               const std::uint64_t* masks,
                               std::size_t w_lo,
                               std::size_t w_hi,
                               std::size_t max_errors,
                               std::uint64_t* best_key)
{
    std::uint64_t best = *best_key;
    for (std::size_t s = 0; s < 64; ++s) {
        const std::uint64_t c0 = shifted[2 * s];
        const std::uint64_t c1 = shifted[2 * s + 1];
        const std::uint64_t m0 = masks[2 * s];
        const std::uint64_t m1 = masks[2 * s + 1];
        for (std::size_t w = w_lo; w <= w_hi; ++w) {
            const auto errors = static_cast<std::size_t>(
                                    __builtin_popcountll((words[w] ^ c0) & m0)) +
                                static_cast<std::size_t>(
                                    __builtin_popcountll((words[w + 1] ^ c1) & m1));
            if (errors <= max_errors) {
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(errors) << 48) | (w * 64 + s);
                best = key < best ? key : best;
            }
        }
    }
    *best_key = best;
}

} // namespace anc::simd::detail

#else // non-x86: the dispatchers never take the avx2 branch (CPUID
      // reports no AVX2), but the symbols must exist to link.

#include <cstdlib>

namespace anc::simd::detail {

namespace {
[[noreturn]] void unreachable_backend()
{
    std::abort(); // resolve_backend() forbids avx2 without CPUID support
}
} // namespace

void atan2_batch_avx2(const double*, const double*, double*, std::size_t)
{
    unreachable_backend();
}
void sincos_batch_avx2(const double*, double*, double*, std::size_t)
{
    unreachable_backend();
}
void log_batch_avx2(const double*, double*, std::size_t)
{
    unreachable_backend();
}
void polar_batch_avx2(const double*, double, double*, std::size_t)
{
    unreachable_backend();
}
void anc_candidates_batch_avx2(const double*, std::size_t, double, double, double*,
                               double*, double*, double*)
{
    unreachable_backend();
}
void anc_select_batch_avx2(const double*, const double*, const double*,
                           const double*, const double*, std::size_t, double*,
                           double*)
{
    unreachable_backend();
}
void diff_arg_batch_avx2(const double*, std::size_t, double*)
{
    unreachable_backend();
}
void counter_normal_fill_avx2(std::uint64_t, std::uint64_t, std::uint64_t, double*,
                              std::size_t)
{
    unreachable_backend();
}
void counter_normal_add_scaled_avx2(std::uint64_t, std::uint64_t, std::uint64_t,
                                    double, double*, std::size_t)
{
    unreachable_backend();
}
void rotor_accumulate_avx2(const double*, double*, std::size_t, double, double)
{
    unreachable_backend();
}
void cmul_accumulate_avx2(const double*, const double*, double*, std::size_t)
{
    unreachable_backend();
}
void pilot_scan_starts_popcnt(const std::uint64_t*, const std::uint64_t*,
                              const std::uint64_t*, std::size_t, std::size_t,
                              std::size_t, std::size_t, std::uint64_t*)
{
    unreachable_backend();
}
void pilot_scan_striped_popcnt(const std::uint64_t*, const std::uint64_t*,
                               const std::uint64_t*, std::size_t, std::size_t,
                               std::size_t, std::uint64_t*)
{
    unreachable_backend();
}

} // namespace anc::simd::detail

#endif
