// Decibel conversions.
//
// The paper quotes every operating point in dB (SNR 25-40 dB, detection
// threshold 20 dB, SIR -3..+4 dB), while the signal substrate works in
// linear power.  These helpers are the single place the conversion lives.

#pragma once

#include <cmath>

namespace anc {

/// Linear power ratio -> decibels.
inline double to_db(double linear)
{
    return 10.0 * std::log10(linear);
}

/// Decibels -> linear power ratio.
inline double from_db(double db)
{
    return std::pow(10.0, db / 10.0);
}

/// Amplitude ratio implied by a power ratio in dB (20 dB -> 10x amplitude).
inline double amplitude_from_db(double db)
{
    return std::pow(10.0, db / 20.0);
}

} // namespace anc
