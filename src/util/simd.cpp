#include "util/simd.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numbers>
#include <string_view>

#include "util/cpu_features.h"
#include "util/fastmath.h"

// Dispatchers and the scalar fallback implementations.  This TU is
// compiled at the baseline architecture, so every function here runs on
// any x86-64 (or non-x86) machine; the AVX2 entry points in
// simd_kernels.cpp are only ever reached through the active_backend()
// checks below.
//
// The scalar fallbacks ARE the existing fast kernels, looped — that is
// the "guaranteed scalar fallback" of the dispatch contract, and it is
// what makes Math_profile::simd bit-identical to Math_profile::fast by
// construction (see util/simd.h).

namespace anc::simd {

namespace detail {

namespace {

/// wrap_phase_bounded with branchless control flow — the same kernel the
/// interference decoder's fast path uses (value-identical to
/// wrap_phase_bounded on |angle| <= 2*pi, boundary cases included).
inline double wrap_branchless(double angle)
{
    constexpr double two_pi = 2.0 * std::numbers::pi;
    const double up = angle <= -std::numbers::pi ? two_pi : 0.0;
    const double down = angle > std::numbers::pi ? two_pi : 0.0;
    return angle + up - down;
}

inline double distance_branchless(double a, double b)
{
    return std::abs(wrap_branchless(a - b));
}

} // namespace

void atan2_batch_scalar(const double* y, const double* x, double* out,
                        std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = fast_atan2(y[i], x[i]);
}

void sincos_batch_scalar(const double* angles, double* sin_out, double* cos_out,
                         std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        fast_sincos(angles[i], sin_out[i], cos_out[i]);
}

void log_batch_scalar(const double* x, double* out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = fast_log(x[i]);
}

void polar_batch_scalar(const double* angles, double magnitude,
                        double* interleaved_out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        double s = 0.0;
        double c = 0.0;
        fast_sincos(angles[i], s, c);
        interleaved_out[2 * i] = magnitude * c;
        interleaved_out[2 * i + 1] = magnitude * s;
    }
}

void anc_candidates_batch_scalar(const double* interleaved_samples,
                                 std::size_t count, double a, double b,
                                 double* theta_plus, double* theta_minus,
                                 double* phi_minus, double* phi_plus)
{
    // The fast profile's candidate loop (the decoder's historical fast
    // path, now with this as its single source of truth): the four
    // Eq. 7 candidates factor through arg(y) — with T = A+Bd+iB√ and
    // P = B+Ad+iA√, theta± = arg(y) ± arg(T) and phi∓ = arg(y) ∓ arg(P)
    // (arg of a product is the wrapped sum of args).  Three atan2 per
    // sample instead of four, and arg(T), arg(P) live in [0, π]
    // (√ ≥ 0), so every sum is in (−2π, 2π) — the exact domain of the
    // branch-only wrap.  The iterations are independent and
    // branch-light, so the atan2 calls pipeline across samples.
    const double a2b2 = a * a + b * b;
    const double inv_2ab = 1.0 / (2.0 * a * b);
    for (std::size_t i = 0; i < count; ++i) {
        const double re = interleaved_samples[2 * i];
        const double im = interleaved_samples[2 * i + 1];
        const double norm = re * re + im * im;
        const double d_raw = (norm - a2b2) * inv_2ab;
        const double d = std::clamp(d_raw, -1.0, 1.0);
        const double root = std::sqrt(std::max(1.0 - d * d, 0.0));
        const double wy = fast_atan2(im, re);
        const double wt = fast_atan2(b * root, a + b * d);
        const double wp = fast_atan2(a * root, b + a * d);
        theta_plus[i] = wrap_branchless(wy + wt);
        theta_minus[i] = wrap_branchless(wy - wt);
        phi_minus[i] = wrap_branchless(wy - wp);
        phi_plus[i] = wrap_branchless(wy + wp);
    }
}

void anc_select_batch_scalar(const double* theta_plus, const double* theta_minus,
                             const double* phi_minus, const double* phi_plus,
                             const double* known_diffs, std::size_t transitions,
                             double* phi_out, double* error_out)
{
    const double* tp = theta_plus;
    const double* tm = theta_minus;
    const double* pm = phi_minus;
    const double* pp = phi_plus;
    for (std::size_t n = 0; n < transitions; ++n) {
        const double known = known_diffs[n];
        const auto error_of = [known](double theta_next, double theta_cur) {
            return distance_branchless(wrap_branchless(theta_next - theta_cur),
                                       known);
        };
        // The four candidates in the exact path's iteration order (next
        // 0/1 x cur 0/1), reduced with strict-< so the earliest minimum
        // wins ties exactly as the sequential scan does.
        const double e00 = error_of(tp[n + 1], tp[n]);
        const double e01 = error_of(tp[n + 1], tm[n]);
        const double e10 = error_of(tm[n + 1], tp[n]);
        const double e11 = error_of(tm[n + 1], tm[n]);
        const double p00 = wrap_branchless(pm[n + 1] - pm[n]);
        const double p01 = wrap_branchless(pm[n + 1] - pp[n]);
        const double p10 = wrap_branchless(pp[n + 1] - pm[n]);
        const double p11 = wrap_branchless(pp[n + 1] - pp[n]);
        const bool b01 = e01 < e00;
        const double ea = b01 ? e01 : e00;
        const double pa = b01 ? p01 : p00;
        const bool b11 = e11 < e10;
        const double eb = b11 ? e11 : e10;
        const double pb = b11 ? p11 : p10;
        const bool bb = eb < ea;
        phi_out[n] = bb ? pb : pa;
        error_out[n] = bb ? eb : ea;
    }
}

void diff_arg_batch_scalar(const double* interleaved_samples,
                           std::size_t transitions, double* out)
{
    for (std::size_t n = 0; n < transitions; ++n) {
        const double ar = interleaved_samples[2 * n];
        const double ai = interleaved_samples[2 * n + 1];
        const double br = interleaved_samples[2 * n + 2];
        const double bi = interleaved_samples[2 * n + 3];
        // arg(next * conj(cur)), with the products std::complex
        // multiplication performs.
        out[n] = fast_atan2(br * -ai + bi * ar, br * ar - bi * -ai);
    }
}

void rotor_accumulate_scalar(const double* interleaved_in,
                             double* interleaved_acc, std::size_t samples,
                             double rotor_re, double rotor_im)
{
    // Must match Link_channel's historical constant-rotor loop operation
    // for operation (channel/link.cpp).
    for (std::size_t i = 0; i < samples; ++i) {
        const double re = interleaved_in[2 * i];
        const double im = interleaved_in[2 * i + 1];
        interleaved_acc[2 * i] += re * rotor_re - im * rotor_im;
        interleaved_acc[2 * i + 1] += re * rotor_im + im * rotor_re;
    }
}

void cmul_accumulate_scalar(const double* interleaved_in,
                            const double* interleaved_rotors,
                            double* interleaved_acc, std::size_t samples)
{
    // Per-element arithmetic of the historical drifting-rotor loop
    // (channel/link.cpp), with the rotor read from the cached stream
    // instead of carried through the recurrence.
    for (std::size_t i = 0; i < samples; ++i) {
        const double re = interleaved_in[2 * i];
        const double im = interleaved_in[2 * i + 1];
        const double rr = interleaved_rotors[2 * i];
        const double ri = interleaved_rotors[2 * i + 1];
        interleaved_acc[2 * i] += re * rr - im * ri;
        interleaved_acc[2 * i + 1] += re * ri + im * rr;
    }
}

} // namespace detail

Backend resolve_backend(bool cpu_has_avx2, bool cpu_has_fma, bool cpu_has_avx512f,
                        bool force_scalar, bool force_avx2)
{
    if (force_scalar || !cpu_has_avx2 || !cpu_has_fma)
        return Backend::scalar;
    if (force_avx2 || !cpu_has_avx512f)
        return Backend::avx2;
    return Backend::avx512;
}

namespace {

bool env_flag(const char* name)
{
    const char* env = std::getenv(name);
    return env != nullptr && *env != '\0' && std::string_view{env} != "0";
}

} // namespace

bool force_scalar_from_env() { return env_flag("ANC_FORCE_SCALAR_SIMD"); }

bool force_avx2_from_env() { return env_flag("ANC_FORCE_AVX2_SIMD"); }

Backend active_backend()
{
    // Decided once per run: CPUID does not change under a process, and a
    // stable decision is what makes the simd profile's determinism
    // arguments ("bit-identical at any thread count") trivially hold.
    static const Backend backend = resolve_backend(
        cpu_features().avx2, cpu_features().fma, cpu_features().avx512f,
        force_scalar_from_env(), force_avx2_from_env());
    return backend;
}

bool kernels_active()
{
    return active_backend() != Backend::scalar;
}

// ---------------------------------------------------------- dispatchers
// Full 8-wide (avx512) or 4-wide (avx2) blocks go to the lane TUs;
// tails (and the scalar backend) go to the fallback.  All tiers are
// element-wise identical, so the split point is invisible in the
// output.

namespace {

/// The widest full block the active backend can take: 8-wide for
/// avx512, 4-wide for avx2, none for scalar.
inline std::size_t lane_head(std::size_t n)
{
    switch (active_backend()) {
    case Backend::avx512: return n & ~std::size_t{7};
    case Backend::avx2: return n & ~std::size_t{3};
    case Backend::scalar: break;
    }
    return 0;
}

} // namespace

void atan2_batch(const double* y, const double* x, double* out, std::size_t n)
{
    const std::size_t head = lane_head(n);
    if (head != 0) {
        if (active_backend() == Backend::avx512)
            detail::atan2_batch_avx512(y, x, out, head);
        else
            detail::atan2_batch_avx2(y, x, out, head);
    }
    detail::atan2_batch_scalar(y + head, x + head, out + head, n - head);
}

void sincos_batch(const double* angles, double* sin_out, double* cos_out,
                  std::size_t n)
{
    const std::size_t head = lane_head(n);
    if (head != 0) {
        if (active_backend() == Backend::avx512)
            detail::sincos_batch_avx512(angles, sin_out, cos_out, head);
        else
            detail::sincos_batch_avx2(angles, sin_out, cos_out, head);
    }
    detail::sincos_batch_scalar(angles + head, sin_out + head, cos_out + head,
                                n - head);
}

void log_batch(const double* x, double* out, std::size_t n)
{
    const std::size_t head = lane_head(n);
    if (head != 0) {
        if (active_backend() == Backend::avx512)
            detail::log_batch_avx512(x, out, head);
        else
            detail::log_batch_avx2(x, out, head);
    }
    detail::log_batch_scalar(x + head, out + head, n - head);
}

void polar_batch(const double* angles, double magnitude, double* interleaved_out,
                 std::size_t n)
{
    const std::size_t head = lane_head(n);
    if (head != 0) {
        if (active_backend() == Backend::avx512)
            detail::polar_batch_avx512(angles, magnitude, interleaved_out, head);
        else
            detail::polar_batch_avx2(angles, magnitude, interleaved_out, head);
    }
    detail::polar_batch_scalar(angles + head, magnitude,
                               interleaved_out + 2 * head, n - head);
}

void anc_candidates_batch(const double* interleaved_samples, std::size_t count,
                          double a, double b, double* theta_plus,
                          double* theta_minus, double* phi_minus, double* phi_plus)
{
    const std::size_t head = lane_head(count);
    if (head != 0) {
        if (active_backend() == Backend::avx512)
            detail::anc_candidates_batch_avx512(interleaved_samples, head, a, b,
                                                theta_plus, theta_minus,
                                                phi_minus, phi_plus);
        else
            detail::anc_candidates_batch_avx2(interleaved_samples, head, a, b,
                                              theta_plus, theta_minus, phi_minus,
                                              phi_plus);
    }
    detail::anc_candidates_batch_scalar(interleaved_samples + 2 * head,
                                        count - head, a, b, theta_plus + head,
                                        theta_minus + head, phi_minus + head,
                                        phi_plus + head);
}

void anc_select_batch(const double* theta_plus, const double* theta_minus,
                      const double* phi_minus, const double* phi_plus,
                      const double* known_diffs, std::size_t transitions,
                      double* phi_out, double* error_out)
{
    const std::size_t head = lane_head(transitions);
    if (head != 0) {
        if (active_backend() == Backend::avx512)
            detail::anc_select_batch_avx512(theta_plus, theta_minus, phi_minus,
                                            phi_plus, known_diffs, head, phi_out,
                                            error_out);
        else
            detail::anc_select_batch_avx2(theta_plus, theta_minus, phi_minus,
                                          phi_plus, known_diffs, head, phi_out,
                                          error_out);
    }
    detail::anc_select_batch_scalar(theta_plus + head, theta_minus + head,
                                    phi_minus + head, phi_plus + head,
                                    known_diffs + head, transitions - head,
                                    phi_out + head, error_out + head);
}

void diff_arg_batch(const double* interleaved_samples, std::size_t transitions,
                    double* out)
{
    const std::size_t head = lane_head(transitions);
    if (head != 0) {
        if (active_backend() == Backend::avx512)
            detail::diff_arg_batch_avx512(interleaved_samples, head, out);
        else
            detail::diff_arg_batch_avx2(interleaved_samples, head, out);
    }
    detail::diff_arg_batch_scalar(interleaved_samples + 2 * head,
                                  transitions - head, out + head);
}

void rotor_accumulate(const double* interleaved_in, double* interleaved_acc,
                      std::size_t samples, double rotor_re, double rotor_im)
{
    const std::size_t head = lane_head(samples);
    if (head != 0) {
        if (active_backend() == Backend::avx512)
            detail::rotor_accumulate_avx512(interleaved_in, interleaved_acc, head,
                                            rotor_re, rotor_im);
        else
            detail::rotor_accumulate_avx2(interleaved_in, interleaved_acc, head,
                                          rotor_re, rotor_im);
    }
    detail::rotor_accumulate_scalar(interleaved_in + 2 * head,
                                    interleaved_acc + 2 * head, samples - head,
                                    rotor_re, rotor_im);
}

void cmul_accumulate(const double* interleaved_in, const double* interleaved_rotors,
                     double* interleaved_acc, std::size_t samples)
{
    const std::size_t head = lane_head(samples);
    if (head != 0) {
        if (active_backend() == Backend::avx512)
            detail::cmul_accumulate_avx512(interleaved_in, interleaved_rotors,
                                           interleaved_acc, head);
        else
            detail::cmul_accumulate_avx2(interleaved_in, interleaved_rotors,
                                         interleaved_acc, head);
    }
    detail::cmul_accumulate_scalar(interleaved_in + 2 * head,
                                   interleaved_rotors + 2 * head,
                                   interleaved_acc + 2 * head, samples - head);
}

} // namespace anc::simd
