// Minimal TCP wrappers for the anc.jstream.v1 journal transport
// (engine/jstream.h): a non-blocking connected socket and a
// non-blocking accepting listener, plus the host:port parser the CLIs
// share.
//
// Design rules, inherited from the coordinator's single-threaded poll
// loop (engine/coordinator.cpp):
//   - nothing here ever blocks indefinitely — connects and bulk sends
//     take explicit deadlines, receives only drain what is buffered,
//     accept returns "nothing pending";
//   - a peer dying mid-write must never raise SIGPIPE into the
//     process (MSG_NOSIGNAL on every send, plus ignore_sigpipe() as a
//     belt-and-braces process-wide guard installed by connect/listen);
//   - every syscall loop retries EINTR.
// Errors are values, not exceptions: an invalid socket, a false
// send_all.  Only listener setup throws (a bad --listen port is a
// configuration error the CLI should die loudly on).

#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace anc::util {

/// Process-wide SIG_IGN for SIGPIPE; idempotent, called by socket
/// constructors so no CLI can forget it.  (Sends also pass
/// MSG_NOSIGNAL; this guard covers third-party writes to dead pipes,
/// e.g. a worker's stdout after the coordinator died.)
void ignore_sigpipe();

struct Host_port {
    std::string host;
    std::uint16_t port = 0;
};

/// "host:port" → parts.  False on a missing/empty host, a missing
/// colon, or a port outside [1, 65535].
bool parse_host_port(const std::string& text, Host_port& out);

/// A connected stream socket, non-blocking, move-only; closed by the
/// destructor.  Default-constructed handles are invalid (valid() is
/// false and every operation fails benignly).
class Tcp_socket {
public:
    Tcp_socket() = default;
    /// Adopt an already-open descriptor (from accept); switched to
    /// non-blocking.
    explicit Tcp_socket(int fd);
    ~Tcp_socket();
    Tcp_socket(Tcp_socket&& other) noexcept;
    Tcp_socket& operator=(Tcp_socket&& other) noexcept;
    Tcp_socket(const Tcp_socket&) = delete;
    Tcp_socket& operator=(const Tcp_socket&) = delete;

    /// Blocking-with-deadline connect (non-blocking connect + poll +
    /// SO_ERROR).  Returns an invalid socket on resolution failure,
    /// refusal, or timeout.
    static Tcp_socket connect(const Host_port& peer,
                              std::chrono::milliseconds timeout);

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /// Write the whole buffer, polling through partial writes and
    /// EAGAIN up to the deadline.  False on error or timeout — the
    /// stream position is then indeterminate and the caller must drop
    /// the connection (jstream framing has no mid-stream resync).
    bool send_all(const void* data, std::size_t size,
                  std::chrono::milliseconds timeout);

    enum class Recv_status { data, none, closed, error };

    /// Drain whatever is already buffered (never blocks): appends up
    /// to max_bytes to `into`.  `none` = nothing pending; `closed` =
    /// orderly EOF; `error` = connection reset or failed.
    Recv_status recv_available(std::string& into,
                               std::size_t max_bytes = 1 << 16);

    void close();

private:
    int fd_ = -1;
};

/// A non-blocking accepting socket bound to 127.0.0.1-any (INADDR_ANY)
/// with SO_REUSEADDR, so a restarted coordinator can re-bind its port
/// while old worker connections are still draining.
class Tcp_listener {
public:
    Tcp_listener() = default;
    ~Tcp_listener();
    Tcp_listener(Tcp_listener&& other) noexcept;
    Tcp_listener& operator=(Tcp_listener&& other) noexcept;
    Tcp_listener(const Tcp_listener&) = delete;
    Tcp_listener& operator=(const Tcp_listener&) = delete;

    /// Bind + listen; port 0 asks the kernel for an ephemeral port
    /// (read it back via port()).  Throws std::runtime_error on
    /// failure — a bad listen address is a configuration error.
    static Tcp_listener listen(std::uint16_t port);

    bool valid() const { return fd_ >= 0; }
    /// The bound port (resolves ephemeral port 0 requests).
    std::uint16_t port() const { return port_; }

    /// One pending connection, or an invalid socket when none is
    /// queued.  Never blocks.
    Tcp_socket accept();

    void close();

private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

} // namespace anc::util
