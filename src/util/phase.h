// Phase arithmetic on the circle.
//
// The decoder of §6 compares phase *differences*; all comparisons must be
// done modulo 2*pi with the representative in (-pi, pi], otherwise the
// error metric of Eq. 8 is wrong near the wrap-around.

#pragma once

#include <cmath>
#include <numbers>

namespace anc {

/// Map an angle to its representative in (-pi, pi].
inline double wrap_phase(double angle)
{
    constexpr double two_pi = 2.0 * std::numbers::pi;
    angle = std::fmod(angle, two_pi);
    if (angle > std::numbers::pi)
        angle -= two_pi;
    else if (angle <= -std::numbers::pi)
        angle += two_pi;
    return angle;
}

/// wrap_phase for angles already known to satisfy |angle| <= 2*pi — e.g.
/// the difference of two wrapped phases, or a wrapped phase plus one MSK
/// step.  On that domain fmod(angle, 2*pi) returns `angle` unchanged
/// (fmod is exact and the quotient is 0), so the fold below is
/// bit-identical to wrap_phase while costing a branch instead of an
/// fmod — which matters in the interference decoder's per-sample loop.
/// (The sole deviation: an input of exactly -2*pi, which requires a
/// sample with an exactly-zero imaginary part, yields +0.0 instead of
/// fmod's -0.0 — indistinguishable through every consumer: comparisons,
/// std::abs, and the >= 0 bit decision treat the two zeros alike.)
inline double wrap_phase_bounded(double angle)
{
    constexpr double two_pi = 2.0 * std::numbers::pi;
    if (angle > std::numbers::pi)
        angle -= two_pi;
    else if (angle <= -std::numbers::pi)
        angle += two_pi;
    return angle;
}

/// Circular distance |a - b| after wrapping; always in [0, pi].
inline double phase_distance(double a, double b)
{
    return std::abs(wrap_phase(a - b));
}

/// phase_distance for already-wrapped inputs (|a|, |b| <= pi), via the
/// branch-only fold.
inline double phase_distance_bounded(double a, double b)
{
    return std::abs(wrap_phase_bounded(a - b));
}

} // namespace anc
