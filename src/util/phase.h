// Phase arithmetic on the circle.
//
// The decoder of §6 compares phase *differences*; all comparisons must be
// done modulo 2*pi with the representative in (-pi, pi], otherwise the
// error metric of Eq. 8 is wrong near the wrap-around.

#pragma once

#include <cmath>
#include <numbers>

namespace anc {

/// Map an angle to its representative in (-pi, pi].
inline double wrap_phase(double angle)
{
    constexpr double two_pi = 2.0 * std::numbers::pi;
    angle = std::fmod(angle, two_pi);
    if (angle > std::numbers::pi)
        angle -= two_pi;
    else if (angle <= -std::numbers::pi)
        angle += two_pi;
    return angle;
}

/// Circular distance |a - b| after wrapping; always in [0, pi].
inline double phase_distance(double a, double b)
{
    return std::abs(wrap_phase(a - b));
}

} // namespace anc
