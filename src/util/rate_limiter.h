// A minimum-interval gate for side effects driven by high-frequency
// callbacks.
//
// The executor's on_progress / on_complete hooks fire once per finished
// task (ENGINE.md documents the no-throttle contract), so every consumer
// that does I/O — the anc_sweep TTY progress line, the journal's fsync
// batching — needs the same "at most every T" discipline.  This is that
// pattern, promoted out of bench/anc_sweep so consumers stop
// re-implementing it.
//
// Not thread-safe: callers already serialize the hooks this guards (the
// executor invokes them under an internal mutex).

#pragma once

#include <chrono>

namespace anc {

class Rate_limiter {
public:
    using clock = std::chrono::steady_clock;

    /// Allows one fire per `min_interval` window.  The first ready()
    /// always fires.
    explicit Rate_limiter(clock::duration min_interval)
        : min_interval_{min_interval}
    {
    }

    /// True when at least min_interval has elapsed since the last true
    /// return (which re-arms the window).
    bool ready() { return ready(clock::now()); }

    /// Injectable-time variant, so tests need no sleeps.
    bool ready(clock::time_point now)
    {
        if (fired_ && now - last_ < min_interval_)
            return false;
        fired_ = true;
        last_ = now;
        return true;
    }

    /// Forget the last fire: the next ready() returns true regardless of
    /// elapsed time.  Used for "always do the final one" endings (the
    /// progress line's 100% draw, the journal's close-time fsync).
    void reset() { fired_ = false; }

private:
    clock::duration min_interval_;
    clock::time_point last_{};
    bool fired_ = false;
};

} // namespace anc
