// anc::obs — engine-wide telemetry: per-thread event counters, stage
// timers, and the task-latency histogram behind the anc.metrics.v1 run
// manifest (OBSERVABILITY.md is the catalog and schema reference).
//
// Design rules, in order of precedence:
//
//   1. *Neutrality.*  Telemetry must never perturb results.  Counters
//      and timers touch no floating-point state and no RNG stream; the
//      instrumented sites do exactly the work they did before, plus an
//      integer increment on a thread-local struct.  The engine's
//      telemetry-regression tests compare emitted sweep JSON bytes with
//      collection on and off, at several thread counts, per profile.
//
//   2. *Allocation-free.*  Every accumulator is a fixed-size struct
//      (arrays indexed by enum), bound per worker thread exactly like
//      dsp::Workspace: the executor owns one Recorder per worker and
//      Binds it for the thread's lifetime.  Recording is a pointer test
//      plus an array increment — no maps, no strings, no heap.
//
//   3. *Deterministic merge.*  Per-task counter snapshots live in the
//      task's own result slot, so merging them in task-index order
//      yields totals that are bit-identical at any thread count (the
//      same contract as the result vector itself).  Wall-clock values
//      are genuinely nondeterministic — they are reported, never merged
//      into anything a result depends on.
//
// When no Recorder is bound (the default everywhere outside an
// instrumented run), every obs:: call is a branch on a thread-local
// pointer and nothing else — the hot path stays unperturbed.

#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace anc::obs {

// ------------------------------------------------------------- counters

/// The fixed event-counter catalog.  Every counter is a plain uint64
/// accumulated per task; OBSERVABILITY.md documents each site's meaning.
/// Append new counters at the end (the array layout is not a wire
/// format, but tests enumerate by index).
enum class Counter : std::size_t {
    // phy::Packet_detector — energy detection (§7.1).
    packet_detect_triggers,   ///< detect() found packet bounds
    packet_detect_rejections, ///< detect() saw nothing above threshold
    // chan::Medium — per-link AGC detection-threshold decisions.
    agc_lookups,   ///< detection_threshold_db() queries
    agc_overrides, ///< ... that resolved to a per-link AGC override
    // phy::Interference_detector — excess-variance collision detection.
    interference_analyses, ///< analyze() calls
    interference_detected, ///< ... that reported a collision
    // phy::find_pattern — pilot search (§7.2).
    pilot_searches,       ///< find_pattern() calls
    pilot_hits,           ///< ... that found a match
    pilot_misses,         ///< ... that found none
    pilot_hit_offset_sum, ///< sum of matched start positions (mean = /hits)
    pilot_hit_error_sum,  ///< sum of Hamming errors at the matches
    // phy::parse_frame_at — payload CRC verdicts.
    crc_pass,
    crc_fail,
    // fec:: — Hamming(7,4) decode corrections.
    fec_codewords,      ///< codewords decoded
    fec_corrected_bits, ///< nonzero syndromes (one corrected bit each)
    // Interference_decoder — Eq. 7/8 candidate selection.
    decode_calls,             ///< decode_into() invocations
    decode_selected_samples,  ///< transitions resolved by Eq. 8 selection
    decode_tail_samples,      ///< transitions past the known signal (differential)
    // Anc_receiver — receive() outcomes (Algorithm 1).
    rx_no_packet,
    rx_clean,
    rx_decoded_interference,
    rx_forward_candidate,
    rx_failed,
    // Anc_receiver — where failed interference decodes gave up.
    rx_fail_no_known_header,
    rx_fail_no_overlap,
    rx_fail_no_amplitudes,
    rx_fail_no_unknown_pilot,
    rx_fail_bad_unknown_frame,
    // phy::find_pattern — degenerate calls (empty pattern, or a haystack
    // shorter than the pattern).  Kept out of pilot_searches and the
    // pilot_search stage timer so the manifest's per-search cost is not
    // skewed by calls that never scanned anything.
    pilot_degenerate,
    count, ///< sentinel
};

inline constexpr std::size_t counter_count = static_cast<std::size_t>(Counter::count);

/// Stable snake_case name of a counter (JSON keys of the manifest).
const char* to_string(Counter counter);

/// A full counter set: plain array, mergeable, zeroed by default.
struct Counters {
    std::array<std::uint64_t, counter_count> values{};

    std::uint64_t& operator[](Counter id) { return values[static_cast<std::size_t>(id)]; }
    std::uint64_t operator[](Counter id) const
    {
        return values[static_cast<std::size_t>(id)];
    }

    void merge(const Counters& other)
    {
        for (std::size_t i = 0; i < counter_count; ++i)
            values[i] += other.values[i];
    }

    bool operator==(const Counters&) const = default;
};

// --------------------------------------------------------- stage timers

/// Pipeline stages with a wall-clock accumulator.  A stage is a code
/// region, not a call graph: nested regions each charge their own stage.
enum class Stage : std::size_t {
    modulate,             ///< phy::Modem modulate paths
    channel,              ///< chan::Medium::receive_into (mix + AWGN)
    packet_detect,        ///< phy::Packet_detector::detect
    interference_analyze, ///< phy::Interference_detector::analyze
    demodulate,           ///< MSK hard-decision demodulation
    pilot_search,         ///< phy::find_pattern scans
    amplitude_estimate,   ///< §6.2 amplitude estimation block
    interference_decode,  ///< Interference_decoder::decode_into
    fec_decode,           ///< fec::Fec_codec::decode
    count, ///< sentinel
};

inline constexpr std::size_t stage_count = static_cast<std::size_t>(Stage::count);

const char* to_string(Stage stage);

/// Per-stage accumulated wall time and call counts.
struct Stage_times {
    std::array<std::uint64_t, stage_count> ns{};
    std::array<std::uint64_t, stage_count> calls{};

    void add(Stage stage, std::uint64_t elapsed_ns)
    {
        ns[static_cast<std::size_t>(stage)] += elapsed_ns;
        ++calls[static_cast<std::size_t>(stage)];
    }

    void merge(const Stage_times& other)
    {
        for (std::size_t i = 0; i < stage_count; ++i) {
            ns[i] += other.ns[i];
            calls[i] += other.calls[i];
        }
    }
};

// ------------------------------------------------------------ histogram

/// Fixed log-spaced task-latency histogram: bin b spans
/// [2^(10+b), 2^(11+b)) ns — bin 0 is "up to 2 µs" (it also absorbs
/// anything under 1 µs), the last bin is the open-ended overflow.  A
/// plain array: no allocation, trivially mergeable.
struct Latency_histogram {
    static constexpr std::size_t bin_count = 32;
    std::array<std::uint64_t, bin_count> counts{};

    static std::size_t bin_for(std::uint64_t ns)
    {
        if (ns < 1024)
            return 0;
        const std::size_t bin = static_cast<std::size_t>(std::bit_width(ns)) - 11;
        return bin < bin_count ? bin : bin_count - 1;
    }

    /// Inclusive lower bound of a bin in ns (bin 0 reports 0).
    static std::uint64_t bin_floor_ns(std::size_t bin)
    {
        return bin == 0 ? 0 : std::uint64_t{1} << (10 + bin);
    }

    void add(std::uint64_t ns) { ++counts[bin_for(ns)]; }

    void merge(const Latency_histogram& other)
    {
        for (std::size_t i = 0; i < bin_count; ++i)
            counts[i] += other.counts[i];
    }

    std::uint64_t total() const
    {
        std::uint64_t sum = 0;
        for (const std::uint64_t c : counts)
            sum += c;
        return sum;
    }
};

// ------------------------------------------------------------- recorder

/// One task's telemetry: the counter deltas and stage times accumulated
/// while the task ran, plus the executor's scheduling measurements.
/// Counters and stage call counts are deterministic in (config, seed);
/// the ns fields are wall-clock observations.
struct Task_telemetry {
    Counters counters;
    Stage_times stages;
    std::uint64_t wall_ns = 0;  ///< scenario run() wall time
    std::uint64_t queue_ns = 0; ///< sweep start -> task start (queue wait)
    std::uint32_t worker = 0;   ///< worker index that ran the task
};

/// Per-worker rollup (utilization = busy_ns / sweep wall time).
struct Worker_stats {
    std::uint64_t busy_ns = 0;
    std::uint64_t tasks = 0;
};

/// The merged telemetry of one sweep, produced by the executor after the
/// workers join: per-task records merged in task-index order, so the
/// counter totals are thread-count invariant.
struct Sweep_telemetry {
    std::size_t threads = 0;     ///< resolved worker count
    std::uint64_t tasks = 0;
    std::uint64_t wall_ns = 0;   ///< whole-sweep wall time
    Counters counters;           ///< merged by task index
    Stage_times stages;          ///< merged by task index
    Latency_histogram latency;   ///< per-task wall times
    std::vector<Worker_stats> workers; ///< indexed by worker id
};

/// The per-thread telemetry sink.  Ownership mirrors dsp::Workspace: the
/// executor owns one Recorder per worker and Binds it for the worker's
/// lifetime; standalone drivers and tests may Bind one around a direct
/// sim run.  Unbound threads record nothing.
class Recorder {
public:
    Recorder() = default;
    Recorder(const Recorder&) = delete;
    Recorder& operator=(const Recorder&) = delete;

    /// The recorder bound to this thread, or nullptr (telemetry off).
    static Recorder* current();

    /// Scoped thread binding (nested binds restore the previous one).
    class Bind {
    public:
        explicit Bind(Recorder& recorder);
        Bind(const Bind&) = delete;
        Bind& operator=(const Bind&) = delete;
        ~Bind();

    private:
        Recorder* previous_;
    };

    /// Zero the task-scoped accumulators (the executor calls this before
    /// each scenario run).
    void begin_task()
    {
        task_.counters = Counters{};
        task_.stages = Stage_times{};
    }

    /// The accumulators of the task in flight.
    Task_telemetry& task() { return task_; }
    const Task_telemetry& task() const { return task_; }

private:
    Task_telemetry task_;
};

/// True when this thread is recording telemetry.
inline bool enabled() { return Recorder::current() != nullptr; }

/// Count an event (no-op when no recorder is bound).
inline void count(Counter id, std::uint64_t n = 1)
{
    if (Recorder* recorder = Recorder::current())
        recorder->task().counters[id] += n;
}

/// RAII stage-region timer.  Reads the clock only when a recorder is
/// bound, so disabled runs pay one thread-local load per region.
class Stage_timer {
public:
    explicit Stage_timer(Stage stage)
        : recorder_{Recorder::current()}, stage_{stage}
    {
        if (recorder_)
            start_ = std::chrono::steady_clock::now();
    }
    Stage_timer(const Stage_timer&) = delete;
    Stage_timer& operator=(const Stage_timer&) = delete;
    ~Stage_timer()
    {
        if (recorder_) {
            const auto elapsed = std::chrono::steady_clock::now() - start_;
            recorder_->task().stages.add(
                stage_, static_cast<std::uint64_t>(
                            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                                .count()));
        }
    }

private:
    Recorder* recorder_;
    Stage stage_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace anc::obs
