#include "util/obs.h"

namespace anc::obs {

namespace {

// The thread's bound recorder.  Unlike dsp::Workspace there is no
// fallback default: an unbound thread means telemetry is off, and every
// obs:: helper must stay a no-op so uninstrumented runs are unperturbed.
thread_local Recorder* t_bound = nullptr;

} // namespace

const char* to_string(Counter counter)
{
    switch (counter) {
    case Counter::packet_detect_triggers: return "packet_detect_triggers";
    case Counter::packet_detect_rejections: return "packet_detect_rejections";
    case Counter::agc_lookups: return "agc_lookups";
    case Counter::agc_overrides: return "agc_overrides";
    case Counter::interference_analyses: return "interference_analyses";
    case Counter::interference_detected: return "interference_detected";
    case Counter::pilot_searches: return "pilot_searches";
    case Counter::pilot_hits: return "pilot_hits";
    case Counter::pilot_misses: return "pilot_misses";
    case Counter::pilot_hit_offset_sum: return "pilot_hit_offset_sum";
    case Counter::pilot_hit_error_sum: return "pilot_hit_error_sum";
    case Counter::crc_pass: return "crc_pass";
    case Counter::crc_fail: return "crc_fail";
    case Counter::fec_codewords: return "fec_codewords";
    case Counter::fec_corrected_bits: return "fec_corrected_bits";
    case Counter::decode_calls: return "decode_calls";
    case Counter::decode_selected_samples: return "decode_selected_samples";
    case Counter::decode_tail_samples: return "decode_tail_samples";
    case Counter::rx_no_packet: return "rx_no_packet";
    case Counter::rx_clean: return "rx_clean";
    case Counter::rx_decoded_interference: return "rx_decoded_interference";
    case Counter::rx_forward_candidate: return "rx_forward_candidate";
    case Counter::rx_failed: return "rx_failed";
    case Counter::rx_fail_no_known_header: return "rx_fail_no_known_header";
    case Counter::rx_fail_no_overlap: return "rx_fail_no_overlap";
    case Counter::rx_fail_no_amplitudes: return "rx_fail_no_amplitudes";
    case Counter::rx_fail_no_unknown_pilot: return "rx_fail_no_unknown_pilot";
    case Counter::rx_fail_bad_unknown_frame: return "rx_fail_bad_unknown_frame";
    case Counter::pilot_degenerate: return "pilot_degenerate";
    case Counter::count: break;
    }
    return "unknown";
}

const char* to_string(Stage stage)
{
    switch (stage) {
    case Stage::modulate: return "modulate";
    case Stage::channel: return "channel";
    case Stage::packet_detect: return "packet_detect";
    case Stage::interference_analyze: return "interference_analyze";
    case Stage::demodulate: return "demodulate";
    case Stage::pilot_search: return "pilot_search";
    case Stage::amplitude_estimate: return "amplitude_estimate";
    case Stage::interference_decode: return "interference_decode";
    case Stage::fec_decode: return "fec_decode";
    case Stage::count: break;
    }
    return "unknown";
}

Recorder* Recorder::current() { return t_bound; }

Recorder::Bind::Bind(Recorder& recorder) : previous_{t_bound} { t_bound = &recorder; }

Recorder::Bind::~Bind() { t_bound = previous_; }

} // namespace anc::obs
