#include "util/cpu_features.h"

#include <cstdint>

// Guarded on __x86_64__ exactly like the kernel TU (simd_kernels.cpp):
// cpu_features() answers "can THIS BINARY use the AVX2 backend", not
// "does the silicon have it" — a 32-bit x86 build has only the stub
// kernels, so reporting the CPU's AVX2 flag there would dispatch into
// them.  Everything else (non-x86, i386) reports no features and the
// scalar fallback serves.
#if defined(__x86_64__)
#include <cpuid.h>
#endif

namespace anc {

namespace {

#if defined(__x86_64__)

/// XGETBV(0) without the <immintrin.h> intrinsic — _xgetbv needs the
/// -mxsave target, and this TU stays at the baseline ISA.  Only called
/// after CPUID reports OSXSAVE, which guarantees the instruction exists.
std::uint64_t read_xcr0()
{
    std::uint32_t eax = 0;
    std::uint32_t edx = 0;
    __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0u));
    return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

Cpu_features probe()
{
    Cpu_features features;

    unsigned eax = 0;
    unsigned ebx = 0;
    unsigned ecx = 0;
    unsigned edx = 0;
    if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0)
        return features;

    const bool osxsave = (ecx & (1u << 27)) != 0;
    const bool avx_flag = (ecx & (1u << 28)) != 0;
    const bool fma_flag = (ecx & (1u << 12)) != 0;

    // XGETBV(0) reports which register states the OS restores.  Bits 1|2
    // = XMM+YMM (AVX usable); bits 5..7 add the AVX-512 opmask/ZMM state.
    std::uint64_t xcr0 = 0;
    if (osxsave)
        xcr0 = read_xcr0();
    const bool os_ymm = osxsave && (xcr0 & 0x6u) == 0x6u;
    const bool os_zmm = osxsave && (xcr0 & 0xe6u) == 0xe6u;

    features.avx = avx_flag && os_ymm;
    features.fma = fma_flag && os_ymm;

    unsigned max_leaf = __get_cpuid_max(0, nullptr);
    if (max_leaf >= 7) {
        unsigned ebx7 = 0;
        unsigned ecx7 = 0;
        unsigned edx7 = 0;
        unsigned eax7 = 0;
        __get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7);
        features.avx2 = features.avx && (ebx7 & (1u << 5)) != 0;
        features.avx512f = os_zmm && (ebx7 & (1u << 16)) != 0;
    }
    return features;
}

#else

Cpu_features probe()
{
    return {}; // no AVX2 backend in this binary; the scalar fallback serves
}

#endif

} // namespace

const Cpu_features& cpu_features()
{
    static const Cpu_features features = probe();
    return features;
}

} // namespace anc
