#include "util/subprocess.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/net.h"

namespace anc::util {

namespace {

/// waitpid with the EINTR retry every reaping path needs: the
/// coordinator handles SIGINT/SIGTERM, and a signal landing mid-reap
/// must not make a live child look unreapable (or a blocking wait
/// spuriously fail).
pid_t waitpid_retry(pid_t pid, int* status, int flags)
{
    pid_t got;
    do {
        got = ::waitpid(pid, status, flags);
    } while (got < 0 && errno == EINTR);
    return got;
}

/// Signal the child's whole process group, falling back to the child
/// alone if the group is gone.  Workers are launched through wrappers
/// (/bin/sh -c, ssh) whose descendants must not outlive a SIGKILL —
/// an orphaned grandchild keeps inherited pipes/ports open and makes
/// a killed worker look half-alive to everything downstream.
void kill_tree(pid_t pid, int signum)
{
    if (::kill(-pid, signum) != 0)
        ::kill(pid, signum);
}

/// Open `path` for appending and dup2 it onto `target_fd`; called in
/// the child between fork and exec, so failures must not throw — they
/// _exit(127) after a best-effort message.
void redirect_or_die(const std::string& path, int target_fd)
{
    if (path.empty())
        return;
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0 || ::dup2(fd, target_fd) < 0) {
        std::fprintf(stderr, "subprocess: cannot redirect to %s\n", path.c_str());
        ::_exit(127);
    }
    if (fd != target_fd)
        ::close(fd);
}

} // namespace

Subprocess Subprocess::spawn(const std::vector<std::string>& argv,
                             const Spawn_options& options)
{
    if (argv.empty())
        throw std::runtime_error{"Subprocess::spawn: empty argv"};

    // A worker dying mid-pipe must never SIGPIPE the supervisor; the
    // guard is process-wide and idempotent, and spawn() is the one
    // choke point every supervisor passes through.
    ignore_sigpipe();

    // execvp wants a mutable char* array; build it before the fork so
    // the child does no allocation between fork and exec.
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& arg : argv)
        cargv.push_back(const_cast<char*>(arg.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0)
        throw std::runtime_error{"Subprocess::spawn: fork failed"};
    if (pid == 0) {
        // Own process group, so kill() can reach every descendant the
        // command spawns (sh -c wrappers, ssh transports).
        ::setpgid(0, 0);
        redirect_or_die(options.stdout_path, STDOUT_FILENO);
        redirect_or_die(options.stderr_path, STDERR_FILENO);
        ::execvp(cargv[0], cargv.data());
        // exec only returns on failure; 127 is the shell's "command not
        // found / not runnable" convention the caller can distinguish.
        std::fprintf(stderr, "subprocess: cannot exec %s\n", cargv[0]);
        ::_exit(127);
    }

    // Mirror the child's setpgid here too: whichever side runs first
    // establishes the group, so a kill() issued immediately after
    // spawn() still reaches the whole tree (EACCES after exec means
    // the child already did it — fine).
    ::setpgid(pid, pid);

    Subprocess child;
    child.pid_ = pid;
    return child;
}

Subprocess::~Subprocess()
{
    if (running()) {
        kill_tree(pid_, SIGKILL);
        int status = 0;
        waitpid_retry(pid_, &status, 0);
    }
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_{other.pid_}, reaped_{other.reaped_}, raw_status_{other.raw_status_}
{
    other.pid_ = -1;
    other.reaped_ = false;
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept
{
    if (this != &other) {
        if (running()) {
            kill_tree(pid_, SIGKILL);
            int status = 0;
            waitpid_retry(pid_, &status, 0);
        }
        pid_ = other.pid_;
        reaped_ = other.reaped_;
        raw_status_ = other.raw_status_;
        other.pid_ = -1;
        other.reaped_ = false;
    }
    return *this;
}

bool Subprocess::try_wait()
{
    if (reaped_)
        return true;
    if (pid_ <= 0)
        return false;
    int status = 0;
    const pid_t got = waitpid_retry(pid_, &status, WNOHANG);
    if (got == pid_) {
        raw_status_ = status;
        reaped_ = true;
    }
    return reaped_;
}

int Subprocess::wait()
{
    if (!reaped_) {
        if (pid_ <= 0)
            throw std::runtime_error{"Subprocess::wait: no child"};
        int status = 0;
        if (waitpid_retry(pid_, &status, 0) != pid_)
            throw std::runtime_error{"Subprocess::wait: waitpid failed"};
        raw_status_ = status;
        reaped_ = true;
    }
    return exit_code();
}

bool Subprocess::wait_for(std::chrono::milliseconds timeout)
{
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!try_wait()) {
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds{5});
    }
    return true;
}

void Subprocess::kill(int signum) const
{
    if (running())
        kill_tree(pid_, signum);
}

void Subprocess::detach()
{
    pid_ = -1;
    reaped_ = false;
}

bool Subprocess::exited() const
{
    return reaped_ && WIFEXITED(raw_status_);
}

int Subprocess::exit_code() const
{
    if (!reaped_)
        return -1;
    if (WIFEXITED(raw_status_))
        return WEXITSTATUS(raw_status_);
    if (WIFSIGNALED(raw_status_))
        return 128 + WTERMSIG(raw_status_);
    return -1;
}

bool Subprocess::signalled() const
{
    return reaped_ && WIFSIGNALED(raw_status_);
}

int Subprocess::term_signal() const
{
    return signalled() ? WTERMSIG(raw_status_) : 0;
}

} // namespace anc::util
