#include "util/bits.h"

#include <algorithm>
#include <stdexcept>

namespace anc {

std::vector<std::uint8_t> pack_bits(std::span<const std::uint8_t> bits)
{
    if (bits.size() % 8 != 0)
        throw std::invalid_argument{"pack_bits: bit count must be a multiple of 8"};
    std::vector<std::uint8_t> bytes(bits.size() / 8, 0);
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i])
            bytes[i / 8] |= static_cast<std::uint8_t>(1u << (7 - i % 8));
    }
    return bytes;
}

Bits unpack_bytes(std::span<const std::uint8_t> bytes)
{
    Bits bits;
    bits.reserve(bytes.size() * 8);
    for (const std::uint8_t byte : bytes) {
        for (int bit = 7; bit >= 0; --bit)
            bits.push_back((byte >> bit) & 1u);
    }
    return bits;
}

void append_uint(Bits& bits, std::uint64_t value, int width)
{
    if (width < 0 || width > 64)
        throw std::invalid_argument{"append_uint: width out of range"};
    for (int bit = width - 1; bit >= 0; --bit)
        bits.push_back(static_cast<std::uint8_t>((value >> bit) & 1u));
}

std::uint64_t read_uint(std::span<const std::uint8_t> bits, std::size_t offset, int width)
{
    if (width < 0 || width > 64 || offset + static_cast<std::size_t>(width) > bits.size())
        throw std::out_of_range{"read_uint: request exceeds bit sequence"};
    std::uint64_t value = 0;
    for (int i = 0; i < width; ++i)
        value = (value << 1u) | bits[offset + static_cast<std::size_t>(i)];
    return value;
}

Bits xor_bits(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b)
{
    if (a.size() != b.size())
        throw std::invalid_argument{"xor_bits: length mismatch"};
    Bits out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] ^ b[i];
    return out;
}

std::size_t hamming_distance(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b)
{
    const std::size_t common = std::min(a.size(), b.size());
    std::size_t distance = std::max(a.size(), b.size()) - common;
    for (std::size_t i = 0; i < common; ++i) {
        if (a[i] != b[i])
            ++distance;
    }
    return distance;
}

double bit_error_rate(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b)
{
    const std::size_t denom = std::max(a.size(), b.size());
    if (denom == 0)
        return 0.0;
    return static_cast<double>(hamming_distance(a, b)) / static_cast<double>(denom);
}

Bits random_bits(std::size_t count, Pcg32& rng)
{
    Bits bits(count);
    for (auto& bit : bits)
        bit = static_cast<std::uint8_t>(rng.next_u32() & 1u);
    return bits;
}

Bits mirrored(std::span<const std::uint8_t> bits)
{
    return Bits{bits.rbegin(), bits.rend()};
}

std::string to_string(std::span<const std::uint8_t> bits)
{
    std::string text;
    text.reserve(bits.size());
    for (const std::uint8_t bit : bits)
        text.push_back(bit ? '1' : '0');
    return text;
}

} // namespace anc
