#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/simd.h"

namespace anc {

namespace {

constexpr std::uint64_t mult = 6364136223846793005ULL;

} // namespace

Counter_normal::Counter_normal(std::uint64_t seed, std::uint64_t stream)
    : key_a_{splitmix64(mix_seed(seed, stream) + 0x6a09e667f3bcc909ULL)},
      key_b_{splitmix64(mix_seed(seed, stream) ^ 0xbb67ae8584caa73bULL)}
{
    // Both lanes mix (seed, stream) together: if only one lane saw the
    // stream, two streams sharing a seed would share that lane's hash
    // words — i.e. identical Box-Muller radii (correlated magnitudes).
}

void Counter_normal::fill_simd(std::uint64_t first_counter, double* out,
                               std::size_t count) const
{
    // Full 8-pair (16-normal, avx512) or 4-pair (8-normal, avx2) blocks
    // go to the lane kernels; the remainder — and the whole span when
    // the backend resolved to scalar — goes to fill(), which is
    // element-wise identical (draws are pure in (key, counter), so the
    // seam carries no state).
    std::size_t head = 0;
    if (simd::active_backend() == simd::Backend::avx512) {
        head = count & ~std::size_t{15};
        simd::detail::counter_normal_fill_avx512(key_a_, key_b_, first_counter,
                                                 out, head);
    } else if (simd::kernels_active()) {
        head = count & ~std::size_t{7};
        simd::detail::counter_normal_fill_avx2(key_a_, key_b_, first_counter, out,
                                               head);
    }
    fill(first_counter + head / 2, out + head, count - head);
}

void Counter_normal::add_scaled_simd(std::uint64_t first_counter, double scale,
                                     double* inout, std::size_t count) const
{
    std::size_t head = 0;
    if (simd::active_backend() == simd::Backend::avx512) {
        head = count & ~std::size_t{15};
        simd::detail::counter_normal_add_scaled_avx512(key_a_, key_b_,
                                                       first_counter, scale,
                                                       inout, head);
    } else if (simd::kernels_active()) {
        head = count & ~std::size_t{7};
        simd::detail::counter_normal_add_scaled_avx2(key_a_, key_b_, first_counter,
                                                     scale, inout, head);
    }
    add_scaled(first_counter + head / 2, scale, inout + head, count - head);
}

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_{0}, inc_{(stream << 1u) | 1u}
{
    next_u32();
    state_ += seed;
    next_u32();
}

std::uint32_t Pcg32::next_u32()
{
    const std::uint64_t old = state_;
    state_ = old * mult + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Pcg32::next_u64()
{
    const std::uint64_t hi = next_u32();
    const std::uint64_t lo = next_u32();
    return (hi << 32u) | lo;
}

double Pcg32::next_double()
{
    // 53 random bits mapped to [0,1): the standard 64-bit-to-double recipe.
    return static_cast<double>(next_u64() >> 11u) * 0x1.0p-53;
}

std::uint32_t Pcg32::next_in_range(std::uint32_t lo, std::uint32_t hi)
{
    const std::uint32_t span = hi - lo + 1u;
    if (span == 0u)       // lo==0, hi==UINT32_MAX: whole range
        return next_u32();
    // Lemire-style rejection: discard draws from the biased tail.
    const std::uint32_t limit = (0u - span) % span;
    for (;;) {
        const std::uint32_t draw = next_u32();
        if (draw >= limit)
            return lo + draw % span;
    }
}

double Pcg32::next_gaussian()
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    // Box-Muller on two uniforms; u1 is kept away from zero so log() is safe.
    double u1 = 0.0;
    do {
        u1 = next_double();
    } while (u1 <= 1e-300);
    const double u2 = next_double();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_gaussian_ = radius * std::sin(angle);
    has_cached_gaussian_ = true;
    return radius * std::cos(angle);
}

bool Pcg32::next_bernoulli(double p)
{
    return next_double() < p;
}

Pcg32 Pcg32::fork(std::uint64_t salt)
{
    const std::uint64_t seed = next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL);
    const std::uint64_t stream = next_u64() + salt;
    return Pcg32{seed, stream};
}

} // namespace anc
