// The explicit SIMD kernel backend behind dsp::Math_profile::simd.
//
// Design contract — *bit-compatibility with the scalar fast kernels*:
// every batch kernel here computes, per element, exactly the arithmetic
// of its scalar counterpart in util/fastmath.h / util/rng.h (same
// operations, same order, no FMA contraction in the value chains), just
// four lanes at a time.  IEEE-754 arithmetic is deterministic, so the
// AVX2 lanes, the scalar fallback, and the plain `fast` profile all
// produce byte-identical values.  That one invariant buys the whole
// validation story:
//
//   * `simd` inherits every statistical corridor already proven for
//     `fast` (the emitted metrics are bit-identical, only the tag and
//     the throughput differ);
//   * dispatch is *safe to decide per run*: a run on an AVX2 box, a run
//     under ANC_FORCE_SCALAR_SIMD=1, and a run on a machine without
//     AVX2 emit byte-identical documents;
//   * the lane-vs-scalar tests (tests/util/simd_kernels_test.cpp) can
//     assert exact equality — the strongest possible ULP bound (0).
//
// Dispatch model: `active_backend()` is decided once per process from
// anc::cpu_features() (AVX2 and FMA both required; AVX-512F upgrades to
// the 8-wide lanes) and two environment overrides: ANC_FORCE_SCALAR_SIMD
// (any non-empty value other than "0" forces the scalar fallback) and
// ANC_FORCE_AVX2_SIMD (same rule; caps the backend at avx2 on AVX-512
// hardware).  The overrides keep every tier continuously tested on the
// widest hardware, in CI and locally; force-scalar wins when both are
// set.  The batch entry points below branch on the decision internally;
// `Math_profile::simd` is therefore valid configuration everywhere and
// merely resolves to the best implementation available.
//
// The AVX2 implementations live in src/util/simd_kernels.cpp, the only
// translation unit compiled with -mavx2 -mfma (and -ffp-contract=off,
// so the compiler cannot fuse the mul/add chains the bit-compatibility
// contract pins down).  The AVX-512 implementations live in
// src/util/simd_kernels_avx512.cpp under the same one-TU rule
// (-mavx512f -ffp-contract=off) and transcribe the AVX2 lanes operation
// for operation at twice the width, so all three tiers stay 0-ULP
// identical.  Nothing in either TU is reachable without passing through
// the dispatchers in simd.cpp.

#pragma once

#include <cstddef>
#include <cstdint>

namespace anc::simd {

/// Which implementation the batch kernels resolve to this run.
enum class Backend {
    scalar, ///< the existing fast kernels, looped — guaranteed everywhere
    avx2,   ///< explicit AVX2+FMA lanes (4 doubles wide)
    avx512, ///< the same lanes at AVX-512F width (8 doubles wide)
};

inline const char* to_string(Backend backend)
{
    switch (backend) {
    case Backend::avx512: return "avx512";
    case Backend::avx2: return "avx2";
    case Backend::scalar: break;
    }
    return "scalar";
}

/// The pure dispatch rule: scalar when forced or when the CPU lacks
/// AVX2+FMA (the avx2 TU is compiled with -mavx2 -mfma); avx512 when the
/// CPU additionally reports AVX-512F and no cap is in force; avx2
/// otherwise.  Force-scalar beats force-avx2.  Exposed separately from
/// active_backend() so the decision logic is unit-testable without
/// faking CPUID or the environment.
Backend resolve_backend(bool cpu_has_avx2, bool cpu_has_fma, bool cpu_has_avx512f,
                        bool force_scalar, bool force_avx2);

/// True when ANC_FORCE_SCALAR_SIMD is set to a non-empty value other
/// than "0" in this process's environment.
bool force_scalar_from_env();

/// True when ANC_FORCE_AVX2_SIMD is set to a non-empty value other than
/// "0" in this process's environment (caps avx512 hardware at avx2).
bool force_avx2_from_env();

/// The backend every batch kernel below uses, decided once per run
/// (first call) from cpu_features(), ANC_FORCE_SCALAR_SIMD, and
/// ANC_FORCE_AVX2_SIMD.
Backend active_backend();

/// active_backend() != Backend::scalar — some lane kernel TU is in use.
bool kernels_active();

// ------------------------------------------------------------- kernels
// All kernels accept any n; the lane paths handle the full 8-wide
// (avx512) or 4-wide (avx2) blocks and hand the tail to the scalar
// fallback (which is element-wise identical, so the seam is invisible
// in the output).

/// out[i] = fast_atan2(y[i], x[i]).
void atan2_batch(const double* y, const double* x, double* out, std::size_t n);

/// (sin_out[i], cos_out[i]) = fast_sincos(angles[i]).  Same domain note
/// as fast_sincos: |angle| ≲ 1e6.
void sincos_batch(const double* angles, double* sin_out, double* cos_out,
                  std::size_t n);

/// out[i] = fast_log(x[i]); positive normal doubles only (fast_log's
/// documented domain).
void log_batch(const double* x, double* out, std::size_t n);

/// interleaved_out[2i] = magnitude·cos(angles[i]),
/// interleaved_out[2i+1] = magnitude·sin(angles[i]) — the batched
/// profile_polar the DQPSK modulator and rotor setup use.
void polar_batch(const double* angles, double magnitude, double* interleaved_out,
                 std::size_t n);

/// The Eq. 7 candidate generation of the interference decoder, SoA: for
/// each interleaved complex sample y, emit the four wrapped candidate
/// phases (theta+, theta-, phi-, phi+) into split arrays.  Element-wise
/// identical to the fast profile's candidate loop
/// (core/interference_decoder.cpp).
void anc_candidates_batch(const double* interleaved_samples, std::size_t count,
                          double a, double b, double* theta_plus,
                          double* theta_minus, double* phi_minus,
                          double* phi_plus);

/// The Eq. 8 branchless candidate selection over the split arrays: for
/// transition n (0-based), pick among the four (theta, phi) difference
/// candidates the one whose theta step best matches known_diffs[n], with
/// the exact iteration-order tie-break of the sequential scan.  Writes
/// phi_out[n] and error_out[n] for n in [0, transitions).
void anc_select_batch(const double* theta_plus, const double* theta_minus,
                      const double* phi_minus, const double* phi_plus,
                      const double* known_diffs, std::size_t transitions,
                      double* phi_out, double* error_out);

/// Differential demodulation over the unknown region: out[n] =
/// fast_atan2 of y[n+1]·conj(y[n]) for n in [0, transitions), reading
/// interleaved samples [0, transitions].
void diff_arg_batch(const double* interleaved_samples, std::size_t transitions,
                    double* out);

/// The drift-free channel accumulate (Link_channel's constant-rotor
/// path) over interleaved complex buffers:
///   acc[2i]   += in[2i]·re − in[2i+1]·im
///   acc[2i+1] += in[2i]·im + in[2i+1]·re     for i in [0, samples).
/// Element-wise independent mul/add with no FMA contraction, so the
/// lane tiers are bit-identical to the scalar loop.
void rotor_accumulate(const double* interleaved_in, double* interleaved_acc,
                      std::size_t samples, double rotor_re, double rotor_im);

/// The drifting-channel accumulate over a precomputed rotor stream
/// (Link_channel caches rotor_n = rotor_0·step^n per fixed-gain link, so
/// the serial recurrence runs once per link instead of per transmission):
///   acc[2i]   += in[2i]·rot[2i] − in[2i+1]·rot[2i+1]
///   acc[2i+1] += in[2i]·rot[2i+1] + in[2i+1]·rot[2i]
/// i.e. element-wise complex multiply-accumulate, bit-identical across
/// tiers (mul/sub/add per element, no FMA, no reassociation).
void cmul_accumulate(const double* interleaved_in, const double* interleaved_rotors,
                     double* interleaved_acc, std::size_t samples);

namespace detail {

// Per-backend entry points, exposed so the tests can compare the
// implementations directly on the same machine.  The *_avx2 functions
// live in the -mavx2 -mfma translation unit and must only be called
// when cpu_features() reports avx2 && fma; the *_avx512 functions live
// in the -mavx512f translation unit and must only be called when
// cpu_features() reports avx512f too.  Each additionally requires the
// stated block alignment of n (the dispatchers feed tails to the
// scalar path).

void atan2_batch_scalar(const double* y, const double* x, double* out,
                        std::size_t n);
void sincos_batch_scalar(const double* angles, double* sin_out, double* cos_out,
                         std::size_t n);
void log_batch_scalar(const double* x, double* out, std::size_t n);
void polar_batch_scalar(const double* angles, double magnitude,
                        double* interleaved_out, std::size_t n);
void anc_candidates_batch_scalar(const double* interleaved_samples,
                                 std::size_t count, double a, double b,
                                 double* theta_plus, double* theta_minus,
                                 double* phi_minus, double* phi_plus);
void anc_select_batch_scalar(const double* theta_plus, const double* theta_minus,
                             const double* phi_minus, const double* phi_plus,
                             const double* known_diffs, std::size_t transitions,
                             double* phi_out, double* error_out);
void diff_arg_batch_scalar(const double* interleaved_samples,
                           std::size_t transitions, double* out);
void rotor_accumulate_scalar(const double* interleaved_in,
                             double* interleaved_acc, std::size_t samples,
                             double rotor_re, double rotor_im);
void cmul_accumulate_scalar(const double* interleaved_in,
                            const double* interleaved_rotors,
                            double* interleaved_acc, std::size_t samples);

// n % 4 == 0 for all of these.
void atan2_batch_avx2(const double* y, const double* x, double* out, std::size_t n);
void sincos_batch_avx2(const double* angles, double* sin_out, double* cos_out,
                       std::size_t n);
void log_batch_avx2(const double* x, double* out, std::size_t n);
void polar_batch_avx2(const double* angles, double magnitude,
                      double* interleaved_out, std::size_t n);
void anc_candidates_batch_avx2(const double* interleaved_samples, std::size_t count,
                               double a, double b, double* theta_plus,
                               double* theta_minus, double* phi_minus,
                               double* phi_plus);
void anc_select_batch_avx2(const double* theta_plus, const double* theta_minus,
                           const double* phi_minus, const double* phi_plus,
                           const double* known_diffs, std::size_t transitions,
                           double* phi_out, double* error_out);
void diff_arg_batch_avx2(const double* interleaved_samples, std::size_t transitions,
                         double* out);

/// Counter_normal's batched Box–Muller: 4 counter pairs (8 normals) per
/// step, bit-identical to Counter_normal::fill at the same counters.
/// count % 8 == 0; the dispatcher (util/rng.cpp) handles tails.
void counter_normal_fill_avx2(std::uint64_t key_a, std::uint64_t key_b,
                              std::uint64_t first_counter, double* out,
                              std::size_t count);
/// Fused inout[i] += scale·z_i over the same z stream; count % 8 == 0.
void counter_normal_add_scaled_avx2(std::uint64_t key_a, std::uint64_t key_b,
                                    std::uint64_t first_counter, double scale,
                                    double* inout, std::size_t count);
/// samples % 2 == 0 (2 interleaved complex per 256-bit vector).
void rotor_accumulate_avx2(const double* interleaved_in, double* interleaved_acc,
                           std::size_t samples, double rotor_re, double rotor_im);
/// samples % 2 == 0.
void cmul_accumulate_avx2(const double* interleaved_in,
                          const double* interleaved_rotors,
                          double* interleaved_acc, std::size_t samples);

// n % 8 == 0 for all of these (8 doubles per 512-bit vector).
void atan2_batch_avx512(const double* y, const double* x, double* out,
                        std::size_t n);
void sincos_batch_avx512(const double* angles, double* sin_out, double* cos_out,
                         std::size_t n);
void log_batch_avx512(const double* x, double* out, std::size_t n);
void polar_batch_avx512(const double* angles, double magnitude,
                        double* interleaved_out, std::size_t n);
void anc_candidates_batch_avx512(const double* interleaved_samples,
                                 std::size_t count, double a, double b,
                                 double* theta_plus, double* theta_minus,
                                 double* phi_minus, double* phi_plus);
void anc_select_batch_avx512(const double* theta_plus, const double* theta_minus,
                             const double* phi_minus, const double* phi_plus,
                             const double* known_diffs, std::size_t transitions,
                             double* phi_out, double* error_out);
void diff_arg_batch_avx512(const double* interleaved_samples,
                           std::size_t transitions, double* out);

/// 8 counter pairs (16 normals) per step, same z stream as the scalar
/// generator.  count % 16 == 0; the dispatcher handles tails.
void counter_normal_fill_avx512(std::uint64_t key_a, std::uint64_t key_b,
                                std::uint64_t first_counter, double* out,
                                std::size_t count);
/// Fused inout[i] += scale·z_i over the same z stream; count % 16 == 0.
void counter_normal_add_scaled_avx512(std::uint64_t key_a, std::uint64_t key_b,
                                      std::uint64_t first_counter, double scale,
                                      double* inout, std::size_t count);
/// samples % 4 == 0 (4 interleaved complex per 512-bit vector).
void rotor_accumulate_avx512(const double* interleaved_in,
                             double* interleaved_acc, std::size_t samples,
                             double rotor_re, double rotor_im);
/// samples % 4 == 0.
void cmul_accumulate_avx512(const double* interleaved_in,
                            const double* interleaved_rotors,
                            double* interleaved_acc, std::size_t samples);

// Bit-domain pilot-scan kernels (phy/pilot.cpp).  Integer-exact u64
// XOR + popcount loops that live in the AVX2 TU solely for the hardware
// popcnt instruction (baseline x86-64 predates POPCNT and compiles
// std::popcount to a libgcc call).  Guard calls with kernels_active():
// every AVX2-capable CPU has POPCNT.  Results are bit-identical to the
// scalar fallbacks — dispatch here is a pure speed decision.
// best_key accumulates min((errors << 48) | start); see pilot.cpp.
void pilot_scan_starts_popcnt(const std::uint64_t* words,
                              const std::uint64_t* shifted,
                              const std::uint64_t* masks, std::size_t stride,
                              std::size_t from, std::size_t to,
                              std::size_t max_errors, std::uint64_t* best_key);
/// Stride-2 stripe-major variant over word-aligned starts
/// [64*w_lo, 64*w_hi + 63]; shifted/masks are the 64x2 tables.
void pilot_scan_striped_popcnt(const std::uint64_t* words,
                               const std::uint64_t* shifted,
                               const std::uint64_t* masks, std::size_t w_lo,
                               std::size_t w_hi, std::size_t max_errors,
                               std::uint64_t* best_key);

} // namespace detail

} // namespace anc::simd
