// The explicit SIMD kernel backend behind dsp::Math_profile::simd.
//
// Design contract — *bit-compatibility with the scalar fast kernels*:
// every batch kernel here computes, per element, exactly the arithmetic
// of its scalar counterpart in util/fastmath.h / util/rng.h (same
// operations, same order, no FMA contraction in the value chains), just
// four lanes at a time.  IEEE-754 arithmetic is deterministic, so the
// AVX2 lanes, the scalar fallback, and the plain `fast` profile all
// produce byte-identical values.  That one invariant buys the whole
// validation story:
//
//   * `simd` inherits every statistical corridor already proven for
//     `fast` (the emitted metrics are bit-identical, only the tag and
//     the throughput differ);
//   * dispatch is *safe to decide per run*: a run on an AVX2 box, a run
//     under ANC_FORCE_SCALAR_SIMD=1, and a run on a machine without
//     AVX2 emit byte-identical documents;
//   * the lane-vs-scalar tests (tests/util/simd_kernels_test.cpp) can
//     assert exact equality — the strongest possible ULP bound (0).
//
// Dispatch model: `active_backend()` is decided once per process from
// anc::cpu_features() (AVX2 and FMA both required) and the
// ANC_FORCE_SCALAR_SIMD environment variable (any non-empty value other
// than "0" forces the scalar fallback — that keeps the fallback path
// continuously tested on AVX2 hardware, in CI and locally).  The batch
// entry points below branch on it internally; `Math_profile::simd` is
// therefore valid configuration everywhere and merely resolves to the
// best implementation available.
//
// The AVX2 implementations live in src/util/simd_kernels.cpp, the only
// translation unit compiled with -mavx2 -mfma (and -ffp-contract=off,
// so the compiler cannot fuse the mul/add chains the bit-compatibility
// contract pins down).  Nothing in that TU is reachable without passing
// through the dispatchers in simd.cpp.

#pragma once

#include <cstddef>
#include <cstdint>

namespace anc::simd {

/// Which implementation the batch kernels resolve to this run.
enum class Backend {
    scalar, ///< the existing fast kernels, looped — guaranteed everywhere
    avx2,   ///< explicit AVX2+FMA lanes (4 doubles wide)
};

inline const char* to_string(Backend backend)
{
    return backend == Backend::avx2 ? "avx2" : "scalar";
}

/// The pure dispatch rule: AVX2 needs both the AVX2 and FMA CPUID flags
/// (the kernel TU is compiled with -mavx2 -mfma) and no force-scalar
/// override.  Exposed separately from active_backend() so the decision
/// logic is unit-testable without faking CPUID or the environment.
Backend resolve_backend(bool cpu_has_avx2, bool cpu_has_fma, bool force_scalar);

/// True when ANC_FORCE_SCALAR_SIMD is set to a non-empty value other
/// than "0" in this process's environment.
bool force_scalar_from_env();

/// The backend every batch kernel below uses, decided once per run
/// (first call) from cpu_features() and ANC_FORCE_SCALAR_SIMD.
Backend active_backend();

/// active_backend() == Backend::avx2.
bool kernels_active();

// ------------------------------------------------------------- kernels
// All kernels accept any n; the AVX2 path handles the full 4-wide
// blocks and hands the tail to the scalar fallback (which is
// element-wise identical, so the seam is invisible in the output).

/// out[i] = fast_atan2(y[i], x[i]).
void atan2_batch(const double* y, const double* x, double* out, std::size_t n);

/// (sin_out[i], cos_out[i]) = fast_sincos(angles[i]).  Same domain note
/// as fast_sincos: |angle| ≲ 1e6.
void sincos_batch(const double* angles, double* sin_out, double* cos_out,
                  std::size_t n);

/// out[i] = fast_log(x[i]); positive normal doubles only (fast_log's
/// documented domain).
void log_batch(const double* x, double* out, std::size_t n);

/// interleaved_out[2i] = magnitude·cos(angles[i]),
/// interleaved_out[2i+1] = magnitude·sin(angles[i]) — the batched
/// profile_polar the DQPSK modulator and rotor setup use.
void polar_batch(const double* angles, double magnitude, double* interleaved_out,
                 std::size_t n);

/// The Eq. 7 candidate generation of the interference decoder, SoA: for
/// each interleaved complex sample y, emit the four wrapped candidate
/// phases (theta+, theta-, phi-, phi+) into split arrays.  Element-wise
/// identical to the fast profile's candidate loop
/// (core/interference_decoder.cpp).
void anc_candidates_batch(const double* interleaved_samples, std::size_t count,
                          double a, double b, double* theta_plus,
                          double* theta_minus, double* phi_minus,
                          double* phi_plus);

/// The Eq. 8 branchless candidate selection over the split arrays: for
/// transition n (0-based), pick among the four (theta, phi) difference
/// candidates the one whose theta step best matches known_diffs[n], with
/// the exact iteration-order tie-break of the sequential scan.  Writes
/// phi_out[n] and error_out[n] for n in [0, transitions).
void anc_select_batch(const double* theta_plus, const double* theta_minus,
                      const double* phi_minus, const double* phi_plus,
                      const double* known_diffs, std::size_t transitions,
                      double* phi_out, double* error_out);

/// Differential demodulation over the unknown region: out[n] =
/// fast_atan2 of y[n+1]·conj(y[n]) for n in [0, transitions), reading
/// interleaved samples [0, transitions].
void diff_arg_batch(const double* interleaved_samples, std::size_t transitions,
                    double* out);

namespace detail {

// Per-backend entry points, exposed so the tests can compare the two
// implementations directly on the same machine.  The *_avx2 functions
// live in the -mavx2 -mfma translation unit and must only be called
// when cpu_features() reports avx2 && fma; they additionally require
// the stated block alignment of n (the dispatchers feed tails to the
// scalar path).

void atan2_batch_scalar(const double* y, const double* x, double* out,
                        std::size_t n);
void sincos_batch_scalar(const double* angles, double* sin_out, double* cos_out,
                         std::size_t n);
void log_batch_scalar(const double* x, double* out, std::size_t n);
void polar_batch_scalar(const double* angles, double magnitude,
                        double* interleaved_out, std::size_t n);
void anc_candidates_batch_scalar(const double* interleaved_samples,
                                 std::size_t count, double a, double b,
                                 double* theta_plus, double* theta_minus,
                                 double* phi_minus, double* phi_plus);
void anc_select_batch_scalar(const double* theta_plus, const double* theta_minus,
                             const double* phi_minus, const double* phi_plus,
                             const double* known_diffs, std::size_t transitions,
                             double* phi_out, double* error_out);
void diff_arg_batch_scalar(const double* interleaved_samples,
                           std::size_t transitions, double* out);

// n % 4 == 0 for all of these.
void atan2_batch_avx2(const double* y, const double* x, double* out, std::size_t n);
void sincos_batch_avx2(const double* angles, double* sin_out, double* cos_out,
                       std::size_t n);
void log_batch_avx2(const double* x, double* out, std::size_t n);
void polar_batch_avx2(const double* angles, double magnitude,
                      double* interleaved_out, std::size_t n);
void anc_candidates_batch_avx2(const double* interleaved_samples, std::size_t count,
                               double a, double b, double* theta_plus,
                               double* theta_minus, double* phi_minus,
                               double* phi_plus);
void anc_select_batch_avx2(const double* theta_plus, const double* theta_minus,
                           const double* phi_minus, const double* phi_plus,
                           const double* known_diffs, std::size_t transitions,
                           double* phi_out, double* error_out);
void diff_arg_batch_avx2(const double* interleaved_samples, std::size_t transitions,
                         double* out);

/// Counter_normal's batched Box–Muller: 4 counter pairs (8 normals) per
/// step, bit-identical to Counter_normal::fill at the same counters.
/// count % 8 == 0; the dispatcher (util/rng.cpp) handles tails.
void counter_normal_fill_avx2(std::uint64_t key_a, std::uint64_t key_b,
                              std::uint64_t first_counter, double* out,
                              std::size_t count);
/// Fused inout[i] += scale·z_i over the same z stream; count % 8 == 0.
void counter_normal_add_scaled_avx2(std::uint64_t key_a, std::uint64_t key_b,
                                    std::uint64_t first_counter, double scale,
                                    double* inout, std::size_t count);

} // namespace detail

} // namespace anc::simd
