// Bit-sequence utilities.
//
// Frames, pilots, headers, and payloads are all sequences of bits.  We
// represent a bit sequence as std::vector<std::uint8_t> with one bit per
// element (value 0 or 1).  That costs 8x the memory of a packed
// representation but makes every algorithm in the PHY and the decoder
// (alignment searches, mirroring, per-bit comparison) direct and
// index-stable, which matters far more here than footprint.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace anc {

using Bits = std::vector<std::uint8_t>;

/// Pack bits (MSB-first within each byte) into bytes.  The bit count must
/// be a multiple of 8.
std::vector<std::uint8_t> pack_bits(std::span<const std::uint8_t> bits);

/// Unpack bytes into bits, MSB-first.
Bits unpack_bytes(std::span<const std::uint8_t> bytes);

/// Append an unsigned value MSB-first as `width` bits.
void append_uint(Bits& bits, std::uint64_t value, int width);

/// Read `width` bits MSB-first starting at `offset`.  The caller must
/// ensure offset + width is in range.
std::uint64_t read_uint(std::span<const std::uint8_t> bits, std::size_t offset, int width);

/// Element-wise XOR; the spans must have equal length.
Bits xor_bits(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

/// Number of positions where the two sequences differ, compared over the
/// shorter length, plus the length difference (a missing bit is an error).
std::size_t hamming_distance(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

/// Fraction of differing bits over max(len(a), len(b)); 0 for two empty
/// sequences.
double bit_error_rate(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

/// `count` random bits from `rng`.
Bits random_bits(std::size_t count, Pcg32& rng);

/// The sequence reversed.  A frame carries a mirrored pilot/header at its
/// end so that a receiver scanning the samples backwards (§7.4) sees them
/// in forward order.
Bits mirrored(std::span<const std::uint8_t> bits);

/// "0"/"1" rendering for diagnostics.
std::string to_string(std::span<const std::uint8_t> bits);

} // namespace anc
