// Streaming statistics and empirical CDFs.
//
// Every figure in the paper's evaluation is a CDF (Figs. 9, 10, 12) or a
// curve of means (Fig. 13), so the metrics layer needs numerically stable
// accumulation and percentile queries.

#pragma once

#include <cstddef>
#include <vector>

namespace anc {

/// Welford-style running mean/variance plus min/max.
class Running_stats {
public:
    void add(double x);

    std::size_t count() const { return count_; }
    double mean() const { return mean_; }
    /// Population variance (n divisor); 0 when fewer than 2 samples.
    double variance() const;
    /// Unbiased sample variance (n-1 divisor); 0 when fewer than 2 samples.
    double sample_variance() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Empirical distribution over a batch of samples.
class Cdf {
public:
    void add(double x);
    void add_all(const std::vector<double>& xs);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /// Value at cumulative fraction q in [0,1] (inclusive interpolation of
    /// order statistics).  Requires at least one sample.
    double quantile(double q) const;

    /// Fraction of samples <= x.
    double fraction_at_or_below(double x) const;

    double mean() const;
    double min() const;
    double max() const;

    /// (value, cumulative fraction) pairs at `points` evenly spaced
    /// fractions, suitable for printing a CDF like the paper's figures.
    std::vector<std::pair<double, double>> curve(std::size_t points = 21) const;

    const std::vector<double>& sorted_samples() const;

    /// The samples in their CURRENT stored order, without the lazy-sort
    /// side effect of sorted_samples().  Mean() and merge() accumulate
    /// in stored order, so exact replay (the sweep journal) must
    /// serialize and reconstruct this order, not the sorted one.
    const std::vector<double>& stored_samples() const { return samples_; }

private:
    void ensure_sorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

} // namespace anc
