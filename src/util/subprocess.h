// Child-process supervision: spawn (fork/exec), poll, kill, reap.
//
// The coordinator layer (engine/coordinator.h) dispatches `anc_sweep`
// workers as OS processes and must detect crashes, kill stalled
// workers, and never leak zombies — this is the minimal primitive set
// for that, kept deliberately synchronous: every operation is a direct
// syscall wrapper, and liveness polling happens in the caller's loop
// (the coordinator's poll cycle), not in hidden threads.
//
// Ownership model: a Subprocess owns exactly one child.  It is move-only;
// the destructor of a still-running child SIGKILLs and reaps it, so a
// throwing supervisor cannot strand workers (detach() opts out).  After
// the child has been reaped (try_wait()/wait()/wait_for() returned
// true), the exit disposition is readable via exited()/exit_code()/
// signalled()/term_signal().

#pragma once

#include <chrono>
#include <string>
#include <vector>

#include <sys/types.h>

namespace anc::util {

/// Optional stdio redirection for spawn().  Empty paths inherit the
/// parent's descriptors.  Files are opened O_CREAT|O_APPEND (0644), so
/// several attempts of the same worker can share one log.
struct Spawn_options {
    std::string stdout_path;
    std::string stderr_path;
};

class Subprocess {
public:
    /// An empty handle (no child).  running() is false, kill/wait no-ops.
    Subprocess() = default;

    /// fork + execvp.  argv[0] is the program (PATH-resolved).  Throws
    /// std::runtime_error when argv is empty or fork/redirection setup
    /// fails; an exec failure inside the child surfaces as exit code 127
    /// (the shell convention), not an exception.
    static Subprocess spawn(const std::vector<std::string>& argv,
                            const Spawn_options& options = {});

    /// SIGKILL + reap when the child is still running (supervisors must
    /// not leak zombies on unwind).  detach() opts out.
    ~Subprocess();

    Subprocess(Subprocess&& other) noexcept;
    Subprocess& operator=(Subprocess&& other) noexcept;
    Subprocess(const Subprocess&) = delete;
    Subprocess& operator=(const Subprocess&) = delete;

    pid_t pid() const { return pid_; }

    /// True while a child exists and has not been reaped.
    bool running() const { return pid_ > 0 && !reaped_; }

    /// Non-blocking reap (waitpid WNOHANG).  True once the child has
    /// exited and its status is recorded; false while it is still
    /// running.  Safe to call repeatedly after the reap.
    bool try_wait();

    /// Blocking reap; returns exit_code().  Throws std::runtime_error if
    /// there is no child to wait for.
    int wait();

    /// Poll-based bounded wait (try_wait every ~5 ms).  True when the
    /// child exited within the timeout.
    bool wait_for(std::chrono::milliseconds timeout);

    /// Send a signal (default SIGKILL).  No-op after the reap or on an
    /// empty handle.
    void kill(int signum = 9) const;

    /// Forget the child without killing it (it keeps running; init
    /// reaps it).  The handle becomes empty.
    void detach();

    // ---- exit disposition (valid once try_wait/wait returned true) ----
    /// The child called exit()/_exit() (as opposed to dying on a signal).
    bool exited() const;
    /// Normal exit: the exit status.  Signalled: 128 + signal number
    /// (the shell convention), so a single int orders all outcomes.
    int exit_code() const;
    bool signalled() const;
    int term_signal() const;

private:
    pid_t pid_ = -1;
    bool reaped_ = false;
    int raw_status_ = 0;
};

} // namespace anc::util
