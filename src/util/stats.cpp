#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace anc {

void Running_stats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double Running_stats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double Running_stats::sample_variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double Running_stats::stddev() const
{
    return std::sqrt(variance());
}

void Cdf::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

void Cdf::add_all(const std::vector<double>& xs)
{
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    sorted_ = false;
}

void Cdf::ensure_sorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double Cdf::quantile(double q) const
{
    if (samples_.empty())
        throw std::logic_error{"Cdf::quantile on empty distribution"};
    ensure_sorted();
    q = std::clamp(q, 0.0, 1.0);
    const double position = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(position);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = position - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Cdf::fraction_at_or_below(double x) const
{
    if (samples_.empty())
        return 0.0;
    ensure_sorted();
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double Cdf::mean() const
{
    if (samples_.empty())
        return 0.0;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0)
        / static_cast<double>(samples_.size());
}

double Cdf::min() const
{
    if (samples_.empty())
        throw std::logic_error{"Cdf::min on empty distribution"};
    ensure_sorted();
    return samples_.front();
}

double Cdf::max() const
{
    if (samples_.empty())
        throw std::logic_error{"Cdf::max on empty distribution"};
    ensure_sorted();
    return samples_.back();
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t points) const
{
    std::vector<std::pair<double, double>> out;
    if (samples_.empty() || points < 2)
        return out;
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double q = static_cast<double>(i) / static_cast<double>(points - 1);
        out.emplace_back(quantile(q), q);
    }
    return out;
}

const std::vector<double>& Cdf::sorted_samples() const
{
    ensure_sorted();
    return samples_;
}

} // namespace anc
