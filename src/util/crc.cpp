#include "util/crc.h"

namespace anc {

std::uint32_t crc32(std::span<const std::uint8_t> bits)
{
    // Bitwise reflected CRC-32 (poly 0xedb88320).  Operating bit-by-bit is
    // plenty fast for header/payload sizes here and avoids a table.
    std::uint32_t crc = 0xffffffffu;
    for (const std::uint8_t bit : bits) {
        crc ^= static_cast<std::uint32_t>(bit & 1u);
        crc = (crc >> 1u) ^ (0xedb88320u & (0u - (crc & 1u)));
    }
    return ~crc;
}

std::uint16_t crc16(std::span<const std::uint8_t> bits)
{
    std::uint16_t crc = 0xffffu;
    for (const std::uint8_t bit : bits) {
        const bool msb = (crc & 0x8000u) != 0;
        crc = static_cast<std::uint16_t>(crc << 1u);
        if (msb != ((bit & 1u) != 0))
            crc ^= 0x1021u;
    }
    return crc;
}

} // namespace anc
