#include "util/crc.h"

#include <array>

namespace anc {

namespace {

// Standard byte-wise tables.  Processing 8 bits through the table is the
// textbook identity for polynomial division — the result matches the
// bit-by-bit loop exactly (tests/util/crc_test.cpp pins both against the
// bitwise reference), it just retires one table lookup instead of eight
// serially-dependent shift/xor steps.

constexpr std::array<std::uint32_t, 256> crc32_table = [] {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t byte = 0; byte < 256; ++byte) {
        std::uint32_t crc = byte;
        for (int k = 0; k < 8; ++k)
            crc = (crc >> 1u) ^ (0xedb88320u & (0u - (crc & 1u)));
        table[byte] = crc;
    }
    return table;
}();

constexpr std::array<std::uint16_t, 256> crc16_table = [] {
    std::array<std::uint16_t, 256> table{};
    for (std::uint32_t byte = 0; byte < 256; ++byte) {
        std::uint16_t crc = static_cast<std::uint16_t>(byte << 8u);
        for (int k = 0; k < 8; ++k) {
            const bool msb = (crc & 0x8000u) != 0;
            crc = static_cast<std::uint16_t>(crc << 1u);
            if (msb)
                crc ^= 0x1021u;
        }
        table[byte] = crc;
    }
    return table;
}();

} // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bits)
{
    // Reflected CRC-32 (poly 0xedb88320), table-driven: gather 8 bits
    // LSB-first (the reflected convention) and fold them per lookup.
    std::uint32_t crc = 0xffffffffu;
    std::size_t i = 0;
    for (; i + 8 <= bits.size(); i += 8) {
        std::uint32_t byte = 0;
        for (std::size_t k = 0; k < 8; ++k)
            byte |= static_cast<std::uint32_t>(bits[i + k] & 1u) << k;
        crc = (crc >> 8u) ^ crc32_table[(crc ^ byte) & 0xffu];
    }
    for (; i < bits.size(); ++i) {
        crc ^= static_cast<std::uint32_t>(bits[i] & 1u);
        crc = (crc >> 1u) ^ (0xedb88320u & (0u - (crc & 1u)));
    }
    return ~crc;
}

std::uint16_t crc16(std::span<const std::uint8_t> bits)
{
    // MSB-first CRC-16-CCITT: gather 8 bits MSB-first per lookup.
    std::uint16_t crc = 0xffffu;
    std::size_t i = 0;
    for (; i + 8 <= bits.size(); i += 8) {
        std::uint32_t byte = 0;
        for (std::size_t k = 0; k < 8; ++k)
            byte = (byte << 1u) | (bits[i + k] & 1u);
        crc = static_cast<std::uint16_t>(
            (crc << 8u) ^ crc16_table[((crc >> 8u) ^ byte) & 0xffu]);
    }
    for (; i < bits.size(); ++i) {
        const bool msb = (crc & 0x8000u) != 0;
        crc = static_cast<std::uint16_t>(crc << 1u);
        if (msb != ((bits[i] & 1u) != 0))
            crc ^= 0x1021u;
    }
    return crc;
}

} // namespace anc
