// Deterministic pseudo-random number generation for the whole library.
//
// Every stochastic component in this reproduction (noise, payload bits,
// jitter, channel phases) draws from a seeded Pcg32 stream so that every
// experiment is reproducible bit-for-bit.  PCG32 (O'Neill, 2014) is small,
// fast, and statistically far better than std::minstd_rand while being
// simpler to reason about than std::mt19937.

#pragma once

#include <cstdint>
#include <cstddef>

namespace anc {

/// SplitMix64 finalizer: a bijective avalanche mix of a 64-bit word.
/// Used wherever a seed must be derived from (base, counter) pairs —
/// e.g. the sweep engine's per-task seeds — so that nearby counters
/// yield statistically unrelated Pcg32 streams.
std::uint64_t splitmix64(std::uint64_t x);

/// Derive an independent seed from a base seed and an index.
/// Deterministic, and distinct indices never collide for a fixed base
/// (the underlying mix is a bijection of base + f(index)).
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t index);

/// 32-bit permuted-congruential generator (PCG-XSH-RR).
///
/// A `Pcg32` is a value type: copying it forks the stream.  Two generators
/// built from the same (seed, stream) produce identical output.
class Pcg32 {
public:
    using result_type = std::uint32_t;

    /// Construct from a seed and an optional stream selector.  Distinct
    /// stream selectors yield statistically independent sequences even for
    /// equal seeds, which lets one experiment hand independent sub-streams
    /// to its components (noise vs. payload vs. jitter).
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /// Next raw 32-bit draw.
    std::uint32_t next_u32();

    /// Next 64-bit draw (two 32-bit draws).
    std::uint64_t next_u64();

    /// Uniform double in [0, 1).
    double next_double();

    /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
    /// Uses rejection sampling, so the result is exactly uniform.
    std::uint32_t next_in_range(std::uint32_t lo, std::uint32_t hi);

    /// Standard normal draw (Box-Muller, one value cached).
    double next_gaussian();

    /// Bernoulli draw with success probability p.
    bool next_bernoulli(double p);

    /// UniformRandomBitGenerator interface, so Pcg32 works with <algorithm>
    /// (std::shuffle and friends).
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return 0xffffffffu; }
    result_type operator()() { return next_u32(); }

    /// Fork an independent child stream; `salt` decorrelates children
    /// forked from the same parent state.
    Pcg32 fork(std::uint64_t salt);

private:
    std::uint64_t state_;
    std::uint64_t inc_;
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

} // namespace anc
