// Deterministic pseudo-random number generation for the whole library.
//
// Every stochastic component in this reproduction (noise, payload bits,
// jitter, channel phases) draws from a seeded Pcg32 stream so that every
// experiment is reproducible bit-for-bit.  PCG32 (O'Neill, 2014) is small,
// fast, and statistically far better than std::minstd_rand while being
// simpler to reason about than std::mt19937.

#pragma once

#include <cmath>
#include <cstdint>
#include <cstddef>
#include <numbers>

#include "util/fastmath.h"

namespace anc {

/// SplitMix64 finalizer: a bijective avalanche mix of a 64-bit word.
/// Used wherever a seed must be derived from (base, counter) pairs —
/// e.g. the sweep engine's per-task seeds — so that nearby counters
/// yield statistically unrelated Pcg32 streams.  Inline: the fast
/// profile's counter-based noise evaluates two of these per sample pair.
inline std::uint64_t splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30u)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27u)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31u);
}

/// Derive an independent seed from a base seed and an index.
/// Deterministic, and distinct indices never collide for a fixed base
/// (the underlying mix is a bijection of base + f(index)).
inline std::uint64_t mix_seed(std::uint64_t base, std::uint64_t index)
{
    // Advance the SplitMix64 sequence seeded at `base` by `index` steps'
    // worth of increment, then finalize.  Distinct indices map to
    // distinct pre-mix words, and the finalizer is a bijection, so
    // collisions are impossible for a fixed base.
    return splitmix64(base + index * 0x9e3779b97f4a7c15ULL);
}

/// Counter-based standard-normal generator (Philox/Threefry-style in
/// spirit: stateless output as a pure function of key and counter).
///
/// Where `Pcg32::next_gaussian` is a *sequential* stream — sample n
/// requires having drawn samples 0..n-1, which serializes the noise fill
/// of the sample pipeline — a `Counter_normal` yields the pair at any
/// counter directly:
///
///     pair(c) = BoxMuller(splitmix64-mix(key, c))
///
/// so draws are order-independent, trivially parallel/vectorizable, and
/// replay-deterministic regardless of how the counter range is carved up
/// across threads (the PR 3 fading draws use the same discipline).
///
/// This is the noise source of the *fast* math profile: its Box–Muller
/// transform runs on the fast_log / fast_sincos kernels (util/fastmath.h),
/// so it is NOT bit-identical to the Pcg32 stream — the exact profile
/// keeps the sequential generator.  Statistical quality is locked in by
/// tests/util/counter_normal_test.cpp (moments, KS, stream independence,
/// multi-thread replay).
class Counter_normal {
public:
    /// Key derivation mirrors mix_seed: distinct (seed, stream) pairs
    /// yield statistically independent generators.
    Counter_normal(std::uint64_t seed, std::uint64_t stream);

    /// The two iid N(0,1) draws at `counter` — pure in (key, counter).
    /// Defined inline below so noise-fill loops keep the whole transform
    /// in registers instead of paying a call per sample pair.
    void pair(std::uint64_t counter, double& z0, double& z1) const;

    /// out[0..count) = iid N(0,1), consuming counters
    /// [first_counter, first_counter + ceil(count/2)).
    void fill(std::uint64_t first_counter, double* out, std::size_t count) const;

    /// inout[i] += scale · z_i for the same draws fill() would produce
    /// (bit-identical z stream) — the fused form the fast-profile AWGN
    /// fill uses, so noise never round-trips through a scratch buffer.
    void add_scaled(std::uint64_t first_counter, double scale, double* inout,
                    std::size_t count) const;

    /// fill(), routed through the simd backend (util/simd.h): the AVX2
    /// lanes hash/Box–Muller 4 counter pairs per step when the backend
    /// is active, and fall back to the scalar fill otherwise.  Either
    /// way the output is bit-identical to fill() at the same counters —
    /// the backend's bit-compatibility contract, pinned by
    /// tests/util/counter_normal_test.cpp.
    void fill_simd(std::uint64_t first_counter, double* out,
                   std::size_t count) const;

    /// add_scaled(), routed through the simd backend; bit-identical to
    /// add_scaled() at the same counters.
    void add_scaled_simd(std::uint64_t first_counter, double scale, double* inout,
                         std::size_t count) const;

    std::uint64_t key_a() const { return key_a_; }
    std::uint64_t key_b() const { return key_b_; }

private:
    /// The shared blocked passes behind fill() and add_scaled(): hash ->
    /// radius -> angle, emitting each z pair through `emit(index, z0,
    /// z1)` (index is the offset of z0 in the caller's buffer; an odd
    /// tail emits through `emit_tail(index, z0)`).  One source of truth
    /// keeps the two entry points' z streams bit-identical by
    /// construction.
    template <class Emit, class Emit_tail>
    void generate(std::uint64_t first_counter, std::size_t count, Emit&& emit,
                  Emit_tail&& emit_tail) const;

    std::uint64_t key_a_;
    std::uint64_t key_b_;
};

/// 32-bit permuted-congruential generator (PCG-XSH-RR).
///
/// A `Pcg32` is a value type: copying it forks the stream.  Two generators
/// built from the same (seed, stream) produce identical output.
class Pcg32 {
public:
    using result_type = std::uint32_t;

    /// Construct from a seed and an optional stream selector.  Distinct
    /// stream selectors yield statistically independent sequences even for
    /// equal seeds, which lets one experiment hand independent sub-streams
    /// to its components (noise vs. payload vs. jitter).
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /// Next raw 32-bit draw.
    std::uint32_t next_u32();

    /// Next 64-bit draw (two 32-bit draws).
    std::uint64_t next_u64();

    /// Uniform double in [0, 1).
    double next_double();

    /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
    /// Uses rejection sampling, so the result is exactly uniform.
    std::uint32_t next_in_range(std::uint32_t lo, std::uint32_t hi);

    /// Standard normal draw (Box-Muller, one value cached).
    double next_gaussian();

    /// Bernoulli draw with success probability p.
    bool next_bernoulli(double p);

    /// UniformRandomBitGenerator interface, so Pcg32 works with <algorithm>
    /// (std::shuffle and friends).
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return 0xffffffffu; }
    result_type operator()() { return next_u32(); }

    /// Fork an independent child stream; `salt` decorrelates children
    /// forked from the same parent state.
    Pcg32 fork(std::uint64_t salt);

private:
    std::uint64_t state_;
    std::uint64_t inc_;
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

namespace detail {

// The Box-Muller helpers below use *noise-grade* kernels: shortened
// versions of the fastmath polynomials with relative error ~1e-9 (log)
// and ~1e-8 (sin/cos).  A deterministic smooth perturbation at that
// scale is statistically invisible (the KS test in
// tests/util/counter_normal_test.cpp resolves ~4e-3), and noise samples
// feed only statistics — unlike the phase kernels, whose tighter bounds
// the decoder documents.  What matters is kept: exact integer quadrant
// reduction, full 53-bit uniforms, and purity in (key, counter).

/// ln of a positive normal double; relative error ~1e-9 (5-term atanh).
inline double noise_log(double x)
{
    constexpr double ln2_hi = 6.93147180369123816490e-01;
    constexpr double ln2_lo = 1.90821492927058770002e-10;
    constexpr double sqrt2 = 1.41421356237309504880;
    const auto bits = std::bit_cast<std::uint64_t>(x);
    const int raw_e = static_cast<int>((bits >> 52) & 0x7ffu) - 1023;
    const double raw_m = std::bit_cast<double>((bits & 0xfffffffffffffULL)
                                               | 0x3ff0000000000000ULL);
    // Branchless fold: halving the mantissa is an exponent decrement in
    // the bit pattern (m stays in [1, 2), no underflow possible), so the
    // fold becomes integer arithmetic on the comparison result — the
    // branch here is data-random and would mispredict ~half the time.
    const auto fold = static_cast<std::uint64_t>(raw_m > sqrt2);
    const double m = std::bit_cast<double>(
        std::bit_cast<std::uint64_t>(raw_m) - (fold << 52u));
    const int e = raw_e + static_cast<int>(fold);
    const double f = (m - 1.0) / (m + 1.0);
    const double w = f * f;
    const double w2 = w * w;
    const double poly = 2.0 * f
                        * ((1.0 + w * (1.0 / 3.0))
                           + (1.0 / 5.0 + w * (1.0 / 7.0) + w2 * (1.0 / 9.0)) * w2);
    const double ed = static_cast<double>(e);
    return ed * ln2_hi + (ed * ln2_lo + poly);
}

/// Box-Muller radius from the first hash word: sqrt(-2 ln u1) with
/// u1 = ((w1 >> 11) + 1) / 2^53 in (0, 1].  The 53-bit word is cast
/// through int64 (it is < 2^63), which maps to one hardware convert
/// instead of the unsigned fix-up sequence.
inline double box_muller_radius(std::uint64_t w1)
{
    const double u1 =
        static_cast<double>(static_cast<std::int64_t>((w1 >> 11u) + 1u)) * 0x1.0p-53;
    return std::sqrt(-2.0 * noise_log(u1));
}

/// sin/cos of the Box-Muller angle 2π·u2, u2 = (w2 >> 11) / 2^53, with
/// the quadrant split done in *integer* arithmetic: k = round(W/2^51),
/// r = (W − k·2^51)·(π/2)/2^51 ∈ [−π/4, π/4].  The reduction is exact
/// (no Cody–Waite needed) and feeds the same minimax kernels as
/// fast_sincos.
inline void box_muller_angle(std::uint64_t w2, double& s, double& c)
{
    const std::uint64_t w = w2 >> 11u;
    const auto k = static_cast<std::int64_t>((w + (1ULL << 50u)) >> 51u);
    const auto rem = static_cast<std::int64_t>(w) - (k << 51u);
    const double r =
        static_cast<double>(rem) * (0x1.0p-51 * 1.57079632679489661923);
    // Noise-grade 4-term kernels (abs error ~1e-8 on |r| <= pi/4).
    const double z = r * r;
    const double ss =
        r + r * z
                * (-1.66666666666666324348e-01
                   + z * (8.33333333332248946124e-03
                          + z * (-1.98412698298579493134e-04
                                 + z * 2.75573137070700676789e-06)));
    const double cc =
        1.0 - 0.5 * z
        + z * z
              * (4.16666666666666019037e-02
                 + z * (-1.38888888888741095749e-03
                        + z * (2.48015872894767294178e-05
                               + z * -2.75573143513906633035e-07)));
    // Branchless quadrant assembly in the bit domain: swap via masked
    // select, sign flips via XOR of the sign bit.  Exact (no arithmetic
    // on the values), and immune to the ~random quadrant of each draw —
    // conditional branches here would mispredict every other pair.
    const auto q = static_cast<std::uint64_t>(k) & 3u;
    const std::uint64_t swap_mask = ~((q & 1u) - 1u); // q odd -> all ones
    const auto sbits = std::bit_cast<std::uint64_t>(ss);
    const auto cbits = std::bit_cast<std::uint64_t>(cc);
    std::uint64_t s_sel = (sbits & ~swap_mask) | (cbits & swap_mask);
    std::uint64_t c_sel = (cbits & ~swap_mask) | (sbits & swap_mask);
    s_sel ^= (q & 2u) << 62u;       // negate sin in quadrants 2, 3
    c_sel ^= ((q + 1u) & 2u) << 62u; // negate cos in quadrants 1, 2
    s = std::bit_cast<double>(s_sel);
    c = std::bit_cast<double>(c_sel);
}

} // namespace detail

inline void Counter_normal::pair(std::uint64_t counter, double& z0, double& z1) const
{
    // Two decorrelated uniform words per counter, on independent
    // finalizer lanes (not chained) so the two hashes pipeline; the keys
    // themselves were decorrelated at construction.
    const std::uint64_t w1 = splitmix64(key_a_ + counter * 0x9e3779b97f4a7c15ULL);
    const std::uint64_t w2 = splitmix64(key_b_ + counter * 0xc2b2ae3d27d4eb4fULL);
    const double radius = detail::box_muller_radius(w1);
    double s = 0.0;
    double c = 0.0;
    detail::box_muller_angle(w2, s, c);
    z0 = radius * c;
    z1 = radius * s;
}

template <class Emit, class Emit_tail>
void Counter_normal::generate(std::uint64_t first_counter, std::size_t count,
                              Emit&& emit, Emit_tail&& emit_tail) const
{
    // Blocked multi-pass: one iteration of pair() is a long serial chain
    // (hash -> convert -> divide -> log poly -> sqrt -> sincos), so a
    // straight per-pair loop is latency-bound.  Splitting the block into
    // three short-chain passes (hash/convert, radius, angle) lets each
    // pass stream at ALU/divider throughput instead — measurably ~2x on
    // the noise fill.  Values are bit-identical to pair() at the same
    // counters (same operations, same order per element).
    constexpr std::size_t block_pairs = 64;
    std::uint64_t w1s[block_pairs];
    std::uint64_t w2s[block_pairs];
    double radius[block_pairs];
    std::size_t done = 0;
    while (done + 2 <= count) {
        const std::size_t pairs =
            ((count - done) / 2) < block_pairs ? (count - done) / 2 : block_pairs;
        const std::uint64_t base = first_counter + done / 2;
        for (std::size_t i = 0; i < pairs; ++i) {
            w1s[i] = splitmix64(key_a_ + (base + i) * 0x9e3779b97f4a7c15ULL);
            w2s[i] = splitmix64(key_b_ + (base + i) * 0xc2b2ae3d27d4eb4fULL);
        }
        for (std::size_t i = 0; i < pairs; ++i)
            radius[i] = detail::box_muller_radius(w1s[i]);
        for (std::size_t i = 0; i < pairs; ++i) {
            double s = 0.0;
            double c = 0.0;
            detail::box_muller_angle(w2s[i], s, c);
            emit(done + 2 * i, radius[i] * c, radius[i] * s);
        }
        done += 2 * pairs;
    }
    if (done < count) {
        double z0 = 0.0;
        double z1 = 0.0;
        pair(first_counter + done / 2, z0, z1);
        emit_tail(done, z0);
    }
}

inline void Counter_normal::fill(std::uint64_t first_counter, double* out,
                                 std::size_t count) const
{
    generate(
        first_counter, count,
        [out](std::size_t i, double z0, double z1) {
            out[i] = z0;
            out[i + 1] = z1;
        },
        [out](std::size_t i, double z0) { out[i] = z0; });
}

inline void Counter_normal::add_scaled(std::uint64_t first_counter, double scale,
                                       double* inout, std::size_t count) const
{
    // Same z stream as fill() (one shared generator), fused into the
    // scaled accumulation so noise never round-trips a scratch buffer.
    generate(
        first_counter, count,
        [inout, scale](std::size_t i, double z0, double z1) {
            inout[i] += scale * z0;
            inout[i + 1] += scale * z1;
        },
        [inout, scale](std::size_t i, double z0) { inout[i] += scale * z0; });
}

} // namespace anc
