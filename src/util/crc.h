// CRC-32 (IEEE 802.3) and CRC-16-CCITT over bit sequences.
//
// Frame headers carry a CRC-16 so a receiver can tell a correctly decoded
// header from garbage (the ANC receiver *must* validate headers before
// trusting them to pick a packet out of the sent-packet buffer, §7.3).
// Payload integrity checks in the examples and the COPE baseline use
// CRC-32.

#pragma once

#include <cstdint>
#include <span>

namespace anc {

/// CRC-32/IEEE over a bit sequence (one bit per byte, as in util/bits.h).
/// The reflected algorithm: to reproduce standard byte-wise check values,
/// feed each byte least-significant-bit first.  Over the library's own
/// bit streams any consistent order is fine.
std::uint32_t crc32(std::span<const std::uint8_t> bits);

/// CRC-16-CCITT (poly 0x1021, init 0xffff) over a bit sequence.
std::uint16_t crc16(std::span<const std::uint8_t> bits);

} // namespace anc
