// Runtime CPU feature detection for the SIMD math-profile backend.
//
// The `simd` profile (dsp/math_profile.h) is valid configuration on
// every machine: it *requests* the explicit AVX2+FMA kernels and merely
// resolves, once per run, to the best implementation the hardware
// offers.  That resolution needs a trustworthy answer to "can this
// process run 256-bit AVX2 math?", which is what this header provides —
// a CPUID probe cached for the lifetime of the process.  The answer is
// about the *process*, not just the silicon: it also requires the OS to
// save YMM state and the binary to be one that carries the AVX2 kernels
// (x86-64 builds only), so every reported feature is safe to dispatch on.
//
// Detection follows the Intel/AMD rules rather than trusting any single
// bit: AVX2 requires the CPUID leaf-7 AVX2 flag *and* OSXSAVE *and* an
// XGETBV report that the OS actually saves the YMM state on context
// switch (a kernel with XSAVE disabled makes the AVX2 flag a lie).

#pragma once

namespace anc {

struct Cpu_features {
    bool avx = false;     ///< AVX + OS YMM state support
    bool avx2 = false;    ///< AVX2 (implies `avx` here; gated on OS support)
    bool fma = false;     ///< FMA3
    bool avx512f = false; ///< AVX-512 Foundation + OS ZMM state support
};

/// The calling CPU's features, probed once and cached (the probe is a
/// handful of CPUID leaves; callers may treat this as free).
const Cpu_features& cpu_features();

} // namespace anc
