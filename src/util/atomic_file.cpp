#include "util/atomic_file.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace anc {

namespace {

/// fsync the named file so the subsequent rename publishes durable
/// bytes, not page-cache contents that a power cut could drop.
void fsync_path(const std::string& path)
{
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0)
        throw std::runtime_error{"write_file_atomic: cannot reopen " + path};
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0)
        throw std::runtime_error{"write_file_atomic: fsync failed on " + path};
}

} // namespace

void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer)
{
    // PID-suffixed so concurrent writers (shard processes pointed at the
    // same artifact by mistake) cannot corrupt each other's temp file;
    // last rename wins with a complete document either way.
    const std::string temp = path + ".tmp." + std::to_string(::getpid());
    try {
        {
            std::ofstream out{temp, std::ios::binary | std::ios::trunc};
            if (!out)
                throw std::runtime_error{"write_file_atomic: cannot open " + temp};
            writer(out);
            out.flush();
            if (!out)
                throw std::runtime_error{"write_file_atomic: write failed on " + temp};
        }
        fsync_path(temp);
        if (std::rename(temp.c_str(), path.c_str()) != 0)
            throw std::runtime_error{"write_file_atomic: cannot rename " + temp + " -> "
                                     + path};
    } catch (...) {
        std::remove(temp.c_str());
        throw;
    }
}

} // namespace anc
