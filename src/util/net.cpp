#include "util/net.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace anc::util {

namespace {

using clock = std::chrono::steady_clock;

bool set_nonblocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

/// poll(2) one fd for `events`, retrying EINTR against a fixed
/// deadline.  Returns the revents (0 on timeout, -1 on poll failure).
int poll_until(int fd, short events, clock::time_point deadline)
{
    for (;;) {
        const auto now = clock::now();
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - now);
        if (left.count() < 0)
            return 0;
        struct pollfd pfd{};
        pfd.fd = fd;
        pfd.events = events;
        const int got = ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (got == 0)
            return 0;
        return pfd.revents;
    }
}

} // namespace

void ignore_sigpipe()
{
    // signal(2) is async-signal-safe enough for an idempotent SIG_IGN;
    // calling it repeatedly is harmless.
    ::signal(SIGPIPE, SIG_IGN);
}

bool parse_host_port(const std::string& text, Host_port& out)
{
    const auto colon = text.rfind(':');
    if (colon == std::string::npos || colon == 0)
        return false;
    const std::string host = text.substr(0, colon);
    const std::string port_text = text.substr(colon + 1);
    if (port_text.empty() ||
        port_text.find_first_not_of("0123456789") != std::string::npos)
        return false;
    const long port = std::strtol(port_text.c_str(), nullptr, 10);
    if (port < 1 || port > 65535)
        return false;
    out.host = host;
    out.port = static_cast<std::uint16_t>(port);
    return true;
}

// ------------------------------------------------------------ Tcp_socket

Tcp_socket::Tcp_socket(int fd) : fd_{fd}
{
    if (fd_ >= 0)
        set_nonblocking(fd_);
}

Tcp_socket::~Tcp_socket() { close(); }

Tcp_socket::Tcp_socket(Tcp_socket&& other) noexcept : fd_{other.fd_}
{
    other.fd_ = -1;
}

Tcp_socket& Tcp_socket::operator=(Tcp_socket&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

Tcp_socket Tcp_socket::connect(const Host_port& peer,
                               std::chrono::milliseconds timeout)
{
    ignore_sigpipe();
    const auto deadline = clock::now() + timeout;

    struct addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* info = nullptr;
    const std::string port_text = std::to_string(peer.port);
    if (::getaddrinfo(peer.host.c_str(), port_text.c_str(), &hints, &info) != 0)
        return {};

    Tcp_socket result;
    for (struct addrinfo* it = info; it != nullptr; it = it->ai_next) {
        const int fd = ::socket(it->ai_family, it->ai_socktype | SOCK_CLOEXEC,
                                it->ai_protocol);
        if (fd < 0)
            continue;
        if (!set_nonblocking(fd)) {
            ::close(fd);
            continue;
        }
        int rc;
        do {
            rc = ::connect(fd, it->ai_addr, it->ai_addrlen);
        } while (rc < 0 && errno == EINTR);
        if (rc < 0 && errno == EINPROGRESS) {
            const int revents = poll_until(fd, POLLOUT, deadline);
            if (revents <= 0 || (revents & (POLLERR | POLLHUP))) {
                ::close(fd);
                continue;
            }
            int soerr = 0;
            socklen_t len = sizeof soerr;
            if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0 ||
                soerr != 0) {
                ::close(fd);
                continue;
            }
            rc = 0;
        }
        if (rc < 0) {
            ::close(fd);
            continue;
        }
        // Journal lines are small and latency is the point of
        // streaming; Nagle would batch them pointlessly.
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        result.fd_ = fd;
        break;
    }
    ::freeaddrinfo(info);
    return result;
}

bool Tcp_socket::send_all(const void* data, std::size_t size,
                          std::chrono::milliseconds timeout)
{
    if (fd_ < 0)
        return false;
    const auto deadline = clock::now() + timeout;
    const char* cursor = static_cast<const char*>(data);
    std::size_t left = size;
    while (left > 0) {
        const ssize_t sent = ::send(fd_, cursor, left, MSG_NOSIGNAL);
        if (sent > 0) {
            cursor += sent;
            left -= static_cast<std::size_t>(sent);
            continue;
        }
        if (sent < 0 && errno == EINTR)
            continue;
        if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            const int revents = poll_until(fd_, POLLOUT, deadline);
            if (revents <= 0 || (revents & (POLLERR | POLLHUP)))
                return false;
            continue;
        }
        return false;
    }
    return true;
}

Tcp_socket::Recv_status Tcp_socket::recv_available(std::string& into,
                                                   std::size_t max_bytes)
{
    if (fd_ < 0)
        return Recv_status::error;
    bool any = false;
    char buffer[4096];
    while (max_bytes > 0) {
        const std::size_t want = std::min(max_bytes, sizeof buffer);
        const ssize_t got = ::recv(fd_, buffer, want, 0);
        if (got > 0) {
            into.append(buffer, static_cast<std::size_t>(got));
            max_bytes -= static_cast<std::size_t>(got);
            any = true;
            continue;
        }
        if (got == 0)
            return Recv_status::closed;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return any ? Recv_status::data : Recv_status::none;
        return Recv_status::error;
    }
    return Recv_status::data;
}

void Tcp_socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

// ---------------------------------------------------------- Tcp_listener

Tcp_listener::~Tcp_listener() { close(); }

Tcp_listener::Tcp_listener(Tcp_listener&& other) noexcept
    : fd_{other.fd_}, port_{other.port_}
{
    other.fd_ = -1;
    other.port_ = 0;
}

Tcp_listener& Tcp_listener::operator=(Tcp_listener&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        port_ = other.port_;
        other.fd_ = -1;
        other.port_ = 0;
    }
    return *this;
}

Tcp_listener Tcp_listener::listen(std::uint16_t port)
{
    ignore_sigpipe();
    // CLOEXEC everywhere: worker children forked by the coordinator
    // must not inherit the listening socket, or a SIGKILLed
    // coordinator's port stays bound by its surviving fleet and the
    // restarted coordinator cannot re-listen.
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        throw std::runtime_error{"Tcp_listener: socket() failed"};
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (!set_nonblocking(fd)) {
        ::close(fd);
        throw std::runtime_error{"Tcp_listener: O_NONBLOCK failed"};
    }

    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) < 0) {
        ::close(fd);
        throw std::runtime_error{"Tcp_listener: cannot bind port " +
                                 std::to_string(port)};
    }
    if (::listen(fd, 64) < 0) {
        ::close(fd);
        throw std::runtime_error{"Tcp_listener: listen() failed"};
    }

    struct sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) < 0) {
        ::close(fd);
        throw std::runtime_error{"Tcp_listener: getsockname() failed"};
    }

    Tcp_listener result;
    result.fd_ = fd;
    result.port_ = ntohs(bound.sin_port);
    return result;
}

Tcp_socket Tcp_listener::accept()
{
    if (fd_ < 0)
        return {};
    for (;;) {
        const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd >= 0) {
            int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            return Tcp_socket{fd};
        }
        if (errno == EINTR)
            continue;
        return {};
    }
}

void Tcp_listener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        port_ = 0;
    }
}

} // namespace anc::util
