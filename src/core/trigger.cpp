#include "core/trigger.h"

#include <algorithm>

namespace anc {

const Bits& trigger_sequence()
{
    static const Bits trigger = [] {
        Pcg32 rng{0x414e435f54524947ull /* "ANC_TRIG" */, 11};
        return random_bits(trigger_length, rng);
    }();
    return trigger;
}

bool ends_with_trigger(std::span<const std::uint8_t> bits, std::size_t max_errors)
{
    const Bits& trigger = trigger_sequence();
    if (bits.size() < trigger.size())
        return false;
    const auto tail = bits.subspan(bits.size() - trigger.size());
    std::size_t errors = 0;
    for (std::size_t i = 0; i < trigger.size(); ++i)
        errors += (tail[i] != trigger[i]);
    return errors <= max_errors;
}

std::size_t draw_start_delay(Trigger_config config, Pcg32& rng)
{
    const std::uint32_t slot = rng.next_in_range(1, config.slot_count);
    return static_cast<std::size_t>(slot) * config.slot_symbols;
}

std::pair<std::size_t, std::size_t> draw_distinct_delays(Trigger_config config, Pcg32& rng)
{
    const std::uint32_t first = rng.next_in_range(1, config.slot_count);
    std::uint32_t second = first;
    while (second == first)
        second = rng.next_in_range(1, config.slot_count);
    return {static_cast<std::size_t>(first) * config.slot_symbols,
            static_cast<std::size_t>(second) * config.slot_symbols};
}

double overlap_fraction(std::size_t start_a, std::size_t len_a,
                        std::size_t start_b, std::size_t len_b)
{
    const std::size_t end_a = start_a + len_a;
    const std::size_t end_b = start_b + len_b;
    const std::size_t begin = std::max(start_a, start_b);
    const std::size_t end = std::min(end_a, end_b);
    if (end <= begin)
        return 0.0;
    const std::size_t shorter = std::min(len_a, len_b);
    if (shorter == 0)
        return 0.0;
    return static_cast<double>(end - begin) / static_cast<double>(shorter);
}

} // namespace anc
