#include "core/phase_solver.h"

#include <cmath>
#include <stdexcept>

namespace anc {

Phase_solutions solve_phases(dsp::Sample y, double a, double b)
{
    return solve_phases(y, a, b, dsp::Math_profile::exact);
}

Phase_solutions solve_phases(dsp::Sample y, double a, double b,
                             dsp::Math_profile profile)
{
    if (a <= 0.0 || b <= 0.0)
        throw std::invalid_argument{"solve_phases: amplitudes must be positive"};

    Phase_solutions out;
    double d = (std::norm(y) - a * a - b * b) / (2.0 * a * b);
    if (d > 1.0) {
        d = 1.0;
        out.clamped = true;
    } else if (d < -1.0) {
        d = -1.0;
        out.clamped = true;
    }
    out.d = d;
    const double root = std::sqrt(std::max(1.0 - d * d, 0.0));

    // Eq. 3 / Eq. 4, both sign choices.  Solutions pair crosswise: the
    // +root theta goes with the -root phi and vice versa, so that
    // A e^{i theta} + B e^{i phi} reconstructs y for each pair.
    const dsp::Sample theta_factor_plus{a + b * d, b * root};
    const dsp::Sample theta_factor_minus{a + b * d, -b * root};
    const dsp::Sample phi_factor_minus{b + a * d, -a * root};
    const dsp::Sample phi_factor_plus{b + a * d, a * root};

    out.pair[0].theta = dsp::profile_arg(profile, y * theta_factor_plus);
    out.pair[0].phi = dsp::profile_arg(profile, y * phi_factor_minus);
    out.pair[1].theta = dsp::profile_arg(profile, y * theta_factor_minus);
    out.pair[1].phi = dsp::profile_arg(profile, y * phi_factor_plus);
    return out;
}

} // namespace anc
