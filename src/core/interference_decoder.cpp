#include "core/interference_decoder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/phase_solver.h"
#include "dsp/workspace.h"
#include "util/obs.h"
#include "util/phase.h"
#include "util/simd.h"

namespace anc {

namespace {

/// The shared SoA core behind the fast and simd profiles: the Eq. 7
/// candidate generation into flat per-candidate phase arrays (the
/// 3-atan2 arg(y) factorization — see the kernel derivation notes in
/// util/simd.cpp), the Eq. 8 branchless selection over them, and
/// differential demodulation of the unknown tail.  One kernel source of
/// truth serves both profiles (anc::simd): the fast profile pins the
/// scalar implementations — the historical fast path, verbatim — while
/// the simd profile goes through the runtime-dispatched entry points
/// and reaches the AVX2 lanes when the backend is active.  The lane
/// kernels are bit-compatible with the scalar ones, so the two
/// profiles' outputs are byte-identical either way.
///
/// Candidate arrays cover just the known-signal span (the selection
/// never reads past it), and scratch comes from the per-thread
/// Workspace (the executor binds one per worker): zero allocations in
/// steady state.
void estimate_batched(dsp::Signal_view samples,
                      std::span<const double> known_diffs,
                      double a,
                      double b,
                      std::vector<double>& phi_differences,
                      std::vector<double>& match_errors,
                      bool simd_dispatch)
{
    const std::size_t count = samples.size();
    const std::size_t transitions = count - 1;
    const std::size_t known =
        known_diffs.size() < transitions ? known_diffs.size() : transitions;
    const double* in = reinterpret_cast<const double*>(samples.data());

    phi_differences.resize(transitions);
    match_errors.resize(known);

    if (known > 0) {
        dsp::Workspace& workspace = dsp::Workspace::current();
        auto theta_plus = workspace.reals();
        auto theta_minus = workspace.reals();
        auto phi_minus = workspace.reals();
        auto phi_plus = workspace.reals();
        theta_plus->resize(known + 1);
        theta_minus->resize(known + 1);
        phi_minus->resize(known + 1);
        phi_plus->resize(known + 1);
        if (simd_dispatch) {
            anc::simd::anc_candidates_batch(in, known + 1, a, b,
                                            theta_plus->data(),
                                            theta_minus->data(),
                                            phi_minus->data(), phi_plus->data());
            anc::simd::anc_select_batch(theta_plus->data(), theta_minus->data(),
                                        phi_minus->data(), phi_plus->data(),
                                        known_diffs.data(), known,
                                        phi_differences.data(),
                                        match_errors.data());
        } else {
            anc::simd::detail::anc_candidates_batch_scalar(
                in, known + 1, a, b, theta_plus->data(), theta_minus->data(),
                phi_minus->data(), phi_plus->data());
            anc::simd::detail::anc_select_batch_scalar(
                theta_plus->data(), theta_minus->data(), phi_minus->data(),
                phi_plus->data(), known_diffs.data(), known,
                phi_differences.data(), match_errors.data());
        }
    }
    if (known < transitions) {
        if (simd_dispatch)
            anc::simd::diff_arg_batch(in + 2 * known, transitions - known,
                                      phi_differences.data() + known);
        else
            anc::simd::detail::diff_arg_batch_scalar(
                in + 2 * known, transitions - known,
                phi_differences.data() + known);
    }
}

} // namespace

std::pair<std::vector<double>, std::vector<double>>
Interference_decoder::estimate_phi_differences(dsp::Signal_view samples,
                                               std::span<const double> known_diffs,
                                               double a,
                                               double b) const
{
    std::vector<double> phi_differences;
    std::vector<double> match_errors;
    estimate_phi_differences_into(samples, known_diffs, a, b, phi_differences,
                                  match_errors);
    return {std::move(phi_differences), std::move(match_errors)};
}

void Interference_decoder::estimate_phi_differences_into(
    dsp::Signal_view samples,
    std::span<const double> known_diffs,
    double a,
    double b,
    std::vector<double>& phi_differences,
    std::vector<double>& match_errors) const
{
    if (a <= 0.0 || b <= 0.0)
        throw std::invalid_argument{"Interference_decoder: amplitudes must be positive"};

    phi_differences.clear();
    match_errors.clear();
    if (samples.size() < 2)
        return;
    const std::size_t transitions = samples.size() - 1;
    // Candidate-selection tallies, derived from the span sizes so the
    // cost is O(1) per decode — never a per-sample counter (this loop
    // runs at tens of megasamples per second).
    {
        const std::size_t selected =
            known_diffs.size() < transitions ? known_diffs.size() : transitions;
        obs::count(obs::Counter::decode_calls);
        obs::count(obs::Counter::decode_selected_samples, selected);
        obs::count(obs::Counter::decode_tail_samples, transitions - selected);
    }
    phi_differences.reserve(transitions);
    match_errors.reserve(known_diffs.size() < transitions ? known_diffs.size()
                                                          : transitions);

    if (profile_ != dsp::Math_profile::exact) {
        estimate_batched(samples, known_diffs, a, b, phi_differences,
                         match_errors,
                         profile_ == dsp::Math_profile::simd);
        return;
    }

    // Solve each sample once; reuse across the two transitions touching
    // it.  All phases here are atan2 outputs in [-pi, pi], so their
    // differences stay within the exact domain of the branch-only
    // wrap_phase_bounded fold — no fmod in the per-sample loop.
    Phase_solutions current = solve_phases(samples[0], a, b, profile_);
    for (std::size_t n = 0; n < transitions; ++n) {
        const Phase_solutions next = solve_phases(samples[n + 1], a, b, profile_);

        if (n < known_diffs.size()) {
            // Four candidate (delta theta, delta phi) pairs (Eq. 7); pick
            // the one matching the known signal's step (Eq. 8).
            double best_error = 0.0;
            double best_phi_diff = 0.0;
            bool first = true;
            for (const Phase_pair& p_next : next.pair) {
                for (const Phase_pair& p_cur : current.pair) {
                    const double theta_diff = wrap_phase_bounded(p_next.theta - p_cur.theta);
                    const double error = phase_distance_bounded(theta_diff, known_diffs[n]);
                    if (first || error < best_error) {
                        best_error = error;
                        best_phi_diff = wrap_phase_bounded(p_next.phi - p_cur.phi);
                        first = false;
                    }
                }
            }
            phi_differences.push_back(best_phi_diff);
            match_errors.push_back(best_error);
        } else {
            // Known signal over: standard differential demodulation (§5.3).
            phi_differences.push_back(
                dsp::profile_arg(profile_, samples[n + 1] * std::conj(samples[n])));
        }
        current = next;
    }
}

Interference_decode_result Interference_decoder::decode(dsp::Signal_view samples,
                                                        std::span<const double> known_diffs,
                                                        double a,
                                                        double b) const
{
    Interference_decode_result result;
    decode_into(samples, known_diffs, a, b, result.bits, result.phi_differences,
                result.match_errors);
    return result;
}

void Interference_decoder::decode_into(dsp::Signal_view samples,
                                       std::span<const double> known_diffs,
                                       double a,
                                       double b,
                                       Bits& bits,
                                       std::vector<double>& phi_differences,
                                       std::vector<double>& match_errors) const
{
    const obs::Stage_timer timer{obs::Stage::interference_decode};
    estimate_phi_differences_into(samples, known_diffs, a, b, phi_differences,
                                  match_errors);
    bits.clear();
    bits.reserve(phi_differences.size());
    for (const double diff : phi_differences)
        bits.push_back(diff >= 0.0 ? 1 : 0); // MSK rule (§6.4)
}

Symbol_decode_result Interference_decoder::decode_symbols(
    dsp::Signal_view samples,
    std::span<const double> known_diffs,
    double a,
    double b,
    std::span<const double> alphabet) const
{
    if (alphabet.empty())
        throw std::invalid_argument{"decode_symbols: alphabet must not be empty"};
    Symbol_decode_result result;
    auto [phi_differences, match_errors] =
        estimate_phi_differences(samples, known_diffs, a, b);
    result.symbols.reserve(phi_differences.size());
    for (const double diff : phi_differences) {
        std::size_t best = 0;
        double best_distance = phase_distance(diff, alphabet[0]);
        for (std::size_t s = 1; s < alphabet.size(); ++s) {
            const double distance = phase_distance(diff, alphabet[s]);
            if (distance < best_distance) {
                best_distance = distance;
                best = s;
            }
        }
        result.symbols.push_back(best);
    }
    result.phi_differences = std::move(phi_differences);
    result.match_errors = std::move(match_errors);
    return result;
}

} // namespace anc
