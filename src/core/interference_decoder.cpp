#include "core/interference_decoder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/phase_solver.h"
#include "dsp/workspace.h"
#include "util/fastmath.h"
#include "util/phase.h"

namespace anc {

namespace {

/// wrap_phase_bounded with branchless control flow: the two corrections
/// become conditional-move selects, which matters in the candidate
/// selection loop where the branch direction is noise-driven (a taken /
/// not-taken pattern the predictor cannot learn).  Value-identical to
/// wrap_phase_bounded on |angle| <= 2*pi, boundary cases included.
inline double wrap_branchless(double angle)
{
    constexpr double two_pi = 2.0 * std::numbers::pi;
    const double up = angle <= -std::numbers::pi ? two_pi : 0.0;
    const double down = angle > std::numbers::pi ? two_pi : 0.0;
    return angle + up - down;
}

/// phase_distance_bounded on already-wrapped inputs, branchless.
inline double distance_branchless(double a, double b)
{
    return std::abs(wrap_branchless(a - b));
}

/// The fast-profile core: solve all samples into flat per-candidate
/// phase arrays first (a branch-light loop of independent iterations —
/// the four fast_atan2 calls pipeline across samples), then run the
/// Eq. 7-8 candidate selection over the arrays.  Scratch comes from the
/// per-thread Workspace (the executor binds one per worker), so the
/// steady state allocates nothing.  Produces the same candidate
/// structure as solve_phases(..., fast): pair[0] = (theta+, phi-),
/// pair[1] = (theta-, phi+).
void estimate_fast(dsp::Signal_view samples,
                   std::span<const double> known_diffs,
                   double a,
                   double b,
                   std::vector<double>& phi_differences,
                   std::vector<double>& match_errors)
{
    const std::size_t count = samples.size();
    const std::size_t transitions = count - 1;

    dsp::Workspace& workspace = dsp::Workspace::current();
    auto theta_plus = workspace.reals();
    auto theta_minus = workspace.reals();
    auto phi_minus = workspace.reals();
    auto phi_plus = workspace.reals();
    theta_plus->resize(count);
    theta_minus->resize(count);
    phi_minus->resize(count);
    phi_plus->resize(count);
    double* tp = theta_plus->data();
    double* tm = theta_minus->data();
    double* pm = phi_minus->data();
    double* pp = phi_plus->data();

    const double* in = reinterpret_cast<const double*>(samples.data());
    const double a2b2 = a * a + b * b;
    const double inv_2ab = 1.0 / (2.0 * a * b);
    for (std::size_t i = 0; i < count; ++i) {
        const double re = in[2 * i];
        const double im = in[2 * i + 1];
        const double norm = re * re + im * im;
        const double d_raw = (norm - a2b2) * inv_2ab;
        const double d = std::clamp(d_raw, -1.0, 1.0);
        const double root = std::sqrt(std::max(1.0 - d * d, 0.0));
        // The four candidates factor through arg(y): with T = A+Bd+iB√
        // and P = B+Ad+iA√, theta± = arg(y) ± arg(T) and phi∓ =
        // arg(y) ∓ arg(P) (arg of a product is the wrapped sum of args).
        // Three atan2 per sample instead of four, and arg(T), arg(P)
        // live in [0, π] (√ ≥ 0), so every sum is in (−2π, 2π) — the
        // exact domain of the branch-only wrap.
        const double wy = fast_atan2(im, re);
        const double wt = fast_atan2(b * root, a + b * d);
        const double wp = fast_atan2(a * root, b + a * d);
        tp[i] = wrap_branchless(wy + wt);
        tm[i] = wrap_branchless(wy - wt);
        pm[i] = wrap_branchless(wy - wp);
        pp[i] = wrap_branchless(wy + wp);
    }

    for (std::size_t n = 0; n < transitions; ++n) {
        if (n < known_diffs.size()) {
            const double known = known_diffs[n];
            const auto error_of = [known](double theta_next, double theta_cur) {
                return distance_branchless(
                    wrap_branchless(theta_next - theta_cur), known);
            };
            // The four candidates in the exact path's iteration order
            // (next 0/1 x cur 0/1), reduced with strict-< comparisons so
            // the earliest minimum wins ties exactly as the sequential
            // scan does — but branchlessly (the winner is data-dependent
            // and a conditional branch here mispredicts constantly).
            const double e00 = error_of(tp[n + 1], tp[n]);
            const double e01 = error_of(tp[n + 1], tm[n]);
            const double e10 = error_of(tm[n + 1], tp[n]);
            const double e11 = error_of(tm[n + 1], tm[n]);
            const double p00 = wrap_branchless(pm[n + 1] - pm[n]);
            const double p01 = wrap_branchless(pm[n + 1] - pp[n]);
            const double p10 = wrap_branchless(pp[n + 1] - pm[n]);
            const double p11 = wrap_branchless(pp[n + 1] - pp[n]);
            const bool b01 = e01 < e00;
            const double ea = b01 ? e01 : e00;
            const double pa = b01 ? p01 : p00;
            const bool b11 = e11 < e10;
            const double eb = b11 ? e11 : e10;
            const double pb = b11 ? p11 : p10;
            const bool bb = eb < ea;
            phi_differences.push_back(bb ? pb : pa);
            match_errors.push_back(bb ? eb : ea);
        } else {
            const double ar = in[2 * n];
            const double ai = in[2 * n + 1];
            const double br = in[2 * n + 2];
            const double bi = in[2 * n + 3];
            // arg(next * conj(cur)), with the products std::complex
            // multiplication performs.
            phi_differences.push_back(
                fast_atan2(br * -ai + bi * ar, br * ar - bi * -ai));
        }
    }
}

} // namespace

std::pair<std::vector<double>, std::vector<double>>
Interference_decoder::estimate_phi_differences(dsp::Signal_view samples,
                                               std::span<const double> known_diffs,
                                               double a,
                                               double b) const
{
    std::vector<double> phi_differences;
    std::vector<double> match_errors;
    estimate_phi_differences_into(samples, known_diffs, a, b, phi_differences,
                                  match_errors);
    return {std::move(phi_differences), std::move(match_errors)};
}

void Interference_decoder::estimate_phi_differences_into(
    dsp::Signal_view samples,
    std::span<const double> known_diffs,
    double a,
    double b,
    std::vector<double>& phi_differences,
    std::vector<double>& match_errors) const
{
    if (a <= 0.0 || b <= 0.0)
        throw std::invalid_argument{"Interference_decoder: amplitudes must be positive"};

    phi_differences.clear();
    match_errors.clear();
    if (samples.size() < 2)
        return;
    const std::size_t transitions = samples.size() - 1;
    phi_differences.reserve(transitions);
    match_errors.reserve(known_diffs.size() < transitions ? known_diffs.size()
                                                          : transitions);

    if (profile_ == dsp::Math_profile::fast) {
        estimate_fast(samples, known_diffs, a, b, phi_differences, match_errors);
        return;
    }

    // Solve each sample once; reuse across the two transitions touching
    // it.  All phases here are atan2 outputs in [-pi, pi], so their
    // differences stay within the exact domain of the branch-only
    // wrap_phase_bounded fold — no fmod in the per-sample loop.
    Phase_solutions current = solve_phases(samples[0], a, b, profile_);
    for (std::size_t n = 0; n < transitions; ++n) {
        const Phase_solutions next = solve_phases(samples[n + 1], a, b, profile_);

        if (n < known_diffs.size()) {
            // Four candidate (delta theta, delta phi) pairs (Eq. 7); pick
            // the one matching the known signal's step (Eq. 8).
            double best_error = 0.0;
            double best_phi_diff = 0.0;
            bool first = true;
            for (const Phase_pair& p_next : next.pair) {
                for (const Phase_pair& p_cur : current.pair) {
                    const double theta_diff = wrap_phase_bounded(p_next.theta - p_cur.theta);
                    const double error = phase_distance_bounded(theta_diff, known_diffs[n]);
                    if (first || error < best_error) {
                        best_error = error;
                        best_phi_diff = wrap_phase_bounded(p_next.phi - p_cur.phi);
                        first = false;
                    }
                }
            }
            phi_differences.push_back(best_phi_diff);
            match_errors.push_back(best_error);
        } else {
            // Known signal over: standard differential demodulation (§5.3).
            phi_differences.push_back(
                dsp::profile_arg(profile_, samples[n + 1] * std::conj(samples[n])));
        }
        current = next;
    }
}

Interference_decode_result Interference_decoder::decode(dsp::Signal_view samples,
                                                        std::span<const double> known_diffs,
                                                        double a,
                                                        double b) const
{
    Interference_decode_result result;
    decode_into(samples, known_diffs, a, b, result.bits, result.phi_differences,
                result.match_errors);
    return result;
}

void Interference_decoder::decode_into(dsp::Signal_view samples,
                                       std::span<const double> known_diffs,
                                       double a,
                                       double b,
                                       Bits& bits,
                                       std::vector<double>& phi_differences,
                                       std::vector<double>& match_errors) const
{
    estimate_phi_differences_into(samples, known_diffs, a, b, phi_differences,
                                  match_errors);
    bits.clear();
    bits.reserve(phi_differences.size());
    for (const double diff : phi_differences)
        bits.push_back(diff >= 0.0 ? 1 : 0); // MSK rule (§6.4)
}

Symbol_decode_result Interference_decoder::decode_symbols(
    dsp::Signal_view samples,
    std::span<const double> known_diffs,
    double a,
    double b,
    std::span<const double> alphabet) const
{
    if (alphabet.empty())
        throw std::invalid_argument{"decode_symbols: alphabet must not be empty"};
    Symbol_decode_result result;
    auto [phi_differences, match_errors] =
        estimate_phi_differences(samples, known_diffs, a, b);
    result.symbols.reserve(phi_differences.size());
    for (const double diff : phi_differences) {
        std::size_t best = 0;
        double best_distance = phase_distance(diff, alphabet[0]);
        for (std::size_t s = 1; s < alphabet.size(); ++s) {
            const double distance = phase_distance(diff, alphabet[s]);
            if (distance < best_distance) {
                best_distance = distance;
                best = s;
            }
        }
        result.symbols.push_back(best);
    }
    result.phi_differences = std::move(phi_differences);
    result.match_errors = std::move(match_errors);
    return result;
}

} // namespace anc
