#include "core/anc_receiver.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/amplitude_estimator.h"
#include "dsp/msk.h"
#include "dsp/ops.h"
#include "dsp/workspace.h"
#include "phy/frame.h"
#include "phy/pilot.h"
#include "util/obs.h"

namespace anc {

namespace {

/// Telemetry tally of a finished receive(): one outcome counter, plus the
/// decode-failure reason when the interference path gave up.
void count_outcome(const Receive_outcome& outcome)
{
    if (!obs::enabled())
        return;
    switch (outcome.status) {
    case Receive_status::no_packet: obs::count(obs::Counter::rx_no_packet); break;
    case Receive_status::clean: obs::count(obs::Counter::rx_clean); break;
    case Receive_status::decoded_interference:
        obs::count(obs::Counter::rx_decoded_interference);
        break;
    case Receive_status::forward_candidate:
        obs::count(obs::Counter::rx_forward_candidate);
        break;
    case Receive_status::failed: obs::count(obs::Counter::rx_failed); break;
    }
    switch (outcome.diag.failure) {
    case Decode_failure::none: break;
    case Decode_failure::no_known_header:
        obs::count(obs::Counter::rx_fail_no_known_header);
        break;
    case Decode_failure::no_overlap: obs::count(obs::Counter::rx_fail_no_overlap); break;
    case Decode_failure::no_amplitudes:
        obs::count(obs::Counter::rx_fail_no_amplitudes);
        break;
    case Decode_failure::no_unknown_pilot:
        obs::count(obs::Counter::rx_fail_no_unknown_pilot);
        break;
    case Decode_failure::bad_unknown_frame:
        obs::count(obs::Counter::rx_fail_bad_unknown_frame);
        break;
    }
}

/// Decode the 64 header bits that follow a pilot found at `pilot_pos`.
std::optional<phy::Frame_header> header_after_pilot(const Bits& bits, std::size_t pilot_pos)
{
    const std::size_t header_pos = pilot_pos + phy::pilot_length;
    if (header_pos + phy::header_length > bits.size())
        return std::nullopt;
    return phy::decode_header(
        std::span<const std::uint8_t>{bits}.subspan(header_pos, phy::header_length));
}

/// Recover the unknown frame from its tail copies (mirrored pilot and
/// header, §7.4).  The unknown packet in a decoded stream ends last, i.e.
/// in its interference-free region, so the tail fields are reliable even
/// when the head fields fell into a noisy stretch of the collision.
/// Rejects frames whose header equals `known_header` (the degenerate
/// self-mirror of the cancelled signal).
std::optional<phy::Parsed_frame> recover_from_tail(const Bits& bits,
                                                   const phy::Packed_bits& packed_bits,
                                                   const phy::Frame_header& known_header,
                                                   std::size_t& pilot_errors_out)
{
    if (bits.size() < phy::frame_overhead_bits)
        return std::nullopt;
    // The mirrored pilot is the last field of the frame; the stream may
    // run a few windowed samples past the true end, so scan the last
    // stretch for the best match.  The caller's packed haystack covers
    // these bits, so the tail scan packs nothing.
    const std::size_t last_start = bits.size() - phy::pilot_length;
    const std::size_t from = last_start > 192 ? last_start - 192 : 0;
    const auto tail_pilot = phy::find_pattern(packed_bits, phy::pilot_mirrored_packed(),
                                              from, last_start, 8);
    if (!tail_pilot)
        return std::nullopt;
    if (tail_pilot->position < phy::header_length)
        return std::nullopt;

    // The mirrored header sits just before the mirrored pilot.
    const auto tail_header_bits = mirrored(std::span<const std::uint8_t>{bits}.subspan(
        tail_pilot->position - phy::header_length, phy::header_length));
    const auto header = phy::decode_header(tail_header_bits);
    if (!header || *header == known_header)
        return std::nullopt;

    // The frame's extent follows from the header's payload length.
    const std::size_t frame_end = tail_pilot->position + phy::pilot_length;
    const std::size_t total = phy::frame_length(header->payload_bits);
    if (frame_end < total)
        return std::nullopt;
    const std::size_t frame_start = frame_end - total;
    const phy::Frame_offsets offsets = phy::frame_offsets(header->payload_bits);
    phy::Parsed_frame parsed;
    parsed.header = *header;
    const auto payload = std::span<const std::uint8_t>{bits}.subspan(
        frame_start + offsets.payload, header->payload_bits);
    parsed.payload.assign(payload.begin(), payload.end());
    parsed.crc_ok = false; // not verified on this path
    pilot_errors_out = tail_pilot->errors;
    return parsed;
}

} // namespace

Anc_receiver::Anc_receiver(Anc_receiver_config config, double noise_power,
                           dsp::Math_profile profile)
    : config_{config},
      noise_power_{noise_power},
      modem_{config.modem},
      packet_detector_{noise_power, config.packet_detector},
      interference_detector_{noise_power, config.interference_detector},
      decoder_{profile}
{
}

Receive_outcome Anc_receiver::receive(dsp::Signal_view stream,
                                      const Sent_packet_buffer& buffer) const
{
    Receive_outcome outcome;

    const auto bounds = packet_detector_.detect(stream);
    if (!bounds) {
        count_outcome(outcome); // status stays no_packet
        return outcome;
    }

    const dsp::Signal_view packet = dsp::slice_view(stream, bounds->begin, bounds->end);
    const phy::Interference_report report = interference_detector_.analyze(packet);

    if (!report.interfered) {
        const auto frame = modem_.receive(packet);
        if (frame) {
            outcome.status = Receive_status::clean;
            outcome.frame = frame;
        } else {
            outcome.status = Receive_status::failed;
        }
        count_outcome(outcome);
        return outcome;
    }

    dsp::Workspace& workspace = dsp::Workspace::current();

    // Collision.  Read the header at the clean head (the first packet's)
    // and — through time reversal — at the clean tail (the second's).
    auto forward_bits = workspace.bits();
    modem_.demodulate_bits_into(packet, *forward_bits);
    const auto forward_pilot = phy::find_pattern(*forward_bits, phy::pilot_sequence(), 0,
                                                 config_.pilot_search_span,
                                                 config_.modem.pilot_max_errors);
    if (forward_pilot)
        outcome.diag.first_header = header_after_pilot(*forward_bits, forward_pilot->position);

    auto reversed = workspace.signal();
    dsp::time_reverse_into(packet, *reversed);
    auto backward_bits = workspace.bits();
    modem_.demodulate_bits_into(*reversed, *backward_bits);
    const auto backward_pilot = phy::find_pattern(*backward_bits, phy::pilot_sequence(), 0,
                                                  config_.pilot_search_span,
                                                  config_.modem.pilot_max_errors);
    if (backward_pilot)
        outcome.diag.second_header =
            header_after_pilot(*backward_bits, backward_pilot->position);

    // Which half of the collision do we know?  (§7.3)
    if (outcome.diag.first_header && buffer.contains(*outcome.diag.first_header)) {
        const Stored_frame* known = buffer.lookup(*outcome.diag.first_header);
        // The forward domain is exactly the span the interference
        // detector already analyzed — reuse that report.
        outcome.frame = decode_interfered(packet, forward_pilot->position, *known,
                                          /*backward=*/false, outcome.diag, &report);
    } else if (outcome.diag.second_header && buffer.contains(*outcome.diag.second_header)) {
        const Stored_frame* known = buffer.lookup(*outcome.diag.second_header);
        outcome.frame = decode_interfered(*reversed, backward_pilot->position, *known,
                                          /*backward=*/true, outcome.diag, nullptr);
    } else {
        // Neither half is known.  Try a capture decode first: when one
        // signal is much stronger (the "X" topology's overhearing, §11.5),
        // standard demodulation of the dominant signal often succeeds with
        // the weak one acting as noise.  The payload CRC inside the
        // receive keeps comparable-power collisions (whose payload would
        // be garbage) from masquerading as clean packets.  The stream was
        // demodulated above already, so probe those bits directly.
        if (const auto captured = modem_.receive_bits(*forward_bits)) {
            outcome.status = Receive_status::clean;
            outcome.frame = captured;
            count_outcome(outcome);
            return outcome;
        }
        outcome.diag.failure = Decode_failure::no_known_header;
        outcome.status = (outcome.diag.first_header && outcome.diag.second_header)
                             ? Receive_status::forward_candidate
                             : Receive_status::failed;
        count_outcome(outcome);
        return outcome;
    }

    outcome.status = outcome.frame ? Receive_status::decoded_interference
                                   : Receive_status::failed;
    count_outcome(outcome);
    return outcome;
}

std::optional<phy::Received_frame> Anc_receiver::decode_interfered(
    dsp::Signal_view domain_slice,
    std::size_t pilot_pos,
    const Stored_frame& known,
    bool backward,
    Interference_diag& diag,
    const phy::Interference_report* analyzed) const
{
    diag.backward = backward;
    dsp::Workspace& workspace = dsp::Workspace::current();

    // In the time-reversed domain the known frame's bits read backwards
    // (the reversal transform preserves phase-difference signs, so the
    // expected step sequence is simply the mirrored bit sequence's).
    auto mirror = workspace.bits();
    if (backward)
        mirror->assign(known.frame_bits.rbegin(), known.frame_bits.rend());
    const std::span<const std::uint8_t> known_bits =
        backward ? std::span<const std::uint8_t>{*mirror}
                 : std::span<const std::uint8_t>{known.frame_bits};
    auto known_diffs = workspace.reals();
    dsp::phase_differences_for_bits_into(known_bits, *known_diffs);

    // Locate the collision region in *this* domain (or reuse the caller's
    // analysis of the identical span).
    const phy::Interference_report report =
        analyzed ? *analyzed : interference_detector_.analyze(domain_slice);
    if (!report.interfered) {
        diag.failure = Decode_failure::no_overlap;
        return std::nullopt;
    }
    diag.overlap_begin = report.overlap_begin;
    diag.overlap_end = report.overlap_end;

    // ---- Amplitude estimation (§6.2) -------------------------------
    std::optional<Amplitude_estimate> amplitudes;
    {
        const obs::Stage_timer timer{obs::Stage::amplitude_estimate};

        // Clean, known-only prefix: from the known frame's first sample
        // to the start of the overlap.
        double prefix_amplitude = 0.0;
        if (report.overlap_begin > pilot_pos + config_.min_prefix) {
            const dsp::Signal_view prefix =
                dsp::slice_view(domain_slice, pilot_pos, report.overlap_begin);
            prefix_amplitude = amplitude_from_clean_region(prefix, noise_power_);
        }

        // Overlap window, clipped to the known signal's extent (beyond it
        // the mix is no longer two signals).
        const std::size_t known_end_sample = pilot_pos + known_bits.size() + 1;
        const std::size_t window_begin = report.overlap_begin;
        const std::size_t window_end = std::min({report.overlap_end, known_end_sample,
                                                 domain_slice.size()});
        if (window_end <= window_begin) {
            diag.failure = Decode_failure::no_overlap;
            return std::nullopt;
        }
        const dsp::Signal_view overlap =
            dsp::slice_view(domain_slice, window_begin, window_end);

        if (!config_.mu_sigma_only && prefix_amplitude > 0.0)
            amplitudes =
                estimate_with_known_amplitude(overlap, noise_power_, prefix_amplitude);
        if (!amplitudes && !config_.mu_sigma_only)
            amplitudes = estimate_amplitudes_by_variance(overlap, noise_power_);
        if (!amplitudes) {
            // The paper's Eq. 5-6 estimator (also the mu_sigma_only ablation).
            amplitudes = estimate_amplitudes(overlap, noise_power_);
        }
        if (!amplitudes) {
            diag.failure = Decode_failure::no_amplitudes;
            return std::nullopt;
        }
        if (prefix_amplitude > 0.0
            && std::abs(amplitudes->b - prefix_amplitude)
                   < std::abs(amplitudes->a - prefix_amplitude)) {
            // Blind estimators cannot tell which amplitude is whose; assign
            // the one nearer the prefix measurement to the known signal.
            std::swap(amplitudes->a, amplitudes->b);
        }
    }
    diag.est_known_amp = amplitudes->a;
    diag.est_unknown_amp = amplitudes->b;

    // ---- Interference decoding (§6.3-6.4) --------------------------
    const dsp::Signal_view aligned =
        dsp::slice_view(domain_slice, pilot_pos, domain_slice.size());
    auto decoded_bits = workspace.bits();
    auto phi_differences = workspace.reals();
    auto match_errors = workspace.reals();
    decoder_.decode_into(aligned, *known_diffs, amplitudes->a, amplitudes->b,
                         *decoded_bits, *phi_differences, *match_errors);
    if (!match_errors->empty()) {
        diag.mean_match_error =
            std::accumulate(match_errors->begin(), match_errors->end(), 0.0)
            / static_cast<double>(match_errors->size());
    }

    // ---- Locate and deframe the unknown packet (§7.2) ---------------
    // The decoded stream carries the unknown packet's bits from wherever
    // it started; its own pilot marks that point.  One trap: before the
    // unknown signal starts, a lone signal decomposes into two rigidly
    // coupled vectors and the decoder's output degenerately *mirrors the
    // known frame's bits* — including its pilot.  So the search is
    // bounded by the measured overlap start and any candidate whose
    // header equals the known frame's is rejected and skipped.
    const std::size_t unknown_start =
        report.overlap_begin > pilot_pos ? report.overlap_begin - pilot_pos : 0;
    const std::size_t search_to =
        unknown_start + 6 * config_.interference_detector.window;
    // Pack the decoded stream once: the pilot loop below and the
    // mirrored-tail fallback all scan these same bits.
    const phy::Packed_bits packed_decoded{*decoded_bits};
    std::optional<phy::Parsed_frame> parsed;
    std::size_t pilot_errors = 0;
    std::size_t search_from = 0;
    while (!parsed) {
        const auto unknown_pilot =
            phy::find_pattern(packed_decoded, phy::pilot_packed(), search_from, search_to,
                              config_.unknown_pilot_max_errors);
        if (!unknown_pilot)
            break;
        parsed = phy::parse_frame_at(*decoded_bits, unknown_pilot->position);
        if (parsed && parsed->header == known.header) {
            // The known frame's degenerate mirror of itself: skip past it.
            parsed.reset();
        }
        if (parsed) {
            pilot_errors = unknown_pilot->errors;
            break;
        }
        search_from = unknown_pilot->position + 1;
        if (search_from > search_to)
            break;
    }

    if (!parsed) {
        // Head-side framing failed: the unknown packet's leading pilot or
        // header fell into a high-error stretch of the collision (the two
        // constellations periodically align as the carriers drift).  This
        // is exactly why the frame carries a *mirrored* header and pilot
        // at its other end (§7.4): the unknown packet ends in its
        // interference-free region, so its tail copy decodes cleanly.
        parsed = recover_from_tail(*decoded_bits, packed_decoded, known.header,
                                   pilot_errors);
        if (!parsed) {
            diag.failure = Decode_failure::no_unknown_pilot;
            return std::nullopt;
        }
    }

    phy::Received_frame frame;
    frame.header = parsed->header;
    frame.pilot_errors = pilot_errors;
    // In the reversed domain the frame's payload came out reversed; undo
    // that before de-whitening (the scrambler runs forward).
    const Bits payload_on_air = backward ? mirrored(parsed->payload) : parsed->payload;
    frame.payload = modem_.descramble(payload_on_air);
    diag.unknown_pilot_errors = pilot_errors;
    return frame;
}

} // namespace anc
