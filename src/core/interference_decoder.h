// Decoding the unknown signal out of a two-signal collision (§6.3-6.4).
//
// For every consecutive pair of received samples, Lemma 6.1 yields two
// candidate phases per sample, hence four candidate phase-difference pairs
// (delta theta, delta phi) (Eq. 7).  The receiver knows the phase
// differences its own (or an overheard) packet must have produced — MSK
// maps bits to +-pi/2 steps — so it picks the candidate whose delta theta
// best matches the known step (Eq. 8) and reads the unknown signal's bit
// off the matching delta phi: bit = (delta phi >= 0).
//
// Beyond the end of the known signal the collision is over and the
// decoder falls back to standard differential demodulation — that region
// is the unknown packet's interference-free tail (§7.2).

#pragma once

#include <span>
#include <utility>
#include <vector>

#include "dsp/math_profile.h"
#include "dsp/sample.h"
#include "util/bits.h"

namespace anc {

struct Interference_decode_result {
    /// One hard decision per sample transition: the unknown signal's bits.
    /// Positions where the unknown signal had not yet started carry noise
    /// decisions; the caller locates the packet via its pilot.
    Bits bits;
    /// Estimated delta phi per transition (soft output).
    std::vector<double> phi_differences;
    /// |delta theta_chosen - delta theta_known| per transition within the
    /// known signal's extent; diagnostics for tests and benches.
    std::vector<double> match_errors;
};

/// Result of the generic-alphabet variant: per-transition symbol indices
/// into the caller's alphabet instead of MSK bits.
struct Symbol_decode_result {
    std::vector<std::size_t> symbols;
    std::vector<double> phi_differences;
    std::vector<double> match_errors;
};

class Interference_decoder {
public:
    /// The math profile selects the Eq. 7–8 arg/atan2 kernels: `exact`
    /// is the historical libm path, `fast` the bounded-error fastmath
    /// one (see dsp/math_profile.h; the ANC receiver passes its own
    /// profile down).
    explicit Interference_decoder(
        dsp::Math_profile profile = dsp::Math_profile::exact)
        : profile_{profile}
    {
    }

    dsp::Math_profile math_profile() const { return profile_; }

    /// `samples`: the received stream, aligned so samples[k] carries the
    /// known signal's k-th sample (alignment is the pilot matcher's job).
    /// `known_diffs`: the known signal's per-transition phase differences
    /// (length = number of known frame bits).  Transitions at or past
    /// known_diffs.size() are demodulated as a single signal.
    /// `a`, `b`: amplitudes of the known and unknown signal.
    Interference_decode_result decode(dsp::Signal_view samples,
                                      std::span<const double> known_diffs,
                                      double a,
                                      double b) const;

    /// As decode(), writing into caller-owned buffers (cleared first;
    /// typically dsp::Workspace leases) — the allocation-free hot path
    /// the ANC receiver runs per collision.
    void decode_into(dsp::Signal_view samples,
                     std::span<const double> known_diffs,
                     double a,
                     double b,
                     Bits& bits,
                     std::vector<double>& phi_differences,
                     std::vector<double>& match_errors) const;

    /// Generic PSK variant (§4: the algorithm "is applicable to any phase
    /// shift keying modulation").  The unknown signal's per-transition
    /// phase-step alphabet is supplied by the caller; each estimated
    /// delta-phi snaps to the nearest alphabet entry.  The *known* signal
    /// may use any scheme — only its expected phase differences matter.
    Symbol_decode_result decode_symbols(dsp::Signal_view samples,
                                        std::span<const double> known_diffs,
                                        double a,
                                        double b,
                                        std::span<const double> alphabet) const;

    /// The shared core: per-transition estimated delta-phi of the unknown
    /// signal (Eq. 7-8 candidate selection), plus Eq. 8 match errors over
    /// the known signal's extent.
    std::pair<std::vector<double>, std::vector<double>> estimate_phi_differences(
        dsp::Signal_view samples,
        std::span<const double> known_diffs,
        double a,
        double b) const;

    /// The same core into caller-owned buffers (cleared first).
    void estimate_phi_differences_into(dsp::Signal_view samples,
                                       std::span<const double> known_diffs,
                                       double a,
                                       double b,
                                       std::vector<double>& phi_differences,
                                       std::vector<double>& match_errors) const;

private:
    dsp::Math_profile profile_ = dsp::Math_profile::exact;
};

} // namespace anc
