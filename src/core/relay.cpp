#include "core/relay.h"

#include "dsp/ops.h"

namespace anc {

Relay_action decide_relay_action(
    const std::optional<phy::Frame_header>& first,
    const std::optional<phy::Frame_header>& second,
    const Sent_packet_buffer& buffer,
    const std::function<bool(const phy::Frame_header&, const phy::Frame_header&)>&
        opposite_directions)
{
    if ((first && buffer.contains(*first)) || (second && buffer.contains(*second)))
        return Relay_action::decode;
    if (first && second && opposite_directions(*first, *second))
        return Relay_action::forward;
    return Relay_action::drop;
}

std::optional<dsp::Signal> amplify_and_forward(dsp::Signal_view received,
                                               double noise_power,
                                               double target_power,
                                               phy::Packet_detector::Config detector)
{
    dsp::Signal out;
    if (!amplify_and_forward_into(received, noise_power, target_power, out, detector))
        return std::nullopt;
    return out;
}

bool amplify_and_forward_into(dsp::Signal_view received,
                              double noise_power,
                              double target_power,
                              dsp::Signal& out,
                              phy::Packet_detector::Config detector)
{
    out.clear();
    const phy::Packet_detector packet_detector{noise_power, detector};
    const auto bounds = packet_detector.detect(received);
    if (!bounds)
        return false;
    dsp::slice_into(received, bounds->begin, bounds->end, out);
    dsp::normalize_power_in_place(out, target_power);
    return true;
}

} // namespace anc
