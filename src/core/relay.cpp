#include "core/relay.h"

#include "dsp/ops.h"

namespace anc {

Relay_action decide_relay_action(
    const std::optional<phy::Frame_header>& first,
    const std::optional<phy::Frame_header>& second,
    const Sent_packet_buffer& buffer,
    const std::function<bool(const phy::Frame_header&, const phy::Frame_header&)>&
        opposite_directions)
{
    if ((first && buffer.contains(*first)) || (second && buffer.contains(*second)))
        return Relay_action::decode;
    if (first && second && opposite_directions(*first, *second))
        return Relay_action::forward;
    return Relay_action::drop;
}

std::optional<dsp::Signal> amplify_and_forward(dsp::Signal_view received,
                                               double noise_power,
                                               double target_power,
                                               phy::Packet_detector::Config detector)
{
    const phy::Packet_detector packet_detector{noise_power, detector};
    const auto bounds = packet_detector.detect(received);
    if (!bounds)
        return std::nullopt;
    const dsp::Signal active = dsp::slice(received, bounds->begin, bounds->end);
    return dsp::normalized_to_power(active, target_power);
}

} // namespace anc
