// Lemma 6.1: the two candidate phase pairs of an interfered sample.
//
// A received sample y = A e^{i theta} + B e^{i phi} constrains (theta,
// phi) to exactly two solutions — geometrically, two vectors of lengths A
// and B summing to y (Fig. 4 of the paper).  With
//     D = (|y|^2 - A^2 - B^2) / (2 A B)
// the solutions are
//     theta = arg(y (A + B D +- i B sqrt(1 - D^2)))
//     phi   = arg(y (B + A D -+ i A sqrt(1 - D^2)))
// pairing the upper signs of theta with the lower signs of phi.

#pragma once

#include <array>

#include "dsp/math_profile.h"
#include "dsp/sample.h"

namespace anc {

struct Phase_pair {
    double theta = 0.0; // candidate phase of the first (known) signal
    double phi = 0.0;   // matching candidate phase of the second signal
};

struct Phase_solutions {
    std::array<Phase_pair, 2> pair;
    /// D fell outside [-1, 1] before clamping: |y| is inconsistent with
    /// amplitudes A and B (noise, estimation error, or a region where one
    /// signal is absent).  The clamped solutions coincide and are still
    /// the best geometric fit.
    bool clamped = false;
    double d = 0.0; // cos(theta - phi) after clamping
};

/// Solve Eq. 2 for the two (theta, phi) pairs.  Requires a > 0 and b > 0.
Phase_solutions solve_phases(dsp::Sample y, double a, double b);

/// Profile-dispatched variant: `exact` is the overload above verbatim;
/// `fast` evaluates the four arg() calls with fast_atan2 (≲1e-11 rad
/// absolute error, the kernel bound util/fastmath.h documents and
/// tests — far below the Eq. 8 decision margins of ±π/2).
Phase_solutions solve_phases(dsp::Sample y, double a, double b,
                             dsp::Math_profile profile);

} // namespace anc
