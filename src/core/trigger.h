// Trigger protocol (§7.6) and the deliberate partial overlap (§7.2).
//
// A node that wants two neighbours to collide appends a short trigger
// sequence to its transmission; the triggered nodes respond immediately —
// but each first waits a random number of slots (1..32) so that the two
// packets overlap *incompletely*, leaving interference-free pilot regions
// at the head of the first packet and the tail of the second.

#pragma once

#include <cstddef>
#include <utility>

#include "util/bits.h"
#include "util/rng.h"

namespace anc {

inline constexpr std::size_t trigger_length = 16;

/// The fixed trigger bit sequence appended to a transmission.
const Bits& trigger_sequence();

/// True if `bits` ends with the trigger sequence (allowing `max_errors`
/// bit errors).
bool ends_with_trigger(std::span<const std::uint8_t> bits, std::size_t max_errors = 2);

struct Trigger_config {
    /// Number of backoff slots (§7.2 uses 1..32; we default to 8 — see
    /// slot_symbols below for why fewer, larger slots).
    std::uint32_t slot_count = 8;
    /// Slot size in symbols.  §7.2 says the size depends on rate, packet
    /// size and modulation; the binding constraint is that the clean
    /// (interference-free) region at the head of the first packet and the
    /// tail of the second must cover a full pilot + header (128 bits), or
    /// the receivers cannot synchronize.  140 symbols per slot guarantees
    /// that whenever the two senders draw *different* slots; combined
    /// with 8 slots and ~2300-bit frames this lands the mean overlap near
    /// the paper's reported 80% (§11.4).
    std::size_t slot_symbols = 140;
};

/// Random start delay in symbols: slot * slot_symbols with slot uniform in
/// [1, slot_count].
std::size_t draw_start_delay(Trigger_config config, Pcg32& rng);

/// Start delays for the *two* triggered senders.  The paper "enforces"
/// incomplete overlap (§7.2); we realize that by making the two nodes
/// draw distinct slots (think of the trigger assigning disjoint backoff
/// ranges), which guarantees at least one slot of interference-free
/// signal at the head and tail of the collision.
std::pair<std::size_t, std::size_t> draw_distinct_delays(Trigger_config config, Pcg32& rng);

/// Fraction of the shorter packet overlapped by the longer given the two
/// start offsets and lengths (diagnostic used to report the paper's
/// "average overlap of 80%").
double overlap_fraction(std::size_t start_a, std::size_t len_a,
                        std::size_t start_b, std::size_t len_b);

} // namespace anc
