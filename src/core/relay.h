// Router behaviour for interfered signals (§7.5, Appendix C).
//
// A router that receives a collision has three options:
//   - decode:  one of the colliding headers matches a packet it already
//     has (the chain topology: it forwarded that packet earlier), so it
//     can cancel and decode the other packet itself;
//   - forward: it knows neither packet but the two are headed in opposite
//     directions through it (Alice-Bob), so it re-amplifies the *signal*
//     to its transmit power P and broadcasts it;
//   - drop:    anything else.
//
// The re-amplification scales the received window so its mean power is P
// (the amplification factor A = sqrt(P / (P h1^2 + P h2^2 + sigma^2)) of
// Appendix C, realized by measuring the actual received power).  The
// router's own receiver noise is inside the window and gets amplified
// with the signals — the source of ANC's low-SNR penalty (§8) and of the
// higher Alice-Bob BER versus the chain (§11.6).

#pragma once

#include <functional>
#include <optional>

#include "core/sent_packet_buffer.h"
#include "dsp/sample.h"
#include "phy/detector.h"
#include "phy/header.h"

namespace anc {

enum class Relay_action {
    decode,  // a colliding packet is known: run interference decoding
    forward, // amplify-and-forward the raw signal
    drop,
};

/// Decide per §7.5.  `headers` are whatever header(s) were readable from
/// the clean head/tail of the collision; `opposite_directions` answers
/// "are these two flows crossing this router in opposite directions?"
/// from the router's routing state.
Relay_action decide_relay_action(
    const std::optional<phy::Frame_header>& first,
    const std::optional<phy::Frame_header>& second,
    const Sent_packet_buffer& buffer,
    const std::function<bool(const phy::Frame_header&, const phy::Frame_header&)>&
        opposite_directions);

/// Amplify-and-forward: trim the received stream to its active region
/// (energy detection against the router's noise floor) and scale the mean
/// power there to `target_power`.  Returns the signal to broadcast, or
/// nothing if no packet is detected.
std::optional<dsp::Signal> amplify_and_forward(dsp::Signal_view received,
                                               double noise_power,
                                               double target_power,
                                               phy::Packet_detector::Config detector = {});

/// As above, into a caller-owned buffer (cleared first; typically a
/// dsp::Workspace lease) — the allocation-free steady-state path.
/// Returns false (leaving `out` empty) when no packet is detected.
bool amplify_and_forward_into(dsp::Signal_view received,
                              double noise_power,
                              double target_power,
                              dsp::Signal& out,
                              phy::Packet_detector::Config detector = {});

} // namespace anc
