// Sent/overheard packet buffer (§7.3).
//
// A node keeps the frames it transmitted (Alice-Bob, chain) or overheard
// ("X" topology).  When an interfered signal arrives, the decoded header
// identifies which stored frame produced the known half of the collision;
// the stored *on-air* bits provide the known phase-difference sequence.

#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <tuple>

#include "phy/header.h"
#include "util/bits.h"

namespace anc {

struct Stored_frame {
    phy::Frame_header header;
    Bits frame_bits; // full on-air frame bits (payload whitened)
    Bits payload;    // application-domain payload, for convenience
};

class Sent_packet_buffer {
public:
    /// Keep at most `capacity` frames; the oldest is evicted first.
    explicit Sent_packet_buffer(std::size_t capacity = 64);

    void store(Stored_frame frame);

    /// Find by (src, dst, seq) — the identity the header carries.
    const Stored_frame* lookup(const phy::Frame_header& header) const;

    bool contains(const phy::Frame_header& header) const;

    std::size_t size() const { return order_.size(); }

private:
    using Key = std::tuple<std::uint8_t, std::uint8_t, std::uint16_t>;
    static Key key_of(const phy::Frame_header& header);

    std::size_t capacity_;
    std::map<Key, Stored_frame> frames_;
    std::deque<Key> order_;
};

/// A shared, immutable empty buffer for receivers with nothing known
/// (clean hops, snoops).  Constructing a fresh Sent_packet_buffer per
/// receive would heap-allocate in the steady state; this one is built
/// once and only ever read.
const Sent_packet_buffer& empty_sent_packet_buffer();

} // namespace anc
