#include "core/sent_packet_buffer.h"

#include <algorithm>
#include <stdexcept>

namespace anc {

Sent_packet_buffer::Sent_packet_buffer(std::size_t capacity)
    : capacity_{capacity}
{
    if (capacity == 0)
        throw std::invalid_argument{"Sent_packet_buffer: capacity must be positive"};
}

Sent_packet_buffer::Key Sent_packet_buffer::key_of(const phy::Frame_header& header)
{
    return {header.src, header.dst, header.seq};
}

void Sent_packet_buffer::store(Stored_frame frame)
{
    const Key key = key_of(frame.header);
    const auto [it, inserted] = frames_.insert_or_assign(key, std::move(frame));
    (void)it;
    if (inserted) {
        order_.push_back(key);
        if (order_.size() > capacity_) {
            frames_.erase(order_.front());
            order_.pop_front();
        }
    }
}

const Stored_frame* Sent_packet_buffer::lookup(const phy::Frame_header& header) const
{
    const auto it = frames_.find(key_of(header));
    return it == frames_.end() ? nullptr : &it->second;
}

bool Sent_packet_buffer::contains(const phy::Frame_header& header) const
{
    return frames_.count(key_of(header)) > 0;
}

const Sent_packet_buffer& empty_sent_packet_buffer()
{
    static const Sent_packet_buffer empty{1};
    return empty;
}

} // namespace anc
