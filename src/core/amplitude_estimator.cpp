#include "core/amplitude_estimator.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "dsp/energy_scan.h"
#include "dsp/workspace.h"

namespace anc {

namespace {

struct Window_stats {
    double mu_raw = 0.0;    // mean |y|^2 including noise
    double sigma_raw = 0.0; // mean of |y|^2 over samples with |y|^2 > mu_raw
};

Window_stats energy_stats(dsp::Signal_view window)
{
    Window_stats stats;
    auto energies = dsp::Workspace::current().reals();
    dsp::sample_energies_into(window, *energies);
    const std::vector<double>& e = *energies;
    double sum = 0.0;
    for (const double v : e)
        sum += v;
    stats.mu_raw = sum / static_cast<double>(e.size());

    // sigma as defined in §6.2: (2/N) * sum of energies above the mean.
    // With random phase offsets, about half the samples land above the
    // mean, so the 2/N prefactor makes this the conditional expectation
    // E[|y|^2 | |y|^2 > mu].
    //
    // The accumulation is branchless: under interference roughly every
    // other sample crosses the mean, so the old data-driven branch
    // mispredicted constantly; the select compiles to a cmov/blend and
    // the loop pipelines.  Byte-identical to the guarded form — adding
    // +0.0 to a non-negative partial sum is the identity, and energies
    // are non-negative — so the serial chain's value is unchanged.
    const double mu = stats.mu_raw;
    double above = 0.0;
    for (const double v : e)
        above += v > mu ? v : 0.0;
    stats.sigma_raw = 2.0 * above / static_cast<double>(e.size());
    return stats;
}

} // namespace

std::optional<Amplitude_estimate> estimate_amplitudes(dsp::Signal_view overlap,
                                                      double noise_power,
                                                      std::size_t min_window)
{
    if (overlap.size() < min_window)
        return std::nullopt;

    const Window_stats stats = energy_stats(overlap);
    const double mu = stats.mu_raw - noise_power;
    const double sigma = stats.sigma_raw - noise_power;
    if (mu <= 0.0)
        return std::nullopt;

    // 4AB/pi = sigma - mu  =>  AB = pi (sigma - mu) / 4.
    const double product = std::max(std::numbers::pi * (sigma - mu) / 4.0, 0.0);
    // A^2 and B^2 are the roots of z^2 - mu z + (AB)^2 = 0.
    double discriminant = mu * mu - 4.0 * product * product;
    if (discriminant < 0.0)
        discriminant = 0.0; // estimation noise near A == B
    const double root = std::sqrt(discriminant);
    const double a2 = (mu + root) / 2.0;
    const double b2 = (mu - root) / 2.0;
    if (b2 < 0.0)
        return std::nullopt;

    Amplitude_estimate estimate;
    estimate.a = std::sqrt(a2);
    estimate.b = std::sqrt(b2);
    estimate.mu = mu;
    estimate.sigma = sigma;
    if (estimate.a <= 0.0 || estimate.b <= 0.0)
        return std::nullopt;
    return estimate;
}

std::optional<Amplitude_estimate> estimate_with_known_amplitude(dsp::Signal_view overlap,
                                                                double noise_power,
                                                                double known_amplitude,
                                                                std::size_t min_window)
{
    if (overlap.size() < min_window || known_amplitude <= 0.0)
        return std::nullopt;

    const Window_stats stats = energy_stats(overlap);
    const double mu = stats.mu_raw - noise_power;
    const double b2 = mu - known_amplitude * known_amplitude;
    if (b2 <= 0.0)
        return std::nullopt;

    Amplitude_estimate estimate;
    estimate.a = known_amplitude;
    estimate.b = std::sqrt(b2);
    estimate.mu = mu;
    estimate.sigma = stats.sigma_raw - noise_power;
    return estimate;
}

std::optional<Amplitude_estimate> estimate_amplitudes_by_variance(dsp::Signal_view overlap,
                                                                  double noise_power,
                                                                  std::size_t min_window)
{
    if (overlap.size() < min_window)
        return std::nullopt;

    auto energies = dsp::Workspace::current().reals();
    dsp::sample_energies_into(overlap, *energies);
    const std::vector<double>& e = *energies;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (const double v : e) {
        sum += v;
        sum_sq += v * v;
    }
    const auto n = static_cast<double>(e.size());
    const double mean = sum / n;
    const double variance = std::max(sum_sq / n - mean * mean, 0.0);

    const double mu = mean - noise_power;
    if (mu <= 0.0)
        return std::nullopt;
    // Noise contributes 2*mean_signal*sigma^2 (cross term) + sigma^4 to
    // the energy variance; remove it before reading off 2(AB)^2.
    const double noise_variance = 2.0 * mu * noise_power + noise_power * noise_power;
    const double signal_variance = std::max(variance - noise_variance, 0.0);
    const double product = std::sqrt(signal_variance / 2.0);

    double discriminant = mu * mu - 4.0 * product * product;
    if (discriminant < 0.0)
        discriminant = 0.0;
    const double root = std::sqrt(discriminant);
    const double a2 = (mu + root) / 2.0;
    const double b2 = (mu - root) / 2.0;
    if (b2 < 0.0)
        return std::nullopt;

    Amplitude_estimate estimate;
    estimate.a = std::sqrt(a2);
    estimate.b = std::sqrt(b2);
    estimate.mu = mu;
    estimate.sigma = mu + 4.0 * product / std::numbers::pi; // Eq. 6 equivalent
    if (estimate.a <= 0.0 || estimate.b <= 0.0)
        return std::nullopt;
    return estimate;
}

double amplitude_from_clean_region(dsp::Signal_view region, double noise_power)
{
    const double power = std::max(dsp::mean_energy(region) - noise_power, 0.0);
    return std::sqrt(power);
}

} // namespace anc
