// The full ANC receive pipeline — Algorithm 1 of the paper.
//
//   energy detect -> interference detect
//     clean     -> standard MSK receive
//     collision -> read the head header (forward) and the tail header
//                  (through the time-reversal transform, §7.4); whichever
//                  matches a frame in the sent/overheard buffer decides
//                  whether we decode forward (our packet started first —
//                  Alice) or backward (ours ended last — Bob); align via
//                  the pilot, estimate amplitudes, run the interference
//                  decoder, then find the unknown packet's pilot in the
//                  decoded bit stream and deframe it.
//     neither header known -> report a forward candidate (the relay may
//                  amplify-and-forward it, §7.5) or a failure.

#pragma once

#include <optional>

#include "core/interference_decoder.h"
#include "core/sent_packet_buffer.h"
#include "dsp/sample.h"
#include "phy/detector.h"
#include "phy/modem.h"

namespace anc {

enum class Receive_status {
    no_packet,            // nothing above the noise floor
    clean,                // a single, successfully decoded packet
    decoded_interference, // collision decoded via ANC
    forward_candidate,    // collision of two unknown packets with readable
                          // headers — relay material
    failed,               // energy present but nothing decodable
};

/// Where an attempted interference decode gave up (diagnostics).
enum class Decode_failure {
    none,            // succeeded
    no_known_header, // neither clean header matched the buffer
    no_overlap,      // interference detector found no collision region
    no_amplitudes,   // amplitude estimation degenerated
    no_unknown_pilot,// the unknown packet's pilot was not found
    bad_unknown_frame, // pilot found but the frame would not parse
};

struct Interference_diag {
    std::optional<phy::Frame_header> first_header;  // from the clean head
    std::optional<phy::Frame_header> second_header; // from the clean tail
    bool backward = false;       // decoded in the time-reversed domain
    double est_known_amp = 0.0;  // estimated amplitude of the known signal
    double est_unknown_amp = 0.0;
    std::size_t overlap_begin = 0;
    std::size_t overlap_end = 0;
    double mean_match_error = 0.0; // mean Eq. 8 error over the collision
    std::size_t unknown_pilot_errors = 0;
    Decode_failure failure = Decode_failure::none;
};

struct Receive_outcome {
    Receive_status status = Receive_status::no_packet;
    std::optional<phy::Received_frame> frame;
    Interference_diag diag;
};

struct Anc_receiver_config {
    phy::Modem_config modem{};
    phy::Packet_detector::Config packet_detector{};
    phy::Interference_detector::Config interference_detector{};
    /// How many bit positions from the head to scan for the leading pilot
    /// (must cover the maximum MAC jitter, §7.2: 8 slots of 140 symbols by
    /// default, plus detector slop).
    std::size_t pilot_search_span = 1536;
    /// Error tolerance when hunting the *unknown* packet's pilot inside
    /// the interference-decoded bit stream (noisier than a clean region).
    std::size_t unknown_pilot_max_errors = 10;
    /// Minimum samples of clean, known-only prefix needed to trust the
    /// prefix amplitude estimate.
    std::size_t min_prefix = 24;
    /// Ablation switch: ignore the prefix refinement and use the paper's
    /// pure mu/sigma amplitude estimator (§6.2) alone.
    bool mu_sigma_only = false;
};

class Anc_receiver {
public:
    /// `profile` selects the math kernels of the interference decoder
    /// (Eq. 7–8 atan2): the default keeps the historical bit-exact path;
    /// the sims pass their run-level math profile down here.
    Anc_receiver(Anc_receiver_config config, double noise_power,
                 dsp::Math_profile profile = dsp::Math_profile::exact);

    dsp::Math_profile math_profile() const { return decoder_.math_profile(); }

    /// Process one received round.  `buffer` holds the frames this node
    /// sent or overheard (§7.3).
    Receive_outcome receive(dsp::Signal_view stream, const Sent_packet_buffer& buffer) const;

    double noise_power() const { return noise_power_; }
    const Anc_receiver_config& config() const { return config_; }

private:
    /// `analyzed` optionally carries the interference report of exactly
    /// `domain_slice` (the forward domain is analyzed during receive()
    /// already); nullptr means analyze here.
    std::optional<phy::Received_frame> decode_interfered(
        dsp::Signal_view domain_slice,
        std::size_t pilot_pos,
        const Stored_frame& known,
        bool backward,
        Interference_diag& diag,
        const phy::Interference_report* analyzed) const;

    Anc_receiver_config config_;
    double noise_power_;
    phy::Modem modem_;
    phy::Packet_detector packet_detector_;
    phy::Interference_detector interference_detector_;
    Interference_decoder decoder_;
};

} // namespace anc
