// Estimating the two interfering amplitudes A and B (§6.2).
//
// Over a window of interfered samples with whitened (random-looking) bits:
//     mu    = E[|y|^2]                    = A^2 + B^2            (Eq. 5)
//     sigma = E[|y|^2 given |y|^2 > mu]   = A^2 + B^2 + 4AB/pi   (Eq. 6)
// Two equations, two unknowns.  Receiver noise adds its power sigma_n^2 to
// both statistics, so both are compensated before solving.
//
// Because Alice's and Bob's packets deliberately overlap only partially
// (§7.2), the receiver usually also has a clean, known-signal-only prefix;
// its energy gives a direct estimate of A that is more stable than the
// mu/sigma split.  Both estimators are provided; the receiver uses the
// prefix hint when available (ablation: bench/ablation_amplitude).

#pragma once

#include <optional>

#include "dsp/sample.h"

namespace anc {

struct Amplitude_estimate {
    double a = 0.0;     // amplitude assigned to the known signal
    double b = 0.0;     // amplitude assigned to the unknown signal
    double mu = 0.0;    // noise-compensated mean energy (= a^2 + b^2)
    double sigma = 0.0; // noise-compensated above-mean energy statistic
};

/// Paper estimator: solve Eqs. 5-6 over the overlap window.  Returns the
/// two amplitudes with `a >= b` (the equations cannot tell which signal is
/// which; the caller must assign roles).  Nothing if the window is shorter
/// than `min_window` samples or the statistics degenerate.
std::optional<Amplitude_estimate> estimate_amplitudes(dsp::Signal_view overlap,
                                                      double noise_power,
                                                      std::size_t min_window = 32);

/// Prefix-refined estimator: the known signal's amplitude was measured
/// from an interference-free region (`known_amplitude`); the unknown's
/// follows from mu = a^2 + b^2 over the overlap window.
std::optional<Amplitude_estimate> estimate_with_known_amplitude(dsp::Signal_view overlap,
                                                                double noise_power,
                                                                double known_amplitude,
                                                                std::size_t min_window = 32);

/// Variance-based estimator: var(|y|^2) = 2 (AB)^2 regardless of the
/// phase-offset distribution.  Eq. 6's 4AB/pi assumes cos(theta - phi)
/// sweeps uniformly, which holds on real radios (carrier-frequency offset
/// makes the relative phase drift) but fails for two drift-free MSK
/// signals, whose phase offsets live on a 4-point lattice.  On that
/// lattice E[cos] deviates from the paper's 2/pi, while E[cos^2] = 1/2
/// exactly — in *both* regimes — so this estimator is distribution-free.
std::optional<Amplitude_estimate> estimate_amplitudes_by_variance(dsp::Signal_view overlap,
                                                                  double noise_power,
                                                                  std::size_t min_window = 32);

/// Amplitude of a single signal from an interference-free region:
/// sqrt(max(mean|y|^2 - sigma_n^2, 0)).
double amplitude_from_clean_region(dsp::Signal_view region, double noise_power);

} // namespace anc
