// Single-signal modem: packet bits <-> complex samples.
//
// Implements the left half of the paper's flow chart (Fig. 8): framer +
// scrambler + MSK modulator on the way out; MSK demodulator + pilot
// search + deframer on the way in.  Interference handling lives above
// this, in core/ (the ANC receiver), which reuses the same framing.

#pragma once

#include <cstdint>
#include <optional>

#include "dsp/msk.h"
#include "dsp/sample.h"
#include "dsp/scrambler.h"
#include "phy/detector.h"
#include "phy/frame.h"
#include "util/bits.h"

namespace anc::phy {

struct Received_frame {
    Frame_header header;
    Bits payload; // descrambled (application-domain) bits
    std::size_t pilot_errors = 0;
    std::size_t pilot_position = 0; // bit offset of the pilot in the stream
};

struct Modem_config {
    double amplitude = 1.0;
    std::uint16_t scrambler_seed = 0xACE1u;
    std::size_t pilot_max_errors = 6;
    /// Math profile of the modulator (demodulation is transcendental-free
    /// already).  The sims stamp their run-level profile here.
    dsp::Math_profile math_profile = dsp::Math_profile::exact;
};

class Modem {
public:
    explicit Modem(Modem_config config = {});

    /// On-air frame bits: payload whitened, then framed (Fig. 6 layout).
    Bits frame_bits(const Frame_header& header, std::span<const std::uint8_t> payload) const;

    /// Frame bits -> samples.  `initial_phase` models the transmitter's
    /// arbitrary oscillator phase.
    dsp::Signal modulate(std::span<const std::uint8_t> frame_bits,
                         double initial_phase = 0.0) const;

    /// As above, into a caller-owned buffer (cleared first).
    void modulate_into(std::span<const std::uint8_t> frame_bits,
                       double initial_phase, dsp::Signal& out) const;

    /// Convenience: header + payload -> samples.
    dsp::Signal modulate_frame(const Frame_header& header,
                               std::span<const std::uint8_t> payload,
                               double initial_phase = 0.0) const;

    /// Standard (no interference) receive over a sample stream: demodulate,
    /// locate the pilot, validate the header, verify the payload CRC,
    /// extract and de-whiten the payload.  Nothing if no valid frame is
    /// found or the payload fails its CRC — a clean receive must be
    /// verifiably clean (this is what stops the strong half of a
    /// comparable-power collision from being reported as a good packet,
    /// while genuine capture over *weak* interference still passes).
    std::optional<Received_frame> receive(dsp::Signal_view signal) const;

    /// The same receive over an already-demodulated bit stream — the ANC
    /// receiver demodulates once and probes the stream several ways, so
    /// this avoids repeating the demodulation.
    std::optional<Received_frame> receive_bits(std::span<const std::uint8_t> bits) const;

    /// Raw hard-decision demodulation (exposed for the ANC receiver).
    Bits demodulate_bits(dsp::Signal_view signal) const;

    /// As above, into a caller-owned buffer (cleared first).
    void demodulate_bits_into(dsp::Signal_view signal, Bits& out) const;

    /// De-whiten an on-air payload back to application bits.
    Bits descramble(std::span<const std::uint8_t> payload) const;

    const Modem_config& config() const { return config_; }

private:
    Modem_config config_;
    dsp::Scrambler scrambler_;
    dsp::Msk_demodulator demodulator_;
};

} // namespace anc::phy
