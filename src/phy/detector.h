// Packet and interference detection (§7.1).
//
// Packet presence: windowed mean energy at least `energy_threshold_db`
// above the receiver noise floor (paper default: 20 dB).
//
// Interference: MSK has a constant envelope, so the energy of a clean MSK
// packet varies only through noise.  When two MSK signals overlap, |y|^2
// swings between (A+B)^2 and (A-B)^2 — a variance of order 16 A^2 B^2
// (paper §7.1).  The paper states its threshold as "variance greater than
// 20 dB", which is not scale-free; we implement the same physical idea as
// an *excess-variance ratio*: measured var(|y|^2) divided by the variance
// a clean constant-envelope signal would show at the same power over the
// same noise floor (2*mean*sigma^2 + sigma^4).  Clean packet -> ratio ~ 1
// (0 dB); collision -> ratio grows with SNR.  Default threshold: 10 dB.
// DESIGN.md §5.3 records this substitution; bench/ablation_detector sweeps
// the threshold.

#pragma once

#include <cstddef>
#include <optional>

#include "dsp/sample.h"

namespace anc::phy {

struct Packet_bounds {
    std::size_t begin = 0; // first sample of the packet
    std::size_t end = 0;   // one past the last sample

    std::size_t size() const { return end - begin; }
};

/// Energy detector: finds the contiguous run of samples whose windowed
/// energy exceeds the threshold above the noise floor.
class Packet_detector {
public:
    struct Config {
        /// Detection threshold above the noise floor.  The paper quotes
        /// 20 dB as "typical"; we default slightly lower so that links
        /// with sub-unity gain still detect packets at an SNR of exactly
        /// 20 dB (the bottom of the operating range).
        double energy_threshold_db = 15.0;
        std::size_t window = 16;
    };

    explicit Packet_detector(double noise_power)
        : Packet_detector{noise_power, Config{}}
    {
    }
    Packet_detector(double noise_power, Config config);

    /// Bounds of the first packet in the stream, or nothing if the stream
    /// never rises above the detection threshold.
    std::optional<Packet_bounds> detect(dsp::Signal_view signal) const;

private:
    double noise_power_;
    Config config_;
};

struct Interference_report {
    bool interfered = false;
    // Sample range (relative to the analyzed span) where windows exceeded
    // the threshold; meaningful only when interfered.
    std::size_t overlap_begin = 0;
    std::size_t overlap_end = 0;
    double peak_ratio_db = 0.0; // largest excess-variance ratio observed
};

/// Collision detector via the excess-variance ratio.
class Interference_detector {
public:
    struct Config {
        double variance_threshold_db = 10.0;
        std::size_t window = 64;
        // A collision must sustain the ratio for at least this many
        // consecutive windows: isolated spikes (packet edges) don't count.
        std::size_t min_run = 16;
    };

    explicit Interference_detector(double noise_power)
        : Interference_detector{noise_power, Config{}}
    {
    }
    Interference_detector(double noise_power, Config config);

    Interference_report analyze(dsp::Signal_view packet) const;

private:
    double noise_power_;
    Config config_;
};

} // namespace anc::phy
