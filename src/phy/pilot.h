// Pilot sequence and tolerant bit-pattern search (§7.2).
//
// Every frame starts with a known 64-bit pseudo-random pilot and ends with
// the mirrored pilot.  A receiver locates a frame inside a sample stream
// by demodulating the interference-free part and sliding the pilot over
// the decoded bits.  The search tolerates a few bit errors, since the
// clean region is still subject to noise.
//
// The scan runs in the bit domain (PERF.md "Bit-domain pilot search"):
// the haystack's byte-per-bit Bits are packed LSB-first into 64-bit
// words once (workspace-leased scratch), the pattern is pre-packed into
// its 64 possible word alignments, and each candidate position costs a
// couple of XOR + popcount word operations instead of a byte compare
// per pattern bit.  The packed scan is a pure speedup: position, error
// count, clamping, and tie-breaks (earliest minimum, stop at zero) are
// exactly those of the historical byte loop, which survives as
// find_pattern_scalar — the validation and bench reference.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dsp/workspace.h"
#include "util/bits.h"

namespace anc::phy {

inline constexpr std::size_t pilot_length = 64;

/// The fixed 64-bit pseudo-random pilot (identical at all nodes).
const Bits& pilot_sequence();

/// The pilot reversed (what a frame carries at its tail).
const Bits& pilot_mirrored();

struct Pattern_match {
    std::size_t position = 0; // start index of the match in the haystack
    std::size_t errors = 0;   // Hamming distance at that position
};

/// A haystack packed LSB-first into 64-bit words held in workspace-leased
/// scratch: bit i of word i/64 is bits[i] & 1.  Build one per frame and
/// reuse it across every pattern search over the same bits (the receiver
/// packs its decoded stream once for the unknown-pilot loop and the
/// mirrored-tail recovery).
class Packed_bits {
public:
    explicit Packed_bits(std::span<const std::uint8_t> bits);

    std::size_t bit_count() const { return bit_count_; }

    /// The packed words, padded with enough zero words that a scan may
    /// read a full pattern stride at any valid start position.
    const std::uint64_t* words() const { return lease_->data(); }

private:
    dsp::Words_lease lease_;
    std::size_t bit_count_;
};

/// A pattern pre-packed into all 64 word alignments: copy s holds the
/// pattern's bits shifted up by s within a word stride, next to the mask
/// selecting them.  At start position p the scan XORs the haystack words
/// from p/64 against copy p%64 and popcounts under the mask — the 64
/// shifted copies turn every alignment into whole-word operations.
class Packed_pattern {
public:
    explicit Packed_pattern(std::span<const std::uint8_t> pattern);

    std::size_t length() const { return length_; }

    /// Words per shifted copy: ceil((63 + length) / 64).
    std::size_t stride() const { return stride_; }

    const std::uint64_t* shifted(std::size_t shift) const
    {
        return shifted_.data() + shift * stride_;
    }
    const std::uint64_t* mask(std::size_t shift) const
    {
        return masks_.data() + shift * stride_;
    }

private:
    std::size_t length_;
    std::size_t stride_;
    std::vector<std::uint64_t> shifted_; // 64 copies, stride_ words each
    std::vector<std::uint64_t> masks_;
};

/// The pilot / mirrored pilot pre-packed once per process.
const Packed_pattern& pilot_packed();
const Packed_pattern& pilot_mirrored_packed();

/// Best (fewest-errors) alignment of `pattern` inside `bits`, scanning
/// start positions in [from, to]; `to` is clamped so the pattern fits.
/// Returns nothing if the pattern cannot fit or no alignment has at most
/// `max_errors` mismatches.  Ties resolve to the earliest position.
std::optional<Pattern_match> find_pattern(std::span<const std::uint8_t> bits,
                                          std::span<const std::uint8_t> pattern,
                                          std::size_t from,
                                          std::size_t to,
                                          std::size_t max_errors);

/// The same search over a pre-packed haystack and pattern — what callers
/// issuing several searches against the same bits use to pack only once.
std::optional<Pattern_match> find_pattern(const Packed_bits& haystack,
                                          const Packed_pattern& pattern,
                                          std::size_t from,
                                          std::size_t to,
                                          std::size_t max_errors);

/// The historical byte-per-bit scan, uninstrumented: the reference the
/// property tests compare the packed scan against, and the bench's
/// `pilot_search` stage (PERF.md).  Not used on any hot path.
std::optional<Pattern_match> find_pattern_scalar(std::span<const std::uint8_t> bits,
                                                 std::span<const std::uint8_t> pattern,
                                                 std::size_t from,
                                                 std::size_t to,
                                                 std::size_t max_errors);

/// Convenience: search the pilot across the whole sequence.
std::optional<Pattern_match> find_pilot(std::span<const std::uint8_t> bits,
                                        std::size_t max_errors = 6);

} // namespace anc::phy
