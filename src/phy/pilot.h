// Pilot sequence and tolerant bit-pattern search (§7.2).
//
// Every frame starts with a known 64-bit pseudo-random pilot and ends with
// the mirrored pilot.  A receiver locates a frame inside a sample stream
// by demodulating the interference-free part and sliding the pilot over
// the decoded bits.  The search tolerates a few bit errors, since the
// clean region is still subject to noise.

#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "util/bits.h"

namespace anc::phy {

inline constexpr std::size_t pilot_length = 64;

/// The fixed 64-bit pseudo-random pilot (identical at all nodes).
const Bits& pilot_sequence();

/// The pilot reversed (what a frame carries at its tail).
const Bits& pilot_mirrored();

struct Pattern_match {
    std::size_t position = 0; // start index of the match in the haystack
    std::size_t errors = 0;   // Hamming distance at that position
};

/// Best (fewest-errors) alignment of `pattern` inside `bits`, scanning
/// start positions in [from, to]; `to` is clamped so the pattern fits.
/// Returns nothing if the pattern cannot fit or no alignment has at most
/// `max_errors` mismatches.  Ties resolve to the earliest position.
std::optional<Pattern_match> find_pattern(std::span<const std::uint8_t> bits,
                                          std::span<const std::uint8_t> pattern,
                                          std::size_t from,
                                          std::size_t to,
                                          std::size_t max_errors);

/// Convenience: search the pilot across the whole sequence.
std::optional<Pattern_match> find_pilot(std::span<const std::uint8_t> bits,
                                        std::size_t max_errors = 6);

} // namespace anc::phy
