// Frame header (Fig. 6): source, destination, sequence number.
//
// The ANC receiver uses the header to pick the right packet out of its
// sent-packet buffer (§7.3), so the header must be self-checking: a
// CRC-16 guards against trusting a garbled header.  The header also
// carries the payload length so the receiver knows the frame extent.
//
// Wire layout (64 bits):  src:8  dst:8  seq:16  payload_bits:16  crc16:16

#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "util/bits.h"

namespace anc::phy {

inline constexpr std::size_t header_length = 64;

struct Frame_header {
    std::uint8_t src = 0;
    std::uint8_t dst = 0;
    std::uint16_t seq = 0;
    std::uint16_t payload_bits = 0;

    friend bool operator==(const Frame_header&, const Frame_header&) = default;
};

/// Serialize to 64 bits including the CRC.
Bits encode_header(const Frame_header& header);

/// Parse 64 bits; nothing if the span is short or the CRC fails.
std::optional<Frame_header> decode_header(std::span<const std::uint8_t> bits);

} // namespace anc::phy
