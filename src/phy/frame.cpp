#include "phy/frame.h"

#include "phy/pilot.h"
#include "util/crc.h"
#include "util/obs.h"

namespace anc::phy {

Bits build_frame(const Frame_header& header, std::span<const std::uint8_t> payload)
{
    const Bits header_bits = encode_header(header);
    Bits crc_bits;
    append_uint(crc_bits, crc32(payload), static_cast<int>(crc_length));

    Bits frame;
    frame.reserve(frame_length(payload.size()));
    const Bits& pilot = pilot_sequence();
    frame.insert(frame.end(), pilot.begin(), pilot.end());
    frame.insert(frame.end(), header_bits.begin(), header_bits.end());
    frame.insert(frame.end(), crc_bits.begin(), crc_bits.end());
    frame.insert(frame.end(), payload.begin(), payload.end());
    const Bits tail_crc = mirrored(crc_bits);
    frame.insert(frame.end(), tail_crc.begin(), tail_crc.end());
    const Bits tail_header = mirrored(header_bits);
    frame.insert(frame.end(), tail_header.begin(), tail_header.end());
    const Bits& tail_pilot = pilot_mirrored();
    frame.insert(frame.end(), tail_pilot.begin(), tail_pilot.end());
    return frame;
}

std::optional<Parsed_frame> parse_frame_at(std::span<const std::uint8_t> bits,
                                           std::size_t pilot_pos)
{
    const std::size_t header_pos = pilot_pos + pilot_length;
    if (header_pos + header_length + crc_length > bits.size())
        return std::nullopt;
    const auto header = decode_header(bits.subspan(header_pos, header_length));
    if (!header)
        return std::nullopt;

    const std::size_t crc_pos = header_pos + header_length;
    const std::size_t payload_pos = crc_pos + crc_length;
    if (payload_pos + header->payload_bits > bits.size())
        return std::nullopt;

    Parsed_frame parsed;
    parsed.header = *header;
    const auto payload = bits.subspan(payload_pos, header->payload_bits);
    parsed.payload.assign(payload.begin(), payload.end());
    const auto crc_read = static_cast<std::uint32_t>(
        read_uint(bits, crc_pos, static_cast<int>(crc_length)));
    parsed.crc_ok = (crc32(payload) == crc_read);
    obs::count(parsed.crc_ok ? obs::Counter::crc_pass : obs::Counter::crc_fail);
    return parsed;
}

} // namespace anc::phy
