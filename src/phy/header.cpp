#include "phy/header.h"

#include "util/crc.h"

namespace anc::phy {

Bits encode_header(const Frame_header& header)
{
    Bits bits;
    bits.reserve(header_length);
    append_uint(bits, header.src, 8);
    append_uint(bits, header.dst, 8);
    append_uint(bits, header.seq, 16);
    append_uint(bits, header.payload_bits, 16);
    const std::uint16_t crc = crc16(bits);
    append_uint(bits, crc, 16);
    return bits;
}

std::optional<Frame_header> decode_header(std::span<const std::uint8_t> bits)
{
    if (bits.size() < header_length)
        return std::nullopt;
    const auto body = bits.first(48);
    const auto crc_read = static_cast<std::uint16_t>(read_uint(bits, 48, 16));
    if (crc16(body) != crc_read)
        return std::nullopt;
    Frame_header header;
    header.src = static_cast<std::uint8_t>(read_uint(bits, 0, 8));
    header.dst = static_cast<std::uint8_t>(read_uint(bits, 8, 8));
    header.seq = static_cast<std::uint16_t>(read_uint(bits, 16, 16));
    header.payload_bits = static_cast<std::uint16_t>(read_uint(bits, 32, 16));
    return header;
}

} // namespace anc::phy
