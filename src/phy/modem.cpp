#include "phy/modem.h"

#include "dsp/workspace.h"
#include "phy/pilot.h"
#include "util/obs.h"

namespace anc::phy {

Modem::Modem(Modem_config config)
    : config_{config}, scrambler_{config.scrambler_seed}
{
}

Bits Modem::frame_bits(const Frame_header& header, std::span<const std::uint8_t> payload) const
{
    const Bits whitened = scrambler_.apply(payload);
    return build_frame(header, whitened);
}

dsp::Signal Modem::modulate(std::span<const std::uint8_t> frame_bits,
                            double initial_phase) const
{
    const obs::Stage_timer timer{obs::Stage::modulate};
    const dsp::Msk_modulator modulator{config_.amplitude, initial_phase,
                                       config_.math_profile};
    return modulator.modulate(frame_bits);
}

void Modem::modulate_into(std::span<const std::uint8_t> frame_bits,
                          double initial_phase, dsp::Signal& out) const
{
    const obs::Stage_timer timer{obs::Stage::modulate};
    const dsp::Msk_modulator modulator{config_.amplitude, initial_phase,
                                       config_.math_profile};
    modulator.modulate_into(frame_bits, out);
}

dsp::Signal Modem::modulate_frame(const Frame_header& header,
                                  std::span<const std::uint8_t> payload,
                                  double initial_phase) const
{
    return modulate(frame_bits(header, payload), initial_phase);
}

Bits Modem::demodulate_bits(dsp::Signal_view signal) const
{
    const obs::Stage_timer timer{obs::Stage::demodulate};
    return demodulator_.demodulate(signal);
}

void Modem::demodulate_bits_into(dsp::Signal_view signal, Bits& out) const
{
    const obs::Stage_timer timer{obs::Stage::demodulate};
    demodulator_.demodulate_into(signal, out);
}

Bits Modem::descramble(std::span<const std::uint8_t> payload) const
{
    return scrambler_.apply(payload);
}

std::optional<Received_frame> Modem::receive(dsp::Signal_view signal) const
{
    auto bits = dsp::Workspace::current().bits();
    {
        const obs::Stage_timer timer{obs::Stage::demodulate};
        demodulator_.demodulate_into(signal, *bits);
    }
    return receive_bits(*bits);
}

std::optional<Received_frame> Modem::receive_bits(std::span<const std::uint8_t> bits) const
{
    const auto match = find_pilot(bits, config_.pilot_max_errors);
    if (!match)
        return std::nullopt;
    const auto parsed = parse_frame_at(bits, match->position);
    if (!parsed || !parsed->crc_ok)
        return std::nullopt;

    Received_frame frame;
    frame.header = parsed->header;
    frame.payload = descramble(parsed->payload);
    frame.pilot_errors = match->errors;
    frame.pilot_position = match->position;
    return frame;
}

} // namespace anc::phy
