#include "phy/pilot.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/obs.h"
#include "util/rng.h"
#include "util/simd.h"

namespace anc::phy {

namespace {

/// Gather the LSBs of 8 consecutive 0/1 bytes into bits 0..7.  The
/// multiply places byte j's bit at position 8j + 7(8-j); all 64 partial
/// products land on distinct bit positions (8j ≡ 7i has no solutions in
/// range besides the diagonal), so the sum is carry-free and bits 56..63
/// of the product read [b0..b7] exactly.
inline std::uint64_t gather8_lsb(const std::uint8_t* p)
{
    std::uint64_t chunk;
    std::memcpy(&chunk, p, sizeof chunk);
    return ((chunk & 0x0101010101010101ULL) * 0x0102040810204080ULL) >> 56;
}

} // namespace

const Bits& pilot_sequence()
{
    // Generated once from a fixed seed: the pilot is part of the protocol,
    // identical at every node, chosen pseudo-randomly (§7.2) so it is
    // unlikely to appear inside scrambled payload.
    static const Bits pilot = [] {
        Pcg32 rng{0x414e435f50494c4full /* "ANC_PILO" */, 7};
        return random_bits(pilot_length, rng);
    }();
    return pilot;
}

const Bits& pilot_mirrored()
{
    static const Bits mirror = mirrored(pilot_sequence());
    return mirror;
}

Packed_bits::Packed_bits(std::span<const std::uint8_t> bits)
    : lease_{dsp::Workspace::current().words()}, bit_count_{bits.size()}
{
    // Two zero pad words cover the widest read any in-range start can
    // issue: position p reads words p/64 .. p/64 + stride - 1, and with
    // p + L <= n that top index is at most (n + 126)/64 - 1 <
    // ceil(n/64) + 2 for every pattern length L >= 1.
    const std::size_t word_count = (bits.size() + 63) / 64;
    lease_->assign(word_count + 2, 0);
    std::uint64_t* words = lease_->data();
    std::size_t i = 0;
    for (; i + 8 <= bits.size(); i += 8)
        words[i >> 6] |= gather8_lsb(bits.data() + i) << (i & 63);
    for (; i < bits.size(); ++i)
        words[i >> 6] |= static_cast<std::uint64_t>(bits[i] & 1u) << (i & 63);
}

Packed_pattern::Packed_pattern(std::span<const std::uint8_t> pattern)
    : length_{pattern.size()}, stride_{(pattern.size() + 126) / 64}
{
    if (length_ == 0)
        return; // degenerate — find_pattern never scans it
    shifted_.assign(64 * stride_, 0);
    masks_.assign(64 * stride_, 0);
    for (std::size_t shift = 0; shift < 64; ++shift) {
        std::uint64_t* copy = shifted_.data() + shift * stride_;
        std::uint64_t* mask = masks_.data() + shift * stride_;
        for (std::size_t i = 0; i < length_; ++i) {
            const std::size_t bit = shift + i;
            copy[bit >> 6] |= static_cast<std::uint64_t>(pattern[i] & 1u)
                              << (bit & 63);
            mask[bit >> 6] |= std::uint64_t{1} << (bit & 63);
        }
    }
}

const Packed_pattern& pilot_packed()
{
    static const Packed_pattern packed{pilot_sequence()};
    return packed;
}

const Packed_pattern& pilot_mirrored_packed()
{
    static const Packed_pattern packed{pilot_mirrored()};
    return packed;
}

namespace {

// The scan tracks its running result as a single packed key,
// (errors << 48) | start: taking the minimum key is exactly the scalar
// reference's "first position with the fewest errors" rule (fewer
// errors always wins; among equal error counts the lower start wins),
// and a zero-error key makes errors_of(key) == 0 the reference's
// break-on-perfect-match condition.  errors <= 127 and every start fits
// well inside 48 bits, so no legitimate key collides with no_match.
constexpr std::uint64_t no_match = ~std::uint64_t{0};

inline std::size_t errors_of(std::uint64_t key)
{
    return static_cast<std::size_t>(key >> 48);
}

/// Position-major XOR + popcount scan over starts [from, to], any
/// stride.  The per-word early exit fires only when errors already
/// exceed max_errors — positions it abandons are disqualified either
/// way, so the accumulated key is identical to the reference's result.
/// Dispatches to the popcnt kernel when the SIMD backend is up: this TU
/// builds at the baseline ISA, where std::popcount is a libgcc call per
/// word (see util/simd.h); the kernel is bit-identical, just faster.
void scan_starts(const std::uint64_t* words,
                 const Packed_pattern& pattern,
                 std::size_t from,
                 std::size_t to,
                 std::size_t max_errors,
                 std::uint64_t& best_key)
{
    if (simd::kernels_active()) {
        simd::detail::pilot_scan_starts_popcnt(words, pattern.shifted(0),
                                               pattern.mask(0),
                                               pattern.stride(), from, to,
                                               max_errors, &best_key);
        return;
    }
    const std::size_t stride = pattern.stride();
    for (std::size_t start = from; start <= to; ++start) {
        const std::uint64_t* hay = words + (start >> 6);
        const std::uint64_t* copy = pattern.shifted(start & 63);
        const std::uint64_t* mask = pattern.mask(start & 63);
        std::size_t errors = 0;
        for (std::size_t k = 0; k < stride && errors <= max_errors; ++k)
            errors += static_cast<std::size_t>(
                std::popcount((hay[k] ^ copy[k]) & mask[k]));
        if (errors <= max_errors) {
            const std::uint64_t key =
                (static_cast<std::uint64_t>(errors) << 48) | start;
            best_key = std::min(best_key, key);
            if (errors == 0)
                break;
        }
    }
}

/// Stripe-major scan for 2-word patterns (every length in [2, 65], the
/// pilot included) over the word-aligned starts [64*w_lo, 64*w_hi + 63].
/// Fixing the shift in the outer loop keeps the pattern copy and mask in
/// registers, so the inner loop per start is two loads, two XOR+AND+
/// popcount pairs, and a branchless min — roughly 4x fewer instructions
/// than the position-major loop's per-start pattern-row indexing.  Visit
/// order differs from the reference, but the min-key reduction is order
/// independent.
void scan_words_striped(const std::uint64_t* words,
                        const Packed_pattern& pattern,
                        std::size_t w_lo,
                        std::size_t w_hi,
                        std::size_t max_errors,
                        std::uint64_t& best_key)
{
    if (simd::kernels_active()) {
        simd::detail::pilot_scan_striped_popcnt(words, pattern.shifted(0),
                                                pattern.mask(0), w_lo, w_hi,
                                                max_errors, &best_key);
        return;
    }
    for (std::size_t s = 0; s < 64; ++s) {
        const std::uint64_t c0 = pattern.shifted(s)[0];
        const std::uint64_t c1 = pattern.shifted(s)[1];
        const std::uint64_t m0 = pattern.mask(s)[0];
        const std::uint64_t m1 = pattern.mask(s)[1];
        for (std::size_t w = w_lo; w <= w_hi; ++w) {
            const auto errors = static_cast<std::size_t>(
                                    std::popcount((words[w] ^ c0) & m0)) +
                                static_cast<std::size_t>(
                                    std::popcount((words[w + 1] ^ c1) & m1));
            if (errors <= max_errors) {
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(errors) << 48) | (w * 64 + s);
                best_key = std::min(best_key, key);
            }
        }
    }
}

/// The sliding scan.  Semantics are pinned to the scalar reference
/// loop: clamp both bounds to the last fitting start, return the first
/// position with the fewest errors, stop scanning on a zero-error
/// match.  2-word patterns run stripe-major over the interior words in
/// chunks (so the zero-error break still skips the remainder of a long
/// span), with the ragged edges of [from, to] covered position-major.
std::optional<Pattern_match> scan_packed(const Packed_bits& haystack,
                                         const Packed_pattern& pattern,
                                         std::size_t from,
                                         std::size_t to,
                                         std::size_t max_errors)
{
    const std::size_t last_start = haystack.bit_count() - pattern.length();
    from = std::min(from, last_start);
    to = std::min(to, last_start);
    if (from > to)
        return std::nullopt;

    const std::uint64_t* words = haystack.words();
    std::uint64_t best_key = no_match;

    // Word w is interior when all 64 of its starts lie inside [from, to].
    const std::size_t w_lo = (from + 63) >> 6;
    const bool interior =
        pattern.stride() == 2 && to >= 63 && ((to - 63) >> 6) >= w_lo;
    if (!interior) {
        scan_starts(words, pattern, from, to, max_errors, best_key);
    } else {
        const std::size_t w_hi = (to - 63) >> 6;
        if (w_lo * 64 > from)
            scan_starts(words, pattern, from, w_lo * 64 - 1, max_errors,
                        best_key);
        constexpr std::size_t chunk_words = 16; // 1024 starts per zero check
        for (std::size_t w = w_lo; w <= w_hi && errors_of(best_key) != 0;
             w += chunk_words)
            scan_words_striped(words, pattern, w,
                               std::min(w_hi, w + chunk_words - 1), max_errors,
                               best_key);
        if (errors_of(best_key) != 0 && (w_hi + 1) * 64 <= to)
            scan_starts(words, pattern, (w_hi + 1) * 64, to, max_errors,
                        best_key);
    }

    if (best_key == no_match)
        return std::nullopt;
    return Pattern_match{best_key & ((std::uint64_t{1} << 48) - 1),
                         errors_of(best_key)};
}

void tally_outcome(const std::optional<Pattern_match>& best)
{
    if (best) {
        obs::count(obs::Counter::pilot_hits);
        obs::count(obs::Counter::pilot_hit_offset_sum, best->position);
        obs::count(obs::Counter::pilot_hit_error_sum, best->errors);
    } else {
        obs::count(obs::Counter::pilot_misses);
    }
}

} // namespace

std::optional<Pattern_match> find_pattern(std::span<const std::uint8_t> bits,
                                          std::span<const std::uint8_t> pattern,
                                          std::size_t from,
                                          std::size_t to,
                                          std::size_t max_errors)
{
    if (pattern.empty() || bits.size() < pattern.size()) {
        obs::count(obs::Counter::pilot_degenerate);
        return std::nullopt;
    }
    const obs::Stage_timer timer{obs::Stage::pilot_search};
    obs::count(obs::Counter::pilot_searches);
    const Packed_bits haystack{bits};
    // The two protocol patterns are pre-packed once per process; packing
    // an arbitrary pattern per call is a cold path (tests, tooling).
    const std::optional<Pattern_match> best = [&] {
        if (pattern.data() == pilot_sequence().data())
            return scan_packed(haystack, pilot_packed(), from, to, max_errors);
        if (pattern.data() == pilot_mirrored().data())
            return scan_packed(haystack, pilot_mirrored_packed(), from, to,
                               max_errors);
        return scan_packed(haystack, Packed_pattern{pattern}, from, to, max_errors);
    }();
    tally_outcome(best);
    return best;
}

std::optional<Pattern_match> find_pattern(const Packed_bits& haystack,
                                          const Packed_pattern& pattern,
                                          std::size_t from,
                                          std::size_t to,
                                          std::size_t max_errors)
{
    if (pattern.length() == 0 || haystack.bit_count() < pattern.length()) {
        obs::count(obs::Counter::pilot_degenerate);
        return std::nullopt;
    }
    const obs::Stage_timer timer{obs::Stage::pilot_search};
    obs::count(obs::Counter::pilot_searches);
    const std::optional<Pattern_match> best =
        scan_packed(haystack, pattern, from, to, max_errors);
    tally_outcome(best);
    return best;
}

std::optional<Pattern_match> find_pattern_scalar(std::span<const std::uint8_t> bits,
                                                 std::span<const std::uint8_t> pattern,
                                                 std::size_t from,
                                                 std::size_t to,
                                                 std::size_t max_errors)
{
    if (pattern.empty() || bits.size() < pattern.size())
        return std::nullopt;
    const std::size_t last_start = bits.size() - pattern.size();
    from = std::min(from, last_start);
    to = std::min(to, last_start);
    if (from > to)
        return std::nullopt;

    std::optional<Pattern_match> best;
    for (std::size_t start = from; start <= to; ++start) {
        std::size_t errors = 0;
        for (std::size_t i = 0; i < pattern.size() && errors <= max_errors; ++i)
            errors += (bits[start + i] != pattern[i]);
        if (errors <= max_errors && (!best || errors < best->errors)) {
            best = Pattern_match{start, errors};
            if (errors == 0)
                break;
        }
    }
    return best;
}

std::optional<Pattern_match> find_pilot(std::span<const std::uint8_t> bits,
                                        std::size_t max_errors)
{
    if (bits.size() < pilot_length)
        return std::nullopt;
    return find_pattern(bits, pilot_sequence(), 0, bits.size() - pilot_length, max_errors);
}

} // namespace anc::phy
