#include "phy/pilot.h"

#include <algorithm>

#include "util/obs.h"
#include "util/rng.h"

namespace anc::phy {

const Bits& pilot_sequence()
{
    // Generated once from a fixed seed: the pilot is part of the protocol,
    // identical at every node, chosen pseudo-randomly (§7.2) so it is
    // unlikely to appear inside scrambled payload.
    static const Bits pilot = [] {
        Pcg32 rng{0x414e435f50494c4full /* "ANC_PILO" */, 7};
        return random_bits(pilot_length, rng);
    }();
    return pilot;
}

const Bits& pilot_mirrored()
{
    static const Bits mirror = mirrored(pilot_sequence());
    return mirror;
}

std::optional<Pattern_match> find_pattern(std::span<const std::uint8_t> bits,
                                          std::span<const std::uint8_t> pattern,
                                          std::size_t from,
                                          std::size_t to,
                                          std::size_t max_errors)
{
    const obs::Stage_timer timer{obs::Stage::pilot_search};
    obs::count(obs::Counter::pilot_searches);
    if (pattern.empty() || bits.size() < pattern.size()) {
        obs::count(obs::Counter::pilot_misses);
        return std::nullopt;
    }
    const std::size_t last_start = bits.size() - pattern.size();
    from = std::min(from, last_start);
    to = std::min(to, last_start);
    if (from > to) {
        obs::count(obs::Counter::pilot_misses);
        return std::nullopt;
    }

    std::optional<Pattern_match> best;
    for (std::size_t start = from; start <= to; ++start) {
        std::size_t errors = 0;
        for (std::size_t i = 0; i < pattern.size() && errors <= max_errors; ++i)
            errors += (bits[start + i] != pattern[i]);
        if (errors <= max_errors && (!best || errors < best->errors)) {
            best = Pattern_match{start, errors};
            if (errors == 0)
                break;
        }
    }
    if (best) {
        obs::count(obs::Counter::pilot_hits);
        obs::count(obs::Counter::pilot_hit_offset_sum, best->position);
        obs::count(obs::Counter::pilot_hit_error_sum, best->errors);
    } else {
        obs::count(obs::Counter::pilot_misses);
    }
    return best;
}

std::optional<Pattern_match> find_pilot(std::span<const std::uint8_t> bits,
                                        std::size_t max_errors)
{
    if (bits.size() < pilot_length)
        return std::nullopt;
    return find_pattern(bits, pilot_sequence(), 0, bits.size() - pilot_length, max_errors);
}

} // namespace anc::phy
