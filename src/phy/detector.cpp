#include "phy/detector.h"

#include <algorithm>

#include "dsp/energy_scan.h"
#include "util/db.h"

namespace anc::phy {

Packet_detector::Packet_detector(double noise_power, Config config)
    : noise_power_{noise_power}, config_{config}
{
}

std::optional<Packet_bounds> Packet_detector::detect(dsp::Signal_view signal) const
{
    if (signal.size() < config_.window)
        return std::nullopt;
    const dsp::Energy_scan scan = dsp::scan_energy(signal, config_.window);
    const double threshold = noise_power_ * from_db(config_.energy_threshold_db);

    // First window above threshold marks the packet head.
    std::size_t first = scan.window_mean.size();
    for (std::size_t i = 0; i < scan.window_mean.size(); ++i) {
        if (scan.window_mean[i] > threshold) {
            first = i;
            break;
        }
    }
    if (first == scan.window_mean.size())
        return std::nullopt;

    // Last window above threshold marks the tail.
    std::size_t last = first;
    for (std::size_t i = scan.window_mean.size(); i-- > first;) {
        if (scan.window_mean[i] > threshold) {
            last = i;
            break;
        }
    }

    Packet_bounds bounds;
    bounds.begin = first;
    bounds.end = std::min(last + config_.window, signal.size());
    return bounds;
}

Interference_detector::Interference_detector(double noise_power, Config config)
    : noise_power_{noise_power}, config_{config}
{
}

Interference_report Interference_detector::analyze(dsp::Signal_view packet) const
{
    Interference_report report;
    if (packet.size() < config_.window)
        return report;

    const dsp::Energy_scan scan = dsp::scan_energy(packet, config_.window);
    const double threshold = from_db(config_.variance_threshold_db);
    const double sigma2 = noise_power_;

    // The overlap region is the *envelope* of every sustained
    // above-threshold run.  A single collision can show transient dips:
    // when the two carriers' relative phase drifts through +-pi/2 (CFO),
    // cos(theta - phi) passes zero and the envelope is momentarily
    // near-constant.  Taking the envelope instead of the longest run
    // keeps those dips from splitting one collision into two.
    std::size_t run = 0;
    std::size_t run_start = 0;
    std::size_t first_begin = 0;
    std::size_t last_end = 0;
    bool found = false;
    for (std::size_t i = 0; i < scan.window_variance.size(); ++i) {
        // Variance a clean constant-envelope signal of this power would
        // show: cross term 2*|s|^2*sigma^2 plus the noise-energy variance
        // sigma^4.  (|s|^2 ~ window mean minus the noise floor.)
        const double signal_power = std::max(scan.window_mean[i] - sigma2, 1e-12);
        const double clean_variance = 2.0 * signal_power * sigma2 + sigma2 * sigma2;
        const double ratio = scan.window_variance[i] / clean_variance;
        report.peak_ratio_db = std::max(report.peak_ratio_db, to_db(std::max(ratio, 1e-12)));
        if (ratio > threshold) {
            if (run == 0)
                run_start = i;
            ++run;
            if (run >= config_.min_run) {
                if (!found) {
                    first_begin = run_start;
                    found = true;
                }
                last_end = i + 1;
            }
        } else {
            run = 0;
        }
    }

    if (found) {
        report.interfered = true;
        report.overlap_begin = first_begin;
        report.overlap_end = std::min(last_end + config_.window, packet.size());
    }
    return report;
}

} // namespace anc::phy
