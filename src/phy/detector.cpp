#include "phy/detector.h"

#include <algorithm>

#include "dsp/energy_scan.h"
#include "dsp/workspace.h"
#include "util/db.h"
#include "util/obs.h"

namespace anc::phy {

Packet_detector::Packet_detector(double noise_power, Config config)
    : noise_power_{noise_power}, config_{config}
{
}

std::optional<Packet_bounds> Packet_detector::detect(dsp::Signal_view signal) const
{
    const obs::Stage_timer timer{obs::Stage::packet_detect};
    if (signal.size() < config_.window) {
        obs::count(obs::Counter::packet_detect_rejections);
        return std::nullopt;
    }
    dsp::Workspace& workspace = dsp::Workspace::current();
    auto energies = workspace.reals();
    auto window_mean = workspace.reals();
    // Mean-only scan: detection thresholds the window means and never
    // reads the variance series, so skipping it halves the scan (the
    // means are byte-identical — see scan_energy_mean_into).
    dsp::scan_energy_mean_into(signal, config_.window, *energies, *window_mean);
    const std::vector<double>& mean = *window_mean;
    const double threshold = noise_power_ * from_db(config_.energy_threshold_db);

    // Threshold scans in a block-vectorizable form: the inner 8-wide
    // any-above reduction has no break and compiles to vector compares,
    // so the scan streams through the (mostly sub-threshold) head and
    // tail at SIMD speed; only a hit block is re-scanned scalar.  The
    // found indices are exactly the sequential scan's (first/last
    // strictly-above window) — no FP arithmetic changes.
    constexpr std::size_t block = 8;

    // First window above threshold marks the packet head.
    std::size_t first = mean.size();
    std::size_t at = 0;
    for (; at + block <= mean.size(); at += block) {
        bool any = false;
        for (std::size_t j = 0; j < block; ++j)
            any |= mean[at + j] > threshold;
        if (any)
            break;
    }
    for (; at < mean.size(); ++at) {
        if (mean[at] > threshold) {
            first = at;
            break;
        }
    }
    if (first == mean.size()) {
        obs::count(obs::Counter::packet_detect_rejections);
        return std::nullopt;
    }

    // Last window above threshold marks the tail.
    std::size_t last = first;
    std::size_t end = mean.size();
    while (end - first >= block) {
        bool any = false;
        for (std::size_t j = 0; j < block; ++j)
            any |= mean[end - block + j] > threshold;
        if (any)
            break;
        end -= block;
    }
    for (std::size_t i = end; i-- > first;) {
        if (mean[i] > threshold) {
            last = i;
            break;
        }
    }

    obs::count(obs::Counter::packet_detect_triggers);
    Packet_bounds bounds;
    bounds.begin = first;
    bounds.end = std::min(last + config_.window, signal.size());
    return bounds;
}

Interference_detector::Interference_detector(double noise_power, Config config)
    : noise_power_{noise_power}, config_{config}
{
}

Interference_report Interference_detector::analyze(dsp::Signal_view packet) const
{
    const obs::Stage_timer timer{obs::Stage::interference_analyze};
    obs::count(obs::Counter::interference_analyses);
    Interference_report report;
    if (packet.size() < config_.window)
        return report;

    dsp::Workspace& workspace = dsp::Workspace::current();
    auto energies = workspace.reals();
    auto window_mean = workspace.reals();
    auto window_variance = workspace.reals();
    dsp::scan_energy_into(packet, config_.window, *energies, *window_mean,
                          *window_variance);
    const std::vector<double>& mean = *window_mean;
    const std::vector<double>& variance = *window_variance;
    const double threshold = from_db(config_.variance_threshold_db);
    const double sigma2 = noise_power_;

    // Hoist the per-window arithmetic — a max, two multiplies, and the
    // divide that dominated this loop — out of the run-tracking scan
    // into an element-wise pass that auto-vectorizes (4 divides per
    // step).  The energies scratch is dead after scan_energy_into, so
    // the ratios reuse it: no extra buffer, still zero allocations on a
    // warm workspace.  Per-window values are bit-identical to the fused
    // loop's (same operations, same order per element).
    std::vector<double>& ratios = *energies;
    ratios.resize(variance.size());
    for (std::size_t i = 0; i < variance.size(); ++i) {
        // Variance a clean constant-envelope signal of this power would
        // show: cross term 2*|s|^2*sigma^2 plus the noise-energy variance
        // sigma^4.  (|s|^2 ~ window mean minus the noise floor.)
        const double signal_power = std::max(mean[i] - sigma2, 1e-12);
        const double clean_variance = 2.0 * signal_power * sigma2 + sigma2 * sigma2;
        ratios[i] = variance[i] / clean_variance;
    }

    // The overlap region is the *envelope* of every sustained
    // above-threshold run.  A single collision can show transient dips:
    // when the two carriers' relative phase drifts through +-pi/2 (CFO),
    // cos(theta - phi) passes zero and the envelope is momentarily
    // near-constant.  Taking the envelope instead of the longest run
    // keeps those dips from splitting one collision into two.
    std::size_t run = 0;
    std::size_t run_start = 0;
    std::size_t first_begin = 0;
    std::size_t last_end = 0;
    bool found = false;
    // Track the peak ratio in linear space and convert to dB once at the
    // end: log10 is monotone, so max-then-log equals log-then-max, and
    // a per-window log10 was a measurable cost of every receive.  Ratios
    // are non-negative, so this reduction is order-independent and the
    // split from the run scan cannot change its value.
    double peak_ratio = 1e-12;
    for (std::size_t i = 0; i < ratios.size(); ++i) {
        const double ratio = ratios[i];
        peak_ratio = std::max(peak_ratio, ratio);
        if (ratio > threshold) {
            if (run == 0)
                run_start = i;
            ++run;
            if (run >= config_.min_run) {
                if (!found) {
                    first_begin = run_start;
                    found = true;
                }
                last_end = i + 1;
            }
        } else {
            run = 0;
        }
    }
    // Historical form: the running max started at 0 dB, so it never
    // reported below zero.
    report.peak_ratio_db = std::max(0.0, to_db(peak_ratio));

    if (found) {
        obs::count(obs::Counter::interference_detected);
        report.interfered = true;
        report.overlap_begin = first_begin;
        report.overlap_end = std::min(last_end + config_.window, packet.size());
    }
    return report;
}

} // namespace anc::phy
