// Frame layout (Fig. 6 plus §7.4), extended with a payload check.
//
//   [ pilot | header | crc | payload | mirror(crc) | mirror(header) | mirror(pilot) ]
//      64       64      32      N          32             64              64
//
// The pilot and header appear *mirrored* at the tail so that a receiver
// scanning the stream backwards (Bob, whose packet starts second) sees
// them in forward order.  The payload CRC-32 (over the on-air, whitened
// payload) plays the role of 802.11's FCS: a *clean* receive must pass
// it, which is what lets a receiver distinguish a genuinely clean (or
// captured-over-weak-interference) packet from the strong half of a
// comparable-power collision.  ANC interference decoding deliberately
// ignores it — those packets carry residual bit errors by design and are
// cleaned up by FEC (§11.2).
//
// The CRC is mirrored at the tail too, keeping the layout reversal-
// symmetric: a time-reversed frame is structurally a valid frame whose
// payload bits are reversed (and whose CRC field then refers to the
// un-reversed payload).

#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "phy/header.h"
#include "util/bits.h"

namespace anc::phy {

inline constexpr std::size_t crc_length = 32;
inline constexpr std::size_t frame_overhead_bits = 4 * 64 + 2 * crc_length;

/// Total frame length for a payload of `payload_bits` bits.
constexpr std::size_t frame_length(std::size_t payload_bits)
{
    return frame_overhead_bits + payload_bits;
}

/// Bit offsets of the frame fields.
struct Frame_offsets {
    std::size_t pilot = 0;
    std::size_t header = 0;
    std::size_t crc = 0;
    std::size_t payload = 0;
    std::size_t tail_crc = 0;
    std::size_t tail_header = 0;
    std::size_t tail_pilot = 0;
    std::size_t end = 0;
};

constexpr Frame_offsets frame_offsets(std::size_t payload_bits)
{
    Frame_offsets o;
    o.pilot = 0;
    o.header = 64;
    o.crc = 128;
    o.payload = 160;
    o.tail_crc = 160 + payload_bits;
    o.tail_header = o.tail_crc + crc_length;
    o.tail_pilot = o.tail_header + 64;
    o.end = o.tail_pilot + 64;
    return o;
}

/// Assemble the on-air bit sequence.  `payload` is taken as-is: whitening
/// (scrambling) is the modem's job and must already have happened.
Bits build_frame(const Frame_header& header, std::span<const std::uint8_t> payload);

struct Parsed_frame {
    Frame_header header;
    Bits payload;        // still in the whitened (on-air) domain
    bool crc_ok = false; // leading CRC field matches the payload
};

/// Parse a frame from `bits` starting at `pilot_pos` (the position where
/// the pilot was found).  Verifies the header CRC and that the frame
/// fits; the payload is extracted by length.  The payload CRC result is
/// *reported*, not enforced — clean receives require it, interference
/// decodes don't.  Tail fields are never required (they routinely overlap
/// interference).
std::optional<Parsed_frame> parse_frame_at(std::span<const std::uint8_t> bits,
                                           std::size_t pilot_pos);

} // namespace anc::phy
