#include "engine/sweep.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>

namespace anc::engine {

namespace {

void require_non_empty(bool non_empty, const char* axis)
{
    if (!non_empty)
        throw std::invalid_argument{std::string{"Sweep_grid: empty axis '"} + axis
                                    + "'"};
}

/// The schemes this scenario contributes to the grid, in the scenario's
/// canonical order.
std::vector<std::string> schemes_for(const Scenario& scenario, const Sweep_grid& grid)
{
    if (grid.schemes.empty())
        return scenario.schemes();
    std::vector<std::string> out;
    for (const std::string& scheme : scenario.schemes()) {
        if (std::find(grid.schemes.begin(), grid.schemes.end(), scheme)
            != grid.schemes.end())
            out.push_back(scheme);
    }
    return out;
}

/// The cartesian product of every non-scenario, non-scheme, non-repetition
/// axis, in the documented axis order (snr > alice > bob > payload >
/// exchanges > detector_threshold > interleave_rows > coherence_block >
/// mean_link_gain).  Scheme is left at its default; the caller stamps it.
std::vector<Scenario_config> point_configs(const Sweep_grid& grid)
{
    std::vector<Scenario_config> points;
    for (const double snr_db : grid.snr_db)
        for (const double alice_amplitude : grid.alice_amplitudes)
            for (const double bob_amplitude : grid.bob_amplitudes)
                for (const std::size_t payload_bits : grid.payload_bits)
                    for (const std::size_t exchanges : grid.exchanges)
                        for (const double threshold_db : grid.detector_thresholds_db)
                            for (const std::size_t rows : grid.interleave_rows)
                                for (const std::size_t block : grid.coherence_blocks)
                                    for (const double link_gain : grid.mean_link_gains) {
                                        Scenario_config config;
                                        config.snr_db = snr_db;
                                        config.alice_amplitude = alice_amplitude;
                                        config.bob_amplitude = bob_amplitude;
                                        config.payload_bits = payload_bits;
                                        config.exchanges = exchanges;
                                        config.receiver.interference_detector
                                            .variance_threshold_db = threshold_db;
                                        config.fec_interleave_rows = rows;
                                        config.coherence_block = block;
                                        config.mean_link_gain = link_gain;
                                        points.push_back(std::move(config));
                                    }
    return points;
}

} // namespace

std::vector<Sweep_task> expand(const Sweep_grid& grid, const Scenario_registry& registry)
{
    require_non_empty(!grid.scenarios.empty(), "scenarios");
    require_non_empty(!grid.snr_db.empty(), "snr_db");
    require_non_empty(!grid.alice_amplitudes.empty(), "alice_amplitudes");
    require_non_empty(!grid.bob_amplitudes.empty(), "bob_amplitudes");
    require_non_empty(!grid.payload_bits.empty(), "payload_bits");
    require_non_empty(!grid.exchanges.empty(), "exchanges");
    require_non_empty(!grid.detector_thresholds_db.empty(), "detector_thresholds_db");
    require_non_empty(!grid.interleave_rows.empty(), "interleave_rows");
    require_non_empty(!grid.coherence_blocks.empty(), "coherence_blocks");
    require_non_empty(!grid.mean_link_gains.empty(), "mean_link_gains");
    require_non_empty(!grid.math_profiles.empty(), "math_profiles");
    require_non_empty(grid.repetitions > 0, "repetitions");

    // Every requested scheme must be meaningful somewhere in the grid.
    std::set<std::string> unmatched{grid.schemes.begin(), grid.schemes.end()};

    const std::vector<Scenario_config> points = point_configs(grid);

    std::vector<Sweep_task> tasks;
    std::size_t scenario_seed_base = 0;
    for (const std::string& scenario_name : grid.scenarios) {
        const Scenario& scenario = registry.at(scenario_name);
        const std::vector<std::string> schemes = schemes_for(scenario, grid);
        for (const std::string& scheme : schemes)
            unmatched.erase(scheme);
        std::size_t scheme_block = 0; // tasks per (scheme, profile) block
        for (const std::string& scheme : schemes) {
            // The math-profile axis is seed-collapsed exactly like the
            // scheme axis: the offset restarts per profile, so tasks
            // that differ only in scheme and/or profile share a
            // seed_index (paired channel realizations).
            for (const dsp::Math_profile profile : grid.math_profiles) {
                std::size_t offset = 0; // position within the collapsed block
                for (const Scenario_config& point : points) {
                    for (std::size_t rep = 0; rep < grid.repetitions; ++rep) {
                        Sweep_task task;
                        task.index = tasks.size();
                        task.seed_index = scenario_seed_base + offset++;
                        task.scenario = scenario_name;
                        task.config = point;
                        task.config.scheme = scheme;
                        task.config.math_profile = profile;
                        task.repetition = rep;
                        tasks.push_back(std::move(task));
                    }
                }
                scheme_block = offset;
            }
        }
        scenario_seed_base += scheme_block;
    }

    if (!unmatched.empty())
        throw std::invalid_argument{"Sweep_grid: scheme '" + *unmatched.begin()
                                    + "' is supported by no scenario in the grid"};
    return tasks;
}

std::vector<Sweep_task> expand(const Sweep_grid& grid)
{
    return expand(grid, Scenario_registry::builtin());
}

std::vector<Sweep_task> shard_tasks(const std::vector<Sweep_task>& tasks,
                                    std::size_t shard_index, std::size_t shard_count)
{
    if (shard_count == 0 || shard_index == 0 || shard_index > shard_count)
        throw std::invalid_argument{"shard_tasks: shard must satisfy 1 <= k <= n"};
    std::vector<Sweep_task> shard;
    shard.reserve(tasks.size() / shard_count + 1);
    for (std::size_t i = shard_index - 1; i < tasks.size(); i += shard_count)
        shard.push_back(tasks[i]);
    return shard;
}

namespace {

std::string fmt_double(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

template <typename T, typename Fmt>
void json_axis(std::ostream& out, const std::vector<T>& values, Fmt&& format_one)
{
    out << "[";
    bool first = true;
    for (const T& value : values) {
        out << (first ? "" : ",");
        format_one(value);
        first = false;
    }
    out << "]";
}

void json_string_axis(std::ostream& out, const std::vector<std::string>& values)
{
    json_axis(out, values, [&](const std::string& s) {
        out << '"';
        // Scenario/scheme names are identifiers; escape the two JSON
        // metacharacters anyway so a hostile name cannot break the
        // document (or the fingerprint).
        for (const char c : s) {
            if (c == '"' || c == '\\')
                out << '\\';
            out << c;
        }
        out << '"';
    });
}

} // namespace

std::string grid_to_json(const Sweep_grid& grid)
{
    std::ostringstream out;
    out << "{\"scenarios\":";
    json_string_axis(out, grid.scenarios);
    out << ",\"schemes\":";
    json_string_axis(out, grid.schemes);
    out << ",\"math_profiles\":";
    json_axis(out, grid.math_profiles, [&](const dsp::Math_profile profile) {
        out << "\"" << dsp::to_string(profile) << "\"";
    });
    out << ",\"snr_db\":";
    json_axis(out, grid.snr_db, [&](const double v) { out << fmt_double(v); });
    out << ",\"alice_amplitudes\":";
    json_axis(out, grid.alice_amplitudes, [&](const double v) { out << fmt_double(v); });
    out << ",\"bob_amplitudes\":";
    json_axis(out, grid.bob_amplitudes, [&](const double v) { out << fmt_double(v); });
    out << ",\"payload_bits\":";
    json_axis(out, grid.payload_bits, [&](const std::size_t v) { out << v; });
    out << ",\"exchanges\":";
    json_axis(out, grid.exchanges, [&](const std::size_t v) { out << v; });
    out << ",\"detector_thresholds_db\":";
    json_axis(out, grid.detector_thresholds_db,
              [&](const double v) { out << fmt_double(v); });
    out << ",\"interleave_rows\":";
    json_axis(out, grid.interleave_rows, [&](const std::size_t v) { out << v; });
    out << ",\"coherence_blocks\":";
    json_axis(out, grid.coherence_blocks, [&](const std::size_t v) { out << v; });
    out << ",\"mean_link_gains\":";
    json_axis(out, grid.mean_link_gains, [&](const double v) { out << fmt_double(v); });
    out << ",\"repetitions\":" << grid.repetitions << "}";
    return out.str();
}

} // namespace anc::engine
