// Umbrella header and one-call driver for the parallel experiment
// engine.  See ENGINE.md for the full subsystem tour.
//
//   Sweep_grid grid;
//   grid.scenarios = {"alice_bob"};
//   grid.snr_db = {22.0};
//   grid.repetitions = 40;
//   const Sweep_outcome outcome = run_grid(grid, {.base_seed = 1000});
//   // outcome.tasks    — one Task_result per (point, repetition)
//   // outcome.points   — aggregated per grid point
//
// Environment knobs (all optional):
//   ANC_ENGINE_THREADS — worker threads (default: hardware concurrency)
//   ANC_ENGINE_CSV     — also write the aggregate CSV to this path
//   ANC_ENGINE_JSON    — also write the full JSON document to this path
//   ANC_METRICS_JSON   — collect telemetry and write the anc.metrics.v1
//                        run manifest to this path (OBSERVABILITY.md)

#pragma once

#include "engine/emit.h"
#include "engine/executor.h"
#include "engine/metrics.h"
#include "engine/report.h"
#include "engine/scenario.h"
#include "engine/sweep.h"

namespace anc::engine {

struct Sweep_outcome {
    std::vector<Task_result> tasks;
    std::vector<Point_summary> points;
};

/// Expand the grid against the builtin registry, run it on the thread
/// pool, aggregate, and honor the ANC_ENGINE_CSV / ANC_ENGINE_JSON
/// emitters.  The workhorse of the bench/ and examples/ drivers.
Sweep_outcome run_grid(const Sweep_grid& grid, const Executor_config& config = {});

/// Same, against a caller-supplied registry (skips env emitters).
Sweep_outcome run_grid(const Sweep_grid& grid, const Scenario_registry& registry,
                       const Executor_config& config);

} // namespace anc::engine
