#include "engine/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "dsp/math_profile.h"
#include "engine/coordinator.h"
#include "util/atomic_file.h"
#include "util/cpu_features.h"
#include "util/simd.h"

namespace anc::engine {

namespace {

std::string fmt_u64(std::uint64_t value)
{
    char buffer[24];
    std::snprintf(buffer, sizeof buffer, "%" PRIu64, value);
    return buffer;
}

std::string json_escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

template <typename T, typename Fmt>
void json_array(std::ostream& out, const std::vector<T>& values, Fmt&& format_one)
{
    out << "[";
    bool first = true;
    for (const T& value : values) {
        out << (first ? "" : ",");
        format_one(value);
        first = false;
    }
    out << "]";
}

} // namespace

void write_metrics_json(std::ostream& out,
                        const Metrics_run_info& info,
                        const Sweep_grid& grid,
                        const obs::Sweep_telemetry& telemetry,
                        const std::vector<Task_result>& results)
{
    const Cpu_features& cpu = cpu_features();

    out << "{\"schema\":\"" << metrics_schema << "\"";

    // ---- run: who ran, on what, how wide ---------------------------
    out << ",\"run\":{\"driver\":\"" << json_escape(info.driver) << "\""
        << ",\"base_seed\":\"" << fmt_u64(info.base_seed) << "\""
        << ",\"threads\":" << telemetry.threads << ",\"tasks\":" << telemetry.tasks
        << ",\"wall_ns\":" << fmt_u64(telemetry.wall_ns)
        << ",\"cpu\":{\"avx\":" << (cpu.avx ? "true" : "false")
        << ",\"avx2\":" << (cpu.avx2 ? "true" : "false")
        << ",\"fma\":" << (cpu.fma ? "true" : "false")
        << ",\"avx512f\":" << (cpu.avx512f ? "true" : "false") << "}"
        << ",\"simd_backend\":\"" << anc::simd::to_string(anc::simd::active_backend())
        << "\",\"simd_kernels_active\":"
        << (anc::simd::kernels_active() ? "true" : "false") << "}";

    // ---- grid echo --------------------------------------------------
    // The same canonical serialization the journal fingerprints
    // (engine/sweep.h grid_to_json), so a manifest's grid echo and a
    // journal's grid hash are cross-checkable.
    out << ",\"grid\":" << grid_to_json(grid);

    // ---- per-stage timing rollup ------------------------------------
    out << ",\"stages\":{";
    bool first = true;
    for (std::size_t i = 0; i < obs::stage_count; ++i) {
        out << (first ? "" : ",") << "\"" << obs::to_string(static_cast<obs::Stage>(i))
            << "\":{\"ns\":" << fmt_u64(telemetry.stages.ns[i])
            << ",\"calls\":" << fmt_u64(telemetry.stages.calls[i]) << "}";
        first = false;
    }
    out << "}";

    // ---- event-counter aggregates ----------------------------------
    out << ",\"counters\":{";
    first = true;
    for (std::size_t i = 0; i < obs::counter_count; ++i) {
        out << (first ? "" : ",") << "\""
            << obs::to_string(static_cast<obs::Counter>(i))
            << "\":" << fmt_u64(telemetry.counters.values[i]);
        first = false;
    }
    out << "}";

    // ---- task-latency histogram (nonzero bins only) -----------------
    out << ",\"latency_histogram\":{\"total\":" << fmt_u64(telemetry.latency.total())
        << ",\"bins\":[";
    first = true;
    for (std::size_t bin = 0; bin < obs::Latency_histogram::bin_count; ++bin) {
        if (telemetry.latency.counts[bin] == 0)
            continue;
        out << (first ? "" : ",") << "{\"floor_ns\":"
            << fmt_u64(obs::Latency_histogram::bin_floor_ns(bin))
            << ",\"count\":" << fmt_u64(telemetry.latency.counts[bin]) << "}";
        first = false;
    }
    out << "]}";

    // ---- per-worker utilization ------------------------------------
    out << ",\"workers\":";
    json_array(out, telemetry.workers, [&](const obs::Worker_stats& worker) {
        out << "{\"busy_ns\":" << fmt_u64(worker.busy_ns)
            << ",\"tasks\":" << fmt_u64(worker.tasks) << "}";
    });

    // ---- per-task journal rows --------------------------------------
    // The substrate for the ROADMAP's streaming/checkpointed sweeps: one
    // row per task, in task-index order, enough to replay or resume.
    out << ",\"tasks\":";
    json_array(out, results, [&](const Task_result& result) {
        const obs::Task_telemetry& task = result.result.telemetry;
        out << "{\"index\":" << result.task.index << ",\"seed\":\""
            << fmt_u64(result.seed) << "\",\"worker\":" << task.worker
            << ",\"wall_ns\":" << fmt_u64(task.wall_ns)
            << ",\"queue_ns\":" << fmt_u64(task.queue_ns) << "}";
    });
    out << "}";
}

std::string metrics_to_json(const Metrics_run_info& info,
                            const Sweep_grid& grid,
                            const obs::Sweep_telemetry& telemetry,
                            const std::vector<Task_result>& results)
{
    std::ostringstream out;
    write_metrics_json(out, info, grid, telemetry, results);
    return out.str();
}

void write_coordinator_metrics_json(std::ostream& out,
                                    const Metrics_run_info& info,
                                    const Sweep_grid& grid,
                                    const Coordinator_outcome& outcome)
{
    const Coordinator_stats& stats = outcome.stats;
    out << "{\"schema\":\"" << metrics_schema << "\"";
    out << ",\"run\":{\"driver\":\"" << json_escape(info.driver) << "\""
        << ",\"base_seed\":\"" << fmt_u64(info.base_seed) << "\""
        << ",\"tasks\":" << stats.merged_tasks
        << ",\"wall_ns\":" << fmt_u64(stats.wall_ns) << "}";
    out << ",\"grid\":" << grid_to_json(grid);
    out << ",\"coordinator\":{\"shards\":" << stats.shards
        << ",\"workers\":" << stats.workers
        << ",\"completed\":" << (outcome.completed ? "true" : "false")
        << ",\"cancelled\":" << (outcome.cancelled ? "true" : "false")
        << ",\"failed_shards\":" << outcome.failed_shards
        << ",\"launches\":" << stats.launches
        << ",\"reassignments\":" << stats.reassignments
        << ",\"steals\":" << stats.steals
        << ",\"watchdog_kills\":" << stats.watchdog_kills
        << ",\"watchdog_startup_kills\":" << stats.watchdog_startup_kills
        << ",\"watchdog_stall_kills\":" << stats.watchdog_stall_kills
        << ",\"worker_failures\":" << stats.worker_failures
        << ",\"backoff_waits\":" << stats.backoff_waits
        << ",\"adoptions\":" << stats.adoptions
        << ",\"merged_tasks\":" << stats.merged_tasks
        << ",\"dropped_journal_lines\":" << stats.dropped_lines;
    out << ",\"transport\":{\"connects\":" << stats.transport.connects
        << ",\"reconnects\":" << stats.transport.reconnects
        << ",\"lines_received\":" << stats.transport.lines_received
        << ",\"lines_appended\":" << stats.transport.lines_appended
        << ",\"replayed_lines\":" << stats.transport.replayed_lines
        << ",\"invalid_lines\":" << stats.transport.invalid_lines
        << ",\"dropped_frames\":" << stats.transport.dropped_frames
        << ",\"acks_sent\":" << stats.transport.acks_sent << "}";
    out << ",\"workers_liveness\":";
    json_array(out, stats.slots, [&](const Worker_slot_stats& slot) {
        out << "{\"launches\":" << slot.launches
            << ",\"shards_completed\":" << slot.shards_completed
            << ",\"tasks_journaled\":" << slot.tasks_journaled
            << ",\"watchdog_kills\":" << slot.watchdog_kills
            << ",\"failures\":" << slot.failures
            << ",\"busy_ns\":" << fmt_u64(slot.busy_ns) << "}";
    });
    out << "}}";
}

bool emit_env_metrics(const Metrics_run_info& info,
                      const Sweep_grid& grid,
                      const obs::Sweep_telemetry& telemetry,
                      const std::vector<Task_result>& results)
{
    const char* path = std::getenv("ANC_METRICS_JSON");
    if (!path || !*path)
        return false;
    // Atomic (temp + rename): a crash mid-emit must never leave a
    // truncated METRICS_*.json at the published path.
    write_file_atomic(path, [&](std::ostream& out) {
        write_metrics_json(out, info, grid, telemetry, results);
        out << "\n";
    });
    return true;
}

} // namespace anc::engine
