#include "engine/report.h"

#include <map>
#include <stdexcept>

namespace anc::engine {

Point_key key_of(const Sweep_task& task)
{
    Point_key key;
    key.scenario = task.scenario;
    key.scheme = task.config.scheme;
    key.snr_db = task.config.snr_db;
    key.alice_amplitude = task.config.alice_amplitude;
    key.bob_amplitude = task.config.bob_amplitude;
    key.payload_bits = task.config.payload_bits;
    key.exchanges = task.config.exchanges;
    key.detector_threshold_db =
        task.config.receiver.interference_detector.variance_threshold_db;
    key.interleave_rows = task.config.fec_interleave_rows;
    key.coherence_block = task.config.coherence_block;
    key.mean_link_gain = task.config.mean_link_gain;
    key.math_profile = task.config.math_profile;
    return key;
}

void Aggregator::add(const Task_result& result)
{
    if (result.status == Task_status::skipped)
        return; // a drained (cancelled) slot: no run happened at all
    const Point_key key = key_of(result.task);
    const auto [entry, inserted] = index_.try_emplace(key, summaries_.size());
    if (inserted) {
        summaries_.emplace_back();
        summaries_.back().key = key;
    }
    Point_summary* summary = &summaries_[entry->second];
    if (result.status == Task_status::error) {
        ++summary->errors; // an isolated fault contributes no samples
        return;
    }

    const sim::Run_metrics& metrics = result.result.metrics;
    ++summary->runs;
    summary->throughput.add(metrics.throughput());
    summary->raw_throughput.add(metrics.raw_throughput());
    summary->delivery_rate.add(metrics.delivery_rate());
    summary->run_mean_ber.add(metrics.mean_ber());
    summary->run_mean_overlap.add(metrics.mean_overlap());
    summary->totals.merge(metrics);
    for (const auto& [name, cdf] : result.result.series)
        summary->series[name].add_all(cdf.sorted_samples());
    for (const auto& [name, value] : result.result.scalars)
        summary->scalars[name] += value;
}

std::vector<Point_summary> aggregate(const std::vector<Task_result>& results)
{
    Aggregator aggregator;
    for (const Task_result& result : results)
        aggregator.add(result);
    return aggregator.take();
}

const Point_summary& summary_for(const std::vector<Point_summary>& summaries,
                                 const std::string& scenario, const std::string& scheme)
{
    const Point_summary* found = nullptr;
    for (const Point_summary& summary : summaries) {
        if (summary.key.scenario == scenario && summary.key.scheme == scheme) {
            if (found != nullptr)
                throw std::invalid_argument{
                    "summary_for: multiple grid points match " + scenario + "/" + scheme};
            found = &summary;
        }
    }
    if (found == nullptr)
        throw std::out_of_range{"summary_for: no grid point " + scenario + "/" + scheme};
    return *found;
}

Cdf paired_gain(const std::vector<Task_result>& results, const Point_key& scheme_key,
                const Point_key& baseline_key, Baseline_policy policy)
{
    // Per-repetition throughput, indexed by repetition.  Tasks from
    // `expand` list repetitions in order, but pairing by the explicit
    // repetition field keeps this correct for any task ordering.
    std::map<std::size_t, double> scheme_runs;
    std::map<std::size_t, double> baseline_runs;
    for (const Task_result& result : results) {
        const Point_key key = key_of(result.task);
        if (key == scheme_key)
            scheme_runs[result.task.repetition] = result.result.metrics.throughput();
        else if (key == baseline_key)
            baseline_runs[result.task.repetition] = result.result.metrics.throughput();
    }
    if (scheme_runs.size() != baseline_runs.size())
        throw std::invalid_argument{"paired_gain: run counts differ between points"};

    Cdf gains;
    for (const auto& [repetition, throughput] : scheme_runs) {
        const auto baseline = baseline_runs.find(repetition);
        if (baseline == baseline_runs.end())
            throw std::invalid_argument{"paired_gain: repetition sets differ"};
        if (baseline->second <= 0.0) {
            if (policy == Baseline_policy::strict)
                throw std::domain_error{"paired_gain: baseline throughput is zero"};
            continue;
        }
        gains.add(throughput / baseline->second);
    }
    return gains;
}

Cdf paired_gain(const std::vector<Task_result>& results,
                const std::vector<Point_summary>& summaries,
                const std::string& scenario, const std::string& scheme,
                const std::string& baseline_scheme, Baseline_policy policy)
{
    const Point_key scheme_key = summary_for(summaries, scenario, scheme).key;
    Point_key baseline_key = scheme_key;
    baseline_key.scheme = baseline_scheme;
    return paired_gain(results, scheme_key, baseline_key, policy);
}

} // namespace anc::engine
