// The completed-task journal: `anc.journal.v1` — crash-safe
// checkpointing for sweeps.
//
// An append-only, line-oriented text file.  Line 1 is the magic
// (`anc.journal.v1`); every following line is `<crc32-hex> <payload>`,
// where the CRC covers the payload bytes, the first payload is the
// header record (grid fingerprint, base seed, task count, shard k/n)
// and each subsequent payload is one completed task: its global index,
// derived seed, terminal status, attempt count, and the FULL
// Scenario_result (metrics, Cdf samples in insertion order, series,
// scalars) in exact round-trip text form — enough to reconstitute the
// Task_result without re-running, so a resumed sweep emits
// byte-identical JSON/CSV to an uninterrupted one.
//
// Durability model: each line is appended with a single write(2) on an
// O_APPEND descriptor (atomic at the line level), and fsync is batched
// through a Rate_limiter (plus always on close/flush).  A crash can
// therefore lose only the un-synced suffix and possibly tear the final
// line; the loader verifies every line's CRC and silently drops
// invalid ones — a dropped task is simply re-run on resume.
//
// Compatibility: resume and merge refuse a journal whose header
// fingerprint, base seed, task count, or shard spec does not match the
// current invocation — per-task seeds are pure functions of
// (base_seed, seed_index), so matching headers guarantee the replayed
// rows slot into the same grid.  ENGINE.md "Fault tolerance" documents
// the workflow.

#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/sweep.h"
#include "util/rate_limiter.h"

namespace anc::engine {

inline constexpr const char* journal_magic = "anc.journal.v1";

/// FNV-1a 64 over the canonical grid JSON (sweep.h grid_to_json) — the
/// compatibility stamp in every journal header.  Excludes base_seed,
/// which travels (and is checked) as its own header field.
std::uint64_t grid_fingerprint(const Sweep_grid& grid);

// ---- line primitives --------------------------------------------------
// Shared by every CRC-stamped line format in the engine: the journal
// itself, the coordinator's anc.fleet.v1 state journal (engine/fleet.h),
// and the anc.jstream.v1 frame payload checks (engine/jstream.h).

/// Byte-wise CRC-32/IEEE (reflected).  util/crc.h works on bit-per-byte
/// spans (the PHY's framing domain); journal lines are ordinary byte
/// strings, so they get the ordinary byte algorithm.
std::uint32_t journal_crc32(const char* data, std::size_t size);

/// `<crc32-hex> <payload>\n` — the stamped wire form of one line.
std::string stamp_line(const std::string& payload);

/// Split off the 8-hex CRC prefix of a line (no trailing newline) and
/// verify it; false on any defect.
bool check_stamped_line(const std::string& line, std::string& payload);

/// What one raw journal line is — the jstream listener's ingest filter
/// (engine/jstream.h): it mirrors remote lines into a local journal
/// file and must recognize duplicates (replays after a reconnect)
/// without trusting the sender.  `magic` matches the bare magic line;
/// `header`/`task` additionally require the CRC stamp and a full
/// parse; anything else is `invalid`.  For `task` lines, `task_index`
/// (when non-null) receives the entry's global index — the dedup key.
enum class Journal_line_kind { magic, header, task, invalid };
Journal_line_kind classify_journal_line(const std::string& line,
                                        std::uint64_t* task_index = nullptr);

struct Journal_header {
    std::uint64_t grid_hash = 0;
    std::uint64_t base_seed = 1;
    /// Tasks in the FULL expanded grid (not the shard's subset).
    std::size_t tasks = 0;
    /// 1-based shard spec; 1/1 for an unsharded sweep.
    std::size_t shard_index = 1;
    std::size_t shard_count = 1;
};

struct Journal_entry {
    std::size_t index = 0; ///< Sweep_task::index (global)
    std::uint64_t seed = 0;
    Task_status status = Task_status::ok;
    std::uint32_t attempts = 1;
    std::string error;
    Scenario_result result;
};

/// What load_journal recovered.
struct Journal_contents {
    Journal_header header;
    /// Valid entries in file (= completion) order; duplicate indices
    /// keep the first occurrence.
    std::vector<Journal_entry> entries;
    /// Torn or corrupt lines skipped (CRC mismatch, parse failure).
    std::size_t dropped_lines = 0;
};

/// Append-only writer.  `truncate` starts a fresh journal (magic +
/// header); otherwise the file must already hold a compatible header —
/// the resume case, verified by the caller via load_journal — and new
/// entries are appended after the existing ones.  Throws
/// std::runtime_error on any I/O failure.
class Journal_writer {
public:
    Journal_writer(const std::string& path, const Journal_header& header,
                   bool truncate);
    ~Journal_writer(); ///< flushes (best-effort) and closes

    Journal_writer(const Journal_writer&) = delete;
    Journal_writer& operator=(const Journal_writer&) = delete;

    /// Serialize + CRC-stamp + append one completed task in a single
    /// write(2).  fsync is rate-limited (~20 ms batches); call flush()
    /// for a hard durability point.
    void append(const Task_result& result);

    /// fsync now, unconditionally (the SIGINT/SIGTERM drain point).
    void flush();

    std::size_t appended() const { return appended_; }

private:
    void write_line(const std::string& payload);

    int fd_ = -1;
    std::string path_;
    std::size_t appended_ = 0;
    /// Batches fsync to at most ~50/s: the durability lag a crash can
    /// lose is bounded by one window, and the sweep never serializes on
    /// storage latency per task.
    Rate_limiter fsync_gate_{std::chrono::milliseconds{20}};
};

/// Parse a journal file.  Throws std::runtime_error when the file
/// cannot be opened, the magic is wrong, or no valid header line
/// survives (a journal torn inside its header is unusable — but also
/// empty, so nothing is lost by starting over).  Torn/corrupt entry
/// lines are dropped and counted, never fatal.
Journal_contents load_journal(const std::string& path);

/// True when `header` matches the invocation described by the
/// arguments; `why` (when non-null) receives a one-line reason on
/// mismatch.
bool journal_compatible(const Journal_header& header, const Sweep_grid& grid,
                        std::uint64_t base_seed, std::size_t tasks,
                        std::size_t shard_index, std::size_t shard_count,
                        std::string* why = nullptr);

/// Incremental journal reader — the coordinator's liveness watermark
/// and merge-as-you-go source (engine/coordinator.h).
///
/// Where load_journal parses a finished file once, a tailer follows a
/// journal ANOTHER PROCESS is still appending to: each poll() parses
/// only the bytes added since the previous poll, consuming complete
/// ('\n'-terminated) lines and leaving a partial final line for the
/// next round (a half-written append is "not yet", never "corrupt").
/// It tolerates the file not existing yet (a worker that has not
/// created its journal) and a file that shrank or was replaced (the
/// parse restarts from byte 0; callers dedup entries by task index, so
/// re-delivery is harmless).  CRC-failed or unparseable complete lines
/// are dropped and counted exactly as load_journal drops them.
///
/// entries_seen() is the liveness watermark: it advances monotonically
/// with every valid task entry, so "no watermark movement within the
/// heartbeat window" is the coordinator's stall signal.
class Journal_tailer {
public:
    Journal_tailer() = default;
    explicit Journal_tailer(std::string path) : path_{std::move(path)} {}

    /// Parse newly appended complete lines; returns the new valid task
    /// entries (possibly none).  Never throws on file absence, torn
    /// tails, or corrupt lines.
    std::vector<Journal_entry> poll();

    const std::string& path() const { return path_; }
    /// True once a valid header line has been consumed.
    bool have_header() const { return have_header_; }
    const Journal_header& header() const { return header_; }
    /// Total valid task entries delivered so far — the watermark.
    std::size_t entries_seen() const { return entries_seen_; }
    std::size_t dropped_lines() const { return dropped_lines_; }
    /// The file's first line was not the anc.journal.v1 magic; the
    /// tailer delivers nothing from such a file.
    bool bad_magic() const { return bad_magic_; }

private:
    std::string path_;
    std::uint64_t offset_ = 0; ///< bytes consumed (complete lines only)
    bool saw_magic_ = false;
    bool bad_magic_ = false;
    bool have_header_ = false;
    Journal_header header_{};
    std::size_t entries_seen_ = 0;
    std::size_t dropped_lines_ = 0;
};

/// Reconstitute executor-preloadable results from journal entries:
/// keyed by POSITION in `tasks` (the vector about to be handed to
/// run_sweep — the full expansion, or a shard's subset), matching
/// entries to tasks by global Sweep_task::index.  Entries for indices
/// not present in `tasks` are ignored (another shard's rows).
std::map<std::size_t, Task_result>
preload_from_entries(std::vector<Journal_entry>&& entries,
                     const std::vector<Sweep_task>& tasks);

} // namespace anc::engine
