// The topology runners (sim/) wrapped as engine scenarios.
//
// Each adapter maps the uniform Scenario_config onto the topology's
// concrete config struct, dispatches on scheme, and repackages the
// result's topology-specific CDFs/counters into the named series/scalar
// maps.
//
// The *_fading variants run the same topologies over Rayleigh
// block-fading links (Rahimian et al., PAPERS.md): every link gain is
// multiplied by an independent CN(0,1) coefficient per coherence block,
// with the grid's coherence_block / mean_link_gain axes mapped onto the
// channel substrate.  Fading seeds flow from the scenario seed, so
// scheme-collapsed tasks still share channel realizations.

#include <memory>
#include <stdexcept>

#include "engine/scenario.h"
#include "sim/alice_bob.h"
#include "sim/chain.h"
#include "sim/x_topology.h"

namespace anc::engine {

namespace {

sim::Alice_bob_config alice_bob_config_for(const Scenario_config& config,
                                           std::uint64_t seed)
{
    sim::Alice_bob_config sim_config;
    sim_config.payload_bits = config.payload_bits;
    sim_config.exchanges = config.exchanges;
    sim_config.snr_db = config.snr_db;
    sim_config.alice_amplitude = config.alice_amplitude;
    sim_config.bob_amplitude = config.bob_amplitude;
    sim_config.receiver = config.receiver;
    sim_config.math_profile = config.math_profile;
    sim_config.seed = seed;
    return sim_config;
}

Scenario_result run_alice_bob_sim(const Scenario_config& config,
                                  const sim::Alice_bob_config& sim_config)
{
    sim::Alice_bob_result sim_result;
    if (config.scheme == "traditional")
        sim_result = sim::run_alice_bob_traditional(sim_config);
    else if (config.scheme == "cope")
        sim_result = sim::run_alice_bob_cope(sim_config);
    else
        sim_result = sim::run_alice_bob_anc(sim_config);

    Scenario_result result;
    result.metrics = std::move(sim_result.metrics);
    result.series["ber_at_alice"] = std::move(sim_result.ber_at_alice);
    result.series["ber_at_bob"] = std::move(sim_result.ber_at_bob);
    // Channel-state series, present only on fading runs so fixed-gain
    // sweep JSON stays byte-identical to the pre-series emitters.
    if (!sim_result.fade_magnitude.empty())
        result.series["fade_magnitude"] = std::move(sim_result.fade_magnitude);
    return result;
}

Scenario_result run_alice_bob(const Scenario_config& config, std::uint64_t seed)
{
    return run_alice_bob_sim(config, alice_bob_config_for(config, seed));
}

Scenario_result run_alice_bob_fading(const Scenario_config& config, std::uint64_t seed)
{
    sim::Alice_bob_config sim_config = alice_bob_config_for(config, seed);
    sim_config.fading.model = chan::Gain_model::rayleigh_block;
    sim_config.fading.coherence_block = config.coherence_block;
    sim_config.gains.alice_router *= config.mean_link_gain;
    sim_config.gains.router_alice *= config.mean_link_gain;
    sim_config.gains.bob_router *= config.mean_link_gain;
    sim_config.gains.router_bob *= config.mean_link_gain;
    return run_alice_bob_sim(config, sim_config);
}

sim::X_config x_config_for(const Scenario_config& config, std::uint64_t seed)
{
    sim::X_config sim_config;
    sim_config.payload_bits = config.payload_bits;
    sim_config.exchanges = config.exchanges;
    sim_config.snr_db = config.snr_db;
    sim_config.receiver = config.receiver;
    sim_config.math_profile = config.math_profile;
    sim_config.seed = seed;
    return sim_config;
}

Scenario_result run_x_sim(const Scenario_config& config, const sim::X_config& sim_config)
{
    sim::X_result sim_result;
    if (config.scheme == "traditional")
        sim_result = sim::run_x_traditional(sim_config);
    else if (config.scheme == "cope")
        sim_result = sim::run_x_cope(sim_config);
    else
        sim_result = sim::run_x_anc(sim_config);

    Scenario_result result;
    result.metrics = std::move(sim_result.metrics);
    result.series["ber_at_n2"] = std::move(sim_result.ber_at_n2);
    result.series["ber_at_n4"] = std::move(sim_result.ber_at_n4);
    if (!sim_result.fade_magnitude.empty())
        result.series["fade_magnitude"] = std::move(sim_result.fade_magnitude);
    result.scalars["overhear_attempts"] =
        static_cast<double>(sim_result.overhear_attempts);
    result.scalars["overhear_failures"] =
        static_cast<double>(sim_result.overhear_failures);
    return result;
}

Scenario_result run_x_topology(const Scenario_config& config, std::uint64_t seed)
{
    return run_x_sim(config, x_config_for(config, seed));
}

Scenario_result run_x_topology_fading(const Scenario_config& config, std::uint64_t seed)
{
    sim::X_config sim_config = x_config_for(config, seed);
    sim_config.fading.model = chan::Gain_model::rayleigh_block;
    sim_config.fading.coherence_block = config.coherence_block;
    sim_config.gains.spoke *= config.mean_link_gain;
    sim_config.gains.overhear *= config.mean_link_gain;
    sim_config.gains.cross *= config.mean_link_gain;
    return run_x_sim(config, sim_config);
}

Scenario_result run_chain(const Scenario_config& config, std::uint64_t seed)
{
    sim::Chain_config sim_config;
    sim_config.payload_bits = config.payload_bits;
    sim_config.packets = config.exchanges;
    sim_config.snr_db = config.snr_db;
    sim_config.receiver = config.receiver;
    sim_config.math_profile = config.math_profile;
    sim_config.seed = seed;

    const sim::Chain_result sim_result = config.scheme == "traditional"
                                             ? sim::run_chain_traditional(sim_config)
                                             : sim::run_chain_anc(sim_config);

    Scenario_result result;
    result.metrics = sim_result.metrics;
    result.series["ber_at_n2"] = sim_result.ber_at_n2;
    return result;
}

} // namespace

void register_builtin_scenarios(Scenario_registry& registry)
{
    registry.add(std::make_unique<Function_scenario>(
        "alice_bob", std::vector<std::string>{"traditional", "cope", "anc"},
        run_alice_bob));
    registry.add(std::make_unique<Function_scenario>(
        "x_topology", std::vector<std::string>{"traditional", "cope", "anc"},
        run_x_topology));
    registry.add(std::make_unique<Function_scenario>(
        "chain", std::vector<std::string>{"traditional", "anc"}, run_chain));
    registry.add(std::make_unique<Function_scenario>(
        "alice_bob_fading", std::vector<std::string>{"traditional", "cope", "anc"},
        run_alice_bob_fading));
    registry.add(std::make_unique<Function_scenario>(
        "x_topology_fading", std::vector<std::string>{"traditional", "cope", "anc"},
        run_x_topology_fading));
}

} // namespace anc::engine
