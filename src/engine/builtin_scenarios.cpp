// The three topology runners (sim/) wrapped as engine scenarios.
//
// Each adapter maps the uniform Scenario_config onto the topology's
// concrete config struct, dispatches on scheme, and repackages the
// result's topology-specific CDFs/counters into the named series/scalar
// maps.

#include <memory>
#include <stdexcept>

#include "engine/scenario.h"
#include "sim/alice_bob.h"
#include "sim/chain.h"
#include "sim/x_topology.h"

namespace anc::engine {

namespace {

Scenario_result run_alice_bob(const Scenario_config& config, std::uint64_t seed)
{
    sim::Alice_bob_config sim_config;
    sim_config.payload_bits = config.payload_bits;
    sim_config.exchanges = config.exchanges;
    sim_config.snr_db = config.snr_db;
    sim_config.alice_amplitude = config.alice_amplitude;
    sim_config.bob_amplitude = config.bob_amplitude;
    sim_config.seed = seed;

    sim::Alice_bob_result sim_result;
    if (config.scheme == "traditional")
        sim_result = sim::run_alice_bob_traditional(sim_config);
    else if (config.scheme == "cope")
        sim_result = sim::run_alice_bob_cope(sim_config);
    else
        sim_result = sim::run_alice_bob_anc(sim_config);

    Scenario_result result;
    result.metrics = std::move(sim_result.metrics);
    result.series["ber_at_alice"] = std::move(sim_result.ber_at_alice);
    result.series["ber_at_bob"] = std::move(sim_result.ber_at_bob);
    return result;
}

Scenario_result run_x_topology(const Scenario_config& config, std::uint64_t seed)
{
    sim::X_config sim_config;
    sim_config.payload_bits = config.payload_bits;
    sim_config.exchanges = config.exchanges;
    sim_config.snr_db = config.snr_db;
    sim_config.seed = seed;

    sim::X_result sim_result;
    if (config.scheme == "traditional")
        sim_result = sim::run_x_traditional(sim_config);
    else if (config.scheme == "cope")
        sim_result = sim::run_x_cope(sim_config);
    else
        sim_result = sim::run_x_anc(sim_config);

    Scenario_result result;
    result.metrics = std::move(sim_result.metrics);
    result.series["ber_at_n2"] = std::move(sim_result.ber_at_n2);
    result.series["ber_at_n4"] = std::move(sim_result.ber_at_n4);
    result.scalars["overhear_attempts"] =
        static_cast<double>(sim_result.overhear_attempts);
    result.scalars["overhear_failures"] =
        static_cast<double>(sim_result.overhear_failures);
    return result;
}

Scenario_result run_chain(const Scenario_config& config, std::uint64_t seed)
{
    sim::Chain_config sim_config;
    sim_config.payload_bits = config.payload_bits;
    sim_config.packets = config.exchanges;
    sim_config.snr_db = config.snr_db;
    sim_config.seed = seed;

    const sim::Chain_result sim_result = config.scheme == "traditional"
                                             ? sim::run_chain_traditional(sim_config)
                                             : sim::run_chain_anc(sim_config);

    Scenario_result result;
    result.metrics = sim_result.metrics;
    result.series["ber_at_n2"] = sim_result.ber_at_n2;
    return result;
}

} // namespace

void register_builtin_scenarios(Scenario_registry& registry)
{
    registry.add(std::make_unique<Function_scenario>(
        "alice_bob", std::vector<std::string>{"traditional", "cope", "anc"},
        run_alice_bob));
    registry.add(std::make_unique<Function_scenario>(
        "x_topology", std::vector<std::string>{"traditional", "cope", "anc"},
        run_x_topology));
    registry.add(std::make_unique<Function_scenario>(
        "chain", std::vector<std::string>{"traditional", "anc"}, run_chain));
}

} // namespace anc::engine
