#include "engine/fleet.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "engine/journal.h" // stamp_line / check_stamped_line / grid_fingerprint

namespace anc::engine {

namespace {

std::string header_payload(const Fleet_header& header)
{
    char buffer[128];
    std::snprintf(buffer, sizeof buffer,
                  "H grid=%016" PRIx64 " base_seed=%" PRIu64 " tasks=%zu shards=%zu",
                  header.grid_hash, header.base_seed, header.tasks,
                  header.shards);
    return buffer;
}

std::string record_payload(const Fleet_record& record)
{
    char buffer[160];
    std::snprintf(buffer, sizeof buffer,
                  "S shard=%zu status=%s attempts=%zu slot=%zu wm=%" PRIu64,
                  record.shard, to_string(record.status), record.attempts,
                  record.slot, record.watermark);
    return buffer;
}

bool parse_status(const std::string& text, Fleet_shard_status& out)
{
    if (text == "pending")
        out = Fleet_shard_status::pending;
    else if (text == "running")
        out = Fleet_shard_status::running;
    else if (text == "done")
        out = Fleet_shard_status::done;
    else if (text == "failed")
        out = Fleet_shard_status::failed;
    else
        return false;
    return true;
}

bool parse_header_line(const std::string& payload, Fleet_header& header)
{
    unsigned long long grid = 0, seed = 0, tasks = 0, shards = 0;
    if (std::sscanf(payload.c_str(),
                    "H grid=%llx base_seed=%llu tasks=%llu shards=%llu", &grid,
                    &seed, &tasks, &shards)
        != 4)
        return false;
    header.grid_hash = grid;
    header.base_seed = seed;
    header.tasks = static_cast<std::size_t>(tasks);
    header.shards = static_cast<std::size_t>(shards);
    return true;
}

bool parse_record_line(const std::string& payload, Fleet_record& record)
{
    char status[16] = {};
    unsigned long long shard = 0, attempts = 0, slot = 0, wm = 0;
    if (std::sscanf(payload.c_str(),
                    "S shard=%llu status=%15[a-z] attempts=%llu slot=%llu wm=%llu",
                    &shard, status, &attempts, &slot, &wm)
        != 5)
        return false;
    if (shard < 1)
        return false;
    Fleet_shard_status parsed;
    if (!parse_status(status, parsed))
        return false;
    record.shard = static_cast<std::size_t>(shard);
    record.status = parsed;
    record.attempts = static_cast<std::size_t>(attempts);
    record.slot = static_cast<std::size_t>(slot);
    record.watermark = wm;
    return true;
}

} // namespace

const char* to_string(Fleet_shard_status status)
{
    switch (status) {
    case Fleet_shard_status::pending: return "pending";
    case Fleet_shard_status::running: return "running";
    case Fleet_shard_status::done: return "done";
    case Fleet_shard_status::failed: return "failed";
    }
    return "pending";
}

Fleet_journal::Fleet_journal(const std::string& path, const Fleet_header& header,
                             bool truncate)
    : path_{path}
{
    int flags = O_WRONLY | O_CREAT | O_APPEND;
    if (truncate)
        flags |= O_TRUNC;
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0)
        throw std::runtime_error{"Fleet_journal: cannot open " + path};
    if (truncate) {
        const std::string preamble =
            std::string{fleet_magic} + "\n" + stamp_line(header_payload(header));
        if (::write(fd_, preamble.data(), preamble.size())
            != static_cast<ssize_t>(preamble.size())) {
            ::close(fd_);
            fd_ = -1;
            throw std::runtime_error{"Fleet_journal: cannot write header to "
                                     + path};
        }
        if (::fsync(fd_) != 0) {
            ::close(fd_);
            fd_ = -1;
            throw std::runtime_error{"Fleet_journal: fsync failed on " + path};
        }
    }
}

Fleet_journal::~Fleet_journal()
{
    if (fd_ >= 0) {
        ::fsync(fd_); // best-effort
        ::close(fd_);
    }
}

void Fleet_journal::write_line(const std::string& payload)
{
    const std::string line = stamp_line(payload);
    if (::write(fd_, line.data(), line.size()) != static_cast<ssize_t>(line.size()))
        throw std::runtime_error{"Fleet_journal: append failed on " + path_};
    // Unconditional fsync: supervision events are rare and each one is
    // exactly what a restarted coordinator needs to not redo work.
    if (::fsync(fd_) != 0)
        throw std::runtime_error{"Fleet_journal: fsync failed on " + path_};
}

void Fleet_journal::record(const Fleet_record& record)
{
    write_line(record_payload(record));
}

void Fleet_journal::record_generation(std::size_t generation)
{
    char buffer[48];
    std::snprintf(buffer, sizeof buffer, "R generation=%zu", generation);
    write_line(buffer);
}

Fleet_state load_fleet(const std::string& path)
{
    std::ifstream in{path, std::ios::binary};
    if (!in)
        throw std::runtime_error{"load_fleet: cannot open " + path};
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    std::vector<std::string> lines;
    std::size_t torn = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t newline = text.find('\n', pos);
        if (newline == std::string::npos) {
            torn = 1;
            break;
        }
        lines.push_back(text.substr(pos, newline - pos));
        pos = newline + 1;
    }
    if (lines.empty() || lines.front() != fleet_magic)
        throw std::runtime_error{"load_fleet: " + path + " is not a "
                                 + fleet_magic + " file"};

    Fleet_state state;
    state.dropped_lines = torn;
    bool have_header = false;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        std::string payload;
        if (!check_stamped_line(lines[i], payload) || payload.empty()) {
            ++state.dropped_lines;
            continue;
        }
        if (payload.front() == 'H') {
            if (!have_header && parse_header_line(payload, state.header))
                have_header = true;
            else if (!have_header)
                ++state.dropped_lines;
        } else if (payload.front() == 'S') {
            Fleet_record record;
            if (parse_record_line(payload, record))
                state.shards[record.shard] = record; // last writer wins
            else
                ++state.dropped_lines;
        } else if (payload.front() == 'R') {
            ++state.generations;
        } else {
            ++state.dropped_lines;
        }
    }
    if (!have_header)
        throw std::runtime_error{"load_fleet: " + path
                                 + " has no valid header line"};
    return state;
}

bool fleet_compatible(const Fleet_header& header, const Sweep_grid& grid,
                      std::uint64_t base_seed, std::size_t tasks,
                      std::size_t shards, std::string* why)
{
    const auto fail = [&](const std::string& reason) {
        if (why)
            *why = reason;
        return false;
    };
    if (header.grid_hash != grid_fingerprint(grid))
        return fail("grid fingerprint mismatch (different axes or axis values)");
    if (header.base_seed != base_seed)
        return fail("base seed mismatch");
    if (header.tasks != tasks)
        return fail("task count mismatch");
    if (header.shards != shards)
        return fail("shard count mismatch");
    return true;
}

} // namespace anc::engine
