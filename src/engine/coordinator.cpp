#include "engine/coordinator.h"

#include <csignal>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include <unistd.h>

#include "engine/fleet.h"

namespace anc::engine {

namespace {

using clock = std::chrono::steady_clock;

constexpr std::size_t no_slot = std::numeric_limits<std::size_t>::max();

/// Supervision state of one shard: its tailer, the attached child (when
/// running), and the unique-entry count that decides completeness.
struct Shard_state {
    enum class Status { pending, running, done, failed };

    std::size_t index = 1; ///< 1-based shard number
    std::size_t task_count = 0;
    Status status = Status::pending;
    std::size_t attempts = 0;
    std::size_t slot = no_slot;
    util::Subprocess child;
    Journal_tailer tailer;
    clock::time_point last_progress{};
    /// Unique task indices of this shard observed so far (merged or
    /// waiting in the reorder window).  == task_count means complete.
    std::size_t have = 0;
    bool header_checked = false;
    /// The current attempt started without --resume (no prior journal):
    /// a stall before the header appears is a STARTUP stall.
    bool fresh_attempt = false;
    /// Relaunch escalation (Coordinator_config::relaunch_backoff).
    util::Backoff backoff;
    clock::time_point next_launch{}; ///< epoch = launchable now
    /// Adopted from a prior coordinator's fleet journal while last seen
    /// running: its worker may still be alive (streaming into the
    /// mirror, or an orphaned local process appending).  The shard is
    /// not relaunched until a heartbeat window passes with no progress.
    bool adopted_grace = false;
};

/// Tasks a round-robin shard K/S owns out of `total` (the number of
/// global indices with index % S == K-1).
std::size_t shard_task_count(std::size_t total, std::size_t shard_index,
                             std::size_t shard_count)
{
    const std::size_t first = shard_index - 1;
    return total > first ? (total - first + shard_count - 1) / shard_count : 0;
}

} // namespace

std::string shard_journal_path(const std::string& work_dir, std::size_t shard_index)
{
    return work_dir + "/shard" + std::to_string(shard_index) + ".anj";
}

Worker_launcher exec_launcher(std::string worker_bin,
                              std::vector<std::string> grid_argv,
                              std::size_t worker_threads, std::string work_dir)
{
    return [worker_bin = std::move(worker_bin), grid_argv = std::move(grid_argv),
            worker_threads, work_dir = std::move(work_dir)](const Worker_request& req) {
        std::vector<std::string> argv;
        argv.reserve(grid_argv.size() + 8);
        argv.push_back(worker_bin);
        argv.insert(argv.end(), grid_argv.begin(), grid_argv.end());
        argv.push_back("--quiet");
        argv.push_back("--threads");
        argv.push_back(std::to_string(worker_threads));
        argv.push_back("--shard");
        argv.push_back(std::to_string(req.shard_index) + "/"
                       + std::to_string(req.shard_count));
        // --resume implies journaling into the same file, so a relaunch
        // keeps every task the dead worker already completed.
        argv.push_back(req.resume ? "--resume" : "--journal");
        argv.push_back(req.journal_path);
        if (!req.stream.empty()) {
            argv.push_back("--journal-stream");
            argv.push_back(req.stream);
        }
        util::Spawn_options options;
        options.stdout_path = "/dev/null";
        options.stderr_path =
            work_dir + "/worker_shard" + std::to_string(req.shard_index) + ".log";
        return util::Subprocess::spawn(argv, options);
    };
}

Worker_launcher template_launcher(std::string command_template,
                                  std::string work_dir)
{
    return [command_template = std::move(command_template),
            work_dir = std::move(work_dir)](const Worker_request& req) {
        std::string command = command_template;
        const auto replace_all = [&command](const std::string& key,
                                            const std::string& value) {
            for (std::size_t pos = 0;
                 (pos = command.find(key, pos)) != std::string::npos;
                 pos += value.size())
                command.replace(pos, key.size(), value);
        };
        replace_all("{shard}", std::to_string(req.shard_index));
        replace_all("{shards}", std::to_string(req.shard_count));
        replace_all("{journal}", req.journal_path);
        replace_all("{journal_flag}", req.resume ? "--resume" : "--journal");
        replace_all("{stream}", req.stream);
        replace_all("{attempt}", std::to_string(req.attempt));
        replace_all("{slot}", std::to_string(req.slot));
        util::Spawn_options options;
        options.stdout_path = "/dev/null";
        options.stderr_path =
            work_dir + "/worker_shard" + std::to_string(req.shard_index) + ".log";
        return util::Subprocess::spawn({"/bin/sh", "-c", command}, options);
    };
}

Coordinator_outcome run_coordinated(const Sweep_grid& grid,
                                    const Scenario_registry& registry,
                                    std::uint64_t base_seed,
                                    const Coordinator_config& config)
{
    if (!config.launcher)
        throw std::invalid_argument{"run_coordinated: a launcher is required"};
    if (config.workers == 0)
        throw std::invalid_argument{"run_coordinated: workers must be >= 1"};
    if (config.max_shard_attempts == 0)
        throw std::invalid_argument{"run_coordinated: max_shard_attempts must be >= 1"};
    if (config.work_dir.empty())
        throw std::invalid_argument{"run_coordinated: work_dir is required"};

    const auto start = clock::now();
    const std::vector<Sweep_task> all_tasks = expand(grid, registry);
    const std::size_t total = all_tasks.size();
    const std::size_t shard_count = config.shards == 0 ? config.workers : config.shards;
    const std::size_t workers = config.workers;

    Coordinator_outcome outcome;
    Coordinator_stats& stats = outcome.stats;
    stats.shards = shard_count;
    stats.workers = workers;
    stats.slots.resize(workers);

    std::vector<Shard_state> shards(shard_count);
    for (std::size_t k = 0; k < shard_count; ++k) {
        Shard_state& shard = shards[k];
        shard.index = k + 1;
        shard.task_count = shard_task_count(total, shard.index, shard_count);
        shard.tailer = Journal_tailer{shard_journal_path(config.work_dir, shard.index)};
        shard.backoff = util::Backoff{config.relaunch_backoff,
                                      base_seed ^ (0xf1ee7u + shard.index)};
        if (shard.task_count == 0)
            shard.status = Shard_state::Status::done; // more shards than tasks
    }

    // ---- fleet state: load what a prior coordinator left behind ------
    // A compatible fleet journal restores attempt counts and marks
    // shards last seen running for adoption: their workers may still be
    // alive (an orphaned local process, or a remote worker streaming
    // into the mirror), so they get a heartbeat window to show progress
    // before being relaunched.  An unreadable fleet file (torn header —
    // our own crash artifact) is discarded; an INCOMPATIBLE one is a
    // configuration error, same contract as the shard journals.
    std::unique_ptr<Fleet_journal> fleet;
    if (!config.fleet_path.empty()) {
        const Fleet_header fleet_header{grid_fingerprint(grid), base_seed, total,
                                        shard_count};
        Fleet_state prior;
        bool have_prior = false;
        if (::access(config.fleet_path.c_str(), F_OK) == 0) {
            try {
                prior = load_fleet(config.fleet_path);
                have_prior = true;
            } catch (const std::runtime_error&) {
                have_prior = false;
            }
        }
        if (have_prior) {
            std::string why;
            if (!fleet_compatible(prior.header, grid, base_seed, total,
                                  shard_count, &why))
                throw std::runtime_error{"run_coordinated: " + config.fleet_path
                                         + ": " + why};
            const auto now = clock::now();
            for (const auto& [index, record] : prior.shards) {
                if (index < 1 || index > shard_count)
                    continue;
                Shard_state& shard = shards[index - 1];
                if (shard.status == Shard_state::Status::done)
                    continue; // zero-task shard
                shard.attempts = record.attempts;
                if (record.status == Fleet_shard_status::running) {
                    shard.adopted_grace = true;
                    shard.last_progress = now;
                    ++stats.adoptions;
                } else if (record.status == Fleet_shard_status::failed
                           && record.attempts >= config.max_shard_attempts) {
                    shard.status = Shard_state::Status::failed;
                }
                // done shards need no flag: their complete mirror
                // journal re-proves it on the first poll below.
            }
        }
        fleet = std::make_unique<Fleet_journal>(config.fleet_path, fleet_header,
                                                /*truncate=*/!have_prior);
        fleet->record_generation(have_prior ? prior.generations + 1 : 1);
    }

    const auto record_fleet = [&](const Shard_state& shard,
                                  Fleet_shard_status status) {
        if (!fleet)
            return;
        Fleet_record record;
        record.shard = shard.index;
        record.status = status;
        record.attempts = shard.attempts;
        record.slot = shard.slot == no_slot ? 0 : shard.slot;
        record.watermark = shard.tailer.entries_seen();
        fleet->record(record);
    };

    // Slot bookkeeping: which shard occupies a slot, whether the slot
    // has run anything yet (the steal/initial distinction), and when
    // the current child attached (busy_ns).
    std::vector<std::size_t> slot_shard(workers, no_slot);
    std::vector<char> slot_used(workers, 0);
    std::vector<clock::time_point> slot_attached(workers);

    // The continuous-merge reorder window: journal entries keyed by
    // global index, drained whenever the head of the window is the next
    // index to emit.  Dedup rule matches preload_from_entries: the
    // first occurrence of an index wins.
    std::map<std::size_t, Journal_entry> ready;
    std::size_t next_index = 0;
    std::size_t merged = 0;

    const auto poll_shard = [&](Shard_state& shard) {
        std::vector<Journal_entry> fresh = shard.tailer.poll();
        if (shard.tailer.have_header() && !shard.header_checked) {
            std::string why;
            if (!journal_compatible(shard.tailer.header(), grid, base_seed, total,
                                    shard.index, shard_count, &why))
                throw std::runtime_error{"run_coordinated: " + shard.tailer.path()
                                         + ": " + why};
            shard.header_checked = true;
        }
        bool advanced = false;
        for (Journal_entry& entry : fresh) {
            // Ignore rows that cannot belong to this shard (a foreign or
            // stale journal) and duplicates of rows already seen.
            if (entry.index >= total
                || entry.index % shard_count != shard.index - 1)
                continue;
            if (entry.index < next_index || ready.count(entry.index) != 0)
                continue;
            ready.emplace(entry.index, std::move(entry));
            ++shard.have;
            advanced = true;
            if (shard.slot != no_slot)
                ++stats.slots[shard.slot].tasks_journaled;
        }
        if (advanced)
            shard.last_progress = clock::now();
    };

    const auto drain_merge = [&]() {
        for (auto it = ready.begin(); it != ready.end() && it->first == next_index;
             it = ready.erase(it), ++next_index) {
            Journal_entry& entry = it->second;
            Task_result result;
            result.task = all_tasks[entry.index];
            result.seed = entry.seed;
            result.status = entry.status;
            result.attempts = entry.attempts;
            result.error = std::move(entry.error);
            result.result = std::move(entry.result);
            result.resumed = true;
            if (result.status == Task_status::ok)
                ++outcome.tally.ok;
            else if (result.status == Task_status::error)
                ++outcome.tally.errors;
            ++merged;
            if (config.on_result)
                config.on_result(result);
            if (config.collect_results)
                outcome.results.push_back(std::move(result));
            if (config.on_progress)
                config.on_progress(merged, total);
        }
    };

    const auto detach_slot = [&](Shard_state& shard) {
        const std::size_t slot = shard.slot;
        stats.slots[slot].busy_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now()
                                                                 - slot_attached[slot])
                .count());
        slot_shard[slot] = no_slot;
        shard.slot = no_slot;
        shard.child = util::Subprocess{};
    };

    /// The child is reaped; drain its journal one last time and decide:
    /// complete -> done, incomplete -> failed attempt (reassign or give
    /// up).  A worker that hung AFTER finishing its shard still counts
    /// as done — journal completeness, not exit status, is the verdict.
    const auto settle_exit = [&](Shard_state& shard) {
        // A streamed worker's final lines may still sit in the socket;
        // ingest them before judging completeness.
        if (config.listener)
            config.listener->poll();
        poll_shard(shard);
        const std::size_t slot = shard.slot;
        if (shard.have == shard.task_count) {
            shard.status = Shard_state::Status::done;
            ++stats.slots[slot].shards_completed;
        } else {
            ++stats.worker_failures;
            ++stats.slots[slot].failures;
            if (shard.attempts >= config.max_shard_attempts) {
                shard.status = Shard_state::Status::failed;
            } else {
                shard.status = Shard_state::Status::pending;
                // Escalating relaunch delay: a crash-looping worker must
                // not burn the attempt budget in milliseconds.
                shard.next_launch = clock::now() + shard.backoff.next();
                ++stats.backoff_waits;
            }
        }
        record_fleet(shard, shard.status == Shard_state::Status::done
                                ? Fleet_shard_status::done
                                : shard.status == Shard_state::Status::failed
                                      ? Fleet_shard_status::failed
                                      : Fleet_shard_status::pending);
        detach_slot(shard);
    };

    bool cancelled = false;
    while (true) {
        if (config.cancel != nullptr
            && config.cancel->load(std::memory_order_relaxed)) {
            cancelled = true;
            break;
        }

        // ---- ingest: remote workers' streamed journal lines ----------
        if (config.listener)
            config.listener->poll();

        // ---- supervise: poll journals, reap exits, kill stalls -------
        for (Shard_state& shard : shards) {
            if (shard.status == Shard_state::Status::running) {
                poll_shard(shard);
                // A fresh worker that has not produced its journal
                // header yet is in STARTUP, where stalls (broken
                // launcher, unreachable host) are detectable on a
                // faster clock than mid-run ones.
                const bool startup =
                    shard.fresh_attempt && !shard.tailer.have_header();
                const auto stall_limit =
                    startup && config.startup_timeout.count() > 0
                        ? config.startup_timeout
                        : config.heartbeat_timeout;
                if (shard.child.try_wait()) {
                    settle_exit(shard);
                } else if (clock::now() - shard.last_progress > stall_limit) {
                    // Stalled: no watermark movement within the
                    // window.  SIGKILL (a stuck process may ignore
                    // anything gentler) and reassign.
                    shard.child.kill(SIGKILL);
                    shard.child.wait();
                    ++stats.watchdog_kills;
                    if (startup)
                        ++stats.watchdog_startup_kills;
                    else
                        ++stats.watchdog_stall_kills;
                    ++stats.slots[shard.slot].watchdog_kills;
                    settle_exit(shard);
                }
            } else if (shard.status == Shard_state::Status::pending) {
                // Pre-existing journals (a coordinator restarted over
                // its work_dir) contribute rows before any launch; a
                // shard they already complete never launches at all.
                poll_shard(shard);
                if (shard.have == shard.task_count) {
                    shard.status = Shard_state::Status::done;
                    shard.adopted_grace = false;
                    record_fleet(shard, Fleet_shard_status::done);
                }
            }
        }

        // ---- dispatch: idle slots pull pending shards in order -------
        for (Shard_state& shard : shards) {
            if (shard.status != Shard_state::Status::pending)
                continue;
            const auto now = clock::now();
            if (shard.adopted_grace) {
                // An adopted shard's worker may still be alive; poll
                // its journal for a heartbeat window before declaring
                // the orphan dead and relaunching.
                if (now - shard.last_progress <= config.heartbeat_timeout)
                    continue;
                shard.adopted_grace = false;
            }
            if (now < shard.next_launch)
                continue; // backoff window after a failed attempt
            std::size_t slot = no_slot;
            for (std::size_t s = 0; s < workers; ++s) {
                if (slot_shard[s] == no_slot) {
                    slot = s;
                    break;
                }
            }
            if (slot == no_slot)
                break; // every worker is busy

            Worker_request request;
            request.shard_index = shard.index;
            request.shard_count = shard_count;
            request.journal_path = shard_journal_path(
                config.worker_journal_dir.empty() ? config.work_dir
                                                  : config.worker_journal_dir,
                shard.index);
            // Resume whenever a prior attempt may have left a journal:
            // the mirror proves one existed, and any attempt after the
            // first could have written one the coordinator cannot see
            // (a remote filesystem).  anc_sweep degrades --resume of a
            // missing/unusable journal to a fresh start.
            request.resume = shard.tailer.have_header() || shard.attempts > 0;
            request.attempt = shard.attempts + 1;
            request.slot = slot;
            request.stream = config.worker_stream;

            shard.child = config.launcher(request);
            ++shard.attempts;
            shard.status = Shard_state::Status::running;
            shard.slot = slot;
            shard.fresh_attempt = !request.resume;
            shard.last_progress = clock::now();
            slot_shard[slot] = shard.index;
            slot_attached[slot] = shard.last_progress;
            ++stats.launches;
            ++stats.slots[slot].launches;
            if (shard.attempts > 1)
                ++stats.reassignments;
            else if (slot_used[slot])
                ++stats.steals; // an idle worker picking up extra work
            slot_used[slot] = 1;
            record_fleet(shard, Fleet_shard_status::running);
        }

        drain_merge();

        bool active = false;
        for (const Shard_state& shard : shards)
            if (shard.status == Shard_state::Status::pending
                || shard.status == Shard_state::Status::running)
                active = true;
        if (!active)
            break;

        std::this_thread::sleep_for(config.poll_interval);
    }

    if (cancelled) {
        // Graceful teardown: SIGTERM lets workers drain in-flight tasks
        // and flush their journals (the anc_sweep signal contract), then
        // SIGKILL whatever ignores the grace window.
        for (Shard_state& shard : shards)
            if (shard.status == Shard_state::Status::running)
                shard.child.kill(SIGTERM);
        for (Shard_state& shard : shards) {
            if (shard.status != Shard_state::Status::running)
                continue;
            if (!shard.child.wait_for(std::chrono::milliseconds{2000})) {
                shard.child.kill(SIGKILL);
                shard.child.wait();
            }
            // Pick up everything the drain flushed, then release the
            // slot without judging the shard — a cancelled run is
            // incomplete by design, not failed.
            if (config.listener)
                config.listener->poll();
            poll_shard(shard);
            if (shard.have == shard.task_count)
                shard.status = Shard_state::Status::done;
            else
                shard.status = Shard_state::Status::pending;
            record_fleet(shard, shard.status == Shard_state::Status::done
                                    ? Fleet_shard_status::done
                                    : Fleet_shard_status::pending);
            detach_slot(shard);
        }
        drain_merge();
    }

    for (const Shard_state& shard : shards) {
        if (shard.status == Shard_state::Status::failed)
            ++outcome.failed_shards;
        stats.dropped_lines += shard.tailer.dropped_lines();
    }
    if (config.listener)
        stats.transport = config.listener->stats();
    outcome.completed = merged == total;
    outcome.cancelled = cancelled;
    outcome.tally.skipped = total - merged;
    outcome.tally.cancelled = cancelled;
    stats.merged_tasks = merged;
    stats.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start)
            .count());
    return outcome;
}

} // namespace anc::engine
