#include "engine/coordinator.h"

#include <csignal>
#include <limits>
#include <map>
#include <stdexcept>
#include <thread>
#include <utility>

namespace anc::engine {

namespace {

using clock = std::chrono::steady_clock;

constexpr std::size_t no_slot = std::numeric_limits<std::size_t>::max();

/// Supervision state of one shard: its tailer, the attached child (when
/// running), and the unique-entry count that decides completeness.
struct Shard_state {
    enum class Status { pending, running, done, failed };

    std::size_t index = 1; ///< 1-based shard number
    std::size_t task_count = 0;
    Status status = Status::pending;
    std::size_t attempts = 0;
    std::size_t slot = no_slot;
    util::Subprocess child;
    Journal_tailer tailer;
    clock::time_point last_progress{};
    /// Unique task indices of this shard observed so far (merged or
    /// waiting in the reorder window).  == task_count means complete.
    std::size_t have = 0;
    bool header_checked = false;
};

/// Tasks a round-robin shard K/S owns out of `total` (the number of
/// global indices with index % S == K-1).
std::size_t shard_task_count(std::size_t total, std::size_t shard_index,
                             std::size_t shard_count)
{
    const std::size_t first = shard_index - 1;
    return total > first ? (total - first + shard_count - 1) / shard_count : 0;
}

} // namespace

std::string shard_journal_path(const std::string& work_dir, std::size_t shard_index)
{
    return work_dir + "/shard" + std::to_string(shard_index) + ".anj";
}

Worker_launcher exec_launcher(std::string worker_bin,
                              std::vector<std::string> grid_argv,
                              std::size_t worker_threads, std::string work_dir)
{
    return [worker_bin = std::move(worker_bin), grid_argv = std::move(grid_argv),
            worker_threads, work_dir = std::move(work_dir)](const Worker_request& req) {
        std::vector<std::string> argv;
        argv.reserve(grid_argv.size() + 8);
        argv.push_back(worker_bin);
        argv.insert(argv.end(), grid_argv.begin(), grid_argv.end());
        argv.push_back("--quiet");
        argv.push_back("--threads");
        argv.push_back(std::to_string(worker_threads));
        argv.push_back("--shard");
        argv.push_back(std::to_string(req.shard_index) + "/"
                       + std::to_string(req.shard_count));
        // --resume implies journaling into the same file, so a relaunch
        // keeps every task the dead worker already completed.
        argv.push_back(req.resume ? "--resume" : "--journal");
        argv.push_back(req.journal_path);
        util::Spawn_options options;
        options.stdout_path = "/dev/null";
        options.stderr_path =
            work_dir + "/worker_shard" + std::to_string(req.shard_index) + ".log";
        return util::Subprocess::spawn(argv, options);
    };
}

Coordinator_outcome run_coordinated(const Sweep_grid& grid,
                                    const Scenario_registry& registry,
                                    std::uint64_t base_seed,
                                    const Coordinator_config& config)
{
    if (!config.launcher)
        throw std::invalid_argument{"run_coordinated: a launcher is required"};
    if (config.workers == 0)
        throw std::invalid_argument{"run_coordinated: workers must be >= 1"};
    if (config.max_shard_attempts == 0)
        throw std::invalid_argument{"run_coordinated: max_shard_attempts must be >= 1"};
    if (config.work_dir.empty())
        throw std::invalid_argument{"run_coordinated: work_dir is required"};

    const auto start = clock::now();
    const std::vector<Sweep_task> all_tasks = expand(grid, registry);
    const std::size_t total = all_tasks.size();
    const std::size_t shard_count = config.shards == 0 ? config.workers : config.shards;
    const std::size_t workers = config.workers;

    Coordinator_outcome outcome;
    Coordinator_stats& stats = outcome.stats;
    stats.shards = shard_count;
    stats.workers = workers;
    stats.slots.resize(workers);

    std::vector<Shard_state> shards(shard_count);
    for (std::size_t k = 0; k < shard_count; ++k) {
        Shard_state& shard = shards[k];
        shard.index = k + 1;
        shard.task_count = shard_task_count(total, shard.index, shard_count);
        shard.tailer = Journal_tailer{shard_journal_path(config.work_dir, shard.index)};
        if (shard.task_count == 0)
            shard.status = Shard_state::Status::done; // more shards than tasks
    }

    // Slot bookkeeping: which shard occupies a slot, whether the slot
    // has run anything yet (the steal/initial distinction), and when
    // the current child attached (busy_ns).
    std::vector<std::size_t> slot_shard(workers, no_slot);
    std::vector<char> slot_used(workers, 0);
    std::vector<clock::time_point> slot_attached(workers);

    // The continuous-merge reorder window: journal entries keyed by
    // global index, drained whenever the head of the window is the next
    // index to emit.  Dedup rule matches preload_from_entries: the
    // first occurrence of an index wins.
    std::map<std::size_t, Journal_entry> ready;
    std::size_t next_index = 0;
    std::size_t merged = 0;

    const auto poll_shard = [&](Shard_state& shard) {
        std::vector<Journal_entry> fresh = shard.tailer.poll();
        if (shard.tailer.have_header() && !shard.header_checked) {
            std::string why;
            if (!journal_compatible(shard.tailer.header(), grid, base_seed, total,
                                    shard.index, shard_count, &why))
                throw std::runtime_error{"run_coordinated: " + shard.tailer.path()
                                         + ": " + why};
            shard.header_checked = true;
        }
        bool advanced = false;
        for (Journal_entry& entry : fresh) {
            // Ignore rows that cannot belong to this shard (a foreign or
            // stale journal) and duplicates of rows already seen.
            if (entry.index >= total
                || entry.index % shard_count != shard.index - 1)
                continue;
            if (entry.index < next_index || ready.count(entry.index) != 0)
                continue;
            ready.emplace(entry.index, std::move(entry));
            ++shard.have;
            advanced = true;
            if (shard.slot != no_slot)
                ++stats.slots[shard.slot].tasks_journaled;
        }
        if (advanced)
            shard.last_progress = clock::now();
    };

    const auto drain_merge = [&]() {
        for (auto it = ready.begin(); it != ready.end() && it->first == next_index;
             it = ready.erase(it), ++next_index) {
            Journal_entry& entry = it->second;
            Task_result result;
            result.task = all_tasks[entry.index];
            result.seed = entry.seed;
            result.status = entry.status;
            result.attempts = entry.attempts;
            result.error = std::move(entry.error);
            result.result = std::move(entry.result);
            result.resumed = true;
            if (result.status == Task_status::ok)
                ++outcome.tally.ok;
            else if (result.status == Task_status::error)
                ++outcome.tally.errors;
            ++merged;
            if (config.on_result)
                config.on_result(result);
            if (config.collect_results)
                outcome.results.push_back(std::move(result));
            if (config.on_progress)
                config.on_progress(merged, total);
        }
    };

    const auto detach_slot = [&](Shard_state& shard) {
        const std::size_t slot = shard.slot;
        stats.slots[slot].busy_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now()
                                                                 - slot_attached[slot])
                .count());
        slot_shard[slot] = no_slot;
        shard.slot = no_slot;
        shard.child = util::Subprocess{};
    };

    /// The child is reaped; drain its journal one last time and decide:
    /// complete -> done, incomplete -> failed attempt (reassign or give
    /// up).  A worker that hung AFTER finishing its shard still counts
    /// as done — journal completeness, not exit status, is the verdict.
    const auto settle_exit = [&](Shard_state& shard) {
        poll_shard(shard);
        const std::size_t slot = shard.slot;
        if (shard.have == shard.task_count) {
            shard.status = Shard_state::Status::done;
            ++stats.slots[slot].shards_completed;
        } else {
            ++stats.worker_failures;
            ++stats.slots[slot].failures;
            shard.status = shard.attempts >= config.max_shard_attempts
                               ? Shard_state::Status::failed
                               : Shard_state::Status::pending;
        }
        detach_slot(shard);
    };

    bool cancelled = false;
    while (true) {
        if (config.cancel != nullptr
            && config.cancel->load(std::memory_order_relaxed)) {
            cancelled = true;
            break;
        }

        // ---- supervise: poll journals, reap exits, kill stalls -------
        for (Shard_state& shard : shards) {
            if (shard.status == Shard_state::Status::running) {
                poll_shard(shard);
                if (shard.child.try_wait()) {
                    settle_exit(shard);
                } else if (clock::now() - shard.last_progress
                           > config.heartbeat_timeout) {
                    // Stalled: no watermark movement within the
                    // heartbeat window.  SIGKILL (a stuck process may
                    // ignore anything gentler) and reassign.
                    shard.child.kill(SIGKILL);
                    shard.child.wait();
                    ++stats.watchdog_kills;
                    ++stats.slots[shard.slot].watchdog_kills;
                    settle_exit(shard);
                }
            } else if (shard.status == Shard_state::Status::pending) {
                // Pre-existing journals (a coordinator restarted over
                // its work_dir) contribute rows before any launch; a
                // shard they already complete never launches at all.
                poll_shard(shard);
                if (shard.have == shard.task_count)
                    shard.status = Shard_state::Status::done;
            }
        }

        // ---- dispatch: idle slots pull pending shards in order -------
        for (Shard_state& shard : shards) {
            if (shard.status != Shard_state::Status::pending)
                continue;
            std::size_t slot = no_slot;
            for (std::size_t s = 0; s < workers; ++s) {
                if (slot_shard[s] == no_slot) {
                    slot = s;
                    break;
                }
            }
            if (slot == no_slot)
                break; // every worker is busy

            Worker_request request;
            request.shard_index = shard.index;
            request.shard_count = shard_count;
            request.journal_path = shard.tailer.path();
            request.resume = shard.tailer.have_header();
            request.attempt = shard.attempts + 1;
            request.slot = slot;

            shard.child = config.launcher(request);
            ++shard.attempts;
            shard.status = Shard_state::Status::running;
            shard.slot = slot;
            shard.last_progress = clock::now();
            slot_shard[slot] = shard.index;
            slot_attached[slot] = shard.last_progress;
            ++stats.launches;
            ++stats.slots[slot].launches;
            if (shard.attempts > 1)
                ++stats.reassignments;
            else if (slot_used[slot])
                ++stats.steals; // an idle worker picking up extra work
            slot_used[slot] = 1;
        }

        drain_merge();

        bool active = false;
        for (const Shard_state& shard : shards)
            if (shard.status == Shard_state::Status::pending
                || shard.status == Shard_state::Status::running)
                active = true;
        if (!active)
            break;

        std::this_thread::sleep_for(config.poll_interval);
    }

    if (cancelled) {
        // Graceful teardown: SIGTERM lets workers drain in-flight tasks
        // and flush their journals (the anc_sweep signal contract), then
        // SIGKILL whatever ignores the grace window.
        for (Shard_state& shard : shards)
            if (shard.status == Shard_state::Status::running)
                shard.child.kill(SIGTERM);
        for (Shard_state& shard : shards) {
            if (shard.status != Shard_state::Status::running)
                continue;
            if (!shard.child.wait_for(std::chrono::milliseconds{2000})) {
                shard.child.kill(SIGKILL);
                shard.child.wait();
            }
            // Pick up everything the drain flushed, then release the
            // slot without judging the shard — a cancelled run is
            // incomplete by design, not failed.
            poll_shard(shard);
            if (shard.have == shard.task_count)
                shard.status = Shard_state::Status::done;
            else
                shard.status = Shard_state::Status::pending;
            detach_slot(shard);
        }
        drain_merge();
    }

    for (const Shard_state& shard : shards) {
        if (shard.status == Shard_state::Status::failed)
            ++outcome.failed_shards;
        stats.dropped_lines += shard.tailer.dropped_lines();
    }
    outcome.completed = merged == total;
    outcome.cancelled = cancelled;
    outcome.tally.skipped = total - merged;
    outcome.tally.cancelled = cancelled;
    stats.merged_tasks = merged;
    stats.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start)
            .count());
    return outcome;
}

} // namespace anc::engine
