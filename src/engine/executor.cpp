#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "dsp/workspace.h"
#include "util/obs.h"
#include "util/rng.h"

namespace anc::engine {

namespace {

std::size_t threads_from_env()
{
    if (const char* env = std::getenv("ANC_ENGINE_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<std::size_t>(parsed);
    }
    return 0;
}

} // namespace

std::uint64_t derive_task_seed(std::uint64_t base_seed, std::size_t seed_index)
{
    return mix_seed(base_seed, seed_index);
}

std::size_t resolve_thread_count(const Executor_config& config)
{
    std::size_t threads = threads_from_env();
    if (threads == 0)
        threads = config.threads;
    if (threads == 0)
        threads = std::thread::hardware_concurrency();
    return threads == 0 ? 1 : threads;
}

std::vector<Task_result> run_sweep(const std::vector<Sweep_task>& tasks,
                                   const Scenario_registry& registry,
                                   const Executor_config& config)
{
    std::vector<Task_result> results{tasks.size()};
    if (tasks.empty())
        return results;

    // Resolve every scenario up front so a bad name fails fast on the
    // calling thread, not inside a worker.
    std::vector<const Scenario*> scenarios;
    scenarios.reserve(tasks.size());
    for (const Sweep_task& task : tasks)
        scenarios.push_back(&registry.at(task.scenario));

    const std::size_t thread_count =
        std::min(resolve_thread_count(config), tasks.size());

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> finished{0};
    std::mutex progress_mutex;
    std::exception_ptr first_error;
    std::once_flag error_once;

    using clock = std::chrono::steady_clock;
    const bool tracing = config.telemetry != nullptr;
    const clock::time_point sweep_start = clock::now();
    std::vector<obs::Worker_stats> worker_stats;
    if (tracing)
        worker_stats.resize(thread_count);

    const auto worker = [&](std::size_t worker_index) {
        // Each worker owns one Workspace for its whole lifetime, so the
        // scenarios' sample-pipeline scratch buffers are recycled across
        // tasks instead of reallocated per run.  Results are unaffected:
        // leases always hand out cleared buffers (see dsp/workspace.h;
        // the workspace-regression test compares emitted JSON bytes).
        // The obs::Recorder follows the same lease: one per worker,
        // bound only when tracing, so telemetry-off runs skip even the
        // thread-local store.
        dsp::Workspace workspace;
        const dsp::Workspace::Bind bind{workspace};
        obs::Recorder recorder;
        std::optional<obs::Recorder::Bind> obs_bind;
        if (tracing)
            obs_bind.emplace(recorder);
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= tasks.size())
                return;
            try {
                Task_result& slot = results[i];
                slot.task = tasks[i];
                slot.seed = derive_task_seed(config.base_seed, tasks[i].seed_index);
                if (tracing) {
                    recorder.begin_task();
                    const clock::time_point task_start = clock::now();
                    slot.result = scenarios[i]->run(tasks[i].config, slot.seed);
                    const clock::time_point task_end = clock::now();
                    obs::Task_telemetry& telemetry = slot.result.telemetry;
                    telemetry = recorder.task();
                    telemetry.wall_ns = static_cast<std::uint64_t>(
                        std::chrono::nanoseconds{task_end - task_start}.count());
                    telemetry.queue_ns = static_cast<std::uint64_t>(
                        std::chrono::nanoseconds{task_start - sweep_start}.count());
                    telemetry.worker = static_cast<std::uint32_t>(worker_index);
                    worker_stats[worker_index].busy_ns += telemetry.wall_ns;
                    ++worker_stats[worker_index].tasks;
                } else {
                    slot.result = scenarios[i]->run(tasks[i].config, slot.seed);
                }
            } catch (...) {
                std::call_once(error_once, [&] { first_error = std::current_exception(); });
                next.store(tasks.size()); // drain remaining work
                return;
            }
            if (config.on_progress) {
                // Increment under the mutex so callbacks see a strictly
                // monotonic "done" count.
                const std::lock_guard<std::mutex> lock{progress_mutex};
                config.on_progress(finished.fetch_add(1) + 1, tasks.size());
            }
        }
    };

    if (thread_count <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> workers;
        workers.reserve(thread_count);
        for (std::size_t t = 0; t < thread_count; ++t)
            workers.emplace_back(worker, t);
        for (std::thread& thread : workers)
            thread.join();
    }

    if (first_error)
        std::rethrow_exception(first_error);

    if (tracing) {
        // Merge in task-index order — never completion order — so the
        // counter and stage totals are identical for any thread count.
        obs::Sweep_telemetry& sweep = *config.telemetry;
        sweep = obs::Sweep_telemetry{};
        sweep.threads = thread_count;
        sweep.tasks = results.size();
        sweep.wall_ns = static_cast<std::uint64_t>(
            std::chrono::nanoseconds{clock::now() - sweep_start}.count());
        for (const Task_result& task_result : results) {
            const obs::Task_telemetry& telemetry = task_result.result.telemetry;
            sweep.counters.merge(telemetry.counters);
            sweep.stages.merge(telemetry.stages);
            sweep.latency.add(telemetry.wall_ns);
        }
        sweep.workers = std::move(worker_stats);
    }
    return results;
}

std::vector<Task_result> run_sweep(const Sweep_grid& grid, const Executor_config& config)
{
    const Scenario_registry& registry = Scenario_registry::builtin();
    return run_sweep(expand(grid, registry), registry, config);
}

} // namespace anc::engine
