#include "engine/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "dsp/workspace.h"
#include "util/obs.h"
#include "util/rng.h"

namespace anc::engine {

namespace {

std::size_t threads_from_env()
{
    if (const char* env = std::getenv("ANC_ENGINE_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<std::size_t>(parsed);
    }
    return 0;
}

} // namespace

const char* to_string(Task_status status)
{
    switch (status) {
    case Task_status::ok: return "ok";
    case Task_status::error: return "error";
    case Task_status::skipped: return "skipped";
    }
    return "skipped";
}

std::uint64_t derive_task_seed(std::uint64_t base_seed, std::size_t seed_index)
{
    return mix_seed(base_seed, seed_index);
}

std::size_t resolve_thread_count(const Executor_config& config)
{
    std::size_t threads = threads_from_env();
    if (threads == 0)
        threads = config.threads;
    if (threads == 0)
        threads = std::thread::hardware_concurrency();
    return threads == 0 ? 1 : threads;
}

std::vector<Task_result> run_sweep(const std::vector<Sweep_task>& tasks,
                                   const Scenario_registry& registry,
                                   const Executor_config& config,
                                   Run_tally* tally)
{
    std::vector<Task_result> results;
    if (config.collect_results)
        results.resize(tasks.size());
    Run_tally counts;
    if (tasks.empty()) {
        if (tally)
            *tally = counts;
        return results;
    }

    // Resolve every scenario up front so a bad name fails fast on the
    // calling thread, not inside a worker.
    std::vector<const Scenario*> scenarios;
    scenarios.reserve(tasks.size());
    for (const Sweep_task& task : tasks)
        scenarios.push_back(&registry.at(task.scenario));

    const std::size_t thread_count =
        std::min(resolve_thread_count(config), tasks.size());

    using clock = std::chrono::steady_clock;
    const bool tracing = config.telemetry != nullptr;
    const clock::time_point sweep_start = clock::now();
    std::vector<obs::Worker_stats> worker_stats;
    obs::Sweep_telemetry merged;
    if (tracing)
        worker_stats.resize(thread_count);

    // Positions a previous process already completed: never re-run, but
    // their results flow through the ordered emission path like any
    // other completion so a resumed stream is indistinguishable from an
    // uninterrupted one.
    std::vector<char> done(tasks.size(), 0);

    // Ordered emission: completions land in `window` and drain to
    // on_result strictly by position.  The window holds only results
    // whose predecessors are still running — O(threads) in practice —
    // plus, at the very start of a resumed run, the preloaded results
    // (which the first drain below flushes immediately).
    std::mutex emit_mutex;
    std::map<std::size_t, Task_result> window;
    std::size_t next_emit = 0;
    std::size_t executed_done = 0;
    std::size_t to_execute = tasks.size();

    // Emit one completed result: merge its telemetry (index order, so
    // totals are thread-invariant), hand it to the streaming sink, tally
    // it, and park it in the result vector.  Caller holds emit_mutex.
    const auto emit_one = [&](std::size_t position, Task_result& completed) {
        if (tracing && !completed.resumed) {
            merged.counters.merge(completed.result.telemetry.counters);
            merged.stages.merge(completed.result.telemetry.stages);
            merged.latency.add(completed.result.telemetry.wall_ns);
        }
        if (config.on_result)
            config.on_result(completed);
        switch (completed.status) {
        case Task_status::ok: ++counts.ok; break;
        case Task_status::error: ++counts.errors; break;
        case Task_status::skipped: break;
        }
        if (config.collect_results)
            results[position] = std::move(completed);
    };

    // Drain the in-order prefix of the window.  Caller holds emit_mutex.
    const auto drain = [&] {
        while (!window.empty() && window.begin()->first == next_emit) {
            emit_one(next_emit, window.begin()->second);
            window.erase(window.begin());
            ++next_emit;
        }
    };

    if (config.preloaded) {
        for (auto& [position, preloaded] : *config.preloaded) {
            if (position >= tasks.size())
                continue;
            done[position] = 1;
            --to_execute;
            ++counts.resumed;
            Task_result slot = std::move(preloaded);
            // The journal stores index + seed + result; the task config
            // is re-derived from the grid, and the seed is a pure
            // function of it — stamp both so preloaded rows are
            // indistinguishable from executed ones.
            slot.task = tasks[position];
            slot.seed = derive_task_seed(config.base_seed, tasks[position].seed_index);
            slot.resumed = true;
            window.emplace(position, std::move(slot));
        }
        const std::lock_guard<std::mutex> lock{emit_mutex};
        drain();
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::once_flag error_once;
    std::atomic<bool> cancelled{false};

    const auto worker = [&](std::size_t worker_index) {
        // Each worker owns one Workspace for its whole lifetime, so the
        // scenarios' sample-pipeline scratch buffers are recycled across
        // tasks instead of reallocated per run.  Results are unaffected:
        // leases always hand out cleared buffers (see dsp/workspace.h;
        // the workspace-regression test compares emitted JSON bytes).
        // The obs::Recorder follows the same lease: one per worker,
        // bound only when tracing, so telemetry-off runs skip even the
        // thread-local store.
        dsp::Workspace workspace;
        const dsp::Workspace::Bind bind{workspace};
        obs::Recorder recorder;
        std::optional<obs::Recorder::Bind> obs_bind;
        if (tracing)
            obs_bind.emplace(recorder);
        for (;;) {
            if (config.cancel && config.cancel->load(std::memory_order_relaxed)) {
                cancelled.store(true, std::memory_order_relaxed);
                return;
            }
            const std::size_t i = next.fetch_add(1);
            if (i >= tasks.size())
                return;
            if (done[i])
                continue; // completed by a previous process (resume)
            Task_result slot;
            slot.task = tasks[i];
            slot.seed = derive_task_seed(config.base_seed, tasks[i].seed_index);
            const std::size_t max_attempts =
                config.isolate_faults ? std::max<std::size_t>(config.max_attempts, 1)
                                      : 1;
            for (;;) {
                ++slot.attempts;
                try {
                    if (tracing) {
                        recorder.begin_task();
                        const clock::time_point task_start = clock::now();
                        slot.result = scenarios[i]->run(tasks[i].config, slot.seed);
                        const clock::time_point task_end = clock::now();
                        obs::Task_telemetry& telemetry = slot.result.telemetry;
                        telemetry = recorder.task();
                        telemetry.wall_ns = static_cast<std::uint64_t>(
                            std::chrono::nanoseconds{task_end - task_start}.count());
                        telemetry.queue_ns = static_cast<std::uint64_t>(
                            std::chrono::nanoseconds{task_start - sweep_start}.count());
                        telemetry.worker = static_cast<std::uint32_t>(worker_index);
                        worker_stats[worker_index].busy_ns += telemetry.wall_ns;
                        ++worker_stats[worker_index].tasks;
                    } else {
                        slot.result = scenarios[i]->run(tasks[i].config, slot.seed);
                    }
                    slot.status = Task_status::ok;
                    break;
                } catch (const std::exception& error) {
                    if (!config.isolate_faults) {
                        std::call_once(error_once,
                                       [&] { first_error = std::current_exception(); });
                        next.store(tasks.size()); // drain remaining work
                        return;
                    }
                    if (slot.attempts >= max_attempts) {
                        slot.status = Task_status::error;
                        slot.error = error.what();
                        slot.result = Scenario_result{}; // no partial state escapes
                        break;
                    }
                } catch (...) {
                    if (!config.isolate_faults) {
                        std::call_once(error_once,
                                       [&] { first_error = std::current_exception(); });
                        next.store(tasks.size());
                        return;
                    }
                    if (slot.attempts >= max_attempts) {
                        slot.status = Task_status::error;
                        slot.error = "unknown exception";
                        slot.result = Scenario_result{};
                        break;
                    }
                }
            }
            {
                // One mutex serializes every consumer-facing hook: the
                // journal append (completion order, BEFORE anything else
                // reads the result — Cdf sample order must be captured
                // pre-aggregation), the ordered on_result drain, and
                // on_progress, which therefore sees a strictly monotonic
                // "done" count.
                const std::lock_guard<std::mutex> lock{emit_mutex};
                if (config.on_complete)
                    config.on_complete(slot);
                window.emplace(i, std::move(slot));
                drain();
                ++executed_done;
                if (config.on_progress)
                    config.on_progress(executed_done, to_execute);
            }
        }
    };

    if (thread_count <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> workers;
        workers.reserve(thread_count);
        for (std::size_t t = 0; t < thread_count; ++t)
            workers.emplace_back(worker, t);
        for (std::thread& thread : workers)
            thread.join();
    }

    if (first_error)
        std::rethrow_exception(first_error);

    {
        // A cancelled (or resumed-with-holes) run can leave completed
        // results stranded behind never-executed positions.  Flush them
        // in ascending index order — the stream stays index-sorted, just
        // with gaps where tasks were drained.
        const std::lock_guard<std::mutex> lock{emit_mutex};
        for (auto& [position, completed] : window)
            emit_one(position, completed);
        window.clear();
    }

    counts.skipped = tasks.size() - counts.ok - counts.errors;
    counts.cancelled = cancelled.load(std::memory_order_relaxed);
    if (tally)
        *tally = counts;

    if (tracing) {
        // The counter/stage/latency totals were merged at the ordered
        // drain point — task-index order, never completion order — so
        // they are identical for any thread count.  Resumed slots are
        // excluded: their timings belong to the process that ran them.
        obs::Sweep_telemetry& sweep = *config.telemetry;
        sweep = std::move(merged);
        sweep.threads = thread_count;
        sweep.tasks = tasks.size();
        sweep.wall_ns = static_cast<std::uint64_t>(
            std::chrono::nanoseconds{clock::now() - sweep_start}.count());
        sweep.workers = std::move(worker_stats);
    }
    return results;
}

std::vector<Task_result> run_sweep(const Sweep_grid& grid, const Executor_config& config)
{
    const Scenario_registry& registry = Scenario_registry::builtin();
    return run_sweep(expand(grid, registry), registry, config);
}

} // namespace anc::engine
