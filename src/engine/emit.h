// Result emitters: CSV, JSON, and the bench-style text table.
//
// Both structured formats are fully deterministic: rows follow task /
// summary order (itself fixed by grid expansion), map-valued fields are
// emitted in key order, and doubles are printed with a fixed shortest
// round-trip format — so two sweeps with identical results emit
// byte-identical files regardless of thread count.  Schemas are
// documented in ENGINE.md.

#pragma once

#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "engine/report.h"

namespace anc::engine {

/// Schema identifier embedded in every emitted sweep artifact (the JSON
/// document's "schema" field and a leading `#schema=` comment line on
/// both CSVs).  v3 = v2 plus the `math_profile` tag on every task/point
/// row; readers of v2 may treat the new field as defaulted to "exact".
inline constexpr const char* sweep_schema = "anc.sweep.v3";

/// One CSV row per task (the raw sweep), header included.
void write_tasks_csv(std::ostream& out, const std::vector<Task_result>& results);

/// One CSV row per grid point (the aggregate), header included.
void write_summary_csv(std::ostream& out, const std::vector<Point_summary>& summaries);

/// A single JSON document: {"tasks": [...], "points": [...]}.
void write_json(std::ostream& out, const std::vector<Task_result>& results,
                const std::vector<Point_summary>& summaries);

/// The JSON document as a string (convenient for byte-identity checks).
std::string to_json(const std::vector<Task_result>& results,
                    const std::vector<Point_summary>& summaries);

/// Bench-style aggregate table on a stdio stream.
void print_summary_table(std::FILE* out, const std::vector<Point_summary>& summaries);

/// Honor the ANC_ENGINE_CSV / ANC_ENGINE_JSON environment variables:
/// when set, write the summary CSV / full JSON to those paths.  Returns
/// the number of files written; throws std::runtime_error when a path
/// cannot be opened.
std::size_t emit_env_reports(const std::vector<Task_result>& results,
                             const std::vector<Point_summary>& summaries);

} // namespace anc::engine
