// Result emitters: CSV, JSON, and the bench-style text table.
//
// Both structured formats are fully deterministic: rows follow task /
// summary order (itself fixed by grid expansion), map-valued fields are
// emitted in key order, and doubles are printed with a fixed shortest
// round-trip format — so two sweeps with identical results emit
// byte-identical files regardless of thread count.  Schemas are
// documented in ENGINE.md.
//
// Every batch writer is built from the per-row functions below, which
// the streaming writers reuse verbatim — a streamed document and a
// batch document over the same results are byte-identical by
// construction, not by test alone.

#pragma once

#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "engine/report.h"

namespace anc::engine {

/// Schema identifier embedded in every emitted sweep artifact (the JSON
/// document's "schema" field and a leading `#schema=` comment line on
/// both CSVs).  v4 = v3 plus the fault-isolation surface: a `status`
/// column on task rows (`ok` / `error` / `skipped`, with the error
/// message as an extra JSON field on errored rows) and an `errors`
/// count on point rows.  Readers of v3 may treat the new fields as
/// `ok` / 0.
inline constexpr const char* sweep_schema = "anc.sweep.v4";

// ---- per-row building blocks (streaming emission) ---------------------

/// The tasks-CSV preamble: `#schema=` comment line plus the header row.
void write_tasks_csv_header(std::ostream& out);

/// One tasks-CSV data row.
void write_task_csv_row(std::ostream& out, const Task_result& result);

/// One element of the JSON document's "tasks" array (no separators).
void write_task_json(std::ostream& out, const Task_result& result);

/// One element of the JSON document's "points" array (no separators).
void write_point_json(std::ostream& out, const Point_summary& summary);

/// Streams the anc.sweep JSON document row by row: the constructor
/// writes the prefix, add() appends one task row as it completes, and
/// finish() closes the tasks array and writes the points.  Memory is
/// O(1) in the task count — the `anc_sweep --stream` sink.
class Json_stream_writer {
public:
    explicit Json_stream_writer(std::ostream& out);
    void add(const Task_result& result);
    void finish(const std::vector<Point_summary>& summaries);

private:
    std::ostream& out_;
    bool first_ = true;
};

/// Streams the per-task CSV: header on construction, one row per add().
class Tasks_csv_stream_writer {
public:
    explicit Tasks_csv_stream_writer(std::ostream& out);
    void add(const Task_result& result);

private:
    std::ostream& out_;
};

// ---- batch writers ----------------------------------------------------

/// One CSV row per task (the raw sweep), header included.
void write_tasks_csv(std::ostream& out, const std::vector<Task_result>& results);

/// One CSV row per grid point (the aggregate), header included.
void write_summary_csv(std::ostream& out, const std::vector<Point_summary>& summaries);

/// A single JSON document: {"tasks": [...], "points": [...]}.
void write_json(std::ostream& out, const std::vector<Task_result>& results,
                const std::vector<Point_summary>& summaries);

/// The JSON document as a string (convenient for byte-identity checks).
std::string to_json(const std::vector<Task_result>& results,
                    const std::vector<Point_summary>& summaries);

/// Bench-style aggregate table on a stdio stream.
void print_summary_table(std::FILE* out, const std::vector<Point_summary>& summaries);

/// Honor the ANC_ENGINE_CSV / ANC_ENGINE_JSON environment variables:
/// when set, write the summary CSV / full JSON to those paths (atomic
/// temp-file + rename, so a crash never publishes a truncated
/// document).  Returns the number of files written; throws
/// std::runtime_error when a path cannot be written.
std::size_t emit_env_reports(const std::vector<Task_result>& results,
                             const std::vector<Point_summary>& summaries);

} // namespace anc::engine
