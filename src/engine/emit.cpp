#include "engine/emit.h"

#include <cinttypes>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.h"

namespace anc::engine {

namespace {

/// Fixed, locale-independent double formatting (%.17g round-trips every
/// finite double), so emitted files are byte-stable across runs.
std::string fmt(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

std::string fmt_seed(std::uint64_t value)
{
    // Seeds use the full 64-bit range; JSON numbers only round-trip 53
    // bits, so seeds travel as strings in both formats.
    char buffer[24];
    std::snprintf(buffer, sizeof buffer, "%" PRIu64, value);
    return buffer;
}

std::string json_escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

struct Cdf_stats {
    std::size_t count = 0;
    double mean = 0.0, p50 = 0.0, p90 = 0.0, min = 0.0, max = 0.0;
};

Cdf_stats stats_of(const Cdf& cdf)
{
    Cdf_stats stats;
    stats.count = cdf.count();
    if (!cdf.empty()) {
        stats.mean = cdf.mean();
        stats.p50 = cdf.quantile(0.50);
        stats.p90 = cdf.quantile(0.90);
        stats.min = cdf.min();
        stats.max = cdf.max();
    }
    return stats;
}

void json_cdf(std::ostream& out, const Cdf& cdf)
{
    const Cdf_stats stats = stats_of(cdf);
    out << "{\"count\":" << stats.count << ",\"mean\":" << fmt(stats.mean)
        << ",\"p50\":" << fmt(stats.p50) << ",\"p90\":" << fmt(stats.p90)
        << ",\"min\":" << fmt(stats.min) << ",\"max\":" << fmt(stats.max) << "}";
}

void json_key_fields(std::ostream& out, const Point_key& key)
{
    out << "\"scenario\":\"" << json_escape(key.scenario) << "\",\"scheme\":\""
        << json_escape(key.scheme) << "\",\"math_profile\":\""
        << dsp::to_string(key.math_profile) << "\",\"snr_db\":" << fmt(key.snr_db)
        << ",\"alice_amplitude\":" << fmt(key.alice_amplitude)
        << ",\"bob_amplitude\":" << fmt(key.bob_amplitude)
        << ",\"payload_bits\":" << key.payload_bits
        << ",\"exchanges\":" << key.exchanges
        << ",\"detector_threshold_db\":" << fmt(key.detector_threshold_db)
        << ",\"interleave_rows\":" << key.interleave_rows
        << ",\"coherence_block\":" << key.coherence_block
        << ",\"mean_link_gain\":" << fmt(key.mean_link_gain);
}

void json_metrics(std::ostream& out, const sim::Run_metrics& metrics)
{
    out << "{\"packets_attempted\":" << metrics.packets_attempted
        << ",\"packets_delivered\":" << metrics.packets_delivered
        << ",\"payload_bits_delivered\":" << metrics.payload_bits_delivered
        << ",\"airtime_symbols\":" << fmt(metrics.airtime_symbols)
        << ",\"delivery_rate\":" << fmt(metrics.delivery_rate())
        << ",\"mean_ber\":" << fmt(metrics.mean_ber())
        << ",\"mean_overlap\":" << fmt(metrics.mean_overlap())
        << ",\"raw_throughput\":" << fmt(metrics.raw_throughput())
        << ",\"throughput\":" << fmt(metrics.throughput()) << "}";
}

void json_scalars(std::ostream& out, const std::map<std::string, double>& scalars)
{
    out << "{";
    bool first = true;
    for (const auto& [name, value] : scalars) {
        out << (first ? "" : ",") << "\"" << json_escape(name) << "\":" << fmt(value);
        first = false;
    }
    out << "}";
}

} // namespace

void write_tasks_csv_header(std::ostream& out)
{
    out << "#schema=" << sweep_schema << '\n';
    out << "index,scenario,scheme,math_profile,snr_db,alice_amplitude,bob_amplitude,"
           "payload_bits,exchanges,detector_threshold_db,interleave_rows,"
           "coherence_block,mean_link_gain,repetition,seed,status,packets_attempted,"
           "packets_delivered,payload_bits_delivered,airtime_symbols,delivery_rate,"
           "mean_ber,mean_overlap,raw_throughput,throughput\n";
}

void write_task_csv_row(std::ostream& out, const Task_result& result)
{
    const Sweep_task& task = result.task;
    const sim::Run_metrics& metrics = result.result.metrics;
    out << task.index << ',' << task.scenario << ',' << task.config.scheme << ','
        << dsp::to_string(task.config.math_profile) << ','
        << fmt(task.config.snr_db) << ',' << fmt(task.config.alice_amplitude) << ','
        << fmt(task.config.bob_amplitude) << ',' << task.config.payload_bits << ','
        << task.config.exchanges << ','
        << fmt(task.config.receiver.interference_detector.variance_threshold_db)
        << ',' << task.config.fec_interleave_rows << ','
        << task.config.coherence_block << ',' << fmt(task.config.mean_link_gain)
        << ',' << task.repetition << ','
        << fmt_seed(result.seed) << ',' << to_string(result.status) << ','
        << metrics.packets_attempted << ','
        << metrics.packets_delivered << ',' << metrics.payload_bits_delivered << ','
        << fmt(metrics.airtime_symbols) << ',' << fmt(metrics.delivery_rate()) << ','
        << fmt(metrics.mean_ber()) << ',' << fmt(metrics.mean_overlap()) << ','
        << fmt(metrics.raw_throughput()) << ',' << fmt(metrics.throughput()) << '\n';
}

void write_task_json(std::ostream& out, const Task_result& result)
{
    out << "{\"index\":" << result.task.index << ",";
    json_key_fields(out, key_of(result.task));
    out << ",\"repetition\":" << result.task.repetition << ",\"seed\":\""
        << fmt_seed(result.seed) << "\",\"status\":\"" << to_string(result.status)
        << "\"";
    if (result.status == Task_status::error)
        out << ",\"error\":\"" << json_escape(result.error) << "\"";
    out << ",\"metrics\":";
    json_metrics(out, result.result.metrics);
    out << ",\"scalars\":";
    json_scalars(out, result.result.scalars);
    out << "}";
}

void write_point_json(std::ostream& out, const Point_summary& summary)
{
    out << "{";
    json_key_fields(out, summary.key);
    out << ",\"runs\":" << summary.runs << ",\"errors\":" << summary.errors
        << ",\"throughput\":";
    json_cdf(out, summary.throughput);
    out << ",\"raw_throughput\":";
    json_cdf(out, summary.raw_throughput);
    out << ",\"delivery_rate\":";
    json_cdf(out, summary.delivery_rate);
    out << ",\"run_mean_ber\":";
    json_cdf(out, summary.run_mean_ber);
    out << ",\"run_mean_overlap\":";
    json_cdf(out, summary.run_mean_overlap);
    out << ",\"totals\":";
    json_metrics(out, summary.totals);
    out << ",\"series\":{";
    bool first_series = true;
    for (const auto& [name, cdf] : summary.series) {
        out << (first_series ? "" : ",") << "\"" << json_escape(name) << "\":";
        json_cdf(out, cdf);
        first_series = false;
    }
    out << "},\"scalars\":";
    json_scalars(out, summary.scalars);
    out << "}";
}

Json_stream_writer::Json_stream_writer(std::ostream& out)
    : out_{out}
{
    out_ << "{\"schema\":\"" << sweep_schema << "\",\"tasks\":[";
}

void Json_stream_writer::add(const Task_result& result)
{
    out_ << (first_ ? "" : ",");
    write_task_json(out_, result);
    first_ = false;
}

void Json_stream_writer::finish(const std::vector<Point_summary>& summaries)
{
    out_ << "],\"points\":[";
    bool first = true;
    for (const Point_summary& summary : summaries) {
        out_ << (first ? "" : ",");
        write_point_json(out_, summary);
        first = false;
    }
    out_ << "]}";
}

Tasks_csv_stream_writer::Tasks_csv_stream_writer(std::ostream& out)
    : out_{out}
{
    write_tasks_csv_header(out_);
}

void Tasks_csv_stream_writer::add(const Task_result& result)
{
    write_task_csv_row(out_, result);
}

void write_tasks_csv(std::ostream& out, const std::vector<Task_result>& results)
{
    Tasks_csv_stream_writer writer{out};
    for (const Task_result& result : results)
        writer.add(result);
}

void write_summary_csv(std::ostream& out, const std::vector<Point_summary>& summaries)
{
    out << "#schema=" << sweep_schema << '\n';
    out << "scenario,scheme,math_profile,snr_db,alice_amplitude,bob_amplitude,"
           "payload_bits,exchanges,detector_threshold_db,interleave_rows,"
           "coherence_block,mean_link_gain,runs,errors,packets_attempted,"
           "packets_delivered,delivery_rate,mean_ber,mean_overlap,throughput_mean,"
           "throughput_p50,throughput_p90,throughput_min,throughput_max\n";
    for (const Point_summary& summary : summaries) {
        const Point_key& key = summary.key;
        const Cdf_stats throughput = stats_of(summary.throughput);
        out << key.scenario << ',' << key.scheme << ','
            << dsp::to_string(key.math_profile) << ',' << fmt(key.snr_db) << ','
            << fmt(key.alice_amplitude) << ',' << fmt(key.bob_amplitude) << ','
            << key.payload_bits << ',' << key.exchanges << ','
            << fmt(key.detector_threshold_db) << ',' << key.interleave_rows << ','
            << key.coherence_block << ',' << fmt(key.mean_link_gain) << ','
            << summary.runs << ',' << summary.errors << ','
            << summary.totals.packets_attempted << ','
            << summary.totals.packets_delivered << ','
            << fmt(summary.totals.delivery_rate()) << ','
            << fmt(summary.totals.mean_ber()) << ','
            << fmt(summary.totals.mean_overlap()) << ',' << fmt(throughput.mean) << ','
            << fmt(throughput.p50) << ',' << fmt(throughput.p90) << ','
            << fmt(throughput.min) << ',' << fmt(throughput.max) << '\n';
    }
}

void write_json(std::ostream& out, const std::vector<Task_result>& results,
                const std::vector<Point_summary>& summaries)
{
    Json_stream_writer writer{out};
    for (const Task_result& result : results)
        writer.add(result);
    writer.finish(summaries);
}

std::string to_json(const std::vector<Task_result>& results,
                    const std::vector<Point_summary>& summaries)
{
    std::ostringstream out;
    write_json(out, results, summaries);
    return out.str();
}

void print_summary_table(std::FILE* out, const std::vector<Point_summary>& summaries)
{
    std::fprintf(out, "%-12s %-12s %8s %6s %13s %10s %12s %10s\n", "scenario", "scheme",
                 "SNR(dB)", "runs", "delivered", "mean BER", "throughput", "overlap");
    for (const Point_summary& summary : summaries) {
        std::fprintf(out, "%-12s %-12s %8.1f %6zu %6zu/%-6zu %10.4f %12.5f %10.2f\n",
                     summary.key.scenario.c_str(), summary.key.scheme.c_str(),
                     summary.key.snr_db, summary.runs, summary.totals.packets_delivered,
                     summary.totals.packets_attempted, summary.totals.mean_ber(),
                     summary.throughput.empty() ? 0.0 : summary.throughput.mean(),
                     summary.totals.mean_overlap());
    }
}

std::size_t emit_env_reports(const std::vector<Task_result>& results,
                             const std::vector<Point_summary>& summaries)
{
    std::size_t written = 0;
    if (const char* path = std::getenv("ANC_ENGINE_CSV")) {
        write_file_atomic(path, [&](std::ostream& out) {
            write_summary_csv(out, summaries);
        });
        ++written;
    }
    if (const char* path = std::getenv("ANC_ENGINE_JSON")) {
        write_file_atomic(path, [&](std::ostream& out) {
            write_json(out, results, summaries);
        });
        ++written;
    }
    return written;
}

} // namespace anc::engine
