// Scenario registry: a uniform interface over the topology runners.
//
// Every evaluation in the paper (Figs. 9, 10, 12, 13 and the ablations)
// is "run a topology under a scheme at an operating point, many times,
// and aggregate".  A `Scenario` abstracts one topology (Alice-Bob, X,
// chain) behind a name, a declared set of schemes (its config schema),
// and a pure `run(config, seed)` entry point, so the sweep engine can
// expand grids over scenarios without knowing any topology's concrete
// config struct.
//
// Scenarios must be *pure*: all randomness flows from the seed argument,
// and `run` must be safe to call concurrently from many threads (no
// mutable shared state).  Every builtin runner already satisfies this.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/anc_receiver.h"
#include "dsp/math_profile.h"
#include "sim/metrics.h"
#include "util/obs.h"
#include "util/stats.h"

namespace anc::engine {

/// The uniform operating point handed to every scenario.  Axes a given
/// topology does not support (e.g. per-sender amplitudes on the chain)
/// are ignored by that scenario.
struct Scenario_config {
    std::string scheme = "anc"; // one of Scenario::schemes()
    std::size_t payload_bits = 2048;
    std::size_t exchanges = 25; // packet pairs (or packets) per run
    double snr_db = 25.0;
    double alice_amplitude = 1.0;
    double bob_amplitude = 1.0;
    /// Receiver knobs, handed to every receiver a scenario builds.  The
    /// default equals Anc_receiver_config{}, so grids that do not touch
    /// it reproduce historical results bit-for-bit.  The grid's
    /// detector_thresholds_db axis lands in
    /// receiver.interference_detector.variance_threshold_db.
    Anc_receiver_config receiver{};
    /// Application-layer FEC for scenarios that support it (the FEC
    /// ablation): Hamming(7,4) across this interleaver depth; 0 = off.
    std::size_t fec_interleave_rows = 0;
    /// Fading axes, honored by the *_fading scenarios: samples per
    /// Rayleigh coherence block, and a multiplier on every topology
    /// link gain (mean amplitude; mean *power* scales by its square).
    std::size_t coherence_block = 4096;
    double mean_link_gain = 1.0;
    /// Math profile the whole run executes under (dsp/math_profile.h):
    /// `exact` (default) is byte-identical to the historical runs;
    /// `fast` trades bit-exactness for the polynomial/counter-noise
    /// kernels and is validated by the statistical corridor tests;
    /// `simd` runs the same math through the runtime-dispatched AVX2
    /// backend (bit-identical to `fast`, valid on every machine).  Every
    /// emitted row is tagged with this value so relaxed-profile results
    /// are never silently mixed with exact ones.
    dsp::Math_profile math_profile = dsp::Math_profile::exact;
};

/// What one run produces: the standard metrics plus named auxiliary
/// sample series (per-packet BER at a specific node, ...) and scalar
/// counters (overhear failures, ...).  Keyed maps keep the engine
/// topology-agnostic while letting drivers reach scenario specifics.
struct Scenario_result {
    sim::Run_metrics metrics;
    std::map<std::string, Cdf> series;
    std::map<std::string, double> scalars;
    /// Telemetry captured while the task ran (empty unless the executor
    /// ran with `Executor_config::telemetry` set).  Deliberately *not*
    /// part of `scalars`: the sweep emitters never read it, so enabling
    /// collection cannot change a byte of the sweep JSON/CSV outputs.
    obs::Task_telemetry telemetry;
};

class Scenario {
public:
    virtual ~Scenario() = default;

    virtual const std::string& name() const = 0;

    /// The schemes this topology supports, in canonical order — the
    /// scenario's config schema.  `run` throws std::invalid_argument for
    /// a scheme not listed here.
    virtual const std::vector<std::string>& schemes() const = 0;

    virtual bool supports_scheme(std::string_view scheme) const;

    /// Execute one run.  Must be deterministic in (config, seed) and
    /// thread-safe.
    virtual Scenario_result run(const Scenario_config& config,
                                std::uint64_t seed) const = 0;
};

/// A scenario defined by a plain function — used for the builtins and
/// handy for tests that need cheap synthetic workloads.
class Function_scenario final : public Scenario {
public:
    using Run_fn = std::function<Scenario_result(const Scenario_config&, std::uint64_t)>;

    Function_scenario(std::string name, std::vector<std::string> schemes, Run_fn run);

    const std::string& name() const override { return name_; }
    const std::vector<std::string>& schemes() const override { return schemes_; }
    Scenario_result run(const Scenario_config& config, std::uint64_t seed) const override;

private:
    std::string name_;
    std::vector<std::string> schemes_;
    Run_fn run_;
};

/// Name -> scenario lookup.  Registration of a duplicate name throws;
/// the builtin registry carries the three topology runners.
class Scenario_registry {
public:
    /// Throws std::invalid_argument when the name is already taken (or
    /// the scenario is null / declares no schemes).
    void add(std::unique_ptr<const Scenario> scenario);

    /// nullptr when absent.
    const Scenario* find(std::string_view name) const;

    /// Throws std::out_of_range when absent.
    const Scenario& at(std::string_view name) const;

    /// Registered names in registration order.
    std::vector<std::string> names() const;

    std::size_t size() const { return scenarios_.size(); }

    /// The process-wide registry of builtin scenarios ("alice_bob",
    /// "x_topology", "chain", "alice_bob_fading", "x_topology_fading" —
    /// SCENARIOS.md is the catalog), built once on first use.
    static const Scenario_registry& builtin();

private:
    std::vector<std::unique_ptr<const Scenario>> scenarios_;
};

/// Registers the builtin topology runners (fixed-gain and fading) into
/// `registry` (exposed so tests can build private registries that
/// mirror the builtin one).
void register_builtin_scenarios(Scenario_registry& registry);

} // namespace anc::engine
