#include "engine/scenario.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace anc::engine {

bool Scenario::supports_scheme(std::string_view scheme) const
{
    const auto& all = schemes();
    return std::find(all.begin(), all.end(), scheme) != all.end();
}

Function_scenario::Function_scenario(std::string name, std::vector<std::string> schemes,
                                     Run_fn run)
    : name_{std::move(name)}, schemes_{std::move(schemes)}, run_{std::move(run)}
{
}

Scenario_result Function_scenario::run(const Scenario_config& config,
                                       std::uint64_t seed) const
{
    if (!supports_scheme(config.scheme))
        throw std::invalid_argument{"Scenario '" + name_ + "' has no scheme '"
                                    + config.scheme + "'"};
    return run_(config, seed);
}

void Scenario_registry::add(std::unique_ptr<const Scenario> scenario)
{
    if (!scenario)
        throw std::invalid_argument{"Scenario_registry::add: null scenario"};
    if (scenario->schemes().empty())
        throw std::invalid_argument{"Scenario_registry::add: scenario '"
                                    + scenario->name() + "' declares no schemes"};
    if (find(scenario->name()) != nullptr)
        throw std::invalid_argument{"Scenario_registry::add: duplicate scenario '"
                                    + scenario->name() + "'"};
    scenarios_.push_back(std::move(scenario));
}

const Scenario* Scenario_registry::find(std::string_view name) const
{
    for (const auto& scenario : scenarios_) {
        if (scenario->name() == name)
            return scenario.get();
    }
    return nullptr;
}

const Scenario& Scenario_registry::at(std::string_view name) const
{
    if (const Scenario* scenario = find(name))
        return *scenario;
    throw std::out_of_range{"Scenario_registry::at: no scenario '" + std::string{name}
                            + "'"};
}

std::vector<std::string> Scenario_registry::names() const
{
    std::vector<std::string> out;
    out.reserve(scenarios_.size());
    for (const auto& scenario : scenarios_)
        out.push_back(scenario->name());
    return out;
}

const Scenario_registry& Scenario_registry::builtin()
{
    static const Scenario_registry registry = [] {
        Scenario_registry r;
        register_builtin_scenarios(r);
        return r;
    }();
    return registry;
}

} // namespace anc::engine
