#include "engine/jstream.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "engine/coordinator.h" // shard_journal_path
#include "engine/journal.h"     // journal_crc32, classify_journal_line

namespace anc::engine {

namespace {

using clock = std::chrono::steady_clock;

void put_u32(std::string& out, std::uint32_t value)
{
    out += static_cast<char>(value & 0xff);
    out += static_cast<char>((value >> 8) & 0xff);
    out += static_cast<char>((value >> 16) & 0xff);
    out += static_cast<char>((value >> 24) & 0xff);
}

void put_u64(std::string& out, std::uint64_t value)
{
    put_u32(out, static_cast<std::uint32_t>(value));
    put_u32(out, static_cast<std::uint32_t>(value >> 32));
}

std::uint32_t get_u32(const char* data)
{
    const auto* b = reinterpret_cast<const unsigned char*>(data);
    return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8)
        | (static_cast<std::uint32_t>(b[2]) << 16)
        | (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t get_u64(const char* data)
{
    return static_cast<std::uint64_t>(get_u32(data))
        | (static_cast<std::uint64_t>(get_u32(data + 4)) << 32);
}

bool valid_type(std::uint8_t type)
{
    return type == static_cast<std::uint8_t>(Frame_type::hello)
        || type == static_cast<std::uint8_t>(Frame_type::line)
        || type == static_cast<std::uint8_t>(Frame_type::ack);
}

/// Split `text` at '\n' into complete lines, leaving a torn tail
/// unconsumed; returns bytes consumed.
std::size_t take_lines(const std::string& text, std::vector<std::string>& lines)
{
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t newline = text.find('\n', pos);
        if (newline == std::string::npos)
            break;
        lines.push_back(text.substr(pos, newline - pos));
        pos = newline + 1;
    }
    return pos;
}

} // namespace

// ------------------------------------------------------------- framing

std::string encode_frame(Frame_type type, const std::string& payload)
{
    std::string body;
    body.reserve(5 + payload.size());
    body += static_cast<char>(type);
    put_u32(body, static_cast<std::uint32_t>(payload.size()));
    body += payload;

    std::string out;
    out.reserve(8 + body.size());
    put_u32(out, jstream_magic);
    out += body;
    put_u32(out, journal_crc32(body.data(), body.size()));
    return out;
}

bool Frame_decoder::next(Frame& frame)
{
    if (corrupt_)
        return false;
    // Compact lazily so long sessions do not grow the buffer forever.
    if (consumed_ > (1u << 16) && consumed_ >= buffer_.size() / 2) {
        buffer_.erase(0, consumed_);
        consumed_ = 0;
    }
    const std::size_t available = buffer_.size() - consumed_;
    if (available < 9) // magic + type + length
        return false;
    const char* head = buffer_.data() + consumed_;
    if (get_u32(head) != jstream_magic) {
        corrupt_ = true;
        return false;
    }
    const std::uint8_t type = static_cast<std::uint8_t>(head[4]);
    const std::uint32_t length = get_u32(head + 5);
    if (!valid_type(type) || length > jstream_max_payload) {
        corrupt_ = true;
        return false;
    }
    const std::size_t total = 9 + static_cast<std::size_t>(length) + 4;
    if (available < total)
        return false;
    const std::uint32_t stored = get_u32(head + 9 + length);
    if (journal_crc32(head + 4, 5 + length) != stored) {
        corrupt_ = true;
        return false;
    }
    frame.type = static_cast<Frame_type>(type);
    frame.payload.assign(head + 9, length);
    consumed_ += total;
    return true;
}

std::string hello_payload(std::size_t shard_index, std::size_t shard_count,
                          std::uint64_t token)
{
    char buffer[96];
    std::snprintf(buffer, sizeof buffer, "shard=%zu/%zu token=%llu", shard_index,
                  shard_count, static_cast<unsigned long long>(token));
    return buffer;
}

bool parse_hello(const std::string& payload, std::size_t& shard_index,
                 std::size_t& shard_count, std::uint64_t& token)
{
    unsigned long long k = 0, n = 0, t = 0;
    if (std::sscanf(payload.c_str(), "shard=%llu/%llu token=%llu", &k, &n, &t) != 3)
        return false;
    if (k < 1 || n < 1 || k > n)
        return false;
    shard_index = static_cast<std::size_t>(k);
    shard_count = static_cast<std::size_t>(n);
    token = t;
    return true;
}

std::string ack_payload(std::uint64_t lines, std::uint64_t token)
{
    std::string out;
    out.reserve(16);
    put_u64(out, lines);
    put_u64(out, token);
    return out;
}

bool parse_ack(const std::string& payload, std::uint64_t& lines,
               std::uint64_t& token)
{
    if (payload.size() != 16)
        return false;
    lines = get_u64(payload.data());
    token = get_u64(payload.data() + 8);
    return true;
}

// -------------------------------------------------------------- sender

struct Jstream_sender::Impl {
    enum class Phase { idle, handshaking, streaming };

    Config config;
    std::string path;
    Jstream_sender_stats& stats;

    Phase phase = Phase::idle;
    util::Tcp_socket socket;
    Frame_decoder decoder;
    std::string inbox;
    util::Backoff backoff;
    clock::time_point next_attempt{}; ///< epoch = try immediately
    clock::time_point phase_deadline{};

    std::uint64_t token_counter = 0;
    std::uint64_t expect_token = 0; ///< handshake ack we are waiting for
    std::uint64_t probe_token = 0;  ///< finish() durability probe
    bool probe_acked = false;
    std::size_t probe_lines_sent = 0; ///< lines_sent when the probe left

    int fd = -1;                    ///< local journal, lazily opened
    std::uint64_t cursor_lines = 0; ///< complete lines already sent
    std::uint64_t cursor_offset = 0;

    Impl(Config cfg, std::string journal_path, Jstream_sender_stats& s)
        : config{std::move(cfg)}, path{std::move(journal_path)}, stats{s},
          backoff{config.backoff,
                  0x9e1ad7u ^ static_cast<std::uint64_t>(config.shard_index)}
    {
    }

    ~Impl()
    {
        if (fd >= 0)
            ::close(fd);
    }

    bool ensure_journal_open()
    {
        if (fd >= 0)
            return true;
        fd = ::open(path.c_str(), O_RDONLY);
        return fd >= 0;
    }

    /// Count complete lines in the local journal and the byte offset
    /// just past line `stop_at` (or past the last complete line when
    /// the file is shorter).  Used once per handshake to place the
    /// cursor at the listener's watermark.
    std::uint64_t scan_lines(std::uint64_t stop_at, std::uint64_t& offset_out)
    {
        std::uint64_t lines = 0;
        std::uint64_t offset = 0;
        offset_out = 0;
        if (fd < 0)
            return 0;
        char buffer[1 << 16];
        ssize_t got;
        std::uint64_t file_pos = 0;
        while ((got = ::pread(fd, buffer, sizeof buffer,
                              static_cast<off_t>(file_pos))) > 0) {
            for (ssize_t i = 0; i < got; ++i) {
                ++file_pos;
                if (buffer[i] == '\n') {
                    ++lines;
                    offset = file_pos;
                    if (lines == stop_at)
                        offset_out = offset;
                }
            }
        }
        if (stop_at >= lines)
            offset_out = offset;
        return lines;
    }

    void disconnect()
    {
        socket.close();
        decoder = {};
        inbox.clear();
        phase = Phase::idle;
        probe_acked = false;
        next_attempt = clock::now() + backoff.next();
        ++stats.backoff_waits;
    }

    bool send_frame(Frame_type type, const std::string& payload)
    {
        const std::string wire = encode_frame(type, payload);
        return socket.send_all(wire.data(), wire.size(), config.io_timeout);
    }

    /// Drain buffered acks; false when the connection died or went
    /// corrupt (caller should disconnect).
    bool drain_acks(std::uint64_t* handshake_lines)
    {
        inbox.clear();
        const auto status = socket.recv_available(inbox);
        if (status == util::Tcp_socket::Recv_status::closed
            || status == util::Tcp_socket::Recv_status::error)
            return false;
        if (!inbox.empty())
            decoder.feed(inbox);
        Frame frame;
        while (decoder.next(frame)) {
            if (frame.type != Frame_type::ack)
                continue;
            std::uint64_t lines = 0, token = 0;
            if (!parse_ack(frame.payload, lines, token))
                return false;
            if (phase == Phase::handshaking && token == expect_token) {
                if (handshake_lines)
                    *handshake_lines = lines;
                phase = Phase::streaming;
            }
            if (probe_token != 0 && token == probe_token)
                probe_acked = true;
        }
        return !decoder.corrupt();
    }

    void begin_connect()
    {
        socket = util::Tcp_socket::connect(config.peer, config.io_timeout);
        if (!socket.valid()) {
            ++stats.connect_failures;
            next_attempt = clock::now() + backoff.next();
            ++stats.backoff_waits;
            return;
        }
        expect_token = ++token_counter;
        probe_token = 0;
        probe_acked = false;
        if (!send_frame(Frame_type::hello,
                        hello_payload(config.shard_index, config.shard_count,
                                      expect_token))) {
            disconnect();
            return;
        }
        phase = Phase::handshaking;
        phase_deadline = clock::now() + config.io_timeout;
    }

    void finish_handshake(std::uint64_t ack_lines)
    {
        // Place the cursor at the listener's watermark — or rewind to
        // zero when our file is shorter (a relaunched worker whose
        // fresh journal trails the mirror; the listener's content
        // dedup absorbs the overlap).
        ensure_journal_open();
        std::uint64_t offset = 0;
        const std::uint64_t own_lines = scan_lines(ack_lines, offset);
        std::uint64_t new_cursor;
        if (ack_lines <= own_lines) {
            new_cursor = ack_lines;
        } else {
            new_cursor = 0;
            offset = 0;
        }
        if (stats.connects > 0 && new_cursor < cursor_lines)
            stats.replayed_lines +=
                static_cast<std::size_t>(cursor_lines - new_cursor);
        cursor_lines = new_cursor;
        cursor_offset = offset;
        ++stats.connects;
        if (stats.connects > 1)
            ++stats.reconnects;
        backoff.reset();
    }

    /// Stream new complete journal lines from the cursor.
    bool stream_new_lines()
    {
        if (!ensure_journal_open())
            return true; // no journal yet — nothing to stream
        char buffer[1 << 16];
        for (;;) {
            const ssize_t got = ::pread(fd, buffer, sizeof buffer,
                                        static_cast<off_t>(cursor_offset));
            if (got <= 0)
                return true;
            std::string chunk{buffer, static_cast<std::size_t>(got)};
            std::vector<std::string> lines;
            const std::size_t used = take_lines(chunk, lines);
            if (used == 0)
                return true; // torn tail — wait for the rest
            for (const std::string& line : lines) {
                if (!send_frame(Frame_type::line, line))
                    return false;
                ++stats.lines_sent;
            }
            cursor_offset += used;
            cursor_lines += lines.size();
        }
    }

    void step()
    {
        switch (phase) {
        case Phase::idle:
            if (clock::now() >= next_attempt)
                begin_connect();
            if (phase != Phase::handshaking)
                break;
            [[fallthrough]];
        case Phase::handshaking: {
            std::uint64_t ack_lines = 0;
            if (!drain_acks(&ack_lines)) {
                disconnect();
                break;
            }
            if (phase == Phase::streaming) {
                finish_handshake(ack_lines);
            } else if (clock::now() >= phase_deadline) {
                disconnect();
                break;
            }
            if (phase != Phase::streaming)
                break;
            [[fallthrough]];
        }
        case Phase::streaming:
            if (!drain_acks(nullptr) || !stream_new_lines())
                disconnect();
            break;
        }
    }
};

Jstream_sender::Jstream_sender(Config config, std::string journal_path)
    : impl_{std::make_unique<Impl>(std::move(config), std::move(journal_path),
                                   stats_)}
{
    util::ignore_sigpipe();
}

Jstream_sender::~Jstream_sender() = default;

void Jstream_sender::pump() { impl_->step(); }

bool Jstream_sender::connected() const
{
    return impl_->phase == Impl::Phase::streaming;
}

bool Jstream_sender::finish(std::chrono::milliseconds budget)
{
    const auto deadline = clock::now() + budget;
    // The outstanding probe lives in the Impl (not this call frame):
    // finish() is commonly interleaved with the listener's poll loop,
    // so the ack for a probe regularly lands during a LATER finish()
    // call — which must honor it, not discard it for a fresh token.
    // disconnect() clears probe_token, restarting the probe after a
    // reconnect.
    do {
        impl_->step();
        if (impl_->phase == Impl::Phase::streaming) {
            if (impl_->probe_acked
                && impl_->stats.lines_sent == impl_->probe_lines_sent) {
                stats_.synced = true;
                return true;
            }
            if (impl_->probe_token == 0 || impl_->probe_acked) {
                // No probe in flight, or the acked one is stale (lines
                // went out after it left): prove delivery with a fresh
                // HELLO — the listener processes frames in order, so
                // echoing this token means every prior LINE is
                // mirrored.
                impl_->probe_token = ++impl_->token_counter;
                impl_->probe_acked = false;
                impl_->probe_lines_sent = impl_->stats.lines_sent;
                if (!impl_->send_frame(
                        Frame_type::hello,
                        hello_payload(impl_->config.shard_index,
                                      impl_->config.shard_count,
                                      impl_->probe_token))) {
                    impl_->disconnect();
                    continue;
                }
            }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{2});
    } while (clock::now() < deadline);
    return false;
}

// ------------------------------------------------------------ listener

struct Jstream_listener::Impl {
    struct Mirror {
        std::string path;
        int fd = -1;
        bool scanned = false;
        bool have_magic = false;
        bool have_header = false;
        bool needs_newline = false; ///< file ends in a torn line
        std::set<std::uint64_t> indices;
        std::uint64_t lines = 0;
    };

    struct Connection {
        util::Tcp_socket socket;
        Frame_decoder decoder;
        std::size_t shard = 0; ///< 0 until a valid HELLO
        std::uint64_t last_token = 0;
    };

    util::Tcp_listener listener;
    std::string mirror_dir;
    std::size_t shard_count;
    Jstream_listener_stats& stats;
    std::vector<std::unique_ptr<Connection>> connections;
    std::map<std::size_t, Mirror> mirrors;
    std::set<std::size_t> shards_seen;
    std::string inbox;

    Impl(std::uint16_t port, std::string dir, std::size_t shards,
         Jstream_listener_stats& s)
        : listener{util::Tcp_listener::listen(port)}, mirror_dir{std::move(dir)},
          shard_count{shards}, stats{s}
    {
    }

    ~Impl()
    {
        for (auto& [shard, mirror] : mirrors)
            if (mirror.fd >= 0)
                ::close(mirror.fd);
    }

    /// Rebuild dedup state from whatever mirror file already exists —
    /// the restarted-coordinator path.  Counts only complete lines; a
    /// torn tail (a crash mid-append) is terminated with a bare '\n'
    /// before the first new append so it cannot splice with fresh data.
    void scan(Mirror& mirror)
    {
        mirror.scanned = true;
        std::string text;
        const int fd = ::open(mirror.path.c_str(), O_RDONLY);
        if (fd >= 0) {
            char buffer[1 << 16];
            ssize_t got;
            while ((got = ::read(fd, buffer, sizeof buffer)) > 0)
                text.append(buffer, static_cast<std::size_t>(got));
            ::close(fd);
        }
        std::vector<std::string> lines;
        const std::size_t used = take_lines(text, lines);
        mirror.needs_newline = used < text.size();
        for (const std::string& line : lines) {
            ++mirror.lines;
            std::uint64_t index = 0;
            switch (classify_journal_line(line, &index)) {
            case Journal_line_kind::magic:
                mirror.have_magic = true;
                break;
            case Journal_line_kind::header:
                mirror.have_header = true;
                break;
            case Journal_line_kind::task:
                mirror.indices.insert(index);
                break;
            case Journal_line_kind::invalid:
                break;
            }
        }
    }

    Mirror& mirror_for(std::size_t shard)
    {
        auto [it, inserted] = mirrors.try_emplace(shard);
        Mirror& mirror = it->second;
        if (inserted)
            mirror.path = shard_journal_path(mirror_dir, shard);
        if (!mirror.scanned)
            scan(mirror);
        return mirror;
    }

    bool append(Mirror& mirror, const std::string& line)
    {
        if (mirror.fd < 0) {
            mirror.fd = ::open(mirror.path.c_str(),
                               O_WRONLY | O_CREAT | O_APPEND, 0644);
            if (mirror.fd < 0)
                return false;
        }
        std::string out;
        out.reserve(line.size() + 2);
        if (mirror.needs_newline) {
            // Terminate the torn tail first so it becomes one corrupt
            // line the tailer drops, instead of splicing with ours.
            out += '\n';
            mirror.needs_newline = false;
            ++mirror.lines;
        }
        out += line;
        out += '\n';
        ssize_t wrote;
        do {
            wrote = ::write(mirror.fd, out.data(), out.size());
        } while (wrote < 0 && errno == EINTR);
        if (wrote != static_cast<ssize_t>(out.size()))
            return false;
        ++mirror.lines;
        ++stats.lines_appended;
        return true;
    }

    void ingest_line(Mirror& mirror, const std::string& line)
    {
        ++stats.lines_received;
        std::uint64_t index = 0;
        switch (classify_journal_line(line, &index)) {
        case Journal_line_kind::magic:
            if (mirror.have_magic) {
                ++stats.replayed_lines;
            } else if (append(mirror, line)) {
                mirror.have_magic = true;
            }
            break;
        case Journal_line_kind::header:
            if (mirror.have_header) {
                ++stats.replayed_lines;
            } else if (append(mirror, line)) {
                mirror.have_header = true;
            }
            break;
        case Journal_line_kind::task:
            if (mirror.indices.count(index)) {
                ++stats.replayed_lines;
            } else if (append(mirror, line)) {
                mirror.indices.insert(index);
            }
            break;
        case Journal_line_kind::invalid:
            // The frame CRC held but the line inside is not valid
            // journal content; never mirror it (the sender's own file
            // keeps it for the --resume path).
            ++stats.invalid_lines;
            break;
        }
    }

    /// Returns false when the connection must be closed.
    bool service(Connection& conn)
    {
        inbox.clear();
        const auto status = conn.socket.recv_available(inbox);
        if (status == util::Tcp_socket::Recv_status::error)
            return false;
        const bool peer_closed = status == util::Tcp_socket::Recv_status::closed;
        if (!inbox.empty())
            conn.decoder.feed(inbox);

        bool processed = false;
        Frame frame;
        while (conn.decoder.next(frame)) {
            if (frame.type == Frame_type::hello) {
                std::size_t k = 0, n = 0;
                std::uint64_t token = 0;
                if (!parse_hello(frame.payload, k, n, token) || n != shard_count) {
                    ++stats.dropped_frames;
                    return false;
                }
                // A new HELLO for a shard someone else is streaming
                // supersedes the old connection (relaunch winner).
                for (auto& other : connections)
                    if (other.get() != &conn && other->shard == k)
                        other->socket.close();
                const bool seen = !shards_seen.insert(k).second;
                if (conn.shard == 0) {
                    ++stats.connects;
                    if (seen)
                        ++stats.reconnects;
                }
                conn.shard = k;
                conn.last_token = token;
                mirror_for(k);
                processed = true;
            } else if (frame.type == Frame_type::line) {
                if (conn.shard == 0) {
                    ++stats.dropped_frames; // LINE before HELLO
                    return false;
                }
                ingest_line(mirror_for(conn.shard), frame.payload);
                processed = true;
            }
            // ACK frames from a worker are meaningless; ignored.
        }
        if (conn.decoder.corrupt()) {
            ++stats.dropped_frames;
            return false;
        }
        if (processed && conn.shard != 0) {
            const Mirror& mirror = mirror_for(conn.shard);
            const std::string wire = encode_frame(
                Frame_type::ack, ack_payload(mirror.lines, conn.last_token));
            if (!conn.socket.send_all(wire.data(), wire.size(),
                                      std::chrono::milliseconds{250}))
                return false;
            ++stats.acks_sent;
        }
        return !peer_closed;
    }

    void poll()
    {
        for (;;) {
            util::Tcp_socket incoming = listener.accept();
            if (!incoming.valid())
                break;
            auto conn = std::make_unique<Connection>();
            conn->socket = std::move(incoming);
            connections.push_back(std::move(conn));
        }
        for (auto& conn : connections)
            if (conn->socket.valid() && !service(*conn))
                conn->socket.close();
        connections.erase(
            std::remove_if(connections.begin(), connections.end(),
                           [](const std::unique_ptr<Connection>& c) {
                               return !c->socket.valid();
                           }),
            connections.end());
    }
};

Jstream_listener::Jstream_listener(std::uint16_t port, std::string mirror_dir,
                                   std::size_t shard_count)
    : impl_{std::make_unique<Impl>(port, std::move(mirror_dir), shard_count,
                                   stats_)}
{
    util::ignore_sigpipe();
}

Jstream_listener::~Jstream_listener() = default;

std::uint16_t Jstream_listener::port() const { return impl_->listener.port(); }

void Jstream_listener::poll() { impl_->poll(); }

} // namespace anc::engine
