// `anc.fleet.v1` — the coordinator's own crash-state journal.
//
// The shard journals (anc.journal.v1) already make WORKER death
// recoverable; this file makes the COORDINATOR's death recoverable.
// It is a tiny append-only record of supervision state — shard status,
// attempt counts, liveness watermarks, slot assignments — fsync'd on
// every append (events are rare: launches, exits, adoptions; never
// per-task).  A restarted coordinator loads it, re-adopts shards that
// were last seen running (their workers may still be alive, streaming
// into the mirrors or appending locally), and carries attempt counts
// forward so the relaunch-escalation budget survives the restart.
//
// Format, sharing the journal line discipline (engine/journal.h
// stamp_line/check_stamped_line): line 1 is the magic, then CRC-stamped
// payloads —
//   H grid=<hex16> base_seed=N tasks=N shards=N     (once, at create)
//   R generation=N                                  (each coordinator start)
//   S shard=K status=<pending|running|done|failed> attempts=N slot=N wm=N
// Loading keeps the LAST record per shard (later lines supersede) and
// drops torn/corrupt lines exactly like the task journal loader.

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "engine/sweep.h"

namespace anc::engine {

inline constexpr const char* fleet_magic = "anc.fleet.v1";

struct Fleet_header {
    std::uint64_t grid_hash = 0;
    std::uint64_t base_seed = 1;
    std::size_t tasks = 0;
    std::size_t shards = 1;
};

enum class Fleet_shard_status : std::uint8_t { pending, running, done, failed };

const char* to_string(Fleet_shard_status status);

struct Fleet_record {
    std::size_t shard = 1; ///< 1-based, like the journal shard spec
    Fleet_shard_status status = Fleet_shard_status::pending;
    std::size_t attempts = 0;
    std::size_t slot = 0;
    std::uint64_t watermark = 0; ///< journal entries seen at record time
};

struct Fleet_state {
    Fleet_header header;
    /// Last record per shard, in shard order.
    std::map<std::size_t, Fleet_record> shards;
    /// Coordinator starts recorded (R lines), this load's not included.
    std::size_t generations = 0;
    std::size_t dropped_lines = 0;
};

/// Append-only writer; every append is one write(2) + fsync (state
/// changes are rare, durability is the point).  `truncate` starts a
/// fresh file (magic + header); otherwise appends after an existing
/// compatible header — the restart case.  Throws on I/O failure.
class Fleet_journal {
public:
    Fleet_journal(const std::string& path, const Fleet_header& header,
                  bool truncate);
    ~Fleet_journal();

    Fleet_journal(const Fleet_journal&) = delete;
    Fleet_journal& operator=(const Fleet_journal&) = delete;

    void record(const Fleet_record& record);
    /// Stamp a coordinator start (generation = count of prior starts).
    void record_generation(std::size_t generation);

private:
    void write_line(const std::string& payload);

    int fd_ = -1;
    std::string path_;
};

/// Parse a fleet file.  Throws when it cannot be opened, the magic is
/// wrong, or no valid header survives (same contract as load_journal:
/// a file torn inside its header holds nothing worth keeping).
Fleet_state load_fleet(const std::string& path);

/// True when `header` matches this invocation (same grid, seed, task
/// count, shard count); `why` receives the mismatch reason.
bool fleet_compatible(const Fleet_header& header, const Sweep_grid& grid,
                      std::uint64_t base_seed, std::size_t tasks,
                      std::size_t shards, std::string* why = nullptr);

} // namespace anc::engine
