// Multi-threaded, deterministic sweep execution.
//
// Determinism contract: a task always runs with seed
// `mix_seed(base_seed, task.seed_index)` and stores its result at its
// own slot, so the result vector — and everything aggregated from it in
// order — is bit-identical no matter how many worker threads ran the
// sweep or how the OS scheduled them.  Threads only race for *which*
// task to pull next (one atomic counter); they never share simulation
// state.  Because seed_index collapses the scheme axis, every scheme at
// a given (grid point, repetition) sees the same channel realization —
// the paired-run design behind the paper's per-run gain CDFs.
//
// Fault tolerance (ENGINE.md "Fault tolerance"): the executor can
// isolate per-task failures into Task_status::error outcomes (with
// bounded retry) instead of tearing the sweep down, drain gracefully on
// a cancellation flag, stream completed results in task order through a
// bounded pending window (`on_result`), journal them in completion
// order (`on_complete`), and resume from results a previous process
// already completed (`preloaded`).  Per-task seeds are pure functions
// of (base_seed, seed_index), so a resumed or sharded sweep is
// byte-identical to an uninterrupted single-process one.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "engine/scenario.h"
#include "engine/sweep.h"
#include "util/obs.h"

namespace anc::engine {

/// What became of one task slot.  `skipped` is the default — a slot the
/// executor never ran (drained after cancellation, or never reached
/// because a non-isolated error aborted the sweep).
enum class Task_status : std::uint8_t { skipped, ok, error };

const char* to_string(Task_status status);

struct Task_result {
    Sweep_task task;
    std::uint64_t seed = 0; ///< the derived seed the scenario ran with
    Scenario_result result;
    Task_status status = Task_status::skipped;
    /// Times the scenario was attempted (1 = first try succeeded).  Kept
    /// from the journal for preloaded results.
    std::uint32_t attempts = 0;
    /// what() of the last exception when status == error.
    std::string error;
    /// True when this result was supplied via Executor_config::preloaded
    /// (a resumed sweep) rather than executed by this process.  Resumed
    /// slots carry no telemetry and are excluded from the merged
    /// Sweep_telemetry (their timings belong to the previous process).
    bool resumed = false;
};

struct Executor_config {
    /// Worker threads; 0 means "one per hardware thread".  Overridden by
    /// the ANC_ENGINE_THREADS environment variable when that is set.
    std::size_t threads = 0;
    /// Root of the per-task seed derivation.
    std::uint64_t base_seed = 1;
    /// Optional progress hook, called after each task completes with
    /// (tasks finished so far, total to execute).  Preloaded tasks count
    /// toward neither number.  May be invoked from any worker thread,
    /// never concurrently with itself (calls are serialized under an
    /// executor-internal mutex).  The executor does NOT throttle: the
    /// hook fires once per finished task, so callbacks that do I/O
    /// (progress lines, checkpoints) must rate-limit themselves —
    /// anc::Rate_limiter (util/rate_limiter.h) is the tool, and
    /// bench/anc_sweep the reference stderr line.
    std::function<void(std::size_t, std::size_t)> on_progress;
    /// When set, the executor binds an obs::Recorder to every worker,
    /// stamps each Task_result's `result.telemetry` (counters, stage
    /// times, wall/queue time, worker index) and fills this struct with
    /// the merged sweep totals after the workers join.  Merging walks
    /// results in task order, so counter totals are thread-invariant.
    /// Leave null (the default) for zero-overhead runs.
    obs::Sweep_telemetry* telemetry = nullptr;

    // ---- fault isolation -------------------------------------------
    /// Default (false): the first exception a scenario throws aborts the
    /// sweep and is rethrown on the calling thread — the historical
    /// contract.  True: the failing task is retried up to `max_attempts`
    /// times total, then recorded as Task_status::error (with the
    /// exception's what() in Task_result::error) and the sweep carries
    /// on.  Failures are part of the deterministic result surface: a
    /// task that throws deterministically errors identically on every
    /// run, so resumed/sharded sweeps still merge byte-identically.
    bool isolate_faults = false;
    /// Attempts per task when isolating (>= 1).  Every attempt uses the
    /// same derived seed: a deterministic failure burns its retries and
    /// errors; only transient faults (resource exhaustion, ...) can pass
    /// on a later attempt.
    std::size_t max_attempts = 1;

    // ---- streaming --------------------------------------------------
    /// Serialized hook fired once per finished (executed or preloaded)
    /// task in TASK-INDEX ORDER: completions land in a pending window
    /// (O(live out-of-order results), in practice O(threads)) and drain
    /// in order.  This is the streaming row sink — with collect_results
    /// false it is the only way results leave the executor.
    std::function<void(const Task_result&)> on_result;
    /// Serialized hook fired once per EXECUTED task in COMPLETION ORDER,
    /// before the task enters the pending window — the journal's append
    /// point (a result is durable the moment it completes, not when the
    /// reorder window reaches it).  Preloaded tasks never re-fire it.
    /// Fires for every terminal outcome, ok and error alike.
    std::function<void(const Task_result&)> on_complete;
    /// False: run_sweep returns an empty vector and results exist only
    /// as on_result/on_complete callbacks — O(pending window) memory,
    /// the `anc_sweep --stream` mode.  True (default): the full result
    /// vector is materialized and returned, as always.
    bool collect_results = true;

    // ---- checkpoint / resume / cancellation -------------------------
    /// Results a previous process already completed, keyed by POSITION
    /// in the task vector handed to run_sweep (for a full grid that
    /// equals Sweep_task::index; for a shard it is the in-shard
    /// position).  The executor consumes (moves from) the map, never
    /// re-runs these positions, and feeds them through on_result in
    /// order like any other completion.
    std::map<std::size_t, Task_result>* preloaded = nullptr;
    /// Cooperative cancellation (the SIGINT/SIGTERM drain): when the
    /// pointee becomes true, workers finish their in-flight task and
    /// stop pulling new ones.  Unexecuted slots keep Task_status::skipped;
    /// everything already completed still reaches on_result/on_complete,
    /// so journals and partial emissions are complete up to the drain.
    const std::atomic<bool>* cancel = nullptr;
};

/// Tallies of a finished (or drained) sweep — the executor's summary of
/// what actually happened, for exit codes and the one-line report.
struct Run_tally {
    std::size_t ok = 0;
    std::size_t errors = 0;
    std::size_t skipped = 0;
    std::size_t resumed = 0; ///< preloaded results (counted in ok/errors too)
    bool cancelled = false;  ///< the cancel flag was observed set
};

/// The seed a task with this seed_index runs with (mix_seed of base and
/// index) — exposed so tests and drivers can reproduce any single task
/// in isolation.
std::uint64_t derive_task_seed(std::uint64_t base_seed, std::size_t seed_index);

/// The worker count a config resolves to: ANC_ENGINE_THREADS when set,
/// else config.threads, else std::thread::hardware_concurrency().
std::size_t resolve_thread_count(const Executor_config& config);

/// Run every task (scenarios resolved through `registry`) and return
/// results ordered by task index (empty when config.collect_results is
/// false).  Without fault isolation, the first exception thrown by a
/// scenario is rethrown on the calling thread after all workers stop.
/// `tally`, when non-null, receives the ok/error/skipped/resumed counts.
std::vector<Task_result> run_sweep(const std::vector<Sweep_task>& tasks,
                                   const Scenario_registry& registry,
                                   const Executor_config& config = {},
                                   Run_tally* tally = nullptr);

/// Expand + run against the builtin registry.
std::vector<Task_result> run_sweep(const Sweep_grid& grid,
                                   const Executor_config& config = {});

} // namespace anc::engine
