// Multi-threaded, deterministic sweep execution.
//
// Determinism contract: a task always runs with seed
// `mix_seed(base_seed, task.seed_index)` and stores its result at its
// own slot, so the result vector — and everything aggregated from it in
// order — is bit-identical no matter how many worker threads ran the
// sweep or how the OS scheduled them.  Threads only race for *which*
// task to pull next (one atomic counter); they never share simulation
// state.  Because seed_index collapses the scheme axis, every scheme at
// a given (grid point, repetition) sees the same channel realization —
// the paired-run design behind the paper's per-run gain CDFs.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "engine/scenario.h"
#include "engine/sweep.h"
#include "util/obs.h"

namespace anc::engine {

struct Executor_config {
    /// Worker threads; 0 means "one per hardware thread".  Overridden by
    /// the ANC_ENGINE_THREADS environment variable when that is set.
    std::size_t threads = 0;
    /// Root of the per-task seed derivation.
    std::uint64_t base_seed = 1;
    /// Optional progress hook, called after each task completes with
    /// (tasks finished so far, total).  May be invoked from any worker
    /// thread, never concurrently with itself (calls are serialized
    /// under an executor-internal mutex).  The executor does NOT
    /// throttle: the hook fires once per finished task, so callbacks
    /// that do I/O (progress lines, checkpoints) must rate-limit
    /// themselves — see bench/anc_sweep for the reference stderr line.
    std::function<void(std::size_t, std::size_t)> on_progress;
    /// When set, the executor binds an obs::Recorder to every worker,
    /// stamps each Task_result's `result.telemetry` (counters, stage
    /// times, wall/queue time, worker index) and fills this struct with
    /// the merged sweep totals after the workers join.  Merging walks
    /// results in task order, so counter totals are thread-invariant.
    /// Leave null (the default) for zero-overhead runs.
    obs::Sweep_telemetry* telemetry = nullptr;
};

struct Task_result {
    Sweep_task task;
    std::uint64_t seed = 0; ///< the derived seed the scenario ran with
    Scenario_result result;
};

/// The seed a task with this seed_index runs with (mix_seed of base and
/// index) — exposed so tests and drivers can reproduce any single task
/// in isolation.
std::uint64_t derive_task_seed(std::uint64_t base_seed, std::size_t seed_index);

/// The worker count a config resolves to: ANC_ENGINE_THREADS when set,
/// else config.threads, else std::thread::hardware_concurrency().
std::size_t resolve_thread_count(const Executor_config& config);

/// Run every task (scenarios resolved through `registry`) and return
/// results ordered by task index.  The first exception thrown by a
/// scenario is rethrown on the calling thread after all workers stop.
std::vector<Task_result> run_sweep(const std::vector<Sweep_task>& tasks,
                                   const Scenario_registry& registry,
                                   const Executor_config& config = {});

/// Expand + run against the builtin registry.
std::vector<Task_result> run_sweep(const Sweep_grid& grid,
                                   const Executor_config& config = {});

} // namespace anc::engine
