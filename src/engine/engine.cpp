#include "engine/engine.h"

namespace anc::engine {

Sweep_outcome run_grid(const Sweep_grid& grid, const Scenario_registry& registry,
                       const Executor_config& config)
{
    Sweep_outcome outcome;
    outcome.tasks = run_sweep(expand(grid, registry), registry, config);
    outcome.points = aggregate(outcome.tasks);
    return outcome;
}

Sweep_outcome run_grid(const Sweep_grid& grid, const Executor_config& config)
{
    Sweep_outcome outcome = run_grid(grid, Scenario_registry::builtin(), config);
    emit_env_reports(outcome.tasks, outcome.points);
    return outcome;
}

} // namespace anc::engine
