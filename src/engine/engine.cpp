#include "engine/engine.h"

#include <cstdlib>

#include "engine/metrics.h"

namespace anc::engine {

Sweep_outcome run_grid(const Sweep_grid& grid, const Scenario_registry& registry,
                       const Executor_config& config)
{
    Sweep_outcome outcome;
    outcome.tasks = run_sweep(expand(grid, registry), registry, config);
    outcome.points = aggregate(outcome.tasks);
    return outcome;
}

Sweep_outcome run_grid(const Sweep_grid& grid, const Executor_config& config)
{
    // ANC_METRICS_JSON turns telemetry on for any driver that goes
    // through here (examples, tests, custom binaries) without code
    // changes.  The collected counters never feed the sweep emitters,
    // so the env hook cannot change a byte of CSV/JSON output.
    const char* metrics_path = std::getenv("ANC_METRICS_JSON");
    obs::Sweep_telemetry telemetry;
    Executor_config run_config = config;
    if (metrics_path && *metrics_path && !run_config.telemetry)
        run_config.telemetry = &telemetry;

    Sweep_outcome outcome = run_grid(grid, Scenario_registry::builtin(), run_config);
    emit_env_reports(outcome.tasks, outcome.points);
    if (run_config.telemetry == &telemetry)
        emit_env_metrics({.driver = "run_grid", .base_seed = run_config.base_seed},
                         grid, telemetry, outcome.tasks);
    return outcome;
}

} // namespace anc::engine
