// `anc.jstream.v1` — the journal transport: workers stream their
// anc.journal.v1 lines to the coordinator over TCP, so a fleet no
// longer needs a shared filesystem.
//
// Design center: the worker's LOCAL journal file stays the source of
// truth (crash-safe, fsync'd — engine/journal.h); the stream is a
// best-effort replica of it.  The coordinator's listener appends
// received lines to a per-shard MIRROR journal at the exact path a
// local worker would have written (coordinator.h shard_journal_path),
// so the existing Journal_tailer / reorder-merge machinery consumes
// remote shards with no code knowing the difference — and merged bytes
// stay identical to a single-process run.
//
// Wire format (all integers little-endian):
//
//   frame   := magic:u32 type:u8 length:u32 payload:length crc:u32
//   crc     := CRC-32/IEEE over type|length|payload (journal_crc32)
//   HELLO   (worker → coordinator)  payload "shard=K/N token=T"
//   LINE    (worker → coordinator)  payload = one raw journal line,
//                                   WITHOUT the trailing newline
//   ACK     (coordinator → worker)  payload = lines:u64 token:u64
//
// A receiver that sees a bad magic, an oversized length, or a CRC
// mismatch drops the CONNECTION (there is no mid-stream resync); the
// worker reconnects with backoff and replays.  Replay needs no sender
// state: the ACK carries the mirror's current line count, the sender
// rewinds its cursor to it (or to zero when its own file is shorter —
// a relaunched worker with a fresh journal), and the listener dedups
// by CONTENT (task index / header-once / magic-once), so duplicated
// and overlapping replays — even two senders alternating on one shard,
// an orphan racing its replacement — are harmless.  The `token` echoes
// the most recent HELLO on the connection; a sender that wants a
// durability point (end-of-run flush) sends a fresh HELLO and waits
// for its token to come back: frames are processed in order, so the
// echoed token proves every prior LINE was mirrored.
//
// Threading: both ends are single-threaded poll-style objects.  The
// sender is pumped from the executor's serialized on_complete hook;
// the listener from the coordinator's poll cycle.  Nothing blocks past
// the configured io timeout.

#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "util/backoff.h"
#include "util/net.h"

namespace anc::engine {

// ------------------------------------------------------------- framing

inline constexpr std::uint32_t jstream_magic = 0x314a4e41; // "ANJ1" LE
/// Journal lines are bounded by task payloads (a few KiB); anything
/// past this is framing corruption, not data.
inline constexpr std::size_t jstream_max_payload = 1u << 20;

enum class Frame_type : std::uint8_t { hello = 1, line = 2, ack = 3 };

struct Frame {
    Frame_type type = Frame_type::line;
    std::string payload;
};

/// One frame in wire form.
std::string encode_frame(Frame_type type, const std::string& payload);

std::string hello_payload(std::size_t shard_index, std::size_t shard_count,
                          std::uint64_t token);
bool parse_hello(const std::string& payload, std::size_t& shard_index,
                 std::size_t& shard_count, std::uint64_t& token);

std::string ack_payload(std::uint64_t lines, std::uint64_t token);
bool parse_ack(const std::string& payload, std::uint64_t& lines,
               std::uint64_t& token);

/// Incremental frame extractor over a reassembled byte stream.
class Frame_decoder {
public:
    void feed(const std::string& bytes) { buffer_ += bytes; }

    /// True when a complete, CRC-valid frame was extracted into
    /// `frame`.  False when more bytes are needed — or when the stream
    /// is corrupt (bad magic / oversized length / CRC mismatch), which
    /// latches corrupt(): the connection is unusable and must be
    /// dropped.
    bool next(Frame& frame);

    bool corrupt() const { return corrupt_; }

private:
    std::string buffer_;
    std::size_t consumed_ = 0;
    bool corrupt_ = false;
};

// -------------------------------------------------------------- sender

struct Jstream_sender_stats {
    std::size_t connects = 0;        ///< completed handshakes
    std::size_t reconnects = 0;      ///< handshakes after the first
    std::size_t connect_failures = 0;
    std::size_t lines_sent = 0;      ///< LINE frames put on the wire
    std::size_t replayed_lines = 0;  ///< of those, resent after a rewind
    std::size_t backoff_waits = 0;   ///< reconnect delays scheduled
    bool synced = false;             ///< finish() proved the mirror caught up
};

/// Streams a journal file's lines to a listener as they appear.
///
/// pump() is cheap and never blocks beyond Config::io_timeout: the
/// connection lifecycle (connect → handshake → streaming) is a
/// non-blocking state machine advanced a step per call, and a dead
/// coordinator costs a backoff-gated connect attempt per window, not a
/// stall — the sweep always makes progress on local journaling alone.
class Jstream_sender {
public:
    struct Config {
        util::Host_port peer;
        std::size_t shard_index = 1;
        std::size_t shard_count = 1;
        /// Reconnect delays; seeded per shard so a restarted fleet
        /// does not stampede.
        util::Backoff_policy backoff{std::chrono::milliseconds{100},
                                     std::chrono::milliseconds{2000}};
        /// Bound on any single blocking step (bulk send, connect poll).
        std::chrono::milliseconds io_timeout{1000};
    };

    Jstream_sender(Config config, std::string journal_path);
    ~Jstream_sender();

    Jstream_sender(const Jstream_sender&) = delete;
    Jstream_sender& operator=(const Jstream_sender&) = delete;

    /// Advance the state machine: progress the connect/handshake,
    /// stream any new complete journal lines, drain acks.  Call after
    /// every journal append (and opportunistically).  Never throws.
    void pump();

    /// Drive pump() until the listener has acknowledged everything in
    /// the journal file or `budget` elapses.  True on full sync (also
    /// recorded in stats().synced).  A false return is not data loss —
    /// the local journal holds everything; the coordinator recovers it
    /// on relaunch with --resume.
    bool finish(std::chrono::milliseconds budget);

    const Jstream_sender_stats& stats() const { return stats_; }
    bool connected() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    Jstream_sender_stats stats_;
};

// ------------------------------------------------------------ listener

struct Jstream_listener_stats {
    std::size_t connects = 0;    ///< valid HELLOs accepted
    std::size_t reconnects = 0;  ///< of those, for a shard seen before
    std::size_t lines_received = 0;
    std::size_t lines_appended = 0;  ///< survived dedup, mirrored to disk
    std::size_t replayed_lines = 0;  ///< duplicates dropped by dedup
    std::size_t invalid_lines = 0;   ///< CRC/parse-failed lines never mirrored
    std::size_t dropped_frames = 0;  ///< framing corruption → connection drop
    std::size_t acks_sent = 0;
};

/// Accepts worker connections and mirrors their journal lines into
/// `<mirror_dir>/shard<K>.anj`.  Owns nothing about shard lifecycle —
/// the coordinator's tailers watch the mirror files exactly as they
/// watch local workers' journals.
///
/// Dedup state per shard is rebuilt by scanning the existing mirror
/// file on first contact, so a RESTARTED coordinator (fresh listener,
/// surviving mirror files) continues exactly where the old one
/// stopped.
class Jstream_listener {
public:
    /// Binds immediately (throws on failure, like Tcp_listener); port
    /// 0 picks an ephemeral port — read it back via port().
    Jstream_listener(std::uint16_t port, std::string mirror_dir,
                     std::size_t shard_count);
    ~Jstream_listener();

    Jstream_listener(const Jstream_listener&) = delete;
    Jstream_listener& operator=(const Jstream_listener&) = delete;

    std::uint16_t port() const;

    /// Accept pending connections, ingest frames, mirror fresh lines,
    /// send acks.  Never throws, never blocks.
    void poll();

    const Jstream_listener_stats& stats() const { return stats_; }

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    Jstream_listener_stats stats_;
};

} // namespace anc::engine
