// Sweep grids: declarative parameter axes expanded into a task list.
//
// A grid is the cartesian product of its axes (scenario x scheme x
// snr_db x amplitudes x payload_bits x exchanges) times `repetitions`
// independent runs per point.  Expansion assigns every task a stable
// `index` — its position in the product, independent of how the tasks
// are later scheduled — which is what the executor derives seeds from.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "engine/scenario.h"

namespace anc::engine {

struct Sweep_grid {
    /// Registry names; must be non-empty and resolvable at expansion.
    std::vector<std::string> scenarios;
    /// Empty means "every scheme the scenario declares".  A non-empty
    /// list is intersected with each scenario's schemes (so {"cope"} on
    /// the chain contributes nothing); a listed scheme supported by no
    /// scenario in the grid is an error.
    std::vector<std::string> schemes;
    std::vector<double> snr_db = {25.0};
    std::vector<double> alice_amplitudes = {1.0};
    std::vector<double> bob_amplitudes = {1.0};
    std::vector<std::size_t> payload_bits = {2048};
    std::vector<std::size_t> exchanges = {25};
    /// Interference-detector variance threshold (the detector ablation);
    /// lands in Scenario_config::receiver.interference_detector.
    std::vector<double> detector_thresholds_db = {10.0};
    /// Application-layer FEC interleaver depth (0 = off; the FEC ablation).
    std::vector<std::size_t> interleave_rows = {0};
    /// Fading axes for the *_fading scenarios: samples per Rayleigh
    /// coherence block, and the multiplier on every topology link gain.
    std::vector<std::size_t> coherence_blocks = {4096};
    std::vector<double> mean_link_gains = {1.0};
    /// Math profiles to run (dsp/math_profile.h): any of exact, fast,
    /// simd.  Like the scheme axis, this axis is *seed-collapsed*: tasks
    /// differing only in profile share a seed_index, so relaxed-profile
    /// and `exact` points see identical channel realizations and the
    /// corridor comparison is paired.
    std::vector<dsp::Math_profile> math_profiles = {dsp::Math_profile::exact};
    /// Independent runs per grid point (the paper repeats 40x).
    std::size_t repetitions = 1;
};

struct Sweep_task {
    std::size_t index = 0; ///< position in the expanded grid
    /// Position in the scheme-collapsed grid: tasks that differ only in
    /// scheme share a seed_index, so the executor gives every scheme at
    /// a given (point, repetition) the SAME channel realization — the
    /// paper's paired-run design, which keeps per-run gain CDFs tight.
    std::size_t seed_index = 0;
    std::string scenario;
    Scenario_config config;
    std::size_t repetition = 0; ///< 0 .. repetitions-1 within this grid point
};

/// Expands the grid in axis order scenario > scheme > math_profile >
/// snr_db > alice_amplitude > bob_amplitude > payload_bits > exchanges >
/// detector_threshold_db > interleave_rows > coherence_block >
/// mean_link_gain > repetition.  Throws std::invalid_argument on an
/// empty axis, an unknown scenario, or a requested scheme no scenario
/// supports.
std::vector<Sweep_task> expand(const Sweep_grid& grid, const Scenario_registry& registry);

/// Expansion against the builtin registry.
std::vector<Sweep_task> expand(const Sweep_grid& grid);

/// The deterministic shard partition: tasks whose expansion position
/// satisfies `index % shard_count == shard_index - 1` (shards are
/// 1-based, `--shard 2/3` style).  Round-robin, so every shard sees a
/// balanced mix of grid points instead of a contiguous block of the
/// most expensive axis.  Tasks keep their GLOBAL index and seed_index —
/// a shard's results slot straight back into the full grid on merge.
/// Throws std::invalid_argument unless 1 <= shard_index <= shard_count.
std::vector<Sweep_task> shard_tasks(const std::vector<Sweep_task>& tasks,
                                    std::size_t shard_index, std::size_t shard_count);

/// Canonical JSON serialization of a grid — every axis in declaration
/// order, doubles in fixed round-trip format.  Embedded in the
/// anc.metrics.v1 manifest and hashed into the journal header (the
/// grid fingerprint that stops a resume or merge from mixing
/// incompatible grids).
std::string grid_to_json(const Sweep_grid& grid);

} // namespace anc::engine
