// The multi-process sweep coordinator: the service-shaped rung on top
// of PR 7's single-host crash-safety contract (ENGINE.md "Coordinator").
//
// A coordinator partitions a sweep grid into S deterministic shards
// (engine/sweep.h shard_tasks — round-robin, global indices kept),
// dispatches up to N concurrent worker processes that each run one
// shard with `anc_sweep --shard K/S --journal`, and supervises them:
//
//   - Liveness: each worker's journal is tailed (Journal_tailer); the
//     valid-entry count is the progress watermark.  A worker whose
//     watermark does not advance within `heartbeat_timeout` is declared
//     stalled, SIGKILLed, and its shard reassigned.
//   - Crash recovery: a worker that dies (crash, external SIGKILL,
//     nonzero exit) with an incomplete shard is relaunched with
//     `--resume` against the same journal — completed tasks are never
//     recomputed, only the missing ones run.
//   - Work stealing: with S > N, any worker slot that finishes its
//     shard immediately pulls the next pending one, so stragglers never
//     serialize the run.
//   - Continuous merge: entries stream out of the shard journals as
//     they appear and are re-emitted in GLOBAL task-index order through
//     `on_result` — the same ordered-row contract as
//     Executor_config::on_result — so the merged artifact is
//     byte-identical to an uninterrupted single-process run, while the
//     run is still in flight.
//
// The launcher is a seam (`Worker_launcher`): production uses
// exec_launcher (fork/exec of the anc_sweep binary), tests inject fake
// workers (scripts that copy prebuilt journals, hang, or crash) to
// exercise the watchdog and reassignment machinery hermetically.
//
// Byte-identity argument: every merged row is reconstituted from a
// journal entry exactly as `anc_sweep --merge` reconstitutes it; rows
// are delivered in task-index order and deduplicated by index (first
// occurrence wins, matching preload_from_entries); per-task seeds are
// pure in (base_seed, seed_index).  So the coordinator's output stream
// equals the single-process stream row for row, regardless of worker
// deaths, reassignments, or steals.

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/journal.h"
#include "engine/jstream.h"
#include "util/backoff.h"
#include "util/subprocess.h"

namespace anc::engine {

/// What the coordinator asks the launcher to start: one worker process
/// that will run (or resume) one shard and journal into `journal_path`.
struct Worker_request {
    std::size_t shard_index = 1; ///< 1-based, as in --shard K/N
    std::size_t shard_count = 1;
    /// The WORKER-side journal path (Coordinator_config::
    /// worker_journal_dir) — distinct from the coordinator's mirror
    /// when the fleet streams over TCP.
    std::string journal_path;
    /// True when a prior attempt may have left a journal worth
    /// resuming — the worker should `--resume` it instead of
    /// truncating (anc_sweep starts fresh when the file turns out to
    /// be missing or unusable).
    bool resume = false;
    std::size_t attempt = 1; ///< 1 = first launch of this shard
    std::size_t slot = 0;    ///< worker slot (0-based) taking the shard
    /// host:port the worker should --journal-stream its lines to;
    /// empty for filesystem-only fleets.
    std::string stream;
};

/// The launcher seam: turn a request into a running child process.
/// Must not block; the returned Subprocess is owned by the coordinator.
using Worker_launcher = std::function<util::Subprocess(const Worker_request&)>;

/// Per-worker-slot liveness summary (the anc.metrics.v1 coordinator
/// section's `workers` array).
struct Worker_slot_stats {
    std::size_t launches = 0;
    std::size_t shards_completed = 0;
    /// Journal entries first observed while this slot ran the shard —
    /// the slot's share of the progress watermark.
    std::size_t tasks_journaled = 0;
    std::size_t watchdog_kills = 0; ///< stalls this slot was killed for
    std::size_t failures = 0;       ///< abnormal exits (crash, nonzero)
    std::uint64_t busy_ns = 0;      ///< wall time with a child attached
};

struct Coordinator_stats {
    std::size_t shards = 0;
    std::size_t workers = 0;
    std::size_t launches = 0;
    /// Launches with attempt > 1: a shard relaunched (with --resume)
    /// after its worker died, stalled, or exited without finishing.
    std::size_t reassignments = 0;
    /// First-attempt launches on a slot that had already run a shard —
    /// the work-stealing pickups that exist only when S > N.
    std::size_t steals = 0;
    std::size_t watchdog_kills = 0;
    /// Of the watchdog kills: workers that never produced a journal
    /// header (startup stall — the worker hung or the launcher broke
    /// before the first write) vs workers that stalled mid-run.
    std::size_t watchdog_startup_kills = 0;
    std::size_t watchdog_stall_kills = 0;
    /// Worker exits that did not complete their shard (crash, signal,
    /// nonzero status with missing tasks).
    std::size_t worker_failures = 0;
    /// Relaunch delays scheduled through the per-shard backoff.
    std::size_t backoff_waits = 0;
    /// Shards re-adopted from a prior coordinator's fleet journal
    /// (last seen running; their workers may still be alive).
    std::size_t adoptions = 0;
    std::size_t merged_tasks = 0;
    /// Torn/corrupt journal lines dropped across all shard tailers.
    std::size_t dropped_lines = 0;
    std::uint64_t wall_ns = 0;
    std::vector<Worker_slot_stats> slots;
    /// The jstream listener's counters (zeros for filesystem fleets).
    Jstream_listener_stats transport;
};

struct Coordinator_config {
    std::size_t workers = 2;
    /// Shard count; 0 means "= workers".  S > workers enables stealing.
    std::size_t shards = 0;
    /// Directory for the shard journals (shard_journal_path); must
    /// exist and be writable.
    std::string work_dir;
    /// Supervision cadence: how often journals are polled and children
    /// reaped.
    std::chrono::milliseconds poll_interval{25};
    /// Stall threshold: a running worker whose journal watermark has
    /// not advanced for this long is killed and its shard reassigned.
    /// Must comfortably exceed the longest single task.
    std::chrono::milliseconds heartbeat_timeout{30000};
    /// Total launches allowed per shard before it is declared
    /// permanently failed (>= 1).
    std::size_t max_shard_attempts = 3;
    /// Escalating delay before RELAUNCHING a failed shard (attempt
    /// N >= 2); first launches are immediate.  Keeps a crash-looping
    /// worker (bad node, broken launcher) from burning the attempt
    /// budget in milliseconds.
    util::Backoff_policy relaunch_backoff{std::chrono::milliseconds{100},
                                          std::chrono::milliseconds{5000}};
    /// Stall threshold for a FRESH worker that has not yet written its
    /// journal header (startup stall: launcher broke, binary missing,
    /// remote host unreachable).  0 = use heartbeat_timeout.  Startup
    /// stalls are typically detectable much faster than mid-run ones.
    std::chrono::milliseconds startup_timeout{0};
    /// anc.fleet.v1 state journal path (engine/fleet.h): persisted
    /// supervision state that lets a restarted coordinator re-adopt
    /// running shards and carry attempt counts forward.  Empty
    /// disables persistence.
    std::string fleet_path;
    /// Optional anc.jstream.v1 ingest listener (engine/jstream.h),
    /// owned by the caller and polled once per supervision cycle.  Its
    /// mirror_dir must be this config's work_dir so the shard tailers
    /// see streamed rows exactly as they see local ones.
    Jstream_listener* listener = nullptr;
    /// host:port workers should stream their journals to, forwarded
    /// verbatim via Worker_request::stream (normally this process's
    /// listener address).  Empty for filesystem-only fleets.
    std::string worker_stream;
    /// Directory workers journal into (Worker_request::journal_path).
    /// Empty = work_dir (the local filesystem-sharing fleet).  Distinct
    /// from work_dir when shard journals travel by stream: the mirror
    /// files in work_dir then belong to the listener alone.
    std::string worker_journal_dir;
    Worker_launcher launcher; ///< required
    /// Merged-progress hook: (tasks merged so far, total tasks).
    std::function<void(std::size_t, std::size_t)> on_progress;
    /// The continuous-merge row sink: fired once per task, in global
    /// task-index order, as soon as the row's journal entry (and every
    /// earlier index) is available.
    std::function<void(const Task_result&)> on_result;
    /// False: rows exist only via on_result (streaming).  True: the
    /// merged vector is returned in Coordinator_outcome::results.
    bool collect_results = true;
    /// Cooperative cancellation (SIGINT/SIGTERM): workers get SIGTERM
    /// (their own graceful drain), then SIGKILL after a grace window.
    const std::atomic<bool>* cancel = nullptr;
};

struct Coordinator_outcome {
    /// Every task of every shard was merged.
    bool completed = false;
    bool cancelled = false;
    /// Shards that burned max_shard_attempts without completing.
    std::size_t failed_shards = 0;
    Run_tally tally;
    Coordinator_stats stats;
    std::vector<Task_result> results; ///< when config.collect_results
};

/// The canonical journal path for shard K under `work_dir`
/// ("<work_dir>/shard<K>.anj") — shared by the coordinator, the default
/// launcher, and the chaos tests' process discovery.
std::string shard_journal_path(const std::string& work_dir, std::size_t shard_index);

/// The production launcher: fork/exec `worker_bin` (an anc_sweep-compatible
/// CLI) with `grid_argv` (the grid axes + --seed flags, forwarded
/// verbatim so worker headers fingerprint-match the coordinator's grid),
/// `--quiet --threads <worker_threads> --shard K/S`,
/// `--journal`/`--resume` per the request, and `--journal-stream` when
/// the request carries a stream address.  Worker stderr is appended to
/// "<work_dir>/worker_shard<K>.log"; stdout goes to /dev/null.
Worker_launcher exec_launcher(std::string worker_bin,
                              std::vector<std::string> grid_argv,
                              std::size_t worker_threads, std::string work_dir);

/// The remote-dispatch launcher: run `command_template` through
/// `/bin/sh -c` with these placeholders substituted per request —
///   {shard} {shards}        the 1-based shard index / shard count
///   {journal}               the worker-side journal path
///   {journal_flag}          "--resume" or "--journal"
///   {stream}                the --journal-stream host:port (may be empty)
///   {attempt} {slot}        attempt number / worker slot
/// The template wraps whatever transport reaches the worker host (ssh,
/// a container runtime, a bare local shell in tests); the spawned
/// shell's exit status stands in for the worker's, so the template
/// should `exec` its final command.  Stderr goes to the same
/// per-shard log exec_launcher uses.
Worker_launcher template_launcher(std::string command_template,
                                  std::string work_dir);

/// Run `grid` to completion under coordinated multi-process execution.
/// Scenarios resolve through `registry` only for task expansion (the
/// workers do the actual running); `base_seed` must match what the
/// launched workers use.  Throws std::invalid_argument on a bad config
/// (no launcher, zero workers) and std::runtime_error when a worker
/// journal turns out to be incompatible with the grid (a launcher
/// wiring bug, never a data race).
Coordinator_outcome run_coordinated(const Sweep_grid& grid,
                                    const Scenario_registry& registry,
                                    std::uint64_t base_seed,
                                    const Coordinator_config& config);

} // namespace anc::engine
