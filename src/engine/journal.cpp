#include "engine/journal.h"

#include <array>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace anc::engine {

std::uint32_t journal_crc32(const char* data, std::size_t size)
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t n = 0; n < 256; ++n) {
            std::uint32_t c = n;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[n] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

std::string stamp_line(const std::string& payload)
{
    char crc[12];
    std::snprintf(crc, sizeof crc, "%08x ",
                  journal_crc32(payload.data(), payload.size()));
    return crc + payload + "\n";
}

bool check_stamped_line(const std::string& line, std::string& payload)
{
    if (line.size() < 10 || line[8] != ' ')
        return false;
    std::uint32_t stored = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        const char c = line[i];
        stored <<= 4;
        if (c >= '0' && c <= '9')
            stored |= static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            stored |= static_cast<std::uint32_t>(c - 'a' + 10);
        else
            return false;
    }
    payload = line.substr(9);
    return journal_crc32(payload.data(), payload.size()) == stored;
}

namespace {

// ---- primitives -------------------------------------------------------

std::string fmt_double(double value)
{
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

std::string fmt_u64(std::uint64_t value)
{
    char buffer[24];
    std::snprintf(buffer, sizeof buffer, "%" PRIu64, value);
    return buffer;
}

bool is_plain(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
        || c == '_' || c == '.' || c == '-';
}

/// Percent-encode anything that could collide with the payload's
/// structural bytes (space, '=', ',', ';', ':', '|', '%', newlines).
std::string encode(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (is_plain(c)) {
            out += c;
        } else {
            char buffer[4];
            std::snprintf(buffer, sizeof buffer, "%%%02x",
                          static_cast<unsigned char>(c));
            out += buffer;
        }
    }
    return out;
}

std::string decode(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '%' && i + 2 < text.size()) {
            const auto hex = [](char c) -> int {
                if (c >= '0' && c <= '9')
                    return c - '0';
                if (c >= 'a' && c <= 'f')
                    return c - 'a' + 10;
                if (c >= 'A' && c <= 'F')
                    return c - 'A' + 10;
                return -1;
            };
            const int hi = hex(text[i + 1]);
            const int lo = hex(text[i + 2]);
            if (hi >= 0 && lo >= 0) {
                out += static_cast<char>(hi * 16 + lo);
                i += 2;
                continue;
            }
        }
        out += text[i];
    }
    return out;
}

void append_samples(std::string& out, const Cdf& cdf)
{
    bool first = true;
    for (const double sample : cdf.stored_samples()) {
        if (!first)
            out += ';';
        out += fmt_double(sample);
        first = false;
    }
}

std::vector<std::string> split(const std::string& text, char separator)
{
    std::vector<std::string> parts;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t next = text.find(separator, pos);
        if (next == std::string::npos) {
            parts.push_back(text.substr(pos));
            break;
        }
        parts.push_back(text.substr(pos, next - pos));
        pos = next + 1;
    }
    return parts;
}

struct Parse_error : std::runtime_error {
    using std::runtime_error::runtime_error;
};

double parse_double(const std::string& text)
{
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        throw Parse_error{"bad double: " + text};
    return value;
}

std::uint64_t parse_u64(const std::string& text)
{
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        throw Parse_error{"bad integer: " + text};
    return value;
}

std::uint64_t parse_hex64(const std::string& text)
{
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, 16);
    if (end == text.c_str() || *end != '\0')
        throw Parse_error{"bad hex: " + text};
    return value;
}

void parse_samples(const std::string& text, Cdf& cdf)
{
    if (text.empty())
        return;
    for (const std::string& sample : split(text, ';'))
        cdf.add(parse_double(sample));
}

/// `name:v;v;...|name:...` for series, `name:v|name:...` for scalars.
template <typename Add>
void parse_named(const std::string& text, Add&& add_one)
{
    if (text.empty())
        return;
    for (const std::string& item : split(text, '|')) {
        const std::size_t colon = item.find(':');
        if (colon == std::string::npos)
            throw Parse_error{"bad named field: " + item};
        add_one(decode(item.substr(0, colon)), item.substr(colon + 1));
    }
}

// ---- payload serialization -------------------------------------------

std::string header_payload(const Journal_header& header)
{
    std::ostringstream out;
    char hash[20];
    std::snprintf(hash, sizeof hash, "%016" PRIx64, header.grid_hash);
    out << "H grid=" << hash << " base_seed=" << fmt_u64(header.base_seed)
        << " tasks=" << header.tasks << " shard=" << header.shard_index << "/"
        << header.shard_count;
    return out.str();
}

std::string entry_payload(const Task_result& result)
{
    const sim::Run_metrics& metrics = result.result.metrics;
    std::string out;
    out.reserve(256);
    out += "T index=";
    out += fmt_u64(result.task.index);
    out += " seed=";
    out += fmt_u64(result.seed);
    out += " status=";
    out += to_string(result.status);
    out += " attempts=";
    out += fmt_u64(result.attempts);
    out += " metrics=";
    out += fmt_u64(metrics.packets_attempted);
    out += ',';
    out += fmt_u64(metrics.packets_delivered);
    out += ',';
    out += fmt_u64(metrics.payload_bits_delivered);
    out += ',';
    out += fmt_double(metrics.airtime_symbols);
    out += " ber=";
    append_samples(out, metrics.packet_ber);
    out += " overlaps=";
    append_samples(out, metrics.overlaps);
    out += " series=";
    bool first = true;
    for (const auto& [name, cdf] : result.result.series) {
        if (!first)
            out += '|';
        out += encode(name);
        out += ':';
        append_samples(out, cdf);
        first = false;
    }
    out += " scalars=";
    first = true;
    for (const auto& [name, value] : result.result.scalars) {
        if (!first)
            out += '|';
        out += encode(name);
        out += ':';
        out += fmt_double(value);
        first = false;
    }
    if (result.status == Task_status::error) {
        out += " error=";
        out += encode(result.error);
    }
    return out;
}

Journal_header parse_header(const std::string& payload)
{
    Journal_header header;
    bool have_grid = false, have_seed = false, have_tasks = false, have_shard = false;
    for (const std::string& field : split(payload, ' ')) {
        if (field == "H" || field.empty())
            continue;
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos)
            throw Parse_error{"bad header field: " + field};
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "grid") {
            header.grid_hash = parse_hex64(value);
            have_grid = true;
        } else if (key == "base_seed") {
            header.base_seed = parse_u64(value);
            have_seed = true;
        } else if (key == "tasks") {
            header.tasks = parse_u64(value);
            have_tasks = true;
        } else if (key == "shard") {
            const std::size_t slash = value.find('/');
            if (slash == std::string::npos)
                throw Parse_error{"bad shard spec: " + value};
            header.shard_index = parse_u64(value.substr(0, slash));
            header.shard_count = parse_u64(value.substr(slash + 1));
            have_shard = true;
        }
        // Unknown keys: forward-compatible, ignored.
    }
    if (!have_grid || !have_seed || !have_tasks || !have_shard)
        throw Parse_error{"incomplete journal header"};
    return header;
}

Journal_entry parse_entry(const std::string& payload)
{
    Journal_entry entry;
    bool have_index = false, have_seed = false, have_status = false;
    for (const std::string& field : split(payload, ' ')) {
        if (field == "T" || field.empty())
            continue;
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos)
            throw Parse_error{"bad entry field: " + field};
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "index") {
            entry.index = parse_u64(value);
            have_index = true;
        } else if (key == "seed") {
            entry.seed = parse_u64(value);
            have_seed = true;
        } else if (key == "status") {
            if (value == "ok")
                entry.status = Task_status::ok;
            else if (value == "error")
                entry.status = Task_status::error;
            else
                throw Parse_error{"bad status: " + value};
            have_status = true;
        } else if (key == "attempts") {
            entry.attempts = static_cast<std::uint32_t>(parse_u64(value));
        } else if (key == "metrics") {
            const std::vector<std::string> parts = split(value, ',');
            if (parts.size() != 4)
                throw Parse_error{"bad metrics field: " + value};
            entry.result.metrics.packets_attempted = parse_u64(parts[0]);
            entry.result.metrics.packets_delivered = parse_u64(parts[1]);
            entry.result.metrics.payload_bits_delivered = parse_u64(parts[2]);
            entry.result.metrics.airtime_symbols = parse_double(parts[3]);
        } else if (key == "ber") {
            parse_samples(value, entry.result.metrics.packet_ber);
        } else if (key == "overlaps") {
            parse_samples(value, entry.result.metrics.overlaps);
        } else if (key == "series") {
            parse_named(value, [&](const std::string& name, const std::string& text) {
                parse_samples(text, entry.result.series[name]);
            });
        } else if (key == "scalars") {
            parse_named(value, [&](const std::string& name, const std::string& text) {
                entry.result.scalars[name] = parse_double(text);
            });
        } else if (key == "error") {
            entry.error = decode(value);
        }
    }
    if (!have_index || !have_seed || !have_status)
        throw Parse_error{"incomplete journal entry"};
    return entry;
}

} // namespace

Journal_line_kind classify_journal_line(const std::string& line,
                                        std::uint64_t* task_index)
{
    if (line == journal_magic)
        return Journal_line_kind::magic;
    std::string payload;
    if (!check_stamped_line(line, payload) || payload.empty())
        return Journal_line_kind::invalid;
    try {
        if (payload.front() == 'H') {
            parse_header(payload);
            return Journal_line_kind::header;
        }
        if (payload.front() == 'T') {
            const Journal_entry entry = parse_entry(payload);
            if (task_index)
                *task_index = entry.index;
            return Journal_line_kind::task;
        }
    } catch (const Parse_error&) {
    }
    return Journal_line_kind::invalid;
}

std::uint64_t grid_fingerprint(const Sweep_grid& grid)
{
    const std::string canonical = grid_to_json(grid);
    std::uint64_t hash = 0xcbf29ce484222325ULL; // FNV-1a 64
    for (const char c : canonical) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

Journal_writer::Journal_writer(const std::string& path, const Journal_header& header,
                               bool truncate)
    : path_{path}
{
    int flags = O_WRONLY | O_CREAT | O_APPEND;
    if (truncate)
        flags |= O_TRUNC;
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0)
        throw std::runtime_error{"Journal_writer: cannot open " + path};
    if (truncate) {
        // Magic and header go out in one write with an immediate fsync:
        // a journal either exists with a verifiable header or not at
        // all.
        const std::string preamble =
            std::string{journal_magic} + "\n" + stamp_line(header_payload(header));
        if (::write(fd_, preamble.data(), preamble.size())
            != static_cast<ssize_t>(preamble.size())) {
            ::close(fd_);
            fd_ = -1;
            throw std::runtime_error{"Journal_writer: cannot write header to " + path};
        }
        if (::fsync(fd_) != 0) {
            ::close(fd_);
            fd_ = -1;
            throw std::runtime_error{"Journal_writer: fsync failed on " + path};
        }
    }
}

Journal_writer::~Journal_writer()
{
    if (fd_ >= 0) {
        ::fsync(fd_); // best-effort: destructors must not throw
        ::close(fd_);
    }
}

void Journal_writer::write_line(const std::string& line)
{
    // One write(2) per line on an O_APPEND descriptor: the append is
    // atomic with respect to other appenders, and a crash can only tear
    // the line at the end of the file — which the loader's CRC check
    // catches and drops.
    if (::write(fd_, line.data(), line.size()) != static_cast<ssize_t>(line.size()))
        throw std::runtime_error{"Journal_writer: append failed on " + path_};
    if (fsync_gate_.ready()) {
        if (::fsync(fd_) != 0)
            throw std::runtime_error{"Journal_writer: fsync failed on " + path_};
    }
}

void Journal_writer::append(const Task_result& result)
{
    write_line(stamp_line(entry_payload(result)));
    ++appended_;
}

void Journal_writer::flush()
{
    if (fd_ >= 0 && ::fsync(fd_) != 0)
        throw std::runtime_error{"Journal_writer: fsync failed on " + path_};
    fsync_gate_.reset();
}

Journal_contents load_journal(const std::string& path)
{
    std::ifstream in{path, std::ios::binary};
    if (!in)
        throw std::runtime_error{"load_journal: cannot open " + path};
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    // Split into '\n'-terminated lines; a non-empty tail without its
    // newline is a torn final line (the crash happened mid-append).
    std::vector<std::string> lines;
    std::size_t torn = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t newline = text.find('\n', pos);
        if (newline == std::string::npos) {
            torn = 1;
            break;
        }
        lines.push_back(text.substr(pos, newline - pos));
        pos = newline + 1;
    }
    if (lines.empty() || lines.front() != journal_magic)
        throw std::runtime_error{"load_journal: " + path + " is not a "
                                 + journal_magic + " journal"};

    Journal_contents contents;
    contents.dropped_lines = torn;
    bool have_header = false;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        std::string payload;
        if (!check_stamped_line(lines[i], payload)) {
            ++contents.dropped_lines;
            continue;
        }
        try {
            if (!payload.empty() && payload.front() == 'H') {
                if (!have_header) {
                    contents.header = parse_header(payload);
                    have_header = true;
                }
                // Later H lines (shouldn't happen) are ignored.
            } else if (!payload.empty() && payload.front() == 'T') {
                contents.entries.push_back(parse_entry(payload));
            } else {
                ++contents.dropped_lines;
            }
        } catch (const Parse_error&) {
            ++contents.dropped_lines;
        }
    }
    if (!have_header)
        throw std::runtime_error{"load_journal: " + path
                                 + " has no valid header line"};
    return contents;
}

bool journal_compatible(const Journal_header& header, const Sweep_grid& grid,
                        std::uint64_t base_seed, std::size_t tasks,
                        std::size_t shard_index, std::size_t shard_count,
                        std::string* why)
{
    const auto fail = [&](const std::string& reason) {
        if (why)
            *why = reason;
        return false;
    };
    if (header.grid_hash != grid_fingerprint(grid))
        return fail("grid fingerprint mismatch (different axes or axis values)");
    if (header.base_seed != base_seed)
        return fail("base seed mismatch");
    if (header.tasks != tasks)
        return fail("task count mismatch");
    if (header.shard_index != shard_index || header.shard_count != shard_count)
        return fail("shard spec mismatch");
    return true;
}

std::vector<Journal_entry> Journal_tailer::poll()
{
    std::vector<Journal_entry> fresh;
    if (bad_magic_)
        return fresh;

    std::ifstream in{path_, std::ios::binary};
    if (!in)
        return fresh; // not created yet — a worker that hasn't started
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    if (end < 0)
        return fresh;
    const std::uint64_t size = static_cast<std::uint64_t>(end);
    if (size < offset_) {
        // The file shrank or was replaced (a worker restarted with a
        // fresh journal, or a test dropped a prebuilt file in place).
        // Restart the parse; the caller's per-index dedup absorbs any
        // re-delivered entries.
        offset_ = 0;
        saw_magic_ = false;
        have_header_ = false;
    }
    if (size == offset_)
        return fresh;

    in.seekg(static_cast<std::streamoff>(offset_));
    std::string chunk(static_cast<std::size_t>(size - offset_), '\0');
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    chunk.resize(static_cast<std::size_t>(in.gcount()));

    // Consume only complete lines; a trailing partial line stays in the
    // file for the next poll (offset_ never crosses it).
    std::size_t pos = 0;
    while (pos < chunk.size()) {
        const std::size_t newline = chunk.find('\n', pos);
        if (newline == std::string::npos)
            break;
        const std::string line = chunk.substr(pos, newline - pos);
        pos = newline + 1;
        offset_ += line.size() + 1;

        if (!saw_magic_) {
            saw_magic_ = true;
            if (line != journal_magic) {
                bad_magic_ = true;
                return fresh;
            }
            continue;
        }
        std::string payload;
        if (!check_stamped_line(line, payload)) {
            ++dropped_lines_;
            continue;
        }
        try {
            if (!payload.empty() && payload.front() == 'H') {
                if (!have_header_) {
                    header_ = parse_header(payload);
                    have_header_ = true;
                }
            } else if (!payload.empty() && payload.front() == 'T') {
                fresh.push_back(parse_entry(payload));
                ++entries_seen_;
            } else {
                ++dropped_lines_;
            }
        } catch (const Parse_error&) {
            ++dropped_lines_;
        }
    }
    return fresh;
}

std::map<std::size_t, Task_result>
preload_from_entries(std::vector<Journal_entry>&& entries,
                     const std::vector<Sweep_task>& tasks)
{
    std::map<std::uint64_t, std::size_t> position_of;
    for (std::size_t position = 0; position < tasks.size(); ++position)
        position_of.emplace(tasks[position].index, position);

    std::map<std::size_t, Task_result> preloaded;
    for (Journal_entry& entry : entries) {
        const auto found = position_of.find(entry.index);
        if (found == position_of.end())
            continue; // another shard's row
        Task_result result;
        result.task = tasks[found->second];
        result.seed = entry.seed;
        result.status = entry.status;
        result.attempts = entry.attempts;
        result.error = std::move(entry.error);
        result.result = std::move(entry.result);
        // First occurrence wins; duplicates (a journal appended across
        // several resumes) are deterministic replays of the same task
        // anyway.
        preloaded.emplace(found->second, std::move(result));
    }
    return preloaded;
}

} // namespace anc::engine
