// Aggregation of sweep results into per-grid-point summaries.
//
// A "point" is everything the grid varies except the repetition axis;
// `aggregate` pools the repetitions of each point into per-run
// distributions (throughput, delivery, ...) plus merged packet-level
// samples.  Points keep first-appearance order, which for tasks coming
// out of `expand` is exactly the grid's axis order — so aggregation is
// as deterministic as the task list itself.

#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "engine/executor.h"

namespace anc::engine {

/// A grid point: the task identity minus the repetition axis.
struct Point_key {
    std::string scenario;
    std::string scheme;
    double snr_db = 25.0;
    double alice_amplitude = 1.0;
    double bob_amplitude = 1.0;
    std::size_t payload_bits = 2048;
    std::size_t exchanges = 25;
    double detector_threshold_db = 10.0;
    std::size_t interleave_rows = 0;
    std::size_t coherence_block = 4096;
    double mean_link_gain = 1.0;
    /// Fast and exact rows aggregate into distinct points (never mixed).
    dsp::Math_profile math_profile = dsp::Math_profile::exact;

    friend auto operator<=>(const Point_key&, const Point_key&) = default;
};

Point_key key_of(const Sweep_task& task);

struct Point_summary {
    Point_key key;
    std::size_t runs = 0;   ///< tasks that completed ok (samples below)
    std::size_t errors = 0; ///< tasks isolated as Task_status::error

    // One sample per run:
    Cdf throughput;
    Cdf raw_throughput;
    Cdf delivery_rate;
    Cdf run_mean_ber;
    Cdf run_mean_overlap;

    // Pooled across runs:
    sim::Run_metrics totals;             ///< merged counters + packet samples
    std::map<std::string, Cdf> series;   ///< scenario-specific series, pooled
    std::map<std::string, double> scalars; ///< scenario-specific counters, summed
};

/// Group task results by point, first-appearance order.  Tasks that did
/// not complete ok contribute no samples: errored tasks only bump their
/// point's `errors` count, skipped (drained) tasks are ignored entirely
/// — so a cancelled run aggregates exactly its completed prefix.
std::vector<Point_summary> aggregate(const std::vector<Task_result>& results);

/// The incremental form of `aggregate`, for streaming sweeps that never
/// materialize the task vector: feed results one at a time (task-index
/// order, exactly as Executor_config::on_result delivers them) and take
/// the summaries at the end.  `aggregate` is this class run in a loop,
/// so batch and streaming aggregation are byte-identical by
/// construction.
class Aggregator {
public:
    void add(const Task_result& result);

    /// The summaries accumulated so far (first-appearance point order).
    std::vector<Point_summary> take() { return std::move(summaries_); }

private:
    std::vector<Point_summary> summaries_;
    std::map<Point_key, std::size_t> index_; // key -> slot
};

/// The unique summary for (scenario, scheme); throws std::out_of_range
/// when absent and std::invalid_argument when ambiguous — on a
/// multi-point grid, match the full Point_key yourself (see
/// bench/ablation_snr.cpp).
const Point_summary& summary_for(const std::vector<Point_summary>& summaries,
                                 const std::string& scenario,
                                 const std::string& scheme);

/// What to do with a repetition whose baseline run delivered nothing
/// (zero throughput): `strict` throws std::domain_error — matching
/// sim::gain — while `skip_failed` drops that repetition from the CDF
/// (useful at the bottom of the SNR range where whole runs can fail).
enum class Baseline_policy { strict, skip_failed };

/// Per-repetition throughput ratio of `scheme_key` runs over
/// `baseline_key` runs (repetition r of one paired with repetition r of
/// the other; with scheme-collapsed seeding both saw the same channel
/// realization) — the paper's per-run "gain" CDF.  Throws
/// std::invalid_argument when the two points have different run counts.
Cdf paired_gain(const std::vector<Task_result>& results, const Point_key& scheme_key,
                const Point_key& baseline_key,
                Baseline_policy policy = Baseline_policy::strict);

/// Convenience for single-point-per-scheme grids (every fig bench):
/// the per-run gain CDF of `scenario`'s `scheme` point over the same
/// point under `baseline_scheme`.
Cdf paired_gain(const std::vector<Task_result>& results,
                const std::vector<Point_summary>& summaries,
                const std::string& scenario, const std::string& scheme,
                const std::string& baseline_scheme,
                Baseline_policy policy = Baseline_policy::strict);

} // namespace anc::engine
