// The run manifest: `anc.metrics.v1` — where telemetry leaves the
// process.
//
// The sweep emitters (engine/emit.h) answer "what did the experiment
// measure"; this layer answers "what did the run *do*": which machine
// and backend executed it, how the work spread over workers, where the
// wall-clock went per pipeline stage, and what the receivers observed
// (detector triggers, CRC verdicts, FEC corrections, ...).  It is a
// separate document on purpose — sweep JSON/CSV stay byte-identical
// whether or not telemetry was collected, so goldens never depend on
// timing.
//
// Two fronts emit it (OBSERVABILITY.md documents the schema):
//   - `bench/anc_sweep --metrics-json PATH`
//   - `ANC_METRICS_JSON=PATH` on any driver that goes through
//     run_grid (examples, tests, custom binaries)
//
// Counter aggregates and per-task rows are deterministic in
// (grid, base_seed); every *_ns field is a wall-clock observation and
// varies run to run.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/sweep.h"
#include "util/obs.h"

namespace anc::engine {

inline constexpr const char* metrics_schema = "anc.metrics.v1";

/// Caller-supplied context the manifest echoes back.
struct Metrics_run_info {
    /// Which front produced the run ("anc_sweep", "run_grid", ...).
    std::string driver = "run_grid";
    std::uint64_t base_seed = 1;
};

/// Write the full `anc.metrics.v1` document: run info (threads, wall
/// time, CPU features, SIMD backend), grid echo, per-stage timing
/// rollups, merged event counters, the task-latency histogram,
/// per-worker utilization, and one journal row per task.
void write_metrics_json(std::ostream& out,
                        const Metrics_run_info& info,
                        const Sweep_grid& grid,
                        const obs::Sweep_telemetry& telemetry,
                        const std::vector<Task_result>& results);

std::string metrics_to_json(const Metrics_run_info& info,
                            const Sweep_grid& grid,
                            const obs::Sweep_telemetry& telemetry,
                            const std::vector<Task_result>& results);

/// The ANC_METRICS_JSON hook: when the variable names a path, write the
/// manifest there (throws std::runtime_error if the file cannot be
/// opened).  Returns true when a file was written.
bool emit_env_metrics(const Metrics_run_info& info,
                      const Sweep_grid& grid,
                      const obs::Sweep_telemetry& telemetry,
                      const std::vector<Task_result>& results);

struct Coordinator_outcome; // engine/coordinator.h

/// The coordinator flavor of the manifest (same `anc.metrics.v1`
/// schema): run info and grid echo as above, plus a `coordinator`
/// section — shard/worker counts, launches, reassignments, steal and
/// watchdog-kill counts, and one liveness row per worker slot.  The
/// in-process telemetry sections are absent by design: the workers are
/// separate processes, and each can emit its own full manifest.
/// OBSERVABILITY.md documents the section.
void write_coordinator_metrics_json(std::ostream& out,
                                    const Metrics_run_info& info,
                                    const Sweep_grid& grid,
                                    const Coordinator_outcome& outcome);

} // namespace anc::engine
