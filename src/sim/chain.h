// Chain topology runs (Fig. 2, §11.6): one unidirectional flow over
// N1 -> N2 -> N3 -> N4.
//
//   traditional — 3 slots per packet (hops cannot be pipelined: any two
//                 of the three hops interfere at some node);
//   ANC         — 2 slots per packet: N2's forward to N3 doubles as the
//                 trigger, then N1 (next packet) and N3 (forward to N4)
//                 transmit together; N2 cancels N3's known signal and
//                 decodes N1's new packet directly.  COPE does not apply
//                 to unidirectional traffic.
//
// Because N2 decodes the collision where it happens (no amplify-and-
// forward), the chain's BER is lower than Alice-Bob's — the effect the
// paper highlights in Fig. 12(b).

#pragma once

#include <cstdint>

#include "core/anc_receiver.h"
#include "core/trigger.h"
#include "net/topology.h"
#include "sim/metrics.h"
#include "util/stats.h"

namespace anc::sim {

struct Chain_config {
    std::size_t payload_bits = 2048;
    std::size_t packets = 25;
    double snr_db = 25.0;
    Trigger_config trigger{};
    net::Chain_nodes nodes{};
    net::Chain_gains gains{};
    net::Link_fading fading{};      // per-link gain dynamics (default: fixed)
    Anc_receiver_config receiver{}; // knobs for every receiver in the run
    /// Math profile for the whole run (dsp/math_profile.h); `exact` is
    /// byte-identical to the historical runs.
    dsp::Math_profile math_profile = dsp::Math_profile::exact;
    std::uint64_t seed = 1;
};

struct Chain_result {
    Run_metrics metrics;
    Cdf ber_at_n2; // BER of the ANC decodes at N2 (the paper's Fig. 12(b))
};

Chain_result run_chain_traditional(const Chain_config& config);
Chain_result run_chain_anc(const Chain_config& config);

} // namespace anc::sim
