#include "sim/metrics.h"

#include <stdexcept>

#include "fec/codec.h"

namespace anc::sim {

void Run_metrics::merge(const Run_metrics& other)
{
    packets_attempted += other.packets_attempted;
    packets_delivered += other.packets_delivered;
    payload_bits_delivered += other.payload_bits_delivered;
    airtime_symbols += other.airtime_symbols;
    packet_ber.add_all(other.packet_ber.sorted_samples());
    overlaps.add_all(other.overlaps.sorted_samples());
}

double Run_metrics::mean_ber() const
{
    return packet_ber.empty() ? 0.0 : packet_ber.mean();
}

double Run_metrics::delivery_rate() const
{
    if (packets_attempted == 0)
        return 0.0;
    return static_cast<double>(packets_delivered) / static_cast<double>(packets_attempted);
}

double Run_metrics::raw_throughput() const
{
    if (airtime_symbols <= 0.0)
        return 0.0;
    return static_cast<double>(payload_bits_delivered) / airtime_symbols;
}

double Run_metrics::throughput() const
{
    return raw_throughput() * fec::throughput_factor(mean_ber());
}

double Run_metrics::mean_overlap() const
{
    return overlaps.empty() ? 0.0 : overlaps.mean();
}

double gain(const Run_metrics& scheme, const Run_metrics& baseline)
{
    const double base = baseline.throughput();
    if (base <= 0.0)
        throw std::domain_error{"gain: baseline throughput is zero"};
    return scheme.throughput() / base;
}

} // namespace anc::sim
