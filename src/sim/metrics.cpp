#include "sim/metrics.h"

#include <stdexcept>

#include "fec/codec.h"

namespace anc::sim {

double Run_metrics::mean_ber() const
{
    return packet_ber.empty() ? 0.0 : packet_ber.mean();
}

double Run_metrics::delivery_rate() const
{
    if (packets_attempted == 0)
        return 0.0;
    return static_cast<double>(packets_delivered) / static_cast<double>(packets_attempted);
}

double Run_metrics::raw_throughput() const
{
    if (airtime_symbols <= 0.0)
        return 0.0;
    return static_cast<double>(payload_bits_delivered) / airtime_symbols;
}

double Run_metrics::throughput() const
{
    return raw_throughput() * fec::throughput_factor(mean_ber());
}

double Run_metrics::mean_overlap() const
{
    return overlaps.empty() ? 0.0 : overlaps.mean();
}

double gain(const Run_metrics& scheme, const Run_metrics& baseline)
{
    const double base = baseline.throughput();
    if (base <= 0.0)
        throw std::domain_error{"gain: baseline throughput is zero"};
    return scheme.throughput() / base;
}

} // namespace anc::sim
