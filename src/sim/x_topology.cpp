#include "sim/x_topology.h"

#include <algorithm>

#include "channel/medium.h"
#include "core/anc_receiver.h"
#include "core/relay.h"
#include "dsp/workspace.h"
#include "net/cope.h"
#include "net/node.h"
#include "net/packet.h"
#include "util/bits.h"

namespace anc::sim {

namespace {

constexpr std::size_t rx_guard = 64;


struct World {
    chan::Medium medium;
    net::Net_node n1;
    net::Net_node n2;
    net::Net_node n3;
    net::Net_node n4;
    net::Net_node n5;
    Anc_receiver receiver;
    Anc_receiver snoop_at_n2; // per-link AGC threshold of n1 -> n2
    Anc_receiver snoop_at_n4; // per-link AGC threshold of n3 -> n4
    double noise_power;
    Pcg32 rng;
    /// |h| per coherence block of every transmission (fading runs only).
    std::vector<double> fade_magnitudes;
};

/// A receiver for snooping the clean (from -> to) link: the Medium's
/// per-link AGC detection threshold (installed by install_x on the
/// overhear links) replaces the standard carrier-sense threshold; a link
/// without an override keeps the receiver's default.
Anc_receiver snoop_receiver_for(const chan::Medium& medium, const X_config& config,
                                chan::Node_id from, chan::Node_id to,
                                double noise_power)
{
    Anc_receiver_config snoop_config = config.receiver;
    if (const auto threshold_db = medium.detection_threshold_db(from, to))
        snoop_config.packet_detector.energy_threshold_db = *threshold_db;
    return Anc_receiver{snoop_config, noise_power, config.math_profile};
}

World make_world(const X_config& config)
{
    Pcg32 rng{config.seed, 0x0f2a9u};
    const double noise_power = chan::noise_power_for_snr_db(config.snr_db);
    chan::Medium medium{noise_power, rng.fork(1), config.math_profile};
    Pcg32 link_rng = rng.fork(2);
    install_x(medium, config.nodes, config.gains, config.fading, link_rng);
    phy::Modem_config node_modem;
    node_modem.math_profile = config.math_profile;
    Anc_receiver snoop_at_n2 = snoop_receiver_for(medium, config, config.nodes.n1,
                                                  config.nodes.n2, noise_power);
    Anc_receiver snoop_at_n4 = snoop_receiver_for(medium, config, config.nodes.n3,
                                                  config.nodes.n4, noise_power);
    return World{std::move(medium),
                 net::Net_node{config.nodes.n1, node_modem},
                 net::Net_node{config.nodes.n2, node_modem},
                 net::Net_node{config.nodes.n3, node_modem},
                 net::Net_node{config.nodes.n4, node_modem},
                 net::Net_node{config.nodes.n5, node_modem},
                 Anc_receiver{config.receiver, noise_power, config.math_profile},
                 std::move(snoop_at_n2),
                 std::move(snoop_at_n4),
                 noise_power,
                 rng.fork(3),
                 {}};
}

std::optional<phy::Received_frame> clean_hop(World& world, net::Net_node& from,
                                             chan::Node_id to, const net::Packet& packet,
                                             Run_metrics& metrics,
                                             dsp::Signal* also_heard_at = nullptr,
                                             chan::Node_id overhearer = 0)
{
    dsp::Workspace& workspace = dsp::Workspace::current();
    auto signal = workspace.signal();
    from.transmit_into(packet, world.rng, *signal);
    const chan::Transmission txs[] = {{from.id(), *signal, 0}};
    metrics.airtime_symbols += static_cast<double>(signal->size());
    world.medium.append_fade_magnitudes(from.id(), to, signal->size(),
                                        world.fade_magnitudes);
    if (also_heard_at)
        world.medium.receive_into(overhearer, txs, rx_guard, *also_heard_at);
    auto received = workspace.signal();
    world.medium.receive_into(to, txs, rx_guard, *received);
    const Receive_outcome outcome =
        world.receiver.receive(*received, empty_sent_packet_buffer());
    if (outcome.status != Receive_status::clean)
        return std::nullopt;
    return outcome.frame;
}

net::Packet packet_from_frame(const phy::Received_frame& frame)
{
    net::Packet packet;
    packet.src = frame.header.src;
    packet.dst = frame.header.dst;
    packet.seq = frame.header.seq;
    packet.payload = frame.payload;
    return packet;
}

bool identity_matches(const phy::Frame_header& header, const net::Packet& packet)
{
    return header.src == packet.src && header.dst == packet.dst && header.seq == packet.seq;
}

void record_delivery(Run_metrics& metrics, Cdf& side_ber, const Bits& decoded,
                     const net::Packet& truth)
{
    const double ber = bit_error_rate(decoded, truth.payload);
    ++metrics.packets_delivered;
    metrics.payload_bits_delivered += truth.payload.size();
    metrics.packet_ber.add(ber);
    side_ber.add(ber);
}

} // namespace

X_result run_x_traditional(const X_config& config)
{
    World world = make_world(config);
    X_result result;
    net::Flow flow_14{static_cast<std::uint8_t>(config.nodes.n1),
                      static_cast<std::uint8_t>(config.nodes.n4), config.payload_bits,
                      world.rng.fork(10)};
    net::Flow flow_32{static_cast<std::uint8_t>(config.nodes.n3),
                      static_cast<std::uint8_t>(config.nodes.n2), config.payload_bits,
                      world.rng.fork(11)};

    for (std::size_t i = 0; i < config.exchanges; ++i) {
        world.medium.set_fading_epoch(i); // fresh fade per exchange, shared across schemes
        const net::Packet pa = flow_14.next();
        ++result.metrics.packets_attempted;
        if (const auto at_n5 = clean_hop(world, world.n1, world.n5.id(), pa,
                                         result.metrics)) {
            if (const auto at_n4 = clean_hop(world, world.n5, world.n4.id(),
                                             packet_from_frame(*at_n5), result.metrics)) {
                if (identity_matches(at_n4->header, pa))
                    record_delivery(result.metrics, result.ber_at_n4, at_n4->payload, pa);
            }
        }
        const net::Packet pb = flow_32.next();
        ++result.metrics.packets_attempted;
        if (const auto at_n5 = clean_hop(world, world.n3, world.n5.id(), pb,
                                         result.metrics)) {
            if (const auto at_n2 = clean_hop(world, world.n5, world.n2.id(),
                                             packet_from_frame(*at_n5), result.metrics)) {
                if (identity_matches(at_n2->header, pb))
                    record_delivery(result.metrics, result.ber_at_n2, at_n2->payload, pb);
            }
        }
    }
    result.fade_magnitude.add_all(world.fade_magnitudes);
    return result;
}

X_result run_x_cope(const X_config& config)
{
    World world = make_world(config);
    X_result result;
    net::Flow flow_14{static_cast<std::uint8_t>(config.nodes.n1),
                      static_cast<std::uint8_t>(config.nodes.n4), config.payload_bits,
                      world.rng.fork(10)};
    net::Flow flow_32{static_cast<std::uint8_t>(config.nodes.n3),
                      static_cast<std::uint8_t>(config.nodes.n2), config.payload_bits,
                      world.rng.fork(11)};

    dsp::Workspace& workspace = dsp::Workspace::current();
    std::uint16_t coded_seq = 1;
    for (std::size_t i = 0; i < config.exchanges; ++i) {
        world.medium.set_fading_epoch(i); // fresh fade per exchange, shared across schemes
        const net::Packet pa = flow_14.next();
        const net::Packet pb = flow_32.next();
        result.metrics.packets_attempted += 2;

        // Upload 1: n1 -> n5; n2 snoops the clean transmission (through
        // the weak overhear link, hence the snoop receiver's lower
        // detection threshold).
        auto heard_at_n2 = workspace.signal();
        const auto pa_at_n5 = clean_hop(world, world.n1, world.n5.id(), pa, result.metrics,
                                        &*heard_at_n2, world.n2.id());
        std::optional<net::Packet> pa_overheard;
        {
            ++result.overhear_attempts;
            const Receive_outcome snoop =
                world.snoop_at_n2.receive(*heard_at_n2, empty_sent_packet_buffer());
            if (snoop.status == Receive_status::clean)
                pa_overheard = packet_from_frame(*snoop.frame);
            else
                ++result.overhear_failures;
        }

        // Upload 2: n3 -> n5; n4 snoops.
        auto heard_at_n4 = workspace.signal();
        const auto pb_at_n5 = clean_hop(world, world.n3, world.n5.id(), pb, result.metrics,
                                        &*heard_at_n4, world.n4.id());
        std::optional<net::Packet> pb_overheard;
        {
            ++result.overhear_attempts;
            const Receive_outcome snoop =
                world.snoop_at_n4.receive(*heard_at_n4, empty_sent_packet_buffer());
            if (snoop.status == Receive_status::clean)
                pb_overheard = packet_from_frame(*snoop.frame);
            else
                ++result.overhear_failures;
        }

        if (!pa_at_n5 || !pb_at_n5)
            continue;

        // XOR broadcast.
        net::Packet coded;
        coded.src = static_cast<std::uint8_t>(config.nodes.n5);
        coded.dst = 0xff;
        coded.seq = coded_seq++;
        coded.payload = net::cope_encode(packet_from_frame(*pa_at_n5),
                                         packet_from_frame(*pb_at_n5));
        auto signal = workspace.signal();
        world.n5.transmit_into(coded, world.rng, *signal);
        const chan::Transmission txs[] = {{world.n5.id(), *signal, 0}};
        result.metrics.airtime_symbols += static_cast<double>(signal->size());

        const auto decode_side = [&](chan::Node_id at, const std::optional<net::Packet>& known,
                                     const net::Packet& wanted, Cdf& side_ber) {
            if (!known)
                return;
            auto received = workspace.signal();
            world.medium.receive_into(at, txs, rx_guard, *received);
            const Receive_outcome outcome =
                world.receiver.receive(*received, empty_sent_packet_buffer());
            if (outcome.status != Receive_status::clean)
                return;
            const auto parsed = net::cope_parse(outcome.frame->payload);
            if (!parsed)
                return;
            const auto other =
                net::cope_decode(*parsed, net::header_for(*known), known->payload);
            if (!other || !identity_matches(net::header_for(*other), wanted))
                return;
            record_delivery(result.metrics, side_ber, other->payload, wanted);
        };
        decode_side(world.n2.id(), pa_overheard, pb, result.ber_at_n2);
        decode_side(world.n4.id(), pb_overheard, pa, result.ber_at_n4);
    }
    result.fade_magnitude.add_all(world.fade_magnitudes);
    return result;
}

X_result run_x_anc(const X_config& config)
{
    World world = make_world(config);
    X_result result;
    net::Flow flow_14{static_cast<std::uint8_t>(config.nodes.n1),
                      static_cast<std::uint8_t>(config.nodes.n4), config.payload_bits,
                      world.rng.fork(10)};
    net::Flow flow_32{static_cast<std::uint8_t>(config.nodes.n3),
                      static_cast<std::uint8_t>(config.nodes.n2), config.payload_bits,
                      world.rng.fork(11)};

    dsp::Workspace& workspace = dsp::Workspace::current();
    for (std::size_t i = 0; i < config.exchanges; ++i) {
        world.medium.set_fading_epoch(i); // fresh fade per exchange, shared across schemes
        const net::Packet pa = flow_14.next();
        const net::Packet pb = flow_32.next();
        result.metrics.packets_attempted += 2;

        // Round 1: n1 and n3 collide on purpose.  The destinations snoop
        // under interference (capture decode).
        const auto [delay_1, delay_3] = draw_distinct_delays(config.trigger, world.rng);
        auto signal_1 = workspace.signal();
        world.n1.transmit_into(pa, world.rng, *signal_1);
        auto signal_3 = workspace.signal();
        world.n3.transmit_into(pb, world.rng, *signal_3);
        const chan::Transmission on_air[] = {{world.n1.id(), *signal_1, delay_1},
                                             {world.n3.id(), *signal_3, delay_3}};

        const std::size_t end_1 = delay_1 + signal_1->size();
        const std::size_t end_3 = delay_3 + signal_3->size();
        result.metrics.airtime_symbols += static_cast<double>(
            std::max(end_1, end_3) - std::min(delay_1, delay_3));
        result.metrics.overlaps.add(
            overlap_fraction(delay_1, signal_1->size(), delay_3, signal_3->size()));
        world.medium.append_fade_magnitudes(world.n1.id(), world.n5.id(),
                                            signal_1->size(), world.fade_magnitudes);
        world.medium.append_fade_magnitudes(world.n3.id(), world.n5.id(),
                                            signal_3->size(), world.fade_magnitudes);

        auto at_n5 = workspace.signal();
        world.medium.receive_into(world.n5.id(), on_air, rx_guard, *at_n5);

        const auto snoop = [&](chan::Node_id at, net::Net_node& node,
                               const net::Packet& expected) {
            ++result.overhear_attempts;
            auto heard = workspace.signal();
            world.medium.receive_into(at, on_air, rx_guard, *heard);
            // Snooping *under interference* keeps the standard detector:
            // lowering the threshold here would pull the weak cross-link
            // signal into the detection window and break the capture
            // decode — failures at the bottom of the band are the §11.5
            // behavior, not the detector bug the snoop receiver fixes.
            const Receive_outcome outcome =
                world.receiver.receive(*heard, empty_sent_packet_buffer());
            if (outcome.status == Receive_status::clean
                && identity_matches(outcome.frame->header, expected)) {
                node.remember(packet_from_frame(*outcome.frame));
            } else {
                ++result.overhear_failures;
            }
        };
        snoop(world.n2.id(), world.n2, pa);
        snoop(world.n4.id(), world.n4, pb);

        // Round 2: amplify-and-forward at n5.
        auto forwarded = workspace.signal();
        if (!amplify_and_forward_into(*at_n5, world.noise_power, 1.0, *forwarded))
            continue;
        const chan::Transmission round2[] = {{world.n5.id(), *forwarded, 0}};
        result.metrics.airtime_symbols += static_cast<double>(forwarded->size());
        world.medium.append_fade_magnitudes(world.n5.id(), world.n2.id(),
                                            forwarded->size(), world.fade_magnitudes);
        world.medium.append_fade_magnitudes(world.n5.id(), world.n4.id(),
                                            forwarded->size(), world.fade_magnitudes);

        const auto decode_side = [&](chan::Node_id at, const net::Net_node& node,
                                     const net::Packet& wanted, Cdf& side_ber) {
            auto received = workspace.signal();
            world.medium.receive_into(at, round2, rx_guard, *received);
            const Receive_outcome outcome = world.receiver.receive(*received, node.buffer());
            if (outcome.status != Receive_status::decoded_interference)
                return;
            if (!identity_matches(outcome.frame->header, wanted))
                return;
            record_delivery(result.metrics, side_ber, outcome.frame->payload, wanted);
        };
        decode_side(world.n2.id(), world.n2, pb, result.ber_at_n2);
        decode_side(world.n4.id(), world.n4, pa, result.ber_at_n4);
    }
    result.fade_magnitude.add_all(world.fade_magnitudes);
    return result;
}

} // namespace anc::sim
