// Metrics for the evaluation runs (§11.2).
//
//   Network throughput — end-to-end payload bits per symbol of airtime,
//   charged with the extra error-correction redundancy implied by the
//   scheme's residual BER ("ANC has a higher bit error rate ... and thus
//   needs extra redundancy ... We account for this overhead in our
//   throughput computation").
//
//   Gain — ratio of ANC throughput to a baseline's throughput for the
//   same workload on the same topology.
//
//   BER — fraction of erroneous payload bits in a delivered packet.

#pragma once

#include <cstddef>

#include "util/stats.h"

namespace anc::sim {

struct Run_metrics {
    std::size_t packets_attempted = 0;
    std::size_t packets_delivered = 0;
    std::size_t payload_bits_delivered = 0;
    double airtime_symbols = 0.0;
    Cdf packet_ber; // one sample per delivered packet
    Cdf overlaps;   // one sample per collision (ANC runs only)

    /// Fold another run's counters and samples into this one (used by
    /// the sweep engine to pool repetitions of a grid point).
    void merge(const Run_metrics& other);

    double mean_ber() const;
    double delivery_rate() const;
    /// Payload bits per symbol, charged with redundancy_overhead(mean BER).
    double throughput() const;
    /// Uncharged bits per symbol.
    double raw_throughput() const;
    double mean_overlap() const;
};

/// Throughput ratio of a scheme over a baseline (the paper's "gain").
double gain(const Run_metrics& scheme, const Run_metrics& baseline);

} // namespace anc::sim
