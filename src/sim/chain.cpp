#include "sim/chain.h"

#include <algorithm>
#include <map>

#include "channel/medium.h"
#include "core/anc_receiver.h"
#include "dsp/workspace.h"
#include "net/node.h"
#include "net/packet.h"
#include "util/bits.h"

namespace anc::sim {

namespace {

constexpr std::size_t rx_guard = 64;


struct World {
    chan::Medium medium;
    net::Net_node n1;
    net::Net_node n2;
    net::Net_node n3;
    net::Net_node n4;
    Anc_receiver receiver;
    double noise_power;
    Pcg32 rng;
};

World make_world(const Chain_config& config)
{
    Pcg32 rng{config.seed, 0xc4a17u};
    const double noise_power = chan::noise_power_for_snr_db(config.snr_db);
    chan::Medium medium{noise_power, rng.fork(1), config.math_profile};
    Pcg32 link_rng = rng.fork(2);
    install_chain(medium, config.nodes, config.gains, config.fading, link_rng);
    phy::Modem_config node_modem;
    node_modem.math_profile = config.math_profile;
    return World{std::move(medium),
                 net::Net_node{config.nodes.n1, node_modem},
                 net::Net_node{config.nodes.n2, node_modem},
                 net::Net_node{config.nodes.n3, node_modem},
                 net::Net_node{config.nodes.n4, node_modem},
                 Anc_receiver{config.receiver, noise_power, config.math_profile},
                 noise_power,
                 rng.fork(3)};
}

std::optional<phy::Received_frame> clean_hop(World& world, net::Net_node& from,
                                             chan::Node_id to, const net::Packet& packet,
                                             Run_metrics& metrics)
{
    dsp::Workspace& workspace = dsp::Workspace::current();
    auto signal = workspace.signal();
    from.transmit_into(packet, world.rng, *signal);
    const chan::Transmission txs[] = {{from.id(), *signal, 0}};
    metrics.airtime_symbols += static_cast<double>(signal->size());
    auto received = workspace.signal();
    world.medium.receive_into(to, txs, rx_guard, *received);
    const Receive_outcome outcome =
        world.receiver.receive(*received, empty_sent_packet_buffer());
    if (outcome.status != Receive_status::clean)
        return std::nullopt;
    return outcome.frame;
}

net::Packet packet_from_frame(const phy::Received_frame& frame)
{
    net::Packet packet;
    packet.src = frame.header.src;
    packet.dst = frame.header.dst;
    packet.seq = frame.header.seq;
    packet.payload = frame.payload;
    return packet;
}

} // namespace

Chain_result run_chain_traditional(const Chain_config& config)
{
    World world = make_world(config);
    Chain_result result;
    net::Flow flow{static_cast<std::uint8_t>(config.nodes.n1),
                   static_cast<std::uint8_t>(config.nodes.n4), config.payload_bits,
                   world.rng.fork(10)};

    for (std::size_t i = 0; i < config.packets; ++i) {
        world.medium.set_fading_epoch(i); // fresh fade per packet
        const net::Packet packet = flow.next();
        ++result.metrics.packets_attempted;
        const auto at_n2 = clean_hop(world, world.n1, world.n2.id(), packet, result.metrics);
        if (!at_n2)
            continue;
        const auto at_n3 = clean_hop(world, world.n2, world.n3.id(),
                                     packet_from_frame(*at_n2), result.metrics);
        if (!at_n3)
            continue;
        const auto at_n4 = clean_hop(world, world.n3, world.n4.id(),
                                     packet_from_frame(*at_n3), result.metrics);
        if (!at_n4)
            continue;
        const double ber = bit_error_rate(at_n4->payload, packet.payload);
        ++result.metrics.packets_delivered;
        result.metrics.payload_bits_delivered += packet.payload.size();
        result.metrics.packet_ber.add(ber);
    }
    return result;
}

Chain_result run_chain_anc(const Chain_config& config)
{
    World world = make_world(config);
    Chain_result result;
    net::Flow flow{static_cast<std::uint8_t>(config.nodes.n1),
                   static_cast<std::uint8_t>(config.nodes.n4), config.payload_bits,
                   world.rng.fork(10)};

    // Ground truth per sequence number, to measure end-to-end BER.
    std::map<std::uint16_t, Bits> truth;

    // The packet N2 currently holds (as received — bit errors propagate).
    std::optional<net::Packet> held;
    std::size_t produced = 0;

    const auto next_packet = [&]() {
        net::Packet packet = flow.next();
        truth.emplace(packet.seq, packet.payload);
        ++produced;
        ++result.metrics.packets_attempted;
        return packet;
    };

    const auto deliver = [&](const phy::Received_frame& frame) {
        const auto it = truth.find(frame.header.seq);
        if (it == truth.end())
            return;
        const double ber = bit_error_rate(frame.payload, it->second);
        ++result.metrics.packets_delivered;
        result.metrics.payload_bits_delivered += it->second.size();
        result.metrics.packet_ber.add(ber);
    };

    std::uint64_t round = 0;
    while (produced < config.packets || held) {
        // The pipeline has no 1:1 exchange index; each loop iteration is
        // one logical round, so fades refresh per round.
        world.medium.set_fading_epoch(round++);
        if (!held) {
            if (produced >= config.packets)
                break;
            // Pipeline bootstrap (or restart after a loss): a clean
            // N1 -> N2 hop.
            const net::Packet packet = next_packet();
            const auto at_n2 = clean_hop(world, world.n1, world.n2.id(), packet,
                                         result.metrics);
            if (at_n2)
                held = packet_from_frame(*at_n2);
            continue;
        }

        // Slot A: N2 forwards its held packet to N3 (clean); this
        // transmission carries the trigger for N1 and N3 (§7.6).
        const net::Packet current = *held;
        held.reset();
        const auto at_n3 = clean_hop(world, world.n2, world.n3.id(), current,
                                     result.metrics);

        // Slot B: N1 sends the next packet while N3 forwards `current` to
        // N4 — simultaneously, with distinct trigger slots.
        const bool have_next = produced < config.packets;
        std::optional<net::Packet> next;
        if (have_next)
            next = next_packet();

        const auto [delay_1, delay_3] = draw_distinct_delays(config.trigger, world.rng);
        dsp::Workspace& workspace = dsp::Workspace::current();
        auto signal_1 = workspace.signal();
        auto signal_3 = workspace.signal();
        chan::Transmission round[2];
        std::size_t round_size = 0;
        if (next) {
            world.n1.transmit_into(*next, world.rng, *signal_1);
            round[round_size++] = {world.n1.id(), *signal_1, delay_1};
        }
        if (at_n3) {
            world.n3.transmit_into(packet_from_frame(*at_n3), world.rng, *signal_3);
            round[round_size++] = {world.n3.id(), *signal_3, delay_3};
        }
        if (round_size == 0)
            continue;
        const std::span<const chan::Transmission> on_air{round, round_size};

        std::size_t span_begin = on_air.front().start;
        std::size_t span_end = 0;
        for (const auto& tx : on_air) {
            span_begin = std::min(span_begin, tx.start);
            span_end = std::max(span_end, tx.start + tx.signal.size());
        }
        result.metrics.airtime_symbols += static_cast<double>(span_end - span_begin);
        if (on_air.size() == 2) {
            result.metrics.overlaps.add(overlap_fraction(on_air[0].start,
                                                         on_air[0].signal.size(),
                                                         on_air[1].start,
                                                         on_air[1].signal.size()));
        }

        // N4 hears only N3 (N1 is out of range) and decodes `current`.
        if (at_n3) {
            auto at_n4 = workspace.signal();
            world.medium.receive_into(world.n4.id(), on_air, rx_guard, *at_n4);
            const Receive_outcome outcome =
                world.receiver.receive(*at_n4, empty_sent_packet_buffer());
            if (outcome.status == Receive_status::clean)
                deliver(*outcome.frame);
        }

        // N2 hears the collision; N3's half is known (N2 sent it in slot
        // A), so N2 decodes N1's new packet out of the interference.
        if (next) {
            auto at_n2 = workspace.signal();
            world.medium.receive_into(world.n2.id(), on_air, rx_guard, *at_n2);
            const Receive_outcome outcome = world.receiver.receive(*at_n2,
                                                                   world.n2.buffer());
            const bool decoded =
                (outcome.status == Receive_status::decoded_interference
                 || outcome.status == Receive_status::clean)
                && outcome.frame && outcome.frame->header.seq == next->seq;
            if (decoded) {
                if (outcome.status == Receive_status::decoded_interference) {
                    result.ber_at_n2.add(
                        bit_error_rate(outcome.frame->payload, next->payload));
                }
                held = packet_from_frame(*outcome.frame);
            }
            // else: the new packet is lost; the pipeline restarts.
        }
    }
    return result;
}

} // namespace anc::sim
