// "X" topology runs (Fig. 11, §11.5): two flows crossing a relay, where
// the destinations know the interfering packet from *overhearing* rather
// than from having sent it.
//
//   traditional — 4 slots (each flow: sender -> relay -> destination);
//   COPE        — 3 slots: two clean uploads (each overheard by the
//                 opposite destination), one XOR broadcast;
//   ANC         — 2 slots: both senders transmit at once (overhearing now
//                 happens *under interference* — the capture decode that
//                 sometimes fails, §11.5), then amplify-and-forward.

#pragma once

#include <cstdint>

#include "core/anc_receiver.h"
#include "core/trigger.h"
#include "net/topology.h"
#include "sim/metrics.h"
#include "util/stats.h"

namespace anc::sim {

struct X_config {
    std::size_t payload_bits = 2048;
    std::size_t exchanges = 25;
    double snr_db = 25.0;
    Trigger_config trigger{};
    net::X_nodes nodes{};
    net::X_gains gains{};
    net::Link_fading fading{};      // per-link gain dynamics (default: fixed)
    Anc_receiver_config receiver{}; // knobs for every receiver in the run
    /// Math profile for the whole run (dsp/math_profile.h); `exact` is
    /// byte-identical to the historical runs.
    dsp::Math_profile math_profile = dsp::Math_profile::exact;
    std::uint64_t seed = 1;
    // The snooping detection threshold moved to the Medium layer: it is
    // now the *per-link* AGC threshold installed on the overhear links
    // (net::X_gains::overhear_detection_threshold_db; queried back here
    // through chan::Medium::detection_threshold_db).  ANC's
    // under-interference snooping keeps the standard detector (see
    // run_x_anc).
};

struct X_result {
    Run_metrics metrics;
    Cdf ber_at_n2; // BER of flow n3 -> n2 packets decoded at n2
    Cdf ber_at_n4;
    /// Channel-state series under rayleigh_block fading: |h| of every
    /// coherence block each transmission spanned (empty for fixed gains).
    Cdf fade_magnitude;
    std::size_t overhear_attempts = 0;
    std::size_t overhear_failures = 0;

    double overhear_failure_rate() const
    {
        return overhear_attempts == 0
                   ? 0.0
                   : static_cast<double>(overhear_failures)
                         / static_cast<double>(overhear_attempts);
    }
};

X_result run_x_traditional(const X_config& config);
X_result run_x_cope(const X_config& config);
X_result run_x_anc(const X_config& config);

} // namespace anc::sim
