// Alice-Bob topology runs (Fig. 1, §11.4): two flows crossing a relay,
// under the three compared schemes.
//
//   traditional — 4 slots per packet pair (optimal MAC, no collisions);
//   COPE        — 3 slots: two uploads, one XOR broadcast;
//   ANC         — 2 slots: a deliberate collision, then amplify-and-
//                 forward; each side cancels its own signal.
//
// All three run over the same sample-level channel substrate, so losses,
// bit errors, imperfect overlap, and amplified relay noise emerge from
// the signal path rather than being injected.

#pragma once

#include <cstdint>

#include "core/anc_receiver.h"
#include "core/trigger.h"
#include "net/topology.h"
#include "sim/metrics.h"
#include "util/stats.h"

namespace anc::sim {

struct Alice_bob_config {
    std::size_t payload_bits = 2048;
    std::size_t exchanges = 25;    // packet pairs per run
    double snr_db = 25.0;          // receiver SNR for a unit-power sender
    double alice_amplitude = 1.0;  // transmit amplitudes (Fig. 13 varies
    double bob_amplitude = 1.0;    // Bob's while Alice's stays fixed)
    Trigger_config trigger{};
    net::Alice_bob_nodes nodes{};
    net::Alice_bob_gains gains{};
    net::Link_fading fading{};     // per-link gain dynamics (default: fixed)
    Anc_receiver_config receiver{}; // knobs for every receiver in the run
    /// Math profile for the whole run: medium noise, link rotations,
    /// modulators, and the interference decoder (dsp/math_profile.h).
    /// `exact` (the default) is byte-identical to the historical runs.
    dsp::Math_profile math_profile = dsp::Math_profile::exact;
    std::uint64_t seed = 1;
};

struct Alice_bob_result {
    Run_metrics metrics;
    Cdf ber_at_alice; // BER of Bob's packets as decoded by Alice
    Cdf ber_at_bob;   // BER of Alice's packets as decoded by Bob
    /// Channel-state series under rayleigh_block fading: |h| of every
    /// coherence block each transmission spanned (empty for fixed gains).
    Cdf fade_magnitude;
};

Alice_bob_result run_alice_bob_traditional(const Alice_bob_config& config);
Alice_bob_result run_alice_bob_cope(const Alice_bob_config& config);
Alice_bob_result run_alice_bob_anc(const Alice_bob_config& config);

} // namespace anc::sim
