#include "sim/alice_bob.h"

#include <algorithm>

#include "channel/awgn.h"
#include "channel/medium.h"
#include "core/anc_receiver.h"
#include "core/relay.h"
#include "dsp/workspace.h"
#include "net/cope.h"
#include "net/node.h"
#include "net/packet.h"
#include "util/bits.h"

namespace anc::sim {

namespace {

constexpr std::size_t rx_guard = 64; // trailing noise so detectors see the edge


struct World {
    chan::Medium medium;
    net::Net_node alice;
    net::Net_node router;
    net::Net_node bob;
    Anc_receiver receiver;
    double noise_power;
    Pcg32 rng;
    /// |h| per coherence block of every transmission (fading runs only);
    /// folded into the result's fade_magnitude CDF by the runners.
    std::vector<double> fade_magnitudes;
};

World make_world(const Alice_bob_config& config)
{
    Pcg32 rng{config.seed, 0x0a11ce0bu};
    const double noise_power = chan::noise_power_for_snr_db(config.snr_db);
    chan::Medium medium{noise_power, rng.fork(1), config.math_profile};
    Pcg32 link_rng = rng.fork(2);
    install_alice_bob(medium, config.nodes, config.gains, config.fading, link_rng);

    phy::Modem_config alice_modem;
    alice_modem.amplitude = config.alice_amplitude;
    alice_modem.math_profile = config.math_profile;
    phy::Modem_config bob_modem;
    bob_modem.amplitude = config.bob_amplitude;
    bob_modem.math_profile = config.math_profile;
    phy::Modem_config router_modem;
    router_modem.math_profile = config.math_profile;

    return World{std::move(medium),
                 net::Net_node{config.nodes.alice, alice_modem},
                 net::Net_node{config.nodes.router, router_modem},
                 net::Net_node{config.nodes.bob, bob_modem},
                 Anc_receiver{config.receiver, noise_power, config.math_profile},
                 noise_power,
                 rng.fork(3),
                 {}};
}

/// One clean (collision-free) transmission from `from` to `to`; returns
/// the decoded frame if the receiver got it.  Airtime is charged for the
/// transmission length regardless of success.
std::optional<phy::Received_frame> clean_hop(World& world, net::Net_node& from,
                                             chan::Node_id to, const net::Packet& packet,
                                             Run_metrics& metrics)
{
    dsp::Workspace& workspace = dsp::Workspace::current();
    auto signal = workspace.signal();
    from.transmit_into(packet, world.rng, *signal);
    const chan::Transmission txs[] = {{from.id(), *signal, 0}};
    metrics.airtime_symbols += static_cast<double>(signal->size());
    world.medium.append_fade_magnitudes(from.id(), to, signal->size(),
                                        world.fade_magnitudes);
    auto received = workspace.signal();
    world.medium.receive_into(to, txs, rx_guard, *received);
    const Receive_outcome outcome =
        world.receiver.receive(*received, empty_sent_packet_buffer());
    if (outcome.status != Receive_status::clean)
        return std::nullopt;
    return outcome.frame;
}

net::Packet packet_from_frame(const phy::Received_frame& frame)
{
    net::Packet packet;
    packet.src = frame.header.src;
    packet.dst = frame.header.dst;
    packet.seq = frame.header.seq;
    packet.payload = frame.payload;
    return packet;
}

bool identity_matches(const phy::Frame_header& header, const net::Packet& packet)
{
    return header.src == packet.src && header.dst == packet.dst && header.seq == packet.seq;
}

void record_delivery(Run_metrics& metrics, Cdf& side_ber, const Bits& decoded,
                     const net::Packet& truth)
{
    const double ber = bit_error_rate(decoded, truth.payload);
    ++metrics.packets_delivered;
    metrics.payload_bits_delivered += truth.payload.size();
    metrics.packet_ber.add(ber);
    side_ber.add(ber);
}

} // namespace

Alice_bob_result run_alice_bob_traditional(const Alice_bob_config& config)
{
    World world = make_world(config);
    Alice_bob_result result;
    net::Flow flow_ab{static_cast<std::uint8_t>(config.nodes.alice),
                      static_cast<std::uint8_t>(config.nodes.bob), config.payload_bits,
                      world.rng.fork(10)};
    net::Flow flow_ba{static_cast<std::uint8_t>(config.nodes.bob),
                      static_cast<std::uint8_t>(config.nodes.alice), config.payload_bits,
                      world.rng.fork(11)};

    for (std::size_t i = 0; i < config.exchanges; ++i) {
        world.medium.set_fading_epoch(i); // fresh fade per exchange, shared across schemes
        // Alice -> Router -> Bob.
        const net::Packet pa = flow_ab.next();
        ++result.metrics.packets_attempted;
        if (const auto at_router = clean_hop(world, world.alice, world.router.id(), pa,
                                             result.metrics)) {
            if (const auto at_bob = clean_hop(world, world.router, world.bob.id(),
                                              packet_from_frame(*at_router), result.metrics)) {
                if (identity_matches(at_bob->header, pa))
                    record_delivery(result.metrics, result.ber_at_bob, at_bob->payload, pa);
            }
        }
        // Bob -> Router -> Alice.
        const net::Packet pb = flow_ba.next();
        ++result.metrics.packets_attempted;
        if (const auto at_router = clean_hop(world, world.bob, world.router.id(), pb,
                                             result.metrics)) {
            if (const auto at_alice = clean_hop(world, world.router, world.alice.id(),
                                                packet_from_frame(*at_router),
                                                result.metrics)) {
                if (identity_matches(at_alice->header, pb))
                    record_delivery(result.metrics, result.ber_at_alice, at_alice->payload,
                                    pb);
            }
        }
    }
    result.fade_magnitude.add_all(world.fade_magnitudes);
    return result;
}

Alice_bob_result run_alice_bob_cope(const Alice_bob_config& config)
{
    World world = make_world(config);
    Alice_bob_result result;
    net::Flow flow_ab{static_cast<std::uint8_t>(config.nodes.alice),
                      static_cast<std::uint8_t>(config.nodes.bob), config.payload_bits,
                      world.rng.fork(10)};
    net::Flow flow_ba{static_cast<std::uint8_t>(config.nodes.bob),
                      static_cast<std::uint8_t>(config.nodes.alice), config.payload_bits,
                      world.rng.fork(11)};

    dsp::Workspace& workspace = dsp::Workspace::current();
    std::uint16_t coded_seq = 1;
    for (std::size_t i = 0; i < config.exchanges; ++i) {
        world.medium.set_fading_epoch(i); // fresh fade per exchange, shared across schemes
        const net::Packet pa = flow_ab.next();
        const net::Packet pb = flow_ba.next();
        result.metrics.packets_attempted += 2;

        // Two sequential uploads.
        const auto pa_at_router =
            clean_hop(world, world.alice, world.router.id(), pa, result.metrics);
        const auto pb_at_router =
            clean_hop(world, world.bob, world.router.id(), pb, result.metrics);
        if (!pa_at_router || !pb_at_router)
            continue; // an upload failed; the coded broadcast is pointless

        // One XOR broadcast.
        net::Packet coded;
        coded.src = static_cast<std::uint8_t>(config.nodes.router);
        coded.dst = 0xff;
        coded.seq = coded_seq++;
        coded.payload = net::cope_encode(packet_from_frame(*pa_at_router),
                                         packet_from_frame(*pb_at_router));

        auto signal = workspace.signal();
        world.router.transmit_into(coded, world.rng, *signal);
        const chan::Transmission txs[] = {{world.router.id(), *signal, 0}};
        result.metrics.airtime_symbols += static_cast<double>(signal->size());
        world.medium.append_fade_magnitudes(world.router.id(), world.alice.id(),
                                            signal->size(), world.fade_magnitudes);
        world.medium.append_fade_magnitudes(world.router.id(), world.bob.id(),
                                            signal->size(), world.fade_magnitudes);

        auto at_alice = workspace.signal();
        world.medium.receive_into(world.alice.id(), txs, rx_guard, *at_alice);
        auto at_bob = workspace.signal();
        world.medium.receive_into(world.bob.id(), txs, rx_guard, *at_bob);

        const auto decode_side = [&](const dsp::Signal& received, const net::Packet& own,
                                     const net::Packet& wanted, Cdf& side_ber) {
            const Receive_outcome outcome =
                world.receiver.receive(received, empty_sent_packet_buffer());
            if (outcome.status != Receive_status::clean)
                return;
            const auto parsed = net::cope_parse(outcome.frame->payload);
            if (!parsed)
                return;
            const auto other = net::cope_decode(*parsed, net::header_for(own), own.payload);
            if (!other || !identity_matches(net::header_for(*other), wanted))
                return;
            record_delivery(result.metrics, side_ber, other->payload, wanted);
        };
        decode_side(*at_alice, pa, pb, result.ber_at_alice);
        decode_side(*at_bob, pb, pa, result.ber_at_bob);
    }
    result.fade_magnitude.add_all(world.fade_magnitudes);
    return result;
}

Alice_bob_result run_alice_bob_anc(const Alice_bob_config& config)
{
    World world = make_world(config);
    Alice_bob_result result;
    net::Flow flow_ab{static_cast<std::uint8_t>(config.nodes.alice),
                      static_cast<std::uint8_t>(config.nodes.bob), config.payload_bits,
                      world.rng.fork(10)};
    net::Flow flow_ba{static_cast<std::uint8_t>(config.nodes.bob),
                      static_cast<std::uint8_t>(config.nodes.alice), config.payload_bits,
                      world.rng.fork(11)};

    dsp::Workspace& workspace = dsp::Workspace::current();
    for (std::size_t i = 0; i < config.exchanges; ++i) {
        world.medium.set_fading_epoch(i); // fresh fade per exchange, shared across schemes
        const net::Packet pa = flow_ab.next();
        const net::Packet pb = flow_ba.next();
        result.metrics.packets_attempted += 2;

        // Round 1: triggered, deliberately colliding uploads (§7.6).
        const auto [delay_a, delay_b] = draw_distinct_delays(config.trigger, world.rng);
        auto signal_a = workspace.signal();
        world.alice.transmit_into(pa, world.rng, *signal_a);
        auto signal_b = workspace.signal();
        world.bob.transmit_into(pb, world.rng, *signal_b);
        const chan::Transmission round1[] = {{world.alice.id(), *signal_a, delay_a},
                                             {world.bob.id(), *signal_b, delay_b}};

        const std::size_t end_a = delay_a + signal_a->size();
        const std::size_t end_b = delay_b + signal_b->size();
        result.metrics.airtime_symbols += static_cast<double>(
            std::max(end_a, end_b) - std::min(delay_a, delay_b));
        result.metrics.overlaps.add(overlap_fraction(delay_a, signal_a->size(), delay_b,
                                                     signal_b->size()));
        world.medium.append_fade_magnitudes(world.alice.id(), world.router.id(),
                                            signal_a->size(), world.fade_magnitudes);
        world.medium.append_fade_magnitudes(world.bob.id(), world.router.id(),
                                            signal_b->size(), world.fade_magnitudes);

        auto at_router = workspace.signal();
        world.medium.receive_into(world.router.id(), round1, rx_guard, *at_router);

        // Round 2: the router amplifies the raw interfered signal and
        // broadcasts it (§7.5) — no decoding at the relay.
        auto forwarded = workspace.signal();
        if (!amplify_and_forward_into(*at_router, world.noise_power, 1.0, *forwarded))
            continue;
        const chan::Transmission round2[] = {{world.router.id(), *forwarded, 0}};
        result.metrics.airtime_symbols += static_cast<double>(forwarded->size());
        world.medium.append_fade_magnitudes(world.router.id(), world.alice.id(),
                                            forwarded->size(), world.fade_magnitudes);
        world.medium.append_fade_magnitudes(world.router.id(), world.bob.id(),
                                            forwarded->size(), world.fade_magnitudes);

        auto at_alice = workspace.signal();
        world.medium.receive_into(world.alice.id(), round2, rx_guard, *at_alice);
        auto at_bob = workspace.signal();
        world.medium.receive_into(world.bob.id(), round2, rx_guard, *at_bob);

        const auto decode_side = [&](const dsp::Signal& received, const net::Net_node& node,
                                     const net::Packet& wanted, Cdf& side_ber) {
            const Receive_outcome outcome = world.receiver.receive(received, node.buffer());
            if (outcome.status != Receive_status::decoded_interference)
                return;
            if (!identity_matches(outcome.frame->header, wanted))
                return;
            record_delivery(result.metrics, side_ber, outcome.frame->payload, wanted);
        };
        decode_side(*at_alice, world.alice, pb, result.ber_at_alice);
        decode_side(*at_bob, world.bob, pa, result.ber_at_bob);
    }
    result.fade_magnitude.add_all(world.fade_magnitudes);
    return result;
}

} // namespace anc::sim
