#include "capacity/capacity.h"

#include <cmath>
#include <stdexcept>

#include "util/db.h"

namespace anc::cap {

namespace {

double log2_1p(double x)
{
    return std::log2(1.0 + x);
}

} // namespace

double traditional_upper_bound(double snr, double alpha)
{
    if (snr < 0.0)
        throw std::invalid_argument{"traditional_upper_bound: snr must be non-negative"};
    return alpha * (log2_1p(2.0 * snr) + log2_1p(snr));
}

double anc_lower_bound(double snr, double alpha)
{
    if (snr < 0.0)
        throw std::invalid_argument{"anc_lower_bound: snr must be non-negative"};
    return 4.0 * alpha * log2_1p(snr * snr / (3.0 * snr + 1.0));
}

double capacity_gain(double snr, double alpha)
{
    const double traditional = traditional_upper_bound(snr, alpha);
    if (traditional <= 0.0)
        return 0.0;
    return anc_lower_bound(snr, alpha) / traditional;
}

std::vector<Capacity_point> sweep(double lo_db, double hi_db, double step_db, double alpha)
{
    if (step_db <= 0.0)
        throw std::invalid_argument{"sweep: step must be positive"};
    std::vector<Capacity_point> points;
    for (double snr_db = lo_db; snr_db <= hi_db + 1e-9; snr_db += step_db) {
        Capacity_point point;
        point.snr_db = snr_db;
        const double snr = from_db(snr_db);
        point.traditional = traditional_upper_bound(snr, alpha);
        point.anc = anc_lower_bound(snr, alpha);
        point.gain = point.traditional > 0.0 ? point.anc / point.traditional : 0.0;
        points.push_back(point);
    }
    return points;
}

double crossover_snr_db(double alpha)
{
    double lo = -10.0;
    double hi = 60.0;
    auto advantage = [alpha](double snr_db) {
        const double snr = from_db(snr_db);
        return anc_lower_bound(snr, alpha) - traditional_upper_bound(snr, alpha);
    };
    if (advantage(lo) > 0.0)
        return lo;
    for (int i = 0; i < 200; ++i) {
        const double mid = (lo + hi) / 2.0;
        if (advantage(mid) > 0.0)
            hi = mid;
        else
            lo = mid;
    }
    return (lo + hi) / 2.0;
}

Cutset_bound routing_cutset_bound(double p, double h_sd, double h_sr, double h_rd)
{
    // Eq. 21 with the 1/4 prefactors (each direction runs in half the
    // time, each hop in half of that).  The broadcast cut improves as the
    // source decorrelates from the relay (1 - rho^2); the multiple-access
    // cut improves with coherent combining (+2 rho sqrt(...)); the bound
    // is max over rho of min(C1, C2) — evaluated on a fine grid, which is
    // plenty for a monotone trade-off.
    Cutset_bound best;
    bool first = true;
    for (int i = 0; i < 512; ++i) {
        const double rho = static_cast<double>(i) / 512.0;
        const double c1 = 0.25 * std::log2(1.0 + (h_sd * h_sd + h_sr * h_sr) * p)
            + 0.25 * std::log2(1.0 + (1.0 - rho * rho) * h_sd * h_sd * p);
        const double c2 = 0.25
                * std::log2(1.0 + (h_sd * h_sd + h_rd * h_rd) * p
                            + 2.0 * rho * p * std::sqrt(h_sd * h_sd * h_rd * h_rd))
            + 0.25 * std::log2(1.0 + h_sd * h_sd * p);
        const double value = std::min(c1, c2);
        if (first || value > best.value()) {
            best.c1 = c1;
            best.c2 = c2;
            best.rho1 = rho;
            best.rho2 = rho;
            first = false;
        }
    }
    return best;
}

double relay_amplification(double power, double h_ar, double h_br)
{
    return std::sqrt(power / (power * h_ar * h_ar + power * h_br * h_br + 1.0));
}

double anc_receiver_snr(double power, double h_ar, double h_br, double h_ra)
{
    const double amp = relay_amplification(power, h_ar, h_br);
    const double signal = amp * amp * power * h_ra * h_ra * h_br * h_br;
    const double noise = amp * amp * h_ra * h_ra + 1.0;
    (void)h_ar; // enters through the amplification factor
    return signal / noise;
}

double anc_sum_rate(double power, double h_ar, double h_br, double h_ra, double h_rb)
{
    const double snr_alice = anc_receiver_snr(power, h_ar, h_br, h_ra);
    const double snr_bob = anc_receiver_snr(power, h_br, h_ar, h_rb);
    return 0.5 * (log2_1p(snr_alice) + log2_1p(snr_bob));
}

} // namespace anc::cap
