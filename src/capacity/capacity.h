// Capacity analysis of the half-duplex 2-way relay channel (§8,
// Theorem 8.1 and Appendix C).
//
// Theorem 8.1:
//   C_traditional <= alpha * (log(1 + 2 SNR) + log(1 + SNR))      (upper)
//   C_anc         >= 4 alpha * log(1 + SNR^2 / (3 SNR + 1))       (lower)
// and the ratio tends to 2 as SNR grows.
//
// alpha is the theorem's normalization constant; alpha = 1/8 reproduces
// the absolute scale of Fig. 7 (b/s/Hz with the relay's half-duplex and
// two-flow time sharing folded in).  Logs are base 2 (capacities in
// bits).

#pragma once

#include <vector>

namespace anc::cap {

inline constexpr double default_alpha = 0.125;

/// Upper bound on the traditional (routing) capacity at linear `snr`.
double traditional_upper_bound(double snr, double alpha = default_alpha);

/// Lower bound on the ANC (amplify-and-forward) capacity at linear `snr`.
double anc_lower_bound(double snr, double alpha = default_alpha);

/// C_anc / C_traditional at linear `snr`.
double capacity_gain(double snr, double alpha = default_alpha);

struct Capacity_point {
    double snr_db = 0.0;
    double traditional = 0.0;
    double anc = 0.0;
    double gain = 0.0;
};

/// Sweep both bounds across an SNR range in dB — the data of Fig. 7.
std::vector<Capacity_point> sweep(double from_db, double to_db, double step_db,
                                  double alpha = default_alpha);

/// The SNR (dB) above which ANC beats the traditional bound (the
/// crossover visible around 0-8 dB in Fig. 7).  Found by bisection over
/// [-10, 60] dB; returns the low edge if ANC already wins everywhere.
double crossover_snr_db(double alpha = default_alpha);

// ---- Appendix C: the routing outer bound (Eq. 21) --------------------

/// One direction of the cut-set bound for 3-node relaying with channel
/// gains known and transmissions time-shared.  C1 bounds the broadcast
/// cut (source into {relay, destination}) and C2 the multiple-access cut
/// ({source, relay} into destination); rho is the source-relay input
/// correlation, maximized numerically over [0, 1).
struct Cutset_bound {
    double c1 = 0.0;
    double c2 = 0.0;
    double rho1 = 0.0; // maximizing correlations
    double rho2 = 0.0;

    double value() const { return c1 < c2 ? c1 : c2; }
};

/// Cut-set bound of Eq. 21 for power `p` and gains: h_sd source->dest,
/// h_sr source->relay, h_rd relay->dest.
Cutset_bound routing_cutset_bound(double p, double h_sd, double h_sr, double h_rd);

// ---- Appendix C building blocks (amplify-and-forward link budget) ----

/// Relay amplification factor A = sqrt(P / (P h_ar^2 + P h_br^2 + 1)),
/// noise power normalized to 1 (Appendix C).
double relay_amplification(double power, double h_ar, double h_br);

/// Post-cancellation SNR at Alice (Eq. 25): Alice receives the amplified
/// mix through h_ra, cancels her own part, and is left with Bob's signal
/// plus relay noise amplified through her channel plus her own noise.
double anc_receiver_snr(double power, double h_ar, double h_br, double h_ra);

/// Total ANC throughput with explicit channel gains (Eq. 26):
/// 1/2 (log(1 + SNR_alice) + log(1 + SNR_bob)).
double anc_sum_rate(double power, double h_ar, double h_br, double h_ra, double h_rb);

} // namespace anc::cap
