#include "engine/scenario.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "sim/alice_bob.h"

namespace anc::engine {
namespace {

std::unique_ptr<Function_scenario> dummy(const std::string& name)
{
    return std::make_unique<Function_scenario>(
        name, std::vector<std::string>{"anc"},
        [](const Scenario_config&, std::uint64_t) { return Scenario_result{}; });
}

TEST(ScenarioRegistry, BuiltinCarriesTheTopologiesAndFadingVariants)
{
    const Scenario_registry& registry = Scenario_registry::builtin();
    EXPECT_EQ(registry.size(), 5u);
    ASSERT_NE(registry.find("alice_bob"), nullptr);
    ASSERT_NE(registry.find("x_topology"), nullptr);
    ASSERT_NE(registry.find("chain"), nullptr);
    ASSERT_NE(registry.find("alice_bob_fading"), nullptr);
    ASSERT_NE(registry.find("x_topology_fading"), nullptr);

    const std::vector<std::string> full{"traditional", "cope", "anc"};
    EXPECT_EQ(registry.at("alice_bob").schemes(), full);
    EXPECT_EQ(registry.at("x_topology").schemes(), full);
    EXPECT_EQ(registry.at("alice_bob_fading").schemes(), full);
    EXPECT_EQ(registry.at("x_topology_fading").schemes(), full);
    const std::vector<std::string> unidirectional{"traditional", "anc"};
    EXPECT_EQ(registry.at("chain").schemes(), unidirectional);
}

TEST(ScenarioRegistry, DuplicateNameThrows)
{
    Scenario_registry registry;
    registry.add(dummy("one"));
    EXPECT_THROW(registry.add(dummy("one")), std::invalid_argument);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(ScenarioRegistry, NullAndSchemelessScenariosThrow)
{
    Scenario_registry registry;
    EXPECT_THROW(registry.add(nullptr), std::invalid_argument);
    EXPECT_THROW(registry.add(std::make_unique<Function_scenario>(
                     "empty", std::vector<std::string>{},
                     [](const Scenario_config&, std::uint64_t) {
                         return Scenario_result{};
                     })),
                 std::invalid_argument);
}

TEST(ScenarioRegistry, LookupOfUnknownName)
{
    const Scenario_registry& registry = Scenario_registry::builtin();
    EXPECT_EQ(registry.find("nonexistent"), nullptr);
    EXPECT_THROW(registry.at("nonexistent"), std::out_of_range);
}

TEST(ScenarioRegistry, NamesKeepRegistrationOrder)
{
    Scenario_registry registry;
    registry.add(dummy("zeta"));
    registry.add(dummy("alpha"));
    const std::vector<std::string> expected{"zeta", "alpha"};
    EXPECT_EQ(registry.names(), expected);
}

TEST(ScenarioRegistry, RunRejectsUnsupportedScheme)
{
    const Scenario& chain = Scenario_registry::builtin().at("chain");
    EXPECT_FALSE(chain.supports_scheme("cope"));
    Scenario_config config;
    config.scheme = "cope";
    EXPECT_THROW(chain.run(config, 1), std::invalid_argument);
}

TEST(ScenarioRegistry, AliceBobScenarioMatchesDirectRunner)
{
    // The adapter must be a faithful pass-through of the sim runner.
    Scenario_config config;
    config.scheme = "anc";
    config.payload_bits = 1024;
    config.exchanges = 4;
    config.snr_db = 25.0;
    const Scenario_result via_engine =
        Scenario_registry::builtin().at("alice_bob").run(config, 77);

    sim::Alice_bob_config direct;
    direct.payload_bits = 1024;
    direct.exchanges = 4;
    direct.snr_db = 25.0;
    direct.seed = 77;
    const sim::Alice_bob_result expected = sim::run_alice_bob_anc(direct);

    EXPECT_EQ(via_engine.metrics.packets_delivered, expected.metrics.packets_delivered);
    EXPECT_DOUBLE_EQ(via_engine.metrics.airtime_symbols,
                     expected.metrics.airtime_symbols);
    EXPECT_DOUBLE_EQ(via_engine.metrics.mean_ber(), expected.metrics.mean_ber());
    ASSERT_EQ(via_engine.series.count("ber_at_alice"), 1u);
    EXPECT_EQ(via_engine.series.at("ber_at_alice").count(), expected.ber_at_alice.count());
}

} // namespace
} // namespace anc::engine
