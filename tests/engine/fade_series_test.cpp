// Channel-state recording: fading scenarios expose a per-block |h|
// series ("fade_magnitude") in Scenario_result, fixed-gain scenarios do
// not (keeping their emitted JSON unchanged), and recording is pure —
// it cannot perturb the run's metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "engine/emit.h"
#include "engine/engine.h"
#include "sim/alice_bob.h"

namespace anc::engine {
namespace {

Scenario_config fading_config()
{
    Scenario_config config;
    config.scheme = "anc";
    config.payload_bits = 512;
    config.exchanges = 3;
    config.snr_db = 25.0;
    config.coherence_block = 1024;
    return config;
}

TEST(FadeSeries, FadingScenarioRecordsPerBlockMagnitudes)
{
    const Scenario& scenario = Scenario_registry::builtin().at("alice_bob_fading");
    const Scenario_result result = scenario.run(fading_config(), 5);
    const auto it = result.series.find("fade_magnitude");
    ASSERT_NE(it, result.series.end());
    const Cdf& fades = it->second;
    // 3 exchanges x 4 transmissions (2 uplinks + 2 downlink broadcasts),
    // each spanning >= 1 coherence block of a ~2800-sample frame.
    EXPECT_GE(fades.count(), 12u);
    // Rayleigh |h|: all positive, mean around sqrt(pi)/2 ~ 0.886.
    EXPECT_GT(fades.min(), 0.0);
    EXPECT_NEAR(fades.mean(), std::sqrt(std::numbers::pi) / 2.0, 0.25);
}

TEST(FadeSeries, FixedScenarioHasNoFadeSeries)
{
    const Scenario& scenario = Scenario_registry::builtin().at("alice_bob");
    Scenario_config config = fading_config();
    const Scenario_result result = scenario.run(config, 5);
    EXPECT_EQ(result.series.count("fade_magnitude"), 0u);
}

TEST(FadeSeries, SeriesAppearsInFadingSweepJson)
{
    Sweep_grid grid;
    grid.scenarios = {"alice_bob_fading"};
    grid.schemes = {"anc"};
    grid.payload_bits = {512};
    grid.exchanges = {2};
    grid.repetitions = 2;
    Executor_config config;
    config.threads = 1;
    config.base_seed = 11;
    const std::vector<Task_result> tasks = run_sweep(grid, config);
    const std::string json = to_json(tasks, aggregate(tasks));
    EXPECT_NE(json.find("\"fade_magnitude\":{"), std::string::npos);
}

TEST(FadeSeries, RecordingIsPureAndSchemePaired)
{
    // Same seed, different schemes: the scheme-collapsed design means
    // traditional and ANC replay the same fading epochs over the same
    // links — the uplink fade series they record must agree wherever
    // both record the same transmissions (first exchange's uplinks), and
    // recording must be replay-deterministic.
    sim::Alice_bob_config config;
    config.payload_bits = 512;
    config.exchanges = 2;
    config.fading.model = chan::Gain_model::rayleigh_block;
    config.fading.coherence_block = 1024;
    config.seed = 99;
    const sim::Alice_bob_result once = sim::run_alice_bob_anc(config);
    const sim::Alice_bob_result again = sim::run_alice_bob_anc(config);
    ASSERT_EQ(once.fade_magnitude.count(), again.fade_magnitude.count());
    EXPECT_EQ(once.fade_magnitude.sorted_samples(),
              again.fade_magnitude.sorted_samples());
    EXPECT_GT(once.fade_magnitude.count(), 0u);
}

} // namespace
} // namespace anc::engine
