// Statistical corridor validation of the fast math profile.
//
// The fast profile is *not* byte-identical to exact — by design (see
// PERF.md "Math profiles").  What must hold instead: on grids where the
// profile axis is seed-collapsed (paired channel realizations), the
// fast rows' delivery rates and BERs stay inside tight statistical
// corridors around the exact rows, on the paper's own workloads
// (alice_bob, x_topology) and the fading extension — and the fast
// profile is itself fully deterministic, at any thread count.
//
// Everything here is deterministic in (grid, base_seed), so the
// corridors are calibrated once and can never flake.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "dsp/math_profile.h"
#include "engine/emit.h"
#include "engine/engine.h"

namespace anc::engine {
namespace {

Sweep_outcome run_profiled(Sweep_grid grid, std::size_t threads,
                           dsp::Math_profile relaxed = dsp::Math_profile::fast)
{
    grid.math_profiles = {dsp::Math_profile::exact, relaxed};
    Executor_config config;
    config.threads = threads;
    config.base_seed = 9090;
    const std::vector<Task_result> tasks = run_sweep(grid, config);
    return Sweep_outcome{tasks, aggregate(tasks)};
}

const Point_summary* find_partner(const std::vector<Point_summary>& points,
                                  const Point_key& exact_key,
                                  dsp::Math_profile relaxed)
{
    Point_key partner_key = exact_key;
    partner_key.math_profile = relaxed;
    for (const Point_summary& point : points)
        if (point.key == partner_key)
            return &point;
    return nullptr;
}

/// Assert every exact point has a relaxed-profile partner inside the
/// corridor: the delivery-rate difference within a pooled binomial
/// interval, and the mean BER difference within `ber_slack` absolute.
void expect_corridor(const std::vector<Point_summary>& points, double ber_slack,
                     dsp::Math_profile relaxed = dsp::Math_profile::fast)
{
    std::size_t compared = 0;
    for (const Point_summary& exact : points) {
        if (exact.key.math_profile != dsp::Math_profile::exact)
            continue;
        const Point_summary* fast = find_partner(points, exact.key, relaxed);
        ASSERT_NE(fast, nullptr) << "no " << dsp::to_string(relaxed)
                                 << " partner for " << exact.key.scenario;
        ++compared;

        // The workload shape is profile-independent.
        ASSERT_EQ(exact.totals.packets_attempted, fast->totals.packets_attempted);
        const double n = static_cast<double>(exact.totals.packets_attempted);
        ASSERT_GT(n, 0.0);

        // Pooled binomial corridor on the delivery rate: 4 sigma of the
        // difference of two independent proportions, plus a one-packet
        // continuity term.  Paired realizations make the true spread far
        // smaller, so 4 sigma is generous without being vacuous: a noise
        // or kernel bug that shifts delivery materially still fails.
        const double p_exact = exact.totals.delivery_rate();
        const double p_fast = fast->totals.delivery_rate();
        const double pooled = 0.5 * (p_exact + p_fast);
        const double sigma = std::sqrt(std::max(2.0 * pooled * (1.0 - pooled) / n, 0.0));
        const double corridor = 4.0 * sigma + 2.0 / n;
        EXPECT_LE(std::abs(p_exact - p_fast), corridor)
            << exact.key.scenario << " @ " << exact.key.snr_db << " dB ("
            << exact.key.scheme << "): exact " << p_exact << " fast " << p_fast;

        EXPECT_LE(std::abs(exact.totals.mean_ber() - fast->totals.mean_ber()),
                  ber_slack)
            << exact.key.scenario << " @ " << exact.key.snr_db << " dB ("
            << exact.key.scheme << ")";
    }
    EXPECT_GT(compared, 0u);
}

Sweep_grid alice_bob_grid()
{
    Sweep_grid grid;
    grid.scenarios = {"alice_bob"};
    grid.schemes = {"anc", "traditional"};
    grid.snr_db = {21.0, 25.0};
    grid.payload_bits = {512};
    grid.exchanges = {2};
    grid.repetitions = 8;
    return grid;
}

Sweep_grid x_topology_grid()
{
    Sweep_grid grid;
    grid.scenarios = {"x_topology"};
    grid.schemes = {"anc", "cope"};
    grid.snr_db = {22.0};
    grid.payload_bits = {512};
    grid.exchanges = {2};
    grid.repetitions = 6;
    return grid;
}

Sweep_grid fading_grid()
{
    Sweep_grid grid;
    grid.scenarios = {"alice_bob_fading"};
    grid.schemes = {"anc"};
    grid.snr_db = {25.0};
    grid.payload_bits = {512};
    grid.exchanges = {2};
    grid.coherence_blocks = {2048};
    grid.mean_link_gains = {1.3};
    grid.repetitions = 8;
    return grid;
}

TEST(MathProfileCorridor, AliceBobWithinCorridorAt1And8Threads)
{
    expect_corridor(run_profiled(alice_bob_grid(), 1).points, 0.02);
    expect_corridor(run_profiled(alice_bob_grid(), 8).points, 0.02);
}

TEST(MathProfileCorridor, XTopologyWithinCorridorAt1And8Threads)
{
    expect_corridor(run_profiled(x_topology_grid(), 1).points, 0.02);
    expect_corridor(run_profiled(x_topology_grid(), 8).points, 0.02);
}

TEST(MathProfileCorridor, FadingPointWithinCorridorAt1And8Threads)
{
    // Fading deliveries are sparser (deep fades kill whole packets), so
    // the BER corridor is wider; the binomial corridor self-scales.
    expect_corridor(run_profiled(fading_grid(), 1).points, 0.05);
    expect_corridor(run_profiled(fading_grid(), 8).points, 0.05);
}

TEST(MathProfileCorridor, SimdProfileWithinCorridorAt1And8Threads)
{
    // The simd profile through the same corridor matrix — it shares the
    // fast kernels' math bit for bit, so these corridors can only fail
    // if a lane kernel or the dispatch seam broke, which is exactly what
    // they are here to catch end to end (whatever backend this machine
    // resolves to).
    constexpr dsp::Math_profile simd = dsp::Math_profile::simd;
    expect_corridor(run_profiled(alice_bob_grid(), 1, simd).points, 0.02, simd);
    expect_corridor(run_profiled(alice_bob_grid(), 8, simd).points, 0.02, simd);
    expect_corridor(run_profiled(x_topology_grid(), 1, simd).points, 0.02, simd);
    expect_corridor(run_profiled(fading_grid(), 8, simd).points, 0.05, simd);
}

TEST(MathProfileCorridor, SimdProfileIsThreadInvariant)
{
    Sweep_grid grid = alice_bob_grid();
    grid.math_profiles = {dsp::Math_profile::simd};
    Executor_config serial;
    serial.threads = 1;
    serial.base_seed = 777;
    Executor_config parallel;
    parallel.threads = 8;
    parallel.base_seed = 777;
    const std::vector<Task_result> a = run_sweep(grid, serial);
    const std::vector<Task_result> b = run_sweep(grid, parallel);
    const std::string json = to_json(a, aggregate(a));
    EXPECT_EQ(json, to_json(b, aggregate(b)));
    // Every emitted row carries the simd tag (and none carry another).
    EXPECT_NE(json.find("\"math_profile\":\"simd\""), std::string::npos);
    EXPECT_EQ(json.find("\"math_profile\":\"fast\""), std::string::npos);
    EXPECT_EQ(json.find("\"math_profile\":\"exact\""), std::string::npos);
}

TEST(MathProfileCorridor, SimdProfileIsBitIdenticalToFastModuloTag)
{
    // The backend's strongest system-level claim (util/simd.h): simd
    // output equals fast output byte for byte — only the profile tag
    // differs.  Scrubbing the tags from both JSON documents must leave
    // identical bytes, on AVX2 dispatch and scalar fallback alike.
    Sweep_grid grid = alice_bob_grid();
    Executor_config config;
    config.threads = 4;
    config.base_seed = 4242;
    const auto json_for = [&](dsp::Math_profile profile) {
        Sweep_grid g = grid;
        g.math_profiles = {profile};
        const std::vector<Task_result> tasks = run_sweep(g, config);
        std::string json = to_json(tasks, aggregate(tasks));
        const std::string tag = std::string{"\"math_profile\":\""}
                                + dsp::to_string(profile) + "\"";
        for (std::size_t at = json.find(tag); at != std::string::npos;
             at = json.find(tag, at))
            json.replace(at, tag.size(), "\"math_profile\":\"X\"");
        return json;
    };
    EXPECT_EQ(json_for(dsp::Math_profile::simd), json_for(dsp::Math_profile::fast));
}

TEST(MathProfileCorridor, FastProfileIsThreadInvariant)
{
    // Relaxed determinism is still determinism: the fast profile must be
    // bit-identical across thread counts and replays, exactly like exact.
    Sweep_grid grid = alice_bob_grid();
    grid.math_profiles = {dsp::Math_profile::fast};
    Executor_config serial;
    serial.threads = 1;
    serial.base_seed = 777;
    Executor_config parallel;
    parallel.threads = 8;
    parallel.base_seed = 777;
    const std::vector<Task_result> a = run_sweep(grid, serial);
    const std::vector<Task_result> b = run_sweep(grid, parallel);
    EXPECT_EQ(to_json(a, aggregate(a)), to_json(b, aggregate(b)));
}

TEST(MathProfileCorridor, ProfilesAreTaggedAndNeverMixed)
{
    const Sweep_outcome outcome = run_profiled(alice_bob_grid(), 4);
    // Every point is tagged, both profiles appear, and aggregation kept
    // them apart (equal point counts per profile).
    std::size_t exact_points = 0;
    std::size_t fast_points = 0;
    for (const Point_summary& point : outcome.points) {
        if (point.key.math_profile == dsp::Math_profile::exact)
            ++exact_points;
        else
            ++fast_points;
    }
    EXPECT_EQ(exact_points, fast_points);
    EXPECT_GT(exact_points, 0u);

    const std::string json = to_json(outcome.tasks, outcome.points);
    EXPECT_NE(json.find("\"math_profile\":\"exact\""), std::string::npos);
    EXPECT_NE(json.find("\"math_profile\":\"fast\""), std::string::npos);
}

TEST(MathProfileCorridor, ProfileAxisIsSeedCollapsed)
{
    Sweep_grid grid = alice_bob_grid();
    grid.math_profiles = {dsp::Math_profile::exact, dsp::Math_profile::fast};
    const std::vector<Sweep_task> tasks = expand(grid);
    // Tasks differing only in profile (and/or scheme) share a seed_index:
    // the corridor comparison is paired on channel realizations.
    for (const Sweep_task& a : tasks) {
        for (const Sweep_task& b : tasks) {
            const bool same_point_and_rep = a.scenario == b.scenario
                && a.config.snr_db == b.config.snr_db
                && a.repetition == b.repetition;
            if (same_point_and_rep) {
                EXPECT_EQ(a.seed_index, b.seed_index);
            }
        }
    }
    // And a default grid (single exact profile) expands exactly as before.
    Sweep_grid plain = alice_bob_grid();
    const std::vector<Sweep_task> before = expand(plain);
    ASSERT_EQ(tasks.size(), 2 * before.size());
    for (std::size_t i = 0; i < before.size(); ++i)
        EXPECT_EQ(before[i].config.math_profile, dsp::Math_profile::exact);
}

} // namespace
} // namespace anc::engine
