#include "engine/executor.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <stdexcept>

#include "engine/emit.h"
#include "engine/engine.h"
#include "util/rng.h"

namespace anc::engine {
namespace {

/// A cheap synthetic workload whose outputs depend on every config axis
/// and on the seed, so scheduling bugs show up as value differences.
std::unique_ptr<Function_scenario> synthetic(const std::string& name)
{
    return std::make_unique<Function_scenario>(
        name, std::vector<std::string>{"anc", "traditional"},
        [](const Scenario_config& config, std::uint64_t seed) {
            Pcg32 rng{seed};
            Scenario_result result;
            result.metrics.packets_attempted = config.exchanges;
            result.metrics.packets_delivered = rng.next_in_range(
                0, static_cast<std::uint32_t>(config.exchanges));
            result.metrics.payload_bits_delivered =
                result.metrics.packets_delivered * config.payload_bits;
            result.metrics.airtime_symbols =
                config.snr_db * static_cast<double>(config.exchanges) + rng.next_double();
            for (std::size_t i = 0; i < result.metrics.packets_delivered; ++i)
                result.metrics.packet_ber.add(rng.next_double() * 0.05);
            result.series["aux"].add(rng.next_double());
            result.scalars["draws"] = static_cast<double>(seed % 1000);
            return result;
        });
}

Scenario_registry make_synthetic_registry()
{
    Scenario_registry registry;
    registry.add(synthetic("synthetic_a"));
    registry.add(synthetic("synthetic_b"));
    return registry;
}

TEST(DeriveTaskSeed, DeterministicAndDistinct)
{
    EXPECT_EQ(derive_task_seed(42, 7), derive_task_seed(42, 7));
    EXPECT_NE(derive_task_seed(42, 7), derive_task_seed(42, 8));
    EXPECT_NE(derive_task_seed(42, 7), derive_task_seed(43, 7));

    std::set<std::uint64_t> seeds;
    for (std::size_t i = 0; i < 10000; ++i)
        seeds.insert(derive_task_seed(1, i));
    EXPECT_EQ(seeds.size(), 10000u);
}

TEST(ParallelExecutor, ThreadCountInvariantOnSyntheticSweep)
{
    // >= 100 tasks, compared byte-for-byte through the JSON emitter: the
    // aggregate must not depend on how many workers ran the sweep.
    const Scenario_registry registry = make_synthetic_registry();
    Sweep_grid grid;
    grid.scenarios = {"synthetic_a", "synthetic_b"};
    grid.snr_db = {10.0, 20.0, 30.0};
    grid.payload_bits = {256, 512};
    grid.repetitions = 5;
    const std::vector<Sweep_task> tasks = expand(grid, registry);
    ASSERT_GE(tasks.size(), 100u);

    Executor_config serial;
    serial.threads = 1;
    serial.base_seed = 99;
    const std::vector<Task_result> reference = run_sweep(tasks, registry, serial);
    const std::string reference_json = to_json(reference, aggregate(reference));

    for (const std::size_t threads : {2u, 4u, 13u}) {
        Executor_config parallel = serial;
        parallel.threads = threads;
        const std::vector<Task_result> results = run_sweep(tasks, registry, parallel);
        EXPECT_EQ(to_json(results, aggregate(results)), reference_json)
            << "thread count " << threads << " changed the results";
    }
}

TEST(ParallelExecutor, ThreadCountInvariantOnRealTopologies)
{
    // The full path — real sample-level simulations through the builtin
    // registry — must also be bit-identical across thread counts.
    Sweep_grid grid;
    grid.scenarios = {"alice_bob", "chain"};
    grid.snr_db = {20.0, 25.0};
    grid.payload_bits = {512};
    grid.exchanges = {2};
    grid.repetitions = 10;
    const std::vector<Sweep_task> tasks = expand(grid);
    ASSERT_GE(tasks.size(), 100u); // (3 + 2 schemes) x 2 SNRs x 10 reps

    Executor_config serial;
    serial.threads = 1;
    serial.base_seed = 7;
    const Scenario_registry& registry = Scenario_registry::builtin();
    const std::vector<Task_result> reference = run_sweep(tasks, registry, serial);

    Executor_config parallel = serial;
    parallel.threads = 4;
    const std::vector<Task_result> results = run_sweep(tasks, registry, parallel);

    EXPECT_EQ(to_json(results, aggregate(results)),
              to_json(reference, aggregate(reference)));
}

TEST(ParallelExecutor, SeedsFollowSeedIndexNotSchedule)
{
    const Scenario_registry registry = make_synthetic_registry();
    Sweep_grid grid;
    grid.scenarios = {"synthetic_a"};
    grid.repetitions = 16;
    Executor_config config;
    config.threads = 8;
    config.base_seed = 5;
    const std::vector<Task_result> results =
        run_sweep(expand(grid, registry), registry, config);
    ASSERT_EQ(results.size(), 32u);
    for (const Task_result& result : results)
        EXPECT_EQ(result.seed, derive_task_seed(5, result.task.seed_index));
}

TEST(ParallelExecutor, SchemesShareChannelRealizations)
{
    // The paired-run design: at a fixed (grid point, repetition) every
    // scheme must run with the SAME seed, so per-run gains compare the
    // two schemes over one channel realization.
    Sweep_grid grid;
    grid.scenarios = {"alice_bob"};
    grid.snr_db = {22.0};
    grid.payload_bits = {512};
    grid.exchanges = {2};
    grid.repetitions = 3;
    Executor_config config;
    config.threads = 2;
    config.base_seed = 31;
    const std::vector<Task_result> results = run_sweep(grid, config);
    ASSERT_EQ(results.size(), 9u); // 3 schemes x 3 repetitions

    std::map<std::size_t, std::set<std::uint64_t>> seeds_by_repetition;
    for (const Task_result& result : results)
        seeds_by_repetition[result.task.repetition].insert(result.seed);
    ASSERT_EQ(seeds_by_repetition.size(), 3u);
    std::set<std::uint64_t> across_repetitions;
    for (const auto& [repetition, seeds] : seeds_by_repetition) {
        EXPECT_EQ(seeds.size(), 1u) << "schemes diverged at repetition " << repetition;
        across_repetitions.insert(*seeds.begin());
    }
    EXPECT_EQ(across_repetitions.size(), 3u); // but repetitions stay independent
}

TEST(ParallelExecutor, ProgressReachesTotal)
{
    const Scenario_registry registry = make_synthetic_registry();
    Sweep_grid grid;
    grid.scenarios = {"synthetic_a"};
    grid.repetitions = 10;
    Executor_config config;
    config.threads = 4;
    std::size_t last = 0;
    std::size_t calls = 0;
    config.on_progress = [&](std::size_t done, std::size_t total) {
        EXPECT_LE(done, total);
        last = std::max(last, done);
        ++calls;
    };
    const std::vector<Task_result> results =
        run_sweep(expand(grid, registry), registry, config);
    EXPECT_EQ(last, results.size());
    EXPECT_EQ(calls, results.size());
}

TEST(ParallelExecutor, ScenarioExceptionPropagates)
{
    Scenario_registry registry;
    registry.add(std::make_unique<Function_scenario>(
        "exploding", std::vector<std::string>{"anc"},
        [](const Scenario_config&, std::uint64_t seed) -> Scenario_result {
            if (seed % 2 == 0 || seed % 2 == 1) // always
                throw std::runtime_error{"boom"};
            return {};
        }));
    Sweep_grid grid;
    grid.scenarios = {"exploding"};
    grid.repetitions = 8;
    Executor_config config;
    config.threads = 4;
    EXPECT_THROW(run_sweep(expand(grid, registry), registry, config),
                 std::runtime_error);
}

TEST(RunGrid, AggregatesPerPoint)
{
    const Scenario_registry registry = make_synthetic_registry();
    Sweep_grid grid;
    grid.scenarios = {"synthetic_a"};
    grid.schemes = {"anc"};
    grid.snr_db = {10.0, 20.0};
    grid.repetitions = 6;
    Executor_config config;
    config.threads = 3;
    const Sweep_outcome outcome = run_grid(grid, registry, config);
    ASSERT_EQ(outcome.tasks.size(), 12u);
    ASSERT_EQ(outcome.points.size(), 2u);
    EXPECT_EQ(outcome.points[0].runs, 6u);
    EXPECT_DOUBLE_EQ(outcome.points[0].key.snr_db, 10.0);
    EXPECT_DOUBLE_EQ(outcome.points[1].key.snr_db, 20.0);
    EXPECT_EQ(outcome.points[0].throughput.count(), 6u);
    EXPECT_EQ(outcome.points[0].series.at("aux").count(), 6u);
}

} // namespace
} // namespace anc::engine
