// The multi-process sweep coordinator (engine/coordinator.h), driven
// hermetically through the Worker_launcher seam: fake workers are
// /bin/sh one-liners that publish prebuilt shard journals, hang, or
// crash — so watchdog kills, reassignment, work stealing, and the
// merge-equivalence guarantee are all exercised without racing real
// sweeps.

#include "engine/coordinator.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/emit.h"
#include "engine/engine.h"
#include "engine/fleet.h"
#include "engine/journal.h"
#include "util/rng.h"

namespace anc::engine {
namespace {

/// Seed-dependent samples on every CDF (as in journal_test), so any
/// merge path that loses order or precision breaks byte-identity.
Scenario_registry noisy_registry()
{
    Scenario_registry registry;
    registry.add(std::make_unique<Function_scenario>(
        "noisy", std::vector<std::string>{"anc", "traditional"},
        [](const Scenario_config& config, std::uint64_t seed) {
            Pcg32 rng{seed};
            Scenario_result result;
            result.metrics.packets_attempted = config.exchanges;
            result.metrics.packets_delivered = rng.next_in_range(
                1, static_cast<std::uint32_t>(config.exchanges));
            result.metrics.payload_bits_delivered =
                result.metrics.packets_delivered * config.payload_bits;
            result.metrics.airtime_symbols = 1.0 + rng.next_double() * 1e-13;
            for (std::size_t i = 0; i < 3; ++i)
                result.metrics.packet_ber.add(rng.next_double() * 0.05);
            result.series["phase err"].add(rng.next_double());
            result.scalars["iters"] = rng.next_double() * 1e9;
            return result;
        }));
    return registry;
}

Sweep_grid small_grid()
{
    Sweep_grid grid;
    grid.scenarios = {"noisy"};
    grid.snr_db = {10.0, 20.0};
    grid.repetitions = 3;
    return grid;
}

/// A scratch directory for one test's shard journals and scripts.
struct Temp_dir {
    explicit Temp_dir(const std::string& name) : path{testing::TempDir() + name}
    {
        std::remove(path.c_str());
        ::system(("rm -rf '" + path + "' && mkdir -p '" + path + "'").c_str());
    }
    ~Temp_dir() { ::system(("rm -rf '" + path + "'").c_str()); }
    std::string path;
};

/// Run shard K/S of `grid` in-process and journal it to `path` — the
/// artifact a healthy worker would have produced.
void prebuild_shard(const Sweep_grid& grid, const Scenario_registry& registry,
                    std::uint64_t seed, std::size_t k, std::size_t s,
                    const std::string& path)
{
    const std::vector<Sweep_task> all = expand(grid, registry);
    const std::vector<Sweep_task> mine = s > 1 ? shard_tasks(all, k, s) : all;
    Journal_writer writer{
        path, Journal_header{grid_fingerprint(grid), seed, all.size(), k, s},
        /*truncate=*/true};
    Executor_config config;
    config.threads = 1;
    config.base_seed = seed;
    config.isolate_faults = true;
    config.on_complete = [&writer](const Task_result& r) { writer.append(r); };
    run_sweep(mine, registry, config);
    writer.flush();
}

/// Keep the first `lines` lines of `source` in `target` (a journal cut
/// short by a crash; magic + header are the first two lines).
void truncate_lines(const std::string& source, const std::string& target,
                    std::size_t lines)
{
    std::ifstream in{source};
    std::ofstream out{target, std::ios::trunc};
    std::string line;
    for (std::size_t i = 0; i < lines && std::getline(in, line); ++i)
        out << line << "\n";
}

/// `cp` the prebuilt journal into place atomically (part-file + mv), as
/// a worker completing its whole shard in one step.
std::string publish_script(const std::string& prebuilt, const std::string& target)
{
    return "cp '" + prebuilt + "' '" + target + ".part' && mv '" + target
         + ".part' '" + target + "'";
}

/// A launcher running /bin/sh fake workers; every request is recorded.
Worker_launcher script_launcher(
    std::function<std::string(const Worker_request&)> script_for,
    std::vector<Worker_request>* log = nullptr)
{
    return [script_for = std::move(script_for), log](const Worker_request& request) {
        if (log != nullptr)
            log->push_back(request);
        return util::Subprocess::spawn({"/bin/sh", "-c", script_for(request)});
    };
}

/// The single-process reference document the coordinator must match.
std::string reference_json(const Sweep_grid& grid, const Scenario_registry& registry,
                           std::uint64_t seed)
{
    Executor_config config;
    config.threads = 1;
    config.base_seed = seed;
    config.isolate_faults = true;
    const std::vector<Task_result> results =
        run_sweep(expand(grid, registry), registry, config);
    return to_json(results, aggregate(results));
}

Coordinator_config base_config(const std::string& work_dir, std::size_t workers,
                               std::size_t shards)
{
    Coordinator_config config;
    config.workers = workers;
    config.shards = shards;
    config.work_dir = work_dir;
    config.poll_interval = std::chrono::milliseconds{5};
    config.heartbeat_timeout = std::chrono::milliseconds{30000};
    return config;
}

TEST(Coordinator, MergesShardsByteIdenticalToDirectRun)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();
    const std::uint64_t seed = 42;
    Temp_dir dir{"coord_happy"};

    for (std::size_t k = 1; k <= 2; ++k)
        prebuild_shard(grid, registry, seed, k, 2, dir.path + "/pre" + std::to_string(k));

    Coordinator_config config = base_config(dir.path, 2, 2);
    config.launcher = script_launcher([&](const Worker_request& r) {
        return publish_script(dir.path + "/pre" + std::to_string(r.shard_index),
                              r.journal_path);
    });
    const Coordinator_outcome outcome = run_coordinated(grid, registry, seed, config);

    EXPECT_TRUE(outcome.completed);
    EXPECT_FALSE(outcome.cancelled);
    EXPECT_EQ(outcome.failed_shards, 0u);
    EXPECT_EQ(outcome.stats.launches, 2u);
    EXPECT_EQ(outcome.stats.reassignments, 0u);
    EXPECT_EQ(outcome.stats.steals, 0u);
    EXPECT_EQ(outcome.tally.ok, outcome.results.size());

    // The merge-equivalence guarantee: same bytes as one direct run.
    EXPECT_EQ(to_json(outcome.results, aggregate(outcome.results)),
              reference_json(grid, registry, seed));

    // Rows arrive in strict global index order.
    for (std::size_t i = 0; i < outcome.results.size(); ++i)
        EXPECT_EQ(outcome.results[i].task.index, i);
}

TEST(Coordinator, WatchdogKillsStalledWorkerAndReassigns)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();
    const std::uint64_t seed = 7;
    Temp_dir dir{"coord_stall"};

    for (std::size_t k = 1; k <= 2; ++k)
        prebuild_shard(grid, registry, seed, k, 2, dir.path + "/pre" + std::to_string(k));

    // Shard 1's first worker writes nothing and hangs; its relaunch (and
    // shard 2 throughout) publishes the journal.  The watchdog must fire
    // on the silent journal, not on wall time of healthy workers.
    std::vector<Worker_request> requests;
    Coordinator_config config = base_config(dir.path, 2, 2);
    config.heartbeat_timeout = std::chrono::milliseconds{300};
    config.launcher = script_launcher(
        [&](const Worker_request& r) -> std::string {
            if (r.shard_index == 1 && r.attempt == 1)
                return "sleep 60";
            return publish_script(dir.path + "/pre" + std::to_string(r.shard_index),
                                  r.journal_path);
        },
        &requests);
    const Coordinator_outcome outcome = run_coordinated(grid, registry, seed, config);

    EXPECT_TRUE(outcome.completed);
    EXPECT_EQ(outcome.stats.watchdog_kills, 1u);
    EXPECT_EQ(outcome.stats.reassignments, 1u);
    EXPECT_EQ(outcome.stats.launches, 3u);
    EXPECT_EQ(to_json(outcome.results, aggregate(outcome.results)),
              reference_json(grid, registry, seed));
}

TEST(Coordinator, CrashedWorkerResumesWithoutRecomputingTasks)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();
    const std::uint64_t seed = 9;
    Temp_dir dir{"coord_crash"};

    prebuild_shard(grid, registry, seed, 1, 2, dir.path + "/pre1");
    prebuild_shard(grid, registry, seed, 2, 2, dir.path + "/pre2");
    // Shard 1 "crashes" after journaling its first two tasks.
    truncate_lines(dir.path + "/pre1", dir.path + "/pre1_partial", 2 + 2);

    std::vector<Worker_request> requests;
    Coordinator_config config = base_config(dir.path, 2, 2);
    config.launcher = script_launcher(
        [&](const Worker_request& r) -> std::string {
            if (r.shard_index == 1 && r.attempt == 1)
                return publish_script(dir.path + "/pre1_partial", r.journal_path)
                     + " && exit 1";
            return publish_script(dir.path + "/pre" + std::to_string(r.shard_index),
                                  r.journal_path);
        },
        &requests);
    const Coordinator_outcome outcome = run_coordinated(grid, registry, seed, config);

    EXPECT_TRUE(outcome.completed);
    EXPECT_EQ(outcome.stats.worker_failures, 1u);
    EXPECT_EQ(outcome.stats.reassignments, 1u);

    // The relaunch must be a --resume of the SAME journal: the two tasks
    // the crashed attempt completed are never recomputed.
    bool saw_resume = false;
    for (const Worker_request& r : requests)
        if (r.shard_index == 1 && r.attempt == 2) {
            saw_resume = true;
            EXPECT_TRUE(r.resume);
            EXPECT_EQ(r.journal_path, shard_journal_path(dir.path, 1));
        }
    EXPECT_TRUE(saw_resume);
    EXPECT_EQ(to_json(outcome.results, aggregate(outcome.results)),
              reference_json(grid, registry, seed));
}

TEST(Coordinator, ShardFailsPermanentlyAfterMaxAttempts)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();
    const std::uint64_t seed = 3;
    Temp_dir dir{"coord_fail"};

    prebuild_shard(grid, registry, seed, 1, 2, dir.path + "/pre1");

    // Shard 2 crashes on every attempt; shard 1 is healthy.
    Coordinator_config config = base_config(dir.path, 2, 2);
    config.max_shard_attempts = 2;
    config.launcher = script_launcher([&](const Worker_request& r) -> std::string {
        if (r.shard_index == 2)
            return "exit 1";
        return publish_script(dir.path + "/pre1", r.journal_path);
    });
    const Coordinator_outcome outcome = run_coordinated(grid, registry, seed, config);

    EXPECT_FALSE(outcome.completed);
    EXPECT_EQ(outcome.failed_shards, 1u);
    EXPECT_EQ(outcome.stats.worker_failures, 2u);
    EXPECT_GT(outcome.tally.skipped, 0u);
    // The merged stream stays a correct prefix: global index order with
    // no gaps, stalling at the first index the failed shard owns.
    for (std::size_t i = 0; i < outcome.results.size(); ++i)
        EXPECT_EQ(outcome.results[i].task.index, i);
}

TEST(Coordinator, StealsPendingShardsWhenShardsExceedWorkers)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();
    const std::uint64_t seed = 11;
    Temp_dir dir{"coord_steal"};

    const std::size_t shards = 4;
    for (std::size_t k = 1; k <= shards; ++k)
        prebuild_shard(grid, registry, seed, k, shards,
                       dir.path + "/pre" + std::to_string(k));

    Coordinator_config config = base_config(dir.path, 2, shards);
    config.launcher = script_launcher([&](const Worker_request& r) {
        return publish_script(dir.path + "/pre" + std::to_string(r.shard_index),
                              r.journal_path);
    });
    const Coordinator_outcome outcome = run_coordinated(grid, registry, seed, config);

    EXPECT_TRUE(outcome.completed);
    EXPECT_EQ(outcome.stats.launches, 4u);
    EXPECT_EQ(outcome.stats.steals, 2u); // 4 shards over 2 slots
    EXPECT_EQ(outcome.stats.reassignments, 0u);
    std::size_t slot_launches = 0;
    for (const Worker_slot_stats& slot : outcome.stats.slots)
        slot_launches += slot.launches;
    EXPECT_EQ(slot_launches, 4u);
    EXPECT_EQ(to_json(outcome.results, aggregate(outcome.results)),
              reference_json(grid, registry, seed));
}

TEST(Coordinator, AdoptsCompleteJournalsWithoutLaunching)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();
    const std::uint64_t seed = 21;
    Temp_dir dir{"coord_restart"};

    // A previous coordinator run already finished both shards: restart
    // must adopt the journals and launch nothing.
    for (std::size_t k = 1; k <= 2; ++k)
        prebuild_shard(grid, registry, seed, k, 2, shard_journal_path(dir.path, k));

    Coordinator_config config = base_config(dir.path, 2, 2);
    config.launcher = script_launcher([](const Worker_request&) -> std::string {
        ADD_FAILURE() << "no worker should launch for complete journals";
        return "exit 1";
    });
    const Coordinator_outcome outcome = run_coordinated(grid, registry, seed, config);

    EXPECT_TRUE(outcome.completed);
    EXPECT_EQ(outcome.stats.launches, 0u);
    EXPECT_EQ(to_json(outcome.results, aggregate(outcome.results)),
              reference_json(grid, registry, seed));
}

TEST(Coordinator, IncompatibleShardJournalIsFatal)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();
    Temp_dir dir{"coord_incompat"};

    // A journal for the right shard but the WRONG seed sitting in the
    // work dir: silently merging it would corrupt the run.
    prebuild_shard(grid, registry, /*seed=*/999, 1, 2, shard_journal_path(dir.path, 1));

    Coordinator_config config = base_config(dir.path, 2, 2);
    config.launcher = script_launcher([](const Worker_request&) -> std::string {
        return "sleep 60";
    });
    EXPECT_THROW(run_coordinated(grid, registry, /*base_seed=*/21, config),
                 std::runtime_error);
}

TEST(Coordinator, RejectsInvalidConfig)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();

    Coordinator_config no_launcher = base_config("/tmp", 2, 2);
    EXPECT_THROW(run_coordinated(grid, registry, 1, no_launcher),
                 std::invalid_argument);

    Coordinator_config zero_workers = base_config("/tmp", 0, 2);
    zero_workers.launcher =
        script_launcher([](const Worker_request&) { return std::string{"exit 0"}; });
    EXPECT_THROW(run_coordinated(grid, registry, 1, zero_workers),
                 std::invalid_argument);
}

TEST(Coordinator, StreamsRowsInOrderWithoutCollecting)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();
    const std::uint64_t seed = 5;
    Temp_dir dir{"coord_stream"};

    for (std::size_t k = 1; k <= 2; ++k)
        prebuild_shard(grid, registry, seed, k, 2, dir.path + "/pre" + std::to_string(k));

    std::vector<std::size_t> order;
    Coordinator_config config = base_config(dir.path, 2, 2);
    config.collect_results = false;
    config.on_result = [&order](const Task_result& r) { order.push_back(r.task.index); };
    config.launcher = script_launcher([&](const Worker_request& r) {
        return publish_script(dir.path + "/pre" + std::to_string(r.shard_index),
                              r.journal_path);
    });
    const Coordinator_outcome outcome = run_coordinated(grid, registry, seed, config);

    EXPECT_TRUE(outcome.completed);
    EXPECT_TRUE(outcome.results.empty());
    ASSERT_EQ(order.size(), expand(grid, registry).size());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Coordinator, RelaunchBackoffIsScheduledAndCounted)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();
    const std::uint64_t seed = 31;
    Temp_dir dir{"coord_backoff"};

    for (std::size_t k = 1; k <= 2; ++k)
        prebuild_shard(grid, registry, seed, k, 2,
                       dir.path + "/pre" + std::to_string(k));

    // Shard 2 crash-loops twice before succeeding; each relaunch must
    // pass through the backoff gate.
    Coordinator_config config = base_config(dir.path, 2, 2);
    config.max_shard_attempts = 4;
    config.relaunch_backoff.initial = std::chrono::milliseconds{20};
    config.relaunch_backoff.max = std::chrono::milliseconds{50};
    config.launcher = script_launcher([&](const Worker_request& r) -> std::string {
        if (r.shard_index == 2 && r.attempt <= 2)
            return "exit 1";
        return publish_script(dir.path + "/pre" + std::to_string(r.shard_index),
                              r.journal_path);
    });
    const Coordinator_outcome outcome = run_coordinated(grid, registry, seed, config);

    EXPECT_TRUE(outcome.completed);
    EXPECT_EQ(outcome.stats.reassignments, 2u);
    EXPECT_EQ(outcome.stats.backoff_waits, 2u);
    EXPECT_EQ(to_json(outcome.results, aggregate(outcome.results)),
              reference_json(grid, registry, seed));
}

TEST(Coordinator, DistinguishesStartupStallsFromMidRunStalls)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();
    const std::uint64_t seed = 33;
    Temp_dir dir{"coord_stall_kinds"};

    for (std::size_t k = 1; k <= 2; ++k)
        prebuild_shard(grid, registry, seed, k, 2,
                       dir.path + "/pre" + std::to_string(k));
    // A journal cut after two task entries: shard 2's first attempt
    // makes real progress, then wedges.
    truncate_lines(dir.path + "/pre2", dir.path + "/pre2_partial", 4);

    // Shard 1 attempt 1 hangs BEFORE writing anything (a broken
    // launcher): that is a startup stall, detectable on the (much
    // shorter) startup timeout.  Shard 2 attempt 1 publishes a partial
    // journal and then hangs: a mid-run stall on the heartbeat clock.
    Coordinator_config config = base_config(dir.path, 2, 2);
    config.heartbeat_timeout = std::chrono::milliseconds{700};
    config.startup_timeout = std::chrono::milliseconds{150};
    config.launcher = script_launcher([&](const Worker_request& r) -> std::string {
        if (r.attempt == 1 && r.shard_index == 1)
            return "sleep 60";
        if (r.attempt == 1 && r.shard_index == 2)
            return publish_script(dir.path + "/pre2_partial", r.journal_path)
                 + " && sleep 60";
        return publish_script(dir.path + "/pre" + std::to_string(r.shard_index),
                              r.journal_path);
    });
    const Coordinator_outcome outcome = run_coordinated(grid, registry, seed, config);

    EXPECT_TRUE(outcome.completed);
    EXPECT_EQ(outcome.stats.watchdog_startup_kills, 1u);
    EXPECT_EQ(outcome.stats.watchdog_stall_kills, 1u);
    EXPECT_EQ(outcome.stats.watchdog_kills, 2u);
    EXPECT_EQ(to_json(outcome.results, aggregate(outcome.results)),
              reference_json(grid, registry, seed));
}

TEST(Coordinator, RestartAdoptsFleetStateAndCarriesAttemptsForward)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();
    const std::uint64_t seed = 37;
    Temp_dir dir{"coord_fleet_restart"};
    const std::vector<Sweep_task> tasks = expand(grid, registry);

    // The crashed coordinator's legacy: shard 1's journal is complete,
    // shard 2's stops after two tasks, and the fleet journal says both
    // were RUNNING (their workers may still be alive) with shard 2 on
    // its second attempt.
    prebuild_shard(grid, registry, seed, 1, 2, shard_journal_path(dir.path, 1));
    prebuild_shard(grid, registry, seed, 2, 2, dir.path + "/pre2");
    truncate_lines(dir.path + "/pre2", shard_journal_path(dir.path, 2), 4);
    {
        Fleet_header header;
        header.grid_hash = grid_fingerprint(grid);
        header.base_seed = seed;
        header.tasks = tasks.size();
        header.shards = 2;
        Fleet_journal fleet{dir.path + "/fleet.anf", header, /*truncate=*/true};
        fleet.record_generation(1);
        Fleet_record r1;
        r1.shard = 1;
        r1.status = Fleet_shard_status::running;
        r1.attempts = 1;
        r1.slot = 0;
        r1.watermark = 3;
        fleet.record(r1);
        Fleet_record r2 = r1;
        r2.shard = 2;
        r2.attempts = 2;
        r2.slot = 1;
        r2.watermark = 2;
        fleet.record(r2);
    }

    std::vector<Worker_request> log;
    Coordinator_config config = base_config(dir.path, 2, 2);
    // Short heartbeat: the adopted-shard grace window (no worker is
    // actually alive to make progress) must expire quickly.
    config.heartbeat_timeout = std::chrono::milliseconds{300};
    config.fleet_path = dir.path + "/fleet.anf";
    config.launcher = script_launcher(
        [&](const Worker_request& r) -> std::string {
            EXPECT_EQ(r.shard_index, 2u) << "complete shard 1 must not relaunch";
            return publish_script(dir.path + "/pre2", r.journal_path);
        },
        &log);
    const Coordinator_outcome outcome = run_coordinated(grid, registry, seed, config);

    EXPECT_TRUE(outcome.completed);
    EXPECT_EQ(outcome.stats.adoptions, 2u);
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0].shard_index, 2u);
    EXPECT_EQ(log[0].attempt, 3u); // prior attempts carried forward
    EXPECT_TRUE(log[0].resume);
    EXPECT_EQ(to_json(outcome.results, aggregate(outcome.results)),
              reference_json(grid, registry, seed));

    // The fleet journal now records generation 2 and both shards done.
    const Fleet_state after = load_fleet(dir.path + "/fleet.anf");
    EXPECT_EQ(after.generations, 2u);
    EXPECT_EQ(after.shards.at(1).status, Fleet_shard_status::done);
    EXPECT_EQ(after.shards.at(2).status, Fleet_shard_status::done);
}

TEST(Coordinator, IncompatibleFleetJournalIsFatal)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();
    Temp_dir dir{"coord_fleet_incompat"};

    Fleet_header header;
    header.grid_hash = 0xdeadbeefu; // not this grid
    header.base_seed = 1;
    header.tasks = 1;
    header.shards = 2;
    Fleet_journal{dir.path + "/fleet.anf", header, /*truncate=*/true};

    Coordinator_config config = base_config(dir.path, 2, 2);
    config.fleet_path = dir.path + "/fleet.anf";
    config.launcher =
        script_launcher([](const Worker_request&) { return std::string{"exit 0"}; });
    EXPECT_THROW(run_coordinated(grid, registry, 21, config), std::runtime_error);
}

TEST(Coordinator, StreamedShardsMergeByteIdenticalToDirectRun)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();
    const std::uint64_t seed = 41;
    Temp_dir dir{"coord_streamed"};
    const std::string remote = dir.path + "/remote";
    ::system(("mkdir -p '" + remote + "'").c_str());

    // Worker-side journals live in `remote` (another host, in spirit);
    // the only road to the coordinator's work dir is the jstream
    // listener.  Fake workers just hold their slot open while
    // in-process sender threads stream the prebuilt journals.
    for (std::size_t k = 1; k <= 2; ++k)
        prebuild_shard(grid, registry, seed, k, 2, shard_journal_path(remote, k));

    Jstream_listener listener{0, dir.path, 2};
    std::vector<Worker_request> log;
    Coordinator_config config = base_config(dir.path, 2, 2);
    config.listener = &listener;
    config.worker_stream = "127.0.0.1:" + std::to_string(listener.port());
    config.worker_journal_dir = remote;
    config.launcher = script_launcher(
        [](const Worker_request&) { return std::string{"sleep 1"}; }, &log);

    std::vector<std::thread> senders;
    for (std::size_t k = 1; k <= 2; ++k)
        senders.emplace_back([&, k] {
            Jstream_sender::Config sc;
            sc.peer = {"127.0.0.1", listener.port()};
            sc.shard_index = k;
            sc.shard_count = 2;
            Jstream_sender sender{sc, shard_journal_path(remote, k)};
            sender.finish(std::chrono::seconds{10});
        });
    const Coordinator_outcome outcome = run_coordinated(grid, registry, seed, config);
    for (std::thread& t : senders)
        t.join();

    EXPECT_TRUE(outcome.completed);
    EXPECT_EQ(outcome.stats.transport.connects, 2u);
    EXPECT_GT(outcome.stats.transport.lines_appended, 0u);
    EXPECT_EQ(outcome.stats.transport.invalid_lines, 0u);
    for (const Worker_request& request : log) {
        EXPECT_EQ(request.stream, config.worker_stream);
        EXPECT_EQ(request.journal_path,
                  shard_journal_path(remote, request.shard_index));
    }
    EXPECT_EQ(to_json(outcome.results, aggregate(outcome.results)),
              reference_json(grid, registry, seed));
}

} // namespace
} // namespace anc::engine
