// Journal_tailer edge cases (engine/journal.h): the coordinator's
// liveness watermark must survive everything a racing worker (or a
// jstream mirror writer) can do to the file under it — replacement,
// shrinkage, torn tails that later complete, bursty appends — plus the
// classify_journal_line ingest filter the jstream listener dedups with.

#include "engine/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "util/rng.h"

namespace anc::engine {
namespace {

Scenario_registry noisy_registry()
{
    Scenario_registry registry;
    registry.add(std::make_unique<Function_scenario>(
        "noisy", std::vector<std::string>{"anc", "traditional"},
        [](const Scenario_config& config, std::uint64_t seed) {
            Pcg32 rng{seed};
            Scenario_result result;
            result.metrics.packets_attempted = config.exchanges;
            result.metrics.packets_delivered = rng.next_in_range(
                1, static_cast<std::uint32_t>(config.exchanges));
            result.metrics.packet_ber.add(rng.next_double() * 0.05);
            result.scalars["iters"] = rng.next_double() * 1e9;
            return result;
        }));
    return registry;
}

struct Temp_path {
    explicit Temp_path(const std::string& name) : path{testing::TempDir() + name}
    {
        std::remove(path.c_str());
    }
    ~Temp_path() { std::remove(path.c_str()); }
    std::string path;
};

/// A finished journal's raw bytes, plus its parsed truth.
struct Built_journal {
    std::string bytes;
    Journal_contents contents;
};

Built_journal build_journal(const std::string& path, std::size_t repetitions = 3)
{
    const Scenario_registry registry = noisy_registry();
    Sweep_grid grid;
    grid.scenarios = {"noisy"};
    grid.snr_db = {10.0, 20.0};
    grid.repetitions = repetitions;
    const std::vector<Sweep_task> tasks = expand(grid, registry);
    Journal_writer writer{
        path, Journal_header{grid_fingerprint(grid), 77, tasks.size(), 1, 1},
        /*truncate=*/true};
    Executor_config config;
    config.threads = 1;
    config.base_seed = 77;
    config.on_complete = [&writer](const Task_result& r) { writer.append(r); };
    run_sweep(tasks, registry, config);
    writer.flush();

    Built_journal built;
    std::ifstream in{path, std::ios::binary};
    std::ostringstream buffer;
    buffer << in.rdbuf();
    built.bytes = buffer.str();
    built.contents = load_journal(path);
    return built;
}

void write_bytes(const std::string& path, const std::string& bytes)
{
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out << bytes;
}

void append_bytes(const std::string& path, const std::string& bytes)
{
    std::ofstream out{path, std::ios::binary | std::ios::app};
    out << bytes;
}

TEST(JournalTailer, TornFinalLineIsDeliveredOnceItCompletes)
{
    Temp_path scratch{"tailer_torn_src.anj"};
    const Built_journal built = build_journal(scratch.path);
    const std::string& bytes = built.bytes;

    Temp_path live{"tailer_torn.anj"};
    // Everything except the second half of the final line.
    const std::size_t final_start = bytes.rfind('\n', bytes.size() - 2) + 1;
    const std::size_t torn_at = final_start + (bytes.size() - final_start) / 2;
    write_bytes(live.path, bytes.substr(0, torn_at));

    Journal_tailer tailer{live.path};
    std::vector<Journal_entry> got = tailer.poll();
    EXPECT_EQ(got.size(), built.contents.entries.size() - 1);
    EXPECT_EQ(tailer.dropped_lines(), 0u); // torn tail = "not yet", not corrupt

    // Nothing new on a re-poll: the partial line stays pending.
    EXPECT_TRUE(tailer.poll().empty());

    // The writer finishes the line; exactly the missing entry arrives.
    append_bytes(live.path, bytes.substr(torn_at));
    got = tailer.poll();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got.front().index, built.contents.entries.back().index);
    EXPECT_EQ(tailer.entries_seen(), built.contents.entries.size());
    EXPECT_EQ(tailer.dropped_lines(), 0u);
}

TEST(JournalTailer, InterleavedAppendBurstsDeliverEveryEntryExactlyOnce)
{
    Temp_path scratch{"tailer_burst_src.anj"};
    const Built_journal built = build_journal(scratch.path);
    const std::string& bytes = built.bytes;

    Temp_path live{"tailer_burst.anj"};
    write_bytes(live.path, "");

    Journal_tailer tailer{live.path};
    std::vector<Journal_entry> got;
    // Append in awkward 97-byte bursts (never line-aligned), polling
    // after every burst.
    for (std::size_t at = 0; at < bytes.size(); at += 97) {
        append_bytes(live.path, bytes.substr(at, 97));
        for (Journal_entry& entry : tailer.poll())
            got.push_back(std::move(entry));
    }
    ASSERT_EQ(got.size(), built.contents.entries.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].index, built.contents.entries[i].index);
    EXPECT_EQ(tailer.dropped_lines(), 0u);
    EXPECT_TRUE(tailer.have_header());
}

TEST(JournalTailer, FileReplacedMidTailRestartsAndRedelivers)
{
    Temp_path scratch{"tailer_replace_src.anj"};
    const Built_journal built = build_journal(scratch.path);
    const std::string& bytes = built.bytes;

    Temp_path live{"tailer_replace.anj"};
    const std::size_t half = bytes.find('\n', bytes.size() / 2) + 1;
    write_bytes(live.path, bytes.substr(0, half));

    Journal_tailer tailer{live.path};
    const std::size_t first_batch = tailer.poll().size();
    ASSERT_GT(first_batch, 0u);

    // A relaunched worker truncates and rewrites the journal from
    // scratch (fresh attempt).  The tailer must notice the shrink,
    // restart from byte 0, and redeliver — the coordinator dedups by
    // task index, so redelivery is harmless; silence would not be.
    write_bytes(live.path, bytes.substr(0, half / 2));
    tailer.poll(); // may deliver a partial re-read; must not throw
    write_bytes(live.path, bytes);
    tailer.poll();

    // After the restart the full file was consumed: every entry was
    // delivered at least once across the tailer's lifetime.
    EXPECT_GE(tailer.entries_seen(), built.contents.entries.size());
    EXPECT_TRUE(tailer.have_header());
}

TEST(JournalTailer, ShrunkFileNeverWedgesTheWatermark)
{
    Temp_path scratch{"tailer_shrink_src.anj"};
    const Built_journal built = build_journal(scratch.path);
    const std::string& bytes = built.bytes;

    Temp_path live{"tailer_shrink.anj"};
    write_bytes(live.path, bytes);
    Journal_tailer tailer{live.path};
    ASSERT_EQ(tailer.poll().size(), built.contents.entries.size());

    // Shrink to just magic + header, then grow back to full: the
    // watermark must keep moving (restart + redelivery), proving a
    // shrink cannot make a live worker look stalled forever.
    const std::size_t two_lines = bytes.find('\n', bytes.find('\n') + 1) + 1;
    write_bytes(live.path, bytes.substr(0, two_lines));
    tailer.poll();
    const std::size_t before = tailer.entries_seen();
    write_bytes(live.path, bytes);
    tailer.poll();
    EXPECT_GT(tailer.entries_seen(), before);
}

TEST(JournalClassify, RecognizesEveryLineKind)
{
    Temp_path scratch{"classify_src.anj"};
    const Built_journal built = build_journal(scratch.path);

    std::istringstream lines{built.bytes};
    std::string line;
    std::size_t line_no = 0;
    std::vector<std::uint64_t> task_indices;
    while (std::getline(lines, line)) {
        std::uint64_t index = 0;
        const Journal_line_kind kind = classify_journal_line(line, &index);
        if (line_no == 0)
            EXPECT_EQ(kind, Journal_line_kind::magic);
        else if (line_no == 1)
            EXPECT_EQ(kind, Journal_line_kind::header);
        else {
            EXPECT_EQ(kind, Journal_line_kind::task);
            task_indices.push_back(index);
        }
        ++line_no;
    }
    ASSERT_EQ(task_indices.size(), built.contents.entries.size());
    for (std::size_t i = 0; i < task_indices.size(); ++i)
        EXPECT_EQ(task_indices[i], built.contents.entries[i].index);

    // Defects in any position are invalid, never misclassified.
    EXPECT_EQ(classify_journal_line(""), Journal_line_kind::invalid);
    EXPECT_EQ(classify_journal_line("not a journal line"),
              Journal_line_kind::invalid);
    std::istringstream again{built.bytes};
    std::getline(again, line);       // magic
    std::getline(again, line);       // header, CRC-stamped
    std::string tampered = line;
    tampered.back() ^= 1;            // payload byte changed, CRC now stale
    EXPECT_EQ(classify_journal_line(tampered), Journal_line_kind::invalid);
    EXPECT_EQ(classify_journal_line(line.substr(0, line.size() / 2)),
              Journal_line_kind::invalid);
}

} // namespace
} // namespace anc::engine
