// Regression lock for the Workspace rework: recycling scratch buffers
// across tasks (and any amount of pre-existing "dirt" in those buffers)
// must not change a single byte of an engine sweep's emitted JSON.
//
// This is the structural guarantee behind the perf PR that introduced
// dsp::Workspace: leases hand out cleared buffers, every kernel fully
// overwrites what it reads, and the executor's per-thread binding is
// invisible in the results.

#include <gtest/gtest.h>

#include <string>

#include "dsp/workspace.h"
#include "engine/emit.h"
#include "engine/engine.h"

namespace anc::engine {
namespace {

Sweep_grid small_alice_bob_grid()
{
    Sweep_grid grid;
    grid.scenarios = {"alice_bob"};
    grid.snr_db = {20.0, 25.0};
    grid.payload_bits = {512};
    grid.exchanges = {2};
    grid.repetitions = 3;
    return grid;
}

std::string run_to_json(const Sweep_grid& grid, std::size_t threads)
{
    Executor_config config;
    config.threads = threads;
    config.base_seed = 4242;
    const std::vector<Task_result> results = run_sweep(grid, config);
    return to_json(results, aggregate(results));
}

TEST(WorkspaceRegression, WarmWorkspaceProducesIdenticalJson)
{
    // First run: every worker workspace starts cold.
    const std::string cold = run_to_json(small_alice_bob_grid(), 1);

    // Second run on an explicitly bound, deliberately dirtied workspace:
    // stale buffer contents from previous leases must never leak into
    // results.
    dsp::Workspace dirty;
    {
        auto signal = dirty.signal();
        signal->assign(5000, dsp::Sample{123.0, -456.0});
        auto bits = dirty.bits();
        bits->assign(4096, 1);
        auto reals = dirty.reals();
        reals->assign(4096, 3.14);
    }
    const dsp::Workspace::Bind bind{dirty};
    const std::string warm = run_to_json(small_alice_bob_grid(), 1);
    EXPECT_EQ(cold, warm);

    // Third run reusing the same (now thoroughly warm) workspace.
    const std::string warmer = run_to_json(small_alice_bob_grid(), 1);
    EXPECT_EQ(cold, warmer);
}

TEST(WorkspaceRegression, MultiThreadWorkersMatchWarmSingleThread)
{
    const std::string serial = run_to_json(small_alice_bob_grid(), 1);
    const std::string parallel = run_to_json(small_alice_bob_grid(), 4);
    EXPECT_EQ(serial, parallel);
}

TEST(WorkspaceRegression, ScratchBuffersRecycleAcrossRuns)
{
    // A warm workspace must serve whole scenario runs without creating
    // new scratch buffers — the zero-allocation steady state the
    // executor's per-worker workspaces rely on.  (The executor's own
    // workspaces are worker-lifetime locals, so observe the invariant by
    // binding our own and driving the scenario directly.)
    dsp::Workspace workspace;
    const dsp::Workspace::Bind bind{workspace};

    const Scenario& alice_bob = Scenario_registry::builtin().at("alice_bob");
    Scenario_config config;
    config.scheme = "anc";
    config.payload_bits = 512;
    config.exchanges = 2;
    config.snr_db = 25.0;

    // Warm up across the same seeds the steady state will see (distinct
    // seeds can reach different peak lease depths).
    alice_bob.run(config, 11);
    alice_bob.run(config, 12);
    alice_bob.run(config, 13);
    const std::size_t warm_buffers = workspace.buffers_created();
    EXPECT_GT(warm_buffers, 0u);
    alice_bob.run(config, 11);
    alice_bob.run(config, 12);
    alice_bob.run(config, 13);
    EXPECT_EQ(workspace.buffers_created(), warm_buffers)
        << "steady-state runs must not create new scratch buffers";
    EXPECT_GT(workspace.leases_served(), warm_buffers);
}

} // namespace
} // namespace anc::engine
