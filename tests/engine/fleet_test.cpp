// anc.fleet.v1 (engine/fleet.h): the coordinator's own crash journal.
// Same hardening bar as anc.journal.v1 — torn lines dropped, last
// record per shard wins, incompatible headers refused — because this
// file is what lets a SIGKILLed coordinator restart without redoing
// (or corrupting) its fleet's work.

#include "engine/fleet.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "engine/engine.h"
#include "engine/journal.h"

namespace anc::engine {
namespace {

struct Temp_path {
    explicit Temp_path(const std::string& name) : path{testing::TempDir() + name}
    {
        std::remove(path.c_str());
    }
    ~Temp_path() { std::remove(path.c_str()); }
    std::string path;
};

Fleet_header header()
{
    Fleet_header h;
    h.grid_hash = 0xabcdef0123456789ull;
    h.base_seed = 77;
    h.tasks = 24;
    h.shards = 4;
    return h;
}

Fleet_record record(std::size_t shard, Fleet_shard_status status,
                    std::size_t attempts, std::size_t slot, std::uint64_t wm)
{
    Fleet_record r;
    r.shard = shard;
    r.status = status;
    r.attempts = attempts;
    r.slot = slot;
    r.watermark = wm;
    return r;
}

TEST(Fleet, RoundTripsHeaderAndRecords)
{
    Temp_path file{"fleet_roundtrip.anf"};
    {
        Fleet_journal journal{file.path, header(), /*truncate=*/true};
        journal.record_generation(1);
        journal.record(record(1, Fleet_shard_status::running, 1, 0, 5));
        journal.record(record(2, Fleet_shard_status::done, 1, 1, 6));
    }
    const Fleet_state state = load_fleet(file.path);
    EXPECT_EQ(state.header.grid_hash, header().grid_hash);
    EXPECT_EQ(state.header.base_seed, 77u);
    EXPECT_EQ(state.header.tasks, 24u);
    EXPECT_EQ(state.header.shards, 4u);
    EXPECT_EQ(state.generations, 1u);
    EXPECT_EQ(state.dropped_lines, 0u);
    ASSERT_EQ(state.shards.size(), 2u);
    EXPECT_EQ(state.shards.at(1).status, Fleet_shard_status::running);
    EXPECT_EQ(state.shards.at(1).watermark, 5u);
    EXPECT_EQ(state.shards.at(2).status, Fleet_shard_status::done);
    EXPECT_EQ(state.shards.at(2).slot, 1u);
}

TEST(Fleet, LastRecordPerShardWins)
{
    Temp_path file{"fleet_lastwins.anf"};
    {
        Fleet_journal journal{file.path, header(), /*truncate=*/true};
        journal.record(record(3, Fleet_shard_status::running, 1, 0, 2));
        journal.record(record(3, Fleet_shard_status::running, 1, 0, 9));
        journal.record(record(3, Fleet_shard_status::done, 1, 0, 12));
    }
    const Fleet_state state = load_fleet(file.path);
    ASSERT_EQ(state.shards.size(), 1u);
    EXPECT_EQ(state.shards.at(3).status, Fleet_shard_status::done);
    EXPECT_EQ(state.shards.at(3).watermark, 12u);
}

TEST(Fleet, TornFinalLineIsDroppedNotFatal)
{
    Temp_path file{"fleet_torn.anf"};
    {
        Fleet_journal journal{file.path, header(), /*truncate=*/true};
        journal.record(record(1, Fleet_shard_status::done, 1, 0, 6));
        journal.record(record(2, Fleet_shard_status::running, 2, 1, 3));
    }
    // Tear the last line mid-write (SIGKILL during append).
    std::string bytes;
    {
        std::ifstream in{file.path, std::ios::binary};
        bytes.assign(std::istreambuf_iterator<char>{in}, {});
    }
    std::ofstream{file.path, std::ios::binary | std::ios::trunc}
        << bytes.substr(0, bytes.size() - 7);

    const Fleet_state state = load_fleet(file.path);
    EXPECT_GE(state.dropped_lines, 1u);
    ASSERT_EQ(state.shards.size(), 1u); // shard 2's record was the torn one
    EXPECT_EQ(state.shards.at(1).status, Fleet_shard_status::done);
}

TEST(Fleet, CorruptMiddleLineIsSkipped)
{
    Temp_path file{"fleet_corrupt.anf"};
    {
        Fleet_journal journal{file.path, header(), /*truncate=*/true};
        journal.record(record(1, Fleet_shard_status::running, 1, 0, 1));
        journal.record(record(2, Fleet_shard_status::running, 1, 1, 1));
    }
    std::string bytes;
    {
        std::ifstream in{file.path, std::ios::binary};
        bytes.assign(std::istreambuf_iterator<char>{in}, {});
    }
    // Flip a byte inside shard 1's record (the third line).
    std::size_t line_start = bytes.find('\n', bytes.find('\n') + 1) + 1;
    bytes[line_start + 12] ^= 0x20;
    std::ofstream{file.path, std::ios::binary | std::ios::trunc} << bytes;

    const Fleet_state state = load_fleet(file.path);
    EXPECT_EQ(state.dropped_lines, 1u);
    ASSERT_EQ(state.shards.size(), 1u);
    EXPECT_EQ(state.shards.count(2), 1u); // the clean record survived
}

TEST(Fleet, LoadRefusesNonFleetFiles)
{
    Temp_path file{"fleet_notafleet.anf"};
    std::ofstream{file.path} << "anc.journal.v1\nsomething else\n";
    EXPECT_THROW(load_fleet(file.path), std::runtime_error);
    EXPECT_THROW(load_fleet(file.path + ".missing"), std::runtime_error);
}

TEST(Fleet, CompatibilityChecksEveryHeaderField)
{
    Sweep_grid grid;
    grid.scenarios = {"alice_bob"};
    grid.snr_db = {10.0};
    Fleet_header h;
    h.grid_hash = grid_fingerprint(grid);
    h.base_seed = 7;
    h.tasks = 12;
    h.shards = 4;

    std::string why;
    EXPECT_TRUE(fleet_compatible(h, grid, 7, 12, 4, &why));
    EXPECT_FALSE(fleet_compatible(h, grid, 8, 12, 4, &why));
    EXPECT_NE(why.find("seed"), std::string::npos);
    EXPECT_FALSE(fleet_compatible(h, grid, 7, 13, 4, &why));
    EXPECT_FALSE(fleet_compatible(h, grid, 7, 12, 5, &why));
    Sweep_grid other = grid;
    other.snr_db = {20.0};
    EXPECT_FALSE(fleet_compatible(h, other, 7, 12, 4, &why));
}

TEST(Fleet, AppendModeContinuesAnExistingJournal)
{
    Temp_path file{"fleet_append.anf"};
    {
        Fleet_journal journal{file.path, header(), /*truncate=*/true};
        journal.record_generation(1);
        journal.record(record(1, Fleet_shard_status::running, 1, 0, 3));
    }
    {
        // A restarted coordinator appends (truncate=false): prior
        // records survive, generation count grows.
        Fleet_journal journal{file.path, header(), /*truncate=*/false};
        journal.record_generation(2);
        journal.record(record(1, Fleet_shard_status::done, 1, 0, 6));
    }
    const Fleet_state state = load_fleet(file.path);
    EXPECT_EQ(state.generations, 2u);
    EXPECT_EQ(state.shards.at(1).status, Fleet_shard_status::done);
}

} // namespace
} // namespace anc::engine
