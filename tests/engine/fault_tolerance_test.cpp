// The executor's fault-tolerance surface: task isolation, bounded
// retry, ordered streaming emission, cancellation, and the shard/merge
// partition — every guarantee `anc_sweep --stream/--shard/--resume`
// builds on (ENGINE.md "Fault tolerance").

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/emit.h"
#include "engine/engine.h"
#include "util/rng.h"

namespace anc::engine {
namespace {

/// Deterministic synthetic workload (same shape as executor_test's).
std::unique_ptr<Function_scenario> synthetic(const std::string& name)
{
    return std::make_unique<Function_scenario>(
        name, std::vector<std::string>{"anc", "traditional"},
        [](const Scenario_config& config, std::uint64_t seed) {
            Pcg32 rng{seed};
            Scenario_result result;
            result.metrics.packets_attempted = config.exchanges;
            result.metrics.packets_delivered = rng.next_in_range(
                0, static_cast<std::uint32_t>(config.exchanges));
            result.metrics.payload_bits_delivered =
                result.metrics.packets_delivered * config.payload_bits;
            result.metrics.airtime_symbols =
                config.snr_db + rng.next_double();
            for (std::size_t i = 0; i < 4; ++i)
                result.metrics.packet_ber.add(rng.next_double() * 0.05);
            result.series["aux"].add(rng.next_double());
            result.scalars["draws"] = static_cast<double>(seed % 1000);
            return result;
        });
}

/// Throws on every task whose seed is odd; succeeds on even seeds.
std::unique_ptr<Function_scenario> half_exploding()
{
    return std::make_unique<Function_scenario>(
        "half_exploding", std::vector<std::string>{"anc"},
        [](const Scenario_config& config, std::uint64_t seed) {
            if (seed % 2 == 1)
                throw std::runtime_error{"odd seed " + std::to_string(seed)};
            Scenario_result result;
            result.metrics.packets_attempted = config.exchanges;
            result.metrics.packets_delivered = config.exchanges;
            result.metrics.packet_ber.add(0.01);
            return result;
        });
}

TEST(FaultIsolation, ErrorsBecomeRowsNotAborts)
{
    Scenario_registry registry;
    registry.add(half_exploding());
    Sweep_grid grid;
    grid.scenarios = {"half_exploding"};
    grid.repetitions = 32;

    Executor_config config;
    config.threads = 4;
    config.base_seed = 3;
    config.isolate_faults = true;
    Run_tally tally;
    const std::vector<Task_result> results =
        run_sweep(expand(grid, registry), registry, config, &tally);

    ASSERT_EQ(results.size(), 32u);
    std::size_t ok = 0, errors = 0;
    for (const Task_result& result : results) {
        if (result.status == Task_status::error) {
            ++errors;
            EXPECT_NE(result.error.find("odd seed"), std::string::npos);
            EXPECT_EQ(result.attempts, 1u);
            // No partial state escapes a failed task.
            EXPECT_EQ(result.result.metrics.packets_attempted, 0u);
        } else {
            ASSERT_EQ(result.status, Task_status::ok);
            ++ok;
        }
    }
    EXPECT_GT(ok, 0u);
    EXPECT_GT(errors, 0u);
    EXPECT_EQ(tally.ok, ok);
    EXPECT_EQ(tally.errors, errors);
    EXPECT_FALSE(tally.cancelled);

    // Errored tasks bump the point's error count but contribute no
    // samples.
    const std::vector<Point_summary> points = aggregate(results);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].runs, ok);
    EXPECT_EQ(points[0].errors, errors);
    EXPECT_EQ(points[0].throughput.count(), ok);
}

TEST(FaultIsolation, WithoutIsolationFirstErrorStillThrows)
{
    Scenario_registry registry;
    registry.add(half_exploding());
    Sweep_grid grid;
    grid.scenarios = {"half_exploding"};
    grid.repetitions = 32;
    Executor_config config;
    config.threads = 4;
    config.base_seed = 3; // historical behavior is the default
    EXPECT_THROW(run_sweep(expand(grid, registry), registry, config),
                 std::runtime_error);
}

TEST(FaultIsolation, BoundedRetryRecoversTransientFaults)
{
    // Every task throws on its first attempt and succeeds on the second
    // — the retry must re-run with the SAME seed.
    std::mutex mutex;
    std::map<std::uint64_t, int> calls;
    Scenario_registry registry;
    registry.add(std::make_unique<Function_scenario>(
        "flaky", std::vector<std::string>{"anc"},
        [&](const Scenario_config&, std::uint64_t seed) {
            {
                const std::lock_guard<std::mutex> lock{mutex};
                if (++calls[seed] == 1)
                    throw std::runtime_error{"transient"};
            }
            Scenario_result result;
            result.metrics.packets_attempted = 1;
            result.metrics.packets_delivered = 1;
            result.scalars["seed_echo"] = static_cast<double>(seed % 4096);
            return result;
        }));
    Sweep_grid grid;
    grid.scenarios = {"flaky"};
    grid.repetitions = 16;

    Executor_config config;
    config.threads = 4;
    config.isolate_faults = true;
    config.max_attempts = 2;
    Run_tally tally;
    const std::vector<Task_result> results =
        run_sweep(expand(grid, registry), registry, config, &tally);

    EXPECT_EQ(tally.ok, 16u);
    EXPECT_EQ(tally.errors, 0u);
    for (const Task_result& result : results) {
        EXPECT_EQ(result.status, Task_status::ok);
        EXPECT_EQ(result.attempts, 2u);
    }

    // With only one attempt allowed, the same workload errors out.
    calls.clear();
    config.max_attempts = 1;
    run_sweep(expand(grid, registry), registry, config, &tally);
    EXPECT_EQ(tally.errors, 16u);
}

TEST(StreamingEmission, OnResultDeliversStrictIndexOrder)
{
    Scenario_registry registry;
    registry.add(synthetic("synthetic_a"));
    Sweep_grid grid;
    grid.scenarios = {"synthetic_a"};
    grid.snr_db = {10.0, 20.0, 30.0};
    grid.repetitions = 11;

    Executor_config config;
    config.threads = 8;
    config.collect_results = false;
    std::vector<std::size_t> order;
    config.on_result = [&order](const Task_result& result) {
        order.push_back(result.task.index);
    };
    const std::vector<Task_result> results =
        run_sweep(expand(grid, registry), registry, config);
    EXPECT_TRUE(results.empty()); // collection off

    ASSERT_EQ(order.size(), 66u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(StreamingEmission, StreamedDocumentMatchesBatchBytes)
{
    Scenario_registry registry;
    registry.add(synthetic("synthetic_a"));
    registry.add(synthetic("synthetic_b"));
    Sweep_grid grid;
    grid.scenarios = {"synthetic_a", "synthetic_b"};
    grid.snr_db = {10.0, 25.0};
    grid.repetitions = 5;
    const std::vector<Sweep_task> tasks = expand(grid, registry);

    Executor_config batch;
    batch.threads = 4;
    batch.base_seed = 11;
    const std::vector<Task_result> results = run_sweep(tasks, registry, batch);
    std::ostringstream batch_json, batch_csv;
    const std::vector<Point_summary> points = aggregate(results);
    write_json(batch_json, results, points);
    write_tasks_csv(batch_csv, results);

    // The streaming path: no result vector, rows emitted through the
    // stream writers as the ordered drain delivers them, aggregation
    // interleaved exactly as bench/anc_sweep --stream does it.
    std::ostringstream stream_json, stream_csv;
    Json_stream_writer json_writer{stream_json};
    Tasks_csv_stream_writer csv_writer{stream_csv};
    Aggregator aggregator;
    Executor_config stream = batch;
    stream.collect_results = false;
    stream.on_result = [&](const Task_result& result) {
        aggregator.add(result);
        json_writer.add(result);
        csv_writer.add(result);
    };
    run_sweep(tasks, registry, stream);
    json_writer.finish(aggregator.take());

    EXPECT_EQ(stream_json.str(), batch_json.str());
    EXPECT_EQ(stream_csv.str(), batch_csv.str());
}

TEST(Cancellation, DrainsGracefullyAndTalliesSkipped)
{
    Scenario_registry registry;
    registry.add(synthetic("synthetic_a"));
    Sweep_grid grid;
    grid.scenarios = {"synthetic_a"};
    grid.repetitions = 10; // x2 schemes = 20 tasks

    std::atomic<bool> cancel{false};
    std::size_t completed = 0;
    Executor_config config;
    config.threads = 1; // deterministic cut point
    config.isolate_faults = true;
    config.cancel = &cancel;
    config.on_complete = [&](const Task_result&) {
        if (++completed == 5)
            cancel.store(true);
    };
    Run_tally tally;
    const std::vector<Task_result> results =
        run_sweep(expand(grid, registry), registry, config, &tally);

    EXPECT_TRUE(tally.cancelled);
    EXPECT_EQ(tally.ok, 5u);
    EXPECT_EQ(tally.skipped, 15u);
    ASSERT_EQ(results.size(), 20u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(results[i].status, Task_status::ok);
    for (std::size_t i = 5; i < 20; ++i)
        EXPECT_EQ(results[i].status, Task_status::skipped);
    // A cancelled run aggregates exactly its completed prefix.
    const std::vector<Point_summary> points = aggregate(results);
    std::size_t runs = 0;
    for (const Point_summary& point : points)
        runs += point.runs;
    EXPECT_EQ(runs, 5u);
}

TEST(Sharding, ThreeShardsReassembleToSingleRunBytes)
{
    Scenario_registry registry;
    registry.add(synthetic("synthetic_a"));
    registry.add(synthetic("synthetic_b"));
    Sweep_grid grid;
    grid.scenarios = {"synthetic_a", "synthetic_b"};
    grid.snr_db = {10.0, 20.0};
    grid.repetitions = 4;
    const std::vector<Sweep_task> tasks = expand(grid, registry);
    ASSERT_EQ(tasks.size(), 32u); // 2 scenarios x 2 schemes x 2 SNRs x 4 reps

    Executor_config reference_config;
    reference_config.threads = 1;
    reference_config.base_seed = 123;
    const std::vector<Task_result> reference =
        run_sweep(tasks, registry, reference_config);
    const std::string reference_json = to_json(reference, aggregate(reference));

    for (const std::size_t threads : {1u, 8u}) {
        // Run each shard independently, then reassemble by feeding every
        // shard row back through the executor as preloaded results —
        // the merge path of bench/anc_sweep --merge.
        std::map<std::size_t, Task_result> merged;
        for (std::size_t shard = 1; shard <= 3; ++shard) {
            const std::vector<Sweep_task> subset = shard_tasks(tasks, shard, 3);
            Executor_config config;
            config.threads = threads;
            config.base_seed = 123;
            std::vector<Task_result> results = run_sweep(subset, registry, config);
            for (Task_result& result : results)
                merged.emplace(result.task.index, std::move(result));
        }
        ASSERT_EQ(merged.size(), tasks.size());

        Executor_config replay;
        replay.threads = threads;
        replay.base_seed = 123;
        replay.preloaded = &merged;
        Run_tally tally;
        const std::vector<Task_result> reassembled =
            run_sweep(tasks, registry, replay, &tally);
        EXPECT_EQ(tally.resumed, tasks.size());
        EXPECT_EQ(to_json(reassembled, aggregate(reassembled)), reference_json)
            << "shard/merge diverged at " << threads << " threads";
    }
}

TEST(Sharding, PartitionIsDisjointAndComplete)
{
    std::vector<Sweep_task> tasks(17);
    for (std::size_t i = 0; i < tasks.size(); ++i)
        tasks[i].index = i;

    std::set<std::size_t> seen;
    for (std::size_t shard = 1; shard <= 4; ++shard)
        for (const Sweep_task& task : shard_tasks(tasks, shard, 4))
            EXPECT_TRUE(seen.insert(task.index).second)
                << "index " << task.index << " in two shards";
    EXPECT_EQ(seen.size(), tasks.size());

    EXPECT_THROW(shard_tasks(tasks, 0, 4), std::invalid_argument);
    EXPECT_THROW(shard_tasks(tasks, 5, 4), std::invalid_argument);
}

} // namespace
} // namespace anc::engine
