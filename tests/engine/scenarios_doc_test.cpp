// SCENARIOS.md is the catalog of the scenario registry; this test keeps
// the two from drifting apart.  Every builtin scenario must have a
// `## \`name\`` section in the doc, and every such section must name a
// registered scenario.

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "engine/scenario.h"

namespace anc::engine {
namespace {

std::string scenarios_doc()
{
    const std::string path = std::string{ANC_SOURCE_DIR} + "/SCENARIOS.md";
    std::ifstream in{path};
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/// The scenario names documented as `## \`name\`` headings.
std::set<std::string> documented_scenarios(const std::string& doc)
{
    std::set<std::string> names;
    std::istringstream lines{doc};
    std::string line;
    const std::string prefix = "## `";
    while (std::getline(lines, line)) {
        if (line.rfind(prefix, 0) != 0)
            continue;
        const std::size_t end = line.find('`', prefix.size());
        if (end != std::string::npos)
            names.insert(line.substr(prefix.size(), end - prefix.size()));
    }
    return names;
}

TEST(ScenariosDoc, EveryRegisteredScenarioIsDocumented)
{
    const std::set<std::string> documented = documented_scenarios(scenarios_doc());
    for (const std::string& name : Scenario_registry::builtin().names())
        EXPECT_TRUE(documented.count(name))
            << "scenario '" << name << "' is registered but has no `## \\`" << name
            << "\\`` section in SCENARIOS.md";
}

TEST(ScenariosDoc, EveryDocumentedScenarioIsRegistered)
{
    const Scenario_registry& registry = Scenario_registry::builtin();
    for (const std::string& name : documented_scenarios(scenarios_doc()))
        EXPECT_NE(registry.find(name), nullptr)
            << "SCENARIOS.md documents '" << name
            << "', which is not in the builtin registry";
}

TEST(ScenariosDoc, SchemesAreListedVerbatim)
{
    // Each section lists its schemes; the canonical comma-joined list
    // must appear somewhere in the doc for every scenario.
    const std::string doc = scenarios_doc();
    for (const std::string& name : Scenario_registry::builtin().names()) {
        const auto& schemes = Scenario_registry::builtin().at(name).schemes();
        std::string joined;
        for (const std::string& scheme : schemes)
            joined += (joined.empty() ? "" : ", ") + scheme;
        EXPECT_NE(doc.find(joined), std::string::npos)
            << "SCENARIOS.md never lists '" << joined << "' (schemes of " << name << ")";
    }
}

} // namespace
} // namespace anc::engine
