// anc.jstream.v1 (engine/jstream.h): frame codec hardening in the
// journal_fuzz style (truncation at every byte, every single-bit flip,
// duplicated frames), then the sender↔listener loop — byte-identical
// mirrors, reconnect-and-replay across a listener restart, and the
// content dedup that makes overlapping replays harmless.

#include "engine/jstream.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/coordinator.h" // shard_journal_path
#include "engine/engine.h"
#include "engine/journal.h"
#include "util/rng.h"

namespace anc::engine {
namespace {

using std::chrono::milliseconds;

Scenario_registry noisy_registry()
{
    Scenario_registry registry;
    registry.add(std::make_unique<Function_scenario>(
        "noisy", std::vector<std::string>{"anc", "traditional"},
        [](const Scenario_config& config, std::uint64_t seed) {
            Pcg32 rng{seed};
            Scenario_result result;
            result.metrics.packets_attempted = config.exchanges;
            result.metrics.packets_delivered = rng.next_in_range(
                1, static_cast<std::uint32_t>(config.exchanges));
            result.metrics.packet_ber.add(rng.next_double() * 0.05);
            result.scalars["iters"] = rng.next_double() * 1e9;
            return result;
        }));
    return registry;
}

struct Temp_dir {
    explicit Temp_dir(const std::string& name) : path{testing::TempDir() + name}
    {
        ::system(("rm -rf '" + path + "' && mkdir -p '" + path + "'").c_str());
    }
    ~Temp_dir() { ::system(("rm -rf '" + path + "'").c_str()); }
    std::string path;
};

/// A real worker-side journal: magic + header + one entry per task.
void build_journal(const std::string& path, std::size_t repetitions = 3)
{
    const Scenario_registry registry = noisy_registry();
    Sweep_grid grid;
    grid.scenarios = {"noisy"};
    grid.snr_db = {10.0, 20.0};
    grid.repetitions = repetitions;
    const std::vector<Sweep_task> tasks = expand(grid, registry);
    Journal_writer writer{
        path, Journal_header{grid_fingerprint(grid), 77, tasks.size(), 1, 1},
        /*truncate=*/true};
    Executor_config config;
    config.threads = 1;
    config.base_seed = 77;
    config.on_complete = [&writer](const Task_result& r) { writer.append(r); };
    run_sweep(tasks, registry, config);
    writer.flush();
}

std::string slurp(const std::string& path)
{
    std::ifstream in{path, std::ios::binary};
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

// --------------------------------------------------------------- codec

TEST(JstreamCodec, FramesRoundTripThroughTheDecoder)
{
    const std::string wire = encode_frame(Frame_type::hello, hello_payload(2, 8, 42))
                             + encode_frame(Frame_type::line, "a journal line")
                             + encode_frame(Frame_type::ack, ack_payload(17, 42));

    Frame_decoder decoder;
    decoder.feed(wire);
    Frame frame;
    ASSERT_TRUE(decoder.next(frame));
    EXPECT_EQ(frame.type, Frame_type::hello);
    std::size_t shard = 0, shards = 0;
    std::uint64_t token = 0;
    ASSERT_TRUE(parse_hello(frame.payload, shard, shards, token));
    EXPECT_EQ(shard, 2u);
    EXPECT_EQ(shards, 8u);
    EXPECT_EQ(token, 42u);

    ASSERT_TRUE(decoder.next(frame));
    EXPECT_EQ(frame.type, Frame_type::line);
    EXPECT_EQ(frame.payload, "a journal line");

    ASSERT_TRUE(decoder.next(frame));
    EXPECT_EQ(frame.type, Frame_type::ack);
    std::uint64_t lines = 0;
    ASSERT_TRUE(parse_ack(frame.payload, lines, token));
    EXPECT_EQ(lines, 17u);
    EXPECT_EQ(token, 42u);

    EXPECT_FALSE(decoder.next(frame));
    EXPECT_FALSE(decoder.corrupt());
}

TEST(JstreamCodec, ByteAtATimeFeedDecodesIdentically)
{
    const std::string wire = encode_frame(Frame_type::line, "drip-fed payload");
    Frame_decoder decoder;
    Frame frame;
    std::size_t decoded = 0;
    for (char byte : wire) {
        decoder.feed(std::string(1, byte));
        while (decoder.next(frame)) {
            ++decoded;
            EXPECT_EQ(frame.payload, "drip-fed payload");
        }
    }
    EXPECT_EQ(decoded, 1u);
    EXPECT_FALSE(decoder.corrupt());
}

TEST(JstreamCodec, TruncationAtEveryByteIsIncompleteNeverCorrupt)
{
    const std::string wire = encode_frame(Frame_type::line, "truncate me");
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        Frame_decoder decoder;
        decoder.feed(wire.substr(0, cut));
        Frame frame;
        EXPECT_FALSE(decoder.next(frame)) << "cut at byte " << cut;
        // A prefix of a valid frame is "not yet", never "broken" — the
        // sender will deliver the rest (or the connection dies and the
        // whole frame is replayed).
        EXPECT_FALSE(decoder.corrupt()) << "cut at byte " << cut;
    }
}

TEST(JstreamCodec, EverySingleBitFlipIsRejected)
{
    const std::string original = encode_frame(Frame_type::line, "bit flip target");
    // A valid trailer frame follows, so a flip in the length field that
    // inflates the frame has real bytes to swallow — the decoder must
    // still not emit a bogus frame from them.
    const std::string trailer = encode_frame(Frame_type::line, "trailer");

    for (std::size_t bit = 0; bit < original.size() * 8; ++bit) {
        std::string flipped = original;
        flipped[bit / 8] = static_cast<char>(
            static_cast<unsigned char>(flipped[bit / 8]) ^ (1u << (bit % 8)));

        Frame_decoder decoder;
        decoder.feed(flipped + trailer);
        Frame frame;
        while (decoder.next(frame)) {
            // Any frame that does surface must be untampered — CRC-32
            // catches every single-bit error, so the only acceptable
            // decode is the trailer (after the flipped frame was
            // somehow skipped, which framing never does) — or nothing.
            FAIL() << "bit " << bit << " yielded a frame: '" << frame.payload
                   << "'";
        }
        // Either the corruption was detected outright, or the flip hit
        // the length field and left the decoder starving for bytes that
        // will never come (the connection then times out and drops).
        if (!decoder.corrupt()) {
            decoder.feed(std::string(jstream_max_payload, 'x'));
            while (decoder.next(frame))
                FAIL() << "bit " << bit << " eventually yielded a frame";
            EXPECT_TRUE(decoder.corrupt()) << "bit " << bit;
        }
    }
}

TEST(JstreamCodec, DuplicatedFramesDecodeAsTwoIdenticalFrames)
{
    const std::string wire = encode_frame(Frame_type::line, "dup");
    Frame_decoder decoder;
    decoder.feed(wire + wire);
    Frame a, b, extra;
    ASSERT_TRUE(decoder.next(a));
    ASSERT_TRUE(decoder.next(b));
    EXPECT_EQ(a.payload, b.payload);
    EXPECT_FALSE(decoder.next(extra));
    EXPECT_FALSE(decoder.corrupt());
}

// ---------------------------------------------------- sender ↔ listener

/// Pump both ends until the mirror matches `expect_bytes` or ~5 s pass.
bool pump_until_mirrored(Jstream_sender& sender, Jstream_listener& listener,
                         const std::string& mirror_path,
                         const std::string& expect_bytes)
{
    for (int i = 0; i < 2500; ++i) {
        sender.pump();
        listener.poll();
        if (slurp(mirror_path) == expect_bytes)
            return true;
        std::this_thread::sleep_for(milliseconds{2});
    }
    return false;
}

TEST(Jstream, StreamsAJournalByteForByte)
{
    Temp_dir dir{"jstream_e2e"};
    const std::string journal = dir.path + "/worker.anj";
    build_journal(journal);

    Jstream_listener listener{0, dir.path, 1};
    Jstream_sender::Config config;
    config.peer = {"127.0.0.1", listener.port()};
    Jstream_sender sender{config, journal};

    const std::string mirror = shard_journal_path(dir.path, 1);
    ASSERT_TRUE(pump_until_mirrored(sender, listener, mirror, slurp(journal)));

    // finish() must prove sync via the token-echo probe.
    bool synced = false;
    for (int i = 0; i < 100 && !synced; ++i) {
        synced = sender.finish(milliseconds{50});
        listener.poll();
    }
    EXPECT_TRUE(synced);
    EXPECT_TRUE(sender.stats().synced);
    EXPECT_GE(sender.stats().connects, 1u);
    EXPECT_EQ(listener.stats().invalid_lines, 0u);
    EXPECT_EQ(slurp(mirror), slurp(journal));
}

TEST(Jstream, SurvivesListenerRestartOnTheSamePort)
{
    Temp_dir dir{"jstream_restart"};
    const std::string full_path = dir.path + "/full.anj";
    build_journal(full_path);
    const std::string bytes = slurp(full_path);
    const std::string mirror = shard_journal_path(dir.path, 1);

    // The worker's journal starts as a PREFIX of the final file (the
    // sweep is mid-run) and grows during the coordinator's downtime —
    // the lines appended while nobody listens must arrive after the
    // restart.
    std::size_t cut = bytes.find('\n');
    for (int lines = 1; lines < 4; ++lines)
        cut = bytes.find('\n', cut + 1);
    const std::string journal = dir.path + "/worker.anj";
    {
        std::ofstream out{journal, std::ios::binary};
        out << bytes.substr(0, cut + 1);
    }

    // Phase 1: stream the prefix, then kill the listener.
    auto listener = std::make_unique<Jstream_listener>(0, dir.path, 1);
    const std::uint16_t port = listener->port();
    Jstream_sender::Config config;
    config.peer = {"127.0.0.1", port};
    config.backoff.initial = milliseconds{5};
    config.backoff.max = milliseconds{20};
    Jstream_sender sender{config, journal};
    ASSERT_TRUE(
        pump_until_mirrored(sender, *listener, mirror, bytes.substr(0, cut + 1)));
    listener.reset(); // coordinator dies; mirror file survives

    // The sweep continues: the journal grows, pumps against the dead
    // port must neither throw nor hang.
    {
        std::ofstream out{journal, std::ios::binary | std::ios::app};
        out << bytes.substr(cut + 1);
    }
    for (int i = 0; i < 20; ++i) {
        sender.pump();
        std::this_thread::sleep_for(milliseconds{2});
    }

    // Phase 2: restarted coordinator, same port, rescans the mirror.
    listener = std::make_unique<Jstream_listener>(port, dir.path, 1);
    ASSERT_TRUE(pump_until_mirrored(sender, *listener, mirror, bytes));
    EXPECT_EQ(slurp(mirror), bytes);
    EXPECT_GE(sender.stats().reconnects, 1u);
}

TEST(Jstream, FullReplayIntoAPopulatedMirrorIsDeduplicated)
{
    Temp_dir dir{"jstream_dedup"};
    const std::string full_path = dir.path + "/full.anj";
    build_journal(full_path);
    const std::string bytes = slurp(full_path);

    // The mirror already holds EVERYTHING (a previous worker attempt
    // finished and streamed it all); THIS sender is a relaunch with a
    // shorter journal.  The ack (mirror lines > sender lines) rewinds
    // the cursor to zero — a full replay — and the content dedup must
    // drop every duplicate without appending a byte.
    const std::string mirror = shard_journal_path(dir.path, 1);
    {
        std::ofstream out{mirror, std::ios::binary};
        out << bytes;
    }
    std::size_t cut = bytes.find('\n');
    for (int lines = 1; lines < 3; ++lines)
        cut = bytes.find('\n', cut + 1);
    const std::string journal = dir.path + "/worker.anj";
    {
        std::ofstream out{journal, std::ios::binary};
        out << bytes.substr(0, cut + 1);
    }

    Jstream_listener listener{0, dir.path, 1};
    Jstream_sender::Config config;
    config.peer = {"127.0.0.1", listener.port()};
    Jstream_sender sender{config, journal};

    bool synced = false;
    for (int i = 0; i < 500 && !synced; ++i) {
        sender.pump();
        listener.poll();
        synced = sender.finish(milliseconds{20});
    }
    EXPECT_TRUE(synced);
    EXPECT_EQ(slurp(mirror), bytes); // not one byte appended
    EXPECT_EQ(listener.stats().lines_appended, 0u);
    EXPECT_GT(listener.stats().replayed_lines, 0u);
}

TEST(Jstream, TornMirrorTailIsNeutralizedNotSplicedInto)
{
    Temp_dir dir{"jstream_torn"};
    const std::string journal = dir.path + "/worker.anj";
    build_journal(journal);
    const Journal_contents full = load_journal(journal);

    // The mirror died mid-append: its last line is a prefix of a task
    // line, no trailing newline.  Streaming into it must not splice the
    // next line onto the fragment (which would permanently lose a task
    // — the fragment's index would count as "seen" while its line is
    // corrupt).
    const std::string bytes = slurp(journal);
    const std::size_t last_line_start = bytes.rfind('\n', bytes.size() - 2) + 1;
    const std::string torn =
        bytes.substr(0, last_line_start + (bytes.size() - last_line_start) / 2);
    const std::string mirror = shard_journal_path(dir.path, 1);
    {
        std::ofstream out{mirror, std::ios::binary};
        out << torn;
    }

    Jstream_listener listener{0, dir.path, 1};
    Jstream_sender::Config config;
    config.peer = {"127.0.0.1", listener.port()};
    Jstream_sender sender{config, journal};
    bool synced = false;
    for (int i = 0; i < 500 && !synced; ++i) {
        sender.pump();
        listener.poll();
        synced = sender.finish(milliseconds{20});
    }
    ASSERT_TRUE(synced);

    // Every task is recoverable from the mirror; the neutralized
    // fragment is the one dropped line.
    const Journal_contents mirrored = load_journal(mirror);
    EXPECT_EQ(mirrored.entries.size(), full.entries.size());
    EXPECT_EQ(mirrored.dropped_lines, 1u);
}

TEST(Jstream, RejectsAWrongShardCountHandshake)
{
    Temp_dir dir{"jstream_badhello"};
    const std::string journal = dir.path + "/worker.anj";
    build_journal(journal);

    Jstream_listener listener{0, dir.path, /*shard_count=*/4};
    Jstream_sender::Config config;
    config.peer = {"127.0.0.1", listener.port()};
    config.shard_index = 1;
    config.shard_count = 8; // fleet mismatch: the listener expects /4
    config.backoff.initial = milliseconds{1};
    config.backoff.max = milliseconds{5};
    Jstream_sender sender{config, journal};

    for (int i = 0; i < 50; ++i) {
        sender.pump();
        listener.poll();
        std::this_thread::sleep_for(milliseconds{1});
    }
    EXPECT_GT(listener.stats().dropped_frames, 0u);
    EXPECT_EQ(listener.stats().lines_appended, 0u);
    EXPECT_FALSE(sender.stats().synced);
}

} // namespace
} // namespace anc::engine
