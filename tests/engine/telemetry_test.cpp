// Telemetry regression locks (OBSERVABILITY.md):
//
//   1. *Neutrality* — enabling collection must not change a byte of the
//      sweep's emitted JSON/CSV artifacts, at any thread count, under
//      every math profile.
//   2. *Deterministic merge* — the merged counter totals are invariant
//      in the worker-thread count (per-task snapshots merged in task
//      order), and equal the sum of the per-task snapshots.
//   3. *Exact tallies* — a scripted alice_bob run with a known number
//      of clean frames produces exactly the detector / pilot / CRC
//      counts that frame count implies, and a scripted FEC decode
//      produces exactly the codeword / correction counts it implies.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "dsp/workspace.h"
#include "engine/engine.h"
#include "fec/codec.h"
#include "util/bits.h"
#include "util/obs.h"
#include "util/rng.h"

namespace anc::engine {
namespace {

Sweep_grid all_profiles_grid()
{
    Sweep_grid grid;
    grid.scenarios = {"alice_bob"};
    grid.snr_db = {20.0, 25.0};
    grid.payload_bits = {512};
    grid.exchanges = {2};
    grid.repetitions = 2;
    grid.math_profiles = {dsp::Math_profile::exact, dsp::Math_profile::fast,
                          dsp::Math_profile::simd};
    return grid;
}

/// Every emitted artifact of one sweep, concatenated: the full JSON
/// document plus both CSVs — the byte surface telemetry must not touch.
std::string run_to_artifacts(const Sweep_grid& grid, std::size_t threads,
                             obs::Sweep_telemetry* telemetry)
{
    Executor_config config;
    config.threads = threads;
    config.base_seed = 4242;
    config.telemetry = telemetry;
    const std::vector<Task_result> results = run_sweep(grid, config);
    const std::vector<Point_summary> points = aggregate(results);
    std::ostringstream out;
    write_json(out, results, points);
    write_summary_csv(out, points);
    write_tasks_csv(out, results);
    return out.str();
}

TEST(TelemetryNeutrality, ArtifactsAreByteIdenticalWithCollectionOn)
{
    const Sweep_grid grid = all_profiles_grid();
    const std::string off_serial = run_to_artifacts(grid, 1, nullptr);

    obs::Sweep_telemetry telemetry;
    EXPECT_EQ(off_serial, run_to_artifacts(grid, 1, &telemetry))
        << "telemetry changed emitted bytes (1 thread)";
    EXPECT_GT(telemetry.counters[obs::Counter::packet_detect_triggers], 0u)
        << "collection was supposed to be on";

    obs::Sweep_telemetry telemetry8;
    EXPECT_EQ(off_serial, run_to_artifacts(grid, 8, &telemetry8))
        << "telemetry changed emitted bytes (8 threads)";
    EXPECT_EQ(off_serial, run_to_artifacts(grid, 8, nullptr))
        << "thread count alone changed emitted bytes";
}

TEST(TelemetryMerge, CounterTotalsAreThreadCountInvariant)
{
    const Sweep_grid grid = all_profiles_grid();

    obs::Sweep_telemetry serial;
    const std::string serial_bytes = run_to_artifacts(grid, 1, &serial);
    obs::Sweep_telemetry parallel;
    const std::string parallel_bytes = run_to_artifacts(grid, 8, &parallel);

    EXPECT_EQ(serial_bytes, parallel_bytes);
    EXPECT_EQ(serial.counters, parallel.counters)
        << "merged counters must not depend on the worker count";
    // Stage *call* counts are deterministic too (only the ns fields are
    // wall-clock observations).
    EXPECT_EQ(serial.stages.calls, parallel.stages.calls);

    EXPECT_EQ(serial.threads, 1u);
    EXPECT_EQ(parallel.threads, 8u);
    EXPECT_EQ(serial.tasks, parallel.tasks);
    EXPECT_EQ(serial.latency.total(), serial.tasks);
    EXPECT_EQ(parallel.latency.total(), parallel.tasks);
    EXPECT_EQ(serial.workers.size(), 1u);
    EXPECT_EQ(parallel.workers.size(), 8u);
    std::uint64_t worker_tasks = 0;
    for (const obs::Worker_stats& worker : parallel.workers)
        worker_tasks += worker.tasks;
    EXPECT_EQ(worker_tasks, parallel.tasks);
}

TEST(TelemetryMerge, SweepTotalsEqualSumOfPerTaskSnapshots)
{
    const Sweep_grid grid = all_profiles_grid();
    Executor_config config;
    config.threads = 4;
    config.base_seed = 4242;
    obs::Sweep_telemetry telemetry;
    config.telemetry = &telemetry;
    const std::vector<Task_result> results = run_sweep(grid, config);

    obs::Counters summed;
    for (const Task_result& result : results)
        summed.merge(result.result.telemetry.counters);
    EXPECT_EQ(summed, telemetry.counters);
    EXPECT_EQ(telemetry.tasks, results.size());
    for (const Task_result& result : results) {
        EXPECT_LT(result.result.telemetry.worker, 4u);
        EXPECT_GT(result.result.telemetry.wall_ns, 0u);
    }
}

TEST(TelemetryTallies, CleanTraditionalRunCountsEveryFrameExactly)
{
    // 2 exchanges x 2 directions x 2 hops = 8 clean transmissions; at
    // 25 dB every hop succeeds, so each of the 8 receive() calls is:
    // one detector trigger, one (negative) interference analysis, one
    // pilot search that hits, one CRC that passes, one clean outcome.
    dsp::Workspace workspace;
    const dsp::Workspace::Bind workspace_bind{workspace};
    obs::Recorder recorder;
    const obs::Recorder::Bind bind{recorder};
    recorder.begin_task();

    const Scenario& alice_bob = Scenario_registry::builtin().at("alice_bob");
    Scenario_config config;
    config.scheme = "traditional";
    config.payload_bits = 512;
    config.exchanges = 2;
    config.snr_db = 25.0;
    const Scenario_result result = alice_bob.run(config, 4242);
    ASSERT_EQ(result.metrics.packets_delivered, 4u) << "a hop failed at 25 dB";

    const obs::Counters& counters = recorder.task().counters;
    EXPECT_EQ(counters[obs::Counter::packet_detect_triggers], 8u);
    EXPECT_EQ(counters[obs::Counter::packet_detect_rejections], 0u);
    EXPECT_EQ(counters[obs::Counter::interference_analyses], 8u);
    EXPECT_EQ(counters[obs::Counter::interference_detected], 0u);
    EXPECT_EQ(counters[obs::Counter::pilot_searches], 8u);
    EXPECT_EQ(counters[obs::Counter::pilot_hits], 8u);
    EXPECT_EQ(counters[obs::Counter::pilot_misses], 0u);
    EXPECT_EQ(counters[obs::Counter::pilot_hit_error_sum], 0u);
    EXPECT_EQ(counters[obs::Counter::crc_pass], 8u);
    EXPECT_EQ(counters[obs::Counter::crc_fail], 0u);
    EXPECT_EQ(counters[obs::Counter::rx_clean], 8u);
    EXPECT_EQ(counters[obs::Counter::rx_no_packet], 0u);
    EXPECT_EQ(counters[obs::Counter::rx_failed], 0u);
    EXPECT_EQ(counters[obs::Counter::rx_decoded_interference], 0u);
    // No collisions: the interference decoder and AGC never ran.
    EXPECT_EQ(counters[obs::Counter::decode_calls], 0u);
    EXPECT_EQ(counters[obs::Counter::agc_lookups], 0u);
    EXPECT_EQ(counters[obs::Counter::fec_codewords], 0u);

    // Stage call counts follow the same arithmetic: one detector pass,
    // one channel mix, and one demodulation per hop.
    const auto calls = [&](obs::Stage stage) {
        return recorder.task().stages.calls[static_cast<std::size_t>(stage)];
    };
    EXPECT_EQ(calls(obs::Stage::packet_detect), 8u);
    EXPECT_EQ(calls(obs::Stage::channel), 8u);
    EXPECT_EQ(calls(obs::Stage::demodulate), 8u);
    EXPECT_EQ(calls(obs::Stage::pilot_search), 8u);
    EXPECT_EQ(calls(obs::Stage::modulate), 8u);
    EXPECT_EQ(calls(obs::Stage::interference_decode), 0u);
}

TEST(TelemetryTallies, FecDecodeCountsCodewordsAndCorrections)
{
    const fec::Fec_codec codec{8};
    Pcg32 rng{99, 1};
    const Bits data = random_bits(512, rng);
    Bits coded = codec.encode(data);
    ASSERT_EQ(coded.size() % 7, 0u);

    obs::Recorder recorder;
    const obs::Recorder::Bind bind{recorder};

    recorder.begin_task();
    EXPECT_EQ(codec.decode(coded, data.size()), data);
    EXPECT_EQ(recorder.task().counters[obs::Counter::fec_codewords], coded.size() / 7);
    EXPECT_EQ(recorder.task().counters[obs::Counter::fec_corrected_bits], 0u);

    // One flipped bit: same codeword count, exactly one correction, and
    // the decode still recovers the data.
    coded[3] ^= 1;
    recorder.begin_task();
    EXPECT_EQ(codec.decode(coded, data.size()), data);
    EXPECT_EQ(recorder.task().counters[obs::Counter::fec_codewords], coded.size() / 7);
    EXPECT_EQ(recorder.task().counters[obs::Counter::fec_corrected_bits], 1u);
}

TEST(TelemetryManifest, MetricsJsonIsPopulated)
{
    Sweep_grid grid;
    grid.scenarios = {"alice_bob"};
    grid.snr_db = {25.0};
    grid.payload_bits = {512};
    grid.exchanges = {2};
    grid.repetitions = 2;

    Executor_config config;
    config.threads = 2;
    config.base_seed = 7;
    obs::Sweep_telemetry telemetry;
    config.telemetry = &telemetry;
    const std::vector<Task_result> results = run_sweep(grid, config);

    const std::string json =
        metrics_to_json({.driver = "test", .base_seed = config.base_seed}, grid,
                        telemetry, results);
    EXPECT_NE(json.find("\"schema\":\"anc.metrics.v1\""), std::string::npos);
    EXPECT_NE(json.find("\"driver\":\"test\""), std::string::npos);
    EXPECT_NE(json.find("\"base_seed\":\"7\""), std::string::npos);
    EXPECT_NE(json.find("\"stages\":"), std::string::npos);
    EXPECT_NE(json.find("\"counters\":"), std::string::npos);
    EXPECT_NE(json.find("\"latency_histogram\":"), std::string::npos);
    EXPECT_NE(json.find("\"workers\":"), std::string::npos);
    // Every counter name appears as a key, populated from a real run.
    for (std::size_t i = 0; i < obs::counter_count; ++i) {
        const std::string key =
            std::string{"\""} + obs::to_string(static_cast<obs::Counter>(i)) + "\":";
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    EXPECT_GT(telemetry.counters[obs::Counter::rx_clean]
                  + telemetry.counters[obs::Counter::rx_decoded_interference],
              0u);
}

} // namespace
} // namespace anc::engine
