// Determinism of the fading scenarios on the engine: bit-identical sweep
// output at any thread count, scheme-collapsed fading realizations, and
// workspace-recycling immunity — the same guarantees the fixed-gain
// scenarios carry, extended to the Rayleigh path.

#include <gtest/gtest.h>

#include <string>

#include "channel/medium.h"
#include "dsp/workspace.h"
#include "engine/emit.h"
#include "engine/engine.h"
#include "net/topology.h"
#include "util/rng.h"

namespace anc::engine {
namespace {

Sweep_grid small_fading_grid()
{
    Sweep_grid grid;
    grid.scenarios = {"alice_bob_fading"};
    grid.schemes = {"anc", "traditional"};
    grid.snr_db = {25.0};
    grid.coherence_blocks = {512, 4096};
    grid.mean_link_gains = {1.0};
    grid.payload_bits = {512};
    grid.exchanges = {2};
    grid.repetitions = 3;
    return grid;
}

std::string run_to_json(const Sweep_grid& grid, std::size_t threads)
{
    Executor_config config;
    config.threads = threads;
    config.base_seed = 20260;
    const std::vector<Task_result> results = run_sweep(grid, config);
    return to_json(results, aggregate(results));
}

TEST(FadingDeterminism, SweepJsonIsBitIdenticalAcross1_4_8Threads)
{
    const std::string serial = run_to_json(small_fading_grid(), 1);
    EXPECT_EQ(serial, run_to_json(small_fading_grid(), 4));
    EXPECT_EQ(serial, run_to_json(small_fading_grid(), 8));
}

TEST(FadingDeterminism, WarmDirtyWorkspaceProducesIdenticalJson)
{
    const std::string cold = run_to_json(small_fading_grid(), 1);

    dsp::Workspace dirty;
    {
        auto signal = dirty.signal();
        signal->assign(5000, dsp::Sample{123.0, -456.0});
        auto bits = dirty.bits();
        bits->assign(4096, 1);
    }
    const dsp::Workspace::Bind bind{dirty};
    EXPECT_EQ(cold, run_to_json(small_fading_grid(), 1));
    EXPECT_EQ(cold, run_to_json(small_fading_grid(), 1)); // now thoroughly warm
}

TEST(FadingDeterminism, SchemeCollapseSharesSeedIndexAcrossSchemes)
{
    const std::vector<Sweep_task> tasks = expand(small_fading_grid());
    // Tasks that differ only in scheme must share seed_index — the
    // paired-gain design: both schemes see the same fading realization.
    for (const Sweep_task& task : tasks) {
        for (const Sweep_task& other : tasks) {
            const bool same_point = task.config.snr_db == other.config.snr_db
                && task.config.coherence_block == other.config.coherence_block
                && task.repetition == other.repetition;
            if (same_point)
                EXPECT_EQ(task.seed_index, other.seed_index);
            else
                EXPECT_NE(task.seed_index, other.seed_index);
        }
    }
}

TEST(FadingDeterminism, PairedSchemesSeeIdenticalLinkRealizations)
{
    // What both schemes of a scheme-collapsed pair do at the same seed:
    // build the topology from identically-seeded rngs.  Every directed
    // link must come out with the same phase, drift, and fading seed.
    net::Link_fading fading;
    fading.model = chan::Gain_model::rayleigh_block;
    fading.coherence_block = 777;

    chan::Medium medium_a{0.01, Pcg32{1, 2}};
    chan::Medium medium_b{0.01, Pcg32{1, 2}};
    Pcg32 rng_a{555, 0x0a11ce0bu};
    Pcg32 rng_b{555, 0x0a11ce0bu};
    const net::Alice_bob_nodes nodes;
    install_alice_bob(medium_a, nodes, net::Alice_bob_gains{}, fading, rng_a);
    install_alice_bob(medium_b, nodes, net::Alice_bob_gains{}, fading, rng_b);

    const std::pair<chan::Node_id, chan::Node_id> pairs[] = {
        {nodes.alice, nodes.router},
        {nodes.router, nodes.alice},
        {nodes.bob, nodes.router},
        {nodes.router, nodes.bob},
    };
    for (const auto& [from, to] : pairs) {
        const chan::Link_params& a = medium_a.link(from, to).params();
        const chan::Link_params& b = medium_b.link(from, to).params();
        EXPECT_EQ(a.phase, b.phase);
        EXPECT_EQ(a.phase_drift, b.phase_drift);
        EXPECT_EQ(a.gain_model, chan::Gain_model::rayleigh_block);
        EXPECT_EQ(a.coherence_block, 777u);
        EXPECT_EQ(a.fading_seed, b.fading_seed);
    }
    // Distinct links fade independently.
    EXPECT_NE(medium_a.link(nodes.alice, nodes.router).params().fading_seed,
              medium_a.link(nodes.router, nodes.alice).params().fading_seed);
}

TEST(FadingDeterminism, MediumEpochRefreshesFadesPerExchange)
{
    // The sims advance the medium's fading epoch once per exchange;
    // successive epochs must resample every faded link, and returning
    // to an epoch must replay its realization exactly (zero noise
    // isolates the fading path).
    chan::Medium medium{0.0, Pcg32{3, 4}};
    chan::Link_params params;
    params.gain_model = chan::Gain_model::rayleigh_block;
    params.coherence_block = 32;
    params.fading_seed = 0xfeed;
    medium.set_link(1, 2, params);

    const dsp::Signal sent(64, dsp::Sample{1.0, 0.0});
    const chan::Transmission txs[] = {{1, sent, 0}};

    const dsp::Signal epoch0 = medium.receive(2, txs);
    medium.set_fading_epoch(1);
    const dsp::Signal epoch1 = medium.receive(2, txs);
    medium.set_fading_epoch(0);
    const dsp::Signal epoch0_again = medium.receive(2, txs);

    EXPECT_NE(epoch0[0], epoch1[0]);
    ASSERT_EQ(epoch0.size(), epoch0_again.size());
    for (std::size_t n = 0; n < epoch0.size(); ++n)
        EXPECT_EQ(epoch0[n], epoch0_again[n]);
}

TEST(FadingDeterminism, FadingScenarioActuallyFades)
{
    // Guard against the fading config being silently dropped: under fast
    // fading (several fade boundaries per frame) the CRC-gated
    // traditional scheme must lose packets it delivers over fixed links.
    Scenario_config config;
    config.scheme = "traditional";
    config.payload_bits = 1024;
    config.exchanges = 5;
    config.snr_db = 25.0;
    config.coherence_block = 512;

    const Scenario_registry& registry = Scenario_registry::builtin();
    const Scenario_result fixed = registry.at("alice_bob").run(config, 9);
    const Scenario_result faded = registry.at("alice_bob_fading").run(config, 9);
    EXPECT_LT(faded.metrics.packets_delivered, fixed.metrics.packets_delivered);
}

TEST(FadingDeterminism, NewAxesLandInTaskConfigAndPointKey)
{
    Sweep_grid grid;
    grid.scenarios = {"alice_bob"};
    grid.schemes = {"anc"};
    grid.detector_thresholds_db = {6.0, 12.0};
    grid.interleave_rows = {0, 8};
    grid.coherence_blocks = {1024};
    grid.mean_link_gains = {0.5};

    const std::vector<Sweep_task> tasks = expand(grid);
    ASSERT_EQ(tasks.size(), 4u);
    EXPECT_EQ(tasks[0]
                  .config.receiver.interference_detector.variance_threshold_db,
              6.0);
    EXPECT_EQ(tasks[3]
                  .config.receiver.interference_detector.variance_threshold_db,
              12.0);
    EXPECT_EQ(tasks[0].config.fec_interleave_rows, 0u);
    EXPECT_EQ(tasks[1].config.fec_interleave_rows, 8u);

    const Point_key key = key_of(tasks[1]);
    EXPECT_EQ(key.detector_threshold_db, 6.0);
    EXPECT_EQ(key.interleave_rows, 8u);
    EXPECT_EQ(key.coherence_block, 1024u);
    EXPECT_EQ(key.mean_link_gain, 0.5);
}

} // namespace
} // namespace anc::engine
