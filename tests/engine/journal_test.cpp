// The completed-task journal: round-trip exactness, torn/corrupt line
// recovery, and header compatibility — the crash-safety substrate of
// `anc_sweep --journal/--resume/--merge` (ENGINE.md "Fault tolerance").

#include "engine/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/emit.h"
#include "engine/engine.h"
#include "util/rng.h"

namespace anc::engine {
namespace {

/// Unsorted, seed-dependent samples on every CDF, so any serialization
/// that loses insertion order (or precision) breaks byte-identity.
Scenario_registry noisy_registry()
{
    Scenario_registry registry;
    registry.add(std::make_unique<Function_scenario>(
        "noisy", std::vector<std::string>{"anc", "traditional"},
        [](const Scenario_config& config, std::uint64_t seed) {
            Pcg32 rng{seed};
            Scenario_result result;
            result.metrics.packets_attempted = config.exchanges;
            result.metrics.packets_delivered = rng.next_in_range(
                1, static_cast<std::uint32_t>(config.exchanges));
            result.metrics.payload_bits_delivered =
                result.metrics.packets_delivered * config.payload_bits;
            result.metrics.airtime_symbols = 1.0 + rng.next_double() * 1e-13;
            for (std::size_t i = 0; i < 5; ++i)
                result.metrics.packet_ber.add(rng.next_double() * 0.05);
            result.metrics.overlaps.add(rng.next_double() * 3.0);
            result.series["phase err"].add(rng.next_double()); // space in name
            result.series["phase err"].add(-rng.next_double());
            result.scalars["iters:odd|name"] = rng.next_double() * 1e9;
            return result;
        }));
    return registry;
}

Sweep_grid small_grid()
{
    Sweep_grid grid;
    grid.scenarios = {"noisy"};
    grid.snr_db = {10.0, 20.0};
    grid.repetitions = 3;
    return grid;
}

/// A scratch path in the build directory, removed on destruction.
struct Temp_path {
    explicit Temp_path(const std::string& name)
        : path{testing::TempDir() + name}
    {
        std::remove(path.c_str());
    }
    ~Temp_path() { std::remove(path.c_str()); }
    std::string path;
};

/// Run `tasks` journaling every completion into `path`.
std::vector<Task_result> run_with_journal(const std::vector<Sweep_task>& tasks,
                                          const Scenario_registry& registry,
                                          const Journal_header& header,
                                          const std::string& path,
                                          std::uint64_t base_seed)
{
    Journal_writer writer{path, header, /*truncate=*/true};
    Executor_config config;
    config.threads = 2;
    config.base_seed = base_seed;
    config.isolate_faults = true;
    config.on_complete = [&writer](const Task_result& r) { writer.append(r); };
    return run_sweep(tasks, registry, config);
}

TEST(Journal, RoundTripIsByteExact)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();
    const std::vector<Sweep_task> tasks = expand(grid, registry);
    const Journal_header header{grid_fingerprint(grid), 77, tasks.size(), 1, 1};

    Temp_path journal{"journal_roundtrip.anj"};
    const std::vector<Task_result> reference =
        run_with_journal(tasks, registry, header, journal.path, 77);
    const std::string reference_json = to_json(reference, aggregate(reference));

    // Reload and resume: everything preloaded, nothing executes, and the
    // emitted document must match byte for byte.
    Journal_contents contents = load_journal(journal.path);
    EXPECT_EQ(contents.dropped_lines, 0u);
    EXPECT_EQ(contents.entries.size(), tasks.size());
    EXPECT_EQ(contents.header.grid_hash, header.grid_hash);

    std::map<std::size_t, Task_result> preloaded =
        preload_from_entries(std::move(contents.entries), tasks);
    ASSERT_EQ(preloaded.size(), tasks.size());

    Executor_config config;
    config.threads = 4;
    config.base_seed = 77;
    config.preloaded = &preloaded;
    Run_tally tally;
    const std::vector<Task_result> replayed =
        run_sweep(tasks, registry, config, &tally);
    EXPECT_EQ(tally.resumed, tasks.size());
    EXPECT_EQ(to_json(replayed, aggregate(replayed)), reference_json);
}

TEST(Journal, PartialJournalResumesToIdenticalOutput)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();
    const std::vector<Sweep_task> tasks = expand(grid, registry);
    const Journal_header header{grid_fingerprint(grid), 5, tasks.size(), 1, 1};

    Temp_path journal{"journal_partial.anj"};
    const std::vector<Task_result> reference =
        run_with_journal(tasks, registry, header, journal.path, 5);
    const std::string reference_json = to_json(reference, aggregate(reference));

    // Truncate to magic + header + half the entries — a crash at ~50% —
    // and add a torn final line (no newline, partial payload).
    std::ifstream in{journal.path};
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    in.close();
    const std::size_t keep = 2 + (lines.size() - 2) / 2;
    std::ofstream out{journal.path, std::ios::trunc};
    for (std::size_t i = 0; i < keep; ++i)
        out << lines[i] << "\n";
    out << lines[keep].substr(0, lines[keep].size() / 2); // torn
    out.close();

    Journal_contents contents = load_journal(journal.path);
    EXPECT_EQ(contents.dropped_lines, 1u);
    EXPECT_EQ(contents.entries.size(), keep - 2);

    std::map<std::size_t, Task_result> preloaded =
        preload_from_entries(std::move(contents.entries), tasks);
    Executor_config config;
    config.threads = 3;
    config.base_seed = 5;
    config.preloaded = &preloaded;
    Run_tally tally;
    const std::vector<Task_result> resumed = run_sweep(tasks, registry, config, &tally);
    EXPECT_EQ(tally.resumed, keep - 2);
    EXPECT_EQ(tally.ok, tasks.size());
    EXPECT_EQ(to_json(resumed, aggregate(resumed)), reference_json);
}

TEST(Journal, CorruptCrcLineIsDroppedNotFatal)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();
    const std::vector<Sweep_task> tasks = expand(grid, registry);
    const Journal_header header{grid_fingerprint(grid), 1, tasks.size(), 1, 1};

    Temp_path journal{"journal_corrupt.anj"};
    run_with_journal(tasks, registry, header, journal.path, 1);

    // Flip one payload byte of the third entry; its CRC no longer
    // matches and the loader must drop exactly that line.
    std::ifstream in{journal.path};
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    in.close();
    ASSERT_GT(lines.size(), 5u);
    lines[4][lines[4].size() / 2] ^= 0x01;
    std::ofstream out{journal.path, std::ios::trunc};
    for (const std::string& line : lines)
        out << line << "\n";
    out.close();

    const Journal_contents contents = load_journal(journal.path);
    EXPECT_EQ(contents.dropped_lines, 1u);
    EXPECT_EQ(contents.entries.size(), tasks.size() - 1);
}

TEST(Journal, ErrorEntriesRoundTripWithMessage)
{
    std::vector<Sweep_task> tasks(2);
    tasks[0].index = 0;
    tasks[1].index = 1;
    Task_result errored;
    errored.task = tasks[1];
    errored.seed = 99;
    errored.status = Task_status::error;
    errored.attempts = 3;
    errored.error = "boom: axis=7, |weird| 100% \"chars\"\nnewline";

    Temp_path journal{"journal_error.anj"};
    {
        Journal_writer writer{journal.path, Journal_header{1, 2, 2, 1, 1}, true};
        writer.append(errored);
    }
    Journal_contents contents = load_journal(journal.path);
    ASSERT_EQ(contents.entries.size(), 1u);
    EXPECT_EQ(contents.entries[0].status, Task_status::error);
    EXPECT_EQ(contents.entries[0].attempts, 3u);
    EXPECT_EQ(contents.entries[0].error, errored.error);

    const std::map<std::size_t, Task_result> preloaded =
        preload_from_entries(std::move(contents.entries), tasks);
    ASSERT_EQ(preloaded.size(), 1u);
    EXPECT_EQ(preloaded.at(1).error, errored.error);
}

TEST(Journal, CompatibilityRejectsEveryMismatch)
{
    const Sweep_grid grid = small_grid();
    const Journal_header header{grid_fingerprint(grid), 7, 12, 2, 3};

    std::string why;
    EXPECT_TRUE(journal_compatible(header, grid, 7, 12, 2, 3, &why)) << why;

    Sweep_grid other = grid;
    other.snr_db.push_back(30.0);
    EXPECT_FALSE(journal_compatible(header, other, 7, 12, 2, 3, &why));
    EXPECT_NE(why.find("fingerprint"), std::string::npos);

    EXPECT_FALSE(journal_compatible(header, grid, 8, 12, 2, 3, &why));
    EXPECT_NE(why.find("seed"), std::string::npos);
    EXPECT_FALSE(journal_compatible(header, grid, 7, 13, 2, 3, &why));
    EXPECT_NE(why.find("task count"), std::string::npos);
    EXPECT_FALSE(journal_compatible(header, grid, 7, 12, 1, 3, &why));
    EXPECT_NE(why.find("shard"), std::string::npos);
}

TEST(Journal, FingerprintTracksEveryAxis)
{
    const Sweep_grid base = small_grid();
    const std::uint64_t reference = grid_fingerprint(base);
    EXPECT_EQ(grid_fingerprint(base), reference); // stable

    Sweep_grid changed = base;
    changed.repetitions = 4;
    EXPECT_NE(grid_fingerprint(changed), reference);
    changed = base;
    changed.payload_bits = {1024};
    EXPECT_NE(grid_fingerprint(changed), reference);
    changed = base;
    changed.schemes = {"anc"};
    EXPECT_NE(grid_fingerprint(changed), reference);
    changed = base;
    changed.math_profiles = {dsp::Math_profile::fast};
    EXPECT_NE(grid_fingerprint(changed), reference);
}

TEST(Journal, LoadRejectsNonJournalFiles)
{
    Temp_path bogus{"journal_bogus.anj"};
    std::ofstream{bogus.path} << "this is not a journal\n";
    EXPECT_THROW(load_journal(bogus.path), std::runtime_error);
    EXPECT_THROW(load_journal(bogus.path + ".does-not-exist"), std::runtime_error);
}

TEST(Journal, PreloadIgnoresOtherShardsIndices)
{
    // Entries for global indices 0..5, but the task vector is shard 2/3
    // (indices 1 and 4): only those two must preload, keyed by POSITION.
    std::vector<Sweep_task> all(6);
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i].index = i;
    const std::vector<Sweep_task> shard = shard_tasks(all, 2, 3);
    ASSERT_EQ(shard.size(), 2u);

    std::vector<Journal_entry> entries(6);
    for (std::size_t i = 0; i < entries.size(); ++i) {
        entries[i].index = i;
        entries[i].seed = 100 + i;
    }
    const std::map<std::size_t, Task_result> preloaded =
        preload_from_entries(std::move(entries), shard);
    ASSERT_EQ(preloaded.size(), 2u);
    EXPECT_EQ(preloaded.at(0).seed, 101u); // global index 1 -> position 0
    EXPECT_EQ(preloaded.at(1).seed, 104u); // global index 4 -> position 1
    EXPECT_EQ(preloaded.at(0).task.index, 1u);
}

} // namespace
} // namespace anc::engine
