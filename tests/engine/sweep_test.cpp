#include "engine/sweep.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace anc::engine {
namespace {

TEST(SweepGrid, CartesianExpansionCount)
{
    Sweep_grid grid;
    grid.scenarios = {"alice_bob"}; // 3 schemes
    grid.snr_db = {20.0, 25.0};
    grid.bob_amplitudes = {0.5, 1.0};
    grid.payload_bits = {512, 1024};
    grid.exchanges = {2};
    grid.repetitions = 5;
    const std::vector<Sweep_task> tasks = expand(grid);
    EXPECT_EQ(tasks.size(), 3u * 2u * 2u * 2u * 5u);
}

TEST(SweepGrid, IndicesAreStablePositions)
{
    Sweep_grid grid;
    grid.scenarios = {"chain"};
    grid.snr_db = {20.0, 25.0};
    grid.repetitions = 3;
    const std::vector<Sweep_task> tasks = expand(grid);
    ASSERT_EQ(tasks.size(), 2u * 2u * 3u);
    for (std::size_t i = 0; i < tasks.size(); ++i)
        EXPECT_EQ(tasks[i].index, i);
}

TEST(SweepGrid, AxisOrderIsScenarioSchemeThenOperatingPoint)
{
    Sweep_grid grid;
    grid.scenarios = {"alice_bob", "chain"};
    grid.schemes = {"anc"};
    grid.snr_db = {20.0, 25.0};
    grid.repetitions = 2;
    const std::vector<Sweep_task> tasks = expand(grid);
    ASSERT_EQ(tasks.size(), 8u);
    EXPECT_EQ(tasks[0].scenario, "alice_bob");
    EXPECT_DOUBLE_EQ(tasks[0].config.snr_db, 20.0);
    EXPECT_EQ(tasks[0].repetition, 0u);
    EXPECT_EQ(tasks[1].repetition, 1u);
    EXPECT_DOUBLE_EQ(tasks[2].config.snr_db, 25.0);
    EXPECT_EQ(tasks[4].scenario, "chain");
}

TEST(SweepGrid, SeedIndexCollapsesTheSchemeAxis)
{
    Sweep_grid grid;
    grid.scenarios = {"alice_bob", "chain"};
    grid.snr_db = {20.0, 25.0};
    grid.repetitions = 2;
    const std::vector<Sweep_task> tasks = expand(grid);
    ASSERT_EQ(tasks.size(), (3u + 2u) * 2u * 2u);

    // Tasks that differ only in scheme share a seed_index...
    for (const Sweep_task& a : tasks) {
        for (const Sweep_task& b : tasks) {
            const bool same_point_and_rep =
                a.scenario == b.scenario && a.config.snr_db == b.config.snr_db
                && a.repetition == b.repetition;
            if (same_point_and_rep) {
                EXPECT_EQ(a.seed_index, b.seed_index);
            }
        }
    }
    // ...and distinct (scenario, operating point, repetition) never do.
    std::set<std::size_t> distinct;
    for (const Sweep_task& task : tasks) {
        if (task.config.scheme == "anc")
            distinct.insert(task.seed_index);
    }
    EXPECT_EQ(distinct.size(), 2u * 2u * 2u); // 2 scenarios x 2 SNRs x 2 reps
}

TEST(SweepGrid, EmptySchemesMeansEveryDeclaredScheme)
{
    Sweep_grid grid;
    grid.scenarios = {"chain"};
    const std::vector<Sweep_task> tasks = expand(grid);
    ASSERT_EQ(tasks.size(), 2u);
    EXPECT_EQ(tasks[0].config.scheme, "traditional");
    EXPECT_EQ(tasks[1].config.scheme, "anc");
}

TEST(SweepGrid, SchemesIntersectWithScenarioSupport)
{
    // COPE exists for alice_bob but not for the unidirectional chain;
    // the grid silently contributes no chain/cope tasks.
    Sweep_grid grid;
    grid.scenarios = {"alice_bob", "chain"};
    grid.schemes = {"cope", "anc"};
    const std::vector<Sweep_task> tasks = expand(grid);
    ASSERT_EQ(tasks.size(), 3u);
    EXPECT_EQ(tasks[0].scenario, "alice_bob");
    EXPECT_EQ(tasks[0].config.scheme, "cope");
    EXPECT_EQ(tasks[1].config.scheme, "anc");
    EXPECT_EQ(tasks[2].scenario, "chain");
    EXPECT_EQ(tasks[2].config.scheme, "anc");
}

TEST(SweepGrid, UnknownScenarioThrows)
{
    Sweep_grid grid;
    grid.scenarios = {"no_such_topology"};
    EXPECT_THROW(expand(grid), std::out_of_range);
}

TEST(SweepGrid, SchemeSupportedNowhereThrows)
{
    Sweep_grid grid;
    grid.scenarios = {"chain"};
    grid.schemes = {"cope"};
    EXPECT_THROW(expand(grid), std::invalid_argument);
}

TEST(SweepGrid, EmptyAxesThrow)
{
    Sweep_grid grid;
    EXPECT_THROW(expand(grid), std::invalid_argument); // no scenarios

    grid.scenarios = {"chain"};
    grid.snr_db.clear();
    EXPECT_THROW(expand(grid), std::invalid_argument);

    grid.snr_db = {25.0};
    grid.repetitions = 0;
    EXPECT_THROW(expand(grid), std::invalid_argument);
}

} // namespace
} // namespace anc::engine
