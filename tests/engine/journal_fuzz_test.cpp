// Adversarial journal inputs (ENGINE.md "Fault tolerance"): whatever a
// crash, a torn write, bit rot, or a concatenation of shard files does
// to an anc.journal.v1, the loader must never throw past a valid
// header, never deliver the same task index twice through
// preload_from_entries, and journal_compatible must reject every
// header whose *content* was tampered with — even when the line's CRC
// was recomputed to match.

#include "engine/journal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "util/rng.h"

namespace anc::engine {
namespace {

/// The loader's byte CRC (CRC-32/IEEE), reimplemented so the test can
/// forge "valid" lines with tampered payloads.
std::uint32_t crc32_bytes(const std::string& data)
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t n = 0; n < 256; ++n) {
            std::uint32_t c = n;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[n] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xffffffffu;
    for (const char ch : data)
        crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

std::string stamp(const std::string& payload)
{
    char crc[12];
    std::snprintf(crc, sizeof crc, "%08x ", crc32_bytes(payload));
    return crc + payload + "\n";
}

Scenario_registry noisy_registry()
{
    Scenario_registry registry;
    registry.add(std::make_unique<Function_scenario>(
        "noisy", std::vector<std::string>{"anc", "traditional"},
        [](const Scenario_config& config, std::uint64_t seed) {
            Pcg32 rng{seed};
            Scenario_result result;
            result.metrics.packets_attempted = config.exchanges;
            result.metrics.packets_delivered = rng.next_in_range(
                1, static_cast<std::uint32_t>(config.exchanges));
            result.metrics.airtime_symbols = 1.0 + rng.next_double() * 1e-13;
            result.metrics.packet_ber.add(rng.next_double() * 0.05);
            result.series["phase err"].add(rng.next_double());
            result.scalars["iters"] = rng.next_double() * 1e9;
            return result;
        }));
    return registry;
}

Sweep_grid small_grid()
{
    Sweep_grid grid;
    grid.scenarios = {"noisy"};
    grid.snr_db = {10.0, 20.0};
    grid.repetitions = 3;
    return grid;
}

struct Temp_path {
    explicit Temp_path(const std::string& name) : path{testing::TempDir() + name}
    {
        std::remove(path.c_str());
    }
    ~Temp_path() { std::remove(path.c_str()); }
    std::string path;
};

/// Journal shard K/S of the small grid under `seed` and return the raw
/// file bytes.
std::string build_journal_bytes(const Scenario_registry& registry,
                                std::uint64_t seed, std::size_t k, std::size_t s,
                                const std::string& path)
{
    const Sweep_grid grid = small_grid();
    const std::vector<Sweep_task> all = expand(grid, registry);
    const std::vector<Sweep_task> mine = s > 1 ? shard_tasks(all, k, s) : all;
    {
        Journal_writer writer{
            path, Journal_header{grid_fingerprint(grid), seed, all.size(), k, s},
            true};
        Executor_config config;
        config.threads = 1;
        config.base_seed = seed;
        config.on_complete = [&writer](const Task_result& r) { writer.append(r); };
        run_sweep(mine, registry, config);
        writer.flush();
    }
    std::ifstream in{path, std::ios::binary};
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void write_bytes(const std::string& path, const std::string& bytes)
{
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Loaded entries must be usable without double counting: every index
/// unique, every index a real task, preload keeps them all.
void expect_no_double_count(Journal_contents& contents,
                            const std::vector<Sweep_task>& tasks)
{
    std::set<std::uint64_t> indices;
    for (const Journal_entry& entry : contents.entries) {
        EXPECT_LT(entry.index, tasks.size());
        indices.insert(entry.index);
    }
    const std::size_t unique = indices.size();
    const std::map<std::size_t, Task_result> preloaded =
        preload_from_entries(std::move(contents.entries), tasks);
    EXPECT_EQ(preloaded.size(), unique);
}

TEST(JournalFuzz, TruncationAtEveryByteNeverThrowsPastTheHeader)
{
    const Scenario_registry registry = noisy_registry();
    const std::vector<Sweep_task> tasks = expand(small_grid(), registry);
    Temp_path source{"fuzz_trunc_src.anj"};
    Temp_path mutated{"fuzz_trunc.anj"};
    const std::string bytes = build_journal_bytes(registry, 7, 1, 1, source.path);

    // The first byte offset at which magic + header are both complete.
    const std::size_t header_end = bytes.find('\n', bytes.find('\n') + 1) + 1;
    ASSERT_GT(header_end, 0u);

    for (std::size_t len = 0; len <= bytes.size(); ++len) {
        write_bytes(mutated.path, bytes.substr(0, len));
        if (len < header_end) {
            // No complete header yet: rejection must be the documented
            // std::runtime_error, never a crash or a silent success.
            EXPECT_THROW(load_journal(mutated.path), std::runtime_error) << len;
            continue;
        }
        Journal_contents contents;
        ASSERT_NO_THROW(contents = load_journal(mutated.path)) << "length " << len;
        EXPECT_LE(contents.entries.size(), tasks.size());
        expect_no_double_count(contents, tasks);

        // The tailer must agree with the batch loader on the same bytes
        // (it never throws at all — pre-header truncations included).
        Journal_tailer tailer{mutated.path};
        const std::vector<Journal_entry> seen = tailer.poll();
        EXPECT_EQ(seen.size(), contents.entries.size()) << "length " << len;
    }
}

TEST(JournalFuzz, RandomBitFlipsAreDroppedNeverDoubleCounted)
{
    const Scenario_registry registry = noisy_registry();
    const std::vector<Sweep_task> tasks = expand(small_grid(), registry);
    Temp_path source{"fuzz_flip_src.anj"};
    Temp_path mutated{"fuzz_flip.anj"};
    const std::string bytes = build_journal_bytes(registry, 13, 1, 1, source.path);
    const std::size_t header_end = bytes.find('\n', bytes.find('\n') + 1) + 1;

    std::mt19937 rng{20260808u}; // deterministic: failures reproduce
    std::uniform_int_distribution<std::size_t> pos_dist{header_end, bytes.size() - 1};
    std::uniform_int_distribution<int> bit_dist{0, 7};
    std::uniform_int_distribution<int> count_dist{1, 4};

    for (int round = 0; round < 200; ++round) {
        std::string corrupt = bytes;
        const int flips = count_dist(rng);
        for (int f = 0; f < flips; ++f)
            corrupt[pos_dist(rng)] ^= static_cast<char>(1 << bit_dist(rng));
        write_bytes(mutated.path, corrupt);

        Journal_contents contents;
        ASSERT_NO_THROW(contents = load_journal(mutated.path)) << "round " << round;
        // A flipped line is dropped, not misparsed: whatever survives is
        // a subset of the original entries, each index at most once.
        EXPECT_LE(contents.entries.size(), tasks.size());
        expect_no_double_count(contents, tasks);
    }
}

TEST(JournalFuzz, DuplicatedAndShuffledLinesNeverDoubleCount)
{
    const Scenario_registry registry = noisy_registry();
    const std::vector<Sweep_task> tasks = expand(small_grid(), registry);
    Temp_path source{"fuzz_dup_src.anj"};
    Temp_path mutated{"fuzz_dup.anj"};
    const std::string bytes = build_journal_bytes(registry, 29, 1, 1, source.path);

    std::vector<std::string> lines;
    std::istringstream in{bytes};
    for (std::string line; std::getline(in, line);)
        lines.push_back(line + "\n");
    ASSERT_GE(lines.size(), 3u);

    // Every entry line appended 3x in shuffled order — the journal of a
    // worker resumed repeatedly over the same shard.
    std::vector<std::string> entry_lines(lines.begin() + 2, lines.end());
    std::mt19937 rng{4242u};
    std::string out = lines[0] + lines[1];
    for (int repeat = 0; repeat < 3; ++repeat) {
        std::shuffle(entry_lines.begin(), entry_lines.end(), rng);
        for (const std::string& line : entry_lines)
            out += line;
    }
    write_bytes(mutated.path, out);

    Journal_contents contents = load_journal(mutated.path);
    EXPECT_EQ(contents.dropped_lines, 0u);
    EXPECT_EQ(contents.entries.size(), 3 * tasks.size());
    const std::map<std::size_t, Task_result> preloaded =
        preload_from_entries(std::move(contents.entries), tasks);
    EXPECT_EQ(preloaded.size(), tasks.size()); // first occurrence wins, once
}

TEST(JournalFuzz, InterleavedShardJournalsPreloadOnlyOwnedTasks)
{
    const Scenario_registry registry = noisy_registry();
    const std::vector<Sweep_task> all = expand(small_grid(), registry);
    Temp_path src1{"fuzz_il1.anj"};
    Temp_path src2{"fuzz_il2.anj"};
    Temp_path mutated{"fuzz_il.anj"};
    const std::string bytes1 = build_journal_bytes(registry, 7, 1, 2, src1.path);
    const std::string bytes2 = build_journal_bytes(registry, 7, 2, 2, src2.path);

    const auto lines_of = [](const std::string& bytes) {
        std::vector<std::string> lines;
        std::istringstream in{bytes};
        for (std::string line; std::getline(in, line);)
            lines.push_back(line + "\n");
        return lines;
    };
    const std::vector<std::string> l1 = lines_of(bytes1);
    const std::vector<std::string> l2 = lines_of(bytes2);

    // Shard 2's rows spliced into shard 1's journal (a bad concatenation
    // of work-dir files): the loader takes every valid row, and preload
    // against shard 1's task list must keep exactly shard 1's tasks.
    std::string out = l1[0] + l1[1];
    for (std::size_t i = 2; i < std::max(l1.size(), l2.size()); ++i) {
        if (i < l1.size())
            out += l1[i];
        if (i < l2.size())
            out += l2[i];
    }
    write_bytes(mutated.path, out);

    Journal_contents contents = load_journal(mutated.path);
    EXPECT_EQ(contents.entries.size(), all.size());
    const std::vector<Sweep_task> shard1 = shard_tasks(all, 1, 2);
    const std::map<std::size_t, Task_result> preloaded =
        preload_from_entries(std::move(contents.entries), shard1);
    EXPECT_EQ(preloaded.size(), shard1.size());
    for (const auto& [position, result] : preloaded)
        EXPECT_EQ(result.task.index % 2, 0u); // shard 1/2 owns even indices
}

TEST(JournalFuzz, TamperedHeadersWithRecomputedCrcAreRejected)
{
    const Scenario_registry registry = noisy_registry();
    const Sweep_grid grid = small_grid();
    const std::vector<Sweep_task> tasks = expand(grid, registry);
    Temp_path source{"fuzz_hdr_src.anj"};
    Temp_path mutated{"fuzz_hdr.anj"};
    const std::string bytes = build_journal_bytes(registry, 7, 1, 1, source.path);

    const std::size_t magic_end = bytes.find('\n') + 1;
    const std::size_t header_end = bytes.find('\n', magic_end) + 1;
    const std::string magic = bytes.substr(0, magic_end);
    const std::string header_line =
        bytes.substr(magic_end, header_end - magic_end - 1);
    const std::string tail = bytes.substr(header_end);
    const std::string payload = header_line.substr(9); // strip "crc "
    ASSERT_EQ(payload.substr(0, 2), "H ");

    // Each mutation edits one semantic field, then FIXES the CRC so the
    // line is formally valid — journal_compatible must still reject it.
    const auto mutate = [&](const std::string& from, const std::string& to) {
        std::string forged = payload;
        const std::size_t at = forged.find(from);
        ASSERT_NE(at, std::string::npos) << from;
        forged.replace(at, from.size(), to);
        write_bytes(mutated.path, magic + stamp(forged) + tail);

        Journal_contents contents;
        ASSERT_NO_THROW(contents = load_journal(mutated.path)) << from;
        std::string why;
        EXPECT_FALSE(journal_compatible(contents.header, grid, 7, tasks.size(), 1, 1,
                                        &why))
            << "accepted a journal with " << from << " -> " << to;
        EXPECT_FALSE(why.empty());
    };
    mutate("base_seed=7", "base_seed=8");
    mutate("tasks=" + std::to_string(tasks.size()),
           "tasks=" + std::to_string(tasks.size() + 1));
    mutate("shard=1/1", "shard=2/2");
    // One hex digit of the grid fingerprint.
    const std::size_t grid_at = payload.find("grid=");
    ASSERT_NE(grid_at, std::string::npos);
    const char digit = payload[grid_at + 5];
    mutate(payload.substr(grid_at, 6), payload.substr(grid_at, 5)
                                           + (digit == '0' ? "1" : "0"));

    // A header whose required field was REMOVED (CRC fixed) must fail
    // the load outright — incomplete headers are not guessable.
    std::string gutted = payload;
    const std::size_t tasks_at = gutted.find(" tasks=");
    ASSERT_NE(tasks_at, std::string::npos);
    gutted.erase(tasks_at, gutted.find(' ', tasks_at + 1) - tasks_at);
    write_bytes(mutated.path, magic + stamp(gutted) + tail);
    EXPECT_THROW(load_journal(mutated.path), std::runtime_error);
}

} // namespace
} // namespace anc::engine
