#include "engine/emit.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>

#include "engine/engine.h"
#include "util/rng.h"

namespace anc::engine {
namespace {

Sweep_outcome small_outcome()
{
    Scenario_registry registry;
    registry.add(std::make_unique<Function_scenario>(
        "toy", std::vector<std::string>{"anc", "traditional"},
        [](const Scenario_config& config, std::uint64_t seed) {
            Pcg32 rng{seed};
            Scenario_result result;
            result.metrics.packets_attempted = config.exchanges;
            result.metrics.packets_delivered = config.exchanges;
            result.metrics.payload_bits_delivered =
                config.exchanges * config.payload_bits;
            result.metrics.airtime_symbols = 1000.0 + rng.next_double();
            result.metrics.packet_ber.add(0.01);
            result.series["ber_at_alice"].add(0.02);
            result.scalars["overhear_failures"] = 1.0;
            return result;
        }));
    Sweep_grid grid;
    grid.scenarios = {"toy"};
    grid.repetitions = 3;
    Executor_config config;
    config.threads = 1;
    config.base_seed = 11;
    return run_grid(grid, registry, config);
}

std::size_t count_lines(const std::string& text)
{
    std::size_t lines = 0;
    for (const char c : text)
        lines += (c == '\n');
    return lines;
}

TEST(Emit, TasksCsvHasHeaderAndOneRowPerTask)
{
    const Sweep_outcome outcome = small_outcome();
    std::ostringstream out;
    write_tasks_csv(out, outcome.tasks);
    const std::string csv = out.str();
    // One schema comment line, one header, one row per task.
    EXPECT_EQ(count_lines(csv), 2u + outcome.tasks.size());
    EXPECT_EQ(csv.rfind(std::string{"#schema="} + sweep_schema + "\n", 0), 0u);
    EXPECT_NE(csv.find("index,scenario,scheme,math_profile,"), std::string::npos);
    EXPECT_NE(csv.find("toy,anc,exact"), std::string::npos);
    EXPECT_NE(csv.find("toy,traditional,exact"), std::string::npos);
}

TEST(Emit, SummaryCsvHasOneRowPerPoint)
{
    const Sweep_outcome outcome = small_outcome();
    std::ostringstream out;
    write_summary_csv(out, outcome.points);
    const std::string csv = out.str();
    EXPECT_EQ(count_lines(csv), 2u + outcome.points.size());
    EXPECT_EQ(csv.rfind(std::string{"#schema="} + sweep_schema + "\n", 0), 0u);
}

TEST(Emit, JsonIsBalancedAndCarriesSchema)
{
    const Sweep_outcome outcome = small_outcome();
    const std::string json = to_json(outcome.tasks, outcome.points);

    EXPECT_EQ(json.rfind(std::string{"{\"schema\":\""} + sweep_schema + "\"", 0), 0u);
    EXPECT_NE(json.find("\"math_profile\":\"exact\""), std::string::npos);
    long depth = 0;
    for (const char c : json) {
        depth += (c == '{') - (c == '}');
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_NE(json.find("\"tasks\":["), std::string::npos);
    EXPECT_NE(json.find("\"points\":["), std::string::npos);
    EXPECT_NE(json.find("\"ber_at_alice\""), std::string::npos);
    EXPECT_NE(json.find("\"overhear_failures\":3"), std::string::npos); // summed
}

TEST(Emit, JsonIsByteStableAcrossIdenticalSweeps)
{
    const Sweep_outcome a = small_outcome();
    const Sweep_outcome b = small_outcome();
    EXPECT_EQ(to_json(a.tasks, a.points), to_json(b.tasks, b.points));
}

TEST(Emit, SummaryTablePrintsEveryPoint)
{
    const Sweep_outcome outcome = small_outcome();
    // Smoke: must not crash on a tmpfile stream and must write something.
    std::FILE* out = std::tmpfile();
    ASSERT_NE(out, nullptr);
    print_summary_table(out, outcome.points);
    EXPECT_GT(std::ftell(out), 0);
    std::fclose(out);
}

TEST(Emit, PairedGainMatchesRunRatios)
{
    const Sweep_outcome outcome = small_outcome();
    const Point_key anc_key = key_of(outcome.tasks[0].task);
    Point_key traditional_key = anc_key;
    traditional_key.scheme = "traditional";

    const Cdf gains = paired_gain(outcome.tasks, anc_key, traditional_key);
    ASSERT_EQ(gains.count(), 3u);
    // toy delivers everything in both schemes, and scheme-collapsed
    // seeding gives both the same jitter draw, so every gain is 1.
    EXPECT_NEAR(gains.mean(), 1.0, 1e-12);
}

TEST(Emit, PairedGainBaselinePolicy)
{
    Sweep_outcome outcome = small_outcome();
    const Point_key anc_key = key_of(outcome.tasks[0].task);
    Point_key traditional_key = anc_key;
    traditional_key.scheme = "traditional";

    // Fail one traditional repetition: zero delivered -> zero throughput.
    for (Task_result& task : outcome.tasks) {
        if (task.task.config.scheme == "traditional" && task.task.repetition == 1)
            task.result.metrics.payload_bits_delivered = 0;
    }

    EXPECT_THROW(paired_gain(outcome.tasks, anc_key, traditional_key),
                 std::domain_error);
    const Cdf gains = paired_gain(outcome.tasks, anc_key, traditional_key,
                                  Baseline_policy::skip_failed);
    EXPECT_EQ(gains.count(), 2u); // the failed repetition is dropped
}

} // namespace
} // namespace anc::engine
