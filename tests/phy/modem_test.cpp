#include "phy/modem.h"

#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "channel/link.h"
#include "dsp/ops.h"
#include "util/rng.h"

namespace anc::phy {
namespace {

Frame_header make_header(std::uint16_t payload_bits, std::uint16_t seq = 1)
{
    Frame_header header;
    header.src = 10;
    header.dst = 20;
    header.seq = seq;
    header.payload_bits = payload_bits;
    return header;
}

TEST(Modem, LoopbackRoundTrip)
{
    Pcg32 rng{451};
    const Bits payload = random_bits(512, rng);
    const Modem modem;
    const dsp::Signal signal = modem.modulate_frame(make_header(512), payload);
    const auto frame = modem.receive(signal);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->header, make_header(512));
    EXPECT_EQ(frame->payload, payload);
    EXPECT_EQ(frame->pilot_errors, 0u);
}

TEST(Modem, RoundTripThroughDistortedChannel)
{
    Pcg32 rng{452};
    const Bits payload = random_bits(256, rng);
    const Modem modem;
    dsp::Signal signal = modem.modulate_frame(make_header(256), payload, 0.9);

    chan::Link_params params;
    params.gain = 0.2;
    params.phase = -2.2;
    params.delay = 17;
    signal = chan::Link_channel{params}.apply(signal);
    chan::Awgn noise{0.2 * 0.2 / 316.0, Pcg32{453}}; // ~25 dB post-attenuation
    noise.add_in_place(signal);

    const auto frame = modem.receive(signal);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->payload, payload);
}

TEST(Modem, FrameBitsAreWhitened)
{
    // A constant payload must not appear as a constant run on the air.
    const Bits zeros(600, 0);
    const Modem modem;
    const Bits on_air = modem.frame_bits(make_header(600), zeros);
    const Frame_offsets o = frame_offsets(600);
    std::size_t ones = 0;
    for (std::size_t i = o.payload; i < o.tail_crc; ++i)
        ones += on_air[i];
    EXPECT_NEAR(static_cast<double>(ones) / 600.0, 0.5, 0.1);
}

TEST(Modem, DescrambleInvertsWhitening)
{
    Pcg32 rng{454};
    const Bits payload = random_bits(128, rng);
    const Modem modem;
    const Bits on_air = modem.frame_bits(make_header(128), payload);
    const Frame_offsets o = frame_offsets(128);
    const Bits whitened{on_air.begin() + static_cast<long>(o.payload),
                        on_air.begin() + static_cast<long>(o.payload + 128)};
    EXPECT_NE(whitened, payload);
    EXPECT_EQ(modem.descramble(whitened), payload);
}

TEST(Modem, NoFrameInNoise)
{
    Pcg32 rng{455};
    dsp::Signal noise_only(2000, dsp::Sample{0.0, 0.0});
    chan::Awgn noise{1.0, Pcg32{456}};
    noise.add_in_place(noise_only);
    const Modem modem;
    EXPECT_FALSE(modem.receive(noise_only).has_value());
    (void)rng;
}

TEST(Modem, SurvivesSparseBitErrors)
{
    // Pilot tolerance: flips inside the pilot region shouldn't kill sync
    // as long as they stay under the tolerance.
    Pcg32 rng{457};
    const Bits payload = random_bits(64, rng);
    const Modem modem;
    Bits frame_bits = modem.frame_bits(make_header(64), payload);
    frame_bits[2] ^= 1u;  // pilot bit
    frame_bits[40] ^= 1u; // pilot bit
    const dsp::Signal signal = modem.modulate(frame_bits);
    const auto frame = modem.receive(signal);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->pilot_errors, 2u);
    EXPECT_EQ(frame->payload, payload);
}

TEST(Modem, HeaderCorruptionFailsReceive)
{
    Pcg32 rng{458};
    const Bits payload = random_bits(64, rng);
    const Modem modem;
    Bits frame_bits = modem.frame_bits(make_header(64), payload);
    frame_bits[80] ^= 1u; // header bit -> CRC mismatch
    EXPECT_FALSE(modem.receive(modem.modulate(frame_bits)).has_value());
}

TEST(Modem, ReportsPilotPosition)
{
    Pcg32 rng{460};
    const Bits payload = random_bits(64, rng);
    const Modem modem;
    dsp::Signal signal = modem.modulate_frame(make_header(64), payload);
    signal = dsp::delayed(signal, 50);
    const auto frame = modem.receive(signal);
    ASSERT_TRUE(frame.has_value());
    // 50 samples of leading silence put the pilot at bit position ~50.
    EXPECT_NEAR(static_cast<double>(frame->pilot_position), 50.0, 2.0);
}

TEST(Modem, PayloadCorruptionFailsReceive)
{
    // A clean receive must be verifiably clean (payload FCS).
    Pcg32 rng{459};
    const Bits payload = random_bits(64, rng);
    const Modem modem;
    Bits frame_bits = modem.frame_bits(make_header(64), payload);
    const Frame_offsets o = frame_offsets(64);
    frame_bits[o.payload + 5] ^= 1u;
    EXPECT_FALSE(modem.receive(modem.modulate(frame_bits)).has_value());
}

} // namespace
} // namespace anc::phy
