#include "phy/header.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace anc::phy {
namespace {

TEST(Header, EncodeDecodeRoundTrip)
{
    Frame_header header;
    header.src = 3;
    header.dst = 7;
    header.seq = 4242;
    header.payload_bits = 1024;
    const Bits bits = encode_header(header);
    EXPECT_EQ(bits.size(), header_length);
    const auto decoded = decode_header(bits);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, header);
}

TEST(Header, AllFieldBoundaries)
{
    Frame_header header;
    header.src = 255;
    header.dst = 0;
    header.seq = 65535;
    header.payload_bits = 65535;
    const auto decoded = decode_header(encode_header(header));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, header);
}

TEST(Header, CrcRejectsCorruption)
{
    Frame_header header;
    header.src = 1;
    header.dst = 2;
    header.seq = 99;
    header.payload_bits = 500;
    Bits bits = encode_header(header);
    int rejected = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
        bits[i] ^= 1u;
        if (!decode_header(bits))
            ++rejected;
        bits[i] ^= 1u;
    }
    // Every single-bit flip (including within the CRC itself) must be
    // rejected.
    EXPECT_EQ(rejected, static_cast<int>(bits.size()));
}

TEST(Header, ShortInputRejected)
{
    const Bits short_bits(32, 0);
    EXPECT_FALSE(decode_header(short_bits).has_value());
}

TEST(Header, RandomBitsRarelyValidate)
{
    Pcg32 rng{411};
    int accepted = 0;
    for (int i = 0; i < 2000; ++i) {
        const Bits bits = random_bits(header_length, rng);
        accepted += decode_header(bits).has_value();
    }
    // 16-bit CRC: acceptance probability ~ 2^-16 per trial.
    EXPECT_LE(accepted, 1);
}

} // namespace
} // namespace anc::phy
