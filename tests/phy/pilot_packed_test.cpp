// The bit-domain pilot search (phy/pilot.h) claims to be a pure speedup
// of the historical byte-per-bit scan: identical Pattern_match — both
// position AND error count — for every (haystack, pattern, from, to,
// max_errors).  find_pattern_scalar is a frozen transcription of that
// historical loop, so these property tests randomize over bit strings
// and compare the packed scan against it exactly, leaning on the edges
// where the packing could plausibly diverge:
//
//   * pattern lengths straddling the 64-bit word boundary (63/64/65),
//   * from/to clamping, including from beyond the last fitting start,
//   * max_errors 0 (early break on first perfect match), tiny, and
//     pattern-length (everything matches; earliest minimum must win),
//   * planted tie positions with equal error counts.

#include "phy/pilot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "util/bits.h"
#include "util/rng.h"

namespace anc::phy {
namespace {

void expect_same_match(const std::optional<Pattern_match>& packed,
                       const std::optional<Pattern_match>& reference,
                       const char* what)
{
    ASSERT_EQ(packed.has_value(), reference.has_value()) << what;
    if (packed) {
        EXPECT_EQ(packed->position, reference->position) << what;
        EXPECT_EQ(packed->errors, reference->errors) << what;
    }
}

TEST(PilotPacked, RandomizedAgainstScalarReference)
{
    Pcg32 rng{0x5ca1ab1e, 5};
    // Pattern lengths around the word boundary plus short/odd sizes; the
    // 2-word stride (65..127) and 1-word stride (<= 63) are both hit.
    const std::size_t pattern_lengths[] = {1, 3, 8, 17, 63, 64, 65, 96, 127};
    const std::size_t haystack_lengths[] = {1, 7, 63, 64, 65, 130, 512, 2304};
    for (const std::size_t pat_len : pattern_lengths) {
        const Bits pattern = random_bits(pat_len, rng);
        const Packed_pattern packed_pattern{pattern};
        for (const std::size_t hay_len : haystack_lengths) {
            const Bits bits = random_bits(hay_len, rng);
            const Packed_bits packed_bits{bits};
            const std::size_t max_errors_cases[] = {0, 1, 8, pat_len};
            for (const std::size_t max_errors : max_errors_cases) {
                // Full span, a clamped-past-the-end `to`, an interior
                // window, and a from beyond the last fitting start.
                const std::size_t spans[][2] = {
                    {0, hay_len},
                    {0, hay_len * 2 + 7},
                    {hay_len / 4, (3 * hay_len) / 4},
                    {hay_len + 1, hay_len + 5},
                };
                for (const auto& span : spans) {
                    const auto reference = find_pattern_scalar(
                        bits, pattern, span[0], span[1], max_errors);
                    const auto via_span = find_pattern(bits, pattern, span[0],
                                                       span[1], max_errors);
                    const auto via_packed =
                        find_pattern(packed_bits, packed_pattern, span[0],
                                     span[1], max_errors);
                    expect_same_match(via_span, reference, "span overload");
                    expect_same_match(via_packed, reference, "packed overload");
                }
            }
        }
    }
}

TEST(PilotPacked, TiePositionsResolveIdentically)
{
    // Two identical planted copies of the pattern: both positions have
    // zero errors and the scan must return the earlier one.  Then with
    // max_errors large enough that *every* position qualifies, the
    // earliest minimum must still win.
    Pcg32 rng{0x7e57, 9};
    const Bits pattern = random_bits(64, rng);
    Bits bits = random_bits(400, rng);
    for (std::size_t i = 0; i < 64; ++i) {
        bits[100 + i] = pattern[i];
        bits[260 + i] = pattern[i];
    }
    const Packed_bits packed_bits{bits};
    const Packed_pattern packed_pattern{pattern};
    for (const std::size_t max_errors : {std::size_t{0}, std::size_t{64}}) {
        const auto reference =
            find_pattern_scalar(bits, pattern, 0, bits.size(), max_errors);
        const auto packed = find_pattern(packed_bits, packed_pattern, 0,
                                         bits.size(), max_errors);
        ASSERT_TRUE(reference.has_value());
        EXPECT_EQ(reference->position, 100u);
        expect_same_match(packed, reference, "tie");
    }
}

TEST(PilotPacked, CachedPilotPatternsMatchAdHocPacking)
{
    // The span overload routes the two protocol patterns through the
    // per-process packed caches (pointer identity); the result must be
    // the same as packing those bits fresh.
    Pcg32 rng{0xcafe, 2};
    Bits bits = random_bits(600, rng);
    const Bits& pilot = pilot_sequence();
    const Bits& mirror = pilot_mirrored();
    for (std::size_t i = 0; i < pilot_length; ++i) {
        bits[37 + i] = pilot[i];
        bits[450 + i] = mirror[i];
    }
    const Packed_bits packed_bits{bits};
    for (const Bits* pattern : {&pilot, &mirror}) {
        const auto reference =
            find_pattern_scalar(bits, *pattern, 0, bits.size(), 6);
        const auto cached = find_pattern(bits, *pattern, 0, bits.size(), 6);
        const auto fresh = find_pattern(packed_bits, Packed_pattern{*pattern}, 0,
                                        bits.size(), 6);
        expect_same_match(cached, reference, "cached pattern");
        expect_same_match(fresh, reference, "fresh packing");
    }
    // find_pilot delegates to the same machinery.
    const auto via_find_pilot = find_pilot(bits, 6);
    const auto pilot_reference =
        find_pattern_scalar(bits, pilot, 0, bits.size() - pilot_length, 6);
    expect_same_match(via_find_pilot, pilot_reference, "find_pilot");
}

TEST(PilotPacked, DegenerateCallsReturnNothing)
{
    Pcg32 rng{0xd09, 1};
    const Bits bits = random_bits(32, rng);
    const Bits pattern = random_bits(64, rng);
    // Haystack shorter than the pattern, and an empty pattern.
    EXPECT_FALSE(find_pattern(bits, pattern, 0, bits.size(), 8).has_value());
    EXPECT_FALSE(find_pattern(bits, Bits{}, 0, bits.size(), 8).has_value());
    const Packed_bits packed_bits{bits};
    const Packed_pattern packed_pattern{pattern};
    EXPECT_FALSE(
        find_pattern(packed_bits, packed_pattern, 0, bits.size(), 8).has_value());
    EXPECT_FALSE(find_pattern(packed_bits, Packed_pattern{Bits{}}, 0, bits.size(), 8)
                     .has_value());
}

} // namespace
} // namespace anc::phy
