#include "phy/detector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>

#include "channel/awgn.h"
#include "channel/link.h"
#include "dsp/energy_scan.h"
#include "dsp/msk.h"
#include "dsp/ops.h"
#include "util/bits.h"
#include "util/db.h"
#include "util/rng.h"

namespace anc::phy {
namespace {

constexpr double noise_power = 0.01; // SNR 20 dB for unit signals

dsp::Signal noisy(dsp::Signal signal, std::uint64_t seed, double power = noise_power)
{
    chan::Awgn noise{power, Pcg32{seed}};
    noise.add_in_place(signal);
    return signal;
}

dsp::Signal msk_burst(std::size_t bits_count, std::uint64_t seed, double amplitude = 1.0)
{
    Pcg32 rng{seed};
    const Bits bits = random_bits(bits_count, rng);
    const dsp::Msk_modulator modulator{amplitude, 0.0};
    return modulator.modulate(bits);
}

TEST(PacketDetector, FindsPacketInNoise)
{
    dsp::Signal stream(200, dsp::Sample{0.0, 0.0});
    const dsp::Signal burst = msk_burst(300, 431);
    dsp::accumulate(stream, burst, 200);
    stream.resize(stream.size() + 150, dsp::Sample{0.0, 0.0});
    stream = noisy(std::move(stream), 432);

    const Packet_detector detector{noise_power};
    const auto bounds = detector.detect(stream);
    ASSERT_TRUE(bounds.has_value());
    EXPECT_NEAR(static_cast<double>(bounds->begin), 200.0, 20.0);
    EXPECT_NEAR(static_cast<double>(bounds->end), 501.0, 20.0);
}

TEST(PacketDetector, PureNoiseIsNoPacket)
{
    dsp::Signal stream(1000, dsp::Sample{0.0, 0.0});
    stream = noisy(std::move(stream), 433);
    const Packet_detector detector{noise_power};
    EXPECT_FALSE(detector.detect(stream).has_value());
}

TEST(PacketDetector, WeakSignalBelowThresholdIgnored)
{
    // A signal only 10 dB above noise must not trip a 20 dB threshold.
    dsp::Signal stream(100, dsp::Sample{0.0, 0.0});
    const dsp::Signal burst = msk_burst(200, 434, std::sqrt(noise_power * 10.0));
    dsp::accumulate(stream, burst, 100);
    stream = noisy(std::move(stream), 435);
    const Packet_detector detector{noise_power};
    EXPECT_FALSE(detector.detect(stream).has_value());
}

TEST(PacketDetector, ShortStreamHandled)
{
    const Packet_detector detector{noise_power};
    EXPECT_FALSE(detector.detect(dsp::Signal(4, dsp::Sample{1.0, 0.0})).has_value());
}

TEST(InterferenceDetector, CleanPacketNotInterfered)
{
    const dsp::Signal packet = noisy(msk_burst(600, 436), 437);
    const Interference_detector detector{noise_power};
    const Interference_report report = detector.analyze(packet);
    EXPECT_FALSE(report.interfered);
}

TEST(InterferenceDetector, CollisionDetectedWithOverlapRegion)
{
    // Packet A starts at 0; packet B (equal power) starts at 300.
    dsp::Signal mix = msk_burst(600, 438);
    const dsp::Signal b = dsp::rotated(msk_burst(600, 439), 0.9);
    dsp::accumulate(mix, b, 300);
    mix = noisy(std::move(mix), 440);

    const Interference_detector detector{noise_power};
    const Interference_report report = detector.analyze(mix);
    ASSERT_TRUE(report.interfered);
    // Overlap is [300, 601); allow window-size slop.
    EXPECT_NEAR(static_cast<double>(report.overlap_begin), 300.0, 80.0);
    EXPECT_GT(report.overlap_end, report.overlap_begin + 200);
}

TEST(InterferenceDetector, WeakInterfererStillDetected)
{
    // SIR +6 dB (interferer at quarter power) must still trip the
    // detector at SNR 20 dB.
    dsp::Signal mix = msk_burst(600, 441);
    const dsp::Signal b = dsp::scaled(dsp::rotated(msk_burst(600, 442), 1.7), 0.5);
    dsp::accumulate(mix, b, 200);
    mix = noisy(std::move(mix), 443);
    const Interference_detector detector{noise_power};
    EXPECT_TRUE(detector.analyze(mix).interfered);
}

TEST(InterferenceDetector, ShortInputNotInterfered)
{
    const Interference_detector detector{noise_power};
    EXPECT_FALSE(detector.analyze(dsp::Signal(10, dsp::Sample{1.0, 0.0})).interfered);
}

TEST(InterferenceDetector, EnvelopeMergesDriftDips)
{
    // With a relative carrier-frequency offset, cos(theta - phi) sweeps
    // through zero and the collision's envelope goes momentarily
    // constant: the variance dips below threshold *inside* the overlap.
    // The detector must report one region spanning the dips, not the
    // longest fragment.
    Pcg32 rng{447};
    const Bits bits_a = random_bits(1600, rng);
    const Bits bits_b = random_bits(1600, rng);
    const dsp::Msk_modulator mod_a{1.0, 0.0};
    const dsp::Msk_modulator mod_b{0.95, 0.0};
    dsp::Signal mix = mod_a.modulate(bits_a);
    // drift 0.004 rad/sample: the relative phase crosses pi/2 multiple
    // times over 1600 samples.
    chan::Link_params drift;
    drift.gain = 1.0;
    drift.phase = 0.9;
    drift.phase_drift = 0.004;
    dsp::accumulate(mix, chan::Link_channel{drift}.apply(mod_b.modulate(bits_b)), 200);
    mix = noisy(std::move(mix), 448);

    const Interference_detector detector{noise_power};
    const Interference_report report = detector.analyze(mix);
    ASSERT_TRUE(report.interfered);
    // One region covering (almost) the whole true overlap [200, 1601).
    EXPECT_LT(report.overlap_begin, 300u);
    EXPECT_GT(report.overlap_end, 1400u);
}

TEST(InterferenceDetector, PeakRatioReported)
{
    dsp::Signal mix = msk_burst(400, 444);
    dsp::accumulate(mix, dsp::rotated(msk_burst(400, 445), 0.4), 100);
    mix = noisy(std::move(mix), 446);
    const Interference_detector detector{noise_power};
    const Interference_report report = detector.analyze(mix);
    EXPECT_GT(report.peak_ratio_db, 10.0);
}

// ------------------------------------------------------- byte identity
// The detector scans were rewritten into block-vectorizable forms (the
// packet detector's threshold search, the interference analyzer's
// hoisted ratio pass).  These references transcribe the historical
// sequential loops; the rewritten detectors must agree on every field,
// byte for byte, across clean, collided, drifting, and noise-only
// inputs.

std::optional<Packet_bounds> reference_detect(dsp::Signal_view signal,
                                              double noise_power_value,
                                              Packet_detector::Config config)
{
    if (signal.size() < config.window)
        return std::nullopt;
    const dsp::Energy_scan scan = dsp::scan_energy(signal, config.window);
    const std::vector<double>& mean = scan.window_mean;
    const double threshold = noise_power_value * from_db(config.energy_threshold_db);
    std::size_t first = mean.size();
    for (std::size_t i = 0; i < mean.size(); ++i) {
        if (mean[i] > threshold) {
            first = i;
            break;
        }
    }
    if (first == mean.size())
        return std::nullopt;
    std::size_t last = first;
    for (std::size_t i = mean.size(); i-- > first;) {
        if (mean[i] > threshold) {
            last = i;
            break;
        }
    }
    Packet_bounds bounds;
    bounds.begin = first;
    bounds.end = std::min(last + config.window, signal.size());
    return bounds;
}

Interference_report reference_analyze(dsp::Signal_view packet,
                                      double noise_power_value,
                                      Interference_detector::Config config)
{
    Interference_report report;
    if (packet.size() < config.window)
        return report;
    const dsp::Energy_scan scan = dsp::scan_energy(packet, config.window);
    const std::vector<double>& mean = scan.window_mean;
    const std::vector<double>& variance = scan.window_variance;
    const double threshold = from_db(config.variance_threshold_db);
    const double sigma2 = noise_power_value;
    std::size_t run = 0;
    std::size_t run_start = 0;
    std::size_t first_begin = 0;
    std::size_t last_end = 0;
    bool found = false;
    double peak_ratio = 1e-12;
    for (std::size_t i = 0; i < variance.size(); ++i) {
        const double signal_power = std::max(mean[i] - sigma2, 1e-12);
        const double clean_variance = 2.0 * signal_power * sigma2 + sigma2 * sigma2;
        const double ratio = variance[i] / clean_variance;
        peak_ratio = std::max(peak_ratio, ratio);
        if (ratio > threshold) {
            if (run == 0)
                run_start = i;
            ++run;
            if (run >= config.min_run) {
                if (!found) {
                    first_begin = run_start;
                    found = true;
                }
                last_end = i + 1;
            }
        } else {
            run = 0;
        }
    }
    report.peak_ratio_db = std::max(0.0, to_db(peak_ratio));
    if (found) {
        report.interfered = true;
        report.overlap_begin = first_begin;
        report.overlap_end = std::min(last_end + config.window, packet.size());
    }
    return report;
}

std::vector<dsp::Signal> identity_workloads()
{
    std::vector<dsp::Signal> workloads;
    // Clean burst with silent head/tail (exercises both edge scans).
    {
        dsp::Signal stream(137, dsp::Sample{0.0, 0.0});
        dsp::accumulate(stream, msk_burst(500, 901), 137);
        stream.resize(stream.size() + 93, dsp::Sample{0.0, 0.0});
        workloads.push_back(noisy(std::move(stream), 902));
    }
    // Collision with drift dips (the envelope-merge path).
    {
        dsp::Signal mix = msk_burst(900, 903);
        chan::Link_params drift;
        drift.phase = 0.7;
        drift.phase_drift = 0.004;
        dsp::accumulate(mix,
                        chan::Link_channel{drift}.apply(msk_burst(900, 904, 0.9)),
                        150);
        workloads.push_back(noisy(std::move(mix), 905));
    }
    // Pure noise (no packet at all; detect must agree on nullopt).
    workloads.push_back(noisy(dsp::Signal(700, dsp::Sample{0.0, 0.0}), 906));
    // Weak burst straddling the threshold.
    workloads.push_back(noisy(msk_burst(300, 907, 0.25), 908));
    return workloads;
}

TEST(PacketDetector, BlockScanIsByteIdenticalToSequentialScan)
{
    const Packet_detector::Config config;
    const Packet_detector detector{noise_power, config};
    for (const dsp::Signal& stream : identity_workloads()) {
        const auto actual = detector.detect(stream);
        const auto expected = reference_detect(stream, noise_power, config);
        ASSERT_EQ(actual.has_value(), expected.has_value());
        if (actual) {
            EXPECT_EQ(actual->begin, expected->begin);
            EXPECT_EQ(actual->end, expected->end);
        }
    }
}

TEST(InterferenceDetector, HoistedRatioPassIsByteIdenticalToFusedLoop)
{
    const Interference_detector::Config config;
    const Interference_detector detector{noise_power, config};
    for (const dsp::Signal& packet : identity_workloads()) {
        const Interference_report actual = detector.analyze(packet);
        const Interference_report expected =
            reference_analyze(packet, noise_power, config);
        EXPECT_EQ(actual.interfered, expected.interfered);
        EXPECT_EQ(actual.overlap_begin, expected.overlap_begin);
        EXPECT_EQ(actual.overlap_end, expected.overlap_end);
        // Exact ==, not NEAR: the ratio arithmetic per window and the
        // max reduction must be bit-preserved by the rewrite.
        EXPECT_EQ(actual.peak_ratio_db, expected.peak_ratio_db);
    }
}

} // namespace
} // namespace anc::phy
