#include "phy/pilot.h"

#include <gtest/gtest.h>

#include "util/bits.h"
#include "util/rng.h"

namespace anc::phy {
namespace {

TEST(Pilot, Is64BitsAndStable)
{
    EXPECT_EQ(pilot_sequence().size(), pilot_length);
    EXPECT_EQ(pilot_sequence(), pilot_sequence());
}

TEST(Pilot, MirroredIsReversed)
{
    EXPECT_EQ(pilot_mirrored(), mirrored(pilot_sequence()));
}

TEST(Pilot, IsBalanced)
{
    std::size_t ones = 0;
    for (const auto bit : pilot_sequence())
        ones += bit;
    EXPECT_GE(ones, 20u);
    EXPECT_LE(ones, 44u);
}

TEST(Pilot, FindExactMatch)
{
    Pcg32 rng{401};
    Bits haystack = random_bits(100, rng);
    const Bits& pilot = pilot_sequence();
    haystack.insert(haystack.begin() + 37, pilot.begin(), pilot.end());
    const auto match = find_pilot(haystack, 0);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->position, 37u);
    EXPECT_EQ(match->errors, 0u);
}

TEST(Pilot, FindWithErrors)
{
    Pcg32 rng{402};
    Bits haystack = random_bits(60, rng);
    Bits noisy_pilot = pilot_sequence();
    noisy_pilot[3] ^= 1u;
    noisy_pilot[40] ^= 1u;
    haystack.insert(haystack.end(), noisy_pilot.begin(), noisy_pilot.end());
    const auto match = find_pilot(haystack, 6);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->position, 60u);
    EXPECT_EQ(match->errors, 2u);
}

TEST(Pilot, NoMatchBeyondTolerance)
{
    Pcg32 rng{403};
    Bits noisy_pilot = pilot_sequence();
    for (int i = 0; i < 10; ++i)
        noisy_pilot[i * 6] ^= 1u;
    const auto match = find_pilot(noisy_pilot, 6);
    EXPECT_FALSE(match.has_value());
}

TEST(Pilot, RarelyMatchesRandomBits)
{
    Pcg32 rng{404};
    int false_positives = 0;
    for (int trial = 0; trial < 200; ++trial) {
        const Bits noise = random_bits(512, rng);
        if (find_pilot(noise, 6))
            ++false_positives;
    }
    // With 64 bits and tolerance 6 the per-position match probability is
    // ~ 1e-11; across 200*449 positions expect essentially none.
    EXPECT_EQ(false_positives, 0);
}

TEST(Pilot, FindPatternRangeRespected)
{
    Bits haystack(200, 0);
    const Bits pattern{1, 1, 1, 1};
    haystack[100] = haystack[101] = haystack[102] = haystack[103] = 1;
    EXPECT_FALSE(find_pattern(haystack, pattern, 0, 50, 0).has_value());
    const auto match = find_pattern(haystack, pattern, 0, 150, 0);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->position, 100u);
}

TEST(Pilot, FindPatternPrefersFewestErrors)
{
    Bits haystack(64, 0);
    const Bits pattern{1, 1, 1, 1};
    // Position 10: 3 of 4 bits match; position 30: exact match.
    haystack[10] = haystack[11] = haystack[12] = 1;
    haystack[30] = haystack[31] = haystack[32] = haystack[33] = 1;
    const auto match = find_pattern(haystack, pattern, 0, haystack.size(), 1);
    ASSERT_TRUE(match.has_value());
    EXPECT_EQ(match->position, 30u);
    EXPECT_EQ(match->errors, 0u);
}

TEST(Pilot, EmptyOrOversizedInputs)
{
    const Bits pattern{1, 0};
    EXPECT_FALSE(find_pattern(Bits{}, pattern, 0, 10, 0).has_value());
    EXPECT_FALSE(find_pattern(Bits{1}, pattern, 0, 10, 0).has_value());
    EXPECT_FALSE(find_pilot(Bits(32, 0), 6).has_value());
}

} // namespace
} // namespace anc::phy
