#include "phy/frame.h"

#include <gtest/gtest.h>

#include "phy/pilot.h"
#include "util/rng.h"

namespace anc::phy {
namespace {

Frame_header test_header(std::uint16_t payload_bits)
{
    Frame_header header;
    header.src = 1;
    header.dst = 2;
    header.seq = 77;
    header.payload_bits = payload_bits;
    return header;
}

TEST(Frame, LayoutLengths)
{
    EXPECT_EQ(frame_length(0), 320u);
    EXPECT_EQ(frame_length(1000), 1320u);
    const Frame_offsets o = frame_offsets(500);
    EXPECT_EQ(o.pilot, 0u);
    EXPECT_EQ(o.header, 64u);
    EXPECT_EQ(o.crc, 128u);
    EXPECT_EQ(o.payload, 160u);
    EXPECT_EQ(o.tail_crc, 660u);
    EXPECT_EQ(o.tail_header, 692u);
    EXPECT_EQ(o.tail_pilot, 756u);
    EXPECT_EQ(o.end, 820u);
}

TEST(Frame, BuildPlacesFields)
{
    Pcg32 rng{421};
    const Bits payload = random_bits(200, rng);
    const Bits frame = build_frame(test_header(200), payload);
    ASSERT_EQ(frame.size(), frame_length(200));

    const Frame_offsets o = frame_offsets(200);
    const Bits head_pilot{frame.begin(), frame.begin() + 64};
    EXPECT_EQ(head_pilot, pilot_sequence());
    const Bits tail_pilot{frame.begin() + static_cast<long>(o.tail_pilot), frame.end()};
    EXPECT_EQ(tail_pilot, pilot_mirrored());
    const Bits body{frame.begin() + static_cast<long>(o.payload),
                    frame.begin() + static_cast<long>(o.payload + 200)};
    EXPECT_EQ(body, payload);
}

TEST(Frame, ParseRoundTrip)
{
    Pcg32 rng{422};
    const Bits payload = random_bits(333, rng);
    const Frame_header header = test_header(333);
    const Bits frame = build_frame(header, payload);
    const auto parsed = parse_frame_at(frame, 0);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->header, header);
    EXPECT_EQ(parsed->payload, payload);
    EXPECT_TRUE(parsed->crc_ok);
}

TEST(Frame, CrcReportsPayloadCorruption)
{
    Pcg32 rng{427};
    const Bits payload = random_bits(200, rng);
    Bits frame = build_frame(test_header(200), payload);
    const Frame_offsets o = frame_offsets(200);
    frame[o.payload + 77] ^= 1u;
    const auto parsed = parse_frame_at(frame, 0);
    ASSERT_TRUE(parsed.has_value()); // header intact, frame parses
    EXPECT_FALSE(parsed->crc_ok);    // but the payload check flags it
}

TEST(Frame, ParseWithLeadingGarbage)
{
    Pcg32 rng{423};
    const Bits payload = random_bits(64, rng);
    const Bits frame = build_frame(test_header(64), payload);
    Bits stream = random_bits(50, rng);
    stream.insert(stream.end(), frame.begin(), frame.end());
    const auto parsed = parse_frame_at(stream, 50);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->payload, payload);
}

TEST(Frame, ParseRejectsTruncatedFrame)
{
    Pcg32 rng{424};
    const Bits payload = random_bits(100, rng);
    Bits frame = build_frame(test_header(100), payload);
    frame.resize(150); // cut inside the payload
    EXPECT_FALSE(parse_frame_at(frame, 0).has_value());
}

TEST(Frame, ParseRejectsCorruptHeader)
{
    Pcg32 rng{425};
    const Bits payload = random_bits(100, rng);
    Bits frame = build_frame(test_header(100), payload);
    frame[70] ^= 1u; // inside the header
    EXPECT_FALSE(parse_frame_at(frame, 0).has_value());
}

TEST(Frame, ReversedFrameIsAValidFrameWithReversedPayload)
{
    // The mirror structure (§7.4): a time-reversed frame parses as a
    // frame whose payload is reversed.  Its CRC field refers to the
    // *forward* payload, so crc_ok is false in the reversed domain —
    // which is fine: backward decoding is an ANC path and ignores it.
    Pcg32 rng{426};
    const Bits payload = random_bits(128, rng);
    const Frame_header header = test_header(128);
    const Bits frame = build_frame(header, payload);
    const Bits reversed_frame = mirrored(frame);
    const auto parsed = parse_frame_at(reversed_frame, 0);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->header, header);
    EXPECT_EQ(parsed->payload, mirrored(payload));
    EXPECT_FALSE(parsed->crc_ok);
}

TEST(Frame, EmptyPayload)
{
    const Bits frame = build_frame(test_header(0), Bits{});
    EXPECT_EQ(frame.size(), 320u);
    const auto parsed = parse_frame_at(frame, 0);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->payload.empty());
    EXPECT_TRUE(parsed->crc_ok);
}

} // namespace
} // namespace anc::phy
