#include "net/packet.h"

#include <gtest/gtest.h>

#include "net/node.h"
#include "util/rng.h"

namespace anc::net {
namespace {

TEST(Packet, HeaderForPacket)
{
    Packet packet;
    packet.src = 3;
    packet.dst = 9;
    packet.seq = 1234;
    packet.payload = Bits(100, 1);
    const phy::Frame_header header = header_for(packet);
    EXPECT_EQ(header.src, 3);
    EXPECT_EQ(header.dst, 9);
    EXPECT_EQ(header.seq, 1234);
    EXPECT_EQ(header.payload_bits, 100);
}

TEST(Packet, HeaderForOversizedPayloadThrows)
{
    Packet packet;
    packet.payload = Bits(70000, 0);
    EXPECT_THROW(header_for(packet), std::invalid_argument);
}

TEST(Flow, SequentialSeqNumbers)
{
    Flow flow{1, 2, 64, Pcg32{1001}};
    EXPECT_EQ(flow.next().seq, 1);
    EXPECT_EQ(flow.next().seq, 2);
    EXPECT_EQ(flow.next().seq, 3);
}

TEST(Flow, AddressesAndSizes)
{
    Flow flow{7, 8, 256, Pcg32{1002}};
    const Packet packet = flow.next();
    EXPECT_EQ(packet.src, 7);
    EXPECT_EQ(packet.dst, 8);
    EXPECT_EQ(packet.payload.size(), 256u);
}

TEST(Flow, PayloadsDiffer)
{
    Flow flow{1, 2, 512, Pcg32{1003}};
    EXPECT_NE(flow.next().payload, flow.next().payload);
}

TEST(Flow, DeterministicForSameSeed)
{
    Flow a{1, 2, 128, Pcg32{1004}};
    Flow b{1, 2, 128, Pcg32{1004}};
    EXPECT_EQ(a.next(), b.next());
    EXPECT_EQ(a.next(), b.next());
}

TEST(NetNode, TransmitStoresFrame)
{
    Net_node node{1};
    Flow flow{1, 2, 128, Pcg32{1005}};
    const Packet packet = flow.next();
    Pcg32 rng{1006};
    const dsp::Signal signal = node.transmit(packet, rng);
    EXPECT_EQ(signal.size(), phy::frame_length(128) + 1);
    EXPECT_TRUE(node.buffer().contains(header_for(packet)));
}

TEST(NetNode, RememberStoresWithoutTransmitting)
{
    Net_node node{2};
    Flow flow{1, 2, 128, Pcg32{1007}};
    const Packet packet = flow.next();
    node.remember(packet);
    const Stored_frame* stored = node.buffer().lookup(header_for(packet));
    ASSERT_NE(stored, nullptr);
    EXPECT_EQ(stored->payload, packet.payload);
    EXPECT_EQ(stored->frame_bits.size(), phy::frame_length(128));
}

TEST(NetNode, RegeneratedFrameBitsMatchTransmitted)
{
    // The overhearing path depends on this: a node that *remembers* a
    // packet reconstructs exactly the frame bits the sender put on the
    // air (framing is deterministic).
    Net_node sender{1};
    Net_node snooper{2};
    Flow flow{1, 2, 200, Pcg32{1008}};
    const Packet packet = flow.next();
    Pcg32 rng{1009};
    (void)sender.transmit(packet, rng);
    snooper.remember(packet);
    const Stored_frame* sent = sender.buffer().lookup(header_for(packet));
    const Stored_frame* heard = snooper.buffer().lookup(header_for(packet));
    ASSERT_NE(sent, nullptr);
    ASSERT_NE(heard, nullptr);
    EXPECT_EQ(sent->frame_bits, heard->frame_bits);
}

} // namespace
} // namespace anc::net
