#include "net/topology.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace anc::net {
namespace {

TEST(Topology, AliceBobLinks)
{
    chan::Medium medium{0.0, Pcg32{1101}};
    Pcg32 rng{1102};
    const Alice_bob_nodes nodes;
    install_alice_bob(medium, nodes, Alice_bob_gains{}, rng);

    EXPECT_TRUE(medium.has_link(nodes.alice, nodes.router));
    EXPECT_TRUE(medium.has_link(nodes.router, nodes.alice));
    EXPECT_TRUE(medium.has_link(nodes.bob, nodes.router));
    EXPECT_TRUE(medium.has_link(nodes.router, nodes.bob));
    // Alice and Bob are out of radio range of each other (the premise).
    EXPECT_FALSE(medium.has_link(nodes.alice, nodes.bob));
    EXPECT_FALSE(medium.has_link(nodes.bob, nodes.alice));
}

TEST(Topology, ChainLinks)
{
    chan::Medium medium{0.0, Pcg32{1103}};
    Pcg32 rng{1104};
    const Chain_nodes nodes;
    install_chain(medium, nodes, Chain_gains{}, rng);

    EXPECT_TRUE(medium.has_link(nodes.n1, nodes.n2));
    EXPECT_TRUE(medium.has_link(nodes.n2, nodes.n1));
    EXPECT_TRUE(medium.has_link(nodes.n2, nodes.n3));
    EXPECT_TRUE(medium.has_link(nodes.n3, nodes.n4));
    // Two hops apart: out of range — N4 never hears N1 (§2(b)).
    EXPECT_FALSE(medium.has_link(nodes.n1, nodes.n3));
    EXPECT_FALSE(medium.has_link(nodes.n1, nodes.n4));
    EXPECT_FALSE(medium.has_link(nodes.n2, nodes.n4));
}

TEST(Topology, XLinks)
{
    chan::Medium medium{0.0, Pcg32{1105}};
    Pcg32 rng{1106};
    const X_nodes nodes;
    install_x(medium, nodes, X_gains{}, rng);

    for (const chan::Node_id spoke : {nodes.n1, nodes.n2, nodes.n3, nodes.n4}) {
        EXPECT_TRUE(medium.has_link(spoke, nodes.n5));
        EXPECT_TRUE(medium.has_link(nodes.n5, spoke));
    }
    // Overhearing links with their interference counterparts.
    EXPECT_TRUE(medium.has_link(nodes.n1, nodes.n2));
    EXPECT_TRUE(medium.has_link(nodes.n3, nodes.n4));
    EXPECT_TRUE(medium.has_link(nodes.n3, nodes.n2));
    EXPECT_TRUE(medium.has_link(nodes.n1, nodes.n4));
    // The two senders do not hear each other.
    EXPECT_FALSE(medium.has_link(nodes.n1, nodes.n3));
}

TEST(Topology, XOverhearStrongerThanCross)
{
    chan::Medium medium{0.0, Pcg32{1107}};
    Pcg32 rng{1108};
    const X_nodes nodes;
    const X_gains gains;
    install_x(medium, nodes, gains, rng);
    EXPECT_GT(medium.link(nodes.n1, nodes.n2).power_gain(),
              medium.link(nodes.n3, nodes.n2).power_gain());
}

TEST(Topology, LinkPhasesAreRandomized)
{
    chan::Medium medium{0.0, Pcg32{1109}};
    Pcg32 rng{1110};
    const Alice_bob_nodes nodes;
    install_alice_bob(medium, nodes, Alice_bob_gains{}, rng);
    const double phase_ar = medium.link(nodes.alice, nodes.router).params().phase;
    const double phase_ra = medium.link(nodes.router, nodes.alice).params().phase;
    EXPECT_NE(phase_ar, phase_ra);
}

} // namespace
} // namespace anc::net
