#include "net/cope.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace anc::net {
namespace {

Packet make_packet(std::uint8_t src, std::uint8_t dst, std::uint16_t seq,
                   std::size_t bits, std::uint64_t seed)
{
    Pcg32 rng{seed};
    Packet packet;
    packet.src = src;
    packet.dst = dst;
    packet.seq = seq;
    packet.payload = random_bits(bits, rng);
    return packet;
}

TEST(Cope, EncodeParseRoundTrip)
{
    const Packet a = make_packet(1, 3, 10, 256, 1201);
    const Packet b = make_packet(3, 1, 20, 256, 1202);
    const Bits coded = cope_encode(a, b);
    EXPECT_EQ(coded.size(), 128u + 256u);
    const auto parsed = cope_parse(coded);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->first, header_for(a));
    EXPECT_EQ(parsed->second, header_for(b));
}

TEST(Cope, DecodeRecoverEachSide)
{
    const Packet a = make_packet(1, 3, 10, 300, 1203);
    const Packet b = make_packet(3, 1, 20, 300, 1204);
    const auto parsed = cope_parse(cope_encode(a, b));
    ASSERT_TRUE(parsed.has_value());

    // Alice knows a, wants b.
    const auto got_b = cope_decode(*parsed, header_for(a), a.payload);
    ASSERT_TRUE(got_b.has_value());
    EXPECT_EQ(*got_b, b);
    // Bob knows b, wants a.
    const auto got_a = cope_decode(*parsed, header_for(b), b.payload);
    ASSERT_TRUE(got_a.has_value());
    EXPECT_EQ(*got_a, a);
}

TEST(Cope, UnequalLengthsZeroPad)
{
    const Packet a = make_packet(1, 3, 10, 100, 1205);
    const Packet b = make_packet(3, 1, 20, 260, 1206);
    const auto parsed = cope_parse(cope_encode(a, b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->xored.size(), 260u);
    const auto got_b = cope_decode(*parsed, header_for(a), a.payload);
    ASSERT_TRUE(got_b.has_value());
    EXPECT_EQ(*got_b, b);
    const auto got_a = cope_decode(*parsed, header_for(b), b.payload);
    ASSERT_TRUE(got_a.has_value());
    EXPECT_EQ(*got_a, a);
}

TEST(Cope, UnknownPacketCannotDecode)
{
    const Packet a = make_packet(1, 3, 10, 128, 1207);
    const Packet b = make_packet(3, 1, 20, 128, 1208);
    const Packet c = make_packet(5, 6, 30, 128, 1209);
    const auto parsed = cope_parse(cope_encode(a, b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(cope_decode(*parsed, header_for(c), c.payload).has_value());
}

TEST(Cope, ParseRejectsShortPayload)
{
    EXPECT_FALSE(cope_parse(Bits(64, 0)).has_value());
}

TEST(Cope, ParseRejectsCorruptEmbeddedHeader)
{
    const Packet a = make_packet(1, 3, 10, 64, 1210);
    const Packet b = make_packet(3, 1, 20, 64, 1211);
    Bits coded = cope_encode(a, b);
    coded[10] ^= 1u; // inside header A
    EXPECT_FALSE(cope_parse(coded).has_value());
}

TEST(Cope, ParseRejectsLengthMismatch)
{
    const Packet a = make_packet(1, 3, 10, 64, 1212);
    const Packet b = make_packet(3, 1, 20, 64, 1213);
    Bits coded = cope_encode(a, b);
    coded.push_back(0); // stray bit
    EXPECT_FALSE(cope_parse(coded).has_value());
}

TEST(Cope, BitErrorsInXorPropagateToOneSide)
{
    const Packet a = make_packet(1, 3, 10, 200, 1214);
    const Packet b = make_packet(3, 1, 20, 200, 1215);
    Bits coded = cope_encode(a, b);
    coded[128 + 50] ^= 1u; // one payload bit error on the air
    const auto parsed = cope_parse(coded);
    ASSERT_TRUE(parsed.has_value());
    const auto got_b = cope_decode(*parsed, header_for(a), a.payload);
    ASSERT_TRUE(got_b.has_value());
    EXPECT_EQ(hamming_distance(got_b->payload, b.payload), 1u);
}

} // namespace
} // namespace anc::net
