#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace anc {
namespace {

TEST(RunningStats, MeanAndVariance)
{
    Running_stats stats;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(x);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SampleVarianceUsesBesselCorrection)
{
    Running_stats stats;
    for (const double x : {1.0, 2.0, 3.0})
        stats.add(x);
    EXPECT_DOUBLE_EQ(stats.sample_variance(), 1.0);
    EXPECT_NEAR(stats.variance(), 2.0 / 3.0, 1e-12);
}

TEST(RunningStats, FewSamplesHaveZeroVariance)
{
    Running_stats stats;
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    stats.add(3.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MatchesGaussianMoments)
{
    Pcg32 rng{31};
    Running_stats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(3.0 + 2.0 * rng.next_gaussian());
    EXPECT_NEAR(stats.mean(), 3.0, 0.05);
    EXPECT_NEAR(stats.variance(), 4.0, 0.1);
}

TEST(Cdf, QuantilesOfKnownSamples)
{
    Cdf cdf;
    for (int i = 1; i <= 100; ++i)
        cdf.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
    EXPECT_NEAR(cdf.quantile(0.5), 50.5, 1e-9);
    EXPECT_NEAR(cdf.quantile(0.25), 25.75, 1e-9);
}

TEST(Cdf, FractionAtOrBelow)
{
    Cdf cdf;
    for (const double x : {1.0, 2.0, 3.0, 4.0})
        cdf.add(x);
    EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.0), 0.5);
    EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(10.0), 1.0);
}

TEST(Cdf, MeanMinMax)
{
    Cdf cdf;
    cdf.add_all({3.0, 1.0, 2.0});
    EXPECT_DOUBLE_EQ(cdf.mean(), 2.0);
    EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
    EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
}

TEST(Cdf, CurveIsMonotone)
{
    Pcg32 rng{32};
    Cdf cdf;
    for (int i = 0; i < 1000; ++i)
        cdf.add(rng.next_gaussian());
    const auto curve = cdf.curve(11);
    ASSERT_EQ(curve.size(), 11u);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_LE(curve[i - 1].first, curve[i].first);
        EXPECT_LT(curve[i - 1].second, curve[i].second);
    }
}

TEST(Cdf, EmptyQuantileThrows)
{
    Cdf cdf;
    EXPECT_THROW(cdf.quantile(0.5), std::logic_error);
}

} // namespace
} // namespace anc
