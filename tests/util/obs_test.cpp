// Unit coverage for anc::obs — the telemetry primitives behind the
// anc.metrics.v1 manifest: histogram binning (boundaries, overflow),
// counter/stage merging, and the Recorder's thread-binding contract
// (unbound threads record nothing; nested binds restore).

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "util/obs.h"

namespace anc::obs {
namespace {

// ---------------------------------------------------------- histogram

TEST(LatencyHistogram, BinBoundaries)
{
    // Bin 0 absorbs everything below 1024 ns and spans [1024, 2048).
    EXPECT_EQ(Latency_histogram::bin_for(0), 0u);
    EXPECT_EQ(Latency_histogram::bin_for(1), 0u);
    EXPECT_EQ(Latency_histogram::bin_for(1023), 0u);
    EXPECT_EQ(Latency_histogram::bin_for(1024), 0u);
    EXPECT_EQ(Latency_histogram::bin_for(2047), 0u);

    // Bin b spans [2^(10+b), 2^(11+b)): exact powers of two open a bin,
    // one-less-than closes the previous one.
    EXPECT_EQ(Latency_histogram::bin_for(2048), 1u);
    EXPECT_EQ(Latency_histogram::bin_for(4095), 1u);
    EXPECT_EQ(Latency_histogram::bin_for(4096), 2u);
    EXPECT_EQ(Latency_histogram::bin_for((std::uint64_t{1} << 20)), 10u);
    EXPECT_EQ(Latency_histogram::bin_for((std::uint64_t{1} << 21) - 1), 10u);
}

TEST(LatencyHistogram, OverflowBinIsOpenEnded)
{
    constexpr std::size_t last = Latency_histogram::bin_count - 1;
    // The last in-range bin and the first overflow value.
    EXPECT_EQ(Latency_histogram::bin_for((std::uint64_t{1} << 41) - 1), last - 1);
    EXPECT_EQ(Latency_histogram::bin_for(std::uint64_t{1} << 41), last);
    // Everything above still lands in the overflow bin.
    EXPECT_EQ(Latency_histogram::bin_for(std::uint64_t{1} << 50), last);
    EXPECT_EQ(Latency_histogram::bin_for(~std::uint64_t{0}), last);
}

TEST(LatencyHistogram, BinFloorsMatchBinFor)
{
    EXPECT_EQ(Latency_histogram::bin_floor_ns(0), 0u);
    EXPECT_EQ(Latency_histogram::bin_floor_ns(1), 2048u);
    EXPECT_EQ(Latency_histogram::bin_floor_ns(2), 4096u);
    // Every bin's floor maps back into that bin (the floors are the
    // values the manifest reports — they must round-trip).
    for (std::size_t bin = 1; bin < Latency_histogram::bin_count; ++bin)
        EXPECT_EQ(Latency_histogram::bin_for(Latency_histogram::bin_floor_ns(bin)), bin)
            << "bin " << bin;
}

TEST(LatencyHistogram, AddMergeTotal)
{
    Latency_histogram a;
    a.add(100);      // bin 0
    a.add(3000);     // bin 1
    a.add(3000);     // bin 1
    Latency_histogram b;
    b.add(5000);                    // bin 2
    b.add(~std::uint64_t{0});       // overflow
    a.merge(b);
    EXPECT_EQ(a.counts[0], 1u);
    EXPECT_EQ(a.counts[1], 2u);
    EXPECT_EQ(a.counts[2], 1u);
    EXPECT_EQ(a.counts[Latency_histogram::bin_count - 1], 1u);
    EXPECT_EQ(a.total(), 5u);
}

// ----------------------------------------------------------- counters

TEST(Counters, MergeAddsElementwise)
{
    Counters a;
    a[Counter::crc_pass] = 3;
    a[Counter::pilot_hits] = 7;
    Counters b;
    b[Counter::crc_pass] = 2;
    b[Counter::rx_clean] = 1;
    a.merge(b);
    EXPECT_EQ(a[Counter::crc_pass], 5u);
    EXPECT_EQ(a[Counter::pilot_hits], 7u);
    EXPECT_EQ(a[Counter::rx_clean], 1u);

    Counters c = a;
    EXPECT_EQ(a, c);
    c[Counter::crc_fail] = 1;
    EXPECT_NE(a, c);
}

TEST(StageTimes, AddAndMerge)
{
    Stage_times a;
    a.add(Stage::demodulate, 100);
    a.add(Stage::demodulate, 50);
    Stage_times b;
    b.add(Stage::demodulate, 25);
    b.add(Stage::fec_decode, 10);
    a.merge(b);
    EXPECT_EQ(a.ns[static_cast<std::size_t>(Stage::demodulate)], 175u);
    EXPECT_EQ(a.calls[static_cast<std::size_t>(Stage::demodulate)], 3u);
    EXPECT_EQ(a.ns[static_cast<std::size_t>(Stage::fec_decode)], 10u);
    EXPECT_EQ(a.calls[static_cast<std::size_t>(Stage::fec_decode)], 1u);
}

// ----------------------------------------------------------- recorder

TEST(Recorder, UnboundThreadRecordsNothing)
{
    ASSERT_EQ(Recorder::current(), nullptr);
    EXPECT_FALSE(enabled());
    count(Counter::crc_pass);                     // must be a no-op
    const Stage_timer timer{Stage::demodulate};   // likewise
}

TEST(Recorder, BindRecordsAndRestores)
{
    Recorder recorder;
    {
        const Recorder::Bind bind{recorder};
        EXPECT_TRUE(enabled());
        EXPECT_EQ(Recorder::current(), &recorder);
        count(Counter::crc_pass);
        count(Counter::pilot_hit_offset_sum, 42);
        {
            const Stage_timer timer{Stage::pilot_search};
        }
    }
    EXPECT_EQ(Recorder::current(), nullptr);
    EXPECT_EQ(recorder.task().counters[Counter::crc_pass], 1u);
    EXPECT_EQ(recorder.task().counters[Counter::pilot_hit_offset_sum], 42u);
    EXPECT_EQ(recorder.task().stages.calls[static_cast<std::size_t>(Stage::pilot_search)],
              1u);
}

TEST(Recorder, NestedBindShadowsAndRestores)
{
    Recorder outer;
    Recorder inner;
    const Recorder::Bind bind_outer{outer};
    count(Counter::rx_clean);
    {
        const Recorder::Bind bind_inner{inner};
        EXPECT_EQ(Recorder::current(), &inner);
        count(Counter::rx_clean);
    }
    EXPECT_EQ(Recorder::current(), &outer);
    count(Counter::rx_clean);
    EXPECT_EQ(outer.task().counters[Counter::rx_clean], 2u);
    EXPECT_EQ(inner.task().counters[Counter::rx_clean], 1u);
}

TEST(Recorder, BeginTaskZeroesTaskScopedState)
{
    Recorder recorder;
    const Recorder::Bind bind{recorder};
    count(Counter::crc_fail, 9);
    recorder.task().stages.add(Stage::channel, 123);
    recorder.begin_task();
    EXPECT_EQ(recorder.task().counters, Counters{});
    EXPECT_EQ(recorder.task().stages.calls[static_cast<std::size_t>(Stage::channel)], 0u);
}

// ------------------------------------------------------------- names

TEST(Names, CounterNamesAreUniqueAndNonEmpty)
{
    std::set<std::string> seen;
    for (std::size_t i = 0; i < counter_count; ++i) {
        const std::string name = to_string(static_cast<Counter>(i));
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(seen.insert(name).second) << "duplicate counter name " << name;
    }
}

TEST(Names, StageNamesAreUniqueAndNonEmpty)
{
    std::set<std::string> seen;
    for (std::size_t i = 0; i < stage_count; ++i) {
        const std::string name = to_string(static_cast<Stage>(i));
        EXPECT_FALSE(name.empty());
        EXPECT_TRUE(seen.insert(name).second) << "duplicate stage name " << name;
    }
}

} // namespace
} // namespace anc::obs
