// util::Subprocess — the fork/exec + reap primitive under the sweep
// coordinator: spawn, wait, timeouts, kill, exit-code decoding, and
// output redirection.  Everything here must hold without leaking
// zombies (the destructor contract).

#include "util/subprocess.h"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>

#include <sys/types.h>
#include <sys/wait.h>

namespace anc::util {
namespace {

struct Temp_path {
    explicit Temp_path(const std::string& name) : path{testing::TempDir() + name}
    {
        std::remove(path.c_str());
    }
    ~Temp_path() { std::remove(path.c_str()); }
    std::string path;
};

TEST(Subprocess, TrueExitsZero)
{
    Subprocess child = Subprocess::spawn({"/bin/sh", "-c", "exit 0"});
    EXPECT_GT(child.pid(), 0);
    child.wait();
    EXPECT_TRUE(child.exited());
    EXPECT_EQ(child.exit_code(), 0);
    EXPECT_FALSE(child.signalled());
}

TEST(Subprocess, NonzeroStatusIsReported)
{
    Subprocess child = Subprocess::spawn({"/bin/sh", "-c", "exit 7"});
    child.wait();
    EXPECT_EQ(child.exit_code(), 7);
}

TEST(Subprocess, ExecFailureYields127)
{
    Subprocess child = Subprocess::spawn({"/definitely/not/a/binary"});
    child.wait();
    EXPECT_EQ(child.exit_code(), 127);
}

TEST(Subprocess, TryWaitIsNonBlocking)
{
    Subprocess child = Subprocess::spawn({"/bin/sh", "-c", "sleep 30"});
    EXPECT_FALSE(child.try_wait());
    EXPECT_TRUE(child.running());
    child.kill(SIGKILL);
    child.wait();
    EXPECT_FALSE(child.running());
    EXPECT_TRUE(child.signalled());
    EXPECT_EQ(child.term_signal(), SIGKILL);
    // Death by signal N decodes as the shell convention 128+N.
    EXPECT_EQ(child.exit_code(), 128 + SIGKILL);
}

TEST(Subprocess, WaitForTimesOutThenSucceeds)
{
    Subprocess child = Subprocess::spawn({"/bin/sh", "-c", "sleep 0.2"});
    EXPECT_FALSE(child.wait_for(std::chrono::milliseconds{20}));
    EXPECT_TRUE(child.wait_for(std::chrono::milliseconds{10000}));
    EXPECT_EQ(child.exit_code(), 0);
}

TEST(Subprocess, DestructorKillsAndReaps)
{
    pid_t pid = 0;
    {
        Subprocess child = Subprocess::spawn({"/bin/sh", "-c", "sleep 60"});
        pid = child.pid();
    }
    // After destruction the pid must be gone (not a zombie): waitpid on
    // an already-reaped child of ours is ECHILD.
    EXPECT_EQ(::waitpid(pid, nullptr, WNOHANG), -1);
}

TEST(Subprocess, MoveTransfersOwnership)
{
    Subprocess a = Subprocess::spawn({"/bin/sh", "-c", "exit 3"});
    const pid_t pid = a.pid();
    Subprocess b = std::move(a);
    EXPECT_EQ(b.pid(), pid);
    EXPECT_EQ(a.pid(), -1); // NOLINT(bugprone-use-after-move): moved-from probe
    b.wait();
    EXPECT_EQ(b.exit_code(), 3);
}

TEST(Subprocess, StdoutRedirectionAppends)
{
    Temp_path out{"subprocess_stdout.txt"};
    Spawn_options options;
    options.stdout_path = out.path;
    Subprocess::spawn({"/bin/sh", "-c", "echo first"}, options).wait();
    Subprocess::spawn({"/bin/sh", "-c", "echo second"}, options).wait();

    std::ifstream in{out.path};
    std::string line1, line2;
    std::getline(in, line1);
    std::getline(in, line2);
    EXPECT_EQ(line1, "first");
    EXPECT_EQ(line2, "second"); // O_APPEND: relaunches never clobber logs
}

TEST(Subprocess, StderrRedirection)
{
    Temp_path err{"subprocess_stderr.txt"};
    Spawn_options options;
    options.stderr_path = err.path;
    Subprocess::spawn({"/bin/sh", "-c", "echo oops >&2"}, options).wait();

    std::ifstream in{err.path};
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "oops");
}

TEST(Subprocess, KillAfterExitIsHarmless)
{
    Subprocess child = Subprocess::spawn({"/bin/sh", "-c", "exit 0"});
    child.wait();
    child.kill(SIGKILL); // no-op, must not throw or signal a stranger
    EXPECT_EQ(child.exit_code(), 0);
}

} // namespace
} // namespace anc::util
