// Statistical and determinism locks for the counter-based normal
// generator behind the fast math profile's noise (util/rng.h).
//
//   - moment sanity: mean/variance/skew/kurtosis of a large sample
//   - Kolmogorov-Smirnov distance against the exact normal CDF
//   - stream independence: distinct (seed, stream) keys decorrelate
//   - purity / replay determinism: any carving of the counter range
//     across 1, 4, or 8 threads reproduces the serial fill bit-for-bit

#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

namespace anc {
namespace {

std::vector<double> draw(const Counter_normal& gen, std::size_t count)
{
    std::vector<double> out(count);
    gen.fill(0, out.data(), count);
    return out;
}

TEST(CounterNormal, MomentsMatchStandardNormal)
{
    const Counter_normal gen{42, 1};
    const std::vector<double> xs = draw(gen, 400000);
    const double n = static_cast<double>(xs.size());
    double mean = 0.0;
    for (const double x : xs)
        mean += x;
    mean /= n;
    double m2 = 0.0, m3 = 0.0, m4 = 0.0;
    for (const double x : xs) {
        const double d = x - mean;
        m2 += d * d;
        m3 += d * d * d;
        m4 += d * d * d * d;
    }
    m2 /= n;
    m3 /= n;
    m4 /= n;
    EXPECT_NEAR(mean, 0.0, 0.01);
    EXPECT_NEAR(m2, 1.0, 0.02);
    EXPECT_NEAR(m3 / std::pow(m2, 1.5), 0.0, 0.03); // skewness
    EXPECT_NEAR(m4 / (m2 * m2), 3.0, 0.08);         // kurtosis
}

TEST(CounterNormal, KolmogorovSmirnovAgainstNormalCdf)
{
    const Counter_normal gen{7, 3};
    std::vector<double> xs = draw(gen, 200000);
    std::sort(xs.begin(), xs.end());
    const double n = static_cast<double>(xs.size());
    double ks = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double cdf = 0.5 * std::erfc(-xs[i] / std::numbers::sqrt2);
        const double lo = static_cast<double>(i) / n;
        const double hi = static_cast<double>(i + 1) / n;
        ks = std::max({ks, std::abs(cdf - lo), std::abs(cdf - hi)});
    }
    // KS 99.9% critical value ~ 1.95/sqrt(n) ~ 0.0044 at n=200k; a
    // deterministic draw either passes forever or is genuinely broken.
    EXPECT_LT(ks, 1.95 / std::sqrt(n));
}

TEST(CounterNormal, DistinctStreamsAreUncorrelated)
{
    const Counter_normal a{1234, 0};
    const Counter_normal b{1234, 1}; // same seed, different stream
    const Counter_normal c{1235, 0}; // different seed, same stream
    const std::size_t n = 200000;
    const std::vector<double> xa = draw(a, n);
    const std::vector<double> xb = draw(b, n);
    const std::vector<double> xc = draw(c, n);
    const auto correlation = [n](const std::vector<double>& u,
                                 const std::vector<double>& v) {
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            sum += u[i] * v[i];
        return sum / static_cast<double>(n);
    };
    // Corr of iid N(0,1) pairs ~ N(0, 1/n): 4.5 sigma ~ 0.01 at n=200k.
    EXPECT_LT(std::abs(correlation(xa, xb)), 0.01);
    EXPECT_LT(std::abs(correlation(xa, xc)), 0.01);
    // And the streams are genuinely different draws.
    EXPECT_NE(xa[0], xb[0]);
    EXPECT_NE(xa[0], xc[0]);
}

TEST(CounterNormal, PairIsPureInCounter)
{
    const Counter_normal gen{99, 17};
    double z0 = 0.0, z1 = 0.0;
    gen.pair(123456, z0, z1);
    // Draw a pile of other counters in between; the draw must not move.
    double w0 = 0.0, w1 = 0.0;
    for (std::uint64_t c = 0; c < 1000; ++c)
        gen.pair(c, w0, w1);
    double again0 = 0.0, again1 = 0.0;
    gen.pair(123456, again0, again1);
    EXPECT_EQ(z0, again0);
    EXPECT_EQ(z1, again1);
}

TEST(CounterNormal, ThreadedFillReplaysSerialBitForBit)
{
    const Counter_normal gen{2718, 28};
    const std::size_t count = 64 * 1024;
    const std::vector<double> serial = draw(gen, count);

    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
        std::vector<double> parallel(count, 0.0);
        std::vector<std::thread> workers;
        // Carve the buffer into per-thread spans on pair (2-sample)
        // boundaries; each worker fills its span from the matching
        // counter offset — the order-independence the generator promises.
        const std::size_t pairs = count / 2;
        const std::size_t pairs_per_thread = (pairs + threads - 1) / threads;
        for (std::size_t t = 0; t < threads; ++t) {
            const std::size_t first_pair = t * pairs_per_thread;
            const std::size_t last_pair = std::min(pairs, first_pair + pairs_per_thread);
            if (first_pair >= last_pair)
                continue;
            workers.emplace_back([&, first_pair, last_pair] {
                gen.fill(first_pair, parallel.data() + 2 * first_pair,
                         2 * (last_pair - first_pair));
            });
        }
        for (std::thread& worker : workers)
            worker.join();
        EXPECT_EQ(parallel, serial) << threads << " threads";
    }
}

TEST(CounterNormal, SimdFillIsBitCompatibleWithScalarFill)
{
    // The simd backend's contract (util/simd.h): same (key, counter) ->
    // same normals, whether the AVX2 lanes or the scalar fallback served
    // the call.  fill_simd must therefore reproduce fill() exactly —
    // including odd lengths (scalar tail) and non-zero counter origins.
    const Counter_normal gen{31415, 92};
    for (const std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                    std::size_t{8}, std::size_t{9}, std::size_t{64},
                                    std::size_t{1001}, std::size_t{4096}}) {
        for (const std::uint64_t first : {std::uint64_t{0}, std::uint64_t{17}}) {
            std::vector<double> scalar(count, 0.0);
            std::vector<double> simd(count, 0.0);
            gen.fill(first, scalar.data(), count);
            gen.fill_simd(first, simd.data(), count);
            EXPECT_EQ(simd, scalar)
                << "count " << count << " first_counter " << first;
        }
    }
}

TEST(CounterNormal, SimdAddScaledIsBitCompatibleWithScalar)
{
    const Counter_normal gen{2024, 6};
    const std::size_t count = 1234; // odd tail after the 8-wide blocks
    std::vector<double> base(count);
    for (std::size_t i = 0; i < count; ++i)
        base[i] = 0.25 * static_cast<double>(i % 17) - 2.0;
    std::vector<double> scalar = base;
    std::vector<double> simd = base;
    gen.add_scaled(5, 0.7071, scalar.data(), count);
    gen.add_scaled_simd(5, 0.7071, simd.data(), count);
    EXPECT_EQ(simd, scalar);
}

} // namespace
} // namespace anc
