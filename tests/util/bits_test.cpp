#include "util/bits.h"

#include <gtest/gtest.h>

namespace anc {
namespace {

TEST(Bits, PackUnpackRoundTrip)
{
    const std::vector<std::uint8_t> bytes{0xde, 0xad, 0xbe, 0xef, 0x00, 0xff};
    const Bits bits = unpack_bytes(bytes);
    EXPECT_EQ(bits.size(), bytes.size() * 8);
    EXPECT_EQ(pack_bits(bits), bytes);
}

TEST(Bits, UnpackIsMsbFirst)
{
    const std::vector<std::uint8_t> one_byte{0b10110001};
    const Bits bits = unpack_bytes(one_byte);
    const Bits expected{1, 0, 1, 1, 0, 0, 0, 1};
    EXPECT_EQ(bits, expected);
}

TEST(Bits, PackRejectsPartialByte)
{
    const Bits bits{1, 0, 1};
    EXPECT_THROW(pack_bits(bits), std::invalid_argument);
}

TEST(Bits, AppendAndReadUint)
{
    Bits bits;
    append_uint(bits, 0xCAFE, 16);
    append_uint(bits, 5, 3);
    EXPECT_EQ(bits.size(), 19u);
    EXPECT_EQ(read_uint(bits, 0, 16), 0xCAFEu);
    EXPECT_EQ(read_uint(bits, 16, 3), 5u);
}

TEST(Bits, ReadUintOutOfRangeThrows)
{
    Bits bits{1, 0, 1};
    EXPECT_THROW(read_uint(bits, 0, 4), std::out_of_range);
    EXPECT_THROW(read_uint(bits, 2, 2), std::out_of_range);
}

TEST(Bits, XorBits)
{
    const Bits a{1, 1, 0, 0};
    const Bits b{1, 0, 1, 0};
    const Bits expected{0, 1, 1, 0};
    EXPECT_EQ(xor_bits(a, b), expected);
}

TEST(Bits, XorLengthMismatchThrows)
{
    const Bits a{1, 1};
    const Bits b{1};
    EXPECT_THROW(xor_bits(a, b), std::invalid_argument);
}

TEST(Bits, XorIsSelfInverse)
{
    Pcg32 rng{11};
    const Bits data = random_bits(256, rng);
    const Bits key = random_bits(256, rng);
    EXPECT_EQ(xor_bits(xor_bits(data, key), key), data);
}

TEST(Bits, HammingDistanceCountsDifferences)
{
    const Bits a{1, 1, 0, 0, 1};
    const Bits b{1, 0, 0, 1, 1};
    EXPECT_EQ(hamming_distance(a, b), 2u);
}

TEST(Bits, HammingDistanceChargesLengthMismatch)
{
    const Bits a{1, 1, 0};
    const Bits b{1, 1};
    EXPECT_EQ(hamming_distance(a, b), 1u);
}

TEST(Bits, BitErrorRate)
{
    const Bits a{1, 1, 1, 1};
    const Bits b{1, 1, 0, 0};
    EXPECT_DOUBLE_EQ(bit_error_rate(a, b), 0.5);
    EXPECT_DOUBLE_EQ(bit_error_rate({}, {}), 0.0);
}

TEST(Bits, RandomBitsAreBalanced)
{
    Pcg32 rng{12};
    const Bits bits = random_bits(10000, rng);
    std::size_t ones = 0;
    for (const auto b : bits)
        ones += b;
    EXPECT_NEAR(static_cast<double>(ones) / 10000.0, 0.5, 0.03);
}

TEST(Bits, MirroredReverses)
{
    const Bits bits{1, 0, 0, 1, 1};
    const Bits expected{1, 1, 0, 0, 1};
    EXPECT_EQ(mirrored(bits), expected);
    EXPECT_EQ(mirrored(mirrored(bits)), bits);
}

TEST(Bits, ToStringRendersBits)
{
    const Bits bits{1, 0, 1, 1};
    EXPECT_EQ(to_string(bits), "1011");
}

} // namespace
} // namespace anc
