#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace anc {
namespace {

TEST(Pcg32, SameSeedSameSequence)
{
    Pcg32 a{42, 7};
    Pcg32 b{42, 7};
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a{42, 7};
    Pcg32 b{43, 7};
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next_u32() == b.next_u32());
    EXPECT_LT(same, 3);
}

TEST(Pcg32, DifferentStreamsDiffer)
{
    Pcg32 a{42, 1};
    Pcg32 b{42, 2};
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next_u32() == b.next_u32());
    EXPECT_LT(same, 3);
}

TEST(Pcg32, DoubleInUnitInterval)
{
    Pcg32 rng{1};
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.next_double();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
    }
}

TEST(Pcg32, DoubleMeanNearHalf)
{
    Pcg32 rng{2};
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.next_double();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Pcg32, RangeIsInclusiveAndCovers)
{
    Pcg32 rng{3};
    std::vector<int> seen(6, 0);
    for (int i = 0; i < 6000; ++i) {
        const std::uint32_t v = rng.next_in_range(10, 15);
        ASSERT_GE(v, 10u);
        ASSERT_LE(v, 15u);
        ++seen[v - 10];
    }
    for (const int count : seen)
        EXPECT_GT(count, 800); // each of 6 values expected ~1000 times
}

TEST(Pcg32, RangeSingleValue)
{
    Pcg32 rng{4};
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.next_in_range(7, 7), 7u);
}

TEST(Pcg32, GaussianMoments)
{
    Pcg32 rng{5};
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.next_gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Pcg32, BernoulliFrequency)
{
    Pcg32 rng{6};
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.next_bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Pcg32, ForkedStreamsAreIndependent)
{
    Pcg32 parent{7};
    Pcg32 a = parent.fork(1);
    Pcg32 b = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next_u32() == b.next_u32());
    EXPECT_LT(same, 3);
}

TEST(Pcg32, WorksWithStdShuffle)
{
    Pcg32 rng{8};
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    const std::vector<int> before = v;
    std::shuffle(v.begin(), v.end(), rng);
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, before);
}

} // namespace
} // namespace anc
